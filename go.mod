module github.com/holisticim/holisticim

go 1.22
