// Command imgen generates synthetic graphs — either one of the paper's
// Table-2 stand-ins or a parameterized BA/R-MAT graph — and writes an
// edge-list (+ optional opinions file) readable by imrun and the library.
//
// Usage:
//
//	imgen -dataset nethept -quick -out nethept.txt
//	imgen -type rmat -n 100000 -m 1000000 -directed -out big.txt
//	imgen -type ba -n 10000 -deg 3 -opinions normal -out graph.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/datasets"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "named dataset stand-in (see -listdatasets)")
		listDS   = flag.Bool("listdatasets", false, "list named datasets and exit")
		typ      = flag.String("type", "", "generator type: ba | rmat")
		n        = flag.Int("n", 10000, "number of nodes")
		m        = flag.Int64("m", 0, "number of arcs (rmat; default 8n)")
		deg      = flag.Int("deg", 3, "edges per node (ba)")
		directed = flag.Bool("directed", false, "rmat: keep arcs directed")
		quick    = flag.Bool("quick", false, "named datasets: quick scale tier")
		seed     = flag.Uint64("seed", 1, "random seed")
		prob     = flag.Float64("p", 0.1, "uniform influence probability to assign (<0 = weighted cascade)")
		opinions = flag.String("opinions", "", "assign opinions: uniform | normal | polarized")
		out      = flag.String("out", "", "output edge-list path (default stdout)")
		opOut    = flag.String("opinions-out", "", "output opinions path (default <out>.opinions)")
		format   = flag.String("format", "text", "output format: text | binary (binary embeds opinions)")
	)
	flag.Parse()

	if *listDS {
		for _, name := range datasets.Names() {
			fmt.Println(name)
		}
		return
	}

	var g *holisticim.Graph
	var err error
	switch {
	case *dataset != "":
		g, err = datasets.Load(*dataset, *quick, *seed)
		if err != nil {
			fatal(err)
		}
	case *typ == "ba":
		g = holisticim.GenerateBA(int32(*n), *deg, *seed)
	case *typ == "rmat":
		arcs := *m
		if arcs <= 0 {
			arcs = int64(*n) * 8
		}
		g = holisticim.GenerateRMAT(int32(*n), arcs, !*directed, *seed)
	default:
		fatal(fmt.Errorf("pass -dataset or -type ba|rmat"))
	}

	if *prob < 0 {
		g.SetWeightedCascadeProb()
	} else {
		g.SetUniformProb(*prob)
	}
	holisticim.AssignInteractions(g, *seed+1)
	if *opinions != "" {
		var dist holisticim.OpinionDistribution
		switch *opinions {
		case "uniform":
			dist = holisticim.OpinionUniform
		case "normal":
			dist = holisticim.OpinionNormal
		case "polarized":
			dist = holisticim.OpinionPolarized
		default:
			fatal(fmt.Errorf("unknown opinion distribution %q", *opinions))
		}
		holisticim.AssignOpinions(g, dist, *seed+2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "text":
		if err := holisticim.WriteEdgeList(w, g); err != nil {
			fatal(err)
		}
	case "binary":
		if err := holisticim.WriteBinaryGraph(w, g); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
	if *opinions != "" && *out != "" && *format == "text" {
		path := *opOut
		if path == "" {
			path = *out + ".opinions"
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := writeOpinions(f, g); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "imgen: wrote %d nodes, %d arcs\n", g.NumNodes(), g.NumEdges())
}

func writeOpinions(f *os.File, g *holisticim.Graph) error {
	for v := holisticim.NodeID(0); v < g.NumNodes(); v++ {
		if _, err := fmt.Fprintf(f, "%d %g\n", v, g.Opinion(v)); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "imgen: %v\n", err)
	os.Exit(1)
}
