// Command imsketch builds, inspects and queries RR-sketch snapshots —
// the offline half of the build-once/serve-many pipeline: build a sketch
// on a beefy machine (or in CI), ship the snapshot with the graph, and
// point imserver's -sketch flag at it so the /v1/select fast path is
// warm from the first request.
//
// Usage:
//
//	imsketch -build -graph g.bin -out g.sketch [-model ic] [-eps 0.1] [-seed 1] [-k 50] [-workers 8]
//	imsketch -info -sketch g.sketch
//	imsketch -select -graph g.bin -sketch g.sketch -k 20
//	imsketch -publish store/ -graph g.bin -name soc [-sketch g.sketch | -model ic -eps 0.1 ...]
//
// Modes (exactly one):
//
//	-build    sample a sketch over -graph and write it to -out
//	-info     print a snapshot's header (no graph needed)
//	-select   load -sketch against -graph and select -k seeds
//	-publish  publish -graph (as -name) plus a sketch into a shared
//	          snapshot-store directory for cluster replicas to warm-load
//	          (see imserver -store); reuses the snapshot from -sketch when
//	          given, otherwise builds one with the -build parameters
//
// -model oc builds an opinion-weighted sketch (snapshot format v2): the
// same reverse live-edge walks as -model lt plus per-set root-opinion
// weights, so selections maximize opinion coverage and the served index
// answers opinion-spread estimates without Monte Carlo.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/internal/cluster"
	"github.com/holisticim/holisticim/internal/obs"
)

// logger is the shared structured logger; imsketch is a CLI, so it only
// speaks on errors (results go to stdout as before).
var logger = obs.NewLogger(os.Stderr, "imsketch", slog.LevelInfo)

func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

func main() {
	var (
		build   = flag.Bool("build", false, "build a sketch over -graph and write it to -out")
		info    = flag.Bool("info", false, "print a snapshot's header")
		sel     = flag.Bool("select", false, "load -sketch against -graph and select -k seeds")
		publish = flag.String("publish", "", "publish -graph and a sketch into this snapshot-store directory")
		name    = flag.String("name", "", "graph name in the store (publish mode)")
		graphP  = flag.String("graph", "", "graph file (edge-list or binary)")
		sketch  = flag.String("sketch", "", "sketch snapshot file")
		out     = flag.String("out", "", "output snapshot path (build mode)")
		model   = flag.String("model", "ic", "diffusion model; its family picks the RR semantics (ic or lt walks)")
		eps     = flag.Float64("eps", 0.1, "IMM approximation slack epsilon")
		seed    = flag.Uint64("seed", 1, "master sampling seed")
		k       = flag.Int("k", 50, "build: theta budget build-k; select: seeds to pick")
		worker  = flag.Int("workers", 0, "parallel sampling goroutines (0 = GOMAXPROCS)")
		maxSet  = flag.Int("max-sets", 0, "cap on RR sets (0 = unbounded)")
	)
	flag.Parse()

	modes := 0
	for _, m := range []bool{*build, *info, *sel, *publish != ""} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "imsketch: pass exactly one of -build, -info, -select, -publish")
		flag.Usage()
		os.Exit(2)
	}

	switch {
	case *info:
		f := mustOpen(*sketch, "-sketch")
		defer f.Close()
		h, err := holisticim.ReadSketchHeader(f)
		if err != nil {
			fatal("command failed", "error", err)
		}
		weighted := ""
		if h.Weighted() {
			weighted = " (opinion-weighted)"
		}
		fmt.Printf("snapshot version  : %d%s\n", h.Version, weighted)
		fmt.Printf("graph fingerprint : %016x\n", h.GraphFingerprint)
		fmt.Printf("graph dims        : %d nodes, %d arcs\n", h.Nodes, h.Arcs)
		fmt.Printf("rr semantics      : %s\n", h.Kind)
		fmt.Printf("epsilon / ell     : %g / %g\n", h.Epsilon, h.Ell)
		fmt.Printf("seed              : %d\n", h.Seed)
		fmt.Printf("build k           : %d\n", h.BuildK)
		fmt.Printf("opt lower bound   : %.2f\n", h.LowerBound)
		fmt.Printf("rr sets           : %d\n", h.Sets)

	case *build:
		if *out == "" {
			fatal("-build needs -out")
		}
		g := loadGraph(*graphP)
		start := time.Now()
		sk, err := holisticim.BuildSketch(context.Background(), g, holisticim.SketchOptions{
			Model:   holisticim.ModelKind(*model),
			Epsilon: *eps,
			Seed:    *seed,
			BuildK:  *k,
			Workers: *worker,
			MaxSets: *maxSet,
		})
		if err != nil {
			fatal("command failed", "error", err)
		}
		built := time.Since(start)
		f, err := os.Create(*out)
		if err != nil {
			fatal("command failed", "error", err)
		}
		if err := holisticim.WriteSketch(f, sk); err != nil {
			fatal("snapshot write failed", "path", *out, "error", err)
		}
		if err := f.Close(); err != nil {
			fatal("snapshot close failed", "path", *out, "error", err)
		}
		st := sk.Stats()
		fmt.Printf("built %d RR sets in %v (%.1f MiB), snapshot %s\n",
			st.Sets, built.Round(time.Millisecond), float64(st.MemoryBytes)/(1<<20), *out)

	case *publish != "":
		if *name == "" {
			fatal("-publish needs -name (the graph's store name)")
		}
		g := loadGraph(*graphP)
		var sk *holisticim.Sketch
		var err error
		if *sketch != "" {
			f := mustOpen(*sketch, "-sketch")
			sk, err = holisticim.ReadSketch(f, g)
			f.Close()
			if err != nil {
				fatal("command failed", "error", err)
			}
		} else {
			start := time.Now()
			sk, err = holisticim.BuildSketch(context.Background(), g, holisticim.SketchOptions{
				Model:   holisticim.ModelKind(*model),
				Epsilon: *eps,
				Seed:    *seed,
				BuildK:  *k,
				Workers: *worker,
				MaxSets: *maxSet,
			})
			if err != nil {
				fatal("command failed", "error", err)
			}
			fmt.Printf("built %d RR sets in %v\n", sk.Len(), time.Since(start).Round(time.Millisecond))
		}
		st, err := cluster.OpenStore(*publish)
		if err != nil {
			fatal("command failed", "error", err)
		}
		// A file-loaded graph has no mutation log, so its published
		// version is the sketch's own graph version (0 for a fresh pair) —
		// replicas then see zero staleness.
		ge, err := st.PublishGraph(*name, g, sk.GraphVersion())
		if err != nil {
			fatal("graph publish failed", "error", err)
		}
		se, err := st.PublishSketch(*name, sk)
		if err != nil {
			fatal("sketch publish failed", "error", err)
		}
		m, err := st.Manifest()
		if err != nil {
			fatal("command failed", "error", err)
		}
		fmt.Printf("published graph %q (fingerprint %s) and sketch %q\n", ge.Name, ge.Fingerprint, se.ID)
		fmt.Printf("store %s now at manifest v%d (%d graphs, %d sketches)\n",
			*publish, m.Version, len(m.Graphs), len(m.Sketches))

	case *sel:
		g := loadGraph(*graphP)
		f := mustOpen(*sketch, "-sketch")
		defer f.Close()
		sk, err := holisticim.ReadSketch(f, g)
		if err != nil {
			fatal("command failed", "error", err)
		}
		start := time.Now()
		res, err := sk.Select(context.Background(), *k)
		if err != nil {
			fatal("command failed", "error", err)
		}
		fmt.Printf("selected %d seeds in %v (index: %d sets)\n",
			len(res.Seeds), time.Since(start).Round(time.Microsecond), sk.Len())
		fmt.Printf("estimated spread  : %.1f\n", res.Metrics["estimated_spread"])
		// Opinion-weighted (oc) sketches maximize opinion coverage and
		// report the opinion-spread estimate alongside.
		if _, ok := res.Metrics["weighted_coverage"]; ok {
			fmt.Printf("opinion coverage  : %.3f\n", res.Metrics["weighted_coverage"])
			fmt.Printf("est opinion spread: %.2f\n", res.Metrics["estimated_opinion_spread"])
		}
		fmt.Printf("seeds             : %v\n", res.Seeds)
	}
}

func mustOpen(path, flagName string) *os.File {
	if path == "" {
		fatal("missing required flag", "flag", flagName)
	}
	f, err := os.Open(path)
	if err != nil {
		fatal("command failed", "error", err)
	}
	return f
}

// loadGraph reads an edge-list or binary graph file, sniffing the binary
// magic so both formats load transparently.
func loadGraph(path string) *holisticim.Graph {
	f := mustOpen(path, "-graph")
	defer f.Close()
	magic := make([]byte, 4)
	n, _ := f.Read(magic)
	if _, err := f.Seek(0, 0); err != nil {
		fatal("command failed", "error", err)
	}
	var g *holisticim.Graph
	var err error
	if n == 4 && string(magic) == "HIMG" {
		g, err = holisticim.ReadBinaryGraph(f)
	} else {
		g, err = holisticim.ReadEdgeList(f)
	}
	if err != nil {
		fatal("graph read failed", "path", path, "error", err)
	}
	return g
}
