// Command imrouter is the cluster front door: a scatter-gather router
// that consistent-hashes queries onto a fixed set of imserver replicas.
//
// Every replica warm-loads the same snapshot store (imserver -store), so
// any replica can answer any query and routing is purely a cache-
// affinity and load decision: a key's rendezvous owners are preferred,
// batch /v2/query members scatter across the owner set in parallel when
// the cluster holds a matching sketch, and slow or shedding replicas
// are hedged and failed over within a bounded retry budget. Because
// sketch-served answers are deterministic functions of the snapshot,
// failover never changes a result — a routed batch is byte-equivalent
// to the same batch on a single node.
//
// Usage:
//
//	imrouter -addr :9090 \
//	  -replica http://127.0.0.1:8081 \
//	  -replica http://127.0.0.1:8082 \
//	  -replica http://127.0.0.1:8083
//
// Flags:
//
//	-addr string         listen address (default ":9090")
//	-replica url         an imserver base URL (repeat once per replica)
//	-replication int     rendezvous owners per key (default 2)
//	-poll duration       replica health-poll interval (default 1s)
//	-hedge duration      wait before hedging to the next candidate (default 250ms)
//	-retries int         failover attempts after the first (default: all replicas)
//	-drain duration      graceful-shutdown budget on SIGTERM (default 10s)
//
// The router serves the same /v1 and /v2 surface as a replica, plus:
//
//	GET /healthz           router liveness
//	GET /readyz            503 until at least one replica is healthy
//	GET /v1/cluster/info   per-replica health, readiness and manifest view
//
// Job ids returned through the router carry an r<N>- prefix naming the
// owning replica, so GET /v2/jobs/{id} (and /events) route back to it.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/holisticim/holisticim/internal/cluster"
)

func main() {
	var replicas []string
	var (
		addr        = flag.String("addr", ":9090", "listen address")
		replication = flag.Int("replication", 2, "rendezvous owners per key")
		poll        = flag.Duration("poll", time.Second, "replica health-poll interval")
		hedge       = flag.Duration("hedge", 250*time.Millisecond, "wait before hedging to the next candidate")
		retries     = flag.Int("retries", 0, "failover attempts after the first (0 = all replicas)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget on SIGTERM")
	)
	flag.Func("replica", "an imserver base URL (repeat once per replica)", func(v string) error {
		replicas = append(replicas, v)
		return nil
	})
	flag.Parse()

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Replicas:     replicas,
		Replication:  *replication,
		PollInterval: *poll,
		HedgeDelay:   *hedge,
		Retries:      *retries,
	})
	if err != nil {
		log.Fatalf("imrouter: %v", err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// Populate health before accepting traffic, then keep polling.
	rt.PollOnce(ctx)
	go rt.Run(ctx)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		cancel()
		log.Print("shutting down (press again to force)")
		shutCtx, shutCancel := context.WithTimeout(context.Background(), *drain)
		defer shutCancel()
		_ = httpSrv.Shutdown(shutCtx)
	}()

	log.Printf("imrouter listening on %s (%d replicas, replication %d)", *addr, len(replicas), *replication)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("imrouter: %v", err)
	}
	<-drained
}
