// Command imrouter is the cluster front door: a scatter-gather router
// that consistent-hashes queries onto a fixed set of imserver replicas.
//
// Every replica warm-loads the same snapshot store (imserver -store), so
// any replica can answer any query and routing is purely a cache-
// affinity and load decision: a key's rendezvous owners are preferred,
// batch /v2/query members scatter across the owner set in parallel when
// the cluster holds a matching sketch, and slow or shedding replicas
// are hedged and failed over within a bounded retry budget. Because
// sketch-served answers are deterministic functions of the snapshot,
// failover never changes a result — a routed batch is byte-equivalent
// to the same batch on a single node.
//
// Usage:
//
//	imrouter -addr :9090 \
//	  -replica http://127.0.0.1:8081 \
//	  -replica http://127.0.0.1:8082 \
//	  -replica http://127.0.0.1:8083
//
// Flags:
//
//	-addr string         listen address (default ":9090")
//	-replica url         an imserver base URL (repeat once per replica)
//	-replication int     rendezvous owners per key (default 2)
//	-poll duration       replica health-poll interval (default 1s)
//	-hedge duration      wait before hedging to the next candidate (default 250ms)
//	-retries int         failover attempts after the first (default: all replicas)
//	-shed-retries int    failover attempts after a 429 load shed before the
//	                     shed is surfaced with the largest Retry-After seen
//	                     (default 1; negative = never fail over on 429)
//	-drain duration      graceful-shutdown budget on SIGTERM (default 10s)
//	-log-level string    structured-log level: debug|info|warn|error (default "info")
//	-debug-addr string   serve net/http/pprof on this SEPARATE address (empty = off)
//
// The router serves the same /v1 and /v2 surface as a replica, plus:
//
//	GET /healthz           router liveness
//	GET /readyz            503 until at least one replica is healthy
//	GET /metrics           Prometheus text exposition: routing metrics
//	                       (proxy latency, hedges, failovers, scatters)
//	GET /v1/cluster/info   per-replica health, readiness and manifest view
//
// Every request gets an X-Request-ID at the router (inbound ids are
// trusted) and carries it to the replicas, so one id follows a request
// through every log line and error envelope in the cluster. The
// X-Client-ID and X-Priority headers ride along the same way (clients
// without an id are identified by remote address at the router), so the
// replicas' per-client rate limits and priority classes apply to the
// true end client rather than to the router's own address.
//
// Job ids returned through the router carry an r<N>- prefix naming the
// owning replica, so GET /v2/jobs/{id} (and /events) route back to it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/holisticim/holisticim/internal/cluster"
	"github.com/holisticim/holisticim/internal/obs"
)

func main() {
	var replicas []string
	var (
		addr        = flag.String("addr", ":9090", "listen address")
		replication = flag.Int("replication", 2, "rendezvous owners per key")
		poll        = flag.Duration("poll", time.Second, "replica health-poll interval")
		hedge       = flag.Duration("hedge", 250*time.Millisecond, "wait before hedging to the next candidate")
		retries     = flag.Int("retries", 0, "failover attempts after the first (0 = all replicas)")
		shedRetries = flag.Int("shed-retries", 1, "failover attempts after a 429 load shed (negative = never)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget on SIGTERM")
		logLevel    = flag.String("log-level", "info", "log level: debug|info|warn|error")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = off)")
	)
	flag.Func("replica", "an imserver base URL (repeat once per replica)", func(v string) error {
		replicas = append(replicas, v)
		return nil
	})
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imrouter:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, "imrouter", level)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Replicas:     replicas,
		Replication:  *replication,
		PollInterval: *poll,
		HedgeDelay:   *hedge,
		Retries:      *retries,
		ShedRetries:  *shedRetries,
		Metrics:      obs.NewRegistry(),
		Logger:       logger,
	})
	if err != nil {
		fatal("router construction failed", "error", err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *debugAddr != "" {
		go func() {
			dbg := &http.Server{Addr: *debugAddr, Handler: obs.DebugHandler(),
				ReadHeaderTimeout: 10 * time.Second}
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "error", err)
			}
		}()
	}

	// Populate health before accepting traffic, then keep polling.
	rt.PollOnce(ctx)
	go rt.Run(ctx)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		cancel()
		logger.Info("shutting down (press again to force)")
		shutCtx, shutCancel := context.WithTimeout(context.Background(), *drain)
		defer shutCancel()
		_ = httpSrv.Shutdown(shutCtx)
	}()

	logger.Info("imrouter listening", "addr", *addr, "replicas", len(replicas), "replication", *replication)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("listener failed", "error", err)
	}
	<-drained
}
