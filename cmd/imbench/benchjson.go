package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/holisticim/holisticim"
)

// benchResult is the machine-readable record one BENCH_<name>.json file
// carries, so the performance trajectory of every algorithm is trackable
// across PRs (compare ns_per_op between runs of the same schema).
type benchResult struct {
	Schema      string  `json:"schema"` // "holisticim-bench/1"
	Name        string  `json:"name"`
	Algorithm   string  `json:"algorithm"`
	Nodes       int32   `json:"nodes"`
	Arcs        int64   `json:"arcs"`
	K           int     `json:"k"`
	MCRuns      int     `json:"mc_runs,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MsPerOp     float64 `json:"ms_per_op"`
}

// benchFileName maps an algorithm name to its BENCH_*.json file,
// replacing characters that do not belong in filenames.
func benchFileName(name string) string {
	r := strings.NewReplacer("+", "plus", "/", "-", " ", "-")
	return "BENCH_" + r.Replace(name) + ".json"
}

// runBenchJSON micro-benchmarks each selection algorithm (plus the
// RR-sketch build and warm-select paths) on one deterministic BA graph
// and writes a BENCH_<name>.json per entry into dir.
func runBenchJSON(dir string, quick bool) int {
	n := int32(5000)
	mcRuns := 500
	if quick {
		n = 1500
		mcRuns = 120
	}
	const k = 10
	g := holisticim.GenerateBA(n, 3, 1)
	g.SetUniformProb(0.1)
	holisticim.AssignOpinions(g, holisticim.OpinionNormal, 2)
	holisticim.AssignInteractions(g, 3)

	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "imbench: %v\n", err)
		return 1
	}

	selectBench := func(alg holisticim.Algorithm) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := holisticim.SelectSeeds(g, k, alg, holisticim.Options{MCRuns: mcRuns, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	sketchOpts := holisticim.SketchOptions{Epsilon: 0.2, Seed: 1, BuildK: 2 * k}
	benches := []struct {
		name string
		alg  string
		fn   func(b *testing.B)
	}{
		{"easyim", "easyim", selectBench(holisticim.AlgEaSyIM)},
		{"osim", "osim", selectBench(holisticim.AlgOSIM)},
		{"tim+", "tim+", selectBench(holisticim.AlgTIMPlus)},
		{"imm", "imm", selectBench(holisticim.AlgIMM)},
		{"irie", "irie", selectBench(holisticim.AlgIRIE)},
		{"degree", "degree", selectBench(holisticim.AlgDegree)},
		{"degree-discount", "degree-discount", selectBench(holisticim.AlgDegreeDiscount)},
		{"pagerank", "pagerank", selectBench(holisticim.AlgPageRank)},
		{"sketch-build", "imm", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := holisticim.BuildSketch(context.Background(), g, sketchOpts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"sketch-select", "imm", func(b *testing.B) {
			sk, err := holisticim.BuildSketch(context.Background(), g, sketchOpts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sk.Select(context.Background(), 1+i%(2*k)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// Opinion-aware path: weighted ("oc") sketch build, weighted
		// selection and the sketch-served opinion estimate — the workload
		// the opinion fast paths replace Monte Carlo for.
		{"sketch-oc-build", "oc", func(b *testing.B) {
			opts := sketchOpts
			opts.Model = holisticim.ModelOC
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := holisticim.BuildSketch(context.Background(), g, opts); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"sketch-oc-select", "oc", func(b *testing.B) {
			opts := sketchOpts
			opts.Model = holisticim.ModelOC
			sk, err := holisticim.BuildSketch(context.Background(), g, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sk.Select(context.Background(), 1+i%(2*k)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"sketch-oc-estimate", "oc", func(b *testing.B) {
			opts := sketchOpts
			opts.Model = holisticim.ModelOC
			sk, err := holisticim.BuildSketch(context.Background(), g, opts)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sk.Select(context.Background(), k)
			if err != nil {
				b.Fatal(err)
			}
			estOpts := holisticim.Options{Model: holisticim.ModelOC, Epsilon: 0.2, Seed: 1, Sketch: sk}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := holisticim.EstimateOpinionSpreadContext(context.Background(), g, res.Seeds, estOpts); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	exit := 0
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "imbench: benchmark %s failed\n", bench.name)
			exit = 1
			continue
		}
		res := benchResult{
			Schema:      "holisticim-bench/1",
			Name:        bench.name,
			Algorithm:   bench.alg,
			Nodes:       g.NumNodes(),
			Arcs:        g.NumEdges(),
			K:           k,
			MCRuns:      mcRuns,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			MsPerOp:     float64(r.NsPerOp()) / 1e6,
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "imbench: %v\n", err)
			exit = 1
			continue
		}
		path := filepath.Join(dir, benchFileName(bench.name))
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "imbench: write %s: %v\n", path, err)
			exit = 1
			continue
		}
		fmt.Printf("%-18s %12.2f ms/op %12d B/op   -> %s\n",
			bench.name, res.MsPerOp, res.BytesPerOp, path)
	}
	return exit
}
