// Command imbench reproduces the paper's tables and figures on the scaled
// synthetic datasets (see DESIGN.md for the experiment index).
//
// Usage:
//
//	imbench -list
//	imbench -exp fig6a,fig6b [-quick] [-runs 10000] [-seed 1] [-csv out/]
//	imbench -all -quick
//	imbench -benchjson out/ [-quick]
//
// Each experiment prints one or more aligned ASCII tables; -csv
// additionally writes <id>.csv files. -benchjson skips the experiments
// and instead micro-benchmarks every selection algorithm (plus the
// RR-sketch build/select paths) on a deterministic BA graph, writing one
// machine-readable BENCH_<name>.json (ns/op, bytes/op) per entry so the
// performance trajectory is trackable across PRs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/holisticim/holisticim/internal/experiments"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available experiments and exit")
		exp       = flag.String("exp", "", "comma-separated experiment ids to run")
		all       = flag.Bool("all", false, "run every registered experiment")
		quick     = flag.Bool("quick", false, "reduced dataset scale and Monte-Carlo budget")
		runs      = flag.Int("runs", 0, "override Monte-Carlo evaluation runs (0 = default)")
		seed      = flag.Uint64("seed", 1, "master random seed")
		csv       = flag.String("csv", "", "directory to write <id>.csv files into")
		benchJSON = flag.String("benchjson", "", "directory to write per-algorithm BENCH_*.json micro-benchmarks into")
	)
	flag.Parse()

	if *benchJSON != "" {
		os.Exit(runBenchJSON(*benchJSON, *quick))
	}
	if *list {
		for _, id := range experiments.IDs() {
			e := experiments.Registry[id]
			fmt.Printf("%-26s %-12s %s\n", id, e.PaperRef, e.Title)
		}
		return
	}

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs()
	case *exp != "":
		ids = strings.Split(*exp, ",")
	default:
		fmt.Fprintln(os.Stderr, "imbench: pass -list, -all or -exp <ids>")
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.Config{Quick: *quick, MCRuns: *runs, Seed: *seed}
	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "imbench: %v\n", err)
			os.Exit(1)
		}
	}
	exitCode := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "imbench: unknown experiment %q (use -list)\n", id)
			exitCode = 1
			continue
		}
		fmt.Printf("### %s (%s) — %s\n", e.ID, e.PaperRef, e.Title)
		start := time.Now()
		tables := e.Run(cfg)
		for _, t := range tables {
			fmt.Println(t.Render())
			if *csv != "" {
				path := filepath.Join(*csv, t.ID+".csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "imbench: write %s: %v\n", path, err)
					exitCode = 1
				}
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	os.Exit(exitCode)
}
