// Command imserver serves influence-maximization as a long-lived HTTP
// service: graphs are loaded (or generated) once into an immutable
// registry, seed selections run as asynchronous jobs on a bounded worker
// pool with single-flight deduplication, and completed selections are
// answered from an LRU cache keyed by a canonical request fingerprint.
//
// Usage:
//
//	imserver -addr :8080 -demo 5000
//	imserver -load soc=soc.txt -load hep=nethept.bin -workers 4
//
// Flags:
//
//	-addr string        listen address (default ":8080")
//	-workers int        concurrent selection jobs (default 2)
//	-queue int          queued-job capacity before 429 (default 64)
//	-rate-rps float     per-client admission rate in requests/second for
//	                    work-inducing endpoints; a client past its token
//	                    bucket answers 429 + Retry-After (0 = off)
//	-rate-burst float   per-client bucket capacity — back-to-back requests
//	                    an idle client may fire (default: rate-rps)
//	-rate-clients int   client buckets tracked before LRU eviction
//	                    (default 4096)
//	-cache int          LRU result-cache entries (default 256)
//	-max-jobs int       retained job records (default 1024)
//	-load name=path     preload a graph file (repeatable; edge-list or binary)
//	-sketch name=path   preload an RR-sketch snapshot (built by imsketch)
//	                    for the already-loaded graph `name` (repeatable);
//	                    v2 (opinion-weighted "oc") snapshots serve the
//	                    opinion fast paths below
//	-demo n             preload "demo": a BA graph with n nodes, p=0.1,
//	                    normal opinions and random interactions (0 = off)
//	-allow-path-load    let POST /v1/graphs read server-local files
//	-store dir          warm-load graphs and sketches from a shared
//	                    snapshot store (see imsketch -publish); /readyz
//	                    answers 503 until the manifest is fully loaded
//	-watch duration     keep watching the store for manifest updates
//	                    (default 2s when -store is set; 0 = load once)
//	-advertise url      the address routers should reach this replica at,
//	                    echoed in GET /v1/cluster/info
//	-drain duration     graceful-shutdown budget for in-flight requests
//	                    and running jobs on SIGTERM (default 10s)
//	-log-level string   structured-log level: debug|info|warn|error
//	                    (default "info"; requests log at info, probe and
//	                    scrape routes at debug)
//	-debug-addr string  serve net/http/pprof on this SEPARATE address
//	                    (empty = off; never exposed on -addr)
//
// Endpoints:
//
//	GET  /healthz            liveness
//	GET  /readyz             readiness (503 while warm-loading/draining)
//	GET  /metrics            Prometheus text exposition (see docs/metrics.md)
//	GET  /v1/cluster/info    replica self-description for routers
//	GET  /v1/stats           serving counters (cache hits, jobs, sketches, ...)
//	GET  /v1/graphs          registered graphs
//	POST /v1/graphs          register a graph (generator spec or path)
//	GET  /v1/graphs/{name}   graph statistics
//	GET  /v1/sketches        registered RR-sketch indexes
//	POST /v1/sketches        build a sketch (async job)
//	GET  /v1/sketches/{id}   sketch details / counters
//	DELETE /v1/sketches/{id} evict a sketch
//	POST /v1/select          async seed selection -> job id | cached result
//	                         (optional timeout_ms bounds the job's runtime);
//	                         RIS-family requests matching a sketch are
//	                         answered synchronously from the index — with
//	                         model "oc" the weighted index maximizes
//	                         opinion coverage
//	GET  /v1/jobs/{id}       job status / result, incl. live seeds_done/k
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	POST /v1/estimate        synchronous spread estimate (bounded by the
//	                         request context): Monte Carlo, or served
//	                         from an opinion-weighted sketch for model
//	                         "oc" when one matches ("sketch":true)
//
//	POST /v2/query           the unified typed query: task "select" or
//	                         "estimate", one OR many k values/seed sets,
//	                         executed by the backend planner against
//	                         shared state (one RR collection or sketch
//	                         order serves every k <= max(ks)); the
//	                         response always carries the execution plan.
//	                         Sketch-served plans answer synchronously,
//	                         everything else runs as an async job.
//	GET  /v2/jobs/{id}        job status in the v2 shape (plan, members,
//	                         members_done, answer)
//	DELETE /v2/jobs/{id}     cancel, v2 shape
//	GET  /v2/jobs/{id}/events stream job progress as NDJSON (one JSON
//	                         object per line) or SSE with
//	                         Accept: text/event-stream; the final event
//	                         carries the answer
//
// The /v1 routes are shims over the same planner, so both surfaces share
// one result cache and job deduplication. Every error response uses the
// envelope {"error": {"code", "message"}}, and method mismatches answer
// 405 with an Allow header.
//
// Admission control: work-inducing requests pass a per-client token
// bucket (-rate-rps; clients are keyed by X-Client-ID, else remote
// address) and jobs queue in three service classes derived from the
// planned backend — interactive (sketch/heuristic), standard (ris),
// batch (cold mc) — drained in class order, so interactive work is
// never stuck behind a batch flood. X-Priority can demote a request's
// class (never promote). Requests whose deadline cannot cover the cost
// model's predicted wait+run time are shed up front; every 429/503
// rejection carries Retry-After and the uniform envelope.
//
// Jobs run under per-job cancellable contexts, so shutdown cancels
// in-flight selections instead of draining them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/internal/cluster"
	"github.com/holisticim/holisticim/internal/obs"
	"github.com/holisticim/holisticim/internal/service"
)

func main() {
	var loads, sketches []string
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 2, "concurrent selection jobs")
		queueCap  = flag.Int("queue", 64, "queued-job capacity before 429")
		cacheSize = flag.Int("cache", 256, "LRU result-cache entries")
		maxJobs   = flag.Int("max-jobs", 1024, "retained job records")
		rateRPS   = flag.Float64("rate-rps", 0, "per-client admission rate in req/s (0 = off)")
		rateBurst = flag.Float64("rate-burst", 0, "per-client bucket capacity (default: rate-rps)")
		rateCl    = flag.Int("rate-clients", 0, "client buckets tracked before LRU eviction (default 4096)")
		demo      = flag.Int("demo", 0, "preload a demo BA graph with this many nodes (0 = off)")
		allowPath = flag.Bool("allow-path-load", false, "let POST /v1/graphs read server-local files")
		storeDir  = flag.String("store", "", "warm-load from this shared snapshot store directory")
		watch     = flag.Duration("watch", 2*time.Second, "store re-sync interval (0 = load once)")
		advertise = flag.String("advertise", "", "address routers should reach this replica at")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget on SIGTERM")
		logLevel  = flag.String("log-level", "info", "log level: debug|info|warn|error")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = off)")
	)
	flag.Func("load", "preload a graph as name=path (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want name=path, got %q", v)
		}
		loads = append(loads, v)
		return nil
	})
	flag.Func("sketch", "preload an RR-sketch snapshot as graphname=path (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want graphname=path, got %q", v)
		}
		sketches = append(sketches, v)
		return nil
	})
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imserver:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, "imserver", level)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}
	metrics := obs.NewRegistry()

	srv := service.New(service.Config{
		Workers:       *workers,
		QueueCap:      *queueCap,
		CacheSize:     *cacheSize,
		MaxJobs:       *maxJobs,
		RateRPS:       *rateRPS,
		RateBurst:     *rateBurst,
		RateClients:   *rateCl,
		AllowPathLoad: *allowPath,
		// With a store configured the replica starts cold: /readyz flips
		// only once the watcher loads the full manifest.
		ColdStart: *storeDir != "",
		Advertise: *advertise,
		Metrics:   metrics,
		Logger:    logger,
	})
	defer srv.Close()

	for _, l := range loads {
		name, path, _ := strings.Cut(l, "=")
		if err := srv.Registry().LoadFile(name, path); err != nil {
			fatal("graph preload failed", "error", err)
		}
		logger.Info("loaded graph", "graph", name, "path", path)
	}
	for _, sk := range sketches {
		name, path, _ := strings.Cut(sk, "=")
		g, err := srv.Registry().Get(name)
		if err != nil {
			fatal("sketch preload failed: load the graph first with -load", "sketch", sk, "error", err)
		}
		id, err := srv.Sketches().LoadSnapshot(name, g, path)
		if err != nil {
			fatal("sketch preload failed", "sketch", sk, "error", err)
		}
		logger.Info("loaded sketch", "sketch", id, "path", path)
	}
	if *demo > 0 {
		g := holisticim.GenerateBA(int32(*demo), 3, 1)
		g.SetUniformProb(0.1)
		holisticim.AssignOpinions(g, holisticim.OpinionNormal, 2)
		holisticim.AssignInteractions(g, 3)
		if err := srv.Registry().Add("demo", g, "generated:ba"); err != nil {
			fatal("demo graph registration failed", "error", err)
		}
		logger.Info("registered demo BA graph", "nodes", g.NumNodes(), "arcs", g.NumEdges())
	}

	if *debugAddr != "" {
		go func() {
			dbg := &http.Server{Addr: *debugAddr, Handler: obs.DebugHandler(),
				ReadHeaderTimeout: 10 * time.Second}
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("pprof listener failed", "error", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *storeDir != "" {
		st, err := cluster.OpenStore(*storeDir)
		if err != nil {
			fatal("store open failed", "store", *storeDir, "error", err)
		}
		watcher := cluster.NewWatcher(st, srv, *watch)
		watcher.OnSync = func(res cluster.SyncResult, err error) {
			switch {
			case err != nil:
				logger.Warn("store sync failed", "error", err)
			case res.GraphsLoaded+res.SketchesLoaded+res.SketchesEvicted > 0:
				logger.Info("store sync",
					"manifest_version", res.ManifestVersion,
					"graphs_loaded", res.GraphsLoaded,
					"sketches_loaded", res.SketchesLoaded,
					"sketches_evicted", res.SketchesEvicted)
			}
		}
		// The first sync may fail (publisher not done yet); the replica
		// stays NOT ready and the watch loop keeps retrying.
		if _, err := watcher.SyncOnce(ctx); err != nil {
			logger.Warn("store sync failed; replica not ready, retrying", "error", err)
			if *watch <= 0 {
				fatal("-watch 0 with a failing store load")
			}
		}
		if *watch > 0 {
			go watcher.Run(ctx)
		}
	}

	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Unregister so a second signal force-kills instead of being
		// swallowed while we drain in-flight selections.
		cancel()
		logger.Info("shutting down (press again to force)")
		shutCtx, shutCancel := context.WithTimeout(context.Background(), *drain)
		defer shutCancel()
		// Flip /readyz first so routers stop sending traffic, then drain
		// running jobs and in-flight HTTP within the same budget.
		if err := srv.Shutdown(shutCtx); err != nil {
			logger.Warn("job drain incomplete", "error", err)
		}
		_ = httpSrv.Shutdown(shutCtx)
	}()

	logger.Info("imserver listening",
		slog.String("addr", *addr),
		slog.Int("graphs", srv.Registry().Len()),
		slog.Int("workers", *workers))
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("listener failed", "error", err)
	}
	// ListenAndServe returns as soon as the listener closes; wait for
	// Shutdown to finish draining in-flight HTTP requests, then cancel
	// any still-running selection jobs (deferred srv.Close) — shutdown
	// never waits on a heavyweight selection.
	<-drained
	logger.Info("cancelling in-flight selection jobs")
}
