// Command imlint is the project's invariant multichecker: a suite of
// go/analysis-style checks for the determinism, locking and serving
// rules that keep this codebase correct and that no off-the-shelf
// linter knows about. CI runs it on every change:
//
//	go run ./cmd/imlint ./...
//
// Exit status is 0 when the tree is clean and 1 when any finding
// survives suppression. Suppress a finding by putting
//
//	//lint:ignore imlint/<analyzer> <reason>
//
// on (or directly above) the flagged line; the reason is mandatory and
// a directive that stops matching anything is itself reported as stale.
// docs/lint.md documents each analyzer's invariant with flagged and
// clean examples.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/holisticim/holisticim/internal/analysis"
)

func main() {
	var (
		list = flag.Bool("list", false, "list the analyzers and exit")
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: imlint [-list] [-only name,...] [packages]\n\n"+
			"Runs the project's invariant analyzers over the given package\n"+
			"patterns (default ./...). See docs/lint.md.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("imlint/%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "imlint: unknown analyzer %q (try -list)\n", name)
			os.Exit(2)
		}
		analyzers = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "imlint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imlint:", err)
		os.Exit(2)
	}
	failed := false
	for _, pkg := range pkgs {
		for _, f := range analysis.RunPackage(pkg, analyzers) {
			failed = true
			fmt.Println(f)
		}
	}
	if failed {
		os.Exit(1)
	}
}
