// Command imrun selects seeds with one algorithm on one graph and reports
// the selection plus its estimated spread, making individual experiments
// scriptable.
//
// Selection runs under a signal-aware context: Ctrl-C (or an expired
// -timeout) stops it cooperatively and the partial seed prefix selected
// so far is still reported. -progress streams one line per chosen seed.
//
// A comma-separated -ks list runs a batch query through the unified
// planner (holisticim.Run): every budget is served from shared state —
// one RR collection or one selector run at the largest k — and the
// execution plan says which backend ran and why (-explain prints it for
// single selections too).
//
// Usage:
//
//	imrun -graph graph.txt -alg osim -k 50 -model oi-ic
//	imrun -dataset nethept -quick -alg easyim -k 20 -model ic
//	imrun -dataset soc -alg greedy -k 100 -timeout 30s -progress
//	imrun -dataset soc -alg imm -ks 5,10,25,50 -explain
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/datasets"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list file (u v [p [phi]] lines)")
		dataset   = flag.String("dataset", "", "named dataset stand-in instead of -graph")
		quick     = flag.Bool("quick", false, "named datasets: quick tier")
		alg       = flag.String("alg", "easyim", "algorithm: easyim|osim|greedy|celf++|modified-greedy|tim+|imm|irie|simpath|degree|degree-discount|pagerank")
		model     = flag.String("model", "", "diffusion model: ic|wc|lt|oi-ic|oi-lt|oc (default per algorithm)")
		k         = flag.Int("k", 10, "seed budget")
		ks        = flag.String("ks", "", "comma-separated seed budgets: run a batch query over shared state (overrides -k)")
		explain   = flag.Bool("explain", false, "print the planner's backend choice per member")
		l         = flag.Int("l", 3, "EaSyIM/OSIM path length")
		lambda    = flag.Float64("lambda", 1, "MEO penalty λ")
		eps       = flag.Float64("eps", 0.1, "TIM+/IMM ε")
		runs      = flag.Int("runs", 10000, "Monte-Carlo runs (selection & evaluation)")
		seed      = flag.Uint64("seed", 1, "random seed")
		opinions  = flag.String("opinions", "", "assign opinions before running: uniform|normal|polarized")
		p         = flag.Float64("p", 0.1, "edge probabilities: >=0 uniform (paper default 0.1), -1 weighted cascade, -2 keep file/dataset values")
		thetaCap  = flag.Int("theta-cap", 0, "cap TIM+/IMM RR sets (0 = none)")
		timeout   = flag.Duration("timeout", 0, "bound selection wall-clock time; 0 = none (partial seeds are reported on expiry)")
		progress  = flag.Bool("progress", false, "print one line per chosen seed while selecting")
	)
	flag.Parse()

	var g *holisticim.Graph
	var err error
	switch {
	case *graphPath != "":
		f, ferr := os.Open(*graphPath)
		if ferr != nil {
			fatal(ferr)
		}
		// Sniff the binary magic so both formats load transparently.
		magic := make([]byte, 4)
		if n, _ := f.Read(magic); n == 4 && string(magic) == "HIMG" {
			f.Seek(0, 0)
			g, err = holisticim.ReadBinaryGraph(f)
		} else {
			f.Seek(0, 0)
			g, err = holisticim.ReadEdgeList(f)
		}
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *dataset != "":
		g, err = datasets.Load(*dataset, *quick, *seed)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("pass -graph or -dataset"))
	}

	switch {
	case *p >= 0:
		g.SetUniformProb(*p)
	case *p == -1:
		g.SetWeightedCascadeProb()
	}
	if *opinions != "" {
		var dist holisticim.OpinionDistribution
		switch *opinions {
		case "uniform":
			dist = holisticim.OpinionUniform
		case "normal":
			dist = holisticim.OpinionNormal
		case "polarized":
			dist = holisticim.OpinionPolarized
		default:
			fatal(fmt.Errorf("unknown opinion distribution %q", *opinions))
		}
		holisticim.AssignOpinions(g, dist, *seed+2)
		holisticim.AssignInteractions(g, *seed+3)
	}

	budgets := []int{*k}
	if *ks != "" {
		budgets = nil
		for _, part := range strings.Split(*ks, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -ks entry %q: %v", part, err))
			}
			budgets = append(budgets, v)
		}
		if len(budgets) == 0 {
			fatal(fmt.Errorf("-ks parsed no budgets"))
		}
	}
	singleK := budgets[0] // the effective budget when -ks names one (or none)

	opts := holisticim.Options{
		Model:       holisticim.ModelKind(*model),
		PathLength:  *l,
		Lambda:      *lambda,
		Epsilon:     *eps,
		MCRuns:      *runs,
		Seed:        *seed,
		TIMThetaCap: *thetaCap,
		Deadline:    *timeout,
	}
	if *progress {
		opts.Progress = func(seedIdx int, seed holisticim.NodeID, elapsed time.Duration) {
			fmt.Printf("seed %3d/%d: node %d (%v)\n", seedIdx+1, singleK, seed, elapsed.Round(time.Millisecond))
		}
	}

	// Ctrl-C / SIGTERM cancels the selection cooperatively; the partial
	// prefix selected so far is still reported below.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	query := holisticim.Query{
		Task:      holisticim.TaskSelect,
		Algorithm: holisticim.Algorithm(*alg),
		Ks:        budgets,
		Options:   opts,
	}
	if *explain {
		plan, perr := holisticim.PlanQuery(g, query)
		if perr != nil {
			fatal(perr)
		}
		for _, line := range plan.Explain() {
			fmt.Printf("plan      : %s\n", line)
		}
	}
	if len(budgets) > 1 {
		runBatch(ctx, g, query, opts, *lambda, *model, *opinions)
		return
	}

	start := time.Now()
	res, err := holisticim.SelectSeedsContext(ctx, g, singleK, holisticim.Algorithm(*alg), opts)
	if err != nil && !res.Partial {
		fatal(err)
	}
	fmt.Printf("algorithm : %s\n", res.Algorithm)
	fmt.Printf("graph     : %d nodes, %d arcs\n", g.NumNodes(), g.NumEdges())
	state := ""
	if res.Partial {
		state = fmt.Sprintf(" [PARTIAL: %d/%d seeds, %v]", len(res.Seeds), singleK, err)
	}
	fmt.Printf("selection : %v (%v)%s\n", res.Seeds, time.Since(start).Round(time.Millisecond), state)
	for name, v := range res.Metrics {
		fmt.Printf("metric    : %s = %g\n", name, v)
	}
	if len(res.Seeds) == 0 {
		fatal(fmt.Errorf("no seeds selected before interruption"))
	}

	// Estimation runs under a fresh signal context so a second Ctrl-C
	// still stops the program during a heavyweight evaluation.
	ectx, ecancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer ecancel()
	est, eerr := holisticim.EstimateSpreadContext(ectx, g, res.Seeds, opts)
	if eerr != nil {
		fatal(eerr)
	}
	fmt.Printf("spread σ(S)            : %.2f (over %d runs)\n", est.Spread, est.Runs)
	if *opinions != "" || holisticim.ModelKind(*model).OpinionAware() {
		oest, oerr := holisticim.EstimateOpinionSpreadContext(ectx, g, res.Seeds, opts)
		if oerr != nil {
			fatal(oerr)
		}
		fmt.Printf("opinion spread σ_o(S)  : %.3f\n", oest.OpinionSpread)
		fmt.Printf("effective spread (λ=%g): %.3f\n", *lambda, oest.EffectiveOpinionSpread(*lambda))
	}
	if res.Partial {
		os.Exit(2) // partial outcome is distinguishable for scripts
	}
}

// runBatch executes a multi-k query through the planner and reports one
// line per member plus a spread estimate of the largest selection.
func runBatch(ctx context.Context, g *holisticim.Graph, query holisticim.Query, opts holisticim.Options, lambda float64, model, opinions string) {
	start := time.Now()
	ans, err := holisticim.Run(ctx, g, query)
	if err != nil && len(ans.Members) == 0 {
		fatal(err)
	}
	fmt.Printf("graph     : %d nodes, %d arcs\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("batch     : %d members in %v\n", len(ans.Members), time.Since(start).Round(time.Millisecond))
	var largest *holisticim.Member
	for i := range ans.Members {
		m := &ans.Members[i]
		state := ""
		if m.Result.Partial {
			state = " [PARTIAL]"
		}
		fmt.Printf("k=%-5d   : %v (%v)%s\n", m.K, m.Result.Seeds, m.Result.Took.Round(time.Millisecond), state)
		if largest == nil || m.K > largest.K {
			largest = m
		}
	}
	if err != nil {
		fmt.Printf("interrupted: %v\n", err)
		os.Exit(2)
	}
	ectx, ecancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer ecancel()
	est, eerr := holisticim.EstimateSpreadContext(ectx, g, largest.Result.Seeds, opts)
	if eerr != nil {
		fatal(eerr)
	}
	fmt.Printf("spread σ(S) at k=%d     : %.2f (over %d runs)\n", largest.K, est.Spread, est.Runs)
	if opinions != "" || holisticim.ModelKind(model).OpinionAware() {
		oest, oerr := holisticim.EstimateOpinionSpreadContext(ectx, g, largest.Result.Seeds, opts)
		if oerr != nil {
			fatal(oerr)
		}
		fmt.Printf("opinion spread σ_o(S)  : %.3f\n", oest.OpinionSpread)
		fmt.Printf("effective spread (λ=%g): %.3f\n", lambda, oest.EffectiveOpinionSpread(lambda))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "imrun: %v\n", err)
	os.Exit(1)
}
