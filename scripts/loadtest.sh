#!/usr/bin/env bash
# loadtest.sh — measure serving capacity of one imserver (or a whole
# routed cluster: point TARGET at the router). Publishes a BA snapshot,
# starts one replica, and drives concurrent queries. Uses hey or vegeta
# when installed; otherwise falls back to a curl+xargs loop (lower
# ceiling, same methodology).
#
# Scenarios (SCENARIO env, default "capacity"):
#
#   capacity  sketch-served /v2/query throughput + server-side latency
#             quantiles. RATE_RPS=n starts the replica with per-client
#             admission control on, to measure its overhead.
#
#   mixed     admission-control overload drill: cold-MC batch selections
#             flood a deliberately tiny job pool (1 worker, short queue)
#             while sketch-served interactive queries keep arriving on
#             their own lane. Asserts the interactive p99 stays under
#             MAX_P99_MS (default 500) and that batch overflow was shed
#             (429 + Retry-After) — the subsystem's overload contract.
#
#   ./scripts/loadtest.sh [nodes] [requests] [concurrency]
#   SCENARIO=mixed ./scripts/loadtest.sh 20000 400 16
#   RATE_RPS=1000 ./scripts/loadtest.sh                   # admission on
#   TARGET=http://127.0.0.1:19090 ./scripts/loadtest.sh   # reuse a running server/router
set -euo pipefail

NODES="${1:-50000}"
REQUESTS="${2:-2000}"
CONCURRENCY="${3:-32}"
SCENARIO="${SCENARIO:-capacity}"
MAX_P99_MS="${MAX_P99_MS:-500}"
RATE_RPS="${RATE_RPS:-0}"
BATCH_JOBS="${BATCH_JOBS:-24}"
PORT="${PORT:-18091}"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

BATCH='{"graph":"soc","algorithm":"imm","ks":[10,25,50]}'

# bucket_quantile METRIC_LINE_REGEX Q: interpolate the Q-quantile (in
# milliseconds) from a cumulative Prometheus histogram in the target's
# scrape — the same math as PromQL histogram_quantile. Prints -1 when
# the scrape holds no samples.
bucket_quantile() {
  curl -sf "$TARGET/metrics" | awk -v pat="$1" -v q="$2" '
    $0 ~ pat {
      le = $0; sub(/.*le="/, "", le); sub(/".*/, "", le)
      n = split($0, parts, " ")
      bound[++nb] = le; cum[nb] = parts[n]
    }
    END {
      if (nb == 0 || cum[nb] == 0) { print -1; exit }
      rank = q * cum[nb]
      for (i = 1; i <= nb; i++) if (cum[i] >= rank) break
      if (bound[i] == "+Inf") { printf "%.1f", bound[nb - 1] * 1000; exit }
      lo = (i > 1) ? bound[i - 1] : 0; locum = (i > 1) ? cum[i - 1] : 0
      printf "%.1f", (lo + (bound[i] - lo) * (rank - locum) / (cum[i] - locum)) * 1000
    }'
}

report_quantiles() { # $1 = bucket-line regex, $2 = heading
  echo "== $2 (server-side, from $TARGET/metrics)"
  for q in 0.50 0.95 0.99; do
    ms="$(bucket_quantile "$1" "$q")"
    if [ "$ms" = "-1" ]; then echo "   (no samples in scrape)"; return; fi
    echo "   p${q#0.}   ${ms} ms"
  done
}

if [ -z "${TARGET:-}" ]; then
  SERVER_FLAGS=(-addr ":$PORT" -store "$WORK/store" -drain 2s)
  if [ "$SCENARIO" = "mixed" ]; then
    # One worker and a short queue make saturation reproducible: the
    # batch lane fills instantly; the interactive lane must not care.
    SERVER_FLAGS+=(-workers 1 -queue 8)
  fi
  if [ "$RATE_RPS" != "0" ]; then
    SERVER_FLAGS+=(-rate-rps "$RATE_RPS")
  fi
  echo "== building and starting one replica over a ${NODES}-node BA snapshot"
  go build -o "$WORK/bin/" ./cmd/imgen ./cmd/imsketch ./cmd/imserver
  "$WORK/bin/imgen" -type ba -n "$NODES" -format binary -out "$WORK/soc.bin"
  "$WORK/bin/imsketch" -publish "$WORK/store" -graph "$WORK/soc.bin" -name soc -eps 0.1 -seed 1 -k 50
  "$WORK/bin/imserver" "${SERVER_FLAGS[@]}" &
  PIDS+=($!)
  TARGET="http://127.0.0.1:$PORT"
  for _ in $(seq 1 150); do
    [ "$(curl -s -o /dev/null -w '%{http_code}' "$TARGET/readyz")" = "200" ] && break
    sleep 0.2
  done
fi

# First request pays for the memoized greedy order; do it once outside
# the measurement window.
curl -sf "$TARGET/v2/query" -H 'X-Client-ID: loadtest-warm' -d "$BATCH" -o /dev/null

if [ "$SCENARIO" = "mixed" ]; then
  echo "== flooding the batch lane: $BATCH_JOBS cold-MC selections (unique fingerprints)"
  for i in $(seq 1 "$BATCH_JOBS"); do
    curl -s -o /dev/null -H 'X-Client-ID: batch-flood' -H 'X-Priority: batch' \
      -d "{\"graph\":\"soc\",\"algorithm\":\"greedy\",\"k\":5,\"options\":{\"mc_runs\":$((10000 + i))}}" \
      "$TARGET/v1/select" || true
  done
fi

echo "== load: $REQUESTS interactive requests, concurrency $CONCURRENCY, target $TARGET"
if command -v hey >/dev/null; then
  hey -n "$REQUESTS" -c "$CONCURRENCY" -m POST -T application/json \
    -H 'X-Client-ID: interactive' -d "$BATCH" "$TARGET/v2/query"
elif command -v vegeta >/dev/null; then
  printf '%s' "$BATCH" > "$WORK/body.json"
  echo "POST $TARGET/v2/query" | vegeta attack -body "$WORK/body.json" \
    -header 'Content-Type: application/json' -header 'X-Client-ID: interactive' \
    -duration 15s -rate 0 -max-workers "$CONCURRENCY" |
    vegeta report
else
  echo "   (hey/vegeta not installed; curl+xargs fallback)"
  start="$(date +%s.%N)"
  seq "$REQUESTS" | xargs -P "$CONCURRENCY" -I{} \
    curl -s -o /dev/null -w '%{http_code}\n' -H 'X-Client-ID: interactive' \
    "$TARGET/v2/query" -d "$BATCH" > "$WORK/codes"
  end="$(date +%s.%N)"
  elapsed="$(echo "$end $start" | awk '{printf "%.2f", $1-$2}')"
  ok="$(grep -c '^200$' "$WORK/codes" || true)"
  echo "   $ok/$REQUESTS ok in ${elapsed}s -> $(echo "$ok $elapsed" | awk '{printf "%.0f", $1/$2}') req/s"
  [ "$ok" = "$REQUESTS" ] || { echo "loadtest: $((REQUESTS - ok)) non-200 responses" >&2; exit 1; }
fi

if [ "$SCENARIO" = "mixed" ]; then
  report_quantiles '^im_query_duration_seconds_bucket[{]backend="sketch"' \
    "interactive (sketch-backed) latency under batch flood"
  echo "== admission counters"
  curl -sf "$TARGET/metrics" |
    grep -E '^im_jobs_(shed_by_priority_total|queue_depth_by_priority)[{]' || true

  p99="$(bucket_quantile '^im_query_duration_seconds_bucket[{]backend="sketch"' 0.99)"
  if [ "$p99" = "-1" ]; then
    echo "overload-smoke: no interactive samples recorded" >&2
    exit 1
  fi
  if awk -v p="$p99" -v max="$MAX_P99_MS" 'BEGIN { exit !(p > max) }'; then
    echo "overload-smoke: interactive p99 ${p99}ms exceeds ${MAX_P99_MS}ms under batch flood" >&2
    exit 1
  fi
  sheds="$(curl -sf "$TARGET/metrics" |
    awk '/^im_jobs_shed_by_priority_total[{]priority="batch",reason="queue_full"[}]/ {print $2+0}')"
  if [ -z "$sheds" ] || [ "$sheds" -lt 1 ]; then
    echo "overload-smoke: batch flood was never shed (queue never overflowed?)" >&2
    exit 1
  fi
  echo "== overload-smoke OK: interactive p99 ${p99}ms <= ${MAX_P99_MS}ms, $sheds batch sheds"
else
  report_quantiles '^http_request_duration_seconds_bucket[{].*route="/v2/query"' \
    "/v2/query latency"
fi
