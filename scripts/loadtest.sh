#!/usr/bin/env bash
# loadtest.sh — measure sketch-served /v2/query capacity of one imserver
# (or a whole routed cluster: point TARGET at the router). Publishes a
# BA snapshot, starts one replica, and drives concurrent batch queries.
# Uses hey or vegeta when installed; otherwise falls back to a
# curl+xargs loop (lower ceiling, same methodology).
#
#   ./scripts/loadtest.sh [nodes] [requests] [concurrency]
#   TARGET=http://127.0.0.1:19090 ./scripts/loadtest.sh   # reuse a running server/router
set -euo pipefail

NODES="${1:-50000}"
REQUESTS="${2:-2000}"
CONCURRENCY="${3:-32}"
PORT="${PORT:-18091}"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

BATCH='{"graph":"soc","algorithm":"imm","ks":[10,25,50]}'

if [ -z "${TARGET:-}" ]; then
  echo "== building and starting one replica over a ${NODES}-node BA snapshot"
  go build -o "$WORK/bin/" ./cmd/imgen ./cmd/imsketch ./cmd/imserver
  "$WORK/bin/imgen" -type ba -n "$NODES" -format binary -out "$WORK/soc.bin"
  "$WORK/bin/imsketch" -publish "$WORK/store" -graph "$WORK/soc.bin" -name soc -eps 0.1 -seed 1 -k 50
  "$WORK/bin/imserver" -addr ":$PORT" -store "$WORK/store" &
  PIDS+=($!)
  TARGET="http://127.0.0.1:$PORT"
  for _ in $(seq 1 150); do
    [ "$(curl -s -o /dev/null -w '%{http_code}' "$TARGET/readyz")" = "200" ] && break
    sleep 0.2
  done
fi

# First request pays for the memoized greedy order; do it once outside
# the measurement window.
curl -sf "$TARGET/v2/query" -d "$BATCH" -o /dev/null

echo "== load: $REQUESTS requests, concurrency $CONCURRENCY, target $TARGET"
if command -v hey >/dev/null; then
  hey -n "$REQUESTS" -c "$CONCURRENCY" -m POST -T application/json -d "$BATCH" "$TARGET/v2/query"
elif command -v vegeta >/dev/null; then
  printf '%s' "$BATCH" > "$WORK/body.json"
  echo "POST $TARGET/v2/query" | vegeta attack -body "$WORK/body.json" \
    -header 'Content-Type: application/json' -duration 15s -rate 0 -max-workers "$CONCURRENCY" |
    vegeta report
else
  echo "   (hey/vegeta not installed; curl+xargs fallback)"
  start="$(date +%s.%N)"
  seq "$REQUESTS" | xargs -P "$CONCURRENCY" -I{} \
    curl -s -o /dev/null -w '%{http_code}\n' "$TARGET/v2/query" -d "$BATCH" > "$WORK/codes"
  end="$(date +%s.%N)"
  elapsed="$(echo "$end $start" | awk '{printf "%.2f", $1-$2}')"
  ok="$(grep -c '^200$' "$WORK/codes" || true)"
  echo "   $ok/$REQUESTS ok in ${elapsed}s -> $(echo "$ok $elapsed" | awk '{printf "%.0f", $1/$2}') req/s"
  [ "$ok" = "$REQUESTS" ] || { echo "loadtest: $((REQUESTS - ok)) non-200 responses" >&2; exit 1; }
fi

# Server-side latency distribution: scrape the target's request-duration
# histogram and interpolate quantiles from the cumulative buckets (same
# math as PromQL histogram_quantile).
echo "== server-side latency from $TARGET/metrics"
curl -sf "$TARGET/metrics" | awk '
  /^http_request_duration_seconds_bucket{.*route="\/v2\/query".*} / {
    le = $0; sub(/.*le="/, "", le); sub(/".*/, "", le)
    n = split($0, parts, " ")
    bound[++nb] = le; cum[nb] = parts[n]
  }
  END {
    if (nb == 0 || cum[nb] == 0) { print "   (no /v2/query samples in scrape)"; exit 0 }
    total = cum[nb]
    split("0.50 0.95 0.99", qs, " ")
    for (qi = 1; qi <= 3; qi++) {
      rank = qs[qi] * total
      for (i = 1; i <= nb; i++) if (cum[i] >= rank) break
      if (bound[i] == "+Inf") { est = bound[nb - 1]; suffix = "+" }
      else {
        lo = (i > 1) ? bound[i - 1] : 0; locum = (i > 1) ? cum[i - 1] : 0
        est = lo + (bound[i] - lo) * (rank - locum) / (cum[i] - locum); suffix = ""
      }
      printf "   p%-4s %.1f ms%s\n", qs[qi] * 100, est * 1000, suffix
    }
    printf "   count %d\n", total
  }'
