#!/usr/bin/env bash
# cluster-smoke.sh — end-to-end cluster check: publish a snapshot store,
# start 2 replicas + the router, and assert a routed (scattered) batch
# /v2/query is byte-equivalent to the same batch answered by a single
# node, timing fields aside. Run from the repository root. Needs jq.
#
#   ./scripts/cluster-smoke.sh [nodes]
set -euo pipefail

NODES="${1:-20000}"
PORT_A="${PORT_A:-18081}"
PORT_B="${PORT_B:-18082}"
PORT_R="${PORT_R:-19090}"
WORK="$(mktemp -d)"
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

command -v jq >/dev/null || { echo "cluster-smoke: jq is required" >&2; exit 1; }

echo "== building binaries"
go build -o "$WORK/bin/" ./cmd/imgen ./cmd/imsketch ./cmd/imserver ./cmd/imrouter

echo "== publishing a ${NODES}-node BA snapshot into the store"
"$WORK/bin/imgen" -type ba -n "$NODES" -format binary -out "$WORK/soc.bin"
"$WORK/bin/imsketch" -publish "$WORK/store" -graph "$WORK/soc.bin" -name soc -eps 0.1 -seed 1 -k 50

echo "== starting 2 replicas + router"
"$WORK/bin/imserver" -addr ":$PORT_A" -store "$WORK/store" -advertise "http://127.0.0.1:$PORT_A" &
PIDS+=($!)
"$WORK/bin/imserver" -addr ":$PORT_B" -store "$WORK/store" -advertise "http://127.0.0.1:$PORT_B" &
PIDS+=($!)
"$WORK/bin/imrouter" -addr ":$PORT_R" \
  -replica "http://127.0.0.1:$PORT_A" \
  -replica "http://127.0.0.1:$PORT_B" &
PIDS+=($!)

wait_200() {
  local url="$1" what="$2"
  for _ in $(seq 1 100); do
    if [ "$(curl -s -o /dev/null -w '%{http_code}' "$url")" = "200" ]; then return 0; fi
    sleep 0.2
  done
  echo "cluster-smoke: $what never became ready ($url)" >&2
  exit 1
}
wait_200 "http://127.0.0.1:$PORT_A/readyz" "replica A"
wait_200 "http://127.0.0.1:$PORT_B/readyz" "replica B"
wait_200 "http://127.0.0.1:$PORT_R/readyz" "router"

BATCH='{"graph":"soc","algorithm":"imm","ks":[10,20,30,40,50]}'
# Drop the only legitimately nondeterministic fields: wall-clock timings.
NORMALIZE='del(.answer.took_ms) | .answer.members |= map(if .result then .result.took_ms = 0 else . end)'

echo "== single-node batch (replica A directly)"
single="$(curl -sf "http://127.0.0.1:$PORT_A/v2/query" -d "$BATCH" | jq -S "$NORMALIZE")"
[ "$(jq -r .sketch <<<"$single")" = "true" ] || { echo "single-node batch was not sketch-served" >&2; exit 1; }

echo "== routed batch (through the router)"
headers="$WORK/routed.headers"
routed="$(curl -sf -D "$headers" "http://127.0.0.1:$PORT_R/v2/query" -d "$BATCH" | jq -S "$NORMALIZE")"
grep -qi '^x-router-scatter: 1' "$headers" || { echo "routed batch was not scattered" >&2; cat "$headers" >&2; exit 1; }

if ! diff <(echo "$single") <(echo "$routed"); then
  echo "cluster-smoke: routed batch differs from single node" >&2
  exit 1
fi
echo "== OK: routed 5-k batch is byte-equivalent to the single-node answer"

echo "== cluster info"
curl -sf "http://127.0.0.1:$PORT_R/v1/cluster/info" | jq '{manifest_version, replicas: (.replicas | with_entries(.value |= {healthy, manifest_version: .info.manifest_version}))}'

# Scrape router and replica /metrics: every line must be a well-formed
# HELP/TYPE comment or `name{labels} value` sample, and the HTTP request
# counters must have counted the traffic we just drove.
check_metrics() {
  local url="$1"
  local what="$2"
  local scrape="$WORK/metrics.$what"
  curl -sf "$url/metrics" > "$scrape" || { echo "cluster-smoke: $what /metrics scrape failed" >&2; exit 1; }
  if ! awk '
    /^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*/ { next }
    /^[a-zA-Z_:][a-zA-Z0-9_:]*({[^}]*})? -?[0-9]/ { next }
    /^[a-zA-Z_:][a-zA-Z0-9_:]*({[^}]*})? \+Inf$/ { next }
    { print "malformed exposition line " NR ": " $0; bad = 1 }
    END { exit bad }
  ' "$scrape"; then
    echo "cluster-smoke: $what /metrics is not valid text exposition" >&2
    exit 1
  fi
  local served
  served="$(awk '/^http_requests_total{/ { sum += $NF } END { print sum + 0 }' "$scrape")"
  if [ "$served" -le 0 ]; then
    echo "cluster-smoke: $what http_requests_total is zero after traffic" >&2
    exit 1
  fi
  echo "   $what: exposition valid, http_requests_total=$served"
}
echo "== scraping /metrics"
check_metrics "http://127.0.0.1:$PORT_R" router
check_metrics "http://127.0.0.1:$PORT_A" replica-a
echo "== OK: router and replica expose valid Prometheus metrics with counted traffic"
