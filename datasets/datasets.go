// Package datasets exposes the repository's synthetic dataset generators
// and the two real-world-study pipelines of the paper's Section 4 (the
// Twitter topic study and the PAKDD churn study) behind a small public
// API, so example programs and downstream users can reproduce the
// evaluation without reaching into internal packages.
package datasets

import (
	"fmt"
	"sort"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/internal/churn"
	"github.com/holisticim/holisticim/internal/experiments"
	"github.com/holisticim/holisticim/internal/twitter"
)

// Names returns the registered Table-2 stand-in dataset names.
func Names() []string {
	out := make([]string, 0, len(experiments.Datasets))
	for name := range experiments.Datasets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Load builds the named scaled stand-in dataset (see DESIGN.md §6).
// quick selects the reduced tier used by tests and benchmarks.
func Load(name string, quick bool, seed uint64) (*holisticim.Graph, error) {
	spec, ok := experiments.Datasets[name]
	if !ok {
		return nil, fmt.Errorf("datasets: unknown dataset %q (have %v)", name, Names())
	}
	_ = spec
	return experiments.LoadDataset(name, experiments.Config{Quick: quick, Seed: seed}), nil
}

// ChurnOptions configures the churn pipeline (Sec. 4.1.2).
type ChurnOptions struct {
	Customers           int     // default 2000
	SimilarityThreshold float64 // default 0.88
	MaxDegree           int     // default 30
	Seed                uint64
}

// ChurnStudy is the assembled churn pipeline output.
type ChurnStudy struct {
	// Graph is the similarity graph with churn affinities installed as
	// node opinions (−1 ≈ churner) and similarity as influence
	// probability.
	Graph *holisticim.Graph
	// Churned flags the ground-truth label per node.
	Churned []bool
}

// BuildChurnStudy runs the full Sec.-4.1.2 pipeline: synthetic customer
// table → similarity graph → label propagation → opinions.
func BuildChurnStudy(opts ChurnOptions) *ChurnStudy {
	if opts.Customers <= 0 {
		opts.Customers = 2000
	}
	if opts.SimilarityThreshold <= 0 {
		opts.SimilarityThreshold = 0.88
	}
	if opts.MaxDegree <= 0 {
		opts.MaxDegree = 30
	}
	g, customers := churn.BuildChurnGraph(
		churn.CustomerOptions{Customers: opts.Customers, Seed: opts.Seed},
		churn.SimilarityOptions{Threshold: opts.SimilarityThreshold, MaxDegree: opts.MaxDegree, Seed: opts.Seed + 1},
		churn.LabelPropOptions{},
	)
	labels := make([]bool, len(customers))
	for i := range customers {
		labels[i] = customers[i].Churned
	}
	return &ChurnStudy{Graph: g, Churned: labels}
}

// TwitterOptions configures the Twitter study pipeline (Sec. 4.1.1).
type TwitterOptions struct {
	Users  int32 // default 3000
	Topics int   // default 12
	Seed   uint64
}

// TopicSummary describes one extracted topic-focused subgraph with its
// per-model opinion-spread predictions against ground truth.
type TopicSummary struct {
	Topic       int
	Nodes       int
	Seeds       int
	GroundTruth float64
	PredIC      float64
	PredOC      float64
	PredOI      float64
}

// TwitterStudy is the assembled Twitter pipeline output.
type TwitterStudy struct {
	// Background is the follow graph with history-estimated opinions.
	Background *holisticim.Graph
	// Topics summarizes every evaluated topic subgraph.
	Topics []TopicSummary
	// NRMSEIC/NRMSEOC/NRMSEOI are the normalized RMS errors (%) of each
	// model's predictions against ground truth (Figure 5b's quantities).
	NRMSEIC, NRMSEOC, NRMSEOI float64
}

// BuildTwitterStudy runs the full Sec.-4.1.1 pipeline: synthetic tweet
// stream → sentiment classification → topic-subgraph extraction →
// parameter estimation → per-model prediction vs ground truth.
func BuildTwitterStudy(opts TwitterOptions) *TwitterStudy {
	if opts.Users <= 0 {
		opts.Users = 3000
	}
	if opts.Topics <= 0 {
		opts.Topics = 12
	}
	d := twitter.GenerateDataset(twitter.DatasetOptions{
		Users: opts.Users, Topics: opts.Topics, Seed: opts.Seed,
	})
	tgs := twitter.ExtractTopicGraphs(d, twitter.ExtractOptions{Seed: opts.Seed + 1})
	study := &TwitterStudy{Background: d.Background}
	var icP, ocP, oiP, gts []float64
	const runs = 500
	for i := range tgs {
		tg := &tgs[i]
		if i == 0 || len(tg.BackNodes) < 10 {
			continue
		}
		twitter.EstimateParameters(tg, tgs[:i])
		gt := tg.GroundTruthOpinionSpread()
		sum := TopicSummary{
			Topic:       tg.Topic,
			Nodes:       len(tg.BackNodes),
			Seeds:       len(tg.Seeds),
			GroundTruth: gt,
			PredIC:      twitter.PredictOpinionSpread(tg, twitter.ModelIC, runs, opts.Seed+2),
			PredOC:      twitter.PredictOpinionSpread(tg, twitter.ModelOC, runs, opts.Seed+2),
			PredOI:      twitter.PredictOpinionSpread(tg, twitter.ModelOI, runs, opts.Seed+2),
		}
		study.Topics = append(study.Topics, sum)
		icP = append(icP, sum.PredIC)
		ocP = append(ocP, sum.PredOC)
		oiP = append(oiP, sum.PredOI)
		gts = append(gts, gt)
	}
	if len(gts) > 0 {
		study.NRMSEIC = twitter.NRMSE(icP, gts)
		study.NRMSEOC = twitter.NRMSE(ocP, gts)
		study.NRMSEOI = twitter.NRMSE(oiP, gts)
	}
	return study
}
