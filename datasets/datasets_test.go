package datasets

import "testing"

func TestNamesAndLoad(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("only %d datasets", len(names))
	}
	g, err := Load("nethept", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() == 0 {
		t.Fatal("empty dataset")
	}
	if _, err := Load("bogus", true, 1); err == nil {
		t.Fatal("bogus dataset accepted")
	}
}

func TestBuildChurnStudy(t *testing.T) {
	s := BuildChurnStudy(ChurnOptions{Customers: 400, Seed: 3})
	if s.Graph.NumNodes() != 400 || len(s.Churned) != 400 {
		t.Fatalf("study size %d/%d", s.Graph.NumNodes(), len(s.Churned))
	}
	churners := 0
	for _, c := range s.Churned {
		if c {
			churners++
		}
	}
	if churners == 0 || churners == 400 {
		t.Fatalf("unbalanced labels: %d churners", churners)
	}
}

func TestBuildTwitterStudy(t *testing.T) {
	s := BuildTwitterStudy(TwitterOptions{Users: 800, Topics: 8, Seed: 5})
	if len(s.Topics) < 3 {
		t.Fatalf("only %d topic summaries", len(s.Topics))
	}
	if s.NRMSEOI <= 0 {
		t.Fatal("missing NRMSE")
	}
	// The study must reproduce the paper's ranking: OI most accurate
	// (small slack vs OC — both opinion-aware — since the quick study is
	// statistically noisy).
	if s.NRMSEOI > s.NRMSEIC {
		t.Fatalf("OI NRMSE %.1f worse than IC %.1f", s.NRMSEOI, s.NRMSEIC)
	}
	if s.NRMSEOI > s.NRMSEOC+3 {
		t.Fatalf("OI NRMSE %.1f far worse than OC %.1f", s.NRMSEOI, s.NRMSEOC)
	}
}
