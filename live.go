package holisticim

import (
	"github.com/holisticim/holisticim/internal/live"
	"github.com/holisticim/holisticim/internal/sketch"
)

// Live-graph surface: versioned edge mutations over an otherwise
// immutable Graph, paired with incremental RR-sketch repair. A LiveGraph
// wraps a snapshot; Apply produces the next immutable snapshot plus the
// batch's version and dirty-node set; Sketch.Repair consumes exactly
// that pair to resynchronize an index without rebuilding it.
type (
	// LiveGraph is a versioned mutation log over immutable Graph snapshots.
	LiveGraph = live.Graph
	// EdgeOp is one mutation in a batch: add, remove or reweight an arc.
	EdgeOp = live.EdgeOp
	// EdgeOpKind discriminates EdgeOp operations.
	EdgeOpKind = live.OpKind
	// ApplyOptions tunes one Apply batch.
	ApplyOptions = live.ApplyOptions
	// BatchResult reports an applied batch: new version, dirty nodes,
	// snapshot shape.
	BatchResult = live.BatchResult
	// LiveOptions configures a LiveGraph wrapper.
	LiveOptions = live.Options

	// SketchRepairOptions tunes Sketch.Repair (hop bound, workers).
	SketchRepairOptions = sketch.RepairOptions
	// SketchRepairStats reports what one Sketch.Repair call did.
	SketchRepairStats = sketch.RepairStats
)

// Edge-op kinds.
const (
	OpAddEdge      = live.OpAdd
	OpRemoveEdge   = live.OpRemove
	OpReweightEdge = live.OpReweight
)

// WrapLive wraps a graph snapshot in a versioned mutation log.
func WrapLive(g *Graph, opts LiveOptions) *LiveGraph { return live.Wrap(g, opts) }
