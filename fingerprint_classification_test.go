package holisticim

import (
	"reflect"
	"testing"
	"time"
)

// Every field of Options and Query must be deliberately classified:
// either it participates in Fingerprint (it can change which result a
// completed run yields) or it is a lifecycle knob (it changes when or
// how a result arrives, never which result). A new field that lands in
// neither set fails this test, forcing the author to make the call —
// an unclassified field silently poisons the serving layer's result
// cache in one direction or the other.
var (
	optionsFingerprinted = map[string]bool{
		"Model": true, "PathLength": true, "Lambda": true, "Epsilon": true,
		"MCRuns": true, "Seed": true, "TIMThetaCap": true,
	}
	optionsLifecycle = map[string]bool{
		"Workers": true, "Progress": true, "Deadline": true, "Sketch": true,
	}
	queryFingerprinted = map[string]bool{
		"Task": true, "Algorithm": true, "Objective": true,
		"K": true, "Ks": true, "SeedSets": true, "Options": true,
	}
	queryLifecycle = map[string]bool{
		"OnMember": true,
	}
)

func checkClassified(t *testing.T, typ reflect.Type, fingerprinted, lifecycle map[string]bool) {
	t.Helper()
	seen := map[string]bool{}
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		seen[name] = true
		in, out := fingerprinted[name], lifecycle[name]
		switch {
		case in && out:
			t.Errorf("%s.%s is classified both fingerprinted and lifecycle-excluded", typ.Name(), name)
		case !in && !out:
			t.Errorf("%s.%s is unclassified: add it to Fingerprint (and this test's fingerprinted set) or document its exclusion as a lifecycle knob", typ.Name(), name)
		}
	}
	for name := range fingerprinted {
		if !seen[name] {
			t.Errorf("classified field %s.%s no longer exists", typ.Name(), name)
		}
	}
	for name := range lifecycle {
		if !seen[name] {
			t.Errorf("classified field %s.%s no longer exists", typ.Name(), name)
		}
	}
}

func TestOptionsFieldsClassified(t *testing.T) {
	checkClassified(t, reflect.TypeOf(Options{}), optionsFingerprinted, optionsLifecycle)
}

func TestQueryFieldsClassified(t *testing.T) {
	checkClassified(t, reflect.TypeOf(Query{}), queryFingerprinted, queryLifecycle)
}

// TestLifecycleFieldsDoNotChangeFingerprint pins the exclusion side
// behaviorally: flipping every lifecycle knob at once must leave the
// fingerprint untouched, for both surfaces.
func TestLifecycleFieldsDoNotChangeFingerprint(t *testing.T) {
	base := Options{Model: ModelIC, Epsilon: 0.2, Seed: 7, MCRuns: 100}
	tuned := base
	tuned.Workers = 9
	tuned.Progress = func(int, NodeID, time.Duration) {}
	tuned.Deadline = time.Second
	tuned.Sketch = &Sketch{}
	if got, want := tuned.Fingerprint(AlgIMM, 10), base.Fingerprint(AlgIMM, 10); got != want {
		t.Errorf("lifecycle knobs changed Options fingerprint:\n got %s\nwant %s", got, want)
	}

	qbase := Query{Task: TaskSelect, Algorithm: AlgIMM, Ks: []int{5, 10}, Options: base}
	qtuned := qbase
	qtuned.Options = tuned
	qtuned.OnMember = func(int, Member) {}
	if got, want := qtuned.Fingerprint(), qbase.Fingerprint(); got != want {
		t.Errorf("lifecycle knobs changed Query fingerprint:\n got %s\nwant %s", got, want)
	}
}

// TestFingerprintedFieldsChangeFingerprint pins the inclusion side: each
// fingerprinted field, varied on the surface where it is operative,
// must move the fingerprint.
func TestFingerprintedFieldsChangeFingerprint(t *testing.T) {
	base := Options{Model: ModelIC, PathLength: 2, Lambda: 2, Epsilon: 0.2, MCRuns: 100, Seed: 7, TIMThetaCap: 5}
	fp := func(o Options) string { return o.Fingerprint(AlgIMM, 10) }
	optCases := []struct {
		field string
		mut   func(*Options)
	}{
		{"Model", func(o *Options) { o.Model = ModelLT }},
		{"PathLength", func(o *Options) { o.PathLength = 9 }},
		{"Lambda", func(o *Options) { o.Lambda = 2.5 }},
		{"Epsilon", func(o *Options) { o.Epsilon = 0.5 }},
		{"MCRuns", func(o *Options) { o.MCRuns = 107 }},
		{"Seed", func(o *Options) { o.Seed = 8 }},
		{"TIMThetaCap", func(o *Options) { o.TIMThetaCap = 12 }},
	}
	for _, c := range optCases {
		o := base
		c.mut(&o)
		if fp(o) == fp(base) {
			t.Errorf("Options.%s did not change the fingerprint", c.field)
		}
	}

	qbase := Query{Task: TaskSelect, Algorithm: AlgIMM, K: 5, Options: base}
	qCases := []struct {
		field string
		mut   func(*Query)
	}{
		{"Task", func(q *Query) { q.Task = TaskEstimate; q.SeedSets = [][]NodeID{{1}} }},
		{"Algorithm", func(q *Query) { q.Algorithm = AlgTIMPlus }},
		{"K", func(q *Query) { q.K = 12 }},
		{"Ks", func(q *Query) { q.Ks = []int{5, 10} }},
		{"Options", func(q *Query) { q.Options.Seed = 8 }},
	}
	for _, c := range qCases {
		q := qbase
		c.mut(&q)
		if q.Fingerprint() == qbase.Fingerprint() {
			t.Errorf("Query.%s did not change the fingerprint", c.field)
		}
	}

	// Objective and SeedSets are operative on the estimate surface.
	ebase := Query{Task: TaskEstimate, Objective: ObjectiveSpread, SeedSets: [][]NodeID{{1, 2}}, Options: base}
	eObj := ebase
	eObj.Objective = ObjectiveOpinion
	if eObj.Fingerprint() == ebase.Fingerprint() {
		t.Error("Query.Objective did not change the estimate fingerprint")
	}
	eSets := ebase
	eSets.SeedSets = [][]NodeID{{1, 3}}
	if eSets.Fingerprint() == ebase.Fingerprint() {
		t.Error("Query.SeedSets did not change the estimate fingerprint")
	}
}
