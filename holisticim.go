// Package holisticim is a from-scratch Go implementation of "Holistic
// Influence Maximization: Combining Scalability and Efficiency with
// Opinion-Aware Models" (Galhotra, Arora, Roy — SIGMOD 2016).
//
// It provides:
//
//   - the Opinion-cum-Interaction (OI) diffusion model over IC and LT
//     first layers, together with the classical IC/WC/LT models and the
//     prior opinion-aware baselines OC and IC-N;
//   - the paper's scalable seed-selection algorithms EaSyIM (opinion-
//     oblivious) and OSIM (opinion-aware MEO), running in O(k·l·(m+n))
//     time and O(n) space;
//   - the full baseline suite the paper evaluates against: GREEDY,
//     CELF++, Modified-GREEDY, TIM+, IMM, IRIE, SIMPATH, Degree,
//     DegreeDiscount and PageRank;
//   - a deterministic parallel Monte-Carlo spread estimator;
//   - synthetic dataset generators, plus the Twitter-study and
//     customer-churn pipelines from the paper's Section 4.
//
// # Quick start
//
//	g := holisticim.GenerateBA(10000, 3, 1)     // a social graph
//	g.SetUniformProb(0.1)                        // IC probabilities
//	holisticim.AssignOpinions(g, holisticim.OpinionNormal, 2)
//	holisticim.AssignInteractions(g, 3)
//	res, err := holisticim.SelectSeeds(g, 50, holisticim.AlgOSIM, holisticim.Options{})
//	est, err := holisticim.EstimateOpinionSpreadContext(context.Background(), g, res.Seeds, holisticim.Options{})
//	fmt.Println(res.Seeds, est.EffectiveOpinionSpread(1))
//
// The selection contract is context-first: SelectSeedsContext (and every
// im.Selector underneath it) honors cancellation and deadlines at
// per-seed checkpoints, returning the partial prefix selected so far
// with Result.Partial set and an error wrapping ctx.Err(). Attach
// Options.Progress to observe each seed as it is chosen, or
// Options.Deadline to bound the selection wall-clock without managing a
// context yourself.
//
// See the examples/ directory for complete programs.
package holisticim

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/holisticim/holisticim/internal/core"
	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/greedy"
	"github.com/holisticim/holisticim/internal/heuristics"
	"github.com/holisticim/holisticim/internal/im"
	"github.com/holisticim/holisticim/internal/opinion"
	"github.com/holisticim/holisticim/internal/ris"
	"github.com/holisticim/holisticim/internal/rng"
	"github.com/holisticim/holisticim/internal/sketch"
)

// Re-exported core types. The full lower-level APIs live in the internal
// packages; the aliases below are the stable public surface.
type (
	// Graph is a directed graph in CSR form with per-edge influence
	// probability p(u,v), interaction probability ϕ(u,v), LT weight and
	// per-node opinion o_v ∈ [-1,1].
	Graph = graph.Graph
	// NodeID identifies a node (dense ids 0..n-1).
	NodeID = graph.NodeID
	// Builder accumulates edges and produces an immutable Graph.
	Builder = graph.Builder
	// Result reports a seed selection: seeds in selection order, timing
	// and algorithm-specific metrics. Partial marks a selection cut short
	// by cancellation or deadline expiry.
	Result = im.Result
	// Progress observes per-seed selection progress (0-based seed index,
	// the seed and the cumulative elapsed time); attach one via
	// Options.Progress. Callbacks run synchronously on the selection
	// goroutine and must be fast.
	Progress = im.Progress
	// Estimate is a Monte-Carlo spread estimate.
	Estimate = diffusion.Estimate
	// Model is a diffusion process bound to a graph.
	Model = diffusion.Model
)

// NewBuilder returns a Builder for a graph with n nodes.
func NewBuilder(n int32) *Builder { return graph.NewBuilder(n) }

// ReadEdgeList parses "u v [p [phi]]" lines into a Graph.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList serializes a Graph readably by ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// ReadBinaryGraph loads a graph from the compact binary format, which is
// roughly an order of magnitude faster than the text edge-list for large
// graphs.
func ReadBinaryGraph(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// WriteBinaryGraph saves a graph (including edge parameters, LT weights
// and opinions) in the compact binary format.
func WriteBinaryGraph(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// GenerateBA grows an undirected Barabási–Albert graph (both arcs per
// edge) with edgesPerNode attachments — a stand-in for co-authorship
// networks such as NetHEPT/HepPh.
func GenerateBA(n int32, edgesPerNode int, seed uint64) *Graph {
	g := graph.BarabasiAlbert(n, edgesPerNode, rng.New(seed))
	g.SetDefaultLTWeights()
	return g
}

// GenerateRMAT samples a skewed R-MAT graph with m arcs — a stand-in for
// large social networks. Set undirected to expand each edge to both arcs.
func GenerateRMAT(n int32, m int64, undirected bool, seed uint64) *Graph {
	g := graph.RMAT(n, m, graph.DefaultRMAT, undirected, rng.New(seed))
	g.SetDefaultLTWeights()
	return g
}

// OpinionDistribution selects how AssignOpinions samples o_v.
type OpinionDistribution = opinion.Distribution

// Opinion distributions (paper Sec. 4.1.3 annotations).
const (
	OpinionUniform   = opinion.Uniform   // o ~ rand(-1,1)
	OpinionNormal    = opinion.Normal    // o ~ N(0,1) clamped
	OpinionPolarized = opinion.Polarized // two-mode ±[0.3,1]
)

// AssignOpinions samples an opinion for every node.
func AssignOpinions(g *Graph, d OpinionDistribution, seed uint64) {
	opinion.AssignOpinions(g, d, seed)
}

// AssignInteractions samples ϕ(u,v) ~ rand(0,1) for every edge.
func AssignInteractions(g *Graph, seed uint64) {
	opinion.AssignInteractions(g, seed)
}

// ModelKind names a diffusion model for the high-level API.
type ModelKind string

// Supported diffusion models.
const (
	ModelIC   ModelKind = "ic"    // independent cascade (p on edges)
	ModelWC   ModelKind = "wc"    // weighted cascade (p=1/indeg; call SetWeightedCascadeProb)
	ModelLT   ModelKind = "lt"    // linear threshold (w on edges)
	ModelOIIC ModelKind = "oi-ic" // opinion-cum-interaction over IC
	ModelOILT ModelKind = "oi-lt" // opinion-cum-interaction over LT
	ModelOC   ModelKind = "oc"    // Zhang et al. opinion baseline (LT)
)

// NewModel instantiates a diffusion model over g.
func NewModel(g *Graph, kind ModelKind) (Model, error) {
	switch kind {
	case ModelIC, ModelWC:
		return diffusion.NewIC(g), nil
	case ModelLT:
		return diffusion.NewLT(g), nil
	case ModelOIIC:
		return diffusion.NewOI(g, diffusion.LayerIC), nil
	case ModelOILT:
		return diffusion.NewOI(g, diffusion.LayerLT), nil
	case ModelOC:
		return diffusion.NewOC(g), nil
	default:
		return nil, fmt.Errorf("holisticim: unknown model %q", kind)
	}
}

// OpinionAware reports whether the model tracks per-node opinions (the
// OI variants and the OC baseline), i.e. whether opinion-spread
// estimates under it are meaningful.
func (k ModelKind) OpinionAware() bool {
	return k == ModelOIIC || k == ModelOILT || k == ModelOC
}

// RRSemantics returns which reverse-reachable-set semantics the RIS
// family (TIM+/IMM and the RR-sketch index) samples under this model:
//
//   - "ic": reverse IC worlds (ic, wc, oi-ic and the default);
//   - "lt": reverse live-edge walks (lt, oi-lt);
//   - "oc": the same reverse live-edge walks, additionally recording
//     each set's root-opinion weight so the index can answer
//     opinion-aware estimates and weighted (opinion-coverage) selections.
//
// Serving layers use it to key sketch indexes — an "oc" sketch samples
// the very sets an "lt" one does, but only the weighted index can serve
// the opinion path, so the two are distinct keys.
func (k ModelKind) RRSemantics() string {
	switch k {
	case ModelLT, ModelOILT:
		return "lt"
	case ModelOC:
		return "oc"
	default:
		return "ic"
	}
}

func risKindFor(k ModelKind) ris.ModelKind {
	switch k.RRSemantics() {
	case "lt":
		return ris.ModelLT
	case "oc":
		return ris.ModelOC
	default:
		return ris.ModelIC
	}
}

// Algorithm names a seed-selection algorithm.
type Algorithm string

// Supported algorithms.
const (
	AlgEaSyIM         Algorithm = "easyim"          // the paper's scalable opinion-oblivious algorithm
	AlgOSIM           Algorithm = "osim"            // the paper's opinion-aware algorithm (MEO)
	AlgGreedy         Algorithm = "greedy"          // Kempe et al. hill climbing
	AlgCELFPP         Algorithm = "celf++"          // Goyal et al. lazy forward
	AlgModifiedGreedy Algorithm = "modified-greedy" // paper Appendix A (MEO objective)
	AlgTIMPlus        Algorithm = "tim+"            // Tang et al. SIGMOD'14
	AlgIMM            Algorithm = "imm"             // Tang et al. SIGMOD'15
	AlgIRIE           Algorithm = "irie"            // Jung et al. ICDM'12
	AlgSIMPATH        Algorithm = "simpath"         // Goyal et al. ICDM'11 (LT)
	AlgStaticGreedy   Algorithm = "static-greedy"   // Cheng et al. CIKM'13 snapshot greedy
	AlgDegree         Algorithm = "degree"
	AlgDegreeDiscount Algorithm = "degree-discount"
	AlgPageRank       Algorithm = "pagerank"
)

// Options tunes SelectSeeds and the estimators. The zero value picks the
// paper's defaults everywhere.
type Options struct {
	// Model is the diffusion model the selection optimizes for (default
	// ModelIC for oblivious algorithms, ModelOIIC for opinion-aware ones).
	Model ModelKind
	// PathLength is EaSyIM/OSIM's l (default 3, the paper's choice).
	PathLength int
	// Lambda is the MEO penalty on negative opinion spread (default 1).
	Lambda float64
	// Epsilon is TIM+/IMM's approximation slack (default 0.1).
	Epsilon float64
	// MCRuns is the Monte-Carlo budget for simulation-driven algorithms
	// and estimators (default 10000, the paper's setting).
	MCRuns int
	// Seed drives all randomness (default 1).
	Seed uint64
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// TIMThetaCap optionally bounds TIM+/IMM RR sets (0 = unbounded).
	TIMThetaCap int
	// Progress, when set, observes every chosen seed as selection runs.
	// Like Workers it cannot change the selected seeds, so it is excluded
	// from Fingerprint.
	Progress Progress
	// Deadline, when positive, bounds the selection wall-clock time:
	// SelectSeedsContext derives a timeout context and the selection
	// returns a Partial result with an error wrapping
	// context.DeadlineExceeded once it expires. Excluded from Fingerprint
	// (a deadline changes when a result arrives, never which result a
	// completed run yields).
	Deadline time.Duration
	// Sketch, when set, answers AlgTIMPlus/AlgIMM selections from a
	// prebuilt RR-sketch index (see BuildSketch) instead of resampling —
	// typically 10-100x faster — and, for Model "oc", also answers
	// EstimateOpinionSpreadContext from the opinion-weighted sample
	// instead of Monte Carlo. Used only when the sketch was built over
	// the same graph content (pointer or fingerprint match) and RR
	// semantics, and for selections only when TIMThetaCap is unset; the
	// sketch's own ε/seed govern the sample. Excluded from Fingerprint:
	// serving layers must key sketch-backed results separately (the
	// bundled service's fast path bypasses its result cache).
	Sketch *Sketch
}

func (o Options) withDefaults(opinionAware bool) Options {
	if o.Model == "" {
		if opinionAware {
			o.Model = ModelOIIC
		} else {
			o.Model = ModelIC
		}
	}
	if o.PathLength <= 0 {
		o.PathLength = 3
	}
	if o.Lambda == 0 {
		o.Lambda = 1
	}
	o.Epsilon = CanonicalEpsilon(o.Epsilon)
	o.Seed = CanonicalSeed(o.Seed)
	if o.MCRuns <= 0 {
		o.MCRuns = 10000
	}
	return o
}

// CanonicalEpsilon resolves the RIS approximation slack ε exactly as
// Options, SketchOptions and the bundled service's sketch keys do:
// non-positive means the paper's default 0.1. Serving layers
// canonicalize request fields through this single helper so a `{}`
// request and one spelling out the defaults key the same sample.
func CanonicalEpsilon(eps float64) float64 { return ris.CanonicalEpsilon(eps) }

// CanonicalSeed resolves the master sampling seed the same way (zero
// means the default seed 1). See CanonicalEpsilon.
func CanonicalSeed(seed uint64) uint64 { return ris.CanonicalSeed(seed) }

// Resolved returns the options with every default filled in, exactly as
// SelectSeeds and the estimators will use them. opinionAware selects the
// default model family (OI over IC for opinion-aware algorithms, plain IC
// otherwise). Serving layers use this to validate effective values — e.g.
// the Monte-Carlo budget a request will actually spend.
func (o Options) Resolved(opinionAware bool) Options { return o.withDefaults(opinionAware) }

// opinionAware reports whether alg optimizes the opinion-aware MEO
// objective (and therefore defaults to an OI model).
func opinionAware(alg Algorithm) bool {
	return alg == AlgOSIM || alg == AlgModifiedGreedy
}

// Fingerprint returns a canonical string identifying the selection a
// (alg, k, Options) triple would perform: defaults are resolved first, so
// a zero Options and an Options spelling out the paper defaults map to the
// same fingerprint, and fields that cannot change the result (Workers —
// the estimators are deterministic per run regardless of parallelism —
// and the request-lifecycle knobs Progress and Deadline) are excluded.
// Sketch is also excluded even though a sketch-backed run may pick
// different (equally valid) seeds than a cold run: serving layers that
// mix the two paths must not cache them under one key.
// Serving layers use this as a cache/deduplication key; it is stable
// across processes but not across releases.
func (o Options) Fingerprint(alg Algorithm, k int) string {
	c := o.withDefaults(opinionAware(alg))
	return fmt.Sprintf("alg=%s;k=%d;model=%s;l=%d;lambda=%g;eps=%g;mc=%d;seed=%d;thetacap=%d",
		alg, k, c.Model, c.PathLength, c.Lambda, c.Epsilon, c.MCRuns, c.Seed, c.TIMThetaCap)
}

// SelectSeeds picks k seed nodes with the chosen algorithm, running to
// completion with no cancellation — a thin context.Background() wrapper
// around SelectSeedsContext.
func SelectSeeds(g *Graph, k int, alg Algorithm, opts Options) (Result, error) {
	return SelectSeedsContext(context.Background(), g, k, alg, opts)
}

// SelectSeedsContext picks k seed nodes with the chosen algorithm under
// ctx. It returns an error (rather than panicking) for invalid
// configuration at this public boundary; when ctx is cancelled — or the
// deadline from ctx or opts.Deadline passes — mid-selection, it returns
// promptly with the partial Result (Partial set, Seeds holding the prefix
// chosen so far) and an error wrapping ctx.Err(). Attach opts.Progress to
// observe each seed as it is chosen.
//
// SelectSeedsContext is a thin wrapper over Run with a single-member
// select Query; batch workloads (many k values in one call) go through
// Run directly.
func SelectSeedsContext(ctx context.Context, g *Graph, k int, alg Algorithm, opts Options) (Result, error) {
	ans, err := Run(ctx, g, Query{Task: TaskSelect, Algorithm: alg, Ks: []int{k}, Options: opts})
	if len(ans.Members) > 0 && ans.Members[0].Result != nil {
		return *ans.Members[0].Result, err
	}
	return Result{}, err
}

// newSelector constructs the im.Selector implementing alg over g with
// resolved options o — the single algorithm table the planner, Run and
// every selection entrypoint share. A matching opts.Sketch short-circuits
// TIM+/IMM to the prebuilt index exactly as the planner's sketch backend
// does.
func newSelector(g *Graph, o Options, alg Algorithm) (im.Selector, error) {
	model, err := NewModel(g, o.Model)
	if err != nil {
		return nil, err
	}
	weight := core.WeightProb
	risKind := risKindFor(o.Model)
	if risKind != ris.ModelIC {
		// LT-family models (lt, oi-lt, oc) drive EaSyIM/OSIM scores and
		// reverse sampling by the LT edge weights.
		weight = core.WeightLT
	}
	// Monte-Carlo objectives honor Workers: the estimates are deterministic
	// per run regardless of parallelism, so this only changes speed.
	spreadObjective := func() *greedy.MCObjective {
		obj := greedy.NewSpreadObjective(model, o.MCRuns, o.Seed)
		obj.Workers = o.Workers
		return obj
	}

	var sel im.Selector
	switch alg {
	case AlgEaSyIM:
		sel = core.NewScoreGreedy(core.NewEaSyIM(g, o.PathLength, weight), core.ScoreGreedyOptions{
			Policy: core.PolicyMCMajority, ProbeModel: model, Seed: o.Seed,
		})
	case AlgOSIM:
		sel = core.NewScoreGreedy(core.NewOSIM(g, o.PathLength, weight, o.Lambda), core.ScoreGreedyOptions{
			Policy: core.PolicyMCMajority, ProbeModel: model, Seed: o.Seed,
		})
	case AlgGreedy:
		sel = greedy.NewGreedy(spreadObjective())
	case AlgCELFPP:
		sel = greedy.NewCELFPP(spreadObjective())
	case AlgModifiedGreedy:
		obj := greedy.NewEffectiveOpinionObjective(model, o.Lambda, o.MCRuns, o.Seed)
		obj.Workers = o.Workers
		sel = greedy.NewModifiedGreedy(obj)
	case AlgStaticGreedy:
		snapshots := o.MCRuns / 50
		if snapshots < 1 {
			snapshots = 1
		}
		sel = greedy.NewStaticGreedy(g, snapshots, o.Seed)
	case AlgTIMPlus:
		if s := sketchSelector(o, g, risKind); s != nil {
			sel = s
		} else {
			sel = ris.NewTIMPlus(g, risKind, ris.TIMOptions{Epsilon: o.Epsilon, Seed: o.Seed, ThetaCap: o.TIMThetaCap})
		}
	case AlgIMM:
		if s := sketchSelector(o, g, risKind); s != nil {
			sel = s
		} else {
			sel = ris.NewIMM(g, risKind, ris.TIMOptions{Epsilon: o.Epsilon, Seed: o.Seed, ThetaCap: o.TIMThetaCap})
		}
	case AlgIRIE:
		sel = heuristics.NewIRIE(g, 0, 0, 0)
	case AlgSIMPATH:
		sel = heuristics.NewSIMPATH(g, 0, 0)
	case AlgDegree:
		sel = heuristics.NewDegree(g)
	case AlgDegreeDiscount:
		p := graph.MeanEdgeProb(g)
		if p == 0 {
			p = 0.1
		}
		sel = heuristics.NewDegreeDiscount(g, p)
	case AlgPageRank:
		sel = heuristics.NewPageRank(g, 0, 0)
	default:
		return nil, fmt.Errorf("holisticim: unknown algorithm %q", alg)
	}
	return sel, nil
}

// estimateQuery adapts the single-seed-set estimator entrypoints onto a
// one-member estimate Query.
func estimateQuery(ctx context.Context, g *Graph, seeds []NodeID, opts Options, obj Objective) (Estimate, error) {
	ans, err := Run(ctx, g, Query{
		Task: TaskEstimate, Objective: obj, SeedSets: [][]NodeID{seeds}, Options: opts,
	})
	if len(ans.Members) > 0 && ans.Members[0].Estimate != nil {
		return *ans.Members[0].Estimate, err
	}
	return Estimate{}, err
}

// EstimateSpreadContext estimates σ(S) (expected activations beyond the
// seeds) under opts.Model. It returns an error for an unknown model and
// honors ctx: when cancelled mid-estimation the truncated Estimate comes
// back alongside an error wrapping ctx.Err().
func EstimateSpreadContext(ctx context.Context, g *Graph, seeds []NodeID, opts Options) (Estimate, error) {
	return estimateQuery(ctx, g, seeds, opts, ObjectiveSpread)
}

// EstimateOpinionSpreadContext estimates the opinion-aware spreads
// (Defs. 6-7) under opts.Model (default OI over IC), with the same
// context and error contract as EstimateSpreadContext.
//
// When opts.Model is ModelOC and opts.Sketch is an opinion-aware ("oc")
// sketch over the same graph content, the estimate is answered from the
// weighted RR sample instead of Monte Carlo — typically orders of
// magnitude faster. A sketch-served Estimate reports the RR-set count as
// Runs and zero variances; SketchServedEstimate reports whether a given
// call would take the fast path.
func EstimateOpinionSpreadContext(ctx context.Context, g *Graph, seeds []NodeID, opts Options) (Estimate, error) {
	return estimateQuery(ctx, g, seeds, opts, ObjectiveOpinion)
}

// SketchServedEstimate reports whether EstimateOpinionSpreadContext with
// these options would be answered from opts.Sketch instead of running
// Monte Carlo: the resolved model must be ModelOC and the sketch must be
// an opinion-weighted index over the same graph content.
func SketchServedEstimate(g *Graph, opts Options) bool {
	if opts.Sketch == nil {
		return false
	}
	o := opts.withDefaults(true)
	return o.Model == ModelOC && opts.Sketch.Matches(g, ris.ModelOC)
}

// EstimateSpread estimates σ(S) under opts.Model.
//
// Deprecated: use EstimateSpreadContext, which surfaces configuration
// errors and supports cancellation. This shim never panics: an invalid
// opts.Model yields a zero Estimate.
func EstimateSpread(g *Graph, seeds []NodeID, opts Options) Estimate {
	est, _ := EstimateSpreadContext(context.Background(), g, seeds, opts)
	return est
}

// EstimateOpinionSpread estimates the opinion-aware spreads (Defs. 6-7)
// under opts.Model (default OI over IC).
//
// Deprecated: use EstimateOpinionSpreadContext, which surfaces
// configuration errors and supports cancellation. This shim never
// panics: an invalid opts.Model yields a zero Estimate.
func EstimateOpinionSpread(g *Graph, seeds []NodeID, opts Options) Estimate {
	est, _ := EstimateOpinionSpreadContext(context.Background(), g, seeds, opts)
	return est
}

// Sketch is a reusable RR-sketch index: RR sets sampled once per
// (graph, model, ε, seed) and shared across selections. Build one with
// BuildSketch, persist it with WriteSketch/ReadSketch, query it directly
// with Select or attach it to Options.Sketch to accelerate
// AlgTIMPlus/AlgIMM. All methods are safe for concurrent use.
type Sketch = sketch.Index

// SketchStats snapshots a sketch's counters (sets held, memoized order
// length, selects served, lazy extensions, memory footprint).
type SketchStats = sketch.Stats

// SketchOpinionEstimate is a sketch-backed opinion-spread estimate (the
// weighted-RIS counterpart of Estimate), returned by
// Sketch.EstimateOpinion on "oc" sketches.
type SketchOpinionEstimate = sketch.OpinionEstimate

// SketchHeader is the metadata prefix of a sketch snapshot, readable
// without the graph via ReadSketchHeader.
type SketchHeader = sketch.Header

// SketchOptions configures BuildSketch. Zero values pick the paper's
// defaults (ε=0.1, seed 1, build-k 50, GOMAXPROCS workers).
type SketchOptions struct {
	// Model picks the RR-set semantics: "lt"/"oi-lt" sample reverse
	// live-edge walks, "oc" samples the same walks while recording each
	// set's root-opinion weight (enabling sketch-backed opinion estimates
	// and opinion-coverage selection), everything else (the default)
	// reverse IC worlds.
	Model ModelKind
	// Epsilon is the IMM approximation slack ε (default 0.1).
	Epsilon float64
	// Seed drives all sampling (default 1).
	Seed uint64
	// BuildK is the seed budget the initial θ bound targets (default 50);
	// selections with k ≤ BuildK are typically answered without growing
	// the sample.
	BuildK int
	// Workers bounds parallel sampling goroutines (default GOMAXPROCS).
	// Cannot change the sampled sets: set i always comes from the split
	// stream (Seed, i).
	Workers int
	// MaxSets, when positive, caps the index size (memory bound).
	MaxSets int
}

// BuildSketch samples an RR-sketch index over g: IMM's OPT
// lower-bounding phase followed by a top-up to the θ(BuildK) bound, with
// parallel deterministic sampling. The resulting index answers
// Select(ctx, k) for any k in milliseconds, lazily extending its sample
// when a request's θ bound exceeds the sets held.
func BuildSketch(ctx context.Context, g *Graph, o SketchOptions) (*Sketch, error) {
	if g == nil {
		return nil, fmt.Errorf("holisticim: nil graph")
	}
	if o.Model != "" {
		if _, err := NewModel(g, o.Model); err != nil {
			return nil, err
		}
	}
	return sketch.Build(ctx, g, sketch.Params{
		Kind:    risKindFor(o.Model),
		Epsilon: o.Epsilon,
		Seed:    o.Seed,
		BuildK:  o.BuildK,
		Workers: o.Workers,
		MaxSets: o.MaxSets,
	})
}

// WriteSketch persists a sketch in the versioned binary snapshot format
// (magic, checksum, graph fingerprint guard).
func WriteSketch(w io.Writer, s *Sketch) error { return s.Save(w) }

// ReadSketch loads a snapshot written by WriteSketch and binds it to g,
// which must be the very graph the sketch was built on — the stored
// content fingerprint is verified before any set is accepted.
func ReadSketch(r io.Reader, g *Graph) (*Sketch, error) { return sketch.Load(r, g) }

// ReadSketchHeader inspects a snapshot's metadata without loading (or
// needing) the graph.
func ReadSketchHeader(r io.Reader) (SketchHeader, error) { return sketch.ReadHeader(r) }

// sketchSelector returns the sketch-backed selector when opts can be
// served from opts.Sketch: same graph content (pointer or fingerprint
// match), same RR semantics, and no explicit θ cap (a cap changes
// TIM+/IMM sampling in ways the index does not model).
func sketchSelector(o Options, g *Graph, kind ris.ModelKind) im.Selector {
	if o.Sketch == nil || o.TIMThetaCap != 0 || !o.Sketch.Matches(g, kind) {
		return nil
	}
	return o.Sketch
}
