package holisticim

import (
	"bytes"
	"strings"
	"testing"
)

func testGraph() *Graph {
	g := GenerateBA(400, 3, 1)
	g.SetUniformProb(0.1)
	AssignOpinions(g, OpinionNormal, 2)
	AssignInteractions(g, 3)
	return g
}

func TestSelectSeedsAllAlgorithms(t *testing.T) {
	g := testGraph()
	opts := Options{MCRuns: 100, Seed: 5, TIMThetaCap: 20000}
	algs := []Algorithm{
		AlgEaSyIM, AlgOSIM, AlgGreedy, AlgCELFPP, AlgModifiedGreedy, AlgStaticGreedy,
		AlgTIMPlus, AlgIMM, AlgIRIE, AlgDegree, AlgDegreeDiscount, AlgPageRank,
	}
	for _, alg := range algs {
		res, err := SelectSeeds(g, 3, alg, opts)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(res.Seeds) != 3 {
			t.Fatalf("%s: got %d seeds", alg, len(res.Seeds))
		}
		seen := map[NodeID]bool{}
		for _, s := range res.Seeds {
			if s < 0 || s >= g.NumNodes() {
				t.Fatalf("%s: seed %d out of range", alg, s)
			}
			if seen[s] {
				t.Fatalf("%s: duplicate seed %d", alg, s)
			}
			seen[s] = true
		}
	}
	// SIMPATH runs under LT.
	res, err := SelectSeeds(g, 3, AlgSIMPATH, Options{Model: ModelLT, Seed: 5})
	if err != nil || len(res.Seeds) != 3 {
		t.Fatalf("simpath: %v %v", res.Seeds, err)
	}
}

func TestStaticGreedySmallMCRuns(t *testing.T) {
	// Regression: MCRuns < 50 used to truncate the snapshot count to 0,
	// which NewStaticGreedy silently replaced with its 200-snapshot
	// default — 4x+ the Monte-Carlo budget the caller asked for. The
	// count is now clamped to a minimum of one snapshot so tiny budgets
	// stay tiny.
	g := testGraph()
	for _, runs := range []int{1, 10, 49} {
		res, err := SelectSeeds(g, 3, AlgStaticGreedy, Options{MCRuns: runs, Seed: 5})
		if err != nil {
			t.Fatalf("MCRuns=%d: %v", runs, err)
		}
		if len(res.Seeds) != 3 {
			t.Fatalf("MCRuns=%d: got %d seeds", runs, len(res.Seeds))
		}
	}
}

func TestDegreeDiscountHeterogeneousProbs(t *testing.T) {
	// Regression: DegreeDiscount used to read node 0's first out-edge
	// probability as the global p, which is arbitrary on heterogeneous
	// graphs. It now uses the mean edge probability, so an outlier first
	// edge must not change the selection.
	g1 := GenerateBA(400, 3, 1)
	g1.SetUniformProb(0.1)
	g2 := g1.Clone()
	// Poison exactly node 0's first out-edge in g2.
	g2.SetEdgeParamsFunc(func(u, v NodeID) (float64, float64) {
		if u == 0 && v == g2.OutNeighbors(0)[0] {
			return 0.99, 0
		}
		return 0.1, 0
	})
	r1, err := SelectSeeds(g1, 5, AlgDegreeDiscount, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := SelectSeeds(g2, 5, AlgDegreeDiscount, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Seeds {
		if r1.Seeds[i] != r2.Seeds[i] {
			t.Fatalf("one outlier edge changed the selection: %v vs %v", r1.Seeds, r2.Seeds)
		}
	}
}

func TestOptionsFingerprint(t *testing.T) {
	zero := Options{}.Fingerprint(AlgEaSyIM, 10)
	explicit := Options{
		Model: ModelIC, PathLength: 3, Lambda: 1, Epsilon: 0.1, MCRuns: 10000, Seed: 1,
	}.Fingerprint(AlgEaSyIM, 10)
	if zero != explicit {
		t.Fatalf("defaults not canonicalized: %q vs %q", zero, explicit)
	}
	if (Options{Workers: 4}).Fingerprint(AlgEaSyIM, 10) != zero {
		t.Fatal("Workers leaked into the fingerprint")
	}
	if (Options{}).Fingerprint(AlgOSIM, 10) == zero {
		t.Fatal("algorithm (and its default model) must separate fingerprints")
	}
	if (Options{Seed: 2}).Fingerprint(AlgEaSyIM, 10) == zero {
		t.Fatal("seed must separate fingerprints")
	}
	if (Options{}).Fingerprint(AlgEaSyIM, 11) == zero {
		t.Fatal("k must separate fingerprints")
	}
}

func TestSelectSeedsErrors(t *testing.T) {
	g := testGraph()
	if _, err := SelectSeeds(nil, 1, AlgEaSyIM, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := SelectSeeds(g, 0, AlgEaSyIM, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SelectSeeds(g, 1, Algorithm("bogus"), Options{}); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	if _, err := SelectSeeds(g, 1, AlgEaSyIM, Options{Model: ModelKind("bogus")}); err == nil {
		t.Fatal("bogus model accepted")
	}
}

func TestEstimateSpreadConsistency(t *testing.T) {
	g := testGraph()
	res, err := SelectSeeds(g, 5, AlgEaSyIM, Options{MCRuns: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateSpread(g, res.Seeds, Options{MCRuns: 2000, Seed: 9})
	if est.Spread <= 0 {
		t.Fatalf("spread %v", est.Spread)
	}
	deg, _ := SelectSeeds(g, 5, AlgDegree, Options{})
	estDeg := EstimateSpread(g, deg.Seeds, Options{MCRuns: 2000, Seed: 9})
	if est.Spread < 0.75*estDeg.Spread {
		t.Fatalf("EaSyIM spread %v far below degree %v", est.Spread, estDeg.Spread)
	}
}

func TestOpinionAwareBeatsObliviousOnMEO(t *testing.T) {
	// The paper's core claim at API level: OSIM seeds achieve at least the
	// effective opinion spread of EaSyIM seeds.
	g := GenerateBA(500, 3, 11)
	g.SetUniformProb(0.15)
	AssignOpinions(g, OpinionPolarized, 12)
	AssignInteractions(g, 13)
	osim, err := SelectSeeds(g, 8, AlgOSIM, Options{MCRuns: 200, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	easy, err := SelectSeeds(g, 8, AlgEaSyIM, Options{MCRuns: 200, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	eo := EstimateOpinionSpread(g, osim.Seeds, Options{MCRuns: 4000, Seed: 17})
	ee := EstimateOpinionSpread(g, easy.Seeds, Options{MCRuns: 4000, Seed: 17})
	if eo.EffectiveOpinionSpread(1) < ee.EffectiveOpinionSpread(1)-0.5 {
		t.Fatalf("OSIM %v below EaSyIM %v on MEO",
			eo.EffectiveOpinionSpread(1), ee.EffectiveOpinionSpread(1))
	}
}

func TestGraphIOThroughFacade(t *testing.T) {
	g := testGraph()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed size")
	}
}

func TestGenerateRMATFacade(t *testing.T) {
	g := GenerateRMAT(1024, 8000, true, 21)
	if g.NumNodes() != 1024 || g.NumEdges() == 0 {
		t.Fatalf("rmat %d/%d", g.NumNodes(), g.NumEdges())
	}
}

func TestBuilderFacade(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdgeP(0, 1, 0.5, 0.5)
	g := b.Build()
	if !g.HasEdge(0, 1) {
		t.Fatal("builder facade broken")
	}
}

func TestModelNamesThroughFacade(t *testing.T) {
	g := testGraph()
	for _, kind := range []ModelKind{ModelIC, ModelWC, ModelLT, ModelOIIC, ModelOILT, ModelOC} {
		m, err := NewModel(g, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if m.Name() == "" || !strings.ContainsAny(m.Name(), "ICLTOW") {
			t.Fatalf("%s: odd name %q", kind, m.Name())
		}
	}
}
