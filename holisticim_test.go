package holisticim

import (
	"bytes"
	"strings"
	"testing"
)

func testGraph() *Graph {
	g := GenerateBA(400, 3, 1)
	g.SetUniformProb(0.1)
	AssignOpinions(g, OpinionNormal, 2)
	AssignInteractions(g, 3)
	return g
}

func TestSelectSeedsAllAlgorithms(t *testing.T) {
	g := testGraph()
	opts := Options{MCRuns: 100, Seed: 5, TIMThetaCap: 20000}
	algs := []Algorithm{
		AlgEaSyIM, AlgOSIM, AlgGreedy, AlgCELFPP, AlgModifiedGreedy, AlgStaticGreedy,
		AlgTIMPlus, AlgIMM, AlgIRIE, AlgDegree, AlgDegreeDiscount, AlgPageRank,
	}
	for _, alg := range algs {
		res, err := SelectSeeds(g, 3, alg, opts)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(res.Seeds) != 3 {
			t.Fatalf("%s: got %d seeds", alg, len(res.Seeds))
		}
		seen := map[NodeID]bool{}
		for _, s := range res.Seeds {
			if s < 0 || s >= g.NumNodes() {
				t.Fatalf("%s: seed %d out of range", alg, s)
			}
			if seen[s] {
				t.Fatalf("%s: duplicate seed %d", alg, s)
			}
			seen[s] = true
		}
	}
	// SIMPATH runs under LT.
	res, err := SelectSeeds(g, 3, AlgSIMPATH, Options{Model: ModelLT, Seed: 5})
	if err != nil || len(res.Seeds) != 3 {
		t.Fatalf("simpath: %v %v", res.Seeds, err)
	}
}

func TestSelectSeedsErrors(t *testing.T) {
	g := testGraph()
	if _, err := SelectSeeds(nil, 1, AlgEaSyIM, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := SelectSeeds(g, 0, AlgEaSyIM, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SelectSeeds(g, 1, Algorithm("bogus"), Options{}); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	if _, err := SelectSeeds(g, 1, AlgEaSyIM, Options{Model: ModelKind("bogus")}); err == nil {
		t.Fatal("bogus model accepted")
	}
}

func TestEstimateSpreadConsistency(t *testing.T) {
	g := testGraph()
	res, err := SelectSeeds(g, 5, AlgEaSyIM, Options{MCRuns: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	est := EstimateSpread(g, res.Seeds, Options{MCRuns: 2000, Seed: 9})
	if est.Spread <= 0 {
		t.Fatalf("spread %v", est.Spread)
	}
	deg, _ := SelectSeeds(g, 5, AlgDegree, Options{})
	estDeg := EstimateSpread(g, deg.Seeds, Options{MCRuns: 2000, Seed: 9})
	if est.Spread < 0.75*estDeg.Spread {
		t.Fatalf("EaSyIM spread %v far below degree %v", est.Spread, estDeg.Spread)
	}
}

func TestOpinionAwareBeatsObliviousOnMEO(t *testing.T) {
	// The paper's core claim at API level: OSIM seeds achieve at least the
	// effective opinion spread of EaSyIM seeds.
	g := GenerateBA(500, 3, 11)
	g.SetUniformProb(0.15)
	AssignOpinions(g, OpinionPolarized, 12)
	AssignInteractions(g, 13)
	osim, err := SelectSeeds(g, 8, AlgOSIM, Options{MCRuns: 200, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	easy, err := SelectSeeds(g, 8, AlgEaSyIM, Options{MCRuns: 200, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	eo := EstimateOpinionSpread(g, osim.Seeds, Options{MCRuns: 4000, Seed: 17})
	ee := EstimateOpinionSpread(g, easy.Seeds, Options{MCRuns: 4000, Seed: 17})
	if eo.EffectiveOpinionSpread(1) < ee.EffectiveOpinionSpread(1)-0.5 {
		t.Fatalf("OSIM %v below EaSyIM %v on MEO",
			eo.EffectiveOpinionSpread(1), ee.EffectiveOpinionSpread(1))
	}
}

func TestGraphIOThroughFacade(t *testing.T) {
	g := testGraph()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed size")
	}
}

func TestGenerateRMATFacade(t *testing.T) {
	g := GenerateRMAT(1024, 8000, true, 21)
	if g.NumNodes() != 1024 || g.NumEdges() == 0 {
		t.Fatalf("rmat %d/%d", g.NumNodes(), g.NumEdges())
	}
}

func TestBuilderFacade(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdgeP(0, 1, 0.5, 0.5)
	g := b.Build()
	if !g.HasEdge(0, 1) {
		t.Fatal("builder facade broken")
	}
}

func TestModelNamesThroughFacade(t *testing.T) {
	g := testGraph()
	for _, kind := range []ModelKind{ModelIC, ModelWC, ModelLT, ModelOIIC, ModelOILT, ModelOC} {
		m, err := NewModel(g, kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if m.Name() == "" || !strings.ContainsAny(m.Name(), "ICLTOW") {
			t.Fatalf("%s: odd name %q", kind, m.Name())
		}
	}
}
