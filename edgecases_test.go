package holisticim

import (
	"testing"
	"testing/quick"
)

// Edge-case coverage through the public API: degenerate graphs must not
// panic and must return sane results for every algorithm.

func edgelessGraph(n int32) *Graph {
	return NewBuilder(n).Build()
}

func TestEdgelessGraphAllAlgorithms(t *testing.T) {
	g := edgelessGraph(10)
	algs := []Algorithm{
		AlgEaSyIM, AlgOSIM, AlgGreedy, AlgCELFPP, AlgStaticGreedy,
		AlgTIMPlus, AlgIMM, AlgIRIE, AlgDegree, AlgDegreeDiscount, AlgPageRank,
	}
	for _, alg := range algs {
		res, err := SelectSeeds(g, 3, alg, Options{MCRuns: 20, Seed: 1, TIMThetaCap: 1000})
		if err != nil {
			t.Fatalf("%s on edgeless graph: %v", alg, err)
		}
		if len(res.Seeds) == 0 {
			t.Fatalf("%s returned no seeds on edgeless graph", alg)
		}
		est := EstimateSpread(g, res.Seeds, Options{MCRuns: 20, Seed: 1})
		if est.Spread != 0 {
			t.Fatalf("%s: edgeless spread %v", alg, est.Spread)
		}
	}
}

func TestSingleNodeGraph(t *testing.T) {
	g := edgelessGraph(1)
	res, err := SelectSeeds(g, 1, AlgEaSyIM, Options{MCRuns: 10})
	if err != nil || len(res.Seeds) != 1 || res.Seeds[0] != 0 {
		t.Fatalf("single node: %v %v", res.Seeds, err)
	}
}

func TestKEqualsN(t *testing.T) {
	g := GenerateBA(50, 2, 1)
	g.SetUniformProb(0.2)
	for _, alg := range []Algorithm{AlgEaSyIM, AlgDegree, AlgIRIE} {
		res, err := SelectSeeds(g, 50, alg, Options{MCRuns: 20, Seed: 1})
		if err != nil {
			t.Fatalf("%s k=n: %v", alg, err)
		}
		seen := map[NodeID]bool{}
		for _, s := range res.Seeds {
			if seen[s] {
				t.Fatalf("%s: duplicate seed with k=n", alg)
			}
			seen[s] = true
		}
	}
}

func TestNeutralOpinionsZeroSpread(t *testing.T) {
	g := GenerateBA(200, 3, 5)
	g.SetUniformProb(0.2)
	// All opinions left at the zero value: every final opinion is 0, so
	// opinion spread must be exactly 0 in every run.
	est := EstimateOpinionSpread(g, []NodeID{0, 1}, Options{MCRuns: 200, Seed: 3})
	if est.OpinionSpread != 0 || est.PositiveSpread != 0 || est.NegativeSpread != 0 {
		t.Fatalf("neutral graph produced opinion spread %v", est.OpinionSpread)
	}
	if est.Spread <= 0 {
		t.Fatal("activation spread should still be positive")
	}
}

func TestExtremeOpinions(t *testing.T) {
	// All-negative graph: effective spread with λ=1 must be ≤ 0.
	g := GenerateBA(200, 3, 7)
	g.SetUniformProb(0.2)
	for v := NodeID(0); v < g.NumNodes(); v++ {
		g.SetOpinion(v, -1)
	}
	g.SetUniformPhi(1) // full agreement: negativity propagates undiluted
	est := EstimateOpinionSpread(g, []NodeID{0, 1, 2}, Options{MCRuns: 300, Seed: 5})
	if est.EffectiveOpinionSpread(1) > 0 {
		t.Fatalf("all-negative graph yielded positive effective spread %v",
			est.EffectiveOpinionSpread(1))
	}
	if est.PositiveSpread != 0 {
		t.Fatalf("positive spread %v on all-negative graph", est.PositiveSpread)
	}
}

func TestFacadeDeterminismQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g1 := GenerateBA(120, 2, seed)
		g1.SetUniformProb(0.15)
		AssignOpinions(g1, OpinionUniform, seed+1)
		AssignInteractions(g1, seed+2)
		g2 := GenerateBA(120, 2, seed)
		g2.SetUniformProb(0.15)
		AssignOpinions(g2, OpinionUniform, seed+1)
		AssignInteractions(g2, seed+2)
		a, err1 := SelectSeeds(g1, 4, AlgOSIM, Options{MCRuns: 30, Seed: seed + 3})
		b, err2 := SelectSeeds(g2, 4, AlgOSIM, Options{MCRuns: 30, Seed: seed + 3})
		if err1 != nil || err2 != nil || len(a.Seeds) != len(b.Seeds) {
			return false
		}
		for i := range a.Seeds {
			if a.Seeds[i] != b.Seeds[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSeedsAreValidQuick(t *testing.T) {
	f := func(seed uint64) bool {
		g := GenerateRMAT(256, 1500, true, seed)
		g.SetUniformProb(0.1)
		res, err := SelectSeeds(g, 5, AlgEaSyIM, Options{MCRuns: 20, Seed: seed})
		if err != nil {
			return false
		}
		seen := map[NodeID]bool{}
		for _, s := range res.Seeds {
			if s < 0 || s >= g.NumNodes() || seen[s] {
				return false
			}
			seen[s] = true
		}
		return len(res.Seeds) == 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateMoreRunsLowersVariance(t *testing.T) {
	g := GenerateBA(300, 3, 9)
	g.SetUniformProb(0.1)
	seeds := []NodeID{0, 1, 2}
	small := EstimateSpread(g, seeds, Options{MCRuns: 50, Seed: 11})
	big := EstimateSpread(g, seeds, Options{MCRuns: 5000, Seed: 11})
	if small.Runs != 50 || big.Runs != 5000 {
		t.Fatalf("run counts %d/%d", small.Runs, big.Runs)
	}
	// Variances are sample estimates of the same per-run variance; the
	// two must be in the same ballpark (ratio < 5x), and both positive.
	if small.SpreadVariance <= 0 || big.SpreadVariance <= 0 {
		t.Fatal("variance should be positive on a stochastic graph")
	}
	ratio := small.SpreadVariance / big.SpreadVariance
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("variance estimates inconsistent: %v vs %v", small.SpreadVariance, big.SpreadVariance)
	}
}
