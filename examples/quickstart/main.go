// Quickstart: build a social graph, pick seeds with the paper's two
// algorithms and compare what each optimizes — then build a reusable
// RR-sketch index and serve many selections from it in milliseconds,
// including the opinion-aware ("oc") workload via weighted RR walks.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	"github.com/holisticim/holisticim"
)

func main() {
	// A 10K-node scale-free network. p=0.05 keeps cascades local so the
	// seed choice (not far-field noise) determines the outcome; opinions
	// are polarized — the regime where opinion-awareness matters most.
	g := holisticim.GenerateBA(10000, 3, 1)
	g.SetUniformProb(0.05)
	holisticim.AssignOpinions(g, holisticim.OpinionPolarized, 2)
	holisticim.AssignInteractions(g, 3)

	const k = 20
	opts := holisticim.Options{MCRuns: 2000, Seed: 7}

	// EaSyIM: maximize the number of activated users (classical IM).
	easy, err := holisticim.SelectSeeds(g, k, holisticim.AlgEaSyIM, opts)
	if err != nil {
		log.Fatal(err)
	}
	// OSIM: maximize the effective opinion of activated users (MEO).
	osim, err := holisticim.SelectSeeds(g, k, holisticim.AlgOSIM, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %d nodes, %d arcs\n\n", g.NumNodes(), g.NumEdges())
	for _, run := range []struct {
		name  string
		seeds []holisticim.NodeID
	}{
		{"EaSyIM (opinion-oblivious)", easy.Seeds},
		{"OSIM   (opinion-aware)", osim.Seeds},
	} {
		spread := must(holisticim.EstimateSpreadContext(context.Background(), g, run.seeds, opts))
		op := must(holisticim.EstimateOpinionSpreadContext(context.Background(), g, run.seeds, opts))
		fmt.Printf("%s\n", run.name)
		fmt.Printf("  first seeds        : %v...\n", run.seeds[:5])
		fmt.Printf("  spread σ(S)        : %8.1f users\n", spread.Spread)
		fmt.Printf("  opinion spread     : %8.2f\n", op.OpinionSpread)
		fmt.Printf("  effective (λ=1)    : %8.2f\n\n", op.EffectiveOpinionSpread(1))
	}
	fmt.Println("EaSyIM reaches more users; OSIM reaches users whose final opinions help.")

	// --- RR-sketch lifecycle: build once, serve many ---------------------
	//
	// TIM+/IMM resample their whole RR collection per query. A sketch
	// samples once per (graph, model, ε, seed) — in parallel, with
	// deterministic per-set seeding — and then answers any k from the
	// shared sample.
	start := time.Now()
	sk, err := holisticim.BuildSketch(context.Background(), g, holisticim.SketchOptions{
		Epsilon: 0.2, Seed: 7, BuildK: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsketch: built %d RR sets once in %v\n", sk.Len(), time.Since(start).Round(time.Millisecond))

	for _, kq := range []int{5, 15, 40} { // serve many ks from one sample
		start = time.Now()
		res, err := sk.Select(context.Background(), kq)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%-3d -> %d seeds in %v (est. spread %.1f)\n",
			kq, len(res.Seeds), time.Since(start).Round(time.Microsecond), res.Metrics["estimated_spread"])
	}

	// Snapshot round trip: persist the index so a server restart warms
	// instantly (the snapshot refuses to load against a different graph).
	var snap bytes.Buffer
	if err := holisticim.WriteSketch(&snap, sk); err != nil {
		log.Fatal(err)
	}
	snapBytes := snap.Len()
	restored, err := holisticim.ReadSketch(&snap, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sketch: snapshot %d bytes, restored %d sets\n", snapBytes, restored.Len())

	// Options.Sketch routes the stock IMM entry point through the index.
	res, err := holisticim.SelectSeeds(g, 20, holisticim.AlgIMM, holisticim.Options{
		Epsilon: 0.2, Seed: 7, Sketch: restored,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sketch: AlgIMM served by %s (%d seeds)\n", res.Algorithm, len(res.Seeds))

	// --- Opinion-aware sketch ("oc" semantics) ---------------------------
	//
	// Model "oc" samples the same reverse live-edge walks as "lt" but
	// records each walk's root-opinion weight (snapshot format v2; v1
	// files still load). The one index then serves BOTH halves of the
	// opinion workload without Monte Carlo: Select maximizes opinion
	// coverage, and EstimateOpinionSpreadContext answers from the
	// weighted sample.
	start = time.Now()
	ocSk, err := holisticim.BuildSketch(context.Background(), g, holisticim.SketchOptions{
		Model: holisticim.ModelOC, Epsilon: 0.2, Seed: 7, BuildK: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noc sketch: %d weighted walks in %v\n", ocSk.Len(), time.Since(start).Round(time.Millisecond))

	ocRes, err := holisticim.SelectSeeds(g, k, holisticim.AlgIMM, holisticim.Options{
		Model: holisticim.ModelOC, Epsilon: 0.2, Seed: 7, Sketch: ocSk,
	})
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	ocEst := must(holisticim.EstimateOpinionSpreadContext(context.Background(), g, ocRes.Seeds, holisticim.Options{
		Model: holisticim.ModelOC, Sketch: ocSk,
	}))
	fmt.Printf("oc sketch: opinion spread %.2f (pos %.2f / neg %.2f) from %d walks in %v — no Monte Carlo\n",
		ocEst.OpinionSpread, ocEst.PositiveSpread, ocEst.NegativeSpread,
		ocEst.Runs, time.Since(start).Round(time.Microsecond))
	mcEst := must(holisticim.EstimateOpinionSpreadContext(context.Background(), g, ocRes.Seeds, holisticim.Options{
		Model: holisticim.ModelOC, MCRuns: 2000, Seed: 7,
	}))
	fmt.Printf("oc MC     : opinion spread %.2f with %d simulations (the estimate the sketch replaces)\n",
		mcEst.OpinionSpread, mcEst.Runs)
}

// must unwraps the context estimators: the example configurations are
// known-valid and never cancelled, so an error here is a programming bug.
func must(est holisticim.Estimate, err error) holisticim.Estimate {
	if err != nil {
		panic(err)
	}
	return est
}
