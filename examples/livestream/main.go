// Live stream: the live-graph serving loop end to end — tail a stream
// of follow/unfollow events on the Twitter study's background graph,
// apply them as versioned mutation batches, repair the RR-sketch index
// incrementally after every batch, and keep influence queries answered
// from the (always fresh) sketch. The same loop runs behind
// POST /v1/graphs/{name}/edges in the service.
//
//	go run ./examples/livestream
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/datasets"
)

// streamBatch fabricates one batch of follow events against the current
// snapshot: users in a sliding window unfollow their first followee and
// pick up a new one. Deterministic, so the demo replays identically.
func streamBatch(g *holisticim.Graph, round int) []holisticim.EdgeOp {
	var ops []holisticim.EdgeOp
	n := g.NumNodes()
	base := n - 1 - int32(round*60)
	p := 0.15
	for u := base; u > base-30 && u > 0; u-- {
		if nbrs := g.OutNeighbors(u); len(nbrs) > 0 {
			ops = append(ops, holisticim.EdgeOp{Op: holisticim.OpRemoveEdge, From: u, To: nbrs[0]})
		}
		v := (u + n/2) % n
		if u != v && !g.HasEdge(u, v) {
			ops = append(ops, holisticim.EdgeOp{Op: holisticim.OpAddEdge, From: u, To: v, P: &p, Phi: &p})
		}
	}
	return ops
}

func main() {
	ctx := context.Background()

	// The Sec.-4.1.1 pipeline supplies a realistic substrate: an R-MAT
	// follow graph with latent propagation/agreement parameters and
	// history-estimated opinions.
	study := datasets.BuildTwitterStudy(datasets.TwitterOptions{Users: 3000, Topics: 6, Seed: 1})
	g := study.Background
	fmt.Printf("follow graph: %d users, %d follow arcs\n", g.NumNodes(), g.NumEdges())

	sk, err := holisticim.BuildSketch(ctx, g, holisticim.SketchOptions{
		Model: holisticim.ModelLT, Epsilon: 0.3, Seed: 7, BuildK: 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RR-sketch built: %d sets at graph version 0\n\n", sk.Len())

	query := holisticim.Query{
		Algorithm: holisticim.AlgIMM,
		K:         10,
		Options:   holisticim.Options{Model: holisticim.ModelLT, Epsilon: 0.3, Seed: 7, Sketch: sk},
	}

	lv := holisticim.WrapLive(g, holisticim.LiveOptions{})
	for round := 0; round < 4; round++ {
		ops := streamBatch(lv.Graph(), round)
		res, err := lv.Apply(ctx, ops, holisticim.ApplyOptions{RebalanceLT: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("v%d: %d follow events applied, %d users dirty\n",
			res.Version, res.Applied, len(res.Dirty))

		if round == 0 {
			// Before repair the sketch no longer matches the snapshot:
			// the planner refuses it and re-routes — stale answers are
			// never served silently.
			plan, err := holisticim.PlanQuery(lv.Graph(), query)
			if err != nil {
				log.Fatal(err)
			}
			for _, line := range plan.Explain() {
				if strings.Contains(line, "awaiting repair") {
					fmt.Printf("    planner before repair: %s\n", line)
				}
			}
		}

		st, err := sk.Repair(ctx, lv.Graph(), res.Dirty, res.Version, holisticim.SketchRepairOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    repair: %d/%d RR sets resampled (%d changed), sketch now at v%d\n",
			st.Resampled, sk.Len(), st.Changed, sk.GraphVersion())

		ans, err := holisticim.Run(ctx, lv.Graph(), query)
		if err != nil {
			log.Fatal(err)
		}
		r := ans.Members[0].Result
		fmt.Printf("    fresh k=10 selection (sketch-served=%v), top 5: %v\n\n",
			ans.Plan.SketchOnly(), r.Seeds[:5])
	}
}
