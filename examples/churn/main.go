// Churn analysis: the paper's Sec. 4.1.2 study — label-propagated churn
// affinities become opinions, and MEO seed selection finds the customers
// whose retention outreach best protects the network.
//
//	go run ./examples/churn
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/datasets"
)

func main() {
	study := datasets.BuildChurnStudy(datasets.ChurnOptions{
		Customers: 3000,
		Seed:      1,
	})
	g := study.Graph
	fmt.Printf("similarity graph: %d customers, %d relationships\n",
		g.NumNodes(), g.NumEdges()/2)

	churners := 0
	for _, c := range study.Churned {
		if c {
			churners++
		}
	}
	fmt.Printf("ground truth: %d churners / %d customers\n\n", churners, len(study.Churned))

	const budget = 30
	opts := holisticim.Options{MCRuns: 2000, Seed: 5}

	// Retention targets under three strategies.
	osim, err := holisticim.SelectSeeds(g, budget, holisticim.AlgOSIM, opts)
	if err != nil {
		log.Fatal(err)
	}
	easy, err := holisticim.SelectSeeds(g, budget, holisticim.AlgEaSyIM, opts)
	if err != nil {
		log.Fatal(err)
	}
	degree, _ := holisticim.SelectSeeds(g, budget, holisticim.AlgDegree, opts)

	fmt.Printf("%-32s %14s %14s\n", "targeting strategy", "opinion spread", "effective λ=1")
	for _, run := range []struct {
		name  string
		seeds []holisticim.NodeID
	}{
		{"Degree (most-connected)", degree.Seeds},
		{"EaSyIM (opinion-oblivious)", easy.Seeds},
		{"OSIM (opinion-aware MEO)", osim.Seeds},
	} {
		est := must(holisticim.EstimateOpinionSpreadContext(context.Background(), g, run.seeds, opts))
		fmt.Printf("%-32s %14.2f %14.2f\n", run.name,
			est.OpinionSpread, est.EffectiveOpinionSpread(1))
	}

	// Decompose what the opinion-aware targeting reaches. Note that seeds'
	// own opinions do not count toward spread (Def. 6), so MEO may anchor
	// campaigns at frontier customers — even likely churners — whose
	// outreach cascades into loyal, positive-affinity neighborhoods.
	est := must(holisticim.EstimateOpinionSpreadContext(context.Background(), g, osim.Seeds, opts))
	fmt.Printf("\nOSIM campaign reach: +%.2f positive affinity vs -%.2f negative —\n",
		est.PositiveSpread, est.NegativeSpread)
	churnSeeds := 0
	for _, s := range osim.Seeds {
		if study.Churned[s] {
			churnSeeds++
		}
	}
	fmt.Printf("anchored at %d at-risk and %d loyal customers on the churn frontier.\n",
		churnSeeds, len(osim.Seeds)-churnSeeds)
}

// must unwraps the context estimators: the example configurations are
// known-valid and never cancelled, so an error here is a programming bug.
func must(est holisticim.Estimate, err error) holisticim.Estimate {
	if err != nil {
		panic(err)
	}
	return est
}
