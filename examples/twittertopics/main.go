// Twitter topics: the paper's Sec. 4.1.1 study — extract topic-focused
// subgraphs from a (synthetic) tweet stream, estimate OI parameters from
// history, and check which diffusion model predicts the observed opinion
// spread best.
//
//	go run ./examples/twittertopics
package main

import (
	"fmt"

	"github.com/holisticim/holisticim/datasets"
)

func main() {
	study := datasets.BuildTwitterStudy(datasets.TwitterOptions{
		Users:  4000,
		Topics: 14,
		Seed:   1,
	})

	fmt.Printf("background graph: %d users, %d follow edges\n",
		study.Background.NumNodes(), study.Background.NumEdges())
	fmt.Printf("topic-focused subgraphs evaluated: %d\n\n", len(study.Topics))

	fmt.Printf("%-10s %7s %6s %12s %10s %10s %10s\n",
		"topic", "users", "seeds", "groundtruth", "IC", "OC", "OI")
	show := study.Topics
	if len(show) > 8 {
		show = show[:8]
	}
	for _, tg := range show {
		fmt.Printf("#c?t%-6d %7d %6d %12.2f %10.2f %10.2f %10.2f\n",
			tg.Topic, tg.Nodes, tg.Seeds, tg.GroundTruth, tg.PredIC, tg.PredOC, tg.PredOI)
	}

	fmt.Printf("\nnormalized RMSE vs ground truth (lower is better):\n")
	fmt.Printf("  IC: %6.1f%%\n  OC: %6.1f%%\n  OI: %6.1f%%  <-- the paper's Figure 5(b) finding\n",
		study.NRMSEIC, study.NRMSEOC, study.NRMSEOI)
}
