// Viral marketing: the paper's running iPhone example (Examples 1-2),
// first on the exact 4-node Figure-1 network, then on a realistic
// polarized market where picking seeds by raw reach backfires.
//
//	go run ./examples/viralmarketing
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/holisticim/holisticim"
)

func main() {
	figureOne()
	market()
}

// figureOne rebuilds Figure 1 (nodes A,B,C,D) with the public API and
// shows that reach-driven selection picks C while opinion-aware selection
// picks A — the worked Example 2 of the paper.
func figureOne() {
	b := holisticim.NewBuilder(4)
	const (
		A holisticim.NodeID = 0
		B holisticim.NodeID = 1
		C holisticim.NodeID = 2
		D holisticim.NodeID = 3
	)
	b.AddEdgeP(B, A, 0.1, 0.7)
	b.AddEdgeP(B, C, 0.1, 0.8)
	b.AddEdgeP(A, D, 0.8, 0.9)
	b.AddEdgeP(C, D, 0.9, 0.1)
	g := b.Build()
	g.SetOpinion(A, 0.8)  // loved previous iPhones
	g.SetOpinion(B, 0.0)  // neutral
	g.SetOpinion(C, 0.6)  // mildly positive
	g.SetOpinion(D, -0.3) // dislikes the brand

	names := map[holisticim.NodeID]string{A: "A", B: "B", C: "C", D: "D"}
	opts := holisticim.Options{MCRuns: 50000, Seed: 3}

	fmt.Println("== Figure 1: who should get the one free iPhone? ==")
	fmt.Printf("%4s  %12s  %16s\n", "node", "IC spread", "opinion spread")
	for _, v := range []holisticim.NodeID{A, B, C, D} {
		ic := must(holisticim.EstimateSpreadContext(context.Background(), g, []holisticim.NodeID{v}, opts))
		oi := must(holisticim.EstimateOpinionSpreadContext(context.Background(), g, []holisticim.NodeID{v}, opts))
		fmt.Printf("%4s  %12.4f  %16.4f\n", names[v], ic.Spread, oi.OpinionSpread)
	}
	easy, _ := holisticim.SelectSeeds(g, 1, holisticim.AlgEaSyIM, holisticim.Options{PathLength: 2, Seed: 3})
	osim, _ := holisticim.SelectSeeds(g, 1, holisticim.AlgOSIM, holisticim.Options{PathLength: 2, Seed: 3})
	fmt.Printf("EaSyIM picks %s (best reach); OSIM picks %s (best effective opinion)\n\n",
		names[easy.Seeds[0]], names[osim.Seeds[0]])
}

// market runs the same comparison at scale: a polarized customer base
// where the most connected hubs sit in hostile territory.
func market() {
	g := holisticim.GenerateBA(20000, 4, 11)
	g.SetUniformProb(0.1)
	holisticim.AssignOpinions(g, holisticim.OpinionPolarized, 12)
	holisticim.AssignInteractions(g, 13)

	const k = 25
	opts := holisticim.Options{MCRuns: 2000, Seed: 15}
	easy, err := holisticim.SelectSeeds(g, k, holisticim.AlgEaSyIM, opts)
	if err != nil {
		log.Fatal(err)
	}
	osim, err := holisticim.SelectSeeds(g, k, holisticim.AlgOSIM, opts)
	if err != nil {
		log.Fatal(err)
	}
	degree, _ := holisticim.SelectSeeds(g, k, holisticim.AlgDegree, opts)

	fmt.Println("== Polarized market, 20K customers, budget 25 ==")
	fmt.Printf("%-28s %12s %12s %12s\n", "strategy", "reach", "opinion", "effective λ=1")
	for _, run := range []struct {
		name  string
		seeds []holisticim.NodeID
	}{
		{"Degree (follower count)", degree.Seeds},
		{"EaSyIM (max reach)", easy.Seeds},
		{"OSIM (max effective opinion)", osim.Seeds},
	} {
		sp := must(holisticim.EstimateSpreadContext(context.Background(), g, run.seeds, opts))
		op := must(holisticim.EstimateOpinionSpreadContext(context.Background(), g, run.seeds, opts))
		fmt.Printf("%-28s %12.1f %12.2f %12.2f\n",
			run.name, sp.Spread, op.OpinionSpread, op.EffectiveOpinionSpread(1))
	}
	fmt.Println("\nReach-driven campaigns recruit detractors; MEO counts them against you.")
}

// must unwraps the context estimators: the example configurations are
// known-valid and never cancelled, so an error here is a programming bug.
func must(est holisticim.Estimate, err error) holisticim.Estimate {
	if err != nil {
		panic(err)
	}
	return est
}
