package live_test

import (
	"context"
	"strings"
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/live"
	"github.com/holisticim/holisticim/internal/ris"
	"github.com/holisticim/holisticim/internal/rng"
	"github.com/holisticim/holisticim/internal/sketch"
)

func fp(v float64) *float64 { return &v }

// smallGraph builds 0→1→2→3 plus 0→2, all p=0.3 phi=0.4 w=0.5.
func smallGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4)
	b.AddEdgeFull(0, 1, 0.3, 0.4, 0.5)
	b.AddEdgeFull(1, 2, 0.3, 0.4, 0.5)
	b.AddEdgeFull(2, 3, 0.3, 0.4, 0.5)
	b.AddEdgeFull(0, 2, 0.3, 0.4, 0.5)
	return b.Build()
}

// arcParams returns (p, phi, w) of arc u→v, failing if absent.
func arcParams(t *testing.T, g *graph.Graph, u, v graph.NodeID) (float64, float64, float64) {
	t.Helper()
	for i, nb := range g.OutNeighbors(u) {
		if nb == v {
			return g.OutProbs(u)[i], g.OutPhis(u)[i], g.OutWeights(u)[i]
		}
	}
	t.Fatalf("arc (%d,%d) absent", u, v)
	return 0, 0, 0
}

func TestApplySemantics(t *testing.T) {
	ctx := context.Background()
	g0 := smallGraph(t)
	g0.SetOpinions([]float64{0.1, -0.2, 0.3, -0.4})
	lv := live.Wrap(g0, live.Options{})

	res, err := lv.Apply(ctx, []live.EdgeOp{
		{Op: live.OpAdd, From: 3, To: 0, P: fp(0.9), Phi: fp(0.8), W: fp(0.7)},
		{Op: live.OpRemove, From: 0, To: 2},
		{Op: live.OpReweight, From: 0, To: 1, P: fp(0.6)},
	}, live.ApplyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || lv.Version() != 1 {
		t.Fatalf("version = %d/%d, want 1", res.Version, lv.Version())
	}
	if res.Applied != 3 || res.Nodes != 4 || res.Arcs != 4 {
		t.Fatalf("applied=%d nodes=%d arcs=%d, want 3/4/4", res.Applied, res.Nodes, res.Arcs)
	}
	// Dirty = sorted distinct targets.
	want := []graph.NodeID{0, 1, 2}
	if len(res.Dirty) != len(want) {
		t.Fatalf("dirty = %v, want %v", res.Dirty, want)
	}
	for i := range want {
		if res.Dirty[i] != want[i] {
			t.Fatalf("dirty = %v, want %v", res.Dirty, want)
		}
	}

	g1 := lv.Graph()
	if !g1.HasEdge(3, 0) || g1.HasEdge(0, 2) {
		t.Fatal("batch edits not reflected in the new snapshot")
	}
	if p, phi, w := arcParams(t, g1, 3, 0); p != 0.9 || phi != 0.8 || w != 0.7 {
		t.Fatalf("added arc carries (%v,%v,%v)", p, phi, w)
	}
	// Reweight set only P; phi and w kept.
	if p, phi, w := arcParams(t, g1, 0, 1); p != 0.6 || phi != 0.4 || w != 0.5 {
		t.Fatalf("reweighted arc carries (%v,%v,%v)", p, phi, w)
	}
	// Untouched arc fully preserved, opinions carried over.
	if p, phi, w := arcParams(t, g1, 1, 2); p != 0.3 || phi != 0.4 || w != 0.5 {
		t.Fatalf("untouched arc carries (%v,%v,%v)", p, phi, w)
	}
	if g1.Opinion(3) != -0.4 {
		t.Fatalf("opinion not carried: %v", g1.Opinion(3))
	}
	// The old snapshot is immutable.
	if g0.HasEdge(3, 0) || !g0.HasEdge(0, 2) {
		t.Fatal("old snapshot mutated")
	}

	snap, ver := lv.Snapshot()
	if snap != g1 || ver != 1 {
		t.Fatal("Snapshot out of sync")
	}
}

func TestApplyAtomicity(t *testing.T) {
	ctx := context.Background()
	g0 := smallGraph(t)
	lv := live.Wrap(g0, live.Options{})
	// Op 0 is valid on its own; op 1 is not. Nothing may change.
	_, err := lv.Apply(ctx, []live.EdgeOp{
		{Op: live.OpRemove, From: 0, To: 1},
		{Op: live.OpRemove, From: 0, To: 3}, // absent
	}, live.ApplyOptions{})
	if err == nil {
		t.Fatal("batch with invalid op accepted")
	}
	if lv.Version() != 0 || lv.Graph() != g0 {
		t.Fatal("failed batch left a trace")
	}
	if !g0.HasEdge(0, 1) {
		t.Fatal("failed batch removed an edge")
	}
}

func TestApplyValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		ops  []live.EdgeOp
		frag string
	}{
		{"empty", nil, "empty batch"},
		{"range", []live.EdgeOp{{Op: live.OpAdd, From: 0, To: 9}}, "out of range"},
		{"self-loop", []live.EdgeOp{{Op: live.OpAdd, From: 1, To: 1}}, "self-loop"},
		{"bad-p", []live.EdgeOp{{Op: live.OpAdd, From: 1, To: 0, P: fp(1.5)}}, "out of [0,1]"},
		{"bad-phi", []live.EdgeOp{{Op: live.OpAdd, From: 1, To: 0, Phi: fp(-0.1)}}, "out of [0,1]"},
		{"bad-w", []live.EdgeOp{{Op: live.OpAdd, From: 1, To: 0, W: fp(-1)}}, "negative"},
		{"add-existing", []live.EdgeOp{{Op: live.OpAdd, From: 0, To: 1}}, "existing"},
		{"remove-absent", []live.EdgeOp{{Op: live.OpRemove, From: 1, To: 0}}, "absent"},
		{"reweight-absent", []live.EdgeOp{{Op: live.OpReweight, From: 1, To: 0, P: fp(0.5)}}, "absent"},
		{"reweight-noop", []live.EdgeOp{{Op: live.OpReweight, From: 0, To: 1}}, "no parameter"},
		{"unknown-op", []live.EdgeOp{{Op: "upsert", From: 1, To: 0}}, "unknown op"},
		{"dup-arc", []live.EdgeOp{
			{Op: live.OpReweight, From: 0, To: 1, P: fp(0.5)},
			{Op: live.OpRemove, From: 0, To: 1},
		}, "both touch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lv := live.Wrap(smallGraph(t), live.Options{})
			_, err := lv.Apply(ctx, tc.ops, live.ApplyOptions{})
			if err == nil {
				t.Fatalf("accepted %s batch", tc.name)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
			if lv.Version() != 0 {
				t.Fatal("rejected batch bumped the version")
			}
		})
	}
}

func TestDirtySinceAndEviction(t *testing.T) {
	ctx := context.Background()
	lv := live.Wrap(smallGraph(t), live.Options{MaxLog: 2})
	batches := [][]live.EdgeOp{
		{{Op: live.OpAdd, From: 3, To: 0, P: fp(0.5)}},
		{{Op: live.OpAdd, From: 3, To: 1, P: fp(0.5)}},
		{{Op: live.OpAdd, From: 1, To: 3, P: fp(0.5)}},
	}
	for _, ops := range batches {
		if _, err := lv.Apply(ctx, ops, live.ApplyOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Version 1 fell off the 2-entry log: the caller must rebuild.
	if _, ok := lv.DirtySince(0); ok {
		t.Fatal("DirtySince(0) claims coverage after eviction")
	}
	// (1, 3] is retained: union of {1} and {3}.
	dirty, ok := lv.DirtySince(1)
	if !ok || len(dirty) != 2 || dirty[0] != 1 || dirty[1] != 3 {
		t.Fatalf("DirtySince(1) = %v ok=%v, want [1 3] true", dirty, ok)
	}
	// A caller already at the head sees an empty, covered range.
	if dirty, ok := lv.DirtySince(3); !ok || len(dirty) != 0 {
		t.Fatalf("DirtySince(head) = %v ok=%v", dirty, ok)
	}
	if dirty, ok := lv.DirtySince(7); !ok || len(dirty) != 0 {
		t.Fatalf("DirtySince(future) = %v ok=%v", dirty, ok)
	}
}

func TestApplyRebalanceLT(t *testing.T) {
	ctx := context.Background()
	// Node 2 has in-arcs from 1 and 0; add a third from 3 with rebalance.
	lv := live.Wrap(smallGraph(t), live.Options{})
	if _, err := lv.Apply(ctx, []live.EdgeOp{
		{Op: live.OpAdd, From: 3, To: 2, P: fp(0.5)},
	}, live.ApplyOptions{RebalanceLT: true}); err != nil {
		t.Fatal(err)
	}
	g := lv.Graph()
	if g.InDegree(2) != 3 {
		t.Fatalf("in-degree of 2 = %d, want 3", g.InDegree(2))
	}
	third := 1.0 / 3
	for _, u := range []graph.NodeID{0, 1, 3} {
		if _, _, w := arcParams(t, g, u, 2); w != third {
			t.Fatalf("w(%d,2) = %v, want 1/3", u, w)
		}
	}
	// Arcs into untouched targets keep their weights.
	if _, _, w := arcParams(t, g, 0, 1); w != 0.5 {
		t.Fatalf("w(0,1) = %v, want 0.5 (untouched target)", w)
	}

	// Removing the last in-arc of a target leaves nothing to rebalance.
	lv2 := live.Wrap(smallGraph(t), live.Options{})
	if _, err := lv2.Apply(ctx, []live.EdgeOp{
		{Op: live.OpRemove, From: 2, To: 3},
	}, live.ApplyOptions{RebalanceLT: true}); err != nil {
		t.Fatal(err)
	}
	if lv2.Graph().InDegree(3) != 0 {
		t.Fatal("in-degree of 3 not zero after removing its only in-arc")
	}
}

// TestLiveChurnSmoke is the CI live-churn smoke: against the 50k-node BA
// benchmark graph, a sketch kept fresh by incremental repair across a
// stream of edge batches must answer every selection exactly like a
// sketch built from scratch on the current snapshot.
func TestLiveChurnSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-node churn smoke")
	}
	ctx := context.Background()
	g := graph.BarabasiAlbert(50000, 3, rng.New(1))
	g.SetUniformProb(0.1)
	g.SetDefaultLTWeights()
	// MaxSets pins both indexes to one sample size: repaired-vs-rebuilt
	// equality is then exact (same stream prefix) rather than depending
	// on each build's θ trajectory over slightly different content.
	p := sketch.Params{Kind: ris.ModelLT, Epsilon: 0.3, Seed: 9, BuildK: 20, MaxSets: 20000}
	x, err := sketch.Build(ctx, g, p)
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != p.MaxSets {
		t.Fatalf("build stopped at %d sets below the %d cap; lower the cap so both indexes pin to one size", x.Len(), p.MaxSets)
	}

	lv := live.Wrap(g, live.Options{})
	// Each round mutates a disjoint slab of peripheral arcs.
	slab := func(round int) []live.EdgeOp {
		var ops []live.EdgeOp
		n := g.NumNodes()
		base := n - 1 - int32(round*400)
		pr := 0.2
		for u := base; u > base-200; u-- {
			cur := lv.Graph()
			if nbrs := cur.OutNeighbors(u); len(nbrs) > 0 && cur.HasEdge(nbrs[0], u) {
				ops = append(ops, live.EdgeOp{Op: live.OpRemove, From: nbrs[0], To: u})
			} else if !cur.HasEdge(u, u-1) {
				ops = append(ops, live.EdgeOp{Op: live.OpAdd, From: u, To: u - 1, P: &pr})
			}
		}
		return ops
	}
	for round := 0; round < 3; round++ {
		res, err := lv.Apply(ctx, slab(round), live.ApplyOptions{RebalanceLT: true})
		if err != nil {
			t.Fatal(err)
		}
		cur := lv.Graph()
		if _, err := x.Repair(ctx, cur, res.Dirty, res.Version, sketch.RepairOptions{}); err != nil {
			t.Fatal(err)
		}
		if !x.Matches(cur, p.Kind) {
			t.Fatalf("round %d: repaired sketch does not match the snapshot", round)
		}

		fresh, err := sketch.Build(ctx, cur, p)
		if err != nil {
			t.Fatal(err)
		}
		a, err := x.Select(ctx, 20)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.Select(ctx, 20)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Seeds) != len(b.Seeds) {
			t.Fatalf("round %d: %d vs %d seeds", round, len(a.Seeds), len(b.Seeds))
		}
		for i := range a.Seeds {
			if a.Seeds[i] != b.Seeds[i] {
				t.Fatalf("round %d: repaired and rebuilt sketches disagree at seed %d: %d vs %d",
					round, i, a.Seeds[i], b.Seeds[i])
			}
		}
	}
}
