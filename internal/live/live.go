// Package live makes graphs mutable without throwing derived state away.
//
// Every graph in the system is an immutable CSR snapshot — the property
// that lets RR-sketch indexes, result caches and concurrent selections
// share one instance without locks. live.Graph keeps that property while
// adding mutation: Apply(batch) validates a batch of edge operations
// atomically, materializes a NEW immutable snapshot with the batch
// applied, and records a monotone version number together with the
// batch's dirty-node set (the targets of every touched edge).
//
// The dirty set is the contract with incremental sketch repair
// (sketch.Index.Repair): both RR samplers — reverse IC BFS and reverse
// LT walks — only ever read the in-edge list of a node AFTER adding that
// node to the set, so an RR set sampled before the batch that contains
// no dirty node replays byte-identically on the new snapshot. Repair
// therefore resamples exactly the sets containing a dirty node and
// leaves everything else untouched.
package live

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/holisticim/holisticim/internal/graph"
)

// OpKind names one edge operation of a mutation batch.
type OpKind string

// Edge operations.
const (
	// OpAdd inserts a new arc (From,To); it must not already exist.
	// Omitted parameters default to zero.
	OpAdd OpKind = "add"
	// OpRemove deletes the arc (From,To); it must exist.
	OpRemove OpKind = "remove"
	// OpReweight changes parameters of the existing arc (From,To); omitted
	// parameters keep their current values.
	OpReweight OpKind = "reweight"
)

// EdgeOp is one operation of a mutation batch. P/Phi/W are pointers so a
// reweight can distinguish "set to zero" from "keep current".
type EdgeOp struct {
	Op       OpKind
	From, To graph.NodeID
	P        *float64 // influence probability p(u,v) ∈ [0,1]
	Phi      *float64 // interaction probability ϕ(u,v) ∈ [0,1]
	W        *float64 // LT weight, non-negative and finite
}

// ApplyOptions tunes one Apply call.
type ApplyOptions struct {
	// RebalanceLT re-derives w(u,v) = 1/indeg(v) for EVERY in-edge of each
	// dirty target after the batch, keeping LT weight columns normalized
	// under topology churn (the weighted-cascade convention). Safe for
	// incremental repair: the reweighted edges all point into dirty nodes,
	// which the batch's dirty set already covers.
	RebalanceLT bool
}

// BatchResult reports one applied batch.
type BatchResult struct {
	// Version is the monotone version number the batch produced (the
	// wrapped snapshot starts at 0; the first batch yields 1).
	Version uint64
	// Dirty lists the distinct targets of the batch's operations (plus
	// nothing else), sorted ascending. This is exactly the set incremental
	// sketch repair needs.
	Dirty []graph.NodeID
	// Applied counts the operations in the batch.
	Applied int
	// Nodes and Arcs describe the new snapshot.
	Nodes int32
	Arcs  int64
}

// maxLogDefault bounds retained version records when Options.MaxLog is
// unset: enough for any realistic repair lag, bounded so a churn-heavy
// stream cannot grow memory without bound.
const maxLogDefault = 1024

// Options configures Wrap.
type Options struct {
	// MaxLog bounds the retained version log (default 1024 batches).
	// DirtySince reports when the requested range fell off the log.
	MaxLog int
}

// versionRecord is one entry of the mutation log.
type versionRecord struct {
	version uint64
	dirty   []graph.NodeID
}

// Graph wraps an immutable graph.Graph with a versioned mutation log.
// All methods are safe for concurrent use; Apply calls serialize.
type Graph struct {
	mu      sync.RWMutex
	g       *graph.Graph    // guarded by mu
	version uint64          // guarded by mu
	log     []versionRecord // guarded by mu
	maxLog  int             // immutable after Wrap
}

// Wrap starts a mutation lineage at version 0 over g.
func Wrap(g *graph.Graph, opts Options) *Graph {
	if g == nil {
		panic("live: nil graph")
	}
	if opts.MaxLog <= 0 {
		opts.MaxLog = maxLogDefault
	}
	return &Graph{g: g, maxLog: opts.MaxLog}
}

// Graph returns the current immutable snapshot. Callers may hold it
// indefinitely; later Apply calls produce new snapshots instead of
// touching this one.
func (lv *Graph) Graph() *graph.Graph {
	lv.mu.RLock()
	defer lv.mu.RUnlock()
	return lv.g
}

// Version returns the current version number.
func (lv *Graph) Version() uint64 {
	lv.mu.RLock()
	defer lv.mu.RUnlock()
	return lv.version
}

// Snapshot returns the current snapshot and its version, read atomically.
func (lv *Graph) Snapshot() (*graph.Graph, uint64) {
	lv.mu.RLock()
	defer lv.mu.RUnlock()
	return lv.g, lv.version
}

// DirtySince returns the union of the dirty sets of every version in
// (since, current], sorted ascending, and reports whether the log still
// covers that range (false means records were evicted and the caller
// must treat everything as dirty — i.e. rebuild). since equal to the
// current version yields an empty set and true.
func (lv *Graph) DirtySince(since uint64) ([]graph.NodeID, bool) {
	lv.mu.RLock()
	defer lv.mu.RUnlock()
	if since >= lv.version {
		return nil, true
	}
	// The log holds consecutive versions ending at lv.version; the oldest
	// retained record tells whether (since, current] is fully covered.
	if len(lv.log) == 0 || lv.log[0].version > since+1 {
		return nil, false
	}
	seen := make(map[graph.NodeID]struct{})
	for _, rec := range lv.log {
		if rec.version <= since {
			continue
		}
		for _, v := range rec.dirty {
			seen[v] = struct{}{}
		}
	}
	out := make([]graph.NodeID, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// edgeKey packs an arc for batch conflict detection and the rebuild
// edit map.
func edgeKey(u, v graph.NodeID) int64 { return int64(u)<<32 | int64(uint32(v)) }

func validProb(p float64) bool   { return p >= 0 && p <= 1 && !math.IsNaN(p) }
func validWeight(w float64) bool { return w >= 0 && !math.IsNaN(w) && !math.IsInf(w, 0) }

// validateLocked checks one op against the current snapshot. Whole-batch
// atomicity rides on validation being side-effect free: Apply validates
// every op before building anything.
func (lv *Graph) validateLocked(i int, op EdgeOp) error {
	n := lv.g.NumNodes()
	if op.From < 0 || op.From >= n || op.To < 0 || op.To >= n {
		return fmt.Errorf("live: op %d: edge (%d,%d) out of range [0,%d)", i, op.From, op.To, n)
	}
	if op.From == op.To {
		return fmt.Errorf("live: op %d: self-loop (%d,%d)", i, op.From, op.To)
	}
	if op.P != nil && !validProb(*op.P) {
		return fmt.Errorf("live: op %d: probability %v out of [0,1]", i, *op.P)
	}
	if op.Phi != nil && !validProb(*op.Phi) {
		return fmt.Errorf("live: op %d: interaction %v out of [0,1]", i, *op.Phi)
	}
	if op.W != nil && !validWeight(*op.W) {
		return fmt.Errorf("live: op %d: LT weight %v negative or non-finite", i, *op.W)
	}
	exists := lv.g.HasEdge(op.From, op.To)
	switch op.Op {
	case OpAdd:
		if exists {
			return fmt.Errorf("live: op %d: add of existing edge (%d,%d)", i, op.From, op.To)
		}
	case OpRemove:
		if !exists {
			return fmt.Errorf("live: op %d: remove of absent edge (%d,%d)", i, op.From, op.To)
		}
	case OpReweight:
		if !exists {
			return fmt.Errorf("live: op %d: reweight of absent edge (%d,%d)", i, op.From, op.To)
		}
		if op.P == nil && op.Phi == nil && op.W == nil {
			return fmt.Errorf("live: op %d: reweight of (%d,%d) sets no parameter", i, op.From, op.To)
		}
	default:
		return fmt.Errorf("live: op %d: unknown op %q", i, op.Op)
	}
	return nil
}

// Apply validates and applies one batch atomically: either every op is
// valid and a new snapshot at version+1 is installed, or the error names
// the first offending op and nothing changes. Opinions carry over to the
// new snapshot unchanged. ctx is honored between the validation and
// rebuild phases (the rebuild itself is a single fast CSR pass).
func (lv *Graph) Apply(ctx context.Context, ops []EdgeOp, opts ApplyOptions) (BatchResult, error) {
	if len(ops) == 0 {
		return BatchResult{}, errors.New("live: empty batch")
	}
	lv.mu.Lock()
	defer lv.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return BatchResult{}, err
	}

	// Validate everything first; also reject two ops on one arc (their
	// outcome would depend on batch order, which the wire format does not
	// promise to preserve under retries).
	edits := make(map[int64]int, len(ops)) // edgeKey -> op index
	for i, op := range ops {
		if err := lv.validateLocked(i, op); err != nil {
			return BatchResult{}, err
		}
		key := edgeKey(op.From, op.To)
		if j, dup := edits[key]; dup {
			return BatchResult{}, fmt.Errorf("live: ops %d and %d both touch edge (%d,%d)", j, i, op.From, op.To)
		}
		edits[key] = i
	}
	if err := ctx.Err(); err != nil {
		return BatchResult{}, err
	}

	// Dirty targets and, for the optional LT rebalance, the new in-degree
	// of each dirty target (old in-degree plus adds minus removes).
	g := lv.g
	n := g.NumNodes()
	dirtySet := make(map[graph.NodeID]int32, len(ops)) // target -> in-degree delta
	for _, op := range ops {
		d := dirtySet[op.To]
		switch op.Op {
		case OpAdd:
			d++
		case OpRemove:
			d--
		}
		dirtySet[op.To] = d
	}
	newInDeg := func(v graph.NodeID) int32 { return g.InDegree(v) + dirtySet[v] }
	ltWeight := func(v graph.NodeID, old float64) float64 {
		if !opts.RebalanceLT {
			return old
		}
		if _, dirty := dirtySet[v]; !dirty {
			return old
		}
		if d := newInDeg(v); d > 0 {
			return 1 / float64(d)
		}
		return 0
	}

	// Rebuild: one pass over the old CSR with the edit map applied, then
	// the added arcs.
	b := graph.NewBuilder(n)
	for u := graph.NodeID(0); u < n; u++ {
		nbrs := g.OutNeighbors(u)
		ps := g.OutProbs(u)
		phis := g.OutPhis(u)
		ws := g.OutWeights(u)
		for i, v := range nbrs {
			p, phi, w := ps[i], phis[i], ws[i]
			if j, ok := edits[edgeKey(u, v)]; ok {
				op := ops[j]
				if op.Op == OpRemove {
					continue
				}
				// OpReweight (OpAdd cannot hit an existing arc).
				if op.P != nil {
					p = *op.P
				}
				if op.Phi != nil {
					phi = *op.Phi
				}
				if op.W != nil {
					w = *op.W
				}
			}
			b.AddEdgeFull(u, v, p, phi, ltWeight(v, w))
		}
	}
	for _, op := range ops {
		if op.Op != OpAdd {
			continue
		}
		var p, phi, w float64
		if op.P != nil {
			p = *op.P
		}
		if op.Phi != nil {
			phi = *op.Phi
		}
		if op.W != nil {
			w = *op.W
		}
		b.AddEdgeFull(op.From, op.To, p, phi, ltWeight(op.To, w))
	}
	newG := b.Build()
	newG.SetOpinions(g.Opinions())

	dirty := make([]graph.NodeID, 0, len(dirtySet))
	for v := range dirtySet {
		dirty = append(dirty, v)
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })

	lv.g = newG
	lv.version++
	lv.log = append(lv.log, versionRecord{version: lv.version, dirty: dirty})
	if len(lv.log) > lv.maxLog {
		lv.log = append(lv.log[:0:0], lv.log[len(lv.log)-lv.maxLog:]...)
	}
	return BatchResult{
		Version: lv.version,
		Dirty:   dirty,
		Applied: len(ops),
		Nodes:   newG.NumNodes(),
		Arcs:    newG.NumEdges(),
	}, nil
}
