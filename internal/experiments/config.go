// Package experiments reproduces every table and figure of the paper's
// evaluation (Sec. 4 and Appendix B) on the scaled synthetic datasets of
// DESIGN.md §6. Each experiment is a named runner producing one or more
// Tables; cmd/imbench drives them from the command line and bench_test.go
// wraps each one in a testing.B benchmark.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Config controls dataset scale and simulation effort.
type Config struct {
	// Quick selects the reduced dataset scale and Monte-Carlo budget used
	// by tests and benchmarks; full scale follows DESIGN.md §6.
	Quick bool
	// MCRuns overrides the Monte-Carlo evaluation budget (0 = default:
	// 10000 full / 300 quick; the paper uses 10K).
	MCRuns int
	// Seed drives every random choice in the experiment.
	Seed uint64
	// Workers bounds simulation parallelism (0 = GOMAXPROCS).
	Workers int
}

func (c Config) runs() int {
	if c.MCRuns > 0 {
		return c.MCRuns
	}
	if c.Quick {
		return 300
	}
	return 10000
}

// kSweep returns the seed-budget sweep for figures plotting against k.
func (c Config) kSweep(max int) []int {
	if c.Quick {
		ks := []int{1, 5, 10, 20}
		out := ks[:0]
		for _, k := range ks {
			if k <= max {
				out = append(out, k)
			}
		}
		return out
	}
	ks := []int{10, 25, 50, 100, 150, 200}
	var out []int
	for _, k := range ks {
		if k <= max {
			out = append(out, k)
		}
	}
	return out
}

// Table is a rendered experiment artifact: one paper table or one figure's
// data series.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a caption note.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table as aligned ASCII.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as a CSV document (no notes).
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Columns, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Experiment couples a runner with its paper reference.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string // e.g. "Figure 6(a)"
	Run      func(cfg Config) []Table
}

// Registry maps experiment ids to runners; populated by init() functions
// across this package.
var Registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := Registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	Registry[e.ID] = e
}

// IDs returns all registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func fi(x int) string     { return fmt.Sprintf("%d", x) }
