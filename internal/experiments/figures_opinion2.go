package experiments

import (
	"github.com/holisticim/holisticim/internal/churn"
	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/greedy"
	"github.com/holisticim/holisticim/internal/im"
	"github.com/holisticim/holisticim/internal/opinion"
)

// churnGraph builds the Sec.-4.1.2 pipeline at the config's scale.
func churnGraph(cfg Config) *graph.Graph {
	n := 3400 // 1:10 of the paper's balanced 34K subset
	maxDeg := 44
	if cfg.Quick {
		n, maxDeg = 700, 25
	}
	g, _ := churn.BuildChurnGraph(
		churn.CustomerOptions{Customers: n, Seed: cfg.Seed + 47},
		churn.SimilarityOptions{Threshold: 0.88, MaxDegree: maxDeg, Seed: cfg.Seed + 53},
		churn.LabelPropOptions{},
	)
	return g
}

func runFig5d(cfg Config) []Table {
	g := churnGraph(cfg)
	t := Table{
		ID:      "fig5d",
		Title:   "Churn analysis: opinion spread vs seeds (PAKDD)",
		Columns: []string{"k", "OI seeds", "OC seeds", "IC seeds"},
	}
	ks := cfg.kSweep(200)
	kMax := ks[len(ks)-1]
	oiRes := selectK(osimSelector(g, 3, 1, cfg), kMax)
	ocSel, _ := ocSelector(g, 3, cfg)
	ocRes := selectK(ocSel, kMax)
	icRes := selectK(easyimSelector(g, 3, 0, cfg), kMax)
	for _, k := range ks {
		t.AddRow(fi(k),
			f2(evalOpinion(g, prefix(oiRes, k), 1, cfg)),
			f2(evalOpinion(g, prefix(ocRes, k), 1, cfg)),
			f2(evalOpinion(g, prefix(icRes, k), 1, cfg)))
	}
	t.AddNote("seeds = retention targets; paper shape: OI seeds maximize effective opinion")
	return []Table{t}
}

func runFig5e(cfg Config) []Table {
	t := Table{
		ID:      "fig5e",
		Title:   "Effective opinion spread: λ=1 objective vs λ=0 objective",
		Columns: []string{"dataset", "k", "λ=1 seeds", "λ=0 seeds"},
	}
	for _, ds := range []string{"nethept", "hepph"} {
		g := LoadDataset(ds, cfg)
		prepareOpinion(g, opinion.Normal, cfg.Seed)
		ks := cfg.kSweep(200)
		kMax := ks[len(ks)-1]
		l1 := selectK(osimSelector(g, 3, 1, cfg), kMax)
		l0 := selectK(osimSelector(g, 3, 0, cfg), kMax)
		for _, k := range ks {
			t.AddRow(ds, fi(k),
				f2(evalOpinion(g, prefix(l1, k), 1, cfg)),
				f2(evalOpinion(g, prefix(l0, k), 1, cfg)))
		}
	}
	t.AddNote("paper shape: the λ=1 objective outperforms λ=0 on effective spread")
	return []Table{t}
}

func runFig5fg(cfg Config) []Table {
	g := LoadDataset("nethept-mini", cfg)
	prepareOpinion(g, opinion.Normal, cfg.Seed)
	quality := Table{
		ID:      "fig5f",
		Title:   "OSIM l-sweep vs Modified-GREEDY: effective opinion spread (OI)",
		Columns: []string{"k", "GREEDY", "OSIM l=1", "OSIM l=2", "OSIM l=3", "OSIM l=5"},
	}
	timing := Table{
		ID:      "fig5g",
		Title:   "OSIM l-sweep vs Modified-GREEDY: cumulative time (s)",
		Columns: []string{"k", "GREEDY", "OSIM l=1", "OSIM l=2", "OSIM l=3", "OSIM l=5"},
	}
	ks := cfg.kSweep(200)
	greedyMax := ks[len(ks)-1]
	if cfg.Quick && greedyMax > 10 {
		greedyMax = 10 // Modified-GREEDY is O(k·n·runs); cap it in quick mode
	}
	obj := greedy.NewEffectiveOpinionObjective(diffusion.NewOI(g, diffusion.LayerIC), 1, greedyRuns(cfg), cfg.Seed+59)
	mg := selectK(greedy.NewModifiedGreedy(obj), greedyMax)
	ls := []int{1, 2, 3, 5}
	osimRes := make([]im.Result, len(ls))
	for i, l := range ls {
		osimRes[i] = selectK(osimSelector(g, l, 1, cfg), ks[len(ks)-1])
	}
	for _, k := range ks {
		qRow := []string{fi(k)}
		tRow := []string{fi(k)}
		if k <= greedyMax {
			qRow = append(qRow, f2(evalOpinion(g, prefix(mg, k), 1, cfg)))
			tRow = append(tRow, secs(mg.PerSeed[minInt(k, len(mg.PerSeed))-1].Seconds()))
		} else {
			qRow = append(qRow, "NA")
			tRow = append(tRow, "NA")
		}
		for i := range ls {
			qRow = append(qRow, f2(evalOpinion(g, prefix(osimRes[i], k), 1, cfg)))
			tRow = append(tRow, secs(osimRes[i].PerSeed[minInt(k, len(osimRes[i].PerSeed))-1].Seconds()))
		}
		quality.Rows = append(quality.Rows, qRow)
		timing.Rows = append(timing.Rows, tRow)
	}
	quality.AddNote("paper shape: spread grows with l then saturates; l=3 ≈ GREEDY quality")
	timing.AddNote("paper shape: OSIM is orders of magnitude faster than Modified-GREEDY")
	return []Table{quality, timing}
}

func greedyRuns(cfg Config) int {
	if cfg.Quick {
		return 60
	}
	return 2000
}

func runFig5h(cfg Config) []Table {
	t := Table{
		ID:      "fig5h",
		Title:   "Memory (MB): graph loading vs execution, OSIM vs Modified-GREEDY",
		Columns: []string{"dataset", "graph MB", "OSIM exec MB", "GREEDY exec MB"},
	}
	k := 100
	if cfg.Quick {
		k = 2
	}
	for _, ds := range []string{"nethept", "hepph", "dblp", "youtube"} {
		g := LoadDataset(ds, cfg)
		prepareOpinion(g, opinion.Normal, cfg.Seed)
		graphMB := MB(g.MemoryFootprint())
		osimMem := MeasureMemory(func() {
			selectK(osimSelector(g, 3, 1, cfg), k)
		})
		// Greedy memory is k- and runs-independent (the paper notes this),
		// so the cheapest configuration measures the same footprint.
		kG, runsG := 1, 10
		if !cfg.Quick {
			kG, runsG = 2, greedyRuns(cfg)/2+1
		}
		obj := greedy.NewEffectiveOpinionObjective(diffusion.NewOI(g, diffusion.LayerIC), 1, runsG, cfg.Seed+61)
		greedyMem := MeasureMemory(func() {
			selectK(greedy.NewModifiedGreedy(obj), kG)
		})
		t.AddRow(ds, f1(graphMB), f1(MB(osimMem.PeakExtraBytes)), f1(MB(greedyMem.PeakExtraBytes)))
	}
	t.AddNote("paper shape: both algorithms add only a small constant-factor overhead over graph loading")
	return []Table{t}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
