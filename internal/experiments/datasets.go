package experiments

import (
	"fmt"
	"sync"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

// DatasetSpec describes one scaled stand-in for a paper dataset (Table 2)
// per DESIGN.md §6.
type DatasetSpec struct {
	Name     string
	PaperN   string // paper's node count, for the notes column
	PaperM   string
	Directed bool
	// Generate builds the graph at the given scale tier.
	Generate func(quick bool, seed uint64) *graph.Graph
}

func baGen(nFull, nQuick int32, mPerNode int) func(bool, uint64) *graph.Graph {
	return func(quick bool, seed uint64) *graph.Graph {
		n := nFull
		if quick {
			n = nQuick
		}
		return graph.BarabasiAlbert(n, mPerNode, rng.New(seed))
	}
}

func rmatGen(nFull, nQuick int32, mFull, mQuick int64, undirected bool) func(bool, uint64) *graph.Graph {
	return func(quick bool, seed uint64) *graph.Graph {
		n, m := nFull, mFull
		if quick {
			n, m = nQuick, mQuick
		}
		return graph.RMAT(n, m, graph.DefaultRMAT, undirected, rng.New(seed))
	}
}

// Datasets is the registry of scaled stand-ins. Undirected datasets are
// expanded to both arcs, per the paper's convention.
var Datasets = map[string]DatasetSpec{
	"nethept": {
		Name: "NetHEPT", PaperN: "15K", PaperM: "62K", Directed: false,
		Generate: baGen(15000, 2000, 2),
	},
	"hepph": {
		Name: "HepPh", PaperN: "12K", PaperM: "237K", Directed: false,
		Generate: baGen(12000, 1500, 10),
	},
	"dblp": {
		Name: "DBLP(1:10)", PaperN: "317K", PaperM: "2.1M", Directed: false,
		Generate: rmatGen(32000, 6000, 210000, 24000, true),
	},
	"youtube": {
		Name: "YouTube(1:20)", PaperN: "1.13M", PaperM: "5.98M", Directed: false,
		Generate: rmatGen(56000, 8000, 300000, 32000, true),
	},
	"soclive": {
		Name: "socLive(1:100)", PaperN: "4.85M", PaperM: "69M", Directed: true,
		Generate: rmatGen(48500, 9000, 690000, 90000, false),
	},
	"orkut": {
		Name: "Orkut(1:200)", PaperN: "3.07M", PaperM: "234M", Directed: false,
		Generate: rmatGen(15400, 3000, 1170000, 150000, true),
	},
	"twitter": {
		Name: "Twitter(1:1000)", PaperN: "41.6M", PaperM: "1.5B", Directed: true,
		Generate: rmatGen(41600, 8000, 1500000, 200000, false),
	},
	"friendster": {
		Name: "Friendster(1:2000)", PaperN: "65.6M", PaperM: "3.6B", Directed: false,
		Generate: rmatGen(32800, 6500, 900000, 180000, true),
	},
	// nethept-mini backs the comparisons against the O(k·n·r·m) greedy
	// baselines, which cannot finish on larger graphs — the very point the
	// paper makes.
	"nethept-mini": {
		Name: "NetHEPT-mini", PaperN: "(greedy-feasible slice)", PaperM: "", Directed: false,
		Generate: baGen(1200, 400, 2),
	},
}

type dsKey struct {
	name  string
	quick bool
	seed  uint64
}

var (
	dsCacheMu sync.Mutex
	dsCache   = map[dsKey]*graph.Graph{}
)

// LoadDataset builds (or returns the cached) topology for a dataset at
// the config's scale tier. Callers always receive a private Clone so
// per-experiment parameter layers never interfere.
func LoadDataset(name string, cfg Config) *graph.Graph {
	spec, ok := Datasets[name]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown dataset %q", name))
	}
	key := dsKey{name, cfg.Quick, cfg.Seed}
	dsCacheMu.Lock()
	g, hit := dsCache[key]
	if !hit {
		g = spec.Generate(cfg.Quick, cfg.Seed^0xD5)
		g.SetDefaultLTWeights()
		dsCache[key] = g
	}
	dsCacheMu.Unlock()
	return g.Clone()
}
