package experiments

import (
	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
)

func init() {
	register(Experiment{ID: "example2", Title: "Worked Example 2 on the Figure-1 graph", PaperRef: "Examples 1-2", Run: runExample2})
}

// runExample2 reproduces the paper's worked example: per-node expected
// spread under IC and expected opinion spread under OI on the Figure-1
// network, against the paper's hand-computed values.
func runExample2(cfg Config) []Table {
	t := Table{
		ID:      "example2",
		Title:   "Per-node σ (IC) and σ_o (OI) on the Figure-1 graph",
		Columns: []string{"seed", "σ measured", "σ paper", "σ_o measured", "σ_o paper"},
	}
	g := graph.ExampleFigure1()
	runs := cfg.runs() * 20 // tiny graph: use a large budget for tight estimates
	names := []string{"A", "B", "C", "D"}
	paperSpread := []float64{0.8, 0.3628, 0.9, 0}
	// σ_o per Def. 6; the paper's -0.022564 for B is node D's contribution
	// alone (see EXPERIMENTS.md), the full Def.-6 value is 0.048444.
	paperOpinion := []float64{0.136, 0.048444, -0.351, 0}
	ic := diffusion.NewIC(g)
	oi := diffusion.NewOI(g, diffusion.LayerIC)
	for v := graph.NodeID(0); v < 4; v++ {
		icEst := diffusion.MonteCarlo(ic, []graph.NodeID{v}, diffusion.MCOptions{Runs: runs, Seed: cfg.Seed})
		oiEst := diffusion.MonteCarlo(oi, []graph.NodeID{v}, diffusion.MCOptions{Runs: runs, Seed: cfg.Seed})
		t.AddRow(names[v], f3(icEst.Spread), f3(paperSpread[v]), f3(oiEst.OpinionSpread), f3(paperOpinion[v]))
	}
	t.AddNote("IC ranks C first; OI ranks A first — opinion-awareness changes the seed (Example 2)")
	t.AddNote("paper's σ_o(B)=-0.022564 counts only node D's contribution; Def. 6 adds A (+0.04) and C (+0.03)")
	return []Table{t}
}
