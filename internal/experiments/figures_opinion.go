package experiments

import (
	"fmt"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/opinion"
	"github.com/holisticim/holisticim/internal/twitter"
)

func init() {
	register(Experiment{ID: "fig2", Title: "Opinion spread vs seeds under OI/OC/IC (NetHEPT, HepPh)", PaperRef: "Figure 2", Run: runFig2})
	register(Experiment{ID: "fig5a", Title: "Twitter: opinion spread vs ground truth per topic", PaperRef: "Figure 5(a)", Run: runFig5a})
	register(Experiment{ID: "fig5b", Title: "Twitter: normalized RMSE vs #seeds", PaperRef: "Figure 5(b)", Run: runFig5b})
	register(Experiment{ID: "fig5c", Title: "Twitter: opinion spread vs seeds on background graph", PaperRef: "Figure 5(c)", Run: runFig5c})
	register(Experiment{ID: "fig5d", Title: "PAKDD churn: opinion spread vs seeds", PaperRef: "Figure 5(d)", Run: runFig5d})
	register(Experiment{ID: "fig5e", Title: "λ=1 vs λ=0 effective opinion spread (NetHEPT, HepPh)", PaperRef: "Figure 5(e)", Run: runFig5e})
	register(Experiment{ID: "fig5f", Title: "OSIM l-sweep vs Modified-GREEDY, quality (NetHEPT, OI)", PaperRef: "Figure 5(f)", Run: runFig5fg})
	register(Experiment{ID: "fig5g", Title: "OSIM l-sweep vs Modified-GREEDY, running time (NetHEPT, OI)", PaperRef: "Figure 5(g)", Run: runFig5fg})
	register(Experiment{ID: "fig5h", Title: "OSIM vs Modified-GREEDY memory (medium datasets)", PaperRef: "Figure 5(h)", Run: runFig5h})
}

// runFig2 selects seeds under OI (OSIM), OC (ϕ≡1 OSIM) and IC (EaSyIM)
// and evaluates all three seed sets on opinion spread under the OI model.
func runFig2(cfg Config) []Table {
	t := Table{
		ID:      "fig2",
		Title:   "Opinion spread vs seeds for different diffusion models",
		Columns: []string{"dataset", "k", "OI", "OC", "IC"},
	}
	for _, ds := range []string{"nethept", "hepph"} {
		g := LoadDataset(ds, cfg)
		prepareOpinion(g, opinion.Normal, cfg.Seed)
		ks := cfg.kSweep(200)
		kMax := ks[len(ks)-1]
		oiSel := selectK(osimSelector(g, 3, 1, cfg), kMax)
		ocSel, _ := ocSelector(g, 3, cfg)
		ocRes := selectK(ocSel, kMax)
		icRes := selectK(easyimSelector(g, 3, 0, cfg), kMax)
		for _, k := range ks {
			t.AddRow(ds, fi(k),
				f2(evalOpinion(g, prefix(oiSel, k), 1, cfg)),
				f2(evalOpinion(g, prefix(ocRes, k), 1, cfg)),
				f2(evalOpinion(g, prefix(icRes, k), 1, cfg)))
		}
	}
	t.AddNote("paper shape: OI seeds dominate OC and IC seeds on opinion spread")
	return []Table{t}
}

// twitterPipeline builds the synthetic crawl and per-burst estimates once
// per config.
func twitterPipeline(cfg Config) (*twitter.Dataset, []twitter.TopicGraph) {
	opts := twitter.DatasetOptions{
		Users: 20000, AvgFollows: 10, Topics: 24, Categories: 6,
		Originators: 25, Waves: 2, Seed: cfg.Seed + 31,
	}
	if cfg.Quick {
		opts.Users, opts.AvgFollows, opts.Topics, opts.Originators = 2500, 7, 12, 12
	}
	d := twitter.GenerateDataset(opts)
	tgs := twitter.ExtractTopicGraphs(d, twitter.ExtractOptions{Seed: cfg.Seed + 37})
	return d, tgs
}

func runFig5a(cfg Config) []Table {
	_, tgs := twitterPipeline(cfg)
	t := Table{
		ID:      "fig5a",
		Title:   "Average opinion spread vs ground truth per topic (originator seeds)",
		Columns: []string{"topic", "IC", "OC", "OI", "GroundTruth"},
	}
	runs := cfg.runs()
	var sumIC, sumOC, sumOI, sumGT float64
	count := 0
	for i := range tgs {
		tg := &tgs[i]
		if i == 0 || len(tg.BackNodes) < 10 {
			continue
		}
		twitter.EstimateParameters(tg, tgs[:i])
		gt := tg.GroundTruthOpinionSpread()
		ic := twitter.PredictOpinionSpread(tg, twitter.ModelIC, runs, cfg.Seed+41)
		oc := twitter.PredictOpinionSpread(tg, twitter.ModelOC, runs, cfg.Seed+41)
		oi := twitter.PredictOpinionSpread(tg, twitter.ModelOI, runs, cfg.Seed+41)
		sumIC += ic
		sumOC += oc
		sumOI += oi
		sumGT += gt
		count++
		if count <= 3 { // the paper names three hashtags, then the average
			t.AddRow(fmt.Sprintf("topic-%d/burst-%d", tg.Topic, i), f2(ic), f2(oc), f2(oi), f2(gt))
		}
	}
	if count > 0 {
		n := float64(count)
		t.AddRow("Average", f2(sumIC/n), f2(sumOC/n), f2(sumOI/n), f2(sumGT/n))
	}
	t.AddNote("paper shape: OI prediction closest to ground truth")
	return []Table{t}
}

func runFig5b(cfg Config) []Table {
	_, tgs := twitterPipeline(cfg)
	t := Table{
		ID:      "fig5b",
		Title:   "Normalized RMSE (%) of predicted opinion spread vs #seeds",
		Columns: []string{"seeds", "IC", "OC", "OI"},
	}
	runs := cfg.runs()
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		var icP, ocP, oiP, gts []float64
		seedsUsed := 0
		for i := range tgs {
			tg := &tgs[i]
			if i == 0 || len(tg.BackNodes) < 10 || len(tg.Seeds) < 2 {
				continue
			}
			twitter.EstimateParameters(tg, tgs[:i])
			k := int(frac * float64(len(tg.Seeds)))
			if k < 1 {
				k = 1
			}
			seedsUsed += k
			full := tg.Seeds
			tg.Seeds = full[:k]
			gts = append(gts, tg.GroundTruthOpinionSpread())
			icP = append(icP, twitter.PredictOpinionSpread(tg, twitter.ModelIC, runs, cfg.Seed+43))
			ocP = append(ocP, twitter.PredictOpinionSpread(tg, twitter.ModelOC, runs, cfg.Seed+43))
			oiP = append(oiP, twitter.PredictOpinionSpread(tg, twitter.ModelOI, runs, cfg.Seed+43))
			tg.Seeds = full
		}
		if len(gts) == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("%d%% of originators", int(frac*100)),
			f1(twitter.NRMSE(icP, gts)), f1(twitter.NRMSE(ocP, gts)), f1(twitter.NRMSE(oiP, gts)))
	}
	t.AddNote("paper shape: OI has the lowest error at every seed budget")
	return []Table{t}
}

func runFig5c(cfg Config) []Table {
	d, tgs := twitterPipeline(cfg)
	t := Table{
		ID:      "fig5c",
		Title:   "Opinion spread vs seeds on the Twitter background graph",
		Columns: []string{"k", "OI seeds", "OC seeds", "IC seeds"},
	}
	// Annotate the background graph with history-estimated opinions: use
	// the per-user average of de-biased past observations (neutral when
	// unseen) and the latent interaction/propagation parameters already on
	// the graph.
	g := d.Background
	est := make([]float64, g.NumNodes())
	counts := make([]int, g.NumNodes())
	for i := range tgs {
		tg := &tgs[i]
		for li, bu := range tg.BackNodes {
			o := tg.Opinions[li]
			if !tg.IsSeed(graph.NodeID(li)) {
				o = clampF(2*o, -1, 1)
			}
			est[bu] += o
			counts[bu]++
		}
	}
	for v := range est {
		if counts[v] > 0 {
			est[v] /= float64(counts[v])
		}
	}
	g.SetOpinions(est)
	ks := cfg.kSweep(100)
	kMax := ks[len(ks)-1]
	oiRes := selectK(osimSelector(g, 3, 1, cfg), kMax)
	ocSel, _ := ocSelector(g, 3, cfg)
	ocRes := selectK(ocSel, kMax)
	icRes := selectK(easyimSelector(g, 3, 0, cfg), kMax)
	for _, k := range ks {
		t.AddRow(fi(k),
			f2(evalOpinion(g, prefix(oiRes, k), 1, cfg)),
			f2(evalOpinion(g, prefix(ocRes, k), 1, cfg)),
			f2(evalOpinion(g, prefix(icRes, k), 1, cfg)))
	}
	t.AddNote("paper shape: OI-selected seeds achieve the highest opinion spread")
	return []Table{t}
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
