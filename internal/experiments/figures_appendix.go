package experiments

import (
	"fmt"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/greedy"
	"github.com/holisticim/holisticim/internal/im"
	"github.com/holisticim/holisticim/internal/opinion"
	"github.com/holisticim/holisticim/internal/ris"
)

func init() {
	register(Experiment{ID: "fig7a", Title: "λ=1 vs λ=0 (DBLP, YouTube)", PaperRef: "Figure 7(a)", Run: runFig7a})
	register(Experiment{ID: "fig7b", Title: "OSIM l-sweep vs GREEDY under OC (HepPh)", PaperRef: "Figure 7(b)", Run: runFig7bf})
	register(Experiment{ID: "fig7c", Title: "OSIM l-sweep (DBLP & YouTube, OI)", PaperRef: "Figure 7(c)", Run: runFig7cg})
	register(Experiment{ID: "fig7d", Title: "Spread: EaSyIM vs SIMPATH/TIM+/CELF++ (NetHEPT, LT)", PaperRef: "Figure 7(d)", Run: runFig7d})
	register(Experiment{ID: "fig7e", Title: "Spread: EaSyIM vs IRIE (YouTube, WC)", PaperRef: "Figure 7(e)", Run: runFig7e})
	register(Experiment{ID: "fig7f", Title: "OSIM time under OC (HepPh)", PaperRef: "Figure 7(f)", Run: runFig7bf})
	register(Experiment{ID: "fig7g", Title: "OSIM time (DBLP & YouTube, OI)", PaperRef: "Figure 7(g)", Run: runFig7cg})
	register(Experiment{ID: "fig7h", Title: "Time: EaSyIM vs IRIE (medium datasets, WC)", PaperRef: "Figure 7(h)", Run: runFig7h})
	register(Experiment{ID: "fig7i", Title: "Time: EaSyIM vs SIMPATH (medium datasets, LT)", PaperRef: "Figure 7(i)", Run: runFig7i})
	register(Experiment{ID: "fig7j", Title: "EaSyIM memory on large datasets", PaperRef: "Figure 7(j)", Run: runFig7j})
}

func runFig7a(cfg Config) []Table {
	t := Table{
		ID:      "fig7a",
		Title:   "Effective opinion spread: λ=1 vs λ=0 (DBLP, YouTube)",
		Columns: []string{"dataset", "k", "λ=1 seeds", "λ=0 seeds"},
	}
	for _, ds := range []string{"dblp", "youtube"} {
		g := LoadDataset(ds, cfg)
		prepareOpinion(g, opinion.Uniform, cfg.Seed)
		ks := cfg.kSweep(200)
		kMax := ks[len(ks)-1]
		l1 := selectK(osimSelector(g, 3, 1, cfg), kMax)
		l0 := selectK(osimSelector(g, 3, 0, cfg), kMax)
		for _, k := range ks {
			t.AddRow(ds, fi(k),
				f2(evalOpinion(g, prefix(l1, k), 1, cfg)),
				f2(evalOpinion(g, prefix(l0, k), 1, cfg)))
		}
	}
	t.AddNote("paper shape: λ=1 dominates λ=0 on the larger datasets too")
	return []Table{t}
}

// runFig7bf produces both the quality (7b) and timing (7f) views of the
// OSIM-under-OC experiment on HepPh.
func runFig7bf(cfg Config) []Table {
	ds := "hepph"
	if cfg.Quick {
		ds = "nethept-mini"
	}
	g := LoadDataset(ds, cfg)
	prepareOpinion(g, opinion.Normal, cfg.Seed)
	ocView := g.Clone()
	ocView.SetUniformPhi(1)
	ocModel := diffusion.NewOC(ocView)

	quality := Table{
		ID:      "fig7b",
		Title:   "Opinion spread under OC: OSIM l-sweep vs GREEDY (HepPh)",
		Columns: []string{"k", "GREEDY", "OSIM l=1", "OSIM l=2", "OSIM l=3", "OSIM l=5"},
	}
	timing := Table{
		ID:      "fig7f",
		Title:   "Running time (s) under OC: OSIM l-sweep vs GREEDY (HepPh)",
		Columns: []string{"k", "GREEDY", "OSIM l=1", "OSIM l=2", "OSIM l=3", "OSIM l=5"},
	}
	ks := cfg.kSweep(200)
	kMax := ks[len(ks)-1]
	greedyMax := kMax
	if cfg.Quick && greedyMax > 10 {
		greedyMax = 10
	}
	obj := &greedy.MCObjective{Model: ocModel, Kind: greedy.KindOpinionSpread, Runs: greedyRuns(cfg), Seed: cfg.Seed + 89}
	mg := selectK(greedy.NewGreedy(obj), greedyMax)
	ls := []int{1, 2, 3, 5}
	osims := make([]im.Result, len(ls))
	for i, l := range ls {
		sel, _ := ocSelector(g, l, cfg)
		osims[i] = selectK(sel, kMax)
	}
	evalOC := func(seeds []int32) float64 {
		if len(seeds) == 0 {
			return 0
		}
		est := diffusion.MonteCarlo(ocModel, seeds, diffusion.MCOptions{Runs: cfg.runs(), Seed: cfg.Seed + 97, Workers: cfg.Workers})
		return est.OpinionSpread
	}
	for _, k := range ks {
		qRow := []string{fi(k)}
		tRow := []string{fi(k)}
		if k <= greedyMax {
			qRow = append(qRow, f2(evalOC(prefix(mg, k))))
			tRow = append(tRow, secs(mg.PerSeed[minInt(k, len(mg.PerSeed))-1].Seconds()))
		} else {
			qRow = append(qRow, "NA")
			tRow = append(tRow, "NA")
		}
		for i := range ls {
			qRow = append(qRow, f2(evalOC(prefix(osims[i], k))))
			tRow = append(tRow, secs(osims[i].PerSeed[minInt(k, len(osims[i].PerSeed))-1].Seconds()))
		}
		quality.Rows = append(quality.Rows, qRow)
		timing.Rows = append(timing.Rows, tRow)
	}
	quality.AddNote("paper shape: OSIM within a few %% of GREEDY under OC as well")
	timing.AddNote("paper shape: OSIM ≥10³x faster than GREEDY")
	return []Table{quality, timing}
}

// runFig7cg produces the OSIM l-sweep quality (7c) and timing (7g) on the
// larger datasets with uniform random opinions.
func runFig7cg(cfg Config) []Table {
	quality := Table{
		ID:      "fig7c",
		Title:   "Opinion spread: OSIM l-sweep (DBLP, YouTube; OI, o~U(−1,1))",
		Columns: []string{"dataset", "k", "l=1", "l=2", "l=3", "l=5"},
	}
	timing := Table{
		ID:      "fig7g",
		Title:   "Running time (s): OSIM l-sweep (DBLP, YouTube; OI)",
		Columns: []string{"dataset", "k", "l=1", "l=2", "l=3", "l=5"},
	}
	ls := []int{1, 2, 3, 5}
	for _, ds := range []string{"dblp", "youtube"} {
		g := LoadDataset(ds, cfg)
		prepareOpinion(g, opinion.Uniform, cfg.Seed)
		ks := cfg.kSweep(200)
		kMax := ks[len(ks)-1]
		results := make([]im.Result, len(ls))
		for i, l := range ls {
			results[i] = selectK(osimSelector(g, l, 1, cfg), kMax)
		}
		for _, k := range ks {
			qRow := []string{ds, fi(k)}
			tRow := []string{ds, fi(k)}
			for i := range ls {
				qRow = append(qRow, f2(evalOpinion(g, prefix(results[i], k), 1, cfg)))
				tRow = append(tRow, secs(results[i].PerSeed[minInt(k, len(results[i].PerSeed))-1].Seconds()))
			}
			quality.Rows = append(quality.Rows, qRow)
			timing.Rows = append(timing.Rows, tRow)
		}
	}
	quality.AddNote("paper: Modified-GREEDY did not complete within a month on these — omitted")
	return []Table{quality, timing}
}

func runFig7d(cfg Config) []Table {
	t := Table{
		ID:      "fig7d",
		Title:   "Spread vs seeds under LT: EaSyIM, SIMPATH, TIM+, CELF++ (NetHEPT)",
		Columns: []string{"k", "EaSyIM l=3", "SIMPATH", "TIM+", "CELF++"},
	}
	ds := "nethept"
	if cfg.Quick {
		ds = "nethept-mini"
	}
	g := LoadDataset(ds, cfg)
	m, w, kind := modelFor(g, "LT")
	ks := cfg.kSweep(100)
	kMax := ks[len(ks)-1]
	easy := selectK(easyimSelector(g, 3, w, cfg), kMax)
	simpath := selectK(newSIMPATH(g), kMax)
	tim := selectK(ris.NewTIMPlus(g, kind, timOptions(cfg, 0.1)), kMax)
	kCelf := kMax
	if cfg.Quick && kCelf > 5 {
		kCelf = 5
	}
	celf := selectK(greedy.NewCELFPP(greedy.NewSpreadObjective(m, greedyRuns(cfg), cfg.Seed+101)), kCelf)
	for _, k := range ks {
		celfCell := "NA"
		if k <= len(celf.Seeds) {
			celfCell = f1(evalSpread(m, prefix(celf, k), cfg))
		}
		t.AddRow(fi(k),
			f1(evalSpread(m, prefix(easy, k), cfg)),
			f1(evalSpread(m, prefix(simpath, k), cfg)),
			f1(evalSpread(m, prefix(tim, k), cfg)),
			celfCell)
	}
	t.AddNote("paper shape: all four within a few %% under LT")
	return []Table{t}
}

func runFig7e(cfg Config) []Table {
	t := Table{
		ID:      "fig7e",
		Title:   "Spread vs seeds under WC: EaSyIM vs IRIE (YouTube)",
		Columns: []string{"k", "EaSyIM l=3", "IRIE"},
	}
	g := LoadDataset("youtube", cfg)
	m, w, _ := modelFor(g, "WC")
	ks := cfg.kSweep(100)
	kMax := ks[len(ks)-1]
	easy := selectK(easyimSelector(g, 3, w, cfg), kMax)
	irie := selectK(newIRIE(g), kMax)
	for _, k := range ks {
		t.AddRow(fi(k),
			f1(evalSpread(m, prefix(easy, k), cfg)),
			f1(evalSpread(m, prefix(irie, k), cfg)))
	}
	t.AddNote("paper shape: comparable quality")
	return []Table{t}
}

func runFig7h(cfg Config) []Table {
	t := Table{
		ID:      "fig7h",
		Title:   "Running time (s) under WC: EaSyIM vs IRIE (medium datasets)",
		Columns: []string{"dataset", "k", "EaSyIM l=3", "IRIE"},
	}
	k := 100
	if cfg.Quick {
		k = 10
	}
	for _, ds := range []string{"nethept", "hepph", "dblp", "youtube"} {
		g := LoadDataset(ds, cfg)
		_, w, _ := modelFor(g, "WC")
		easy := selectK(easyimSelector(g, 3, w, cfg), k)
		irie := selectK(newIRIE(g), k)
		t.AddRow(ds, fi(k), secs(easy.Took.Seconds()), secs(irie.Took.Seconds()))
	}
	t.AddNote("paper shape: EaSyIM 2-6x faster than IRIE")
	return []Table{t}
}

func runFig7i(cfg Config) []Table {
	t := Table{
		ID:      "fig7i",
		Title:   "Running time (s) under LT: EaSyIM vs SIMPATH (medium datasets)",
		Columns: []string{"dataset", "k", "EaSyIM l=3", "SIMPATH"},
	}
	k := 100
	if cfg.Quick {
		k = 5
	}
	datasets := []string{"nethept", "hepph", "dblp"}
	if cfg.Quick {
		datasets = []string{"nethept-mini", "nethept"}
	}
	for _, ds := range datasets {
		g := LoadDataset(ds, cfg)
		_, w, _ := modelFor(g, "LT")
		easy := selectK(easyimSelector(g, 3, w, cfg), k)
		simpath := selectK(newSIMPATH(g), k)
		t.AddRow(ds, fi(k), secs(easy.Took.Seconds()), secs(simpath.Took.Seconds()))
	}
	t.AddNote("paper shape: SIMPATH competitive on small graphs, blows up on larger ones")
	return []Table{t}
}

func runFig7j(cfg Config) []Table {
	t := Table{
		ID:      "fig7j",
		Title:   "EaSyIM memory (MB) on the large datasets, k=100",
		Columns: []string{"dataset", "graph MB", "execution MB"},
	}
	k := 100
	if cfg.Quick {
		k = 5
	}
	for _, ds := range []string{"soclive", "orkut", "twitter", "friendster"} {
		g := LoadDataset(ds, cfg)
		_, w, _ := modelFor(g, "WC")
		mem := MeasureMemory(func() { selectK(easyimSelector(g, 1, w, cfg), k) })
		t.AddRow(fmt.Sprintf("%s", Datasets[ds].Name), f1(MB(g.MemoryFootprint())), f1(MB(mem.PeakExtraBytes)))
	}
	t.AddNote("paper shape: execution memory is a small constant over graph loading — billion-edge feasible")
	return []Table{t}
}
