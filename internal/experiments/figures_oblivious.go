package experiments

import (
	"fmt"

	"github.com/holisticim/holisticim/internal/core"
	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/greedy"
	"github.com/holisticim/holisticim/internal/im"
	"github.com/holisticim/holisticim/internal/ris"
)

func init() {
	register(Experiment{ID: "fig6a", Title: "EaSyIM spread vs l (NetHEPT, LT)", PaperRef: "Figure 6(a)", Run: func(cfg Config) []Table {
		return []Table{runLSweep(cfg, "nethept", "LT")}
	}})
	register(Experiment{ID: "fig6b", Title: "EaSyIM spread vs l (DBLP, IC)", PaperRef: "Figure 6(b)", Run: func(cfg Config) []Table {
		return []Table{runLSweep(cfg, "dblp", "IC")}
	}})
	register(Experiment{ID: "fig6c", Title: "EaSyIM spread vs l (YouTube, WC)", PaperRef: "Figure 6(c)", Run: func(cfg Config) []Table {
		return []Table{runLSweep(cfg, "youtube", "WC")}
	}})
	register(Experiment{ID: "fig6d", Title: "Spread: EaSyIM vs TIM+ vs CELF++ (HepPh, IC)", PaperRef: "Figure 6(d)", Run: runFig6d})
	register(Experiment{ID: "fig6e", Title: "Spread: EaSyIM vs TIM+ ε-sweep (DBLP, IC)", PaperRef: "Figure 6(e)", Run: runFig6e})
	register(Experiment{ID: "fig6f", Title: "Time: EaSyIM vs CELF++/TIM+ (NetHEPT, LT)", PaperRef: "Figure 6(f)", Run: func(cfg Config) []Table {
		return []Table{runTimeComparison(cfg, "fig6f", "nethept", "LT")}
	}})
	register(Experiment{ID: "fig6g", Title: "Time: EaSyIM l-sweep vs TIM+ (DBLP, IC)", PaperRef: "Figure 6(g)", Run: func(cfg Config) []Table {
		return []Table{runTimeComparison(cfg, "fig6g", "dblp", "IC")}
	}})
	register(Experiment{ID: "fig6h", Title: "Time: EaSyIM l-sweep (YouTube, WC)", PaperRef: "Figure 6(h)", Run: func(cfg Config) []Table {
		return []Table{runTimeComparison(cfg, "fig6h", "youtube", "WC")}
	}})
	register(Experiment{ID: "fig6i", Title: "Memory vs seeds: EaSyIM/CELF++/TIM+ (NetHEPT, DBLP)", PaperRef: "Figure 6(i)", Run: runFig6i})
	register(Experiment{ID: "fig6j", Title: "Execution memory over graph loading (medium datasets)", PaperRef: "Figure 6(j)", Run: runFig6j})
	register(Experiment{ID: "tab3", Title: "EaSyIM(l=1) vs TIM+ (k=50, ε=0.1)", PaperRef: "Table 3", Run: runTable3})
	register(Experiment{ID: "tab4", Title: "EaSyIM(l=1) vs CELF++ (k=100)", PaperRef: "Table 4", Run: runTable4})
}

// modelFor prepares the graph's parameter layer and returns the matching
// simulation model and scorer weight mode.
func modelFor(g *graph.Graph, name string) (diffusion.Model, core.EdgeWeight, ris.ModelKind) {
	switch name {
	case "IC":
		prepareIC(g)
		return diffusion.NewIC(g), core.WeightProb, ris.ModelIC
	case "WC":
		prepareWC(g)
		return diffusion.NewIC(g), core.WeightProb, ris.ModelIC
	case "LT":
		g.SetDefaultLTWeights()
		// LT score assignment also needs probabilities for the probe's
		// blocked-model; the LT model reads weights, so p is unused.
		return diffusion.NewLT(g), core.WeightLT, ris.ModelLT
	default:
		panic("experiments: unknown model " + name)
	}
}

func runLSweep(cfg Config, ds, model string) Table {
	t := Table{
		ID:      "fig6-lsweep-" + ds,
		Title:   fmt.Sprintf("EaSyIM spread vs l on %s (%s)", ds, model),
		Columns: []string{"k", "l=1", "l=2", "l=3", "l=5", "l=7", "l=10"},
	}
	g := LoadDataset(ds, cfg)
	m, w, _ := modelFor(g, model)
	ls := []int{1, 2, 3, 5, 7, 10}
	ks := cfg.kSweep(100)
	kMax := ks[len(ks)-1]
	results := make([]im.Result, len(ls))
	for i, l := range ls {
		results[i] = selectK(easyimSelector(g, l, w, cfg), kMax)
	}
	for _, k := range ks {
		row := []string{fi(k)}
		for i := range ls {
			row = append(row, f1(evalSpread(m, prefix(results[i], k), cfg)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddNote("paper shape: spread improves with l and saturates; l∈{3,5} best trade-off")
	return t
}

func runFig6d(cfg Config) []Table {
	t := Table{
		ID:      "fig6d",
		Title:   "Spread vs seeds: EaSyIM l=3, TIM+ ε=0.1, CELF++ (HepPh, IC)",
		Columns: []string{"k", "EaSyIM l=3", "TIM+", "CELF++"},
	}
	ds := "hepph"
	if cfg.Quick {
		ds = "nethept-mini" // CELF++ needs a greedy-feasible graph
	}
	g := LoadDataset(ds, cfg)
	m, w, kind := modelFor(g, "IC")
	ks := cfg.kSweep(100)
	kMax := ks[len(ks)-1]
	easy := selectK(easyimSelector(g, 3, w, cfg), kMax)
	tim := selectK(ris.NewTIMPlus(g, kind, timOptions(cfg, 0.1)), kMax)
	celf := selectK(greedy.NewCELFPP(greedy.NewSpreadObjective(m, greedyRuns(cfg), cfg.Seed+67)), kMax)
	for _, k := range ks {
		t.AddRow(fi(k),
			f1(evalSpread(m, prefix(easy, k), cfg)),
			f1(evalSpread(m, prefix(tim, k), cfg)),
			f1(evalSpread(m, prefix(celf, k), cfg)))
	}
	t.AddNote("paper shape: all three within a few %% of each other")
	return []Table{t}
}

func runFig6e(cfg Config) []Table {
	t := Table{
		ID:      "fig6e",
		Title:   "Spread vs seeds: EaSyIM l=3 vs TIM+ ε∈{0.1,0.15,0.2} (DBLP, IC)",
		Columns: []string{"k", "EaSyIM l=3", "TIM+ ε=0.1", "TIM+ ε=0.15", "TIM+ ε=0.2"},
	}
	g := LoadDataset("dblp", cfg)
	m, w, kind := modelFor(g, "IC")
	ks := cfg.kSweep(100)
	kMax := ks[len(ks)-1]
	easy := selectK(easyimSelector(g, 3, w, cfg), kMax)
	tims := make([]im.Result, 3)
	for i, eps := range []float64{0.1, 0.15, 0.2} {
		tims[i] = selectK(ris.NewTIMPlus(g, kind, timOptions(cfg, eps)), kMax)
	}
	for _, k := range ks {
		row := []string{fi(k), f1(evalSpread(m, prefix(easy, k), cfg))}
		for i := range tims {
			row = append(row, f1(evalSpread(m, prefix(tims[i], k), cfg)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddNote("paper: TIM+ ε=0.1 crashed on DBLP beyond k=10 (here: θ capped, see metrics)")
	return []Table{t}
}

func runTimeComparison(cfg Config, id, ds, model string) Table {
	t := Table{
		ID:      id,
		Title:   fmt.Sprintf("Running time (s) vs seeds on %s (%s)", ds, model),
		Columns: []string{"k", "EaSyIM l=1", "EaSyIM l=3", "EaSyIM l=5", "TIM+", "CELF++"},
	}
	g := LoadDataset(ds, cfg)
	m, w, kind := modelFor(g, model)
	ks := cfg.kSweep(100)
	kMax := ks[len(ks)-1]
	var easies []im.Result
	for _, l := range []int{1, 3, 5} {
		easies = append(easies, selectK(easyimSelector(g, l, w, cfg), kMax))
	}
	tim := selectK(ris.NewTIMPlus(g, kind, timOptions(cfg, 0.1)), kMax)
	// CELF++ only on the small dataset / small k — elsewhere the paper
	// reports it infeasible ("did not complete even after 7 days").
	celfFeasible := ds == "nethept" || ds == "nethept-mini"
	var celf im.Result
	if celfFeasible {
		kCelf := kMax
		if cfg.Quick && kCelf > 5 {
			kCelf = 5
		}
		celf = selectK(greedy.NewCELFPP(greedy.NewSpreadObjective(m, greedyRuns(cfg), cfg.Seed+71)), kCelf)
	}
	for _, k := range ks {
		row := []string{fi(k)}
		for i := range easies {
			row = append(row, secs(easies[i].PerSeed[minInt(k, len(easies[i].PerSeed))-1].Seconds()))
		}
		row = append(row, secs(tim.Took.Seconds())) // TIM+ is not incremental
		if celfFeasible && k <= len(celf.PerSeed) {
			row = append(row, secs(celf.PerSeed[k-1].Seconds()))
		} else {
			row = append(row, "NA")
		}
		t.Rows = append(t.Rows, row)
	}
	t.AddNote("paper shape: EaSyIM time linear in l and k; CELF++ orders of magnitude slower")
	return t
}

func runFig6i(cfg Config) []Table {
	t := Table{
		ID:      "fig6i",
		Title:   "Memory (MB) vs seeds: EaSyIM, CELF++, TIM+ (IC)",
		Columns: []string{"dataset", "k", "EaSyIM", "CELF++", "TIM+"},
	}
	ks := cfg.kSweep(100)
	if cfg.Quick {
		ks = []int{5, 20}
	}
	for _, ds := range []string{"nethept", "dblp"} {
		g := LoadDataset(ds, cfg)
		m, w, kind := modelFor(g, "IC")
		for _, k := range ks {
			easyMem := MeasureMemory(func() { selectK(easyimSelector(g, 3, w, cfg), k) })
			kCelf := minInt(k, 2)
			celfRuns := greedyRuns(cfg) / 4
			if cfg.Quick {
				kCelf, celfRuns = 1, 10
			}
			var celfMem MemUsage
			if ds == "nethept" {
				celfMem = MeasureMemory(func() {
					selectK(greedy.NewCELFPP(greedy.NewSpreadObjective(m, celfRuns, cfg.Seed+73)), kCelf)
				})
			}
			timMem := MeasureMemory(func() { selectK(ris.NewTIMPlus(g, kind, timOptions(cfg, 0.1)), k) })
			celfCell := "NA"
			if ds == "nethept" {
				celfCell = f1(MB(celfMem.PeakExtraBytes))
			}
			t.AddRow(ds, fi(k), f1(MB(easyMem.PeakExtraBytes)), celfCell, f1(MB(timMem.PeakExtraBytes)))
		}
	}
	t.AddNote("paper shape: EaSyIM smallest footprint; TIM+ grows fastest (θ RR sets)")
	return []Table{t}
}

func runFig6j(cfg Config) []Table {
	t := Table{
		ID:      "fig6j",
		Title:   "Execution memory (MB) over graph loading: EaSyIM/IRIE/CELF++/SIMPATH",
		Columns: []string{"dataset", "graph MB", "EaSyIM", "IRIE", "CELF++", "SIMPATH"},
	}
	k := 100
	if cfg.Quick {
		k = 5
	}
	for _, ds := range []string{"nethept", "hepph", "dblp", "youtube"} {
		g := LoadDataset(ds, cfg)
		m, w, _ := modelFor(g, "IC")
		graphMB := MB(g.MemoryFootprint())
		easyMem := MeasureMemory(func() { selectK(easyimSelector(g, 3, w, cfg), k) })
		irieMem := MeasureMemory(func() { selectK(newIRIE(g), k) })
		celfCell, simpathCell := "NA", "NA"
		if ds == "nethept" {
			kC, celfRuns := minInt(k, 2), greedyRuns(cfg)/4
			if cfg.Quick {
				kC, celfRuns = 1, 10
			}
			celfMem := MeasureMemory(func() {
				selectK(greedy.NewCELFPP(greedy.NewSpreadObjective(m, celfRuns, cfg.Seed+79)), kC)
			})
			celfCell = f1(MB(celfMem.PeakExtraBytes))
		}
		if ds == "nethept" || ds == "hepph" {
			gl := g.Clone()
			gl.SetDefaultLTWeights()
			kS := minInt(k, 5)
			if cfg.Quick {
				kS = 2
			}
			simpathMem := MeasureMemory(func() { selectK(newSIMPATH(gl), kS) })
			simpathCell = f1(MB(simpathMem.PeakExtraBytes))
		}
		t.AddRow(ds, f1(graphMB), f1(MB(easyMem.PeakExtraBytes)), f1(MB(irieMem.PeakExtraBytes)), celfCell, simpathCell)
	}
	t.AddNote("paper shape: EaSyIM lowest overhead, SIMPATH highest")
	return []Table{t}
}

func runTable3(cfg Config) []Table {
	t := Table{
		ID:      "tab3",
		Title:   "EaSyIM(l=1) vs TIM+ — running time (s) and memory (MB), k=50, ε=0.1",
		Columns: []string{"dataset", "TIM+ time", "EaSyIM time", "TIM+ MB", "EaSyIM MB"},
	}
	k := 50
	if cfg.Quick {
		k = 5
	}
	// Abort TIM+ when its projected RR-set storage exceeds the budget —
	// the paper's machine fit DBLP (35 GB) but not YouTube/socLive.
	budget := int64(4) << 30
	if cfg.Quick {
		budget = 840 << 20
	}
	for _, ds := range []string{"dblp", "youtube", "soclive"} {
		g := LoadDataset(ds, cfg)
		m, w, kind := modelFor(g, "IC")
		_ = m
		opts := timOptions(cfg, 0.1)
		opts.ThetaCap = 0
		opts.MemoryBudget = budget
		var timRes im.Result
		timMem := MeasureMemory(func() { timRes = selectK(ris.NewTIMPlus(g, kind, opts), k) })
		var easyRes im.Result
		easyMem := MeasureMemory(func() { easyRes = selectK(easyimSelector(g, 1, w, cfg), k) })
		timTime, timMB := "NA (OOM)", "NA (OOM)"
		if timRes.Metrics["aborted_oom"] == 0 && len(timRes.Seeds) > 0 {
			timTime = secs(timRes.Took.Seconds())
			timMB = f1(MB(timMem.PeakExtraBytes))
		}
		t.AddRow(ds, timTime, secs(easyRes.Took.Seconds()), timMB, f1(MB(easyMem.PeakExtraBytes)))
		if oom := timRes.Metrics["aborted_oom"]; oom > 0 {
			t.AddNote("%s: TIM+ aborted — θ=%.0f RR sets would need ≈%.1f MB (budget %.0f MB)",
				ds, timRes.Metrics["theta"], MB(int64(oom)), MB(budget))
		}
	}
	t.AddNote("paper: TIM+ NA on YouTube and socLive; EaSyIM's memory ~500x smaller where both run")
	return []Table{t}
}

func runTable4(cfg Config) []Table {
	t := Table{
		ID:      "tab4",
		Title:   "EaSyIM(l=1) vs CELF++ — running time (s) and memory (MB), k=100",
		Columns: []string{"dataset", "CELF++ time", "EaSyIM time", "gain", "CELF++ MB", "EaSyIM MB"},
	}
	k := 100
	if cfg.Quick {
		k = 5
	}
	datasets := []string{"nethept", "hepph", "dblp"}
	if cfg.Quick {
		datasets = []string{"nethept-mini", "nethept"}
	}
	for _, ds := range datasets {
		g := LoadDataset(ds, cfg)
		m, w, _ := modelFor(g, "IC")
		celfFeasible := ds != "dblp" // paper: CELF++ never finished on DBLP
		var celfRes im.Result
		var celfMem MemUsage
		if celfFeasible {
			celfMem = MeasureMemory(func() {
				celfRes = selectK(greedy.NewCELFPP(greedy.NewSpreadObjective(m, greedyRuns(cfg), cfg.Seed+83)), k)
			})
		}
		var easyRes im.Result
		easyMem := MeasureMemory(func() { easyRes = selectK(easyimSelector(g, 1, w, cfg), k) })
		if celfFeasible {
			gain := celfRes.Took.Seconds() / maxF(easyRes.Took.Seconds(), 1e-9)
			t.AddRow(ds, secs(celfRes.Took.Seconds()), secs(easyRes.Took.Seconds()),
				fmt.Sprintf("%.1fx", gain), f1(MB(celfMem.PeakExtraBytes)), f1(MB(easyMem.PeakExtraBytes)))
		} else {
			t.AddRow(ds, "NA (>7 days in paper)", secs(easyRes.Took.Seconds()), "∞",
				"NA", f1(MB(easyMem.PeakExtraBytes)))
		}
	}
	t.AddNote("paper shape: EaSyIM ≈40-45x faster than CELF++ with ~7x less memory")
	return []Table{t}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
