package experiments

import (
	"github.com/holisticim/holisticim/internal/core"
	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/opinion"
)

func init() {
	register(Experiment{ID: "ablation-policy", Title: "ScoreGREEDY V(a) activation-policy ablation", PaperRef: "DESIGN.md §5", Run: runAblationPolicy})
	register(Experiment{ID: "ablation-oblivious-seeds", Title: "Cost of opinion-oblivious seeds under MEO", PaperRef: "Sec. 1 motivation", Run: runAblationObliviousSeeds})
}

// runAblationPolicy compares the three V(a) marking policies of
// Algorithm 1 line 11 on spread and selection time.
func runAblationPolicy(cfg Config) []Table {
	t := Table{
		ID:      "ablation-policy",
		Title:   "Activation-policy ablation (NetHEPT, IC, EaSyIM l=3)",
		Columns: []string{"policy", "k", "spread", "time (s)"},
	}
	g := LoadDataset("nethept", cfg)
	m, w, _ := modelFor(g, "IC")
	k := 50
	if cfg.Quick {
		k = 10
	}
	policies := []core.ActivationPolicy{core.PolicyMCMajority, core.PolicyReach, core.PolicySeedOnly}
	for _, pol := range policies {
		sel := core.NewScoreGreedy(core.NewEaSyIM(g, 3, w), core.ScoreGreedyOptions{
			Policy:     pol,
			ProbeModel: diffusion.NewIC(g),
			ProbeRuns:  probeRuns(cfg),
			Seed:       cfg.Seed + 103,
		})
		res := selectK(sel, k)
		t.AddRow(pol.String(), fi(k), f1(evalSpread(m, res.Seeds, cfg)), secs(res.Took.Seconds()))
	}
	t.AddNote("mc-majority trades probe time for better seed diversity; seed-only is fastest")
	return []Table{t}
}

// runAblationObliviousSeeds quantifies the motivation claim: seeds picked
// by opinion-oblivious EaSyIM can even produce negative effective opinion
// spread, while OSIM's stay positive, across λ.
func runAblationObliviousSeeds(cfg Config) []Table {
	t := Table{
		ID:      "ablation-oblivious-seeds",
		Title:   "Effective opinion spread of EaSyIM seeds vs OSIM seeds (NetHEPT, OI)",
		Columns: []string{"λ", "OSIM seeds", "EaSyIM seeds"},
	}
	g := LoadDataset("nethept", cfg)
	prepareOpinion(g, opinion.Polarized, cfg.Seed)
	k := 50
	if cfg.Quick {
		k = 10
	}
	osim := selectK(osimSelector(g, 3, 1, cfg), k)
	easy := selectK(easyimSelector(g, 3, core.WeightProb, cfg), k)
	for _, lambda := range []float64{0, 0.5, 1, 2} {
		t.AddRow(f1(lambda),
			f2(evalOpinion(g, osim.Seeds, lambda, cfg)),
			f2(evalOpinion(g, easy.Seeds, lambda, cfg)))
	}
	t.AddNote("the gap widens with λ: negative activations hurt oblivious seeds most")
	return []Table{t}
}
