package experiments

import (
	"context"

	"github.com/holisticim/holisticim/internal/core"
	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/heuristics"
	"github.com/holisticim/holisticim/internal/im"
	"github.com/holisticim/holisticim/internal/opinion"
	"github.com/holisticim/holisticim/internal/ris"
)

// selectK runs a selector to completion with no cancellation — the
// experiment harness always wants the full selection — panicking on the
// configuration errors the context-first Select surfaces (experiment
// configs are known-valid, so an error here is a programming bug).
func selectK(sel im.Selector, k int) im.Result {
	res, err := sel.Select(context.Background(), k)
	if err != nil {
		panic(err)
	}
	return res
}

// prepareIC installs the conventional IC parameterization (uniform
// p=0.1).
func prepareIC(g *graph.Graph) {
	g.SetUniformProb(0.1)
}

// prepareWC installs the weighted-cascade parameterization.
func prepareWC(g *graph.Graph) {
	g.SetWeightedCascadeProb()
}

// prepareOpinion annotates a graph for the opinion-aware experiments:
// IC-layer probabilities p=0.1, opinions from the given distribution and
// interactions ϕ ~ rand(0,1) — the Sec. 4.1.3 benchmark annotation.
func prepareOpinion(g *graph.Graph, dist opinion.Distribution, seed uint64) {
	prepareIC(g)
	opinion.AssignOpinions(g, dist, seed+1)
	opinion.AssignInteractions(g, seed+2)
	g.SetDefaultLTWeights()
}

// osimSelector builds ScoreGreedy(OSIM) probing with OI at the IC layer.
func osimSelector(g *graph.Graph, l int, lambda float64, cfg Config) *core.ScoreGreedy {
	return core.NewScoreGreedy(core.NewOSIM(g, l, core.WeightProb, lambda), core.ScoreGreedyOptions{
		Policy:     core.PolicyMCMajority,
		ProbeModel: diffusion.NewOI(g, diffusion.LayerIC),
		ProbeRuns:  probeRuns(cfg),
		Seed:       cfg.Seed + 11,
	})
}

// ocSelector approximates seed selection "using the OC model": OSIM
// scoring on a ϕ≡1 view of the graph (OC is the ϕ≡1 special case of OI)
// with LT weights, probed by the OC model.
func ocSelector(g *graph.Graph, l int, cfg Config) (*core.ScoreGreedy, *graph.Graph) {
	oc := g.Clone()
	oc.SetUniformPhi(1)
	return core.NewScoreGreedy(core.NewOSIM(oc, l, core.WeightLT, 1), core.ScoreGreedyOptions{
		Policy:     core.PolicyMCMajority,
		ProbeModel: diffusion.NewOC(oc),
		ProbeRuns:  probeRuns(cfg),
		Seed:       cfg.Seed + 13,
	}), oc
}

// easyimSelector builds ScoreGreedy(EaSyIM) with the given edge-weight
// mode, probed by the matching opinion-oblivious model.
func easyimSelector(g *graph.Graph, l int, w core.EdgeWeight, cfg Config) *core.ScoreGreedy {
	var probe diffusion.Model
	if w == core.WeightLT {
		probe = diffusion.NewLT(g)
	} else {
		probe = diffusion.NewIC(g)
	}
	return core.NewScoreGreedy(core.NewEaSyIM(g, l, w), core.ScoreGreedyOptions{
		Policy:     core.PolicyMCMajority,
		ProbeModel: probe,
		ProbeRuns:  probeRuns(cfg),
		Seed:       cfg.Seed + 17,
	})
}

func probeRuns(cfg Config) int {
	if cfg.Quick {
		return 8
	}
	return 20
}

// timCap returns the RR-set cap protecting quick runs from the θ
// blow-up; full runs get a generous cap.
func timCap(cfg Config) int {
	if cfg.Quick {
		return 25000
	}
	return 5_000_000
}

// timOptions bundles the paper's TIM+ parameters (ε defaults to 0.1).
func timOptions(cfg Config, eps float64) ris.TIMOptions {
	return ris.TIMOptions{Epsilon: eps, Ell: 1, Seed: cfg.Seed + 19, ThetaCap: timCap(cfg)}
}

// evalSpread estimates σ(S) under the model.
func evalSpread(m diffusion.Model, seeds []graph.NodeID, cfg Config) float64 {
	if len(seeds) == 0 {
		return 0
	}
	est := diffusion.MonteCarlo(m, seeds, diffusion.MCOptions{
		Runs: cfg.runs(), Seed: cfg.Seed + 23, Workers: cfg.Workers,
	})
	return est.Spread
}

// evalOpinion estimates the effective opinion spread σ_λ^o(S) under OI-IC.
func evalOpinion(g *graph.Graph, seeds []graph.NodeID, lambda float64, cfg Config) float64 {
	if len(seeds) == 0 {
		return 0
	}
	est := diffusion.MonteCarlo(diffusion.NewOI(g, diffusion.LayerIC), seeds, diffusion.MCOptions{
		Runs: cfg.runs(), Seed: cfg.Seed + 29, Workers: cfg.Workers,
	})
	return est.EffectiveOpinionSpread(lambda)
}

// prefix returns the first k seeds of a selection (selection order is the
// greedy order, so prefixes are the budget-k solutions).
func prefix(res im.Result, k int) []graph.NodeID {
	if k > len(res.Seeds) {
		k = len(res.Seeds)
	}
	return res.Seeds[:k]
}

// secs renders a duration metric in seconds.
func secs(d float64) string { return f3(d) }

// newIRIE constructs IRIE with the paper's parameters (α=0.7, θ=1/320).
func newIRIE(g *graph.Graph) *heuristics.IRIE {
	return heuristics.NewIRIE(g, 0.7, 1.0/320, 20)
}

// newSIMPATH constructs SIMPATH with the paper's parameters (η=1e-3,
// look-ahead 4).
func newSIMPATH(g *graph.Graph) *heuristics.SIMPATH {
	return heuristics.NewSIMPATH(g, 1e-3, 4)
}
