package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// testConfig is the ultra-quick configuration used to smoke every
// registered experiment within CI-friendly time.
func testConfig() Config {
	return Config{Quick: true, MCRuns: 60, Seed: 7}
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper must have a registered runner.
	want := []string{
		"fig2",
		"fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f", "fig5g", "fig5h",
		"fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f", "fig6g", "fig6h", "fig6i", "fig6j",
		"tab3", "tab4",
		"fig7a", "fig7b", "fig7c", "fig7d", "fig7e", "fig7f", "fig7g", "fig7h", "fig7i", "fig7j",
		"ablation-policy", "ablation-oblivious-seeds", "example2",
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Errorf("registry has %d entries, want >= %d", len(IDs()), len(want))
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not -short friendly")
	}
	cfg := testConfig()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tables := Registry[id].Run(cfg)
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("table %s is empty", tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Fatalf("table %s row width %d != %d columns", tab.ID, len(row), len(tab.Columns))
					}
				}
				if out := tab.Render(); !strings.Contains(out, tab.ID) {
					t.Fatalf("render missing id")
				}
				if csv := tab.CSV(); !strings.Contains(csv, tab.Columns[0]) {
					t.Fatalf("csv missing header")
				}
			}
		})
	}
}

// cell parses a numeric table cell; returns ok=false for NA-style cells.
func cell(tab Table, row, col int) (float64, bool) {
	s := tab.Rows[row][col]
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	return v, err == nil
}

func TestFig2OIBeatsIC(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := Registry["fig2"].Run(testConfig())
	tab := tables[0]
	// At the largest k of each dataset, OI seeds must beat IC seeds.
	checked := 0
	for r := range tab.Rows {
		last := r == len(tab.Rows)-1 || tab.Rows[r+1][0] != tab.Rows[r][0]
		if !last {
			continue
		}
		oi, ok1 := cell(tab, r, 2)
		ic, ok2 := cell(tab, r, 4)
		if !ok1 || !ok2 {
			continue
		}
		if oi < ic {
			t.Errorf("%s k=%s: OI %.2f < IC %.2f", tab.Rows[r][0], tab.Rows[r][1], oi, ic)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no rows checked")
	}
}

func TestTab4CELFSlowerThanEaSyIM(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := Registry["tab4"].Run(testConfig())
	tab := tables[0]
	found := false
	for r := range tab.Rows {
		celf, ok1 := cell(tab, r, 1)
		easy, ok2 := cell(tab, r, 2)
		if !ok1 || !ok2 {
			continue
		}
		found = true
		if celf <= easy {
			t.Errorf("%s: CELF++ %.3fs not slower than EaSyIM %.3fs", tab.Rows[r][0], celf, easy)
		}
	}
	if !found {
		t.Fatal("no comparable rows")
	}
}

func TestTab3TIMPlusMemoryDominatesOrNA(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := Registry["tab3"].Run(testConfig())
	tab := tables[0]
	for r := range tab.Rows {
		timMB, okT := cell(tab, r, 3)
		easyMB, okE := cell(tab, r, 4)
		if !okT {
			continue // NA (OOM) — the paper's outcome for the big datasets
		}
		if !okE {
			t.Fatalf("EaSyIM memory missing in row %d", r)
		}
		if timMB < easyMB {
			t.Errorf("%s: TIM+ %.1f MB below EaSyIM %.1f MB — memory shape inverted", tab.Rows[r][0], timMB, easyMB)
		}
	}
}

func TestFig5eLambdaOneWins(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	tables := Registry["fig5e"].Run(testConfig())
	tab := tables[0]
	wins, rows := 0, 0
	for r := range tab.Rows {
		l1, ok1 := cell(tab, r, 2)
		l0, ok2 := cell(tab, r, 3)
		if !ok1 || !ok2 {
			continue
		}
		rows++
		if l1 >= l0 {
			wins++
		}
	}
	if rows == 0 || wins*2 < rows {
		t.Errorf("λ=1 seeds won only %d/%d rows", wins, rows)
	}
}

func TestDatasetsRegistry(t *testing.T) {
	cfg := testConfig()
	for name := range Datasets {
		g := LoadDataset(name, cfg)
		if g.NumNodes() < 100 {
			t.Errorf("dataset %s too small: %d nodes", name, g.NumNodes())
		}
		if g.NumEdges() == 0 {
			t.Errorf("dataset %s has no edges", name)
		}
	}
	// Clones must be independent.
	a := LoadDataset("nethept", cfg)
	b := LoadDataset("nethept", cfg)
	a.SetUniformProb(0.9)
	if p, _ := b.EdgeProb(b.OutNeighbors(0)[0], 0); p == 0.9 {
		t.Error("dataset cache leaked parameter mutations")
	}
}

func TestLoadDatasetUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LoadDataset("nope", testConfig())
}

func TestTableRender(t *testing.T) {
	tab := Table{ID: "x", Title: "t", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("hello %d", 42)
	out := tab.Render()
	if !strings.Contains(out, "hello 42") || !strings.Contains(out, "bb") {
		t.Fatalf("render: %s", out)
	}
	if !strings.Contains(tab.CSV(), "a,bb") {
		t.Fatal("csv header")
	}
}

func TestMeasureMemoryDetectsAllocation(t *testing.T) {
	var sink []byte
	mem := MeasureMemory(func() {
		sink = make([]byte, 16<<20)
		for i := range sink {
			sink[i] = byte(i)
		}
	})
	if mem.PeakExtraBytes < 8<<20 {
		t.Fatalf("16MB allocation measured as %d bytes", mem.PeakExtraBytes)
	}
	_ = sink
}
