package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// MemUsage reports one measured run.
type MemUsage struct {
	// BaselineBytes is the live heap before the run (after GC).
	BaselineBytes int64
	// PeakExtraBytes is the maximum observed heap growth over the baseline
	// while the run executed — the "execution memory" of Figures 5h/6j.
	PeakExtraBytes int64
}

// MeasureMemory runs f while a sampler polls the heap, returning the peak
// extra heap the run needed. Go's GC makes this an approximation (the
// reference implementations measured RSS, also an approximation), but the
// orders-of-magnitude gaps the paper reports — EaSyIM's O(n) scores vs
// TIM+'s RR-set explosion — dominate sampling error comfortably.
func MeasureMemory(f func()) MemUsage {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseline := int64(ms.HeapAlloc)

	var peak atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		var m runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				runtime.ReadMemStats(&m)
				extra := int64(m.HeapAlloc) - baseline
				if extra > peak.Load() {
					peak.Store(extra)
				}
			}
		}
	}()
	f()
	// One final sample with everything f retained still alive.
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	if extra := int64(m.HeapAlloc) - baseline; extra > peak.Load() {
		peak.Store(extra)
	}
	close(stop)
	wg.Wait()
	p := peak.Load()
	if p < 0 {
		p = 0
	}
	return MemUsage{BaselineBytes: baseline, PeakExtraBytes: p}
}

// MB formats bytes as mebibytes with one decimal.
func MB(bytes int64) float64 { return float64(bytes) / (1 << 20) }
