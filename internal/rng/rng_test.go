package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := Split(7, 0)
	b := Split(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collided %d/100 times", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	f := func(seed, idx uint64) bool {
		a := Split(seed, idx)
		b := Split(seed, idx)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for i := 0; i < 7; i++ {
		if !seen[i] {
			t.Fatalf("Intn(7) never produced %d", i)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("exp(rate=2) mean %v too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	out := make([]int32, 50)
	r.Perm(out)
	seen := make(map[int32]bool)
	for _, v := range out {
		if v < 0 || int(v) >= len(out) {
			t.Fatalf("perm value out of range: %d", v)
		}
		if seen[v] {
			t.Fatalf("perm repeated value %d", v)
		}
		seen[v] = true
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(23)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	Shuffle(r, s)
	sum := 0
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle changed elements, sum=%d", sum)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(31)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency %v", frac)
	}
}

func TestReseedResets(t *testing.T) {
	r := New(77)
	first := make([]uint64, 8)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(77)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("reseed did not reset stream at %d", i)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}
