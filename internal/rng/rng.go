// Package rng provides a small, fast, splittable pseudo-random number
// generator used throughout the library.
//
// Reproducibility is a first-class requirement for the experiment harness:
// a Monte-Carlo estimate must be identical regardless of how many worker
// goroutines computed it. To that end every simulation run derives its own
// independent stream from (masterSeed, runIndex) via SplitMix64, and the
// per-stream generator is xoshiro256**, which is fast, allocation-free and
// passes BigCrush.
package rng

import "math"

// RNG is a single xoshiro256** stream. It is not safe for concurrent use;
// derive one per goroutine (or per simulation run) with New or Split.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the state and returns the next SplitMix64 output.
// It is used only for seeding, as recommended by the xoshiro authors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Two calls with the
// same seed yield identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// SplitSeed derives the seed of the index-th sub-stream of the given
// master seed. Reseed(SplitSeed(s,i)) and Split(s,i) yield identical
// streams; exposing the derivation lets hot loops reuse one generator.
func SplitSeed(seed, index uint64) uint64 {
	mix := seed
	_ = splitmix64(&mix)
	return mix ^ index*0xd1342543de82ef95
}

// Split derives an independent stream for the given index. It is the
// canonical way to obtain per-run generators: Split(i) and Split(j) are
// decorrelated for i != j because the (seed,index) pair is first diffused
// through SplitMix64.
func Split(seed uint64, index uint64) *RNG {
	r := &RNG{}
	r.Reseed(SplitSeed(seed, index))
	return r
}

// Reseed reinitializes the stream in place, avoiding an allocation when a
// scratch RNG is reused across simulation runs.
func (r *RNG) Reseed(seed uint64) {
	state := seed
	r.s0 = splitmix64(&state)
	r.s1 = splitmix64(&state)
	r.s2 = splitmix64(&state)
	r.s3 = splitmix64(&state)
	// xoshiro256** must not start from the all-zero state; SplitMix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform value in [0,1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int31n returns a uniform int32 in [0,n). It panics if n <= 0.
func (r *RNG) Int31n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int31n called with non-positive n")
	}
	return int32(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo,hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method. Good enough statistically for opinion generation and
// dependency-free.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with non-positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Perm fills out with a uniform random permutation of 0..len(out)-1.
func (r *RNG) Perm(out []int32) {
	for i := range out {
		out[i] = int32(i)
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// Shuffle performs an in-place Fisher–Yates shuffle of out.
func Shuffle[T any](r *RNG, out []T) {
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
