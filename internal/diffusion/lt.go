package diffusion

import (
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

// LT is the Linear Threshold model: every node v draws a threshold
// θ_v ~ U[0,1); v activates once the total weight of its active in-
// neighbors reaches θ_v. Weights come from the graph's LT weight layer
// (conventionally 1/|In(v)|, see Graph.SetDefaultLTWeights).
//
// Thresholds are sampled lazily the first time a node receives incoming
// weight in a run; this is distributionally identical to sampling all
// thresholds up front and touches only the diffusion's neighborhood.
type LT struct {
	g *graph.Graph
}

// NewLT returns an LT model over g.
func NewLT(g *graph.Graph) *LT { return &LT{g: g} }

// Name implements Model.
func (m *LT) Name() string { return "LT" }

// Graph implements Model.
func (m *LT) Graph() *graph.Graph { return m.g }

// Simulate implements Model.
func (m *LT) Simulate(seeds []graph.NodeID, r *rng.RNG, s *Scratch) Result {
	s.begin()
	res := Result{}
	res.Activated = s.seedSetup(m.g, seeds)
	round := int32(1)
	for len(s.frontier) > 0 {
		s.next = s.next[:0]
		for _, u := range s.frontier {
			nbrs := m.g.OutNeighbors(u)
			ws := m.g.OutWeights(u)
			for i, v := range nbrs {
				if s.isActive(v) || s.isBlocked(v) {
					continue
				}
				if s.thrStamp[v] != s.epoch {
					s.thrStamp[v] = s.epoch
					s.thr[v] = r.Float64()
					s.wsum[v] = 0
				}
				s.wsum[v] += ws[i]
				if s.wsum[v] >= s.thr[v] {
					s.activate(v, 0, round)
					s.next = append(s.next, v)
					res.Activated++
				}
			}
		}
		s.frontier, s.next = s.next, s.frontier
		round++
	}
	return res
}

var _ Model = (*LT)(nil)

// SampleLiveEdge draws one live-edge instance of the LT model: for every
// node v at most one incoming edge is selected, edge (u,v) with probability
// w(u,v) and none with probability 1−Σw. The result maps v to the out-array
// edge index of its live in-edge, or −1. Kempe et al. proved reachability
// over such instances is distributed exactly as LT activation; the
// equivalence test in this package exercises that claim.
func SampleLiveEdge(g *graph.Graph, r *rng.RNG, out []int64) []int64 {
	n := g.NumNodes()
	if out == nil {
		out = make([]int64, n)
	}
	for v := graph.NodeID(0); v < n; v++ {
		out[v] = -1
		idxs := g.InEdgeIndices(v)
		if len(idxs) == 0 {
			continue
		}
		x := r.Float64()
		acc := 0.0
		for _, e := range idxs {
			acc += g.WeightAt(e)
			if x < acc {
				out[v] = e
				break
			}
		}
	}
	return out
}

// LiveEdgeSpread computes |reachable(S)|−|S| over a live-edge instance
// (liveIn[v] = live in-edge index or −1) by forward traversal: v becomes
// active when the source of its live in-edge is active.
func LiveEdgeSpread(g *graph.Graph, liveIn []int64, seeds []graph.NodeID, s *Scratch) int {
	s.begin()
	placed := s.seedSetup(g, seeds)
	// Forward propagation: from each active u, activate out-neighbors whose
	// live in-edge is exactly the (u,v) edge.
	count := placed
	for head := 0; head < len(s.order); head++ {
		u := s.order[head]
		nbrs := g.OutNeighbors(u)
		base := g.OutEdgeBase(u)
		for i, v := range nbrs {
			if s.isActive(v) || s.isBlocked(v) {
				continue
			}
			if liveIn[v] == base+int64(i) {
				s.activate(v, 0, 0)
				count++
			}
		}
	}
	return count - placed
}
