package diffusion

import (
	"fmt"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

// Layer selects the first-layer activation dynamics of a two-layer
// opinion-aware model (Sec. 2.2: "The OI model can be easily tuned ... to
// work with both IC and the LT models").
type Layer int

const (
	// LayerIC uses Independent Cascade activation (edge probabilities p).
	LayerIC Layer = iota
	// LayerLT uses Linear Threshold activation (edge weights w, thresholds
	// θ_v ~ U[0,1)).
	LayerLT
)

func (l Layer) String() string {
	switch l {
	case LayerIC:
		return "IC"
	case LayerLT:
		return "LT"
	default:
		return fmt.Sprintf("Layer(%d)", int(l))
	}
}

// OI is the paper's Opinion-cum-Interaction model (Sec. 2.2). Activation
// follows the first layer; the second layer assigns each newly activated
// node a final opinion that mixes its personal opinion with the (possibly
// negated) final opinions of its activators:
//
//	IC layer: o'_v = (o_v + (−1)^α o'_u)/2, α=0 w.p. ϕ(u,v), where u is
//	          the node whose activation attempt succeeded;
//	LT layer: o'_v = (o_v + avg_{u∈In(v)(a)} (−1)^{α(u,v)} o'_u)/2 over the
//	          in-neighbors already active at previous steps.
//
// Once active, a node keeps its effective opinion for the rest of the run.
type OI struct {
	g     *graph.Graph
	layer Layer
}

// NewOI returns an OI model over g with the given first layer.
func NewOI(g *graph.Graph, layer Layer) *OI {
	if layer != LayerIC && layer != LayerLT {
		panic("diffusion: unknown OI layer")
	}
	return &OI{g: g, layer: layer}
}

// Name implements Model.
func (m *OI) Name() string { return "OI-" + m.layer.String() }

// Graph implements Model.
func (m *OI) Graph() *graph.Graph { return m.g }

// Layer returns the first-layer dynamics.
func (m *OI) Layer() Layer { return m.layer }

// Simulate implements Model.
func (m *OI) Simulate(seeds []graph.NodeID, r *rng.RNG, s *Scratch) Result {
	if m.layer == LayerIC {
		return m.simulateIC(seeds, r, s)
	}
	return m.simulateLT(seeds, r, s)
}

func (m *OI) simulateIC(seeds []graph.NodeID, r *rng.RNG, s *Scratch) Result {
	s.begin()
	res := Result{}
	res.Activated = s.seedSetup(m.g, seeds)
	round := int32(1)
	for len(s.frontier) > 0 {
		// Shuffle so that the winning activator among same-round competitors
		// is uniform; the activator determines the propagated opinion.
		rng.Shuffle(r, s.frontier)
		s.next = s.next[:0]
		for _, u := range s.frontier {
			nbrs := m.g.OutNeighbors(u)
			ps := m.g.OutProbs(u)
			phis := m.g.OutPhis(u)
			ou := s.opinion[u]
			for i, v := range nbrs {
				if s.isActive(v) || s.isBlocked(v) {
					continue
				}
				if r.Float64() < ps[i] {
					contrib := ou
					if r.Float64() >= phis[i] { // α = 1: v disagrees with u
						contrib = -ou
					}
					op := (m.g.Opinion(v) + contrib) / 2
					s.activate(v, op, round)
					s.next = append(s.next, v)
					res.Activated++
					accumulate(&res, op)
				}
			}
		}
		s.frontier, s.next = s.next, s.frontier
		round++
	}
	return res
}

func (m *OI) simulateLT(seeds []graph.NodeID, r *rng.RNG, s *Scratch) Result {
	s.begin()
	res := Result{}
	res.Activated = s.seedSetup(m.g, seeds)
	round := int32(1)
	for len(s.frontier) > 0 {
		s.next = s.next[:0]
		for _, u := range s.frontier {
			nbrs := m.g.OutNeighbors(u)
			ws := m.g.OutWeights(u)
			for i, v := range nbrs {
				if s.isActive(v) || s.isBlocked(v) {
					continue
				}
				if s.thrStamp[v] != s.epoch {
					s.thrStamp[v] = s.epoch
					s.thr[v] = r.Float64()
					s.wsum[v] = 0
				}
				s.wsum[v] += ws[i]
				if s.wsum[v] >= s.thr[v] {
					op := m.ltOpinion(v, round, r, s)
					s.activate(v, op, round)
					s.next = append(s.next, v)
					res.Activated++
					accumulate(&res, op)
				}
			}
		}
		s.frontier, s.next = s.next, s.frontier
		round++
	}
	return res
}

// ltOpinion computes the OI-LT final opinion of v activating at the given
// round: the averaged signed contribution of in-neighbors active at
// previous rounds (In(v)(a)), mixed with v's own opinion.
func (m *OI) ltOpinion(v graph.NodeID, round int32, r *rng.RNG, s *Scratch) float64 {
	froms := m.g.InNeighbors(v)
	idxs := m.g.InEdgeIndices(v)
	sum := 0.0
	count := 0
	for i, u := range froms {
		if s.stamp[u] != s.epoch || s.round[u] >= round {
			continue
		}
		sign := 1.0
		if r.Float64() >= m.g.PhiAt(idxs[i]) { // α(u,v) = 1
			sign = -1.0
		}
		sum += sign * s.opinion[u]
		count++
	}
	ov := m.g.Opinion(v)
	if count == 0 {
		// Threshold θ=0 edge case: v activated with no previously-active
		// in-neighbor; only the personal opinion contributes.
		return ov / 2
	}
	return (ov + sum/float64(count)) / 2
}

var _ Model = (*OI)(nil)
