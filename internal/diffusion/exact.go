package diffusion

import (
	"github.com/holisticim/holisticim/internal/graph"
)

// This file contains brute-force exact computations used as test oracles
// on tiny graphs. They enumerate probability-weighted worlds and are
// exponential; callers must keep inputs small (≤ ~20 edges / ~8 nodes).

// ExactICSpread computes σ(S) under IC exactly by enumerating all 2^m
// live-edge worlds (Kempe et al.'s equivalence: an edge (u,v) is live with
// probability p(u,v) independently; the spread is the number of non-seed
// nodes reachable from S over live edges).
func ExactICSpread(g *graph.Graph, seeds []graph.NodeID) float64 {
	m := int(g.NumEdges())
	if m > 22 {
		panic("diffusion: ExactICSpread limited to 22 edges")
	}
	// Flatten edges in out-array order.
	type edge struct {
		u, v graph.NodeID
		p    float64
	}
	edges := make([]edge, 0, m)
	for u := graph.NodeID(0); u < g.NumNodes(); u++ {
		nbrs := g.OutNeighbors(u)
		ps := g.OutProbs(u)
		for i, v := range nbrs {
			edges = append(edges, edge{u, v, ps[i]})
		}
	}
	isSeed := make([]bool, g.NumNodes())
	for _, s := range seeds {
		isSeed[s] = true
	}
	total := 0.0
	adj := make([][]graph.NodeID, g.NumNodes())
	for world := 0; world < 1<<m; world++ {
		weight := 1.0
		for i := range adj {
			adj[i] = adj[i][:0]
		}
		for i, e := range edges {
			if world&(1<<i) != 0 {
				weight *= e.p
				adj[e.u] = append(adj[e.u], e.v)
			} else {
				weight *= 1 - e.p
			}
		}
		if weight == 0 {
			continue
		}
		// BFS over live edges from seeds.
		visited := make([]bool, g.NumNodes())
		queue := make([]graph.NodeID, 0, g.NumNodes())
		for _, s := range seeds {
			if !visited[s] {
				visited[s] = true
				queue = append(queue, s)
			}
		}
		reached := 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			if !isSeed[u] {
				reached++
			}
			for _, v := range adj[u] {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
		total += weight * float64(reached)
	}
	return total
}

// ExactLTSpread computes σ(S) under LT exactly by enumerating, for every
// node, which in-edge (or none) is live — the live-edge characterization
// of LT. The number of worlds is Π_v (indeg(v)+1).
func ExactLTSpread(g *graph.Graph, seeds []graph.NodeID) float64 {
	n := int(g.NumNodes())
	worlds := 1.0
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		worlds *= float64(g.InDegree(v) + 1)
		if worlds > 1e7 {
			panic("diffusion: ExactLTSpread instance too large")
		}
	}
	isSeed := make([]bool, n)
	for _, s := range seeds {
		isSeed[s] = true
	}
	choice := make([]int, n) // 0 = no live in-edge; i>0 = i-th in-edge live
	var recurse func(v int, weight float64) float64
	liveParent := make([]graph.NodeID, n)
	recurse = func(v int, weight float64) float64 {
		if weight == 0 {
			return 0
		}
		if v == n {
			// Evaluate reachability: node w active if seed or live parent active.
			visited := make([]bool, n)
			queue := make([]graph.NodeID, 0, n)
			for _, s := range seeds {
				if !visited[s] {
					visited[s] = true
					queue = append(queue, s)
				}
			}
			reached := 0
			for head := 0; head < len(queue); head++ {
				u := queue[head]
				if !isSeed[u] {
					reached++
				}
				// Activate all nodes whose live parent is u.
				for w := 0; w < n; w++ {
					if !visited[w] && choice[w] > 0 && liveParent[w] == u {
						visited[w] = true
						queue = append(queue, graph.NodeID(w))
					}
				}
			}
			return weight * float64(reached)
		}
		idxs := g.InEdgeIndices(graph.NodeID(v))
		froms := g.InNeighbors(graph.NodeID(v))
		sumW := 0.0
		total := 0.0
		for i, e := range idxs {
			w := g.WeightAt(e)
			sumW += w
			choice[v] = i + 1
			liveParent[v] = froms[i]
			total += recurse(v+1, weight*w)
		}
		choice[v] = 0
		total += recurse(v+1, weight*(1-sumW))
		return total
	}
	return recurse(0, 1)
}

// ExactOIICSeedValue computes, for a single seed on graphs where every
// node has at most one incoming path from the seed (trees), the exact
// expected opinion spread σ_o({s}) under OI-IC by dynamic programming over
// the unique root-to-node paths: activation probability is the product of
// edge p's and the expected opinion follows Lemma 8's recurrence
// E[o'_v] = o_v/2 + ψ(u,v)·E[o'_u], ψ = (2ϕ−1)/2.
func ExactOIICSeedValue(g *graph.Graph, seed graph.NodeID) float64 {
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		if g.InDegree(v) > 1 {
			panic("diffusion: ExactOIICSeedValue requires a tree/forest")
		}
	}
	total := 0.0
	type item struct {
		v     graph.NodeID
		pAcc  float64 // probability v is activated
		expOp float64 // E[o'_v | activated]
	}
	stack := []item{{v: seed, pAcc: 1, expOp: g.Opinion(seed)}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nbrs := g.OutNeighbors(it.v)
		ps := g.OutProbs(it.v)
		phis := g.OutPhis(it.v)
		for i, w := range nbrs {
			psi := (2*phis[i] - 1) / 2
			child := item{
				v:     w,
				pAcc:  it.pAcc * ps[i],
				expOp: g.Opinion(w)/2 + psi*it.expOp,
			}
			total += child.pAcc * child.expOp
			stack = append(stack, child)
		}
	}
	return total
}
