package diffusion

import (
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func TestOCEqualsOIWithPhiOne(t *testing.T) {
	// OC is the ϕ≡1 special case of OI-LT: with ϕ=1 on every edge the two
	// models must produce identical estimates under the same seeds/RNG.
	g := graph.ErdosRenyi(120, 700, rng.New(41))
	g.SetDefaultLTWeights()
	g.SetUniformPhi(1)
	r := rng.New(43)
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		g.SetOpinion(v, r.Range(-1, 1))
	}
	seeds := []graph.NodeID{0, 7}
	// Same master seed → identical RNG streams. OC consumes fewer draws
	// (no α flips), so exact per-run equality is not guaranteed — wait, it
	// is not: compare expectations instead.
	oc := estimate(NewOC(g), seeds, 30000)
	oi := estimate(NewOI(g, LayerLT), seeds, 30000)
	if math.Abs(oc.OpinionSpread-oi.OpinionSpread) > 0.05 {
		t.Fatalf("OC %v vs OI(φ=1) %v", oc.OpinionSpread, oi.OpinionSpread)
	}
	if math.Abs(oc.Spread-oi.Spread) > 0.3 {
		t.Fatalf("activation differs: %v vs %v", oc.Spread, oi.Spread)
	}
}

func TestOCDeterministicPair(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdgeP(0, 1, 1, 1)
	g := b.Build()
	g.SetDefaultLTWeights()
	g.SetOpinion(0, 1)
	g.SetOpinion(1, 0)
	m := NewOC(g)
	s := NewScratch(2)
	m.Simulate([]graph.NodeID{0}, rng.New(1), s)
	if !s.WasActivated(1) {
		t.Fatal("node 1 must activate (weight 1)")
	}
	// o'_1 = (0 + 1)/2 = 0.5
	if math.Abs(s.FinalOpinion(1)-0.5) > 1e-12 {
		t.Fatalf("o'_1 = %v", s.FinalOpinion(1))
	}
}

func TestICNQualityFactorExtremes(t *testing.T) {
	g := graph.Path(4, 1, 1)
	// q=1: everything positive. Spread contributions all +1.
	m1 := NewICN(g, 1)
	est1 := estimate(m1, []graph.NodeID{0}, 2000)
	if math.Abs(est1.OpinionSpread-3) > 1e-9 {
		t.Fatalf("q=1 opinion spread %v want 3", est1.OpinionSpread)
	}
	// q=0: seed negative, and negativity propagates strictly.
	m0 := NewICN(g, 0)
	est0 := estimate(m0, []graph.NodeID{0}, 2000)
	if math.Abs(est0.OpinionSpread-(-3)) > 1e-9 {
		t.Fatalf("q=0 opinion spread %v want -3", est0.OpinionSpread)
	}
}

func TestICNNegativeDominance(t *testing.T) {
	// Once a node is negative all downstream activations are negative: on a
	// path, the expected positive count decays geometrically with q.
	g := graph.Path(3, 1, 1)
	q := 0.6
	m := NewICN(g, q)
	est := estimate(m, []graph.NodeID{0}, mcRuns)
	// E[#pos non-seed] = q*q + q*q*q ... node1 pos needs seed pos (q) then
	// flip (q); node2 pos needs node1 pos and flip: q^3.
	wantPos := q*q + q*q*q
	if math.Abs(est.PositiveSpread-wantPos) > 0.02 {
		t.Fatalf("positive spread %v want %v", est.PositiveSpread, wantPos)
	}
	wantNeg := 2 - wantPos // every non-seed activates (p=1), ±1 each
	if math.Abs(est.NegativeSpread-wantNeg) > 0.02 {
		t.Fatalf("negative spread %v want %v", est.NegativeSpread, wantNeg)
	}
}

func TestICNRejectsBadQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewICN(graph.Path(2, 1, 1), 1.5)
}

func TestModelNames(t *testing.T) {
	g := graph.Path(2, 1, 1)
	cases := map[string]Model{
		"IC":    NewIC(g),
		"LT":    NewLT(g),
		"OI-IC": NewOI(g, LayerIC),
		"OI-LT": NewOI(g, LayerLT),
		"OC":    NewOC(g),
		"IC-N":  NewICN(g, 0.9),
	}
	for want, m := range cases {
		if m.Name() != want {
			t.Errorf("Name() = %q want %q", m.Name(), want)
		}
		if m.Graph() != g {
			t.Errorf("%s: Graph() mismatch", want)
		}
	}
}
