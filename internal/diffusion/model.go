// Package diffusion implements the information-diffusion models of the
// paper — the classical opinion-oblivious models IC, WC and LT (Kempe et
// al.), the paper's two-layer Opinion-cum-Interaction (OI) model over both
// IC and LT first layers (Sec. 2.2), and the prior opinion-aware baselines
// OC (Zhang et al., ICDCS'13) and IC-N (Chen et al., SDM'11) — together
// with a deterministic, parallel Monte-Carlo spread estimator.
//
// All models share a Scratch workspace with epoch-stamped buffers so that
// repeated simulations perform no per-run clearing and no allocation.
package diffusion

import (
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

// Result aggregates one simulation run. Opinion fields are zero for
// opinion-oblivious models.
type Result struct {
	Activated   int     // |V(a)|, including seeds
	OpinionSum  float64 // Σ o'_v over activated non-seed nodes (Def. 6)
	PositiveSum float64 // Σ o'_v over activated non-seeds with o'_v > 0
	NegativeSum float64 // Σ |o'_v| over activated non-seeds with o'_v < 0
}

// Spread returns Γ(S) = |V(a)| − |S| for this run (Def. 3).
func (r Result) Spread(numSeeds int) float64 {
	return float64(r.Activated - numSeeds)
}

// EffectiveOpinion returns Γ_λ^o(S) = Σ_{o'>0} o' − λ Σ_{o'<0}|o'| (Def. 7).
func (r Result) EffectiveOpinion(lambda float64) float64 {
	return r.PositiveSum - lambda*r.NegativeSum
}

// Model is a diffusion process bound to a graph. Simulate runs a single
// stochastic diffusion from the given seeds. Implementations must be
// deterministic given the RNG stream, must not retain seeds, and must
// leave the full activation order and per-node final opinions readable
// from the Scratch until the next Simulate call.
type Model interface {
	// Name returns a short identifier ("IC", "LT", "OI-IC", ...).
	Name() string
	// Graph returns the underlying graph.
	Graph() *graph.Graph
	// Simulate runs one diffusion. Seeds listed in the Scratch's blocked
	// mask (if any) are skipped; blocked nodes can neither activate nor
	// relay, modelling the vertex-removed graph G(V \ V(a), E) of
	// ScoreGREEDY.
	Simulate(seeds []graph.NodeID, r *rng.RNG, s *Scratch) Result
}

// Scratch holds reusable per-worker simulation state. Not safe for
// concurrent use; allocate one per goroutine via NewScratch.
type Scratch struct {
	n     int32
	stamp []uint32 // activation epoch stamps
	epoch uint32

	order    []graph.NodeID // activation order of the last run
	frontier []graph.NodeID
	next     []graph.NodeID

	round   []int32   // activation round, valid where stamp matches epoch
	opinion []float64 // o'_v, valid where stamp matches epoch

	wsum     []float64 // LT accumulated incoming weight
	thr      []float64 // LT sampled thresholds
	thrStamp []uint32

	blocked []bool // optional; nil means no blocked nodes
}

// NewScratch allocates a workspace for graphs with n nodes.
func NewScratch(n int32) *Scratch {
	return &Scratch{
		n:        n,
		stamp:    make([]uint32, n),
		round:    make([]int32, n),
		opinion:  make([]float64, n),
		wsum:     make([]float64, n),
		thr:      make([]float64, n),
		thrStamp: make([]uint32, n),
	}
}

// SetBlocked installs a blocked-node mask (length n) applied to subsequent
// simulations, or removes it when mask is nil. The mask is aliased, not
// copied.
func (s *Scratch) SetBlocked(mask []bool) {
	if mask != nil && int32(len(mask)) != s.n {
		panic("diffusion: blocked mask length mismatch")
	}
	s.blocked = mask
}

// begin starts a new run: bumps the epoch (clearing all stamps implicitly)
// and resets the activation order.
func (s *Scratch) begin() {
	s.epoch++
	if s.epoch == 0 { // epoch wrapped: hard-clear stamps once every 2^32 runs
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		for i := range s.thrStamp {
			s.thrStamp[i] = 0
		}
		s.epoch = 1
	}
	s.order = s.order[:0]
	s.frontier = s.frontier[:0]
	s.next = s.next[:0]
}

func (s *Scratch) isActive(v graph.NodeID) bool { return s.stamp[v] == s.epoch }

func (s *Scratch) isBlocked(v graph.NodeID) bool { return s.blocked != nil && s.blocked[v] }

// activate marks v active with the given final opinion and round.
func (s *Scratch) activate(v graph.NodeID, opinion float64, round int32) {
	s.stamp[v] = s.epoch
	s.opinion[v] = opinion
	s.round[v] = round
	s.order = append(s.order, v)
}

// Activated returns the nodes activated by the last run, in activation
// order (seeds first). The slice is invalidated by the next Simulate.
func (s *Scratch) Activated() []graph.NodeID { return s.order }

// WasActivated reports whether v was activated in the last run.
func (s *Scratch) WasActivated(v graph.NodeID) bool { return s.stamp[v] == s.epoch }

// FinalOpinion returns o'_v from the last run; only meaningful when
// WasActivated(v).
func (s *Scratch) FinalOpinion(v graph.NodeID) float64 { return s.opinion[v] }

// accumulate folds a newly activated non-seed node's opinion into res.
func accumulate(res *Result, opinion float64) {
	res.OpinionSum += opinion
	if opinion > 0 {
		res.PositiveSum += opinion
	} else if opinion < 0 {
		res.NegativeSum += -opinion
	}
}

// seedSetup activates the seed set with their personal opinions (o'_s =
// o_s, footnote 3 of the paper), skipping blocked and duplicate seeds.
// Returns the number of seeds actually placed.
func (s *Scratch) seedSetup(g *graph.Graph, seeds []graph.NodeID) int {
	placed := 0
	for _, v := range seeds {
		if s.isBlocked(v) || s.isActive(v) {
			continue
		}
		s.activate(v, g.Opinion(v), 0)
		s.frontier = append(s.frontier, v)
		placed++
	}
	return placed
}
