package diffusion

import (
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func TestLTDeterministicChain(t *testing.T) {
	// A path with in-degree 1 per node: weights = 1, so every threshold is
	// met — the whole chain activates.
	g := graph.Path(6, 0.5, 0.5) // p irrelevant; weights are 1/indeg = 1
	est := estimate(NewLT(g), []graph.NodeID{0}, 200)
	if est.Spread != 5 {
		t.Fatalf("LT chain spread %v want 5", est.Spread)
	}
}

func TestLTMatchesExactEnumeration(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 4; trial++ {
		g := graph.ErdosRenyi(6, 9, r)
		g.SetDefaultLTWeights()
		exact := ExactLTSpread(g, []graph.NodeID{0, 1})
		est := estimate(NewLT(g), []graph.NodeID{0, 1}, mcRuns)
		if math.Abs(est.Spread-exact) > 0.06 {
			t.Fatalf("trial %d: LT MC %v vs exact %v", trial, est.Spread, exact)
		}
	}
}

func TestLTLiveEdgeEquivalence(t *testing.T) {
	// Kempe's theorem: threshold-LT spread distribution equals live-edge
	// reachability. Compare the two estimators on a random graph.
	g := graph.ErdosRenyi(80, 400, rng.New(17))
	g.SetDefaultLTWeights()
	seeds := []graph.NodeID{0, 5, 9}
	ltEst := estimate(NewLT(g), seeds, mcRuns)

	s := NewScratch(g.NumNodes())
	live := make([]int64, g.NumNodes())
	total := 0.0
	for i := 0; i < mcRuns; i++ {
		r := rng.Split(99, uint64(i))
		SampleLiveEdge(g, r, live)
		total += float64(LiveEdgeSpread(g, live, seeds, s))
	}
	liveAvg := total / mcRuns
	if math.Abs(ltEst.Spread-liveAvg) > 0.25 {
		t.Fatalf("LT %v vs live-edge %v", ltEst.Spread, liveAvg)
	}
}

func TestSampleLiveEdgeDistribution(t *testing.T) {
	// Node 2 has two in-edges with weights 1/2 each: live-edge choice must
	// be ~uniform over {edge from 0, edge from 1, none}... with w=1/2 each
	// the "none" branch has probability 0.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	g := b.Build()
	g.SetDefaultLTWeights()
	counts := map[int64]int{}
	live := make([]int64, 3)
	for i := 0; i < 20000; i++ {
		r := rng.Split(7, uint64(i))
		SampleLiveEdge(g, r, live)
		counts[live[2]]++
	}
	if counts[-1] != 0 {
		t.Fatalf("live-edge 'none' chosen %d times though weights sum to 1", counts[-1])
	}
	frac := float64(counts[g.OutEdgeBase(0)]) / 20000
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("edge from 0 chosen with freq %v, want 0.5", frac)
	}
}

func TestLTBlockedMask(t *testing.T) {
	g := graph.Path(5, 0.5, 0.5)
	blocked := make([]bool, 5)
	blocked[1] = true
	est := MonteCarlo(NewLT(g), []graph.NodeID{0}, MCOptions{Runs: 100, Seed: 3, Blocked: blocked})
	if est.Spread != 0 {
		t.Fatalf("blocked LT spread %v want 0", est.Spread)
	}
}

func TestLTStarActivationProbability(t *testing.T) {
	// Star 0 -> {1..10}: each leaf has in-degree 1, weight 1 ⇒ all activate.
	g := graph.Star(11, 0.5, 0.5)
	est := estimate(NewLT(g), []graph.NodeID{0}, 100)
	if est.Spread != 10 {
		t.Fatalf("star spread %v want 10", est.Spread)
	}
}

func TestLTPartialWeights(t *testing.T) {
	// Node 1 has a single in-edge with manually reduced weight 0.3: the
	// activation probability must be ≈ 0.3 (θ ~ U[0,1)).
	b := graph.NewBuilder(2)
	b.AddEdgeFull(0, 1, 0.5, 0.5, 0.3)
	g := b.Build()
	est := estimate(NewLT(g), []graph.NodeID{0}, mcRuns)
	if math.Abs(est.Spread-0.3) > 0.01 {
		t.Fatalf("weighted LT activation %v want 0.3", est.Spread)
	}
}
