package diffusion

import (
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

// TestOIICExampleTwo reproduces the paper's Example 2 expected opinion
// spreads on the Figure-1 graph:
//
//	σ_o(A) = 0.136, σ_o(C) = −0.351, σ_o(D) = 0.
//
// For seed B the paper reports −0.022564, which is exactly node D's
// expected opinion contribution under uniform tie-breaking; Definition 6
// additionally counts A's (+0.04) and C's (+0.03) contributions, so the
// model-faithful value is 0.048444. We assert both decompositions, which
// pins down the OI-IC dynamics including the random activator order.
func TestOIICExampleTwo(t *testing.T) {
	g := graph.ExampleFigure1()
	m := NewOI(g, LayerIC)
	const (
		A graph.NodeID = 0
		B graph.NodeID = 1
		C graph.NodeID = 2
		D graph.NodeID = 3
	)
	checks := []struct {
		seed graph.NodeID
		want float64
	}{
		{A, 0.136},
		{C, -0.351},
		{D, 0},
	}
	for _, c := range checks {
		est := estimate(m, []graph.NodeID{c.seed}, mcRuns)
		if math.Abs(est.OpinionSpread-c.want) > 0.01 {
			t.Errorf("σ_o(%d) = %v, want %v", c.seed, est.OpinionSpread, c.want)
		}
	}

	// Seed B: decompose by node. Run detailed simulations.
	s := NewScratch(4)
	r := rng.New(0)
	var sumD, sumAll float64
	const runs = 400000
	for i := 0; i < runs; i++ {
		r.Reseed(rng.SplitSeed(4242, uint64(i)))
		m.Simulate([]graph.NodeID{B}, r, s)
		for _, v := range s.Activated() {
			if v == B {
				continue
			}
			op := s.FinalOpinion(v)
			sumAll += op
			if v == D {
				sumD += op
			}
		}
	}
	gotD := sumD / runs
	gotAll := sumAll / runs
	if math.Abs(gotD-(-0.022564)) > 0.004 {
		t.Errorf("E[o'_D | seed B] = %v, want -0.022564 (paper's Example-2 figure)", gotD)
	}
	if math.Abs(gotAll-0.048444) > 0.004 {
		t.Errorf("σ_o(B) = %v, want 0.048444 (Def. 6 over A, C, D)", gotAll)
	}
}

func TestOIICSeedKeepsOwnOpinion(t *testing.T) {
	g := graph.Path(2, 1, 1)
	g.SetOpinion(0, 0.7)
	g.SetOpinion(1, -0.4)
	m := NewOI(g, LayerIC)
	s := NewScratch(2)
	m.Simulate([]graph.NodeID{0}, rng.New(1), s)
	if s.FinalOpinion(0) != 0.7 {
		t.Fatalf("seed opinion changed: %v", s.FinalOpinion(0))
	}
	// φ=1 ⇒ o'_1 = (o_1 + o'_0)/2 = (−0.4+0.7)/2 = 0.15 deterministically.
	if math.Abs(s.FinalOpinion(1)-0.15) > 1e-12 {
		t.Fatalf("o'_1 = %v want 0.15", s.FinalOpinion(1))
	}
}

func TestOIICDisagreementFlipsSign(t *testing.T) {
	// φ=0 ⇒ α=1 always: o'_v = (o_v − o'_u)/2.
	g := graph.Path(2, 1, 0)
	g.SetOpinion(0, 0.8)
	g.SetOpinion(1, 0.2)
	m := NewOI(g, LayerIC)
	s := NewScratch(2)
	m.Simulate([]graph.NodeID{0}, rng.New(1), s)
	if math.Abs(s.FinalOpinion(1)-(-0.3)) > 1e-12 {
		t.Fatalf("o'_1 = %v want -0.3", s.FinalOpinion(1))
	}
}

func TestOIICMatchesClosedFormOnTrees(t *testing.T) {
	// On trees the unique-path DP of ExactOIICSeedValue is exact; MC must
	// agree. Opinions and interactions randomized per trial.
	for trial := 0; trial < 4; trial++ {
		r := rng.Split(1000, uint64(trial))
		g := graph.RandomTree(12, 0.4, 0, r)
		for v := graph.NodeID(0); v < g.NumNodes(); v++ {
			g.SetOpinion(v, r.Range(-1, 1))
		}
		g.SetEdgeParamsFunc(func(u, v graph.NodeID) (float64, float64) {
			return 0.4, r.Float64()
		})
		exact := ExactOIICSeedValue(g, 0)
		est := estimate(NewOI(g, LayerIC), []graph.NodeID{0}, mcRuns)
		if math.Abs(est.OpinionSpread-exact) > 0.03 {
			t.Fatalf("trial %d: MC %v vs closed form %v", trial, est.OpinionSpread, exact)
		}
	}
}

func TestOILTActivationMatchesLT(t *testing.T) {
	// The OI second layer must not perturb first-layer activation: spread
	// under OI-LT equals spread under LT for the same seed/seedless RNG
	// budget (statistically).
	g := graph.ErdosRenyi(100, 600, rng.New(3))
	g.SetDefaultLTWeights()
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		g.SetOpinion(v, 0.5)
	}
	seeds := []graph.NodeID{0, 1}
	lt := estimate(NewLT(g), seeds, 30000)
	oi := estimate(NewOI(g, LayerLT), seeds, 30000)
	if math.Abs(lt.Spread-oi.Spread) > 0.3 {
		t.Fatalf("OI-LT changed activation: %v vs %v", oi.Spread, lt.Spread)
	}
}

func TestOILTOpinionAveraging(t *testing.T) {
	// Two seeds point at node 2 (weights 1/2 each ⇒ both needed in the
	// worst case but either may suffice). With φ=1 and both seeds active in
	// round 0, In(2)(a) = {0,1} at activation:
	// o'_2 = (o_2 + (o_0+o_1)/2)/2.
	b := graph.NewBuilder(3)
	b.AddEdgeP(0, 2, 1, 1)
	b.AddEdgeP(1, 2, 1, 1)
	g := b.Build()
	g.SetDefaultLTWeights()
	g.SetOpinion(0, 0.8)
	g.SetOpinion(1, -0.2)
	g.SetOpinion(2, 0.4)
	m := NewOI(g, LayerLT)
	s := NewScratch(3)
	m.Simulate([]graph.NodeID{0, 1}, rng.New(5), s)
	if !s.WasActivated(2) {
		t.Fatal("node 2 should always activate (weights sum to 1)")
	}
	want := (0.4 + (0.8-0.2)/2) / 2
	if math.Abs(s.FinalOpinion(2)-want) > 1e-12 {
		t.Fatalf("o'_2 = %v want %v", s.FinalOpinion(2), want)
	}
}

func TestOIEffectiveOpinionSplit(t *testing.T) {
	// Positive and negative sums must decompose the opinion sum.
	g := graph.ErdosRenyi(150, 900, rng.New(13))
	g.SetUniformProb(0.2)
	r := rng.New(21)
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		g.SetOpinion(v, r.Range(-1, 1))
	}
	g.SetEdgeParamsFunc(func(u, v graph.NodeID) (float64, float64) { return 0.2, r.Float64() })
	est := estimate(NewOI(g, LayerIC), []graph.NodeID{0, 1, 2}, 5000)
	if math.Abs((est.PositiveSpread-est.NegativeSpread)-est.OpinionSpread) > 1e-9 {
		t.Fatalf("pos−neg=%v, opinion=%v", est.PositiveSpread-est.NegativeSpread, est.OpinionSpread)
	}
	if est.EffectiveOpinionSpread(1) != est.PositiveSpread-est.NegativeSpread {
		t.Fatal("effective λ=1 mismatch")
	}
	if est.EffectiveOpinionSpread(0) != est.PositiveSpread {
		t.Fatal("effective λ=0 should ignore negative spread")
	}
}

func TestOIOpinionBounds(t *testing.T) {
	// Final opinions must stay within [-1,1] (each mix halves the sum of
	// two values in [-1,1]).
	g := graph.ErdosRenyi(60, 400, rng.New(33))
	g.SetUniformProb(0.5)
	r := rng.New(77)
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		g.SetOpinion(v, r.Range(-1, 1))
	}
	g.SetEdgeParamsFunc(func(u, v graph.NodeID) (float64, float64) { return 0.5, r.Float64() })
	for _, layer := range []Layer{LayerIC, LayerLT} {
		m := NewOI(g, layer)
		s := NewScratch(g.NumNodes())
		for run := 0; run < 200; run++ {
			m.Simulate([]graph.NodeID{0, 1}, rng.Split(5, uint64(run)), s)
			for _, v := range s.Activated() {
				op := s.FinalOpinion(v)
				if op < -1 || op > 1 || math.IsNaN(op) {
					t.Fatalf("layer %v: opinion %v out of bounds at node %d", layer, op, v)
				}
			}
		}
	}
}
