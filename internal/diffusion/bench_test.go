package diffusion

import (
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func benchSetup(b *testing.B) (*graph.Graph, []graph.NodeID) {
	b.Helper()
	g := graph.BarabasiAlbert(20000, 3, rng.New(1))
	g.SetUniformProb(0.1)
	r := rng.New(2)
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		g.SetOpinion(v, r.Range(-1, 1))
	}
	g.SetEdgeParamsFunc(func(u, v graph.NodeID) (float64, float64) { return 0.1, r.Float64() })
	g.SetDefaultLTWeights()
	seeds := graph.TopKByOutDegree(g, 10)
	return g, seeds
}

func benchSimulate(b *testing.B, m Model, seeds []graph.NodeID) {
	b.Helper()
	s := NewScratch(m.Graph().NumNodes())
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reseed(rng.SplitSeed(7, uint64(i)))
		_ = m.Simulate(seeds, r, s)
	}
}

func BenchmarkSimulateIC(b *testing.B) {
	g, seeds := benchSetup(b)
	benchSimulate(b, NewIC(g), seeds)
}

func BenchmarkSimulateLT(b *testing.B) {
	g, seeds := benchSetup(b)
	benchSimulate(b, NewLT(g), seeds)
}

func BenchmarkSimulateOIIC(b *testing.B) {
	g, seeds := benchSetup(b)
	benchSimulate(b, NewOI(g, LayerIC), seeds)
}

func BenchmarkSimulateOILT(b *testing.B) {
	g, seeds := benchSetup(b)
	benchSimulate(b, NewOI(g, LayerLT), seeds)
}

func BenchmarkMonteCarloSerial(b *testing.B) {
	g, seeds := benchSetup(b)
	m := NewIC(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MonteCarlo(m, seeds, MCOptions{Runs: 200, Seed: 1, Workers: 1})
	}
}

func BenchmarkMonteCarloParallel(b *testing.B) {
	g, seeds := benchSetup(b)
	m := NewIC(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MonteCarlo(m, seeds, MCOptions{Runs: 200, Seed: 1})
	}
}

func BenchmarkSampleLiveEdge(b *testing.B) {
	g, _ := benchSetup(b)
	r := rng.New(5)
	out := make([]int64, g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleLiveEdge(g, r, out)
	}
}
