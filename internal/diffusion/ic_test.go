package diffusion

import (
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

const mcRuns = 60000

func estimate(m Model, seeds []graph.NodeID, runs int) Estimate {
	return MonteCarlo(m, seeds, MCOptions{Runs: runs, Seed: 42})
}

func TestICSpreadDeterministicEdges(t *testing.T) {
	// p=1 path: seed 0 activates everything.
	g := graph.Path(5, 1.0, 1.0)
	m := NewIC(g)
	est := estimate(m, []graph.NodeID{0}, 100)
	if est.Spread != 4 {
		t.Fatalf("spread=%v want 4", est.Spread)
	}
	// p=0: nothing spreads.
	g0 := graph.Path(5, 0.0, 1.0)
	est0 := estimate(NewIC(g0), []graph.NodeID{0}, 100)
	if est0.Spread != 0 {
		t.Fatalf("spread=%v want 0", est0.Spread)
	}
}

func TestICExampleTwoSpreads(t *testing.T) {
	// Paper Example 2: σ(A)=0.8, σ(B)=0.3628, σ(C)=0.9, σ(D)=0 under IC.
	g := graph.ExampleFigure1()
	m := NewIC(g)
	want := map[graph.NodeID]float64{0: 0.8, 1: 0.3628, 2: 0.9, 3: 0}
	for v, w := range want {
		est := estimate(m, []graph.NodeID{v}, mcRuns)
		if math.Abs(est.Spread-w) > 0.01 {
			t.Errorf("σ(%d) = %v, want %v", v, est.Spread, w)
		}
	}
}

func TestICMatchesExactEnumeration(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 5; trial++ {
		g := graph.ErdosRenyi(6, 10, r)
		g.SetUniformProb(0.3)
		exact := ExactICSpread(g, []graph.NodeID{0, 3})
		est := estimate(NewIC(g), []graph.NodeID{0, 3}, mcRuns)
		if math.Abs(est.Spread-exact) > 0.05 {
			t.Fatalf("trial %d: MC %v vs exact %v", trial, est.Spread, exact)
		}
	}
}

func TestICDuplicateSeedsCountedOnce(t *testing.T) {
	g := graph.Path(4, 1, 1)
	est := estimate(NewIC(g), []graph.NodeID{0, 0, 0}, 50)
	if est.Spread != 3 {
		t.Fatalf("duplicate seeds mishandled: spread %v", est.Spread)
	}
}

func TestICBlockedMask(t *testing.T) {
	g := graph.Path(5, 1, 1)
	blocked := make([]bool, 5)
	blocked[2] = true // cuts the path
	est := MonteCarlo(NewIC(g), []graph.NodeID{0}, MCOptions{Runs: 50, Seed: 1, Blocked: blocked})
	if est.Spread != 1 { // only node 1 activates
		t.Fatalf("blocked spread %v want 1", est.Spread)
	}
	// Blocked seed contributes nothing.
	est2 := MonteCarlo(NewIC(g), []graph.NodeID{2}, MCOptions{Runs: 50, Seed: 1, Blocked: blocked})
	if est2.Spread != 0 {
		t.Fatalf("blocked seed spread %v want 0", est2.Spread)
	}
}

func TestMonteCarloDeterministicAcrossWorkers(t *testing.T) {
	g := graph.ErdosRenyi(300, 2000, rng.New(7))
	g.SetUniformProb(0.1)
	m := NewIC(g)
	a := MonteCarlo(m, []graph.NodeID{1, 2, 3}, MCOptions{Runs: 500, Seed: 9, Workers: 1})
	b := MonteCarlo(m, []graph.NodeID{1, 2, 3}, MCOptions{Runs: 500, Seed: 9, Workers: 8})
	if a.Spread != b.Spread || a.OpinionSpread != b.OpinionSpread {
		t.Fatalf("estimates differ across worker counts: %v vs %v", a.Spread, b.Spread)
	}
}

func TestICMonotoneInSeeds(t *testing.T) {
	g := graph.ErdosRenyi(200, 1200, rng.New(11))
	g.SetUniformProb(0.1)
	m := NewIC(g)
	s1 := estimate(m, []graph.NodeID{0}, 4000)
	s2 := estimate(m, []graph.NodeID{0, 1, 2, 3, 4}, 4000)
	if s2.Spread+5 < s1.Spread+1 {
		t.Fatalf("adding seeds reduced activation: %v vs %v", s2.Spread, s1.Spread)
	}
}

func TestScratchActivationOrder(t *testing.T) {
	g := graph.Path(4, 1, 1)
	m := NewIC(g)
	s := NewScratch(4)
	m.Simulate([]graph.NodeID{0}, rng.New(1), s)
	order := s.Activated()
	if len(order) != 4 || order[0] != 0 || order[1] != 1 || order[2] != 2 || order[3] != 3 {
		t.Fatalf("activation order %v", order)
	}
	for v := graph.NodeID(0); v < 4; v++ {
		if !s.WasActivated(v) {
			t.Fatalf("node %d not marked active", v)
		}
	}
}

func TestScratchEpochIsolation(t *testing.T) {
	g := graph.Path(4, 0, 1) // p=0: only seed activates
	m := NewIC(g)
	s := NewScratch(4)
	m.Simulate([]graph.NodeID{0}, rng.New(1), s)
	m.Simulate([]graph.NodeID{3}, rng.New(1), s)
	if s.WasActivated(0) {
		t.Fatal("stale activation leaked across runs")
	}
	if !s.WasActivated(3) {
		t.Fatal("current activation missing")
	}
}
