package diffusion

import (
	"fmt"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

// ICN is the IC-N baseline of Chen et al. ("Influence Maximization in
// Social Networks When Negative Opinions May Emerge and Propagate",
// SDM'11), implemented for completeness: the paper's Sec. 1 discusses it
// as the only other negative-opinion model besides OC. Dynamics:
//
//   - activation follows IC;
//   - a single global quality factor q governs polarity: a node activated
//     by a *positive* node becomes positive with probability q and
//     negative otherwise; a node activated by a *negative* node always
//     becomes negative (the "strict" constraint the paper criticizes);
//   - seeds themselves turn negative with probability 1−q.
//
// Final opinions are ±1, so Result's opinion fields count positive minus
// negative activations.
type ICN struct {
	g *graph.Graph
	q float64
}

// NewICN returns an IC-N model with quality factor q ∈ [0,1].
func NewICN(g *graph.Graph, q float64) *ICN {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("diffusion: IC-N quality factor %v out of [0,1]", q))
	}
	return &ICN{g: g, q: q}
}

// Name implements Model.
func (m *ICN) Name() string { return "IC-N" }

// Graph implements Model.
func (m *ICN) Graph() *graph.Graph { return m.g }

// QualityFactor returns q.
func (m *ICN) QualityFactor() float64 { return m.q }

// Simulate implements Model.
func (m *ICN) Simulate(seeds []graph.NodeID, r *rng.RNG, s *Scratch) Result {
	s.begin()
	res := Result{}
	// Seeds: positive w.p. q, else negative. (Unlike seedSetup, IC-N seeds
	// carry ±1 rather than their personal opinion.)
	for _, v := range seeds {
		if s.isBlocked(v) || s.isActive(v) {
			continue
		}
		op := 1.0
		if r.Float64() >= m.q {
			op = -1.0
		}
		s.activate(v, op, 0)
		s.frontier = append(s.frontier, v)
		res.Activated++
	}
	round := int32(1)
	for len(s.frontier) > 0 {
		rng.Shuffle(r, s.frontier)
		s.next = s.next[:0]
		for _, u := range s.frontier {
			nbrs := m.g.OutNeighbors(u)
			ps := m.g.OutProbs(u)
			neg := s.opinion[u] < 0
			for i, v := range nbrs {
				if s.isActive(v) || s.isBlocked(v) {
					continue
				}
				if r.Float64() < ps[i] {
					op := -1.0
					if !neg && r.Float64() < m.q {
						op = 1.0
					}
					s.activate(v, op, round)
					s.next = append(s.next, v)
					res.Activated++
					accumulate(&res, op)
				}
			}
		}
		s.frontier, s.next = s.next, s.frontier
		round++
	}
	return res
}

var _ Model = (*ICN)(nil)
