package diffusion

import (
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

// IC is the Independent Cascade model: at the step after its activation,
// each newly active node u gets one independent chance to activate each
// out-neighbor v with probability p(u,v).
//
// The simulation is round-based and shuffles each round's frontier so that
// when several same-round nodes compete to activate a common neighbor the
// winning activator is uniform among them — the unbiased reading of
// Kempe's "in arbitrary order". (For plain IC this does not change the
// spread distribution; it matters for the OI layer where the activator
// determines the propagated opinion.)
type IC struct {
	g *graph.Graph
}

// NewIC returns an IC model over g, using g's per-edge probabilities. For
// the weighted-cascade (WC) variant call g.SetWeightedCascadeProb() first;
// the dynamics are identical.
func NewIC(g *graph.Graph) *IC { return &IC{g: g} }

// Name implements Model.
func (m *IC) Name() string { return "IC" }

// Graph implements Model.
func (m *IC) Graph() *graph.Graph { return m.g }

// Simulate implements Model.
func (m *IC) Simulate(seeds []graph.NodeID, r *rng.RNG, s *Scratch) Result {
	s.begin()
	res := Result{}
	res.Activated = s.seedSetup(m.g, seeds)
	round := int32(1)
	for len(s.frontier) > 0 {
		rng.Shuffle(r, s.frontier)
		s.next = s.next[:0]
		for _, u := range s.frontier {
			nbrs := m.g.OutNeighbors(u)
			ps := m.g.OutProbs(u)
			for i, v := range nbrs {
				if s.isActive(v) || s.isBlocked(v) {
					continue
				}
				if r.Float64() < ps[i] {
					s.activate(v, 0, round)
					s.next = append(s.next, v)
					res.Activated++
				}
			}
		}
		s.frontier, s.next = s.next, s.frontier
		round++
	}
	return res
}

var _ Model = (*IC)(nil)
