package diffusion

import (
	"context"
	"runtime"
	"sync"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

// Estimate is a Monte-Carlo aggregate over many simulation runs.
type Estimate struct {
	Runs            int
	Spread          float64 // σ(S) = E[Γ(S)]
	OpinionSpread   float64 // σ_o(S) = E[Γ_o(S)]
	PositiveSpread  float64 // E[Σ_{o'>0} o']
	NegativeSpread  float64 // E[Σ_{o'<0} |o'|]
	SpreadVariance  float64 // sample variance of Γ(S) across runs
	OpinionVariance float64 // sample variance of Γ_o(S) across runs
}

// EffectiveOpinionSpread returns σ_λ^o(S) = E[Γ_λ^o(S)] for the penalty λ.
func (e Estimate) EffectiveOpinionSpread(lambda float64) float64 {
	return e.PositiveSpread - lambda*e.NegativeSpread
}

// MCOptions configures a Monte-Carlo estimation.
type MCOptions struct {
	Runs    int    // number of simulations (paper default: 10000)
	Seed    uint64 // master seed; run i uses the stream rng.Split(Seed, i)
	Workers int    // 0 = GOMAXPROCS
	Blocked []bool // optional blocked-node mask shared by all runs
	// Pool, when set, supplies reusable per-worker scratches — essential
	// for callers issuing many small estimations (the greedy baselines
	// evaluate O(k·n) seed sets).
	Pool *ScratchPool
	// Ctx, when set, lets MonteCarlo stop dispatching runs once the
	// context is cancelled: the estimate then averages only the runs
	// dispatched so far (Estimate.Runs reports how many). Callers that
	// cancel are expected to discard the truncated estimate.
	Ctx context.Context
}

// ScratchPool recycles Scratch workspaces across MonteCarlo calls. Safe
// for concurrent use.
type ScratchPool struct {
	n    int32
	mu   sync.Mutex
	free []*Scratch
}

// NewScratchPool returns a pool for graphs with n nodes.
func NewScratchPool(n int32) *ScratchPool { return &ScratchPool{n: n} }

func (p *ScratchPool) get() *Scratch {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		return NewScratch(p.n)
	}
	s := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return s
}

func (p *ScratchPool) put(s *Scratch) {
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

func (o *MCOptions) normalize() {
	if o.Runs <= 0 {
		o.Runs = 10000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers > o.Runs {
		o.Workers = o.Runs
	}
}

// MonteCarlo estimates the expected spread quantities of a seed set by
// averaging opts.Runs independent simulations. The estimate is
// deterministic given opts.Seed — independent of worker count — because
// run i always consumes the stream rng.Split(Seed, i) and per-run results
// are reduced in run order.
func MonteCarlo(m Model, seeds []graph.NodeID, opts MCOptions) Estimate {
	opts.normalize()
	type runStat struct {
		spread  float64
		opinion float64
		pos     float64
		neg     float64
	}
	stats := make([]runStat, opts.Runs)
	var wg sync.WaitGroup
	next := make(chan int, opts.Workers)
	n := m.Graph().NumNodes()
	numSeeds := countPlaceableSeeds(seeds, opts.Blocked)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch *Scratch
			if opts.Pool != nil {
				scratch = opts.Pool.get()
				defer opts.Pool.put(scratch)
			} else {
				scratch = NewScratch(n)
			}
			scratch.SetBlocked(opts.Blocked)
			defer scratch.SetBlocked(nil)
			r := rng.New(0)
			for i := range next {
				r.Reseed(rng.SplitSeed(opts.Seed, uint64(i)))
				res := m.Simulate(seeds, r, scratch)
				stats[i] = runStat{
					spread:  res.Spread(numSeeds),
					opinion: res.OpinionSum,
					pos:     res.PositiveSum,
					neg:     res.NegativeSum,
				}
			}
		}()
	}
	dispatched := 0
	for i := 0; i < opts.Runs; i++ {
		if opts.Ctx != nil && opts.Ctx.Err() != nil {
			break
		}
		next <- i
		dispatched++
	}
	close(next)
	wg.Wait()

	est := Estimate{Runs: dispatched}
	var sumS, sumS2, sumO, sumO2 float64
	for _, st := range stats[:dispatched] {
		sumS += st.spread
		sumS2 += st.spread * st.spread
		sumO += st.opinion
		sumO2 += st.opinion * st.opinion
		est.PositiveSpread += st.pos
		est.NegativeSpread += st.neg
	}
	if dispatched == 0 {
		return est
	}
	rn := float64(dispatched)
	est.Spread = sumS / rn
	est.OpinionSpread = sumO / rn
	est.PositiveSpread /= rn
	est.NegativeSpread /= rn
	if dispatched > 1 {
		est.SpreadVariance = (sumS2 - sumS*sumS/rn) / (rn - 1)
		est.OpinionVariance = (sumO2 - sumO*sumO/rn) / (rn - 1)
	}
	return est
}

func countPlaceableSeeds(seeds []graph.NodeID, blocked []bool) int {
	count := 0
	seen := make(map[graph.NodeID]bool, len(seeds))
	for _, v := range seeds {
		if seen[v] {
			continue
		}
		seen[v] = true
		if blocked != nil && blocked[v] {
			continue
		}
		count++
	}
	return count
}
