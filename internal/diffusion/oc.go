package diffusion

import (
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

// OC is the opinion-aware baseline of Zhang, Dinh and Thai ("Maximizing
// the spread of positive influence in online social networks", ICDCS'13)
// as characterized in the paper: activation follows LT ("the OC model is
// designed to work with LT alone"), and the final opinion of a newly
// activated node "is dependent upon its own opinion and the opinion of
// the nodes that activate it" — without any interaction term. It is the
// ϕ ≡ 1 special case of OI-LT:
//
//	o'_v = (o_v + avg_{u∈In(v)(a)} o'_u) / 2.
type OC struct {
	g *graph.Graph
}

// NewOC returns an OC model over g.
func NewOC(g *graph.Graph) *OC { return &OC{g: g} }

// Name implements Model.
func (m *OC) Name() string { return "OC" }

// Graph implements Model.
func (m *OC) Graph() *graph.Graph { return m.g }

// Simulate implements Model.
func (m *OC) Simulate(seeds []graph.NodeID, r *rng.RNG, s *Scratch) Result {
	s.begin()
	res := Result{}
	res.Activated = s.seedSetup(m.g, seeds)
	round := int32(1)
	for len(s.frontier) > 0 {
		s.next = s.next[:0]
		for _, u := range s.frontier {
			nbrs := m.g.OutNeighbors(u)
			ws := m.g.OutWeights(u)
			for i, v := range nbrs {
				if s.isActive(v) || s.isBlocked(v) {
					continue
				}
				if s.thrStamp[v] != s.epoch {
					s.thrStamp[v] = s.epoch
					s.thr[v] = r.Float64()
					s.wsum[v] = 0
				}
				s.wsum[v] += ws[i]
				if s.wsum[v] >= s.thr[v] {
					op := m.ocOpinion(v, round, s)
					s.activate(v, op, round)
					s.next = append(s.next, v)
					res.Activated++
					accumulate(&res, op)
				}
			}
		}
		s.frontier, s.next = s.next, s.frontier
		round++
	}
	return res
}

func (m *OC) ocOpinion(v graph.NodeID, round int32, s *Scratch) float64 {
	froms := m.g.InNeighbors(v)
	sum := 0.0
	count := 0
	for _, u := range froms {
		if s.stamp[u] != s.epoch || s.round[u] >= round {
			continue
		}
		sum += s.opinion[u]
		count++
	}
	ov := m.g.Opinion(v)
	if count == 0 {
		return ov / 2
	}
	return (ov + sum/float64(count)) / 2
}

var _ Model = (*OC)(nil)
