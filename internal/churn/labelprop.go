package churn

import (
	"math"

	"github.com/holisticim/holisticim/internal/graph"
)

// LabelPropOptions configures the propagation (Zhu & Ghahramani's label
// propagation in its soft, local-and-global-consistency form: F ←
// α·Ŵ·F + (1−α)·Y, where Ŵ row-normalizes the similarity weights).
type LabelPropOptions struct {
	// Alpha balances network smoothing vs the prior labels (default 0.5).
	Alpha float64
	// Iterations caps the fixed-point loop (default 100).
	Iterations int
	// Tolerance stops early once max |ΔF| falls below it (default 1e-6).
	Tolerance float64
}

func (o *LabelPropOptions) normalize() {
	if o.Alpha <= 0 || o.Alpha >= 1 {
		o.Alpha = 0.5
	}
	if o.Iterations <= 0 {
		o.Iterations = 100
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-6
	}
}

// PropagateLabels runs label propagation over the similarity graph.
// labels supplies Y (e.g. ±1 churn labels); known[i]=false zeroes node
// i's prior (pure semi-supervised prediction for that node); pass nil to
// treat every label as known. The returned affinities lie in [−1,1]:
// −1 ≈ certain churner, +1 ≈ certain loyal — the opinion layer of the
// paper's MEO churn analysis.
func PropagateLabels(g *graph.Graph, labels []float64, known []bool, opts LabelPropOptions) []float64 {
	opts.normalize()
	n := g.NumNodes()
	if int32(len(labels)) != n {
		panic("churn: label vector length mismatch")
	}
	y := make([]float64, n)
	for i, l := range labels {
		if known == nil || known[i] {
			y[i] = l
		}
	}
	f := append([]float64(nil), y...)
	next := make([]float64, n)
	// Row-normalization masses: Σ of incoming similarity weights.
	wsum := make([]float64, n)
	for v := graph.NodeID(0); v < n; v++ {
		for _, e := range g.InEdgeIndices(v) {
			wsum[v] += g.ProbAt(e)
		}
	}
	for it := 0; it < opts.Iterations; it++ {
		maxDelta := 0.0
		for v := graph.NodeID(0); v < n; v++ {
			smooth := 0.0
			if wsum[v] > 0 {
				froms := g.InNeighbors(v)
				idxs := g.InEdgeIndices(v)
				for i, u := range froms {
					smooth += g.ProbAt(idxs[i]) * f[u]
				}
				smooth /= wsum[v]
			}
			nv := opts.Alpha*smooth + (1-opts.Alpha)*y[v]
			if d := math.Abs(nv - f[v]); d > maxDelta {
				maxDelta = d
			}
			next[v] = nv
		}
		f, next = next, f
		if maxDelta < opts.Tolerance {
			break
		}
	}
	for i := range f {
		if f[i] > 1 {
			f[i] = 1
		}
		if f[i] < -1 {
			f[i] = -1
		}
	}
	return f
}

// BuildChurnGraph runs the whole pipeline of Sec. 4.1.2: generate
// customers, induce the similarity graph, propagate churn labels into
// affinities and install them as node opinions. Returns the annotated
// graph and the customer table.
func BuildChurnGraph(copts CustomerOptions, sopts SimilarityOptions, lopts LabelPropOptions) (*graph.Graph, []Customer) {
	customers := GenerateCustomers(copts)
	g := SimilarityGraph(customers, sopts)
	labels := make([]float64, len(customers))
	for i := range customers {
		labels[i] = customers[i].Label()
	}
	aff := PropagateLabels(g, labels, nil, lopts)
	g.SetOpinions(aff)
	return g, customers
}
