package churn

import (
	"math"
	"sort"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

// SimilarityOptions configures graph induction.
type SimilarityOptions struct {
	// Threshold is the minimum similarity for an edge (default 0.9 — the
	// paper "induce[s] a graph ... using attribute-value similarity and a
	// similarity threshold").
	Threshold float64
	// MaxDegree caps per-node neighbors, keeping the graph at the paper's
	// density (≈44 edges/node on 34K customers). 0 = uncapped.
	MaxDegree int
	// Seed drives the interaction-probability assignment ϕ ~ rand(0,1).
	Seed uint64
}

// Similarity computes the attribute-value similarity of two customers:
// one minus the mean normalized numeric distance, discounted for
// categorical mismatches. Ranges over [0,1].
func Similarity(a, b *Customer, scale *[7]float64) float64 {
	fa, fb := a.numericFeatures(), b.numericFeatures()
	dist := 0.0
	for i := range fa {
		s := scale[i]
		if s == 0 {
			continue
		}
		d := math.Abs(fa[i]-fb[i]) / s
		if d > 1 {
			d = 1
		}
		dist += d
	}
	sim := 1 - dist/float64(len(fa))
	if a.Plan != b.Plan {
		sim -= 0.05
	}
	if a.Region != b.Region {
		sim -= 0.05
	}
	if sim < 0 {
		sim = 0
	}
	return sim
}

// featureScales returns the per-feature normalization (range) over the
// table.
func featureScales(customers []Customer) [7]float64 {
	var lo, hi [7]float64
	for i := range lo {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	for i := range customers {
		f := customers[i].numericFeatures()
		for j := range f {
			if f[j] < lo[j] {
				lo[j] = f[j]
			}
			if f[j] > hi[j] {
				hi[j] = f[j]
			}
		}
	}
	var scale [7]float64
	for j := range scale {
		scale[j] = hi[j] - lo[j]
	}
	return scale
}

// SimilarityGraph induces the undirected similarity graph: an edge (both
// arcs) joins customers whose similarity meets the threshold, with
// influence probability p = similarity (the paper: "attribute-value
// similarity defines the influence-probability") and interaction
// ϕ ~ rand(0,1) (also the paper's choice). O(n²) pairwise comparison —
// fine at the scaled dataset sizes documented in DESIGN.md.
func SimilarityGraph(customers []Customer, opts SimilarityOptions) *graph.Graph {
	if opts.Threshold <= 0 {
		opts.Threshold = 0.9
	}
	n := int32(len(customers))
	scale := featureScales(customers)
	type cand struct {
		v   graph.NodeID
		sim float64
	}
	r := rng.New(opts.Seed)
	b := graph.NewBuilder(n)
	neighbors := make([][]cand, n)
	for i := int32(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			sim := Similarity(&customers[i], &customers[j], &scale)
			if sim >= opts.Threshold {
				neighbors[i] = append(neighbors[i], cand{j, sim})
				neighbors[j] = append(neighbors[j], cand{i, sim})
			}
		}
	}
	added := make(map[[2]graph.NodeID]bool)
	deg := make([]int, n)
	for i := int32(0); i < n; i++ {
		cands := neighbors[i]
		// Highest-similarity neighbors first so the degree cap keeps the
		// strongest ties.
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].sim != cands[b].sim {
				return cands[a].sim > cands[b].sim
			}
			return cands[a].v < cands[b].v
		})
		for _, c := range cands {
			if opts.MaxDegree > 0 && (deg[i] >= opts.MaxDegree || deg[c.v] >= opts.MaxDegree) {
				if deg[i] >= opts.MaxDegree {
					break
				}
				continue
			}
			key := [2]graph.NodeID{i, c.v}
			if i > c.v {
				key = [2]graph.NodeID{c.v, i}
			}
			if added[key] {
				continue
			}
			added[key] = true
			deg[i]++
			deg[c.v]++
			phi := r.Float64()
			b.AddUndirected(i, c.v, c.sim, phi)
		}
	}
	g := b.Build()
	g.SetDefaultLTWeights()
	return g
}
