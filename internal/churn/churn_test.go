package churn

import (
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
)

func TestGenerateCustomersBalanced(t *testing.T) {
	cs := GenerateCustomers(CustomerOptions{Customers: 1000, Seed: 1})
	churn := 0
	for i := range cs {
		if cs[i].Churned {
			churn++
		}
	}
	if churn != 500 {
		t.Fatalf("churners %d want 500", churn)
	}
}

func TestCustomersAttributeCorrelation(t *testing.T) {
	cs := GenerateCustomers(CustomerOptions{Customers: 4000, Seed: 2})
	var churnCompl, loyalCompl, churnTenure, loyalTenure float64
	var nc, nl float64
	for i := range cs {
		if cs[i].Churned {
			churnCompl += cs[i].Complaints
			churnTenure += cs[i].TenureMonths
			nc++
		} else {
			loyalCompl += cs[i].Complaints
			loyalTenure += cs[i].TenureMonths
			nl++
		}
	}
	if churnCompl/nc <= loyalCompl/nl {
		t.Fatal("churners should complain more")
	}
	if churnTenure/nc >= loyalTenure/nl {
		t.Fatal("churners should have shorter tenure")
	}
}

func TestSimilaritySelf(t *testing.T) {
	cs := GenerateCustomers(CustomerOptions{Customers: 10, Seed: 3})
	scale := featureScales(cs)
	if got := Similarity(&cs[0], &cs[0], &scale); got != 1 {
		t.Fatalf("self similarity %v", got)
	}
	// Symmetry.
	a := Similarity(&cs[0], &cs[1], &scale)
	b := Similarity(&cs[1], &cs[0], &scale)
	if a != b {
		t.Fatalf("asymmetric similarity %v vs %v", a, b)
	}
	if a < 0 || a > 1 {
		t.Fatalf("similarity %v out of range", a)
	}
}

func TestSimilarityGraphHomophily(t *testing.T) {
	cs := GenerateCustomers(CustomerOptions{Customers: 600, Seed: 4})
	g := SimilarityGraph(cs, SimilarityOptions{Threshold: 0.85, MaxDegree: 30, Seed: 5})
	if g.NumEdges() == 0 {
		t.Fatal("no edges induced")
	}
	same, diff := 0, 0
	for u := graph.NodeID(0); u < g.NumNodes(); u++ {
		for _, v := range g.OutNeighbors(u) {
			if cs[u].Churned == cs[v].Churned {
				same++
			} else {
				diff++
			}
		}
	}
	frac := float64(same) / float64(same+diff)
	if frac < 0.75 {
		t.Fatalf("homophily too weak: same-label edge fraction %v", frac)
	}
	// Degree cap respected (cap applies per node's own candidate list;
	// mutual picks may exceed it slightly, so allow 2x).
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		if int(g.OutDegree(v)) > 60 {
			t.Fatalf("degree cap ignored: node %d has degree %d", v, g.OutDegree(v))
		}
	}
}

func TestLabelPropagationAllKnownKeepsSigns(t *testing.T) {
	cs := GenerateCustomers(CustomerOptions{Customers: 500, Seed: 6})
	g := SimilarityGraph(cs, SimilarityOptions{Threshold: 0.85, MaxDegree: 20, Seed: 7})
	labels := make([]float64, len(cs))
	for i := range cs {
		labels[i] = cs[i].Label()
	}
	aff := PropagateLabels(g, labels, nil, LabelPropOptions{})
	agree := 0
	for i := range aff {
		if aff[i] < -1 || aff[i] > 1 {
			t.Fatalf("affinity %v out of range", aff[i])
		}
		if (aff[i] < 0) == cs[i].Churned {
			agree++
		}
	}
	frac := float64(agree) / float64(len(aff))
	if frac < 0.9 {
		t.Fatalf("propagation flipped too many labels: agreement %v", frac)
	}
}

func TestLabelPropagationSemiSupervisedAccuracy(t *testing.T) {
	// Hold out 30% of labels; homophily should let propagation predict
	// them well above chance — validating the paper's similarity
	// hypothesis on our synthetic table.
	cs := GenerateCustomers(CustomerOptions{Customers: 800, Seed: 8})
	g := SimilarityGraph(cs, SimilarityOptions{Threshold: 0.85, MaxDegree: 25, Seed: 9})
	labels := make([]float64, len(cs))
	known := make([]bool, len(cs))
	for i := range cs {
		labels[i] = cs[i].Label()
		known[i] = i%10 >= 3 // hold out 30%
	}
	aff := PropagateLabels(g, labels, known, LabelPropOptions{Alpha: 0.8})
	correct, total := 0, 0
	for i := range cs {
		if known[i] || aff[i] == 0 {
			continue
		}
		total++
		if (aff[i] < 0) == cs[i].Churned {
			correct++
		}
	}
	if total < 50 {
		t.Skip("too few connected held-out nodes")
	}
	acc := float64(correct) / float64(total)
	if acc < 0.75 {
		t.Fatalf("held-out churn prediction accuracy %v", acc)
	}
}

func TestLabelPropagationDisconnectedNeutral(t *testing.T) {
	// An isolated unlabeled node must stay neutral.
	b := graph.NewBuilder(3)
	b.AddUndirected(0, 1, 1, 0.5)
	g := b.Build()
	g.SetDefaultLTWeights()
	aff := PropagateLabels(g, []float64{1, 1, -1}, []bool{true, true, false}, LabelPropOptions{})
	if aff[2] != 0 {
		t.Fatalf("isolated node affinity %v want 0", aff[2])
	}
	if aff[0] <= 0 || aff[1] <= 0 {
		t.Fatalf("labeled affinities %v %v", aff[0], aff[1])
	}
}

func TestBuildChurnGraphEndToEnd(t *testing.T) {
	g, cs := BuildChurnGraph(
		CustomerOptions{Customers: 400, Seed: 10},
		SimilarityOptions{Threshold: 0.85, MaxDegree: 20, Seed: 11},
		LabelPropOptions{},
	)
	if g.NumNodes() != 400 || len(cs) != 400 {
		t.Fatalf("size %d/%d", g.NumNodes(), len(cs))
	}
	neg, pos := 0, 0
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		o := g.Opinion(v)
		if math.Abs(o) > 1 {
			t.Fatalf("opinion %v out of range", o)
		}
		if o < 0 {
			neg++
		} else if o > 0 {
			pos++
		}
	}
	// A balanced table must produce both orientations in bulk.
	if neg < 100 || pos < 100 {
		t.Fatalf("opinion polarity counts neg=%d pos=%d", neg, pos)
	}
}

func TestPropagateLabelsValidatesLength(t *testing.T) {
	g := graph.Path(3, 0.5, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PropagateLabels(g, []float64{1}, nil, LabelPropOptions{})
}
