// Package churn simulates the paper's customer-churn study (Sec. 4.1.2,
// PAKDD 2012 data-mining-competition dataset): a synthetic telecom
// customer table with churn-correlated attributes, attribute-similarity
// graph induction, and Zhu–Ghahramani-style label propagation that turns
// churn affinity into the OI model's opinion parameter. The original
// dataset is proprietary; DESIGN.md §3 documents the substitution.
package churn

import (
	"github.com/holisticim/holisticim/internal/rng"
)

// Customer is one profile row: billing, usage, service interactions and
// the churn label, mirroring the competition dataset's schema at a coarse
// grain.
type Customer struct {
	TenureMonths    float64 // months as a customer
	MonthlyBill     float64 // average bill
	UsageMinutes    float64 // voice usage
	DataUsageGB     float64 // data usage
	ServiceRequests float64 // support contacts in the last year
	Complaints      float64 // escalated complaints
	PaymentDelays   float64 // late payments
	Plan            int     // plan tier, 0..3
	Region          int     // service region, 0..5
	Churned         bool    // terminated service during the observation year
}

// CustomerOptions configures the generator.
type CustomerOptions struct {
	Customers int // rows to generate (paper works on a 34K balanced subset)
	// ChurnFraction is the fraction of churners (default 0.5 — the paper
	// balances the classes).
	ChurnFraction float64
	Seed          uint64
}

func (o *CustomerOptions) normalize() {
	if o.Customers <= 0 {
		o.Customers = 2000
	}
	if o.ChurnFraction <= 0 || o.ChurnFraction >= 1 {
		o.ChurnFraction = 0.5
	}
}

// GenerateCustomers samples a balanced customer table. A latent churn
// propensity drives both the label and the attributes (short tenure, many
// complaints, payment delays, shrinking usage), planting the "customers
// with similar attributes possess similar churn behavior" structure the
// paper's label-propagation hypothesis needs.
func GenerateCustomers(opts CustomerOptions) []Customer {
	opts.normalize()
	r := rng.New(opts.Seed)
	out := make([]Customer, opts.Customers)
	churners := int(float64(opts.Customers) * opts.ChurnFraction)
	for i := range out {
		churn := i < churners
		z := 0.0 // latent propensity: churners high, loyal low
		if churn {
			z = 0.8 + 0.4*r.NormFloat64()
		} else {
			z = -0.8 + 0.4*r.NormFloat64()
		}
		noise := func(scale float64) float64 { return scale * r.NormFloat64() }
		c := Customer{
			TenureMonths:    clampPos(48 - 30*z + noise(10)),
			MonthlyBill:     clampPos(55 + 10*z + noise(12)),
			UsageMinutes:    clampPos(420 - 180*z + noise(80)),
			DataUsageGB:     clampPos(9 - 4*z + noise(2.5)),
			ServiceRequests: clampPos(2.5 + 2.2*z + noise(1.0)),
			Complaints:      clampPos(1.0 + 1.4*z + noise(0.6)),
			PaymentDelays:   clampPos(1.2 + 1.5*z + noise(0.7)),
			Plan:            r.Intn(4),
			Region:          r.Intn(6),
			Churned:         churn,
		}
		out[i] = c
	}
	// Shuffle so labels are not position-coded.
	rng.Shuffle(r, out)
	return out
}

func clampPos(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}

// numericFeatures returns the row's numeric attributes in a fixed order
// for similarity computation.
func (c *Customer) numericFeatures() [7]float64 {
	return [7]float64{
		c.TenureMonths, c.MonthlyBill, c.UsageMinutes, c.DataUsageGB,
		c.ServiceRequests, c.Complaints, c.PaymentDelays,
	}
}

// Label returns the propagation label: −1 for churners, +1 for loyal
// customers (the paper's assignment).
func (c *Customer) Label() float64 {
	if c.Churned {
		return -1
	}
	return 1
}
