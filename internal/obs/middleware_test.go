package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddlewareRequestID(t *testing.T) {
	var seen string
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestID(r.Context())
		w.WriteHeader(http.StatusOK)
	})
	h := HTTPConfig{}.Middleware(next)

	// No inbound id: one is generated, set on the context and echoed.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if seen == "" {
		t.Fatalf("no request id on the handler context")
	}
	if got := rec.Header().Get(RequestIDHeader); got != seen {
		t.Errorf("echoed id %q != context id %q", got, seen)
	}

	// An inbound id (the router's) is trusted and propagated unchanged.
	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	req.Header.Set(RequestIDHeader, "router-rid-1")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "router-rid-1" {
		t.Errorf("inbound id not propagated: context carries %q", seen)
	}
	if got := rec.Header().Get(RequestIDHeader); got != "router-rid-1" {
		t.Errorf("inbound id not echoed: header carries %q", got)
	}
}

func TestMiddlewarePerRouteCounters(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/things/{id}", func(w http.ResponseWriter, r *http.Request) {})
	mux.HandleFunc("POST /v1/things", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
	})
	h := HTTPConfig{
		Registry: reg,
		Route: func(r *http.Request) string {
			_, pattern := mux.Handler(r)
			if _, path, ok := strings.Cut(pattern, " "); ok {
				return path
			}
			return pattern
		},
	}.Middleware(mux)

	for i := 0; i < 3; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/things/42", nil))
	}
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v1/things", nil))

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`http_requests_total{route="/v1/things/{id}",method="GET",code="200"} 3`,
		`http_requests_total{route="/v1/things",method="POST",code="201"} 1`,
		`http_request_duration_seconds_count{route="/v1/things/{id}",code="200"} 3`,
		`http_requests_in_flight 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape is missing %q\n%s", want, out)
		}
	}
}

func TestMiddlewareLogLevels(t *testing.T) {
	var buf bytes.Buffer
	logger := NewLogger(&buf, "test", slog.LevelDebug)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ok", func(w http.ResponseWriter, r *http.Request) {})
	mux.HandleFunc("GET /missing", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	})
	mux.HandleFunc("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	h := HTTPConfig{Logger: logger}.Middleware(mux)

	for _, path := range []string{"/ok", "/missing", "/boom"} {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, path, nil))
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d log lines, want 3:\n%s", len(lines), buf.String())
	}
	for i, want := range []struct{ level, frag string }{
		{"level=INFO", "status=200"},
		{"level=DEBUG", "code=not_found"},
		{"level=WARN", "code=internal"},
	} {
		if !strings.Contains(lines[i], want.level) || !strings.Contains(lines[i], want.frag) {
			t.Errorf("line %d = %q, want level %s with %s", i, lines[i], want.level, want.frag)
		}
		if !strings.Contains(lines[i], "request_id=") || !strings.Contains(lines[i], "component=test") {
			t.Errorf("line %d = %q missing request_id/component keys", i, lines[i])
		}
	}
}
