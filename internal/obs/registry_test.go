package obs

import (
	"bufio"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestExpositionGolden locks the exact text a small registry renders:
// families sorted by name, HELP/TYPE comments, labeled series sorted by
// label values, histograms with cumulative buckets, +Inf, _sum, _count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "A counter.").Add(3)
	g := r.Gauge("a_gauge", "A gauge.")
	g.Set(5)
	v := r.CounterVec("c_requests_total", "Labeled counter.", "route", "code")
	v.With("/v1/select", "200").Add(2)
	v.With("/healthz", "200").Inc()
	h := r.Histogram("d_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(7)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP a_gauge A gauge.
# TYPE a_gauge gauge
a_gauge 5
# HELP b_total A counter.
# TYPE b_total counter
b_total 3
# HELP c_requests_total Labeled counter.
# TYPE c_requests_total counter
c_requests_total{route="/healthz",code="200"} 1
c_requests_total{route="/v1/select",code="200"} 2
# HELP d_seconds A histogram.
# TYPE d_seconds histogram
d_seconds_bucket{le="0.1"} 1
d_seconds_bucket{le="1"} 2
d_seconds_bucket{le="+Inf"} 3
d_seconds_sum 7.55
d_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// parseExposition is a minimal scrape parser: it validates every line is
// either a well-formed comment or `name{labels} value` and returns the
// sample values by series line. A round-trip through it proves the
// output is machine-readable, not just eyeball-readable.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		l := sc.Text()
		if l == "" {
			t.Fatalf("line %d: blank line in exposition", line)
		}
		if strings.HasPrefix(l, "#") {
			if !strings.HasPrefix(l, "# HELP ") && !strings.HasPrefix(l, "# TYPE ") {
				t.Fatalf("line %d: malformed comment %q", line, l)
			}
			continue
		}
		sp := strings.LastIndexByte(l, ' ')
		if sp <= 0 {
			t.Fatalf("line %d: no sample value in %q", line, l)
		}
		series, valueText := l[:sp], l[sp+1:]
		v, err := strconv.ParseFloat(valueText, 64)
		if err != nil {
			t.Fatalf("line %d: bad sample value %q: %v", line, valueText, err)
		}
		if open := strings.IndexByte(series, '{'); open >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unclosed label braces in %q", line, series)
			}
			for _, pair := range strings.Split(series[open+1:len(series)-1], ",") {
				name, val, ok := strings.Cut(pair, "=")
				if !ok || name == "" || len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
					t.Fatalf("line %d: malformed label pair %q", line, pair)
				}
			}
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("line %d: duplicate series %q", line, series)
		}
		samples[series] = v
	}
	return samples
}

// TestScrapeRoundTrip serves /metrics, parses the scrape and checks the
// parsed samples match the registry's live values — including a
// scrape-time func metric.
func TestScrapeRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_hits_total", "hits").Add(42)
	r.GaugeFunc("rt_live", "live value", func() float64 { return 17 })
	h := r.HistogramVec("rt_lat_seconds", "latency", []float64{0.5}, "route")
	h.With(`tricky"route\`).Observe(0.25)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Errorf("Content-Type = %q, want %q", ct, ContentType)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text() + "\n")
	}
	samples := parseExposition(t, sb.String())

	checks := map[string]float64{
		"rt_hits_total": 42,
		"rt_live":       17,
		`rt_lat_seconds_bucket{route="tricky\"route\\",le="0.5"}`:  1,
		`rt_lat_seconds_bucket{route="tricky\"route\\",le="+Inf"}`: 1,
		`rt_lat_seconds_count{route="tricky\"route\\"}`:            1,
	}
	for series, want := range checks {
		got, ok := samples[series]
		if !ok {
			t.Errorf("series %q missing from scrape; have %d series", series, len(samples))
			continue
		}
		if got != want {
			t.Errorf("series %q = %v, want %v", series, got, want)
		}
	}
}

// TestRegistryIdempotentAndPanics: re-registering the same (name, kind,
// labels) returns the same family; mismatches are programming errors.
func TestRegistryIdempotentAndPanics(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("same_total", "one")
	c2 := r.Counter("same_total", "one")
	c1.Inc()
	if c2.Value() != 1 {
		t.Errorf("re-registered counter is a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("kind mismatch did not panic")
		}
	}()
	r.Gauge("same_total", "now a gauge")
}

// TestFuncVecExposition: labeled scrape-time families render one line
// per registered series, values read at scrape time, sorted by label
// values like every stateful family.
func TestFuncVecExposition(t *testing.T) {
	r := NewRegistry()
	depth := map[string]float64{"interactive": 0, "batch": 7}
	v := r.GaugeFuncVec("fv_queue_depth", "Queued jobs by class.", "priority")
	for _, p := range []string{"interactive", "batch"} {
		p := p
		v.Register(func() float64 { return depth[p] }, p)
	}
	cv := r.CounterFuncVec("fv_shed_total", "Shed by class and reason.", "priority", "reason")
	cv.Register(func() float64 { return 3 }, "batch", "queue_full")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP fv_queue_depth Queued jobs by class.
# TYPE fv_queue_depth gauge
fv_queue_depth{priority="batch"} 7
fv_queue_depth{priority="interactive"} 0
# HELP fv_shed_total Shed by class and reason.
# TYPE fv_shed_total counter
fv_shed_total{priority="batch",reason="queue_full"} 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Values are live: the next scrape sees the new depth without any
	// re-registration.
	depth["batch"] = 2
	sb.Reset()
	_ = r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `fv_queue_depth{priority="batch"} 2`) {
		t.Errorf("scrape did not read live value:\n%s", sb.String())
	}
	// Re-registering a series replaces its callback instead of duplicating
	// the series.
	cv.Register(func() float64 { return 9 }, "batch", "queue_full")
	sb.Reset()
	_ = r.WritePrometheus(&sb)
	if strings.Count(sb.String(), `fv_shed_total{priority="batch",reason="queue_full"}`) != 1 {
		t.Errorf("re-registration duplicated the series:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `fv_shed_total{priority="batch",reason="queue_full"} 9`) {
		t.Errorf("re-registration kept the old callback:\n%s", sb.String())
	}
	// parseExposition round-trip: the new lines are machine-readable.
	parseExposition(t, sb.String())
}
