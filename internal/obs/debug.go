package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns a mux serving net/http/pprof under /debug/pprof/
// — wired explicitly instead of importing the package for its
// DefaultServeMux side effect, so profiling only exists on the separate
// listener the -debug-addr flag opens, never on the serving port.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
