package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets in seconds. They extend
// below Prometheus' classic defaults because the sketch fast path
// serves in fractions of a millisecond — the paper's whole tail-latency
// claim lives down there.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// normalizeBuckets sorts and deduplicates upper bounds, dropping a
// trailing +Inf (the implicit overflow bucket always exists).
func normalizeBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	out := append([]float64(nil), buckets...)
	sort.Float64s(out)
	dedup := out[:0]
	for _, b := range out {
		if math.IsInf(b, +1) {
			continue
		}
		if len(dedup) > 0 && dedup[len(dedup)-1] == b {
			continue
		}
		dedup = append(dedup, b)
	}
	return dedup
}

// Histogram is a fixed-bucket histogram safe for concurrent Observe:
// per-bucket atomic counts plus a CAS-maintained float64 sum. Buckets
// are upper bounds; observations beyond the last bound land in the
// implicit +Inf bucket.
type Histogram struct {
	upper   []float64      // sorted finite upper bounds
	counts  []atomic.Int64 // len(upper)+1; last is the +Inf bucket
	sumBits atomic.Uint64  // float64 bits of the running sum
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Int64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// HistogramSnapshot is a point-in-time copy of a histogram: per-bucket
// (non-cumulative) counts aligned with Upper, the +Inf overflow count
// in Counts[len(Upper)], the running sum and the total count.
type HistogramSnapshot struct {
	Upper  []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// Snapshot copies the histogram's current state. Concurrent Observes
// may land between bucket reads; each observation is still counted
// exactly once in some later snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Upper: h.upper, Counts: make([]int64, len(h.counts))}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts
// by linear interpolation within the bucket holding the target rank —
// the same estimate PromQL's histogram_quantile computes. Observations
// in the +Inf bucket clamp to the largest finite bound. Returns 0 when
// the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Upper) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, upper := range s.Upper {
		prev := cum
		cum += s.Counts[i]
		if float64(cum) >= rank {
			lower := 0.0
			if i > 0 {
				lower = s.Upper[i-1]
			}
			if s.Counts[i] == 0 {
				return upper
			}
			frac := (rank - float64(prev)) / float64(s.Counts[i])
			return lower + (upper-lower)*frac
		}
	}
	return s.Upper[len(s.Upper)-1]
}

// Quantile snapshots the histogram and estimates the q-quantile.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }
