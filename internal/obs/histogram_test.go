package obs

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramConcurrent hammers one histogram from many goroutines
// (run under -race) and checks no observation is lost and the sum is
// exact — every goroutine observes values whose total is known.
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01, 0.1, 1})
	const goroutines = 16
	const perG = 2000
	values := []float64{0.0005, 0.005, 0.05, 0.5, 5} // one per bucket incl. +Inf
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(values[i%len(values)])
			}
		}()
	}
	wg.Wait()

	s := h.Snapshot()
	if want := int64(goroutines * perG); s.Count != want {
		t.Errorf("Count = %d, want %d", s.Count, want)
	}
	perValue := int64(goroutines * perG / len(values))
	for i, c := range s.Counts {
		if c != perValue {
			t.Errorf("bucket %d count = %d, want %d", i, c, perValue)
		}
	}
	var wantSum float64
	for _, v := range values {
		wantSum += v * float64(perValue)
	}
	if math.Abs(s.Sum-wantSum) > 1e-6*wantSum {
		t.Errorf("Sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram(normalizeBuckets([]float64{1, 2, 4, 8}))
	// 100 observations uniform in (0,1]: p50 should interpolate to ~0.5
	// within the first bucket, p100 to the bucket bound.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 0.01 {
		t.Errorf("p50 = %v, want ~0.5", got)
	}
	if got := h.Quantile(1); got != 1 {
		t.Errorf("p100 = %v, want 1", got)
	}

	// Observations beyond the last bound clamp to it.
	h2 := newHistogram(normalizeBuckets([]float64{1, 2}))
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("overflow quantile = %v, want clamp to 2", got)
	}

	// Empty histogram answers 0, not NaN.
	h3 := newHistogram(normalizeBuckets(nil))
	if got := h3.Quantile(0.9); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestNormalizeBuckets(t *testing.T) {
	got := normalizeBuckets([]float64{5, 1, 5, math.Inf(1), 2})
	want := []float64{1, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("normalizeBuckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("normalizeBuckets = %v, want %v", got, want)
		}
	}
	if def := normalizeBuckets(nil); len(def) != len(DefBuckets) {
		t.Errorf("nil buckets: got %d bounds, want DefBuckets (%d)", len(def), len(DefBuckets))
	}
}
