package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
)

// RequestIDHeader carries the per-request correlation id: generated at
// the outermost hop (the router, or the replica for direct traffic),
// propagated on proxied upstream requests, echoed on every response and
// stamped into the error envelope and every request log line.
const RequestIDHeader = "X-Request-ID"

type ridKey struct{}

// WithRequestID returns ctx carrying the request id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey{}, id)
}

// RequestID returns the request id carried by ctx ("" when absent).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

var ridFallback atomic.Uint64

// NewRequestID returns a fresh 16-hex-char request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("rid-%016x", ridFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// NewLogger builds the shared structured logger: logfmt-style key=value
// output on w (stderr when nil) at the given level, every line keyed
// with the component that emitted it.
func NewLogger(w io.Writer, component string, level slog.Leveler) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(h).With(slog.String("component", component))
}

// Nop returns a logger that discards everything — the default for
// embedded servers and tests that pass no logger.
func Nop() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{
		Level: slog.Level(127), // above every real level: nothing is enabled
	}))
}

// ParseLevel maps a -log-level flag value onto a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return slog.LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// ErrorCode maps an HTTP status onto the stable machine-readable code
// of the uniform error envelope — the single mapping the service layer,
// the cluster router and the request logger all share. Statuses below
// 400 map to "".
func ErrorCode(status int) string {
	if status < http.StatusBadRequest {
		return ""
	}
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusForbidden:
		return "forbidden"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusConflict:
		return "conflict"
	case http.StatusTooManyRequests:
		return "too_many_requests"
	case http.StatusBadGateway, http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}
