package obs

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// HTTPConfig configures the shared HTTP middleware: request metrics,
// request-id assignment/propagation and structured request logging.
type HTTPConfig struct {
	// Logger receives one structured line per completed request (nil
	// disables request logging). Successful requests log at info —
	// except Quiet routes (health/metrics probes), which drop to debug —
	// 4xx at debug, and 5xx plus the load-shedding statuses (429, 503)
	// at warn, each line carrying the route, status, envelope code and
	// request id.
	Logger *slog.Logger
	// Registry receives http_requests_total{route,method,code},
	// http_request_duration_seconds{route,code} and the
	// http_requests_in_flight gauge (nil disables metrics).
	Registry *Registry
	// Route maps a request to its route label — typically the mux
	// pattern's path, so label cardinality stays bounded by the routing
	// table instead of the URL space. Unmatched requests are labeled
	// "unmatched".
	Route func(*http.Request) string
	// Quiet lists routes whose successful requests log at debug instead
	// of info (scrape and probe endpoints).
	Quiet []string
}

// statusWriter captures the response status while passing Flush through
// so streamed responses (NDJSON/SSE) keep flushing.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Middleware wraps next with request-id handling, request metrics and
// structured request logging. An inbound X-Request-ID is trusted and
// propagated (that is how a replica inherits the router's id); absent
// one, a fresh id is generated. Either way the id rides the request
// context, the response header, and — via writeError reading the header
// — the error envelope.
func (c HTTPConfig) Middleware(next http.Handler) http.Handler {
	var (
		reqs     *CounterVec
		dur      *HistogramVec
		inflight *Gauge
	)
	if c.Registry != nil {
		reqs = c.Registry.CounterVec("http_requests_total",
			"HTTP requests served, by route, method and status code.",
			"route", "method", "code")
		dur = c.Registry.HistogramVec("http_request_duration_seconds",
			"HTTP request latency in seconds, by route and status code.",
			DefBuckets, "route", "code")
		inflight = c.Registry.Gauge("http_requests_in_flight",
			"HTTP requests currently being served.")
	}
	quiet := make(map[string]bool, len(c.Quiet))
	for _, q := range c.Quiet {
		quiet[q] = true
	}

	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get(RequestIDHeader)
		if rid == "" {
			rid = NewRequestID()
		}
		ctx := WithRequestID(r.Context(), rid)
		r = r.WithContext(ctx)
		w.Header().Set(RequestIDHeader, rid)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if inflight != nil {
			inflight.Inc()
		}
		next.ServeHTTP(sw, r)
		if inflight != nil {
			inflight.Dec()
		}

		route := "unmatched"
		if c.Route != nil {
			if p := c.Route(r); p != "" {
				route = p
			}
		}
		elapsed := time.Since(start)
		code := strconv.Itoa(sw.status)
		if reqs != nil {
			reqs.With(route, r.Method, code).Inc()
			dur.With(route, code).Observe(elapsed.Seconds())
		}
		if c.Logger == nil {
			return
		}
		level := slog.LevelInfo
		switch {
		case sw.status >= 500 || sw.status == http.StatusTooManyRequests:
			level = slog.LevelWarn
		case sw.status >= 400 || quiet[route]:
			level = slog.LevelDebug
		}
		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Float64("duration_ms", float64(elapsed)/float64(time.Millisecond)),
			slog.String("request_id", rid),
		}
		if ec := ErrorCode(sw.status); ec != "" {
			attrs = append(attrs, slog.String("code", ec))
		}
		c.Logger.LogAttrs(ctx, level, "request", attrs...)
	})
}
