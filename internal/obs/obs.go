// Package obs is the dependency-free observability layer shared by every
// serving binary: a metrics registry (atomic counters, gauges and
// fixed-bucket histograms) that renders the Prometheus text exposition
// format 0.0.4 on GET /metrics, structured request logging on log/slog
// with per-request IDs propagated router → replica, and an optional
// net/http/pprof debug mux.
//
// The registry deliberately implements only what the serving layer
// needs — no protobuf exposition, no summaries, no push gateways — so
// the module stays free of third-party dependencies. Output is fully
// deterministic (families sorted by name, series by label values),
// which makes golden tests of a scrape possible.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type in the exposition output.
type Kind string

// Exposition metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (must be non-negative for the exposition to stay honest).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// family is one named metric family: a help string, a kind, the label
// names every series shares, and the live series keyed by their joined
// label values. Func series are evaluated at scrape time.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string

	mu     sync.Mutex
	series map[string]any // *Counter | *Gauge | *Histogram, keyed by label key
	keys   []string       // series keys in insertion order (sorted at render)
	fn     func() float64 // scrape-time callback families (no labels)

	buckets []float64 // histogram families: shared upper bounds
}

// labelKey joins label values into the series map key. The unit
// separator cannot appear in sane label values, so keys never collide.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

// Registry holds metric families and renders them as Prometheus text.
// All methods are safe for concurrent use; registration methods are
// idempotent — asking for an existing (name, kind, labels) returns the
// already-registered family's handles.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the family for name, creating it on first use, and
// panics on a kind or label-arity mismatch — that is a programming
// error (two call sites disagreeing about one metric), not a runtime
// condition to limp through.
func (r *Registry) lookup(name, help string, kind Kind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, labels: labels,
			series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
			name, kind, labels, f.kind, f.labels))
	}
	return f
}

// get returns the series for values, creating it with mk on first use.
func (f *family) get(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = mk()
		f.series[key] = s
		f.keys = append(f.keys, key)
	}
	return s
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, KindCounter, nil)
	return f.get(nil, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, KindGauge, nil)
	return f.get(nil, func() any { return &Gauge{} }).(*Gauge)
}

// CounterFunc registers a counter whose value is read by calling fn at
// scrape time — the bridge for counters the serving layer already
// tracks in its own atomics.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, KindCounter, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// GaugeFunc registers a gauge read by calling fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, KindGauge, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// funcSeries is one series of a labeled scrape-time family: its value
// is fn() at render time. Mutated only under its family's mu.
type funcSeries struct{ fn func() float64 }

// FuncVec is a labeled metric family whose series are read by calling
// per-series callbacks at scrape time — the labeled sibling of
// CounterFunc/GaugeFunc, bridging counters the serving layer already
// tracks per class (queue depth by priority, shed counts by reason)
// without duplicating state.
type FuncVec struct{ f *family }

// CounterFuncVec registers (or finds) a labeled scrape-time counter
// family.
func (r *Registry) CounterFuncVec(name, help string, labels ...string) *FuncVec {
	return &FuncVec{f: r.lookup(name, help, KindCounter, labels)}
}

// GaugeFuncVec registers (or finds) a labeled scrape-time gauge family.
func (r *Registry) GaugeFuncVec(name, help string, labels ...string) *FuncVec {
	return &FuncVec{f: r.lookup(name, help, KindGauge, labels)}
}

// Register binds the series for the given label values to fn, replacing
// any previous binding (idempotent re-registration, like the unlabeled
// func metrics).
func (v *FuncVec) Register(fn func() float64, values ...string) {
	if len(values) != len(v.f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			v.f.name, len(v.f.labels), len(values)))
	}
	key := labelKey(values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if s, ok := v.f.series[key]; ok {
		s.(*funcSeries).fn = fn
		return
	}
	v.f.series[key] = &funcSeries{fn: fn}
	v.f.keys = append(v.f.keys, key)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, KindCounter, labels)}
}

// With returns the counter for the given label values (created on
// first use).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, KindGauge, labels)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or finds) an unlabeled histogram with the given
// bucket upper bounds (nil picks DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.lookup(name, help, KindHistogram, nil)
	if f.buckets == nil {
		f.buckets = normalizeBuckets(buckets)
	}
	return f.get(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with labels; every series shares
// the family's buckets.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.lookup(name, help, KindHistogram, labels)
	if f.buckets == nil {
		f.buckets = normalizeBuckets(buckets)
	}
	return &HistogramVec{f: f}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// formatValue renders a sample value the way Prometheus expects:
// shortest representation that round-trips.
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabel escapes a label value for the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP string for the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// labelPairs renders `name="value"` pairs (no braces) for a series.
func labelPairs(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		// escapeLabel already produces the quoted form's content; %q here
		// would escape the escapes.
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// writeSeries renders one series' sample lines.
func writeSeries(w io.Writer, f *family, pairs string, s any) error {
	braced := ""
	if pairs != "" {
		braced = "{" + pairs + "}"
	}
	switch m := s.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, braced, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, braced, m.Value())
		return err
	case *funcSeries:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, braced, formatValue(m.fn()))
		return err
	case *Histogram:
		snap := m.Snapshot()
		cum := int64(0)
		for i, upper := range snap.Upper {
			cum += snap.Counts[i]
			le := formatValue(upper)
			sep := pairs
			if sep != "" {
				sep += ","
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", f.name, sep, le, cum); err != nil {
				return err
			}
		}
		cum += snap.Counts[len(snap.Upper)]
		sep := pairs
		if sep != "" {
			sep += ","
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", f.name, sep, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced0(pairs), formatValue(snap.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced0(pairs), cum)
		return err
	}
	return nil
}

// braced0 wraps non-empty label pairs in braces for _sum/_count lines.
// (The suffix goes on the name, before the braces.)
func braced0(pairs string) string {
	if pairs == "" {
		return ""
	}
	return "{" + pairs + "}"
}

// WritePrometheus renders every family in text exposition format 0.0.4,
// families sorted by name and series by label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	for _, n := range names {
		f := fams[n]
		f.mu.Lock()
		keys := append([]string(nil), f.keys...)
		series := make(map[string]any, len(keys))
		for _, k := range keys {
			series[k] = f.series[k]
		}
		fn := f.fn
		f.mu.Unlock()
		sort.Strings(keys)

		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		if fn != nil {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, formatValue(fn())); err != nil {
				return err
			}
			continue
		}
		for _, k := range keys {
			var values []string
			if k != "" || len(f.labels) > 0 {
				values = strings.Split(k, "\x1f")
			}
			if err := writeSeries(w, f, labelPairs(f.labels, values), series[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ContentType is the Content-Type of the text exposition format 0.0.4.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry as GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}
