package greedy

import (
	"container/heap"
	"context"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/im"
)

// CELFPP implements CELF++ (Goyal, Lu, Lakshmanan, WWW'11): lazy-forward
// greedy exploiting submodularity, extended with a second look-ahead
// marginal gain. Each heap entry u carries
//
//	mg1      — marginal gain of u w.r.t. the current seed set S;
//	prevBest — the best candidate seen when mg1 was computed;
//	mg2      — marginal gain of u w.r.t. S ∪ {prevBest};
//	flag     — |S| at the time mg1 was computed.
//
// When u resurfaces and its prevBest became the last chosen seed, mg1 :=
// mg2 without any new simulation — the CELF++ saving over plain CELF.
// The paper's Appendix C notes the two engineering optimizations the
// authors applied (lazy forward + skipping nodes that can no longer win);
// the heap order provides both here.
type CELFPP struct {
	obj Objective
}

// NewCELFPP returns the CELF++ selector. The objective should be monotone
// submodular (σ(S) under IC/WC/LT); lazy evaluation is heuristic
// otherwise.
func NewCELFPP(obj Objective) *CELFPP { return &CELFPP{obj: obj} }

// Name implements im.Selector.
func (c *CELFPP) Name() string { return "CELF++[" + c.obj.Name() + "]" }

type celfNode struct {
	v        graph.NodeID
	mg1      float64
	mg2      float64
	prevBest graph.NodeID // -1 when none
	flag     int
	index    int // heap bookkeeping
}

type celfHeap []*celfNode

func (h celfHeap) Len() int           { return len(h) }
func (h celfHeap) Less(i, j int) bool { return h[i].mg1 > h[j].mg1 }
func (h celfHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *celfHeap) Push(x interface{}) {
	n := x.(*celfNode)
	n.index = len(*h)
	*h = append(*h, n)
}
func (h *celfHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Select implements im.Selector. Cancellation is checked per candidate in
// the O(n) initial evaluation pass and per heap step in the lazy-forward
// loop — each checkpoint bounds the wait by a handful of Monte-Carlo
// objective evaluations.
func (c *CELFPP) Select(ctx context.Context, k int) (im.Result, error) {
	g := c.obj.Graph()
	n := g.NumNodes()
	res := im.Result{Algorithm: c.Name()}
	if err := im.CheckK(k, n); err != nil {
		return res, err
	}
	tr := im.StartTracker(ctx)

	// Initial pass: mg1(u) = σ({u}); curBest tracked to prime mg2.
	h := make(celfHeap, 0, n)
	var curBest *celfNode
	for v := graph.NodeID(0); v < n; v++ {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		node := &celfNode{v: v, prevBest: -1, flag: 0}
		node.mg1 = c.obj.Value(ctx, []graph.NodeID{v})
		res.AddMetric("evaluations", 1)
		if curBest != nil {
			node.prevBest = curBest.v
			// mg2 = σ({curBest, u}) − σ({curBest})
			node.mg2 = c.obj.Value(ctx, []graph.NodeID{curBest.v, v}) - curBest.mg1
			res.AddMetric("evaluations", 1)
		} else {
			node.mg2 = node.mg1
		}
		h = append(h, node)
		if curBest == nil || node.mg1 > curBest.mg1 {
			curBest = node
		}
	}
	heap.Init(&h)

	seeds := make([]graph.NodeID, 0, k)
	seedValue := 0.0 // σ(S), maintained incrementally
	lastSeed := graph.NodeID(-1)
	var lastSeedValuePlusBest float64 // σ(S ∪ {curBest}) cache for mg2
	var curBestV graph.NodeID = -1
	curBestMG1 := 0.0
	haveBestCache := false

	for len(seeds) < k && h.Len() > 0 {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		u := h[0]
		if u.flag == len(seeds) {
			// Marginal gain current — u is the winner.
			heap.Pop(&h)
			seeds = append(seeds, u.v)
			seedValue += u.mg1
			lastSeed = u.v
			curBestV = -1
			haveBestCache = false
			tr.Seed(&res, u.v)
			continue
		}
		if u.prevBest == lastSeed && u.flag == len(seeds)-1 {
			// CELF++ shortcut: mg2 was computed against exactly the current
			// seed set.
			u.mg1 = u.mg2
		} else {
			val := c.obj.Value(ctx, append(seeds, u.v))
			res.AddMetric("evaluations", 1)
			u.mg1 = val - seedValue
			u.prevBest = curBestV
			if curBestV >= 0 {
				if !haveBestCache {
					lastSeedValuePlusBest = c.obj.Value(ctx, append(seeds, curBestV))
					res.AddMetric("evaluations", 1)
					haveBestCache = true
				}
				val2 := c.obj.Value(ctx, append(append(seeds, curBestV), u.v))
				res.AddMetric("evaluations", 1)
				u.mg2 = val2 - lastSeedValuePlusBest
			} else {
				u.mg2 = u.mg1
			}
		}
		u.flag = len(seeds)
		if curBestV < 0 || u.mg1 > curBestMG1 {
			curBestV = u.v
			curBestMG1 = u.mg1
			haveBestCache = false
		}
		heap.Fix(&h, u.index)
	}
	tr.Finish(&res)
	res.AddMetric("objective", seedValue)
	return res, nil
}

var _ im.Selector = (*CELFPP)(nil)
