package greedy

import (
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func TestStaticGreedyPicksHub(t *testing.T) {
	g := graph.Star(20, 1, 1)
	res := runSelect(NewStaticGreedy(g, 20, 3), 1)
	if res.Seeds[0] != 0 {
		t.Fatalf("picked %v, want hub", res.Seeds)
	}
	if res.Metrics["snapshots"] != 20 {
		t.Fatalf("metrics %v", res.Metrics)
	}
}

func TestStaticGreedyMatchesExactRanking(t *testing.T) {
	// On a tiny graph, StaticGreedy's first seed must be the node with
	// the highest exact single-seed spread (with enough snapshots).
	g := graph.ErdosRenyi(7, 12, rng.New(9))
	g.SetUniformProb(0.4)
	best := graph.NodeID(-1)
	bestSpread := -1.0
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		sp := diffusion.ExactICSpread(g, []graph.NodeID{v})
		if sp > bestSpread {
			bestSpread = sp
			best = v
		}
	}
	res := runSelect(NewStaticGreedy(g, 20000, 5), 1)
	got := diffusion.ExactICSpread(g, []graph.NodeID{res.Seeds[0]})
	if math.Abs(got-bestSpread) > 0.05 {
		t.Fatalf("picked %d (σ=%v), exact best %d (σ=%v)", res.Seeds[0], got, best, bestSpread)
	}
}

func TestStaticGreedyQuality(t *testing.T) {
	g := graph.ErdosRenyi(200, 1400, rng.New(13))
	g.SetUniformProb(0.1)
	res := runSelect(NewStaticGreedy(g, 150, 7), 5)
	if len(res.Seeds) != 5 {
		t.Fatalf("seeds %v", res.Seeds)
	}
	m := diffusion.NewIC(g)
	est := diffusion.MonteCarlo(m, res.Seeds, diffusion.MCOptions{Runs: 4000, Seed: 11})
	deg := graph.TopKByOutDegree(g, 5)
	estDeg := diffusion.MonteCarlo(m, deg, diffusion.MCOptions{Runs: 4000, Seed: 11})
	if est.Spread < 0.9*estDeg.Spread {
		t.Fatalf("StaticGreedy %v below degree %v", est.Spread, estDeg.Spread)
	}
}

func TestStaticGreedyDeterminism(t *testing.T) {
	g := graph.ErdosRenyi(100, 600, rng.New(17))
	g.SetUniformProb(0.15)
	a := runSelect(NewStaticGreedy(g, 50, 21), 4).Seeds
	b := runSelect(NewStaticGreedy(g, 50, 21), 4).Seeds
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}

func TestStaticGreedyDisjointStars(t *testing.T) {
	b := graph.NewBuilder(12)
	for v := graph.NodeID(1); v <= 5; v++ {
		b.AddEdgeP(0, v, 1, 1)
	}
	for v := graph.NodeID(7); v <= 11; v++ {
		b.AddEdgeP(6, v, 1, 1)
	}
	g := b.Build()
	res := runSelect(NewStaticGreedy(g, 10, 3), 2)
	got := map[graph.NodeID]bool{res.Seeds[0]: true, res.Seeds[1]: true}
	if !got[0] || !got[6] {
		t.Fatalf("seeds %v want both centers", res.Seeds)
	}
}
