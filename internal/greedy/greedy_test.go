package greedy

import (
	"context"
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func TestGreedyPicksObviousHub(t *testing.T) {
	// Star with p=1: the center dominates every other choice.
	g := graph.Star(10, 1, 1)
	obj := NewSpreadObjective(diffusion.NewIC(g), 100, 7)
	res := runSelect(NewGreedy(obj), 1)
	if res.Seeds[0] != 0 {
		t.Fatalf("greedy picked %v, want center 0", res.Seeds)
	}
	if res.Metrics["evaluations"] != 10 {
		t.Fatalf("evaluations %v want 10", res.Metrics["evaluations"])
	}
}

func TestGreedyTwoComponents(t *testing.T) {
	// Two disjoint deterministic stars: greedy k=2 takes both centers.
	b := graph.NewBuilder(10)
	for v := graph.NodeID(1); v <= 4; v++ {
		b.AddEdgeP(0, v, 1, 1)
	}
	for v := graph.NodeID(6); v <= 9; v++ {
		b.AddEdgeP(5, v, 1, 1)
	}
	g := b.Build()
	obj := NewSpreadObjective(diffusion.NewIC(g), 50, 3)
	res := runSelect(NewGreedy(obj), 2)
	got := map[graph.NodeID]bool{res.Seeds[0]: true, res.Seeds[1]: true}
	if !got[0] || !got[5] {
		t.Fatalf("greedy seeds %v, want centers {0,5}", res.Seeds)
	}
}

func TestCELFPPMatchesGreedySeeds(t *testing.T) {
	// With a shared deterministic objective, CELF++ must return the same
	// seed set (possibly reordered within exact ties) as exhaustive greedy.
	g := graph.ErdosRenyi(60, 300, rng.New(5))
	g.SetUniformProb(0.2)
	obj := NewSpreadObjective(diffusion.NewIC(g), 600, 11)
	gr := runSelect(NewGreedy(obj), 4)
	cp := runSelect(NewCELFPP(obj), 4)
	want := map[graph.NodeID]bool{}
	for _, s := range gr.Seeds {
		want[s] = true
	}
	for _, s := range cp.Seeds {
		if !want[s] {
			t.Fatalf("CELF++ %v vs GREEDY %v", cp.Seeds, gr.Seeds)
		}
	}
}

func TestCELFPPFewerEvaluations(t *testing.T) {
	g := graph.ErdosRenyi(80, 400, rng.New(9))
	g.SetUniformProb(0.15)
	obj := NewSpreadObjective(diffusion.NewIC(g), 200, 13)
	gr := runSelect(NewGreedy(obj), 5)
	cp := runSelect(NewCELFPP(obj), 5)
	if cp.Metrics["evaluations"] >= gr.Metrics["evaluations"] {
		t.Fatalf("CELF++ %v evals vs greedy %v — lazy forward saved nothing",
			cp.Metrics["evaluations"], gr.Metrics["evaluations"])
	}
}

func TestCELFPPSpreadQuality(t *testing.T) {
	// CELF++'s selected set must achieve (statistically) the same spread
	// as greedy's.
	g := graph.ErdosRenyi(100, 700, rng.New(17))
	g.SetUniformProb(0.1)
	obj := NewSpreadObjective(diffusion.NewIC(g), 400, 19)
	gr := runSelect(NewGreedy(obj), 5)
	cp := runSelect(NewCELFPP(obj), 5)
	vg := obj.Value(context.Background(), gr.Seeds)
	vc := obj.Value(context.Background(), cp.Seeds)
	if vc < 0.9*vg {
		t.Fatalf("CELF++ spread %v below greedy %v", vc, vg)
	}
}

func TestModifiedGreedyMaximizesEffectiveOpinion(t *testing.T) {
	// Figure-1 graph: Modified-GREEDY must pick A (paper Example 2).
	g := graph.ExampleFigure1()
	obj := NewEffectiveOpinionObjective(diffusion.NewOI(g, diffusion.LayerIC), 1, 20000, 23)
	res := runSelect(NewModifiedGreedy(obj), 1)
	if res.Seeds[0] != 0 {
		t.Fatalf("Modified-GREEDY picked %v, want A=0", res.Seeds)
	}
	if res.Algorithm == "" {
		t.Fatal("missing algorithm name")
	}
}

func TestModifiedGreedyRejectsWrongObjective(t *testing.T) {
	g := graph.Path(3, 0.5, 0.5)
	obj := NewSpreadObjective(diffusion.NewIC(g), 10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewModifiedGreedy(obj)
}

func TestObjectiveKinds(t *testing.T) {
	g := graph.Path(3, 1, 1)
	g.SetOpinions([]float64{1, -1, 1})
	oi := diffusion.NewOI(g, diffusion.LayerIC)
	spread := (&MCObjective{Model: oi, Kind: KindSpread, Runs: 50, Seed: 1}).Value(context.Background(), []graph.NodeID{0})
	if spread != 2 {
		t.Fatalf("spread %v want 2", spread)
	}
	// o'_1 = (−1+1)/2 = 0 ; o'_2 = (1+0)/2 = 0.5 (φ=1 deterministic)
	op := (&MCObjective{Model: oi, Kind: KindOpinionSpread, Runs: 50, Seed: 1}).Value(context.Background(), []graph.NodeID{0})
	if math.Abs(op-0.5) > 1e-12 {
		t.Fatalf("opinion spread %v want 0.5", op)
	}
	eff := NewEffectiveOpinionObjective(oi, 1, 50, 1).Value(context.Background(), []graph.NodeID{0})
	if math.Abs(eff-0.5) > 1e-12 {
		t.Fatalf("effective %v want 0.5", eff)
	}
	if v := NewSpreadObjective(oi, 10, 1).Value(context.Background(), nil); v != 0 {
		t.Fatalf("empty set value %v", v)
	}
}

func TestGreedyPerSeedTimes(t *testing.T) {
	g := graph.ErdosRenyi(30, 120, rng.New(21))
	g.SetUniformProb(0.2)
	obj := NewSpreadObjective(diffusion.NewIC(g), 50, 1)
	res := runSelect(NewGreedy(obj), 3)
	if len(res.PerSeed) != 3 || len(res.Seeds) != 3 {
		t.Fatalf("result %v", res)
	}
	if res.Took < res.PerSeed[2] {
		t.Fatal("total time below last per-seed time")
	}
}
