package greedy

import (
	"container/heap"
	"context"
	"fmt"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/im"
	"github.com/holisticim/holisticim/internal/rng"
)

// StaticGreedy implements Cheng et al.'s "StaticGreedy: Solving the
// Scalability-Accuracy Dilemma in Influence Maximization" (CIKM'13),
// cited by the paper among the sampling-with-memoization techniques: a
// fixed ensemble of R live-edge snapshots is drawn once, and greedy seed
// selection evaluates every candidate on the SAME snapshots, making the
// estimated objective truly submodular (so CELF-style lazy evaluation is
// sound) while removing the per-candidate simulation cost of GREEDY.
//
// Snapshots are stored as forward adjacency lists; spread of S is the
// average reachable-set size over snapshots.
type StaticGreedy struct {
	g         *graph.Graph
	snapshots int
	seed      uint64
}

// NewStaticGreedy returns a StaticGreedy selector for the IC model over
// g's edge probabilities. snapshots defaults to 200 when non-positive
// (the original paper uses ~100-200).
func NewStaticGreedy(g *graph.Graph, snapshots int, seed uint64) *StaticGreedy {
	if snapshots <= 0 {
		snapshots = 200
	}
	return &StaticGreedy{g: g, snapshots: snapshots, seed: seed}
}

// Name implements im.Selector.
func (s *StaticGreedy) Name() string { return "StaticGreedy" }

// snapshot is one live-edge world in CSR form.
type snapshot struct {
	start []int32
	to    []graph.NodeID
}

// sample draws the live-edge snapshot ensemble, checking ctx between
// snapshots (each is an O(m) pass, the natural batch size).
func (s *StaticGreedy) sample(ctx context.Context) ([]snapshot, error) {
	g := s.g
	n := g.NumNodes()
	snaps := make([]snapshot, s.snapshots)
	r := rng.New(0)
	deg := make([]int32, n+1)
	var live []bool
	for si := range snaps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r.Reseed(rng.SplitSeed(s.seed, uint64(si)))
		// Sample edge liveness in CSR order, then bucket.
		m := g.NumEdges()
		if live == nil {
			live = make([]bool, m)
		}
		for i := range deg {
			deg[i] = 0
		}
		total := int32(0)
		for u := graph.NodeID(0); u < n; u++ {
			ps := g.OutProbs(u)
			base := g.OutEdgeBase(u)
			for j := range ps {
				l := r.Float64() < ps[j]
				live[base+int64(j)] = l
				if l {
					deg[u+1]++
					total++
				}
			}
		}
		for i := int32(0); i < n; i++ {
			deg[i+1] += deg[i]
		}
		sn := snapshot{start: append([]int32(nil), deg[:n+1]...), to: make([]graph.NodeID, total)}
		cursor := make([]int32, n)
		for u := graph.NodeID(0); u < n; u++ {
			nbrs := g.OutNeighbors(u)
			base := g.OutEdgeBase(u)
			for j, v := range nbrs {
				if live[base+int64(j)] {
					sn.to[sn.start[u]+cursor[u]] = v
					cursor[u]++
				}
			}
		}
		snaps[si] = sn
	}
	return snaps, nil
}

// Select implements im.Selector with CELF lazy evaluation over the
// snapshot ensemble. Cancellation checkpoints sit between snapshot draws,
// between initial-gain BFS evaluations and between lazy-forward steps.
func (s *StaticGreedy) Select(ctx context.Context, k int) (im.Result, error) {
	g := s.g
	n := g.NumNodes()
	res := im.Result{Algorithm: s.Name()}
	if err := im.CheckK(k, n); err != nil {
		return res, err
	}
	tr := im.StartTracker(ctx)
	snaps, err := s.sample(ctx)
	if err != nil {
		res.Partial = true
		tr.Finish(&res)
		return res, fmt.Errorf("im: %s interrupted while sampling snapshots: %w", s.Name(), err)
	}
	res.AddMetric("snapshots", float64(len(snaps)))

	// Per-snapshot activation state for the growing seed set: covered[si]
	// stamps nodes reached by S in snapshot si, so marginal gains only
	// count newly reached nodes.
	covered := make([][]bool, len(snaps))
	for i := range covered {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		covered[i] = make([]bool, n)
	}
	visitedStamp := make([]uint32, n)
	epoch := uint32(0)
	queue := make([]graph.NodeID, 0, 256)

	// marginal counts nodes newly reachable from v across snapshots,
	// without mutating state; commit stamps them into covered.
	walk := func(si int, v graph.NodeID, commit bool) int {
		sn := &snaps[si]
		cov := covered[si]
		if cov[v] {
			return 0
		}
		epoch++
		if epoch == 0 {
			for i := range visitedStamp {
				visitedStamp[i] = 0
			}
			epoch = 1
		}
		queue = queue[:0]
		queue = append(queue, v)
		visitedStamp[v] = epoch
		gain := 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			gain++
			if commit {
				cov[u] = true
			}
			for _, w := range sn.to[sn.start[u]:sn.start[u+1]] {
				if visitedStamp[w] == epoch || cov[w] {
					continue
				}
				visitedStamp[w] = epoch
				queue = append(queue, w)
			}
		}
		return gain
	}
	marginal := func(v graph.NodeID) float64 {
		total := 0
		for si := range snaps {
			total += walk(si, v, false)
		}
		res.AddMetric("bfs_evaluations", 1)
		return float64(total) / float64(len(snaps))
	}

	// CELF queue (gains are submodular over the fixed ensemble).
	h := make(celfHeap, 0, n)
	for v := graph.NodeID(0); v < n; v++ {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		h = append(h, &celfNode{v: v, mg1: marginal(v), prevBest: -1, flag: 0})
	}
	heap.Init(&h)
	for len(res.Seeds) < k && h.Len() > 0 {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		top := h[0]
		if top.flag == len(res.Seeds) {
			heap.Pop(&h)
			for si := range snaps {
				walk(si, top.v, true)
			}
			tr.Seed(&res, top.v)
			continue
		}
		top.mg1 = marginal(top.v)
		top.flag = len(res.Seeds)
		heap.Fix(&h, top.index)
	}
	tr.Finish(&res)
	return res, nil
}

var _ im.Selector = (*StaticGreedy)(nil)
