package greedy

import (
	"testing"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/im"
	"github.com/holisticim/holisticim/internal/im/imtest"
)

// runSelect is this package's shim over the shared imtest.MustSelect —
// the call shape the pre-context package tests were written in.
func runSelect(sel im.Selector, k int) im.Result { return imtest.MustSelect(sel, k) }

// TestGreedyFamilyCancellation runs the shared conformance suite over the
// simulation-driven baselines (run with -race).
func TestGreedyFamilyCancellation(t *testing.T) {
	g := imtest.TestGraph(80)
	t.Run("greedy", func(t *testing.T) {
		imtest.Conformance(t, func() im.Selector {
			return NewGreedy(NewSpreadObjective(diffusion.NewIC(g), 30, 3))
		}, 3)
	})
	t.Run("celfpp", func(t *testing.T) {
		imtest.Conformance(t, func() im.Selector {
			return NewCELFPP(NewSpreadObjective(diffusion.NewIC(g), 30, 3))
		}, 3)
	})
	t.Run("static-greedy", func(t *testing.T) {
		imtest.Conformance(t, func() im.Selector {
			return NewStaticGreedy(g, 60, 5)
		}, 3)
	})
}
