package greedy

import (
	"context"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/im"
)

// Greedy is Kempe et al.'s hill-climbing: k rounds, each adding the node
// with the maximum marginal objective gain, estimated by full Monte-Carlo
// evaluation of every candidate — O(k·n) objective evaluations. With a
// monotone submodular objective it is a (1−1/e)-approximation; with the
// MEO objective it is exactly the paper's Modified-GREEDY (Appendix A),
// a best-effort baseline without guarantees (Sec. 2.4).
type Greedy struct {
	obj  Objective
	name string
}

// NewGreedy returns the classical greedy selector for the objective.
func NewGreedy(obj Objective) *Greedy {
	return &Greedy{obj: obj, name: "GREEDY[" + obj.Name() + "]"}
}

// NewModifiedGreedy returns the paper's Appendix-A baseline: greedy
// hill-climbing on the effective opinion spread. The objective must be a
// KindEffectiveOpinion MCObjective (enforced).
func NewModifiedGreedy(obj *MCObjective) *Greedy {
	if obj.Kind != KindEffectiveOpinion {
		panic("greedy: Modified-GREEDY requires the effective-opinion objective")
	}
	return &Greedy{obj: obj, name: "Modified-GREEDY[" + obj.Name() + "]"}
}

// Name implements im.Selector.
func (g *Greedy) Name() string { return g.name }

// Select implements im.Selector. The inner candidate sweep — k rounds of
// n Monte-Carlo evaluations each — checks the context per candidate, so
// cancellation never waits for more than one objective evaluation.
func (g *Greedy) Select(ctx context.Context, k int) (im.Result, error) {
	gr := g.obj.Graph()
	n := gr.NumNodes()
	res := im.Result{Algorithm: g.Name()}
	if err := im.CheckK(k, n); err != nil {
		return res, err
	}
	tr := im.StartTracker(ctx)

	res.Seeds = make([]graph.NodeID, 0, k)
	inSeeds := make([]bool, n)
	candidate := make([]graph.NodeID, 0, k)
	base := 0.0
	for i := 0; i < k; i++ {
		best := graph.NodeID(-1)
		bestGain := 0.0
		first := true
		for v := graph.NodeID(0); v < n; v++ {
			if inSeeds[v] {
				continue
			}
			if err := tr.Interrupted(&res); err != nil {
				return res, err
			}
			candidate = append(candidate[:0], res.Seeds...)
			val := g.obj.Value(ctx, append(candidate, v))
			res.AddMetric("evaluations", 1)
			gain := val - base
			if first || gain > bestGain {
				first = false
				bestGain = gain
				best = v
			}
		}
		if best < 0 {
			break
		}
		inSeeds[best] = true
		base += bestGain
		tr.Seed(&res, best)
	}
	tr.Finish(&res)
	return res, nil
}

var _ im.Selector = (*Greedy)(nil)
