// Package greedy implements the simulation-driven baselines the paper
// compares against: Kempe et al.'s GREEDY hill-climbing, the CELF++
// lazy-forward optimization (Goyal et al., WWW'11, incl. the Appendix-C
// notes), and the opinion-aware Modified-GREEDY of the paper's Appendix A.
package greedy

import (
	"context"
	"fmt"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
)

// ObjectiveKind selects what a seed set is scored on.
type ObjectiveKind int

const (
	// KindSpread maximizes σ(S) = E[Γ(S)] — classical IM.
	KindSpread ObjectiveKind = iota
	// KindOpinionSpread maximizes σ_o(S) = E[Γ_o(S)] (Def. 6).
	KindOpinionSpread
	// KindEffectiveOpinion maximizes σ_λ^o(S) (Def. 7) — the MEO problem.
	KindEffectiveOpinion
)

func (k ObjectiveKind) String() string {
	switch k {
	case KindSpread:
		return "spread"
	case KindOpinionSpread:
		return "opinion-spread"
	case KindEffectiveOpinion:
		return "effective-opinion"
	default:
		return fmt.Sprintf("ObjectiveKind(%d)", int(k))
	}
}

// Objective scores candidate seed sets. Implementations must be
// deterministic so that greedy comparisons are stable.
type Objective interface {
	Name() string
	Graph() *graph.Graph
	// Value returns the objective for the seed set. Implementations whose
	// evaluation is expensive (Monte-Carlo simulation) honor ctx and
	// return early — with a truncated estimate the caller is expected to
	// discard — when it is cancelled.
	Value(ctx context.Context, seeds []graph.NodeID) float64
}

// MCObjective estimates an objective with Monte-Carlo simulation. Every
// Value call reuses the same master seed — common random numbers — so the
// noise largely cancels in marginal-gain comparisons, exactly as sharing
// simulations across candidates does in the reference implementations.
type MCObjective struct {
	Model   diffusion.Model
	Kind    ObjectiveKind
	Lambda  float64 // penalty for KindEffectiveOpinion
	Runs    int     // MC runs per evaluation (paper: 10000)
	Seed    uint64
	Workers int

	pool *diffusion.ScratchPool // lazily built; reused across Value calls
}

// NewSpreadObjective returns the classical σ(S) objective.
func NewSpreadObjective(m diffusion.Model, runs int, seed uint64) *MCObjective {
	return &MCObjective{Model: m, Kind: KindSpread, Runs: runs, Seed: seed}
}

// NewEffectiveOpinionObjective returns the MEO objective σ_λ^o(S) under
// the given (opinion-aware) model.
func NewEffectiveOpinionObjective(m diffusion.Model, lambda float64, runs int, seed uint64) *MCObjective {
	return &MCObjective{Model: m, Kind: KindEffectiveOpinion, Lambda: lambda, Runs: runs, Seed: seed}
}

// Name implements Objective.
func (o *MCObjective) Name() string {
	return fmt.Sprintf("%s/%s", o.Model.Name(), o.Kind)
}

// Graph implements Objective.
func (o *MCObjective) Graph() *graph.Graph { return o.Model.Graph() }

// Value implements Objective. The Monte-Carlo loop stops dispatching runs
// once ctx is cancelled, so even a single expensive evaluation (the paper
// budget is 10000 runs per candidate) unblocks promptly.
func (o *MCObjective) Value(ctx context.Context, seeds []graph.NodeID) float64 {
	if len(seeds) == 0 {
		return 0
	}
	if o.pool == nil {
		o.pool = diffusion.NewScratchPool(o.Model.Graph().NumNodes())
	}
	est := diffusion.MonteCarlo(o.Model, seeds, diffusion.MCOptions{
		Runs: o.Runs, Seed: o.Seed, Workers: o.Workers, Pool: o.pool, Ctx: ctx,
	})
	switch o.Kind {
	case KindSpread:
		return est.Spread
	case KindOpinionSpread:
		return est.OpinionSpread
	case KindEffectiveOpinion:
		return est.EffectiveOpinionSpread(o.Lambda)
	default:
		panic("greedy: unknown objective kind")
	}
}

var _ Objective = (*MCObjective)(nil)
