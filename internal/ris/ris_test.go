package ris

import (
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func TestRRSetICUnbiasedSingleNode(t *testing.T) {
	// The RIS identity: n · P[v ∈ RR] = σ({v}). Check on a graph small
	// enough for the exact oracle.
	g := graph.ErdosRenyi(6, 10, rng.New(3))
	g.SetUniformProb(0.4)
	col := NewCollection(g, ModelIC)
	col.Generate(200000, 11)
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		got := col.EstimateSpread([]graph.NodeID{v}) - 0 // includes root==v events
		exact := diffusion.ExactICSpread(g, []graph.NodeID{v}) + 1
		// EstimateSpread counts the seed itself when it is the root, i.e. it
		// estimates E[|reachable|] = σ + 1.
		if math.Abs(got-exact) > 0.15 {
			t.Fatalf("node %d: RIS %v vs exact %v", v, got, exact)
		}
	}
}

func TestRRSetLTUnbiasedSingleNode(t *testing.T) {
	g := graph.ErdosRenyi(6, 9, rng.New(7))
	g.SetDefaultLTWeights()
	col := NewCollection(g, ModelLT)
	col.Generate(200000, 13)
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		got := col.EstimateSpread([]graph.NodeID{v})
		exact := diffusion.ExactLTSpread(g, []graph.NodeID{v}) + 1
		if math.Abs(got-exact) > 0.15 {
			t.Fatalf("node %d: RIS-LT %v vs exact %v", v, got, exact)
		}
	}
}

func TestRRSetDeterminism(t *testing.T) {
	g := graph.ErdosRenyi(50, 250, rng.New(9))
	g.SetUniformProb(0.2)
	a := NewCollection(g, ModelIC)
	a.Generate(100, 5)
	b := NewCollection(g, ModelIC)
	b.Generate(60, 5)
	b.Generate(40, 5) // extending must replay the same streams
	if a.Len() != b.Len() {
		t.Fatal("length mismatch")
	}
	for i := range a.Sets() {
		sa, sb := a.Sets()[i], b.Sets()[i]
		if len(sa) != len(sb) {
			t.Fatalf("set %d length differs", i)
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("set %d differs", i)
			}
		}
	}
}

func TestMaxCoveragePicksHub(t *testing.T) {
	// Star with p=1: every RR set contains the center, so coverage greedy
	// must pick it first.
	g := graph.Star(12, 1, 1)
	col := NewCollection(g, ModelIC)
	col.Generate(2000, 3)
	seeds, frac := col.MaxCoverage(1)
	if seeds[0] != 0 {
		t.Fatalf("coverage picked %v, want hub 0", seeds)
	}
	if frac != 1 {
		t.Fatalf("hub covers all sets, got %v", frac)
	}
}

func TestMaxCoverageDisjointComponents(t *testing.T) {
	b := graph.NewBuilder(10)
	for v := graph.NodeID(1); v <= 4; v++ {
		b.AddEdgeP(0, v, 1, 1)
	}
	for v := graph.NodeID(6); v <= 9; v++ {
		b.AddEdgeP(5, v, 1, 1)
	}
	g := b.Build()
	col := NewCollection(g, ModelIC)
	col.Generate(5000, 7)
	seeds, frac := col.MaxCoverage(2)
	got := map[graph.NodeID]bool{seeds[0]: true, seeds[1]: true}
	if !got[0] || !got[5] {
		t.Fatalf("coverage seeds %v want {0,5}", seeds)
	}
	if frac != 1 {
		t.Fatalf("two hubs cover everything, got %v", frac)
	}
}

func TestTIMPlusQualityOnSmallGraph(t *testing.T) {
	g := graph.ErdosRenyi(120, 700, rng.New(15))
	g.SetUniformProb(0.15)
	tp := NewTIMPlus(g, ModelIC, TIMOptions{Epsilon: 0.3, Seed: 3, ThetaCap: 200000})
	res := runSelect(tp, 5)
	if len(res.Seeds) != 5 {
		t.Fatalf("seeds %v", res.Seeds)
	}
	// TIM+ spread must be within 15% of exhaustive-ish CELF-free greedy
	// proxy: compare against top-degree baseline; RIS should never lose.
	est := diffusion.MonteCarlo(diffusion.NewIC(g), res.Seeds, diffusion.MCOptions{Runs: 5000, Seed: 9})
	deg := graph.TopKByOutDegree(g, 5)
	estDeg := diffusion.MonteCarlo(diffusion.NewIC(g), deg, diffusion.MCOptions{Runs: 5000, Seed: 9})
	if est.Spread < 0.9*estDeg.Spread {
		t.Fatalf("TIM+ spread %v below degree baseline %v", est.Spread, estDeg.Spread)
	}
	if res.Metrics["theta"] <= 0 || res.Metrics["rrset_bytes"] <= 0 {
		t.Fatalf("metrics missing: %v", res.Metrics)
	}
}

func TestTIMPlusKPTReasonable(t *testing.T) {
	// On a star with p=1 and k=1 the optimal spread is n; KPT+ must be a
	// positive lower bound ≤ ~OPT.
	g := graph.Star(64, 1, 1)
	tp := NewTIMPlus(g, ModelIC, TIMOptions{Epsilon: 0.5, Seed: 1, ThetaCap: 50000})
	res := runSelect(tp, 1)
	kpt := res.Metrics["kpt_plus"]
	if kpt <= 0 || kpt > 70 {
		t.Fatalf("KPT+ = %v implausible for OPT≈64", kpt)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("TIM+ missed the hub: %v", res.Seeds)
	}
}

func TestIMMQualityOnSmallGraph(t *testing.T) {
	g := graph.ErdosRenyi(120, 700, rng.New(25))
	g.SetUniformProb(0.15)
	sel := NewIMM(g, ModelIC, TIMOptions{Epsilon: 0.3, Seed: 5, ThetaCap: 200000})
	res := runSelect(sel, 5)
	if len(res.Seeds) != 5 {
		t.Fatalf("seeds %v", res.Seeds)
	}
	est := diffusion.MonteCarlo(diffusion.NewIC(g), res.Seeds, diffusion.MCOptions{Runs: 5000, Seed: 9})
	deg := graph.TopKByOutDegree(g, 5)
	estDeg := diffusion.MonteCarlo(diffusion.NewIC(g), deg, diffusion.MCOptions{Runs: 5000, Seed: 9})
	if est.Spread < 0.9*estDeg.Spread {
		t.Fatalf("IMM spread %v below degree baseline %v", est.Spread, estDeg.Spread)
	}
}

func TestIMMUsesFewerRRSetsThanTIMPlus(t *testing.T) {
	// IMM's reuse of sampling-phase RR sets should need no more sets than
	// TIM+ at the same ε on the same graph (this is its headline claim).
	g := graph.ErdosRenyi(200, 1200, rng.New(35))
	g.SetUniformProb(0.1)
	tp := runSelect(NewTIMPlus(g, ModelIC, TIMOptions{Epsilon: 0.4, Seed: 3}), 5)
	imm := runSelect(NewIMM(g, ModelIC, TIMOptions{Epsilon: 0.4, Seed: 3}), 5)
	if imm.Metrics["theta"] > tp.Metrics["theta"]*1.5 {
		t.Fatalf("IMM θ=%v vs TIM+ θ=%v", imm.Metrics["theta"], tp.Metrics["theta"])
	}
}

func TestCollectionWidth(t *testing.T) {
	g := graph.Path(3, 1, 1) // indegrees: 0,1,1
	col := NewCollection(g, ModelIC)
	col.Generate(10, 1)
	var want int64
	for _, set := range col.Sets() {
		for _, v := range set {
			want += int64(g.InDegree(v))
		}
	}
	if col.Width() != want {
		t.Fatalf("width %d want %d", col.Width(), want)
	}
	if col.MemoryFootprint() <= 0 {
		t.Fatal("memory footprint must be positive")
	}
}

func TestLTWalkTerminatesOnCycles(t *testing.T) {
	g := graph.Cycle(5, 0.5, 0.5)
	g.SetDefaultLTWeights()
	col := NewCollection(g, ModelLT)
	col.Generate(1000, 9) // must not hang; each walk stops on revisit
	for _, set := range col.Sets() {
		if len(set) > 5 {
			t.Fatalf("walk longer than cycle: %v", set)
		}
	}
}
