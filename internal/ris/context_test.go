package ris

import (
	"context"
	"testing"

	"github.com/holisticim/holisticim/internal/im"
	"github.com/holisticim/holisticim/internal/im/imtest"
)

// runSelect is this package's shim over the shared imtest.MustSelect —
// the call shape the pre-context package tests were written in.
func runSelect(sel im.Selector, k int) im.Result { return imtest.MustSelect(sel, k) }

// TestRISCancellation runs the shared conformance suite over TIM+ and IMM
// (run with -race). The θ caps keep the sampled collections small enough
// for a unit test while exercising the GenerateCtx checkpoints.
func TestRISCancellation(t *testing.T) {
	g := imtest.TestGraph(250)
	t.Run("tim+", func(t *testing.T) {
		imtest.Conformance(t, func() im.Selector {
			return NewTIMPlus(g, ModelIC, TIMOptions{Epsilon: 0.4, Seed: 5, ThetaCap: 30000})
		}, 3)
	})
	t.Run("imm", func(t *testing.T) {
		imtest.Conformance(t, func() im.Selector {
			return NewIMM(g, ModelIC, TIMOptions{Epsilon: 0.4, Seed: 5, ThetaCap: 30000})
		}, 3)
	})
}

// TestGenerateCtxStopsPromptly proves the sampling loop itself honors
// cancellation: with a pre-cancelled context no more than one checkpoint
// batch of RR sets is materialized.
func TestGenerateCtxStopsPromptly(t *testing.T) {
	g := imtest.TestGraph(250)
	col := NewCollection(g, ModelIC)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := col.GenerateCtx(ctx, 1_000_000, 1); err == nil {
		t.Fatal("GenerateCtx with cancelled context returned nil error")
	}
	if col.Len() != 0 {
		t.Fatalf("cancelled GenerateCtx still sampled %d sets", col.Len())
	}
}
