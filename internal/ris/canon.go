package ris

// Canonical defaults for the two parameters that key every RIS-family
// sample: the IMM/TIM+ approximation slack ε and the master sampling
// seed. They are spelled in exactly one place because at least four
// layers resolve them independently — TIMOptions, sketch.Params, the
// facade's Options and the service's sketch-build/lookup handlers — and
// a drifted default silently splits what should be one deterministic
// sample (a `{}` request must hit the sketch built from a spelled-out
// default spec, and vice versa).

// CanonicalEpsilon resolves the IMM/TIM+ approximation slack: non-positive
// (the zero value) means the paper's default 0.1.
func CanonicalEpsilon(eps float64) float64 {
	if eps <= 0 {
		return 0.1
	}
	return eps
}

// CanonicalSeed resolves the master sampling seed: zero means the
// default seed 1.
func CanonicalSeed(seed uint64) uint64 {
	if seed == 0 {
		return 1
	}
	return seed
}
