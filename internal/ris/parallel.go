package ris

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/holisticim/holisticim/internal/graph"
)

// parallelChunk is the number of consecutive set indices a worker claims
// per atomic fetch. Large enough that the counter is off the hot path,
// small enough that cancellation lands quickly and stragglers cannot
// unbalance the split.
const parallelChunk = 128

// parallelMinCount is the batch size below which GenerateParallelCtx
// falls back to sequential generation: spawning workers for a handful of
// truncated BFS walks costs more than it saves.
const parallelMinCount = 4 * parallelChunk

// maxGenWorkers bounds the goroutines one generation call will spawn,
// whatever the caller asked for: sampling is CPU-bound, every worker
// owns an O(n) scratch array, and the workers knob can reach this code
// from untrusted request fields. Floor of 16 so determinism tests can
// exercise a genuinely parallel split even on small machines.
func maxGenWorkers() int {
	if w := 2 * runtime.GOMAXPROCS(0); w > 16 {
		return w
	}
	return 16
}

// GenerateParallelCtx samples `count` additional RR sets across up to
// `workers` goroutines. The collection contents are identical to a
// sequential GenerateCtx call with the same arguments: set i is produced
// from the split stream (seed, startIndex+i) by whichever worker claims
// it, and the results are appended in index order. workers <= 0 picks
// GOMAXPROCS.
//
// On cancellation the contiguous prefix of completed sets is appended
// (later sets sampled by still-draining workers are discarded) and the
// context error is returned; because the streams are per-index
// deterministic, a later extension regenerates the discarded sets
// identically.
func (c *Collection) GenerateParallelCtx(ctx context.Context, count int, seed uint64, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if w := maxGenWorkers(); workers > w {
		workers = w
	}
	if workers == 1 || count < parallelMinCount {
		return c.GenerateCtx(ctx, count, seed)
	}
	if count <= 0 {
		return ctx.Err()
	}

	base := uint64(len(c.sets))
	results := make([][]graph.NodeID, count)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NewSampler(c.g, c.kind)
			for {
				if ctx.Err() != nil {
					return
				}
				lo := next.Add(parallelChunk) - parallelChunk
				if lo >= int64(count) {
					return
				}
				hi := lo + parallelChunk
				if hi > int64(count) {
					hi = int64(count)
				}
				for i := lo; i < hi; i++ {
					results[i] = s.Sample(seed, base+uint64(i))
				}
			}
		}()
	}
	wg.Wait()

	// Append in index order; stop at the first gap a cancellation left
	// (an RR set always contains its root, so nil marks "not sampled").
	//lint:ignore imlint/ctxpoll append-only drain of already-sampled sets; aborting mid-drain would discard paid-for work
	for _, set := range results {
		if set == nil {
			break
		}
		c.addSet(set)
	}
	return ctx.Err()
}
