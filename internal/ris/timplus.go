package ris

import (
	"context"
	"fmt"
	"math"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/im"
)

// interrupted marks res partial and wraps err (a ctx error observed in
// phase) in the uniform interruption error shared by TIM+ and IMM.
func interrupted(tr *im.Tracker, res *im.Result, phase string, err error) error {
	res.Partial = true
	tr.Finish(res)
	return fmt.Errorf("im: %s interrupted during %s: %w", res.Algorithm, phase, err)
}

// TIMPlus implements TIM+ (Tang, Xiao, Shi — "Influence Maximization:
// Near-Optimal Time Complexity Meets Practical Efficiency", SIGMOD'14):
//
//  1. KPT estimation (their Algorithm 2): sample geometrically growing
//     batches of RR sets until the average κ(R) = 1 − (1 − w(R)/m)^k
//     crosses 1/2^i, yielding KPT* — a constant-factor lower bound of the
//     optimal expected spread OPT;
//  2. the TIM+ refinement: run max-coverage on the phase-1 sets, re-
//     estimate the winner's coverage on fresh sets, and take KPT+ =
//     max(KPT*, n·F/(1+ε'));
//  3. node selection: sample θ = λ/KPT+ RR sets, λ = (8+2ε)·n·(ℓ·ln n +
//     ln C(n,k) + ln 2)/ε², and greedily solve max coverage.
//
// The θ formula is what makes TIM+ memory-hungry at small ε — the
// behaviour the paper's scalability experiments document (Table 3,
// Figure 6i). ThetaCap exists so the experiment harness can bound the
// blow-up on scaled datasets while recording that capping occurred.
type TIMPlus struct {
	g    *graph.Graph
	kind ModelKind
	opts TIMOptions
}

// TIMOptions configures TIM+.
type TIMOptions struct {
	// Epsilon is the approximation slack ε (paper experiments: 0.1).
	Epsilon float64
	// Ell is the failure-probability exponent ℓ (default 1 ⇒ success with
	// probability ≥ 1 − 1/n).
	Ell float64
	// Seed drives all sampling.
	Seed uint64
	// ThetaCap, when positive, bounds the number of phase-2 RR sets. The
	// run records metric "theta_capped"=1 when the cap bites.
	ThetaCap int
	// MemoryBudget, when positive, aborts the run before phase 2 if the
	// projected RR-set storage exceeds it — reproducing the paper's "TIM+
	// crashed ... owing to its huge memory requirement" observations
	// without actually exhausting the machine. Aborted runs return no
	// seeds and record metric "aborted_oom" = projected bytes.
	MemoryBudget int64
}

// NewTIMPlus returns a TIM+ selector over g for the given model kind.
func NewTIMPlus(g *graph.Graph, kind ModelKind, opts TIMOptions) *TIMPlus {
	opts.Epsilon = CanonicalEpsilon(opts.Epsilon)
	if opts.Ell <= 0 {
		opts.Ell = 1
	}
	return &TIMPlus{g: g, kind: kind, opts: opts}
}

// Name implements im.Selector.
func (t *TIMPlus) Name() string { return "TIM+" }

// Select implements im.Selector. All three RR-sampling phases run through
// Collection.GenerateCtx, so cancellation lands within a small batch of
// sets even when θ is in the millions — exactly the loops the paper's
// scalability experiments show dominating TIM+'s runtime.
func (t *TIMPlus) Select(ctx context.Context, k int) (im.Result, error) {
	n := t.g.NumNodes()
	res := im.Result{Algorithm: t.Name()}
	if err := im.CheckK(k, n); err != nil {
		return res, err
	}
	tr := im.StartTracker(ctx)
	nf := float64(n)
	mf := float64(t.g.NumEdges())
	eps := t.opts.Epsilon
	ell := t.opts.Ell

	// ---- Phase 1: KPT* estimation (TIM Algorithm 2).
	kptCol := NewCollection(t.g, t.kind)
	kptStar := 1.0
	logn := math.Log(nf)
	maxI := int(math.Floor(math.Log2(nf))) - 1
	if maxI < 1 {
		maxI = 1
	}
	for i := 1; i <= maxI; i++ {
		ci := int(math.Ceil((6*ell*logn + 6*math.Log(float64(maxI+1))) * math.Exp2(float64(i))))
		if kptCol.Len() < ci {
			if err := kptCol.GenerateCtx(ctx, ci-kptCol.Len(), t.opts.Seed); err != nil {
				return res, interrupted(tr, &res, "KPT estimation", err)
			}
		}
		sumKappa := 0.0
		for _, set := range kptCol.Sets() {
			w := 0.0
			for _, v := range set {
				w += float64(t.g.InDegree(v))
			}
			sumKappa += 1 - math.Pow(1-w/mf, float64(k))
		}
		if sumKappa/float64(kptCol.Len()) > 1/math.Exp2(float64(i)) {
			kptStar = nf * sumKappa / (2 * float64(kptCol.Len()))
			break
		}
	}
	res.AddMetric("kpt_star", kptStar)
	res.AddMetric("phase1_rrsets", float64(kptCol.Len()))

	// ---- TIM+ refinement: KPT+ via the phase-1 winner's coverage on
	// fresh sets.
	epsPrime := 5 * math.Cbrt(ell*eps*eps/(ell+float64(k)))
	sPrime, _ := kptCol.MaxCoverage(k)
	lambdaPrime := (2 + epsPrime) * ell * nf * logn / (epsPrime * epsPrime)
	thetaPrime := int(math.Ceil(lambdaPrime / kptStar))
	if t.opts.ThetaCap > 0 && thetaPrime > t.opts.ThetaCap {
		thetaPrime = t.opts.ThetaCap
		res.AddMetric("theta_capped", 1)
	}
	refineCol := NewCollection(t.g, t.kind)
	if err := refineCol.GenerateCtx(ctx, thetaPrime, t.opts.Seed+1); err != nil {
		return res, interrupted(tr, &res, "KPT refinement", err)
	}
	f := refineCol.FractionCoveredBy(sPrime)
	kptPlus := math.Max(f*nf/(1+epsPrime), kptStar)
	res.AddMetric("kpt_plus", kptPlus)
	res.AddMetric("refine_rrsets", float64(refineCol.Len()))

	// ---- Phase 2: node selection.
	lambda := (8 + 2*eps) * nf * (ell*logn + logNChooseK(nf, float64(k)) + math.Ln2) / (eps * eps)
	theta := int(math.Ceil(lambda / kptPlus))
	if theta < 1 {
		theta = 1
	}
	if t.opts.MemoryBudget > 0 {
		// Project storage from the phase-1 sample's average set size: per
		// set, the nodes (4B each) appear in both the set and the inverted
		// index, plus slice headers.
		avgSize := 1.0
		if kptCol.Len() > 0 {
			total := 0
			for i, s := range kptCol.Sets() {
				if i&0x3FFF == 0 {
					if err := tr.Interrupted(&res); err != nil {
						return res, err
					}
				}
				total += len(s)
			}
			avgSize = float64(total) / float64(kptCol.Len())
		}
		projected := int64(float64(theta) * (avgSize*8 + 48))
		if projected > t.opts.MemoryBudget {
			res.AddMetric("aborted_oom", float64(projected))
			res.AddMetric("theta", float64(theta))
			tr.Finish(&res)
			return res, nil
		}
	}
	if t.opts.ThetaCap > 0 && theta > t.opts.ThetaCap {
		theta = t.opts.ThetaCap
		res.AddMetric("theta_capped", 1)
	}
	col := NewCollection(t.g, t.kind)
	if err := col.GenerateCtx(ctx, theta, t.opts.Seed+2); err != nil {
		return res, interrupted(tr, &res, "node-selection sampling", err)
	}
	seeds, frac := col.MaxCoverage(k)
	res.AddMetric("theta", float64(theta))
	res.AddMetric("rrset_bytes", float64(col.MemoryFootprint()+refineCol.MemoryFootprint()+kptCol.MemoryFootprint()))
	res.AddMetric("coverage", frac)
	res.AddMetric("estimated_spread", frac*nf)
	// Selection is not incremental: the max-coverage pass yields all k
	// seeds at once, so per-seed progress fires in a burst at the end
	// (still honoring cancellation between reports).
	for _, s := range seeds {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		tr.Seed(&res, s)
	}
	tr.Finish(&res)
	return res, nil
}

var _ im.Selector = (*TIMPlus)(nil)
