package ris

import (
	"context"
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/opinion"
	"github.com/holisticim/holisticim/internal/rng"
)

func parallelTestGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.BarabasiAlbert(2000, 3, rng.New(7))
	g.SetUniformProb(0.1)
	g.SetDefaultLTWeights()
	return g
}

// Parallel generation must be invisible in the output: the collection is
// a pure function of (graph, kind, seed, count), never of worker count or
// scheduling. Set-for-set comparison, all models — for the weighted OC
// kind the per-set root-opinion weights must agree bit-for-bit too (run
// under -race in CI; the Workers=8≡1 case is the satellite determinism
// guarantee for the weighted sampler).
func TestGenerateParallelMatchesSequential(t *testing.T) {
	g := parallelTestGraph(t)
	opinion.AssignOpinions(g, opinion.Normal, 3)
	for _, kind := range []ModelKind{ModelIC, ModelLT, ModelOC} {
		seq := NewCollection(g, kind)
		seq.Generate(3000, 42)
		for _, workers := range []int{1, 2, 8} {
			par := NewCollection(g, kind)
			if err := par.GenerateParallelCtx(context.Background(), 3000, 42, workers); err != nil {
				t.Fatalf("%v workers=%d: %v", kind, workers, err)
			}
			if par.Len() != seq.Len() {
				t.Fatalf("%v workers=%d: %d sets, want %d", kind, workers, par.Len(), seq.Len())
			}
			if par.Width() != seq.Width() {
				t.Fatalf("%v workers=%d: width %d, want %d", kind, workers, par.Width(), seq.Width())
			}
			for i, want := range seq.Sets() {
				got := par.Sets()[i]
				if len(got) != len(want) {
					t.Fatalf("%v workers=%d: set %d has %d nodes, want %d", kind, workers, i, len(got), len(want))
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("%v workers=%d: set %d differs at %d", kind, workers, i, j)
					}
				}
			}
			if kind.Weighted() {
				ww, wp := seq.Weights(), par.Weights()
				if len(ww) != seq.Len() || len(wp) != par.Len() {
					t.Fatalf("%v workers=%d: weight column length %d/%d, want %d", kind, workers, len(wp), len(ww), seq.Len())
				}
				for i := range ww {
					if wp[i] != ww[i] {
						t.Fatalf("%v workers=%d: weight %d = %v, want %v", kind, workers, i, wp[i], ww[i])
					}
				}
			}
		}
	}
}

// Extending a parallel-built collection sequentially (and vice versa)
// continues the same deterministic stream.
func TestGenerateParallelExtension(t *testing.T) {
	g := parallelTestGraph(t)
	seq := NewCollection(g, ModelIC)
	seq.Generate(2000, 9)

	mixed := NewCollection(g, ModelIC)
	if err := mixed.GenerateParallelCtx(context.Background(), 1200, 9, 4); err != nil {
		t.Fatal(err)
	}
	mixed.Generate(800, 9)
	if mixed.Len() != seq.Len() {
		t.Fatalf("mixed build: %d sets, want %d", mixed.Len(), seq.Len())
	}
	for i, want := range seq.Sets() {
		got := mixed.Sets()[i]
		if len(got) != len(want) {
			t.Fatalf("set %d has %d nodes, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("set %d differs at position %d", i, j)
			}
		}
	}
}

// A cancelled parallel generation keeps only a contiguous, deterministic
// prefix so later extensions stay aligned with the stream.
func TestGenerateParallelCancellation(t *testing.T) {
	g := parallelTestGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewCollection(g, ModelIC)
	if err := c.GenerateParallelCtx(ctx, 2000, 5, 4); err == nil {
		t.Fatal("expected a context error")
	}
	// Whatever prefix survived must match the sequential stream.
	seq := NewCollection(g, ModelIC)
	seq.Generate(c.Len(), 5)
	for i, want := range seq.Sets() {
		got := c.Sets()[i]
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("prefix set %d differs", i)
			}
		}
	}
}

// Add must maintain the inverted index and width exactly as generation
// does — it is how snapshot loading reconstructs a collection.
func TestCollectionAdd(t *testing.T) {
	g := parallelTestGraph(t)
	src := NewCollection(g, ModelIC)
	src.Generate(500, 3)

	dst := NewCollection(g, ModelIC)
	for _, s := range src.Sets() {
		dst.Add(s)
	}
	if dst.Width() != src.Width() {
		t.Fatalf("width %d, want %d", dst.Width(), src.Width())
	}
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		a, b := src.SetsContaining(v), dst.SetsContaining(v)
		if len(a) != len(b) {
			t.Fatalf("node %d: %d sets, want %d", v, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d inverted index differs at %d", v, i)
			}
		}
	}
	sa, _ := src.MaxCoverage(10)
	sb, _ := dst.MaxCoverage(10)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("max coverage differs at seed %d", i)
		}
	}
}
