package ris

import "math"

// IMM's martingale bounds (Tang, Shi, Xiao — SIGMOD'15, Sec. 4), exported
// so the selector and the reusable sketch index compute θ from one source
// of truth.

// immEll inflates the failure exponent ℓ so the union bound over IMM's
// two phases still yields success probability 1−1/n^ℓ (IMM Sec. 4.3).
func immEll(n, ell float64) float64 { return ell * (1 + math.Ln2/math.Log(n)) }

// IMMEpsPrime returns ε' = √2·ε, the slack IMM's OPT lower-bounding phase
// runs at.
func IMMEpsPrime(eps float64) float64 { return math.Sqrt2 * eps }

// IMMLambdaPrime returns λ' for the OPT-guessing phase: a guess x of OPT
// is tested on θ_i = λ'/x RR sets.
func IMMLambdaPrime(n float64, k int, eps, ell float64) float64 {
	ell = immEll(n, ell)
	epsPrime := IMMEpsPrime(eps)
	return (2 + 2*epsPrime/3) * (logNChooseK(n, float64(k)) + ell*math.Log(n) + math.Log(math.Log2(n))) * n / (epsPrime * epsPrime)
}

// IMMLambdaStar returns λ* for the node-selection phase: θ = λ*/LB RR
// sets suffice for a (1−1/e−ε)-approximation with probability 1−1/n^ℓ.
func IMMLambdaStar(n float64, k int, eps, ell float64) float64 {
	ell = immEll(n, ell)
	logn := math.Log(n)
	alpha := math.Sqrt(ell*logn + math.Ln2)
	beta := math.Sqrt((1 - 1/math.E) * (logNChooseK(n, float64(k)) + ell*logn + math.Ln2))
	return 2 * n * (((1-1/math.E)*alpha + beta) * ((1-1/math.E)*alpha + beta)) / (eps * eps)
}

// IMMTheta returns θ = ⌈λ*(n,k,ε,ℓ)/lb⌉ clamped to at least 1 — the
// number of RR sets the martingale bound demands given a lower bound lb
// on the optimal spread.
func IMMTheta(n float64, k int, eps, ell, lb float64) int {
	if lb < 1 {
		lb = 1
	}
	theta := int(math.Ceil(IMMLambdaStar(n, k, eps, ell) / lb))
	if theta < 1 {
		theta = 1
	}
	return theta
}
