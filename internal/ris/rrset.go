// Package ris implements the reverse-influence-sampling family the paper
// benchmarks against: TIM+ (Tang, Xiao, Shi — SIGMOD'14) and its
// successor IMM (Tang, Shi, Xiao — SIGMOD'15). Both estimate influence by
// sampling Reverse-Reachable (RR) sets — the set of nodes that can reach
// a uniformly random root in a random live-edge world — and reduce seed
// selection to greedy maximum coverage over the sampled sets.
//
// The collection keeps every sampled set plus a full node→sets inverted
// index, exactly like the reference implementations; this is what gives
// the family its characteristic memory footprint (the paper's Figures 6i
// and 6j, Table 3).
package ris

import (
	"context"
	"math"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

// ModelKind selects the diffusion model whose RR-set semantics to sample.
type ModelKind int

const (
	// ModelIC samples reverse IC/WC worlds (each in-edge live with
	// probability p).
	ModelIC ModelKind = iota
	// ModelLT samples reverse LT live-edge walks (at most one live in-edge
	// per node, chosen with probability w).
	ModelLT
	// ModelOC samples the same reverse LT live-edge walks as ModelLT —
	// the OC baseline activates by LT — but additionally records each
	// set's root-opinion weight (see OCRootWeight), turning the
	// collection into a weighted-RIS estimator of OC opinion spread in
	// the spirit of Gionis et al., "Opinion Maximization in Social
	// Networks". The sampled sets are bit-identical to ModelLT's: the
	// weight is derived from the walk, never drawn from the stream.
	ModelOC
)

func (m ModelKind) String() string {
	switch m {
	case ModelLT:
		return "LT"
	case ModelOC:
		return "OC"
	default:
		return "IC"
	}
}

// Weighted reports whether the kind records per-set root-opinion weights.
func (m ModelKind) Weighted() bool { return m == ModelOC }

// Collection holds sampled RR sets and their inverted index.
type Collection struct {
	g    *graph.Graph
	kind ModelKind

	sets     [][]graph.NodeID // RR sets
	nodeSets [][]int32        // node -> ids of sets containing it
	weights  []float64        // per-set root-opinion weight (ModelOC only)
	width    int64            // Σ over sets of in-degree mass (for KPT)
	smp      *Sampler         // reused by sequential generation
}

// NewCollection returns an empty RR-set collection over g.
func NewCollection(g *graph.Graph, kind ModelKind) *Collection {
	return &Collection{
		g:        g,
		kind:     kind,
		nodeSets: make([][]int32, g.NumNodes()),
		smp:      NewSampler(g, kind),
	}
}

// Len returns the number of sampled sets.
func (c *Collection) Len() int { return len(c.sets) }

// Width returns the cumulative width Σ_R w(R), where w(R) counts the
// edges of G pointing into R — the quantity TIM+'s KPT estimator needs.
func (c *Collection) Width() int64 { return c.width }

// Sets exposes the raw RR sets (read-only).
func (c *Collection) Sets() [][]graph.NodeID { return c.sets }

// SetsContaining returns the ids of the sets containing v — one row of
// the inverted index (read-only). Selection layers maintaining their own
// coverage counters (the sketch index) are built on this accessor.
func (c *Collection) SetsContaining(v graph.NodeID) []int32 { return c.nodeSets[v] }

// Weighted reports whether the collection records per-set root-opinion
// weights (ModelOC).
func (c *Collection) Weighted() bool { return c.kind.Weighted() }

// Rebind points the collection (and its sequential sampler) at a new
// graph instance. The caller guarantees identical content — the sketch
// index does so by fingerprint before rebinding — otherwise every
// sampled set would silently describe the wrong graph. Rebinding exists
// so a replaced-but-identical graph does not stay pinned in memory for
// the collection's lifetime.
func (c *Collection) Rebind(g *graph.Graph) {
	c.g = g
	c.smp.g = g
}

// Weights exposes the per-set root-opinion weights (read-only), aligned
// with Sets. Nil for unweighted kinds.
func (c *Collection) Weights() []float64 { return c.weights }

// Add appends an externally produced RR set (e.g. one loaded from a
// sketch snapshot) to the collection, maintaining the inverted index and
// width exactly as generation would — including recomputing the
// root-opinion weight for weighted kinds. The caller guarantees every
// node id is in range and the set is duplicate-free.
func (c *Collection) Add(set []graph.NodeID) { c.addSet(set) }

// AddWeighted appends an externally produced RR set carrying its stored
// root-opinion weight (the snapshot-load path: the persisted weight is
// authoritative, so a load→save round trip is byte-identical even across
// releases that refine the weight function). Panics on unweighted kinds.
func (c *Collection) AddWeighted(set []graph.NodeID, w float64) {
	if !c.kind.Weighted() {
		panic("ris: AddWeighted on an unweighted collection")
	}
	c.addSetWeight(set, w)
}

// MemoryFootprint approximates the bytes held by the sets, the inverted
// index and (for weighted kinds) the weight column.
func (c *Collection) MemoryFootprint() int64 {
	var b int64
	for _, s := range c.sets {
		b += int64(cap(s))*4 + 24
	}
	for _, ns := range c.nodeSets {
		b += int64(cap(ns))*4 + 24
	}
	b += int64(cap(c.weights)) * 8
	return b
}

// generateCheckEvery is the cancellation-checkpoint granularity of
// GenerateCtx: one context poll per this many sampled RR sets. Sets are
// cheap (a truncated reverse BFS/walk), so a small batch keeps the
// cancellation latency low while the poll cost stays invisible.
const generateCheckEvery = 64

// Generate samples `count` additional RR sets, each rooted at a uniformly
// random node, using streams split from (seed, startIndex+i) so the
// collection contents are deterministic and extendable.
func (c *Collection) Generate(count int, seed uint64) {
	_ = c.GenerateCtx(context.Background(), count, seed)
}

// GenerateCtx is Generate under a context: the θ-sampling loops of
// TIM+/IMM run through it so a cancelled or deadline-expired selection
// stops sampling within generateCheckEvery sets. Sets sampled before the
// stop remain in the collection (the streams are deterministic, so a
// later extension is unaffected).
func (c *Collection) GenerateCtx(ctx context.Context, count int, seed uint64) error {
	for i := 0; i < count; i++ {
		if i%generateCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		c.addSet(c.smp.Sample(seed, uint64(len(c.sets))))
	}
	return nil
}

// Sampler produces single RR sets from (seed, setIndex) pairs. Each
// Sampler owns its visited-stamp scratch, BFS queue and RNG, so one
// Sampler per goroutine is the unit of parallel generation; set contents
// depend only on (graph, kind, seed, setIndex), never on which Sampler —
// or how many — produced them.
type Sampler struct {
	g       *graph.Graph
	kind    ModelKind
	scratch []uint32 // visited stamps
	epoch   uint32
	queue   []graph.NodeID
	rng     *rng.RNG
}

// NewSampler returns a sampler of RR sets over g.
func NewSampler(g *graph.Graph, kind ModelKind) *Sampler {
	return &Sampler{
		g:       g,
		kind:    kind,
		scratch: make([]uint32, g.NumNodes()),
		rng:     rng.New(0),
	}
}

// Sample builds the setIndex-th RR set of the stream keyed by seed: the
// root is drawn from the split stream (seed, setIndex), then a reverse
// live-edge traversal is run with the same stream.
func (s *Sampler) Sample(seed, setIndex uint64) []graph.NodeID {
	s.rng.Reseed(rng.SplitSeed(seed, setIndex))
	root := graph.NodeID(s.rng.Int31n(s.g.NumNodes()))
	return s.sampleFrom(root)
}

// sampleFrom builds one RR set rooted at root.
func (s *Sampler) sampleFrom(root graph.NodeID) []graph.NodeID {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.scratch {
			s.scratch[i] = 0
		}
		s.epoch = 1
	}
	g, r := s.g, s.rng
	set := make([]graph.NodeID, 0, 4)
	s.scratch[root] = s.epoch
	set = append(set, root)
	if s.kind == ModelIC {
		s.queue = s.queue[:0]
		s.queue = append(s.queue, root)
		for head := 0; head < len(s.queue); head++ {
			x := s.queue[head]
			froms := g.InNeighbors(x)
			idxs := g.InEdgeIndices(x)
			for j, u := range froms {
				if s.scratch[u] == s.epoch {
					continue
				}
				if r.Float64() < g.ProbAt(idxs[j]) {
					s.scratch[u] = s.epoch
					set = append(set, u)
					s.queue = append(s.queue, u)
				}
			}
		}
		return set
	}
	// LT: random walk choosing at most one live in-edge per node.
	x := root
	for {
		idxs := g.InEdgeIndices(x)
		froms := g.InNeighbors(x)
		if len(idxs) == 0 {
			return set
		}
		draw := r.Float64()
		acc := 0.0
		chosen := graph.NodeID(-1)
		for j, e := range idxs {
			acc += g.WeightAt(e)
			if draw < acc {
				chosen = froms[j]
				break
			}
		}
		if chosen < 0 || s.scratch[chosen] == s.epoch {
			return set
		}
		s.scratch[chosen] = s.epoch
		set = append(set, chosen)
		x = chosen
	}
}

func (c *Collection) addSet(set []graph.NodeID) {
	w := 0.0
	if c.kind.Weighted() {
		w = OCRootWeight(c.g, set)
	}
	c.addSetWeight(set, w)
}

func (c *Collection) addSetWeight(set []graph.NodeID, w float64) {
	id := int32(len(c.sets))
	c.sets = append(c.sets, set)
	if c.kind.Weighted() {
		c.weights = append(c.weights, w)
	}
	for _, v := range set {
		c.nodeSets[v] = append(c.nodeSets[v], id)
		c.width += int64(c.g.InDegree(v))
	}
}

// ReplaceSets swaps the contents of the given set ids in place,
// maintaining the inverted index and (for weighted kinds) the
// root-opinion weights exactly as if the new contents had been generated
// at those indices. ids must be sorted ascending and duplicate-free;
// sets[i] is the new contents of ids[i]. Rows of the inverted index stay
// sorted — generation appends ids in increasing order, so a repaired
// collection is structurally identical to one generated from scratch
// over the current graph. This is the primitive incremental sketch
// repair is built on: after a graph mutation, only the sets whose walks
// touched a dirty node are replaced (resampled deterministically from
// their (seed, id) streams) and every other set — and its index rows —
// stays byte-for-byte untouched.
//
// Each affected row is rebuilt in one filter+merge pass, so the cost is
// linear in the affected rows plus the old and new set contents —
// replacing many sets at once is far cheaper than per-set splicing when
// the batch hits hub rows. Width is NOT maintained; callers follow up
// with RecomputeWidth (cheap) after the graph rebind.
func (c *Collection) ReplaceSets(ids []int32, sets [][]graph.NodeID) {
	if len(ids) != len(sets) {
		panic("ris: ReplaceSets ids/sets length mismatch")
	}
	if len(ids) == 0 {
		return
	}
	replaced := make(map[int32]struct{}, len(ids))
	for _, id := range ids {
		replaced[id] = struct{}{}
	}
	// Per-node additions. Walking ids in ascending order keeps every
	// per-node list sorted, so the merge below preserves row order.
	add := make(map[graph.NodeID][]int32)
	touched := make(map[graph.NodeID]struct{})
	for i, id := range ids {
		for _, v := range c.sets[id] {
			touched[v] = struct{}{}
		}
		for _, v := range sets[i] {
			add[v] = append(add[v], id)
			touched[v] = struct{}{}
		}
	}
	for v := range touched {
		row := c.nodeSets[v]
		ins := add[v]
		merged := make([]int32, 0, len(row)+len(ins))
		j := 0
		for _, id := range row {
			if _, gone := replaced[id]; gone {
				continue
			}
			for j < len(ins) && ins[j] < id {
				merged = append(merged, ins[j])
				j++
			}
			merged = append(merged, id)
		}
		merged = append(merged, ins[j:]...)
		c.nodeSets[v] = merged
	}
	for i, id := range ids {
		c.sets[id] = sets[i]
		if c.kind.Weighted() {
			c.weights[id] = OCRootWeight(c.g, sets[i])
		}
	}
}

// RecomputeWidth recomputes the cumulative width Σ_R w(R) against the
// CURRENT graph. After a rebind to mutated content the stored width —
// accumulated from the in-degrees of a previous snapshot — is stale even
// for sets whose contents survived the mutation; repair calls this once
// after all replacements. Width factors through the inverted index —
// Σ_R Σ_{v∈R} indeg(v) = Σ_v |sets∋v|·indeg(v) — so the pass is O(n),
// not O(total set contents).
func (c *Collection) RecomputeWidth() {
	var w int64
	for v, row := range c.nodeSets {
		w += int64(len(row)) * int64(c.g.InDegree(graph.NodeID(v)))
	}
	c.width = w
}

// OCRootWeight returns the root-opinion weight of a reverse LT walk
// under OC semantics: the root's expected final opinion assuming
// activation reaches it along the sampled live-edge chain. With the walk
// u_0 (root) ← u_1 ← … ← u_L and the seed assumed at the chain's end
// (OC seeds keep their personal opinion; every relayed node averages its
// own opinion with its activator's, Sec. 2.1 of the paper's OC
// characterization):
//
//	w(R) = Σ_{i<L} o(u_i)/2^{i+1} + o(u_L)/2^L.
//
// The scalar is the greedy's coverage objective (one weight per set
// keeps the incremental counters O(1) per update) and what snapshots
// persist; a seed hitting the chain at depth j < L changes the true
// value by at most 2^{1-j}, so it is a good surrogate across hit
// positions. Estimation over a FIXED seed set does not pay even that:
// OpinionCoverage re-derives the depth-exact value by truncating the
// walk at the shallowest seed. A one-node walk (no live in-edge) weighs
// o(root): such a set is only ever covered by the root itself being a
// seed, and estimators exclude root-seeded sets anyway. |w| ≤ 1 always,
// since opinions live in [-1,1] and the coefficients sum to 1.
func OCRootWeight(g *graph.Graph, walk []graph.NodeID) float64 {
	last := len(walk) - 1
	w := g.Opinion(walk[last])
	for i := last - 1; i >= 0; i-- {
		w = (g.Opinion(walk[i]) + w) / 2
	}
	return w
}

// MaxCoverage greedily picks k nodes maximizing the number of covered RR
// sets; returns the seeds and the covered fraction. This is the node-
// selection phase shared by TIM+ and IMM, a (1−1/e)-approximation of
// maximum coverage.
func (c *Collection) MaxCoverage(k int) ([]graph.NodeID, float64) {
	n := c.g.NumNodes()
	counts := make([]int32, n)
	for v := graph.NodeID(0); v < n; v++ {
		counts[v] = int32(len(c.nodeSets[v]))
	}
	covered := make([]bool, len(c.sets))
	seeds := make([]graph.NodeID, 0, k)
	totalCovered := 0
	for i := 0; i < k; i++ {
		best := graph.NodeID(-1)
		bestCount := int32(-1)
		for v := graph.NodeID(0); v < n; v++ {
			if counts[v] > bestCount {
				bestCount = counts[v]
				best = v
			}
		}
		if best < 0 {
			break
		}
		seeds = append(seeds, best)
		for _, sid := range c.nodeSets[best] {
			if covered[sid] {
				continue
			}
			covered[sid] = true
			totalCovered++
			for _, u := range c.sets[sid] {
				counts[u]--
			}
		}
	}
	frac := 0.0
	if len(c.sets) > 0 {
		frac = float64(totalCovered) / float64(len(c.sets))
	}
	return seeds, frac
}

// FractionCoveredBy returns the fraction of sets hit by the given seed
// set — used by TIM+'s KPT refinement step.
func (c *Collection) FractionCoveredBy(seeds []graph.NodeID) float64 {
	if len(c.sets) == 0 {
		return 0
	}
	inSeeds := make(map[graph.NodeID]bool, len(seeds))
	for _, s := range seeds {
		inSeeds[s] = true
	}
	hit := 0
	for _, set := range c.sets {
		for _, v := range set {
			if inSeeds[v] {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(c.sets))
}

// EstimateSpread returns the standard RIS estimator n·F(S) of σ(S), where
// F is the covered fraction. Unbiased for any fixed S.
func (c *Collection) EstimateSpread(seeds []graph.NodeID) float64 {
	return c.FractionCoveredBy(seeds) * float64(c.g.NumNodes())
}

// OpinionCoverage sums, over the RR walks hit by the seed set whose root
// is NOT itself a seed, the positive and negative parts of the root's
// final opinion under the live-edge chain, along with the total
// covered-set count (roots in S included — the plain coverage number).
//
// Unlike the per-set scalar weight the greedy optimizes — which fixes
// the activator chain at the full walk — a FIXED seed set lets the
// estimator be depth-exact: activation reaches the root from the
// shallowest seed on the walk (every deeper node is irrelevant, since
// each node has exactly one live in-edge and seeds keep their personal
// opinion), so the root's opinion is OCRootWeight over the walk prefix
// truncated at that seed. This is what makes the estimator track the
// Monte-Carlo OC spread instead of merely correlating with it.
//
// Root-seeded walks are excluded from the opinion sums because Def. 6
// counts opinions of activated NON-seed nodes only: a root in S
// contributes its activation (spread) but not a relayed opinion.
// Weighted kinds only.
func (c *Collection) OpinionCoverage(seeds []graph.NodeID) (covered int, pos, neg float64) {
	if !c.kind.Weighted() {
		panic("ris: OpinionCoverage on an unweighted collection")
	}
	inSeeds := make(map[graph.NodeID]bool, len(seeds))
	for _, s := range seeds {
		inSeeds[s] = true
	}
	hit := make([]bool, len(c.sets))
	for _, s := range seeds {
		if int64(s) < 0 || int64(s) >= int64(len(c.nodeSets)) {
			continue
		}
		for _, sid := range c.nodeSets[s] {
			if hit[sid] {
				continue
			}
			hit[sid] = true
			covered++
			walk := c.sets[sid]
			if inSeeds[walk[0]] { // walk roots are stored first
				continue
			}
			depth := 1
			for !inSeeds[walk[depth]] { // a seed exists: the walk is covered
				depth++
			}
			if w := OCRootWeight(c.g, walk[:depth+1]); w > 0 {
				pos += w
			} else {
				neg -= w
			}
		}
	}
	return covered, pos, neg
}

// EstimateOpinionSpread returns the weighted-RIS estimator of the OC
// opinion spread σ_o(S) (Def. 6): n/θ · Σ over covered, non-root-seeded
// sets of the root-opinion weight.
func (c *Collection) EstimateOpinionSpread(seeds []graph.NodeID) float64 {
	if len(c.sets) == 0 {
		return 0
	}
	_, pos, neg := c.OpinionCoverage(seeds)
	return (pos - neg) * float64(c.g.NumNodes()) / float64(len(c.sets))
}

// logNChooseK computes ln C(n,k) via lgamma.
func logNChooseK(n, k float64) float64 {
	a, _ := math.Lgamma(n + 1)
	b, _ := math.Lgamma(k + 1)
	cc, _ := math.Lgamma(n - k + 1)
	return a - b - cc
}
