package ris

import (
	"context"
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/opinion"
)

// OCRootWeight on a hand-built chain: the root's final opinion when the
// seed sits at the walk's end and every relay averages its own opinion
// with its activator's.
func TestOCRootWeight(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(1, 0) // 1 -> 0
	b.AddEdge(2, 1) // 2 -> 1
	g := b.Build()
	g.SetDefaultLTWeights()
	g.SetOpinion(0, 0.8)
	g.SetOpinion(1, -0.4)
	g.SetOpinion(2, 0.6)

	// Walk rooted at 0: 0 <- 1 <- 2. o'_1 = (-0.4+0.6)/2 = 0.1,
	// o'_0 = (0.8+0.1)/2 = 0.45.
	if w := OCRootWeight(g, []graph.NodeID{0, 1, 2}); math.Abs(w-0.45) > 1e-12 {
		t.Fatalf("chain weight %v, want 0.45", w)
	}
	// One-node walk: the root's own opinion.
	if w := OCRootWeight(g, []graph.NodeID{1}); w != -0.4 {
		t.Fatalf("singleton weight %v, want -0.4", w)
	}
}

// An OC collection must sample bit-identical sets to an LT collection —
// the weight is derived from the walk, never drawn from the stream — so
// the opinion path rides the exact sample the oblivious one does.
func TestOCSetsMatchLT(t *testing.T) {
	g := parallelTestGraph(t)
	opinion.AssignOpinions(g, opinion.Normal, 5)
	lt := NewCollection(g, ModelLT)
	lt.Generate(1500, 7)
	oc := NewCollection(g, ModelOC)
	oc.Generate(1500, 7)
	if lt.Len() != oc.Len() {
		t.Fatalf("%d OC sets, want %d", oc.Len(), lt.Len())
	}
	for i, want := range lt.Sets() {
		got := oc.Sets()[i]
		if len(got) != len(want) {
			t.Fatalf("set %d has %d nodes, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("set %d differs at %d", i, j)
			}
		}
	}
	if len(oc.Weights()) != oc.Len() {
		t.Fatalf("weight column %d, want %d", len(oc.Weights()), oc.Len())
	}
	for i, w := range oc.Weights() {
		if math.IsNaN(w) || w < -1 || w > 1 {
			t.Fatalf("weight %d = %v out of [-1,1]", i, w)
		}
		if want := OCRootWeight(g, oc.Sets()[i]); w != want {
			t.Fatalf("weight %d = %v, want recomputed %v", i, w, want)
		}
	}
	if lt.Weights() != nil {
		t.Fatal("unweighted collection grew a weight column")
	}
}

// AddWeighted must preserve the stored weight verbatim (the snapshot-load
// contract) while Add recomputes it.
func TestOCAddWeighted(t *testing.T) {
	g := parallelTestGraph(t)
	opinion.AssignOpinions(g, opinion.Normal, 5)
	src := NewCollection(g, ModelOC)
	src.Generate(200, 3)

	dst := NewCollection(g, ModelOC)
	for i, s := range src.Sets() {
		dst.AddWeighted(s, src.Weights()[i])
	}
	if dst.Width() != src.Width() {
		t.Fatalf("width %d, want %d", dst.Width(), src.Width())
	}
	for i := range src.Weights() {
		if dst.Weights()[i] != src.Weights()[i] {
			t.Fatalf("weight %d not preserved", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddWeighted on an unweighted collection did not panic")
		}
	}()
	NewCollection(g, ModelIC).AddWeighted([]graph.NodeID{0}, 0.5)
}

// OpinionCoverage on a two-node path (exactly computable): with a
// deterministic live edge, the estimator is exact for the OC spread.
func TestOCOpinionCoverageExact(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1) // 0 -> 1, LT weight 1 after defaults
	g := b.Build()
	g.SetDefaultLTWeights()
	g.SetOpinion(0, 0.6)
	g.SetOpinion(1, -0.2)

	c := NewCollection(g, ModelOC)
	c.Generate(4000, 11)
	// Seeds {0}: node 1 always activates with o'_1 = (o_1+o_0)/2 = 0.2, so
	// σ_o = 0.2. Roots split ~uniformly between 0 and 1; only root-1 sets
	// (weight (o_1+o_0)/2) count — root-0 sets are root-seeded.
	got := c.EstimateOpinionSpread([]graph.NodeID{0})
	if math.Abs(got-0.2) > 0.02 {
		t.Fatalf("estimated opinion spread %v, want 0.2 +- 0.02", got)
	}
	covered, pos, neg := c.OpinionCoverage([]graph.NodeID{0})
	if covered != c.Len() {
		t.Fatalf("covered %d of %d sets, want all", covered, c.Len())
	}
	if neg != 0 || pos <= 0 {
		t.Fatalf("pos/neg = %v/%v, want positive mass only", pos, neg)
	}
	// Out-of-range seeds (defensive path) must not panic.
	if cov, _, _ := c.OpinionCoverage([]graph.NodeID{-1, 99}); cov != 0 {
		t.Fatalf("out-of-range seeds covered %d sets", cov)
	}
}

// GenerateParallelCtx over the weighted kind under an expiring context
// must keep a deterministic prefix, weights included.
func TestOCParallelCancellation(t *testing.T) {
	g := parallelTestGraph(t)
	opinion.AssignOpinions(g, opinion.Normal, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewCollection(g, ModelOC)
	if err := c.GenerateParallelCtx(ctx, 2000, 5, 4); err == nil {
		t.Fatal("expected a context error")
	}
	seq := NewCollection(g, ModelOC)
	seq.Generate(c.Len(), 5)
	for i := range c.Sets() {
		if c.Weights()[i] != seq.Weights()[i] {
			t.Fatalf("prefix weight %d differs", i)
		}
	}
}
