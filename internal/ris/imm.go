package ris

import (
	"context"
	"math"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/im"
)

// IMM implements the martingale-based successor of TIM+ (Tang, Shi, Xiao —
// "Influence Maximization in Near-Linear Time: A Martingale Approach",
// SIGMOD'15), which the paper cites as the most efficient RIS algorithm.
//
// Sampling phase: geometrically shrinking guesses x = n/2^i of OPT; for
// each guess sample θ_i = λ'/x RR sets, run max coverage, and accept the
// lower bound LB = n·F(S_i)/(1+ε') once the estimated spread beats
// (1+ε')·x. Selection phase: top up to θ = λ*/LB sets and solve max
// coverage. RR sets are reused across phases (the martingale analysis
// permits it — that is IMM's improvement over TIM+).
type IMM struct {
	g    *graph.Graph
	kind ModelKind
	opts TIMOptions // same knobs: ε, ℓ, seed, cap
}

// NewIMM returns an IMM selector over g.
func NewIMM(g *graph.Graph, kind ModelKind, opts TIMOptions) *IMM {
	opts.Epsilon = CanonicalEpsilon(opts.Epsilon)
	if opts.Ell <= 0 {
		opts.Ell = 1
	}
	return &IMM{g: g, kind: kind, opts: opts}
}

// Name implements im.Selector.
func (t *IMM) Name() string { return "IMM" }

// Select implements im.Selector. Both the geometric OPT-guessing rounds
// and the final top-up run their θ-sampling through GenerateCtx, so
// cancellation lands within a small batch of RR sets.
func (t *IMM) Select(ctx context.Context, k int) (im.Result, error) {
	n := t.g.NumNodes()
	res := im.Result{Algorithm: t.Name()}
	if err := im.CheckK(k, n); err != nil {
		return res, err
	}
	tr := im.StartTracker(ctx)
	nf := float64(n)
	eps := t.opts.Epsilon
	ell := t.opts.Ell

	col := NewCollection(t.g, t.kind)
	epsPrime := IMMEpsPrime(eps)
	lambdaPrime := IMMLambdaPrime(nf, k, eps, ell)

	lb := 1.0
	maxI := int(math.Ceil(math.Log2(nf))) - 1
	if maxI < 1 {
		maxI = 1
	}
	for i := 1; i <= maxI; i++ {
		x := nf / math.Exp2(float64(i))
		thetaI := int(math.Ceil(lambdaPrime / x))
		if t.opts.ThetaCap > 0 && thetaI > t.opts.ThetaCap {
			thetaI = t.opts.ThetaCap
			res.AddMetric("theta_capped", 1)
		}
		if col.Len() < thetaI {
			if err := col.GenerateCtx(ctx, thetaI-col.Len(), t.opts.Seed); err != nil {
				return res, interrupted(tr, &res, "OPT lower-bounding", err)
			}
		}
		_, frac := col.MaxCoverage(k)
		if nf*frac >= (1+epsPrime)*x {
			lb = nf * frac / (1 + epsPrime)
			break
		}
	}
	res.AddMetric("lower_bound", lb)

	theta := IMMTheta(nf, k, eps, ell, lb)
	if t.opts.ThetaCap > 0 && theta > t.opts.ThetaCap {
		theta = t.opts.ThetaCap
		res.AddMetric("theta_capped", 1)
	}
	if col.Len() < theta {
		if err := col.GenerateCtx(ctx, theta-col.Len(), t.opts.Seed); err != nil {
			return res, interrupted(tr, &res, "node-selection sampling", err)
		}
	}
	seeds, frac := col.MaxCoverage(k)
	res.AddMetric("theta", float64(col.Len()))
	res.AddMetric("rrset_bytes", float64(col.MemoryFootprint()))
	res.AddMetric("coverage", frac)
	res.AddMetric("estimated_spread", frac*nf)
	for _, s := range seeds {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		tr.Seed(&res, s)
	}
	tr.Finish(&res)
	return res, nil
}

var _ im.Selector = (*IMM)(nil)
