package ris

import (
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g := graph.BarabasiAlbert(20000, 3, rng.New(1))
	g.SetUniformProb(0.1)
	g.SetDefaultLTWeights()
	return g
}

func BenchmarkRRGenerationIC(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := NewCollection(g, ModelIC)
		col.Generate(1000, uint64(i))
	}
}

func BenchmarkRRGenerationLT(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col := NewCollection(g, ModelLT)
		col.Generate(1000, uint64(i))
	}
}

func BenchmarkMaxCoverage(b *testing.B) {
	g := benchGraph(b)
	col := NewCollection(g, ModelIC)
	col.Generate(20000, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = col.MaxCoverage(20)
	}
}

func BenchmarkTIMPlusSelect(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTIMPlus(g, ModelIC, TIMOptions{Epsilon: 0.3, Seed: uint64(i), ThetaCap: 50000})
		_ = runSelect(tp, 10)
	}
}

func BenchmarkIMMSelect(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel := NewIMM(g, ModelIC, TIMOptions{Epsilon: 0.3, Seed: uint64(i), ThetaCap: 50000})
		_ = runSelect(sel, 10)
	}
}
