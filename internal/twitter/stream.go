package twitter

import (
	"fmt"
	"math"
	"sort"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

// Tweet is one record of the simulated crawl: (user, timestamp, tokens).
// Topic is recoverable from the hashtag token, as in the real dataset.
type Tweet struct {
	User  graph.NodeID
	Time  float64 // seconds since epoch start
	Topic int
	Text  []string
}

// Dataset bundles the synthetic crawl: the background follow graph, the
// time-ordered tweet stream, and (for validation only) the latent
// per-topic stances the generator used. Estimation code must not read the
// latent fields; tests use them to measure estimation error, mirroring
// the paper's 3.43%/8.57% figures.
type Dataset struct {
	Background *graph.Graph
	Tweets     []Tweet
	Topics     int
	// Category is the observable topic category (encoded in the hashtag,
	// e.g. "#c2t17" → category 2). History-based opinion estimation uses
	// same-category topics as "related".
	Category []int

	// Latent ground truth (generator internals, exported for tests):
	LatentStance [][]float64 // [topic][user] expressed stance if user tweeted, else NaN
	Originators  [][]graph.NodeID
}

// DatasetOptions configures the generator.
type DatasetOptions struct {
	Users       int32 // background graph size
	AvgFollows  int   // average out-degree of the follow graph
	Topics      int   // number of hashtags
	Categories  int   // topic categories (default 5)
	Originators int   // seeds per topic cascade wave (default 12)
	Waves       int   // bursts per topic, separated by long gaps (default 2)
	TweetLen    int   // tokens per tweet (default 9)
	Seed        uint64
}

func (o *DatasetOptions) normalize() {
	if o.Users < 100 {
		o.Users = 100
	}
	if o.AvgFollows <= 0 {
		o.AvgFollows = 8
	}
	if o.Topics <= 0 {
		o.Topics = 12
	}
	if o.Categories <= 0 {
		o.Categories = 5
	}
	if o.Originators <= 0 {
		o.Originators = 12
	}
	if o.Waves <= 0 {
		o.Waves = 2
	}
	if o.TweetLen <= 0 {
		o.TweetLen = 16
	}
}

// Hashtag returns the observable hashtag of a topic; the category is
// encoded so that estimation can group related topics without touching
// generator internals.
func Hashtag(topic, category int) string {
	return fmt.Sprintf("#c%dt%d", category, topic)
}

// GenerateDataset builds the full synthetic crawl. The cascade dynamics
// follow the OI mechanism — a retweeter's expressed stance mixes its own
// latent opinion with the (possibly sign-flipped) stance of the tweet it
// reacts to — which is precisely the real-world behaviour the paper's
// Figures 5a/5b claim the OI model captures best.
func GenerateDataset(opts DatasetOptions) *Dataset {
	opts.normalize()
	r := rng.New(opts.Seed)

	// Background follow graph: directed R-MAT for realistic skew, with
	// latent per-edge propagation (p) and agreement (ϕ) parameters stored
	// on the graph (they are the generator's ground truth). Agreement is
	// bimodal — dyads mostly agree or mostly disagree persistently — which
	// is the premise that makes ϕ estimable from interaction history
	// (Def. 5) in the first place.
	m := int64(opts.AvgFollows) * int64(opts.Users)
	bg := graph.RMAT(opts.Users, m, graph.DefaultRMAT, false, r)
	bg.SetEdgeParamsFunc(func(u, v graph.NodeID) (p, phi float64) {
		x := r.Float64()
		switch {
		case x < 0.5:
			phi = 0.8 + 0.2*r.Float64() // persistent agreers
		case x < 0.8:
			phi = 0.2 * r.Float64() // persistent disagreers
		default:
			phi = 0.3 + 0.4*r.Float64() // genuinely mixed
		}
		return 0.08 + 0.25*r.Float64(), phi
	})
	bg.SetDefaultLTWeights()

	d := &Dataset{
		Background:   bg,
		Topics:       opts.Topics,
		Category:     make([]int, opts.Topics),
		LatentStance: make([][]float64, opts.Topics),
		Originators:  make([][]graph.NodeID, opts.Topics),
	}

	// Per-user ideology vector: one scalar per category. A user's latent
	// opinion on a topic is its ideology for the topic's category plus a
	// small topic-specific wobble — so same-category topics correlate and
	// the history estimator has signal to exploit.
	ideology := make([][]float64, opts.Categories)
	for c := range ideology {
		ideology[c] = make([]float64, opts.Users)
		for u := range ideology[c] {
			ideology[c][u] = clamp(r.NormFloat64()*0.5, -1, 1)
		}
	}

	now := 0.0
	for topic := 0; topic < opts.Topics; topic++ {
		cat := topic % opts.Categories
		d.Category[topic] = cat
		stance := make([]float64, opts.Users)
		for u := range stance {
			stance[u] = math.NaN()
		}
		latent := make([]float64, opts.Users)
		for u := range latent {
			latent[u] = clamp(ideology[cat][u]+0.25*r.NormFloat64(), -1, 1)
		}

		for wave := 0; wave < opts.Waves; wave++ {
			now += 50000 + r.Float64()*20000 // long inter-wave gap
			// Originators tweet their own latent opinion.
			type pending struct {
				user graph.NodeID
				t    float64
			}
			var queue []pending
			tweeted := make(map[graph.NodeID]bool)
			for i := 0; i < opts.Originators; i++ {
				u := graph.NodeID(r.Int31n(opts.Users))
				if tweeted[u] || bg.OutDegree(u) == 0 {
					continue
				}
				tweeted[u] = true
				ts := now + r.Float64()*600
				stance[u] = latent[u]
				d.emit(u, ts, topic, latent[u], opts.TweetLen, r)
				queue = append(queue, pending{u, ts})
				d.Originators[topic] = append(d.Originators[topic], u)
			}
			// Cascade: followers react with the OI mixing rule.
			for head := 0; head < len(queue); head++ {
				cur := queue[head]
				nbrs := bg.OutNeighbors(cur.user)
				ps := bg.OutProbs(cur.user)
				phis := bg.OutPhis(cur.user)
				for i, v := range nbrs {
					if tweeted[v] {
						continue
					}
					if r.Float64() >= ps[i] {
						continue
					}
					tweeted[v] = true
					sign := 1.0
					if r.Float64() >= phis[i] {
						sign = -1
					}
					expressed := (latent[v] + sign*stance[cur.user]) / 2
					stance[v] = expressed
					ts := cur.t + 30 + r.Exp(1.0/180)
					d.emit(v, ts, topic, expressed, opts.TweetLen, r)
					queue = append(queue, pending{v, ts})
				}
			}
		}
		d.LatentStance[topic] = stance
	}
	sort.SliceStable(d.Tweets, func(i, j int) bool { return d.Tweets[i].Time < d.Tweets[j].Time })
	return d
}

func (d *Dataset) emit(u graph.NodeID, ts float64, topic int, stance float64, length int, r *rng.RNG) {
	hashtag := Hashtag(topic, d.Category[topic])
	d.Tweets = append(d.Tweets, Tweet{
		User:  u,
		Time:  ts,
		Topic: topic,
		Text:  ComposeTweet(stance, hashtag, length, r),
	})
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
