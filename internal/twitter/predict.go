package twitter

import (
	"math"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

// ModelName selects the diffusion model used to predict a topic graph's
// opinion spread (Figures 5a-5c compare these three).
type ModelName string

const (
	// ModelOI uses the paper's OI model with the IC first layer.
	ModelOI ModelName = "OI"
	// ModelOC uses the Zhang-et-al. OC baseline (LT-based).
	ModelOC ModelName = "OC"
	// ModelIC uses plain IC activation and scores the *static* estimated
	// opinions of activated users (the opinion-oblivious prediction).
	ModelIC ModelName = "IC"
)

// PredictOpinionSpread replays the diffusion from the topic graph's real
// originator seeds under the chosen model (using whatever parameters are
// currently on tg.Graph — run EstimateParameters first) and returns the
// expected opinion spread over `runs` simulations.
func PredictOpinionSpread(tg *TopicGraph, model ModelName, runs int, seed uint64) float64 {
	if runs <= 0 {
		runs = 1000
	}
	g := tg.Graph
	switch model {
	case ModelOI:
		est := diffusion.MonteCarlo(diffusion.NewOI(g, diffusion.LayerIC), tg.Seeds,
			diffusion.MCOptions{Runs: runs, Seed: seed})
		return est.OpinionSpread
	case ModelOC:
		est := diffusion.MonteCarlo(diffusion.NewOC(g), tg.Seeds,
			diffusion.MCOptions{Runs: runs, Seed: seed})
		return est.OpinionSpread
	case ModelIC:
		// Activation by IC; each activated non-seed contributes its static
		// estimated opinion (no second layer).
		m := diffusion.NewIC(g)
		s := diffusion.NewScratch(g.NumNodes())
		isSeed := make(map[graph.NodeID]bool, len(tg.Seeds))
		for _, v := range tg.Seeds {
			isSeed[v] = true
		}
		r := rng.New(0)
		total := 0.0
		for i := 0; i < runs; i++ {
			r.Reseed(rng.SplitSeed(seed, uint64(i)))
			m.Simulate(tg.Seeds, r, s)
			for _, v := range s.Activated() {
				if !isSeed[v] {
					total += g.Opinion(v)
				}
			}
		}
		return total / float64(runs)
	default:
		panic("twitter: unknown prediction model " + string(model))
	}
}

// NRMSE returns the normalized root-mean-square error (in %) between
// model predictions and ground truths, normalized by the ground-truth
// range (falling back to the mean magnitude when the range degenerates).
func NRMSE(preds, truths []float64) float64 {
	if len(preds) != len(truths) || len(preds) == 0 {
		panic("twitter: NRMSE needs equal-length non-empty slices")
	}
	var se, lo, hi float64
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := range preds {
		d := preds[i] - truths[i]
		se += d * d
		if truths[i] < lo {
			lo = truths[i]
		}
		if truths[i] > hi {
			hi = truths[i]
		}
	}
	rmse := math.Sqrt(se / float64(len(preds)))
	norm := hi - lo
	if norm == 0 {
		for _, tr := range truths {
			norm += math.Abs(tr)
		}
		norm /= float64(len(truths))
	}
	if norm == 0 {
		norm = 1
	}
	return 100 * rmse / norm
}
