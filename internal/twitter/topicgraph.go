package twitter

import (
	"math"
	"sort"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/opinion"
	"github.com/holisticim/holisticim/internal/rng"
)

// TopicGraph is one topic-focused subgraph extracted from the stream: the
// induced piece of the background graph over the users who tweeted in one
// activity burst, with classifier opinions attached.
type TopicGraph struct {
	Topic     int
	Category  int
	StartTime float64
	EndTime   float64
	// BackNodes maps local node ids to background ids.
	BackNodes []graph.NodeID
	// Graph is the induced subgraph over BackNodes (local ids).
	Graph *graph.Graph
	// Opinions holds the classifier's score for each local node's first
	// tweet in the burst — the ground-truth opinion of Sec. 4.1.1.
	Opinions []float64
	// Times holds each local node's first-tweet timestamp in the burst.
	Times []float64
	// Seeds are local ids with in-degree 0 in the burst's tweet order —
	// the information originators.
	Seeds []graph.NodeID
}

// IsSeed reports whether the local node is one of the burst's
// originators.
func (tg *TopicGraph) IsSeed(local graph.NodeID) bool {
	for _, s := range tg.Seeds {
		if s == local {
			return true
		}
	}
	return false
}

// GroundTruthOpinionSpread is Σ of classifier opinions over non-seed
// participants — the quantity Figures 5a/5b compare models against.
func (tg *TopicGraph) GroundTruthOpinionSpread() float64 {
	isSeed := make(map[graph.NodeID]bool, len(tg.Seeds))
	for _, s := range tg.Seeds {
		isSeed[s] = true
	}
	total := 0.0
	for v, o := range tg.Opinions {
		if !isSeed[graph.NodeID(v)] {
			total += o
		}
	}
	return total
}

// ExtractOptions tunes topic-subgraph construction.
type ExtractOptions struct {
	Classifier Classifier
	// GapSigmas sets the burst-splitting threshold at mean + GapSigmas·std
	// of the topic's inter-tweet gaps ("a time difference ... that
	// deviates significantly from the expected"); default 3.
	GapSigmas float64
	Seed      uint64
}

// ExtractTopicGraphs scans the stream once in timestamp order (the paper
// stresses a single scan suffices) and builds topic-focused subgraphs.
// For each topic, consecutive tweets whose gap exceeds the learned
// threshold split the activity into separate subgraphs.
func ExtractTopicGraphs(d *Dataset, opts ExtractOptions) []TopicGraph {
	if opts.GapSigmas <= 0 {
		opts.GapSigmas = 3
	}
	r := rng.New(opts.Seed)

	// Learn, per topic, the inter-arrival threshold from the data.
	gaps := make(map[int][]float64)
	lastSeen := make(map[int]float64)
	for _, tw := range d.Tweets {
		if prev, ok := lastSeen[tw.Topic]; ok {
			gaps[tw.Topic] = append(gaps[tw.Topic], tw.Time-prev)
		}
		lastSeen[tw.Topic] = tw.Time
	}
	threshold := make(map[int]float64)
	for topic, gs := range gaps {
		mean, std := meanStd(gs)
		threshold[topic] = mean + opts.GapSigmas*std
	}

	// Single scan: group tweets into bursts per topic.
	type burst struct {
		topic  int
		tweets []Tweet
	}
	var bursts []burst
	open := make(map[int]int) // topic -> index into bursts
	lastTime := make(map[int]float64)
	for _, tw := range d.Tweets {
		idx, ok := open[tw.Topic]
		if ok && tw.Time-lastTime[tw.Topic] > threshold[tw.Topic] {
			ok = false
		}
		if !ok {
			bursts = append(bursts, burst{topic: tw.Topic})
			idx = len(bursts) - 1
			open[tw.Topic] = idx
		}
		bursts[idx].tweets = append(bursts[idx].tweets, tw)
		lastTime[tw.Topic] = tw.Time
	}

	var out []TopicGraph
	for _, b := range bursts {
		if len(b.tweets) < 3 {
			continue // too small to carry any diffusion signal
		}
		tg := buildTopicGraph(d, b.topic, b.tweets, opts.Classifier, r)
		out = append(out, tg)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartTime < out[j].StartTime })
	return out
}

// buildTopicGraph induces the subgraph over a burst's users, classifies
// their first tweets and identifies originators (in-degree-0 nodes, where
// edges only count arcs from earlier tweeters — the temporal direction of
// information flow).
func buildTopicGraph(d *Dataset, topic int, tweets []Tweet, cls Classifier, r *rng.RNG) TopicGraph {
	first := make(map[graph.NodeID]Tweet)
	var order []graph.NodeID
	for _, tw := range tweets {
		if _, ok := first[tw.User]; !ok {
			first[tw.User] = tw
			order = append(order, tw.User)
		}
	}
	sub, _ := d.Background.InducedSubgraph(order)
	tg := TopicGraph{
		Topic:     topic,
		Category:  d.Category[topic],
		StartTime: tweets[0].Time,
		EndTime:   tweets[len(tweets)-1].Time,
		BackNodes: order,
		Graph:     sub,
		Opinions:  make([]float64, len(order)),
		Times:     make([]float64, len(order)),
	}
	for i, u := range order {
		tg.Opinions[i] = cls.Classify(first[u].Text, r)
		tg.Times[i] = first[u].Time
	}
	// Temporal in-degree: an arc (u,v) of the induced graph is "active"
	// when u tweeted before v; nodes with no active in-arc are seeds.
	hasParent := make([]bool, len(order))
	for li := range order {
		u := graph.NodeID(li)
		tu := first[order[li]].Time
		for _, v := range sub.OutNeighbors(u) {
			if first[order[v]].Time > tu {
				hasParent[v] = true
			}
		}
	}
	for li := range order {
		if !hasParent[li] {
			tg.Seeds = append(tg.Seeds, graph.NodeID(li))
		}
	}
	return tg
}

// EstimateParameters annotates a target topic graph with estimated model
// parameters using ONLY past topic graphs (those ending before the target
// starts): node opinions via the history-weighted average (related =
// same category with weight 1, others 0.3), interaction ϕ via cross-topic
// agreement counts over ALL past topics (Sec. 4.1.1), and influence
// probabilities via follow-through rates. The target graph's edge/opinion
// layers are overwritten in place.
func EstimateParameters(target *TopicGraph, history []TopicGraph) {
	est := opinion.HistoryEstimator{HalfLife: 4}

	// Index history opinions: user -> records; and pairwise agreement.
	//
	// A tweeted opinion is the *expressed* opinion. For a burst's seed it
	// equals the personal opinion; for everyone else it mixes the personal
	// opinion with the activator's stance, o' = (o ± o'_u)/2, so the
	// personal opinion is recovered (in expectation, the interaction term
	// being centred) by doubling — the paper's observation that "tweets of
	// the seed-nodes indeed express their personal opinion, however the
	// tweets of other nodes additionally include the effect of the
	// opinions of their network".
	type obs struct {
		topicIdx int
		category int
		op       float64 // de-biased personal-opinion observation
	}
	byUser := make(map[graph.NodeID][]obs)
	for hi := range history {
		h := &history[hi]
		if h.EndTime >= target.StartTime {
			continue // future data is off-limits
		}
		for li, o := range h.Opinions {
			personal := o
			if !h.IsSeed(graph.NodeID(li)) {
				personal = clamp(2*o, -1, 1)
			}
			u := h.BackNodes[li]
			byUser[u] = append(byUser[u], obs{topicIdx: hi, category: h.Category, op: personal})
		}
	}

	for li, u := range target.BackNodes {
		records := make([]opinion.Record, 0, len(byUser[u]))
		for i, ob := range byUser[u] {
			sim := 0.3
			if ob.category == target.Category {
				sim = 1
			}
			records = append(records, opinion.Record{
				Similarity: sim,
				Age:        float64(len(byUser[u]) - 1 - i),
				Opinion:    ob.op,
			})
		}
		target.Graph.SetOpinion(graph.NodeID(li), est.Estimate(records))
	}

	// Interaction and influence estimation per target edge.
	agree := make(map[[2]graph.NodeID][2]int) // (u,v) -> {agreements, co-occurrences}
	appearances := make(map[graph.NodeID]int)
	followed := make(map[[2]graph.NodeID]int)
	for hi := range history {
		h := &history[hi]
		if h.EndTime >= target.StartTime {
			continue
		}
		for _, u := range h.BackNodes {
			appearances[u]++
		}
		for li := range h.BackNodes {
			u := graph.NodeID(li)
			for _, v := range h.Graph.OutNeighbors(u) {
				bu, bv := h.BackNodes[u], h.BackNodes[v]
				key := [2]graph.NodeID{bu, bv}
				// Agreement only counts polar-vs-polar co-occurrences;
				// neutral classifications carry no orientation.
				if h.Opinions[u] != 0 && h.Opinions[v] != 0 {
					rec := agree[key]
					rec[1]++
					if sameOrientation(h.Opinions[u], h.Opinions[v]) {
						rec[0]++
					}
					agree[key] = rec
				}
				// Follow-through: v reacted after u in this burst.
				if h.Times[v] > h.Times[u] {
					followed[key]++
				}
			}
		}
	}
	g := target.Graph
	for li := range target.BackNodes {
		u := graph.NodeID(li)
		bu := target.BackNodes[li]
		nbrs := g.OutNeighbors(u)
		for _, v := range nbrs {
			bv := target.BackNodes[v]
			key := [2]graph.NodeID{bu, bv}
			rec := agree[key]
			// Laplace-smoothed agreement rate: pairs co-occur in only a few
			// bursts, so the raw fraction is quantized to {0, 1/2, 1}; the
			// (a+1)/(n+2) posterior mean pulls sparse estimates toward the
			// uninformative 1/2.
			phi := opinion.AgreementInteraction(rec[0]+1, rec[1]+2, 0.5)
			p := 0.1
			if appearances[bu] > 0 {
				p = clamp(float64(followed[key])/float64(appearances[bu]), 0.02, 0.9)
			}
			// apply via the func-based setter to keep validation in one place
			setEdge(g, u, v, p, phi)
		}
	}
	g.SetDefaultLTWeights()
}

// setEdge writes (p, ϕ) for one edge using the public API.
func setEdge(g *graph.Graph, u, v graph.NodeID, p, phi float64) {
	nbrs := g.OutNeighbors(u)
	ps := g.OutProbs(u)
	phis := g.OutPhis(u)
	for i, w := range nbrs {
		if w == v {
			ps[i] = p
			phis[i] = phi
			return
		}
	}
}

func sameOrientation(a, b float64) bool {
	switch {
	case a > 0 && b > 0:
		return true
	case a < 0 && b < 0:
		return true
	case a == 0 && b == 0:
		return true
	default:
		return false
	}
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
