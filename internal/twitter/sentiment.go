// Package twitter simulates the paper's Twitter study (Sec. 4.1.1)
// end-to-end on synthetic data: a generative tweet stream over a
// background follow graph, a lexicon-based sentiment classifier standing
// in for the commercial APIs the paper used, topic-focused subgraph
// extraction with a learned inter-arrival threshold, opinion/interaction
// parameter estimation from history, and ground-truth opinion-spread
// replay. DESIGN.md §3 documents why this substitution preserves the
// experiments' behaviour.
package twitter

import (
	"strings"

	"github.com/holisticim/holisticim/internal/rng"
)

// Sentiment lexicons. The generator samples tweet tokens from these
// according to the author's latent stance; the classifier recovers the
// stance by counting. Both sides see only the token lists, so the
// classifier is a genuine (if simple) model of the paper's hierarchical
// neutral→polarity pipeline.
var (
	positiveWords = []string{
		"love", "great", "awesome", "amazing", "fantastic", "excellent",
		"happy", "win", "best", "brilliant", "cool", "enjoy", "good",
		"impressive", "like", "nice", "perfect", "recommend", "smooth",
		"solid", "stunning", "superb", "sweet", "thrilled", "wonderful",
		"worthy", "yes", "beautiful", "delight", "fast",
	}
	negativeWords = []string{
		"hate", "terrible", "awful", "horrible", "worst", "bad",
		"broken", "bug", "crash", "disappointed", "fail", "garbage",
		"lag", "mess", "no", "poor", "problem", "regret", "sad",
		"slow", "sucks", "trash", "ugly", "useless", "waste",
		"weak", "wrong", "angry", "annoying", "boring",
	}
	neutralWords = []string{
		"today", "people", "time", "thing", "new", "just", "really",
		"think", "know", "make", "see", "look", "going", "still",
		"phone", "update", "release", "version", "news", "watch",
		"read", "talk", "show", "week", "day", "year", "start",
		"end", "first", "next",
	}
)

// Classifier is a two-stage lexicon sentiment model: stage one decides
// neutral vs polar from the fraction of polar tokens; stage two scores
// polarity as (pos−neg)/(pos+neg), mapped to [−1,1]. Noise (label
// flips / attenuation) can be injected to emulate real classifier error.
type Classifier struct {
	// NeutralCut is the minimum polar-token fraction for a tweet to be
	// considered non-neutral (default 0.12).
	NeutralCut float64
	// Noise adds a uniform ±Noise perturbation to non-neutral scores,
	// clamped to [−1,1]. Zero means a deterministic classifier.
	Noise float64
	// Seed drives the noise stream.
	Seed uint64
}

// Classify scores a whitespace-tokenized tweet. The optional rng is only
// consulted when Noise > 0; pass nil for the deterministic path.
func (c Classifier) Classify(tokens []string, r *rng.RNG) float64 {
	pos, neg, total := 0, 0, 0
	for _, tok := range tokens {
		if strings.HasPrefix(tok, "#") {
			continue // hashtags carry topic, not sentiment
		}
		total++
		if inLexicon(positiveWords, tok) {
			pos++
		} else if inLexicon(negativeWords, tok) {
			neg++
		}
	}
	if total == 0 {
		return 0
	}
	cut := c.NeutralCut
	if cut <= 0 {
		cut = 0.12
	}
	polarFrac := float64(pos+neg) / float64(total)
	if polarFrac < cut || pos == neg {
		return 0
	}
	score := float64(pos-neg) / float64(pos+neg)
	if c.Noise > 0 && r != nil {
		score += r.Range(-c.Noise, c.Noise)
	}
	if score > 1 {
		score = 1
	}
	if score < -1 {
		score = -1
	}
	return score
}

func inLexicon(lex []string, tok string) bool {
	for _, w := range lex {
		if w == tok {
			return true
		}
	}
	return false
}

// ComposeTweet generates tokens expressing the given stance about the
// topic hashtag. A fixed fraction of tokens is polar; among the polar
// tokens the positive share is (1+stance)/2, so the classifier's
// (pos−neg)/(pos+neg) ratio is an unbiased (binomially noisy) estimate of
// the stance — magnitude included, not just orientation.
func ComposeTweet(stance float64, hashtag string, length int, r *rng.RNG) []string {
	if length < 3 {
		length = 3
	}
	tokens := make([]string, 0, length+1)
	tokens = append(tokens, hashtag)
	const polarFrac = 0.55
	posShare := (1 + stance) / 2
	for i := 0; i < length; i++ {
		if r.Float64() < polarFrac {
			if r.Float64() < posShare {
				tokens = append(tokens, positiveWords[r.Intn(len(positiveWords))])
			} else {
				tokens = append(tokens, negativeWords[r.Intn(len(negativeWords))])
			}
		} else {
			tokens = append(tokens, neutralWords[r.Intn(len(neutralWords))])
		}
	}
	return tokens
}
