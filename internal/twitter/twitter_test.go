package twitter

import (
	"math"
	"strings"
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func smallDataset(seed uint64) *Dataset {
	return GenerateDataset(DatasetOptions{
		Users:       800,
		AvgFollows:  6,
		Topics:      10,
		Categories:  3,
		Originators: 10,
		Waves:       2,
		Seed:        seed,
	})
}

func TestClassifierRecoverStance(t *testing.T) {
	r := rng.New(1)
	cls := Classifier{}
	var agree, total int
	for i := 0; i < 500; i++ {
		stance := r.Range(-1, 1)
		text := ComposeTweet(stance, "#c0t0", 12, r)
		got := cls.Classify(text, nil)
		if math.Abs(stance) > 0.5 && got != 0 {
			total++
			if (stance > 0) == (got > 0) {
				agree++
			}
		}
	}
	if total < 100 {
		t.Fatalf("classifier returned neutral too often: %d polar of 500", total)
	}
	if frac := float64(agree) / float64(total); frac < 0.9 {
		t.Fatalf("classifier orientation accuracy %v", frac)
	}
}

func TestClassifierNeutral(t *testing.T) {
	cls := Classifier{}
	if got := cls.Classify([]string{"today", "people", "time", "#c0t0"}, nil); got != 0 {
		t.Fatalf("neutral text scored %v", got)
	}
	if got := cls.Classify(nil, nil); got != 0 {
		t.Fatalf("empty text scored %v", got)
	}
}

func TestClassifierIgnoresHashtags(t *testing.T) {
	cls := Classifier{}
	a := cls.Classify([]string{"love", "great", "win", "bad"}, nil)
	b := cls.Classify([]string{"#love", "love", "great", "win", "bad"}, nil)
	if a == 0 {
		t.Fatal("clearly positive text scored neutral")
	}
	if a != b {
		t.Fatalf("hashtag affected score: %v vs %v", a, b)
	}
}

func TestGenerateDatasetShape(t *testing.T) {
	d := smallDataset(7)
	if d.Background.NumNodes() != 800 {
		t.Fatalf("users %d", d.Background.NumNodes())
	}
	if len(d.Tweets) < 200 {
		t.Fatalf("too few tweets: %d", len(d.Tweets))
	}
	// stream sorted by time
	for i := 1; i < len(d.Tweets); i++ {
		if d.Tweets[i].Time < d.Tweets[i-1].Time {
			t.Fatal("tweet stream not time-ordered")
		}
	}
	// every tweet's hashtag encodes its topic+category
	for _, tw := range d.Tweets[:50] {
		want := Hashtag(tw.Topic, d.Category[tw.Topic])
		found := false
		for _, tok := range tw.Text {
			if tok == want {
				found = true
			}
			if strings.HasPrefix(tok, "#") && tok != want {
				t.Fatalf("foreign hashtag %s in topic %d tweet", tok, tw.Topic)
			}
		}
		if !found {
			t.Fatalf("tweet missing its hashtag %s", want)
		}
	}
}

func TestExtractTopicGraphs(t *testing.T) {
	d := smallDataset(11)
	tgs := ExtractTopicGraphs(d, ExtractOptions{Seed: 3})
	if len(tgs) < d.Topics {
		t.Fatalf("expected at least one subgraph per topic, got %d", len(tgs))
	}
	// With 2 waves per topic and long inter-wave gaps, most topics should
	// split into ≥2 subgraphs.
	perTopic := map[int]int{}
	for _, tg := range tgs {
		perTopic[tg.Topic]++
	}
	multi := 0
	for _, c := range perTopic {
		if c >= 2 {
			multi++
		}
	}
	if multi < d.Topics/2 {
		t.Fatalf("burst splitting too weak: %v topics split of %d", multi, d.Topics)
	}
	for _, tg := range tgs {
		if len(tg.Seeds) == 0 {
			t.Fatalf("topic graph with no originators (topic %d, %d nodes)", tg.Topic, len(tg.BackNodes))
		}
		if len(tg.Opinions) != int(tg.Graph.NumNodes()) {
			t.Fatal("opinion vector length mismatch")
		}
		if tg.EndTime < tg.StartTime {
			t.Fatal("negative burst duration")
		}
	}
}

func TestOriginatorsAreRealOriginators(t *testing.T) {
	// Generator originators must mostly be detected as seeds (in-degree-0
	// in temporal order) of some burst of their topic.
	d := smallDataset(13)
	tgs := ExtractTopicGraphs(d, ExtractOptions{Seed: 5})
	found, total := 0, 0
	for topic, origs := range d.Originators {
		for _, bu := range origs {
			total++
			for _, tg := range tgs {
				if tg.Topic != topic {
					continue
				}
				for _, s := range tg.Seeds {
					if tg.BackNodes[s] == bu {
						found++
						goto next
					}
				}
			}
		next:
		}
	}
	if float64(found) < 0.7*float64(total) {
		t.Fatalf("only %d/%d generator originators detected as seeds", found, total)
	}
}

func TestEstimateParametersOpinionError(t *testing.T) {
	// The paper reports lower estimation error on seed nodes (3.43%) than
	// on non-seeds (8.57%) because seed tweets express personal opinion
	// while other tweets mix in network effects. Reproduce the qualitative
	// finding: predicted expressed opinion (ô for seeds, ô/2 for
	// non-seeds, whose expressed stance halves under OI mixing) errs less
	// on seeds, and stays within loose absolute bounds.
	d := smallDataset(17)
	tgs := ExtractTopicGraphs(d, ExtractOptions{Seed: 7})
	if len(tgs) < 6 {
		t.Skip("not enough topic graphs")
	}
	var seedErr, nonSeedErr float64
	var seedN, nonSeedN int
	// Evaluate on the last few bursts, estimating from everything earlier.
	for i := len(tgs) - 4; i < len(tgs); i++ {
		target := &tgs[i]
		EstimateParameters(target, tgs[:i])
		for li := range target.BackNodes {
			est := target.Graph.Opinion(graph.NodeID(li))
			truth := target.Opinions[li]
			if target.IsSeed(graph.NodeID(li)) {
				seedErr += math.Abs(est - truth)
				seedN++
			} else {
				nonSeedErr += math.Abs(est/2 - truth)
				nonSeedN++
			}
		}
	}
	if seedN == 0 || nonSeedN == 0 {
		t.Skip("no seeds/non-seeds in evaluation bursts")
	}
	seedAvg := seedErr / float64(seedN) / 2 // fraction of the [-1,1] range
	nonSeedAvg := nonSeedErr / float64(nonSeedN) / 2
	t.Logf("seed error %.1f%%, non-seed error %.1f%%", seedAvg*100, nonSeedAvg*100)
	if seedAvg > 0.30 {
		t.Fatalf("seed opinion estimation error %.1f%% too high", seedAvg*100)
	}
	if nonSeedAvg > 0.35 {
		t.Fatalf("non-seed opinion estimation error %.1f%% too high", nonSeedAvg*100)
	}
}

func TestEstimateParametersUsesOnlyPast(t *testing.T) {
	d := smallDataset(19)
	tgs := ExtractTopicGraphs(d, ExtractOptions{Seed: 9})
	if len(tgs) < 2 {
		t.Skip("not enough topic graphs")
	}
	first := &tgs[0]
	// Estimating the FIRST burst with "history" that is entirely in its
	// future must fall back to neutral opinions and default parameters.
	EstimateParameters(first, tgs[1:])
	for li := range first.BackNodes {
		if first.Graph.Opinion(graph.NodeID(li)) != 0 {
			t.Fatal("future data leaked into estimation")
		}
	}
}

func TestPredictionOIBeatsICOnAverage(t *testing.T) {
	// The headline claim of Figures 5a/5b: OI's predicted opinion spread
	// tracks ground truth more closely than IC's static prediction.
	d := smallDataset(23)
	tgs := ExtractTopicGraphs(d, ExtractOptions{Seed: 11})
	var oiPreds, icPreds, truths []float64
	for i := range tgs {
		if i == 0 || len(tgs[i].BackNodes) < 10 {
			continue
		}
		target := &tgs[i]
		EstimateParameters(target, tgs[:i])
		truths = append(truths, target.GroundTruthOpinionSpread())
		oiPreds = append(oiPreds, PredictOpinionSpread(target, ModelOI, 400, 3))
		icPreds = append(icPreds, PredictOpinionSpread(target, ModelIC, 400, 3))
	}
	if len(truths) < 3 {
		t.Skip("not enough usable topic graphs")
	}
	oiErr := NRMSE(oiPreds, truths)
	icErr := NRMSE(icPreds, truths)
	if oiErr >= icErr {
		t.Fatalf("OI NRMSE %.1f%% not better than IC %.1f%%", oiErr, icErr)
	}
}

func TestNRMSE(t *testing.T) {
	if got := NRMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Fatalf("perfect prediction NRMSE %v", got)
	}
	got := NRMSE([]float64{2, 3}, []float64{1, 2}) // rmse 1, range 1
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("NRMSE %v want 100", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched lengths")
		}
	}()
	NRMSE([]float64{1}, []float64{1, 2})
}

func TestDatasetDeterminism(t *testing.T) {
	a := smallDataset(31)
	b := smallDataset(31)
	if len(a.Tweets) != len(b.Tweets) {
		t.Fatal("tweet counts differ")
	}
	for i := range a.Tweets {
		if a.Tweets[i].User != b.Tweets[i].User || a.Tweets[i].Time != b.Tweets[i].Time {
			t.Fatalf("tweet %d differs", i)
		}
	}
}
