package sketch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/ris"
)

// RepairOptions tunes one Repair call.
type RepairOptions struct {
	// MaxHops, when positive, bounds the refresh: candidate sets whose
	// dirty nodes all sit deeper than MaxHops walk positions from the root
	// are NOT resampled this call — they are marked stale and picked up by
	// the next exact repair (MaxHops = 0). Walk position is the exact hop
	// depth for LT/OC walks (sets store the walk in order) and a
	// conservative ordering proxy for IC BFS sets (discovery position
	// upper-bounds nothing below the true depth, so a hop-bounded IC
	// refresh may defer a set whose dirty node is actually shallow — it
	// never resamples MORE than an exact repair would). Bounded staleness
	// for sustained churn, in the spirit of hop-based approximate IM.
	MaxHops int
	// Workers bounds parallel resampling (default: the index's build
	// workers). Cannot change the resampled sets.
	Workers int
}

// RepairStats reports what one Repair call did.
type RepairStats struct {
	Candidates int    // sets containing a dirty node (plus stale backlog on exact repairs)
	Resampled  int    // sets resampled against the new snapshot
	Changed    int    // resampled sets whose contents actually differ
	Deferred   int    // candidates skipped by MaxHops this call
	Stale      int    // total stale sets after the call
	Version    uint64 // the version the index now advertises
}

// GraphVersion returns the mutation-log version the sample is
// synchronized to (0 until SetGraphVersion or Repair stamps one).
func (x *Index) GraphVersion() uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.graphVersion
}

// SetGraphVersion stamps the version of the graph content the index was
// built (or loaded) against. Serving layers call it once at registration
// so later repairs advance from the right baseline.
func (x *Index) SetGraphVersion(v uint64) {
	x.mu.Lock()
	x.graphVersion = v
	x.mu.Unlock()
}

// StaleSets returns how many sets a hop-bounded repair left describing
// older content. Zero after every exact repair.
func (x *Index) StaleSets() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.stale)
}

// Repair re-synchronizes the index with a mutated snapshot of its graph
// without rebuilding: g is the new content, dirty the mutated edges'
// target nodes (live.BatchResult.Dirty, or the union of several batches'
// dirty sets — repairs coalesce), newVersion the mutation-log version g
// carries.
//
// Correctness rests on the samplers' locality: both reverse samplers
// read the in-edge list of a node only AFTER adding that node to the
// set, and every mutated edge's reads key off its target. An RR set
// containing no dirty node therefore replays byte-identically on g, and
// resampling exactly the sets that DO contain one — deterministically,
// from the same per-index split streams (Seed, id) — yields a collection
// byte-identical to a from-scratch generation of the same count over g.
// The node count must be unchanged (the root draw depends on n); Repair
// errors otherwise and the caller must rebuild.
//
// The memoized greedy order is invalidated only when a resampled set
// actually changed; repairs that touch nothing (or replay identically)
// keep serving the memoized order untouched. After an exact repair the
// index's fingerprint matches g, so Matches — and every serving fast
// path behind it — accepts the new snapshot; until then the fingerprints
// disagree and planners re-route queries to cold backends rather than
// silently serving stale samples. A hop-bounded repair also re-matches
// the index to g but leaves Stale > 0, advertising exactly how much of
// the sample still describes older content.
func (x *Index) Repair(ctx context.Context, g *graph.Graph, dirty []graph.NodeID, newVersion uint64, opts RepairOptions) (RepairStats, error) {
	if g == nil {
		return RepairStats{}, errors.New("sketch: repair against nil graph")
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if g.NumNodes() != x.g.NumNodes() {
		return RepairStats{}, fmt.Errorf("sketch: node count changed (%d -> %d); repair cannot preserve the sample, rebuild instead",
			x.g.NumNodes(), g.NumNodes())
	}
	if err := ctx.Err(); err != nil {
		return RepairStats{}, err
	}

	// Candidates: every set whose walk touched a dirty node, via the
	// inverted index of the CURRENT sample. An exact repair also drains
	// the stale backlog a previous hop-bounded refresh left behind.
	n := x.g.NumNodes()
	dirtyMark := make(map[graph.NodeID]struct{}, len(dirty))
	candSet := make(map[int32]struct{})
	for di, d := range dirty {
		if di&0xFFF == 0 {
			if err := ctx.Err(); err != nil {
				return RepairStats{}, err
			}
		}
		if d < 0 || d >= n {
			return RepairStats{}, fmt.Errorf("sketch: dirty node %d out of range [0,%d)", d, n)
		}
		dirtyMark[d] = struct{}{}
		for _, sid := range x.col.SetsContaining(d) {
			candSet[sid] = struct{}{}
		}
	}
	st := RepairStats{Candidates: len(candSet), Version: newVersion}

	// Hop-bounded mode: defer candidates whose dirty nodes all sit deeper
	// than MaxHops positions into the walk. The root is position 0.
	resample := make([]int32, 0, len(candSet))
	sets := x.col.Sets()
	pollAt := 0
	for sid := range candSet {
		if pollAt&0xFFF == 0 {
			if err := ctx.Err(); err != nil {
				return st, err
			}
		}
		pollAt++
		if opts.MaxHops > 0 {
			minPos := -1
			for pos, v := range sets[sid] {
				if _, ok := dirtyMark[v]; ok {
					minPos = pos
					break
				}
			}
			if minPos > opts.MaxHops {
				if x.stale == nil {
					x.stale = make(map[int32]struct{})
				}
				x.stale[sid] = struct{}{}
				st.Deferred++
				continue
			}
		}
		resample = append(resample, sid)
	}
	if opts.MaxHops <= 0 && len(x.stale) > 0 {
		pollAt = 0
		for sid := range x.stale {
			if pollAt&0xFFF == 0 {
				if err := ctx.Err(); err != nil {
					return st, err
				}
			}
			pollAt++
			if _, already := candSet[sid]; !already {
				resample = append(resample, sid)
				st.Candidates++
			}
		}
	}
	sort.Slice(resample, func(i, j int) bool { return resample[i] < resample[j] })

	// Resample the candidates against the NEW snapshot, from the same
	// per-index split streams — workers cannot change the contents.
	fresh, err := x.resampleLocked(ctx, g, resample, opts.Workers)
	if err != nil {
		return st, err
	}

	// Install: rebind everything to the new snapshot, replace only the
	// sets that actually changed (one batched inverted-index pass — the
	// candidates are size-biased toward hub-heavy sets, so per-set row
	// splicing would dwarf the resampling itself), refresh the width.
	x.g = g
	x.fp = g.Fingerprint()
	x.col.Rebind(g)
	changedIDs := make([]int32, 0, len(resample))
	changedSets := make([][]graph.NodeID, 0, len(resample))
	//lint:ignore imlint/ctxpoll the new snapshot is already bound; aborting mid-install would tear the collection
	for i, sid := range resample {
		if !equalSets(sets[sid], fresh[i]) {
			changedIDs = append(changedIDs, sid)
			changedSets = append(changedSets, fresh[i])
		}
		delete(x.stale, sid)
		st.Resampled++
	}
	x.col.ReplaceSets(changedIDs, changedSets)
	st.Changed = len(changedIDs)
	x.col.RecomputeWidth()
	x.graphVersion = newVersion
	st.Stale = len(x.stale)

	// Targeted invalidation: the memoized greedy state is a pure function
	// of the collection, so it survives whenever nothing changed. When
	// something did, rebuild the counters and re-derive the build-phase
	// OPT lower bound at BuildK against the repaired sample (the stored lb
	// described the old content).
	if st.Changed > 0 {
		x.resetGreedyLocked()
		if x.col.Len() > 0 {
			x.extendOrderLocked(x.params.BuildK)
			frac := float64(x.orderCov[len(x.order)-1]) / float64(x.col.Len())
			x.lb = float64(n) * frac / (1 + ris.IMMEpsPrime(x.params.Epsilon))
		}
	}
	return st, nil
}

// resampleLocked regenerates the given set indices from their (Seed, id)
// streams against g, in id order, without touching the collection.
func (x *Index) resampleLocked(ctx context.Context, g *graph.Graph, ids []int32, workers int) ([][]graph.NodeID, error) {
	if workers <= 0 {
		workers = x.params.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([][]graph.NodeID, len(ids))
	if len(ids) == 0 {
		return out, nil
	}
	const parallelMin = 256
	if workers <= 1 || len(ids) < parallelMin {
		smp := ris.NewSampler(g, x.params.Kind)
		for i, sid := range ids {
			if i%64 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			out[i] = smp.Sample(x.params.Seed, uint64(sid))
		}
		return out, nil
	}
	var wg sync.WaitGroup
	chunk := (len(ids) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(ids) {
			break
		}
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			smp := ris.NewSampler(g, x.params.Kind)
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				out[i] = smp.Sample(x.params.Seed, uint64(ids[i]))
			}
		}(lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func equalSets(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Staleness returns the fraction of the sample a hop-bounded repair left
// describing older content — 0 for a fully synchronized index.
func (x *Index) Staleness() float64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	if n := x.col.Len(); n > 0 {
		return float64(len(x.stale)) / float64(n)
	}
	return 0
}
