// Package sketch turns RR-set sampling — the engine behind TIM+/IMM and
// the cost that dominates the paper's scalability experiments (Figures
// 6i/6j, Table 3) — into a long-lived, shareable index. A one-off
// selection regenerates its RR collection from scratch and throws it
// away; an Index is built once per (graph, model, ε, seed), answers
// Select(ctx, k) for any k in milliseconds by incremental greedy
// max-coverage over memoized coverage counters, lazily extends its
// sample when a request's IMM θ bound needs more sets than it holds, and
// persists to a versioned binary snapshot so restarts warm instantly.
//
// Three properties make the index sound to share:
//
//   - Determinism: set i is produced from the split stream (seed, i)
//     regardless of how many goroutines sample (Build runs the workers of
//     ris.GenerateParallelCtx), so an index is a pure function of
//     (graph, Params) — parallel build, sequential build and
//     snapshot-restore all yield identical state.
//   - Monotonicity: extensions only append sets; the greedy order is
//     recomputed against the grown sample, exactly as IMM's martingale
//     analysis permits reusing sets across phases.
//   - Guarded persistence: snapshots carry the graph's content
//     fingerprint and refuse to load against a different graph.
package sketch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/im"
	"github.com/holisticim/holisticim/internal/ris"
)

// AlgorithmName is reported as im.Result.Algorithm by sketch-backed
// selections, distinguishing them from cold TIM+/IMM runs in logs and
// metrics.
const AlgorithmName = "RR-sketch"

// maxExtendRounds bounds the extend→recompute fixpoint loop in Select.
// θ shrinks as the coverage-based OPT bound tightens, so the loop settles
// in one or two rounds in practice; the bound is a backstop, recorded as
// metric "theta_unmet" when hit.
const maxExtendRounds = 16

// Params keys an Index. Zero values pick the paper's defaults.
type Params struct {
	// Kind is the RR-set semantics to sample (reverse IC or reverse LT).
	Kind ris.ModelKind
	// Epsilon is the IMM approximation slack ε (default 0.1).
	Epsilon float64
	// Ell is the failure-probability exponent ℓ (default 1).
	Ell float64
	// Seed drives all sampling (default 1). Set i of the index is always
	// the i-th set of the (Seed)-keyed stream.
	Seed uint64
	// BuildK is the seed budget the initial θ bound is computed for
	// (default 50, clamped to n). Requests with k ≤ BuildK are typically
	// answered without extension.
	BuildK int
	// Workers bounds parallel sampling goroutines during build and lazy
	// extension (default GOMAXPROCS). Cannot change the sampled sets.
	Workers int
	// MaxSets, when positive, caps the index size: builds and extensions
	// stop there and selections record metric "theta_capped". The
	// serving layer uses it to bound per-sketch memory.
	MaxSets int
}

func (p Params) withDefaults(n int32) Params {
	p.Epsilon = ris.CanonicalEpsilon(p.Epsilon)
	p.Seed = ris.CanonicalSeed(p.Seed)
	if p.Ell <= 0 {
		p.Ell = 1
	}
	if p.BuildK <= 0 {
		p.BuildK = 50
	}
	if int64(p.BuildK) > int64(n) {
		p.BuildK = int(n)
	}
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	return p
}

// Index is a reusable RR-sketch over one graph. All methods are safe for
// concurrent use; Select memoizes the greedy seed order so repeated and
// prefix queries are O(k) lookups.
type Index struct {
	g  *graph.Graph // guarded by mu: Repair swaps it, Matches rebinds it
	fp uint64       // guarded by mu; graph content fingerprint, pinned at build/load

	mu     sync.Mutex
	params Params          // guarded by mu
	col    *ris.Collection // guarded by mu
	lb     float64         // guarded by mu; lower bound on OPT_{BuildK} from the build phase

	// Live-graph repair state: the mutation-log version the sample is
	// synchronized to (0 for an index over a never-mutated graph), and the
	// ids of sets a hop-bounded repair deliberately left describing older
	// content (see Repair and RepairOptions.MaxHops).
	graphVersion uint64             // guarded by mu
	stale        map[int32]struct{} // guarded by mu

	// Memoized incremental greedy max-coverage state over col. order is
	// the greedy seed permutation computed so far; orderCov[i] is the
	// number of sets covered by order[:i+1]. Extensions reset all of it.
	// For weighted (OC) indexes the argmax runs over wgain — the summed
	// root-opinion weight of the uncovered sets containing each node —
	// so the greedy order maximizes opinion coverage instead of plain
	// set coverage; orderWCov[i] is the weight covered by order[:i+1].
	// counts/orderCov are maintained either way: the unweighted coverage
	// of the chosen prefix still lower-bounds OPT for the θ machinery.
	counts    []int32        // guarded by mu
	wgain     []float64      // guarded by mu
	covered   []bool         // guarded by mu
	inOrder   []bool         // guarded by mu
	totalCov  int            // guarded by mu
	totalWCov float64        // guarded by mu
	order     []graph.NodeID // guarded by mu
	orderCov  []int          // guarded by mu
	orderWCov []float64      // guarded by mu
	// opinionEst memoizes the depth-exact Def. 6 estimate per k for the
	// current order, so repeat weighted selects stay O(k) instead of
	// re-walking every covered set. Cleared with the rest of the state.
	opinionEst map[int]float64 // guarded by mu

	selects    atomic.Int64
	extensions atomic.Int64
}

// Stats snapshots an index's counters for monitoring.
type Stats struct {
	Sets        int   // RR sets held
	OrderLen    int   // memoized greedy prefix length
	Selects     int64 // Select calls served
	Extensions  int64 // lazy extensions performed
	MemoryBytes int64 // approximate footprint of sets + index + counters
}

// Build samples an index over g: IMM's OPT lower-bounding phase at
// BuildK, then a top-up to θ(BuildK), all with Workers parallel samplers.
// Honors ctx at batch granularity; an interrupted build returns the error
// and no index.
func Build(ctx context.Context, g *graph.Graph, p Params) (*Index, error) {
	if g == nil {
		return nil, errors.New("sketch: nil graph")
	}
	if g.NumNodes() == 0 {
		return nil, errors.New("sketch: empty graph")
	}
	p = p.withDefaults(g.NumNodes())
	x := &Index{
		g:      g,
		fp:     g.Fingerprint(),
		params: p,
		col:    ris.NewCollection(g, p.Kind),
	}

	// IMM sampling phase (geometric OPT guesses) at BuildK.
	n := float64(g.NumNodes())
	epsPrime := ris.IMMEpsPrime(p.Epsilon)
	lambdaPrime := ris.IMMLambdaPrime(n, p.BuildK, p.Epsilon, p.Ell)
	lb := 1.0
	maxI := int(math.Ceil(math.Log2(n))) - 1
	if maxI < 1 {
		maxI = 1
	}
	for i := 1; i <= maxI; i++ {
		guess := n / math.Exp2(float64(i))
		thetaI := x.capSetsLocked(int(math.Ceil(lambdaPrime / guess)))
		if x.col.Len() < thetaI {
			if err := x.col.GenerateParallelCtx(ctx, thetaI-x.col.Len(), p.Seed, p.Workers); err != nil {
				return nil, fmt.Errorf("sketch: build interrupted during OPT lower-bounding: %w", err)
			}
		}
		_, frac := x.col.MaxCoverage(p.BuildK)
		if n*frac >= (1+epsPrime)*guess {
			lb = n * frac / (1 + epsPrime)
			break
		}
	}
	x.lb = lb

	theta := x.capSetsLocked(ris.IMMTheta(n, p.BuildK, p.Epsilon, p.Ell, lb))
	if x.col.Len() < theta {
		if err := x.col.GenerateParallelCtx(ctx, theta-x.col.Len(), p.Seed, p.Workers); err != nil {
			return nil, fmt.Errorf("sketch: build interrupted during top-up sampling: %w", err)
		}
	}
	x.resetGreedyLocked()
	return x, nil
}

// capSetsLocked clamps a requested set count to MaxSets when configured.
// Callers hold x.mu — or, in Build, own the not-yet-published index.
func (x *Index) capSetsLocked(sets int) int {
	if x.params.MaxSets > 0 && sets > x.params.MaxSets {
		return x.params.MaxSets
	}
	return sets
}

// Graph returns the graph the index is bound to. Repair swaps the
// binding when a new snapshot is installed, hence the lock.
func (x *Index) Graph() *graph.Graph {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.g
}

// GraphFingerprint returns the content fingerprint of the bound graph,
// pinned at build (or load) time and advanced by Repair.
func (x *Index) GraphFingerprint() uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.fp
}

// Kind returns the RR-set semantics the index samples.
func (x *Index) Kind() ris.ModelKind {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.params.Kind
}

// Params returns the normalized build parameters.
func (x *Index) Params() Params {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.params
}

// SetWorkers retunes extension parallelism (e.g. after loading a snapshot
// built on different hardware). Non-positive picks GOMAXPROCS.
func (x *Index) SetWorkers(w int) {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	x.mu.Lock()
	x.params.Workers = w
	x.mu.Unlock()
}

// Len returns the number of RR sets held.
func (x *Index) Len() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.col.Len()
}

// Matches reports whether the index can serve selections for (g, kind):
// same RR-set semantics and the same graph CONTENT. The common case —
// the very instance the index was built on — is a pointer check; a
// different instance is accepted iff its content fingerprint equals the
// one pinned at build/load time, so a graph re-registered under the same
// name (a reload with identical bytes) keeps serving the fast path
// instead of silently falling back to cold runs. On a fingerprint match
// the index rebinds to the new instance, making subsequent calls
// pointer-fast again; every sampled set remains valid because the
// fingerprint covers topology and all model parameters.
func (x *Index) Matches(g *graph.Graph, kind ris.ModelKind) bool {
	if g == nil {
		return false
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.params.Kind != kind {
		return false
	}
	if x.g == g {
		return true
	}
	if g.NumNodes() != x.g.NumNodes() || g.NumEdges() != x.g.NumEdges() || g.Fingerprint() != x.fp {
		return false
	}
	// Rebind the collection too, or the replaced instance would stay
	// pinned in memory (and keep being sampled) for the index's lifetime.
	x.g = g
	x.col.Rebind(g)
	return true
}

// Stats snapshots the index counters.
func (x *Index) Stats() Stats {
	x.mu.Lock()
	defer x.mu.Unlock()
	return Stats{
		Sets:        x.col.Len(),
		OrderLen:    len(x.order),
		Selects:     x.selects.Load(),
		Extensions:  x.extensions.Load(),
		MemoryBytes: x.memoryLocked(),
	}
}

// MemoryFootprint approximates the bytes held by the index.
func (x *Index) MemoryFootprint() int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.memoryLocked()
}

func (x *Index) memoryLocked() int64 {
	b := x.col.MemoryFootprint()
	b += int64(len(x.counts))*4 + int64(len(x.covered)) + int64(len(x.inOrder))
	b += int64(len(x.order))*4 + int64(len(x.orderCov))*8
	b += int64(len(x.wgain))*8 + int64(len(x.orderWCov))*8
	return b
}

// resetGreedyLocked rebuilds the coverage counters from the inverted
// index and clears the memoized order. Called after every extension.
func (x *Index) resetGreedyLocked() {
	n := x.g.NumNodes()
	weighted := x.params.Kind.Weighted()
	if x.counts == nil {
		x.counts = make([]int32, n)
		x.inOrder = make([]bool, n)
	}
	if weighted && x.wgain == nil {
		x.wgain = make([]float64, n)
	}
	weights := x.col.Weights()
	for v := graph.NodeID(0); v < n; v++ {
		sids := x.col.SetsContaining(v)
		x.counts[v] = int32(len(sids))
		if weighted {
			w := 0.0
			for _, sid := range sids {
				w += weights[sid]
			}
			x.wgain[v] = w
		}
		x.inOrder[v] = false
	}
	x.covered = make([]bool, x.col.Len())
	x.totalCov = 0
	x.totalWCov = 0
	x.order = x.order[:0]
	x.orderCov = x.orderCov[:0]
	x.orderWCov = x.orderWCov[:0]
	x.opinionEst = nil
}

// extendOrderLocked grows the memoized greedy order to k seeds. Each step
// is an O(n) argmax over the marginal counters followed by counter
// updates over the newly covered sets — the standard greedy max-coverage
// step, but resumable at any prefix. Unweighted indexes maximize covered
// sets; weighted (OC) indexes maximize the summed root-opinion weight of
// covered sets (weighted max coverage — marginal gains may go negative
// once only negative-opinion sets remain, and the argmax then picks the
// least-damaging node so a full-k selection is still returned).
func (x *Index) extendOrderLocked(k int) {
	n := x.g.NumNodes()
	sets := x.col.Sets()
	weighted := x.params.Kind.Weighted()
	weights := x.col.Weights()
	for len(x.order) < k {
		best := graph.NodeID(-1)
		if weighted {
			bestGain := math.Inf(-1)
			for v := graph.NodeID(0); v < n; v++ {
				if x.inOrder[v] {
					continue
				}
				if x.wgain[v] > bestGain {
					bestGain = x.wgain[v]
					best = v
				}
			}
		} else {
			bestCount := int32(-1)
			for v := graph.NodeID(0); v < n; v++ {
				if x.inOrder[v] {
					continue
				}
				if x.counts[v] > bestCount {
					bestCount = x.counts[v]
					best = v
				}
			}
		}
		if best < 0 {
			return // k > n, excluded by CheckK; defensive
		}
		x.inOrder[best] = true
		x.order = append(x.order, best)
		for _, sid := range x.col.SetsContaining(best) {
			if x.covered[sid] {
				continue
			}
			x.covered[sid] = true
			x.totalCov++
			if weighted {
				w := weights[sid]
				x.totalWCov += w
				for _, u := range sets[sid] {
					x.counts[u]--
					x.wgain[u] -= w
				}
			} else {
				for _, u := range sets[sid] {
					x.counts[u]--
				}
			}
		}
		x.orderCov = append(x.orderCov, x.totalCov)
		x.orderWCov = append(x.orderWCov, x.totalWCov)
	}
}

// Select answers a k-seed selection from the index. Repeated or prefix
// queries hit the memoized greedy order; a larger k extends the order
// incrementally; and when IMM's θ(k) bound exceeds the sets held, the
// sample is lazily extended (deterministically — the new sets are the
// next indices of the same stream) before the order is recomputed.
func (x *Index) Select(ctx context.Context, k int) (im.Result, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.selectLocked(ctx, k)
}

// selectLocked is Select's body, factored out so SelectPrefixes can run a
// whole batch under one critical section (the memoized order must not be
// reset by a concurrent extension between members of a batch).
func (x *Index) selectLocked(ctx context.Context, k int) (im.Result, error) {
	res := im.Result{Algorithm: AlgorithmName}
	if err := im.CheckK(k, x.g.NumNodes()); err != nil {
		return res, err
	}
	tr := im.StartTracker(ctx)

	n := float64(x.g.NumNodes())
	epsPrime := ris.IMMEpsPrime(x.params.Epsilon)
	extended := 0
	capped := false
	var theta int
	for round := 0; ; round++ {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		x.extendOrderLocked(k)
		// Coverage of the greedy k-prefix lower-bounds OPT_k on this
		// sample. The build-phase bound transfers too: OPT is monotone in
		// k (so it applies directly for k ≥ BuildK) and submodular (so
		// OPT_k ≥ (k/BuildK)·OPT_BuildK below it). Take the tightest.
		frac := float64(x.orderCov[k-1]) / float64(x.col.Len())
		lb := n * frac / (1 + epsPrime)
		if scaled := x.lb * math.Min(1, float64(k)/float64(x.params.BuildK)); scaled > lb {
			lb = scaled
		}
		want := ris.IMMTheta(n, k, x.params.Epsilon, x.params.Ell, lb)
		theta = x.capSetsLocked(want)
		capped = capped || theta < want
		if x.col.Len() >= theta {
			break
		}
		if round >= maxExtendRounds {
			res.AddMetric("theta_unmet", 1)
			break
		}
		grow := theta - x.col.Len()
		extended += grow
		if err := x.col.GenerateParallelCtx(ctx, grow, x.params.Seed, x.params.Workers); err != nil {
			res.Partial = true
			tr.Finish(&res)
			// The appended prefix is already consistent; only the memoized
			// greedy state must be rebuilt before the next Select.
			x.resetGreedyLocked()
			return res, fmt.Errorf("im: %s interrupted during lazy extension: %w", AlgorithmName, err)
		}
		x.extensions.Add(1)
		x.resetGreedyLocked()
	}

	frac := float64(x.orderCov[k-1]) / float64(x.col.Len())
	res.AddMetric("sets", float64(x.col.Len()))
	res.AddMetric("theta", float64(theta))
	if capped {
		res.AddMetric("theta_capped", 1)
	}
	if extended > 0 {
		res.AddMetric("extended_sets", float64(extended))
	}
	res.AddMetric("coverage", frac)
	res.AddMetric("estimated_spread", frac*n)
	res.AddMetric("rrset_bytes", float64(x.memoryLocked()))
	if x.params.Kind.Weighted() {
		// weighted_coverage is the objective the greedy maximized (summed
		// scalar walk weights of covered sets); estimated_opinion_spread is
		// the depth-exact Def. 6 estimator for the chosen seeds — the same
		// number EstimateOpinion would report, memoized per k so repeat
		// selects keep their O(k) cost.
		res.AddMetric("weighted_coverage", x.orderWCov[k-1])
		res.AddMetric("estimated_opinion_spread", x.opinionEstLocked(k))
	}
	for _, s := range x.order[:k] {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		tr.Seed(&res, s)
	}
	tr.Finish(&res)
	x.selects.Add(1)
	return res, nil
}

// opinionEstLocked returns the depth-exact Def. 6 opinion-spread
// estimate for the memoized k-prefix, memoized per k.
func (x *Index) opinionEstLocked(k int) float64 {
	est, ok := x.opinionEst[k]
	if !ok {
		_, pos, neg := x.col.OpinionCoverage(x.order[:k])
		est = (pos - neg) * float64(x.g.NumNodes()) / float64(x.col.Len())
		if x.opinionEst == nil {
			x.opinionEst = make(map[int]float64)
		}
		x.opinionEst[k] = est
	}
	return est
}

// SelectPrefixes answers a batch of seed budgets from one shared sample
// and one memoized greedy order, guaranteeing the batch-prefix invariant:
// the seeds returned for a smaller budget are exactly the first k seeds
// of every larger member's selection. The full θ machinery — lazy
// extension included — runs once for the largest budget; every other
// member is then served as a prefix of that settled order without growing
// the sample, so a batch costs one kmax selection plus O(k) slicing per
// member. The whole batch runs under one critical section: a concurrent
// Select cannot extend the sample (and reset the order) between members.
// Results align with ks, which may repeat and come in any order.
//
// When the kmax selection is interrupted, every member that can be
// served from the prefix chosen so far is returned with Partial set (the
// sample was never θ-validated for it) alongside the error.
func (x *Index) SelectPrefixes(ctx context.Context, ks []int) ([]im.Result, error) {
	if len(ks) == 0 {
		return nil, errors.New("sketch: empty batch")
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	kmax := 0
	//lint:ignore imlint/ctxpoll O(batch members), bounded by the request's ks list, not the graph
	for _, k := range ks {
		// Validation reads x.g, which Repair swaps — it must sit inside
		// the critical section with everything else.
		if err := im.CheckK(k, x.g.NumNodes()); err != nil {
			return nil, err
		}
		if k > kmax {
			kmax = k
		}
	}
	full, err := x.selectLocked(ctx, kmax)
	if err != nil {
		// Salvage what the interrupted kmax run selected: complete
		// prefixes are not certified (θ unmet), so every member is partial.
		out := make([]im.Result, len(ks))
		//lint:ignore imlint/ctxpoll O(batch members), bounded by the request's ks list, not the graph
		for i, k := range ks {
			end := k
			if end > len(full.Seeds) {
				end = len(full.Seeds)
			}
			out[i] = im.Result{
				Algorithm: AlgorithmName,
				Seeds:     append([]graph.NodeID(nil), full.Seeds[:end]...),
				Took:      full.Took,
				Partial:   true,
			}
		}
		return out, err
	}
	out := make([]im.Result, len(ks))
	//lint:ignore imlint/ctxpoll O(batch members), bounded by the request's ks list, not the graph
	for i, k := range ks {
		if k == kmax {
			out[i] = full
			continue
		}
		out[i] = x.prefixResultLocked(k)
		x.selects.Add(1)
	}
	return out, nil
}

// prefixResultLocked materializes the memoized k-prefix of the greedy
// order as a Result, without touching the sample. Callers must have run
// selectLocked for some budget ≥ k first.
func (x *Index) prefixResultLocked(k int) im.Result {
	res := im.Result{Algorithm: AlgorithmName}
	// Copy: the order's backing array is reused when an extension resets
	// the memoized state, and results outlive the lock.
	res.Seeds = append(res.Seeds, x.order[:k]...)
	n := float64(x.g.NumNodes())
	frac := float64(x.orderCov[k-1]) / float64(x.col.Len())
	res.AddMetric("sets", float64(x.col.Len()))
	res.AddMetric("coverage", frac)
	res.AddMetric("estimated_spread", frac*n)
	res.AddMetric("batch_prefix", 1)
	if x.params.Kind.Weighted() {
		res.AddMetric("weighted_coverage", x.orderWCov[k-1])
		res.AddMetric("estimated_opinion_spread", x.opinionEstLocked(k))
	}
	return res
}

// Name implements im.Selector.
func (x *Index) Name() string { return AlgorithmName }

var _ im.Selector = (*Index)(nil)

// EstimateSpread returns the RIS estimator n·F(S) of σ(S) over the
// index's current sample.
func (x *Index) EstimateSpread(seeds []graph.NodeID) float64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.col.EstimateSpread(seeds)
}

// OpinionEstimate is a sketch-backed estimate of the OC opinion spreads
// (Defs. 6–7) for a fixed seed set, the weighted-RIS counterpart of a
// Monte-Carlo diffusion.Estimate. All spread fields are in node-opinion
// units scaled to the whole graph (n/θ times covered weight).
type OpinionEstimate struct {
	Sets     int     // RR sets the estimate was computed over (θ)
	Coverage float64 // fraction of sets hit by the seeds
	Spread   float64 // σ(S): estimated activations beyond the seeds
	Opinion  float64 // σ_o(S) = Positive − Negative (Def. 6)
	Positive float64 // Σ of positive final opinions (non-seed nodes)
	Negative float64 // Σ |negative final opinions| (non-seed nodes)
}

// EffectiveOpinion returns σ_λ^o(S) = Positive − λ·Negative (Def. 7).
func (e OpinionEstimate) EffectiveOpinion(lambda float64) float64 {
	return e.Positive - lambda*e.Negative
}

// EstimateOpinion answers the opinion-aware estimate from the weighted
// sample: covered sets whose root is not itself a seed contribute their
// root-opinion weight (split into positive and negative mass), scaled by
// n/θ. Only weighted (OC) indexes can answer; others return an error so
// callers fall back to Monte Carlo.
func (x *Index) EstimateOpinion(seeds []graph.NodeID) (OpinionEstimate, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if !x.params.Kind.Weighted() {
		return OpinionEstimate{}, fmt.Errorf("sketch: %s index carries no opinion weights", x.params.Kind)
	}
	theta := x.col.Len()
	if theta == 0 {
		return OpinionEstimate{}, errors.New("sketch: empty index")
	}
	covered, pos, neg := x.col.OpinionCoverage(seeds)
	n := float64(x.g.NumNodes())
	scale := n / float64(theta)
	frac := float64(covered) / float64(theta)
	// n·F counts every activation including the seeds themselves (a root
	// in S is always covered); subtract the distinct seeds to report the
	// same "beyond the seeds" spread Monte Carlo does.
	distinct := make(map[graph.NodeID]bool, len(seeds))
	for _, s := range seeds {
		distinct[s] = true
	}
	spread := n*frac - float64(len(distinct))
	if spread < 0 {
		spread = 0
	}
	return OpinionEstimate{
		Sets:     theta,
		Coverage: frac,
		Spread:   spread,
		Opinion:  (pos - neg) * scale,
		Positive: pos * scale,
		Negative: neg * scale,
	}, nil
}
