// Package sketch turns RR-set sampling — the engine behind TIM+/IMM and
// the cost that dominates the paper's scalability experiments (Figures
// 6i/6j, Table 3) — into a long-lived, shareable index. A one-off
// selection regenerates its RR collection from scratch and throws it
// away; an Index is built once per (graph, model, ε, seed), answers
// Select(ctx, k) for any k in milliseconds by incremental greedy
// max-coverage over memoized coverage counters, lazily extends its
// sample when a request's IMM θ bound needs more sets than it holds, and
// persists to a versioned binary snapshot so restarts warm instantly.
//
// Three properties make the index sound to share:
//
//   - Determinism: set i is produced from the split stream (seed, i)
//     regardless of how many goroutines sample (Build runs the workers of
//     ris.GenerateParallelCtx), so an index is a pure function of
//     (graph, Params) — parallel build, sequential build and
//     snapshot-restore all yield identical state.
//   - Monotonicity: extensions only append sets; the greedy order is
//     recomputed against the grown sample, exactly as IMM's martingale
//     analysis permits reusing sets across phases.
//   - Guarded persistence: snapshots carry the graph's content
//     fingerprint and refuse to load against a different graph.
package sketch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/im"
	"github.com/holisticim/holisticim/internal/ris"
)

// AlgorithmName is reported as im.Result.Algorithm by sketch-backed
// selections, distinguishing them from cold TIM+/IMM runs in logs and
// metrics.
const AlgorithmName = "RR-sketch"

// maxExtendRounds bounds the extend→recompute fixpoint loop in Select.
// θ shrinks as the coverage-based OPT bound tightens, so the loop settles
// in one or two rounds in practice; the bound is a backstop, recorded as
// metric "theta_unmet" when hit.
const maxExtendRounds = 16

// Params keys an Index. Zero values pick the paper's defaults.
type Params struct {
	// Kind is the RR-set semantics to sample (reverse IC or reverse LT).
	Kind ris.ModelKind
	// Epsilon is the IMM approximation slack ε (default 0.1).
	Epsilon float64
	// Ell is the failure-probability exponent ℓ (default 1).
	Ell float64
	// Seed drives all sampling (default 1). Set i of the index is always
	// the i-th set of the (Seed)-keyed stream.
	Seed uint64
	// BuildK is the seed budget the initial θ bound is computed for
	// (default 50, clamped to n). Requests with k ≤ BuildK are typically
	// answered without extension.
	BuildK int
	// Workers bounds parallel sampling goroutines during build and lazy
	// extension (default GOMAXPROCS). Cannot change the sampled sets.
	Workers int
	// MaxSets, when positive, caps the index size: builds and extensions
	// stop there and selections record metric "theta_capped". The
	// serving layer uses it to bound per-sketch memory.
	MaxSets int
}

func (p Params) withDefaults(n int32) Params {
	if p.Epsilon <= 0 {
		p.Epsilon = 0.1
	}
	if p.Ell <= 0 {
		p.Ell = 1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.BuildK <= 0 {
		p.BuildK = 50
	}
	if int64(p.BuildK) > int64(n) {
		p.BuildK = int(n)
	}
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	return p
}

// Index is a reusable RR-sketch over one graph. All methods are safe for
// concurrent use; Select memoizes the greedy seed order so repeated and
// prefix queries are O(k) lookups.
type Index struct {
	g  *graph.Graph
	fp uint64 // graph content fingerprint, pinned at build/load

	mu     sync.Mutex
	params Params
	col    *ris.Collection
	lb     float64 // lower bound on OPT_{BuildK} from the build phase

	// Memoized incremental greedy max-coverage state over col. order is
	// the greedy seed permutation computed so far; orderCov[i] is the
	// number of sets covered by order[:i+1]. Extensions reset all of it.
	counts   []int32
	covered  []bool
	inOrder  []bool
	totalCov int
	order    []graph.NodeID
	orderCov []int

	selects    atomic.Int64
	extensions atomic.Int64
}

// Stats snapshots an index's counters for monitoring.
type Stats struct {
	Sets        int   // RR sets held
	OrderLen    int   // memoized greedy prefix length
	Selects     int64 // Select calls served
	Extensions  int64 // lazy extensions performed
	MemoryBytes int64 // approximate footprint of sets + index + counters
}

// Build samples an index over g: IMM's OPT lower-bounding phase at
// BuildK, then a top-up to θ(BuildK), all with Workers parallel samplers.
// Honors ctx at batch granularity; an interrupted build returns the error
// and no index.
func Build(ctx context.Context, g *graph.Graph, p Params) (*Index, error) {
	if g == nil {
		return nil, errors.New("sketch: nil graph")
	}
	if g.NumNodes() == 0 {
		return nil, errors.New("sketch: empty graph")
	}
	p = p.withDefaults(g.NumNodes())
	x := &Index{
		g:      g,
		fp:     g.Fingerprint(),
		params: p,
		col:    ris.NewCollection(g, p.Kind),
	}

	// IMM sampling phase (geometric OPT guesses) at BuildK.
	n := float64(g.NumNodes())
	epsPrime := ris.IMMEpsPrime(p.Epsilon)
	lambdaPrime := ris.IMMLambdaPrime(n, p.BuildK, p.Epsilon, p.Ell)
	lb := 1.0
	maxI := int(math.Ceil(math.Log2(n))) - 1
	if maxI < 1 {
		maxI = 1
	}
	for i := 1; i <= maxI; i++ {
		guess := n / math.Exp2(float64(i))
		thetaI := x.capSets(int(math.Ceil(lambdaPrime / guess)))
		if x.col.Len() < thetaI {
			if err := x.col.GenerateParallelCtx(ctx, thetaI-x.col.Len(), p.Seed, p.Workers); err != nil {
				return nil, fmt.Errorf("sketch: build interrupted during OPT lower-bounding: %w", err)
			}
		}
		_, frac := x.col.MaxCoverage(p.BuildK)
		if n*frac >= (1+epsPrime)*guess {
			lb = n * frac / (1 + epsPrime)
			break
		}
	}
	x.lb = lb

	theta := x.capSets(ris.IMMTheta(n, p.BuildK, p.Epsilon, p.Ell, lb))
	if x.col.Len() < theta {
		if err := x.col.GenerateParallelCtx(ctx, theta-x.col.Len(), p.Seed, p.Workers); err != nil {
			return nil, fmt.Errorf("sketch: build interrupted during top-up sampling: %w", err)
		}
	}
	x.resetGreedyLocked()
	return x, nil
}

// capSets clamps a requested set count to MaxSets when configured.
func (x *Index) capSets(sets int) int {
	if x.params.MaxSets > 0 && sets > x.params.MaxSets {
		return x.params.MaxSets
	}
	return sets
}

// Graph returns the graph the index was built over.
func (x *Index) Graph() *graph.Graph { return x.g }

// GraphFingerprint returns the content fingerprint of that graph, pinned
// at build (or load) time.
func (x *Index) GraphFingerprint() uint64 { return x.fp }

// Kind returns the RR-set semantics the index samples.
func (x *Index) Kind() ris.ModelKind { return x.params.Kind }

// Params returns the normalized build parameters.
func (x *Index) Params() Params {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.params
}

// SetWorkers retunes extension parallelism (e.g. after loading a snapshot
// built on different hardware). Non-positive picks GOMAXPROCS.
func (x *Index) SetWorkers(w int) {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	x.mu.Lock()
	x.params.Workers = w
	x.mu.Unlock()
}

// Len returns the number of RR sets held.
func (x *Index) Len() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.col.Len()
}

// Matches reports whether the index can serve selections for (g, kind):
// same graph instance and same RR-set semantics.
func (x *Index) Matches(g *graph.Graph, kind ris.ModelKind) bool {
	return x.g == g && x.params.Kind == kind
}

// Stats snapshots the index counters.
func (x *Index) Stats() Stats {
	x.mu.Lock()
	defer x.mu.Unlock()
	return Stats{
		Sets:        x.col.Len(),
		OrderLen:    len(x.order),
		Selects:     x.selects.Load(),
		Extensions:  x.extensions.Load(),
		MemoryBytes: x.memoryLocked(),
	}
}

// MemoryFootprint approximates the bytes held by the index.
func (x *Index) MemoryFootprint() int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.memoryLocked()
}

func (x *Index) memoryLocked() int64 {
	b := x.col.MemoryFootprint()
	b += int64(len(x.counts))*4 + int64(len(x.covered)) + int64(len(x.inOrder))
	b += int64(len(x.order))*4 + int64(len(x.orderCov))*8
	return b
}

// resetGreedyLocked rebuilds the coverage counters from the inverted
// index and clears the memoized order. Called after every extension.
func (x *Index) resetGreedyLocked() {
	n := x.g.NumNodes()
	if x.counts == nil {
		x.counts = make([]int32, n)
		x.inOrder = make([]bool, n)
	}
	for v := graph.NodeID(0); v < n; v++ {
		x.counts[v] = int32(len(x.col.SetsContaining(v)))
		x.inOrder[v] = false
	}
	x.covered = make([]bool, x.col.Len())
	x.totalCov = 0
	x.order = x.order[:0]
	x.orderCov = x.orderCov[:0]
}

// extendOrderLocked grows the memoized greedy order to k seeds. Each step
// is an O(n) argmax over the marginal-coverage counters followed by
// counter updates over the newly covered sets — the standard greedy
// max-coverage step, but resumable at any prefix.
func (x *Index) extendOrderLocked(k int) {
	n := x.g.NumNodes()
	sets := x.col.Sets()
	for len(x.order) < k {
		best := graph.NodeID(-1)
		bestCount := int32(-1)
		for v := graph.NodeID(0); v < n; v++ {
			if x.inOrder[v] {
				continue
			}
			if x.counts[v] > bestCount {
				bestCount = x.counts[v]
				best = v
			}
		}
		if best < 0 {
			return // k > n, excluded by CheckK; defensive
		}
		x.inOrder[best] = true
		x.order = append(x.order, best)
		for _, sid := range x.col.SetsContaining(best) {
			if x.covered[sid] {
				continue
			}
			x.covered[sid] = true
			x.totalCov++
			for _, u := range sets[sid] {
				x.counts[u]--
			}
		}
		x.orderCov = append(x.orderCov, x.totalCov)
	}
}

// Select answers a k-seed selection from the index. Repeated or prefix
// queries hit the memoized greedy order; a larger k extends the order
// incrementally; and when IMM's θ(k) bound exceeds the sets held, the
// sample is lazily extended (deterministically — the new sets are the
// next indices of the same stream) before the order is recomputed.
func (x *Index) Select(ctx context.Context, k int) (im.Result, error) {
	res := im.Result{Algorithm: AlgorithmName}
	if err := im.CheckK(k, x.g.NumNodes()); err != nil {
		return res, err
	}
	tr := im.StartTracker(ctx)
	x.mu.Lock()
	defer x.mu.Unlock()

	n := float64(x.g.NumNodes())
	epsPrime := ris.IMMEpsPrime(x.params.Epsilon)
	extended := 0
	capped := false
	var theta int
	for round := 0; ; round++ {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		x.extendOrderLocked(k)
		// Coverage of the greedy k-prefix lower-bounds OPT_k on this
		// sample. The build-phase bound transfers too: OPT is monotone in
		// k (so it applies directly for k ≥ BuildK) and submodular (so
		// OPT_k ≥ (k/BuildK)·OPT_BuildK below it). Take the tightest.
		frac := float64(x.orderCov[k-1]) / float64(x.col.Len())
		lb := n * frac / (1 + epsPrime)
		if scaled := x.lb * math.Min(1, float64(k)/float64(x.params.BuildK)); scaled > lb {
			lb = scaled
		}
		want := ris.IMMTheta(n, k, x.params.Epsilon, x.params.Ell, lb)
		theta = x.capSets(want)
		capped = capped || theta < want
		if x.col.Len() >= theta {
			break
		}
		if round >= maxExtendRounds {
			res.AddMetric("theta_unmet", 1)
			break
		}
		grow := theta - x.col.Len()
		extended += grow
		if err := x.col.GenerateParallelCtx(ctx, grow, x.params.Seed, x.params.Workers); err != nil {
			res.Partial = true
			tr.Finish(&res)
			// The appended prefix is already consistent; only the memoized
			// greedy state must be rebuilt before the next Select.
			x.resetGreedyLocked()
			return res, fmt.Errorf("im: %s interrupted during lazy extension: %w", AlgorithmName, err)
		}
		x.extensions.Add(1)
		x.resetGreedyLocked()
	}

	frac := float64(x.orderCov[k-1]) / float64(x.col.Len())
	res.AddMetric("sets", float64(x.col.Len()))
	res.AddMetric("theta", float64(theta))
	if capped {
		res.AddMetric("theta_capped", 1)
	}
	if extended > 0 {
		res.AddMetric("extended_sets", float64(extended))
	}
	res.AddMetric("coverage", frac)
	res.AddMetric("estimated_spread", frac*n)
	res.AddMetric("rrset_bytes", float64(x.memoryLocked()))
	for _, s := range x.order[:k] {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		tr.Seed(&res, s)
	}
	tr.Finish(&res)
	x.selects.Add(1)
	return res, nil
}

// Name implements im.Selector.
func (x *Index) Name() string { return AlgorithmName }

var _ im.Selector = (*Index)(nil)

// EstimateSpread returns the RIS estimator n·F(S) of σ(S) over the
// index's current sample.
func (x *Index) EstimateSpread(seeds []graph.NodeID) float64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.col.EstimateSpread(seeds)
}
