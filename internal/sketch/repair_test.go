package sketch

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/live"
	"github.com/holisticim/holisticim/internal/opinion"
	"github.com/holisticim/holisticim/internal/ris"
	"github.com/holisticim/holisticim/internal/rng"
)

// churnBatch builds a deterministic mutation batch against g: removes
// and reweights spread over existing arcs (at most one per source node,
// so the dirt is scattered), adds over absent arcs scanned from the top
// node down.
func churnBatch(g *graph.Graph, removes, adds, reweights int) []live.EdgeOp {
	var ops []live.EdgeOp
	n := g.NumNodes()
	taken := make(map[[2]int32]bool)
outer:
	for u := int32(0); u < n; u++ {
		for _, v := range g.OutNeighbors(u) {
			key := [2]int32{u, v}
			if taken[key] {
				continue
			}
			switch {
			case removes > 0:
				ops = append(ops, live.EdgeOp{Op: live.OpRemove, From: u, To: v})
				removes--
			case reweights > 0:
				p := 0.5
				ops = append(ops, live.EdgeOp{Op: live.OpReweight, From: u, To: v, P: &p})
				reweights--
			default:
				break outer
			}
			taken[key] = true
			break // one op per source, spreads the dirty set
		}
	}
	p, w := 0.2, 0.05
	for u := n - 1; u >= 0 && adds > 0; u-- {
		for v := int32(0); v < n; v++ {
			if u == v || g.HasEdge(u, v) || taken[[2]int32{u, v}] {
				continue
			}
			taken[[2]int32{u, v}] = true
			ops = append(ops, live.EdgeOp{Op: live.OpAdd, From: u, To: v, P: &p, Phi: &p, W: &w})
			adds--
			break
		}
	}
	return ops
}

// leafChurnBatch mutates arcs whose targets sit in the low-degree tail
// (high BA node ids) — realistic stream churn touches peripheral nodes,
// while churnBatch above lands on densely-embedded hubs (a harder
// stress, used by the correctness tests).
func leafChurnBatch(g *graph.Graph, removes, adds, reweights int) []live.EdgeOp {
	var ops []live.EdgeOp
	n := g.NumNodes()
	taken := make(map[[2]int32]bool)
	for u := n - 1; u >= n/2 && removes+reweights > 0; u-- {
		nbrs := g.OutNeighbors(u)
		if len(nbrs) == 0 {
			continue
		}
		// The BA generator expands undirected edges to both arcs, so
		// nbrs[i] -> u exists; its target u is a low-degree node.
		if removes > 0 && g.HasEdge(nbrs[0], u) && !taken[[2]int32{nbrs[0], u}] {
			ops = append(ops, live.EdgeOp{Op: live.OpRemove, From: nbrs[0], To: u})
			taken[[2]int32{nbrs[0], u}] = true
			removes--
			continue
		}
		if reweights > 0 && len(nbrs) > 1 && g.HasEdge(nbrs[1], u) && !taken[[2]int32{nbrs[1], u}] {
			p := 0.5
			ops = append(ops, live.EdgeOp{Op: live.OpReweight, From: nbrs[1], To: u, P: &p})
			taken[[2]int32{nbrs[1], u}] = true
			reweights--
		}
	}
	p, w := 0.2, 0.05
	for u := n - 1; u >= n/2 && adds > 0; u -= 2 {
		v := u - 1
		if g.HasEdge(u, v) || taken[[2]int32{u, v}] {
			continue
		}
		taken[[2]int32{u, v}] = true
		ops = append(ops, live.EdgeOp{Op: live.OpAdd, From: u, To: v, P: &p, Phi: &p, W: &w})
		adds--
	}
	return ops
}

// requireSameCollections asserts a repaired collection is structurally
// identical to a from-scratch build: sets, inverted index rows, widths
// and (when weighted) per-set weights.
func requireSameCollections(t *testing.T, got, want *ris.Collection, n int32, weighted bool) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("repaired collection has %d sets, from-scratch %d", got.Len(), want.Len())
	}
	gs, ws := got.Sets(), want.Sets()
	for i := range gs {
		if len(gs[i]) != len(ws[i]) {
			t.Fatalf("set %d: repaired len %d, from-scratch %d", i, len(gs[i]), len(ws[i]))
		}
		for j := range gs[i] {
			if gs[i][j] != ws[i][j] {
				t.Fatalf("set %d differs at position %d: repaired %d, from-scratch %d", i, j, gs[i][j], ws[i][j])
			}
		}
	}
	for v := int32(0); v < n; v++ {
		gr, wr := got.SetsContaining(v), want.SetsContaining(v)
		if len(gr) != len(wr) {
			t.Fatalf("inverted row %d: repaired %d entries, from-scratch %d", v, len(gr), len(wr))
		}
		for i := range gr {
			if gr[i] != wr[i] {
				t.Fatalf("inverted row %d differs at %d: %d vs %d", v, i, gr[i], wr[i])
			}
		}
	}
	if got.Width() != want.Width() {
		t.Fatalf("repaired width %d, from-scratch %d", got.Width(), want.Width())
	}
	if weighted {
		gw, ww := got.Weights(), want.Weights()
		for i := range gw {
			if gw[i] != ww[i] {
				t.Fatalf("weight %d: repaired %v, from-scratch %v", i, gw[i], ww[i])
			}
		}
	}
}

// refIndex hand-builds an index over a from-scratch collection with the
// same frozen params, for answer-equality checks against a repaired one.
func refIndex(t *testing.T, g *graph.Graph, p Params, count int) *Index {
	t.Helper()
	col := ris.NewCollection(g, p.Kind)
	if err := col.GenerateParallelCtx(context.Background(), count, p.Seed, 4); err != nil {
		t.Fatal(err)
	}
	y := &Index{g: g, fp: g.Fingerprint(), params: p, col: col}
	y.resetGreedyLocked()
	return y
}

// Tentpole equivalence: after a mutation batch, incremental Repair must
// yield a collection byte-identical to generating the same number of
// sets from scratch — same seed, same split streams — against the new
// snapshot, for all three RR semantics. Selections from the repaired
// index must match the from-scratch index seed-for-seed.
func TestRepairMatchesFromScratch(t *testing.T) {
	ctx := context.Background()
	for _, kind := range []ris.ModelKind{ris.ModelIC, ris.ModelLT, ris.ModelOC} {
		t.Run(kind.String(), func(t *testing.T) {
			var g *graph.Graph
			if kind == ris.ModelOC {
				g = ocTestGraph(t, 1500, opinion.Normal)
			} else {
				g = testGraph(t, 1500)
			}
			p := Params{Kind: kind, Epsilon: 0.3, Seed: 11, BuildK: 10, Workers: 4}
			x := mustBuild(t, g, p)
			// Freeze the sample: Repair preserves the count, and the
			// reference below must generate exactly that many sets.
			x.params.MaxSets = x.col.Len()

			lv := live.Wrap(g, live.Options{})
			res, err := lv.Apply(ctx, churnBatch(g, 6, 6, 6), live.ApplyOptions{})
			if err != nil {
				t.Fatal(err)
			}
			newG := lv.Graph()

			st, err := x.Repair(ctx, newG, res.Dirty, res.Version, RepairOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if st.Version != res.Version || x.GraphVersion() != res.Version {
				t.Fatalf("repair stamped version %d/%d, want %d", st.Version, x.GraphVersion(), res.Version)
			}
			if st.Candidates == 0 || st.Resampled != st.Candidates {
				t.Fatalf("exact repair resampled %d of %d candidates", st.Resampled, st.Candidates)
			}
			if st.Stale != 0 || x.StaleSets() != 0 {
				t.Fatalf("exact repair left %d stale sets", x.StaleSets())
			}
			if !x.Matches(newG, kind) {
				t.Fatal("repaired index does not match the new snapshot")
			}

			y := refIndex(t, newG, x.params, x.col.Len())
			requireSameCollections(t, x.col, y.col, newG.NumNodes(), kind.Weighted())

			rx, err := x.Select(ctx, 10)
			if err != nil {
				t.Fatal(err)
			}
			ry, err := y.Select(ctx, 10)
			if err != nil {
				t.Fatal(err)
			}
			for i := range rx.Seeds {
				if rx.Seeds[i] != ry.Seeds[i] {
					t.Fatalf("seed %d differs: repaired %d, from-scratch %d", i, rx.Seeds[i], ry.Seeds[i])
				}
			}
		})
	}
}

// Coalescing: repairing once with the union of several batches' dirty
// sets against the latest snapshot must equal repairing batch by batch.
func TestRepairCoalescesBatches(t *testing.T) {
	ctx := context.Background()
	g := testGraph(t, 1200)
	p := Params{Epsilon: 0.3, Seed: 7, BuildK: 10, Workers: 2}

	xStep := mustBuild(t, g, p)
	xStep.params.MaxSets = xStep.col.Len()
	xOnce := mustBuild(t, g, p)
	xOnce.params.MaxSets = xOnce.col.Len()

	lv := live.Wrap(g, live.Options{})
	var union []graph.NodeID
	seen := make(map[graph.NodeID]struct{})
	var last *graph.Graph
	var lastVer uint64
	for i := 0; i < 3; i++ {
		res, err := lv.Apply(ctx, churnBatch(lv.Graph(), 3, 3, 3), live.ApplyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		last, lastVer = lv.Graph(), res.Version
		if _, err := xStep.Repair(ctx, last, res.Dirty, res.Version, RepairOptions{}); err != nil {
			t.Fatal(err)
		}
		for _, d := range res.Dirty {
			if _, ok := seen[d]; !ok {
				seen[d] = struct{}{}
				union = append(union, d)
			}
		}
	}
	// DirtySince must reproduce the union.
	since, ok := lv.DirtySince(0)
	if !ok || len(since) != len(seen) {
		t.Fatalf("DirtySince(0) = %d nodes ok=%v, want %d", len(since), ok, len(seen))
	}
	if _, err := xOnce.Repair(ctx, last, union, lastVer, RepairOptions{}); err != nil {
		t.Fatal(err)
	}
	requireSameCollections(t, xOnce.col, xStep.col, last.NumNodes(), false)
}

// Determinism: repairing with 8 workers must equal repairing with 1.
func TestRepairWorkerDeterminism(t *testing.T) {
	ctx := context.Background()
	g := testGraph(t, 1500)
	p := Params{Kind: ris.ModelLT, Epsilon: 0.3, Seed: 5, BuildK: 10}
	x1 := mustBuild(t, g, p)
	x1.params.MaxSets = x1.col.Len()
	x8 := mustBuild(t, g, p)
	x8.params.MaxSets = x8.col.Len()

	lv := live.Wrap(g, live.Options{})
	res, err := lv.Apply(ctx, churnBatch(g, 8, 8, 8), live.ApplyOptions{RebalanceLT: true})
	if err != nil {
		t.Fatal(err)
	}
	newG := lv.Graph()
	if _, err := x1.Repair(ctx, newG, res.Dirty, res.Version, RepairOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := x8.Repair(ctx, newG, res.Dirty, res.Version, RepairOptions{Workers: 8}); err != nil {
		t.Fatal(err)
	}
	requireSameCollections(t, x8.col, x1.col, newG.NumNodes(), false)
}

// A phi-only reweight cannot change any RR set (ϕ is not read by the
// samplers), so Repair must keep the memoized greedy order intact.
func TestRepairPhiOnlyKeepsOrder(t *testing.T) {
	ctx := context.Background()
	g := testGraph(t, 800)
	x := mustBuild(t, g, Params{Epsilon: 0.3, Seed: 3, BuildK: 10})
	x.params.MaxSets = x.col.Len()
	before, err := x.Select(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	orderBefore := append([]graph.NodeID(nil), x.order...)

	var u, v graph.NodeID = -1, -1
	for uu := graph.NodeID(0); uu < g.NumNodes() && u < 0; uu++ {
		if nbrs := g.OutNeighbors(uu); len(nbrs) > 0 {
			u, v = uu, nbrs[0]
		}
	}
	phi := 0.9
	lv := live.Wrap(g, live.Options{})
	res, err := lv.Apply(ctx, []live.EdgeOp{{Op: live.OpReweight, From: u, To: v, Phi: &phi}}, live.ApplyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := x.Repair(ctx, lv.Graph(), res.Dirty, res.Version, RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Changed != 0 {
		t.Fatalf("phi-only reweight changed %d sets", st.Changed)
	}
	if len(x.order) != len(orderBefore) {
		t.Fatalf("memoized order shrank from %d to %d", len(orderBefore), len(x.order))
	}
	for i := range orderBefore {
		if x.order[i] != orderBefore[i] {
			t.Fatalf("memoized order changed at %d", i)
		}
	}
	after, err := x.Select(ctx, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before.Seeds {
		if before.Seeds[i] != after.Seeds[i] {
			t.Fatalf("selection changed at seed %d after a no-op repair", i)
		}
	}
	if !x.Matches(lv.Graph(), ris.ModelIC) {
		t.Fatal("index does not match the new snapshot")
	}
}

// Repair must refuse a snapshot with a different node count — the root
// draw depends on n, so the sample cannot be preserved.
func TestRepairNodeCountChange(t *testing.T) {
	g := testGraph(t, 500)
	x := mustBuild(t, g, Params{Epsilon: 0.4, Seed: 2, BuildK: 5})
	g2 := testGraph(t, 501)
	if _, err := x.Repair(context.Background(), g2, nil, 1, RepairOptions{}); err == nil {
		t.Fatal("repair accepted a snapshot with a different node count")
	}
	if _, err := x.Repair(context.Background(), nil, nil, 1, RepairOptions{}); err == nil {
		t.Fatal("repair accepted a nil snapshot")
	}
}

// Hop-bounded repair: deferred sets are tracked as stale and a later
// exact repair drains them, converging to the from-scratch sample.
func TestRepairMaxHops(t *testing.T) {
	ctx := context.Background()
	g := testGraph(t, 1500)
	p := Params{Kind: ris.ModelLT, Epsilon: 0.3, Seed: 13, BuildK: 10}
	x := mustBuild(t, g, p)
	x.params.MaxSets = x.col.Len()

	lv := live.Wrap(g, live.Options{})
	res, err := lv.Apply(ctx, churnBatch(g, 10, 10, 10), live.ApplyOptions{RebalanceLT: true})
	if err != nil {
		t.Fatal(err)
	}
	newG := lv.Graph()

	st, err := x.Repair(ctx, newG, res.Dirty, res.Version, RepairOptions{MaxHops: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Resampled+st.Deferred != st.Candidates {
		t.Fatalf("resampled %d + deferred %d != candidates %d", st.Resampled, st.Deferred, st.Candidates)
	}
	if st.Deferred == 0 {
		t.Fatal("hop bound 1 deferred nothing; the test graph should have deep dirty nodes")
	}
	if x.StaleSets() != st.Deferred || st.Stale != st.Deferred {
		t.Fatalf("stale accounting: StaleSets=%d, Stale=%d, Deferred=%d", x.StaleSets(), st.Stale, st.Deferred)
	}
	if x.Staleness() <= 0 {
		t.Fatal("staleness fraction not advertised")
	}
	// The index advertises the new snapshot (bounded staleness is an
	// explicit contract, not silent), but its sample is not yet the
	// from-scratch one.
	if !x.Matches(newG, p.Kind) {
		t.Fatal("hop-bounded repair should re-match the index to the snapshot")
	}

	// An exact repair with no new dirt drains the backlog.
	st2, err := x.Repair(ctx, newG, nil, res.Version, RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Resampled != st.Deferred || x.StaleSets() != 0 {
		t.Fatalf("drain resampled %d (want %d), %d still stale", st2.Resampled, st.Deferred, x.StaleSets())
	}
	y := refIndex(t, newG, x.params, x.col.Len())
	requireSameCollections(t, x.col, y.col, newG.NumNodes(), false)
}

// Race suite: concurrent Select/SelectPrefixes against a stream of
// Apply+Repair batches. Run under -race in CI; asserts nothing beyond
// "no crash, no data race, selections keep answering".
func TestRepairConcurrentSelect(t *testing.T) {
	ctx := context.Background()
	g := testGraph(t, 1000)
	x := mustBuild(t, g, Params{Epsilon: 0.4, Seed: 17, BuildK: 10})
	x.params.MaxSets = x.col.Len()

	lv := live.Wrap(g, live.Options{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if w == 0 {
					if _, err := x.SelectPrefixes(ctx, []int{2, 5, 8}); err != nil {
						t.Error(err)
						return
					}
				} else {
					if _, err := x.Select(ctx, 5+w); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	for i := 0; i < 8; i++ {
		res, err := lv.Apply(ctx, churnBatch(lv.Graph(), 2, 2, 2), live.ApplyOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := x.Repair(ctx, lv.Graph(), res.Dirty, res.Version, RepairOptions{Workers: 2}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got, want := x.GraphVersion(), lv.Version(); got != want {
		t.Fatalf("index at version %d, log at %d", got, want)
	}
}

// Acceptance: on the 50k-node BA benchmark graph, after a small edge
// batch (well under 1% of arcs dirty), incremental Repair must be ≥ 5×
// faster than regenerating the same number of sets from scratch — and
// byte-identical to it. Modeled on TestSketchSpeedupVsColdIMM.
//
// The model is LT: its RR sets are reverse live-edge walks, so a dirty
// node pulls in only the few walks that stepped through it and the
// candidate mass stays proportional to the batch. Under IC at p = 0.1
// this graph percolates: ~8% of the sets are giant reverse-reachable
// clusters that contain ANY realistic dirty set with probability ≈ 1,
// so exact repair must resample them all — still byte-correct, and
// still cheaper than a rebuild, but bounded by the size-biased
// candidate mass rather than the batch. Hop-bounded repair
// (RepairOptions.MaxHops) exists precisely for that regime.
func TestRepairSpeedupVsRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-node speedup acceptance test")
	}
	ctx := context.Background()
	g := graph.BarabasiAlbert(50000, 3, rng.New(1))
	g.SetUniformProb(0.1)
	g.SetDefaultLTWeights()
	p := Params{Kind: ris.ModelLT, Epsilon: 0.25, Seed: 9, BuildK: 50}
	x := mustBuild(t, g, p)
	x.params.MaxSets = x.col.Len()

	lv := live.Wrap(g, live.Options{})
	batch := leafChurnBatch(g, 40, 40, 40)
	if len(batch) < 100 {
		t.Fatalf("leaf batch built only %d ops", len(batch))
	}
	res, err := lv.Apply(ctx, batch, live.ApplyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	newG := lv.Graph()
	if frac := float64(len(batch)) / float64(g.NumEdges()); frac > 0.01 {
		t.Fatalf("batch mutated %.2f%% of arcs; the acceptance bound assumes <=1%%", 100*frac)
	}

	start := time.Now()
	st, err := x.Repair(ctx, newG, res.Dirty, res.Version, RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	repair := time.Since(start)

	start = time.Now()
	ref := ris.NewCollection(newG, p.Kind)
	if err := ref.GenerateParallelCtx(ctx, x.col.Len(), x.params.Seed, x.params.Workers); err != nil {
		t.Fatal(err)
	}
	rebuild := time.Since(start)

	requireSameCollections(t, x.col, ref, newG.NumNodes(), false)
	t.Logf("repair: %v (%d/%d sets resampled), rebuild: %v (%d sets)",
		repair, st.Resampled, x.col.Len(), rebuild, ref.Len())
	if repair*5 > rebuild {
		t.Fatalf("repair %v not >=5x faster than rebuild %v", repair, rebuild)
	}
}
