package sketch

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/opinion"
	"github.com/holisticim/holisticim/internal/ris"
	"github.com/holisticim/holisticim/internal/rng"
)

// Acceptance: on a generated BA graph with n ≥ 50k, answering a new k
// from a prebuilt sketch must be ≥ 10× faster than a cold IMM selection.
// The margin is normally 100×+; the test asserts the conservative bound.
func TestSketchSpeedupVsColdIMM(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-node speedup acceptance test")
	}
	g := graph.BarabasiAlbert(50000, 3, rng.New(1))
	g.SetUniformProb(0.1)
	g.SetDefaultLTWeights()
	const eps, seed = 0.25, 9

	x := mustBuild(t, g, Params{Epsilon: eps, Seed: seed, BuildK: 50})
	// Serve from the build-time sample, as a memory-capped server would.
	x.params.MaxSets = x.col.Len()

	start := time.Now()
	imm := ris.NewIMM(g, ris.ModelIC, ris.TIMOptions{Epsilon: eps, Seed: seed})
	coldRes, err := imm.Select(context.Background(), 25)
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)

	start = time.Now()
	warmRes, err := x.Select(context.Background(), 25) // a k never asked of the index
	if err != nil {
		t.Fatal(err)
	}
	warm := time.Since(start)

	if len(warmRes.Seeds) != len(coldRes.Seeds) {
		t.Fatalf("sketch selected %d seeds, cold IMM %d", len(warmRes.Seeds), len(coldRes.Seeds))
	}
	t.Logf("cold IMM: %v (%d sets), sketch: %v (%d sets)",
		cold, int(coldRes.Metrics["theta"]), warm, x.Len())
	if warm*10 > cold {
		t.Fatalf("sketch select %v not >=10x faster than cold IMM %v", warm, cold)
	}
	// And the answers converge: both are (1-1/e-eps) approximations of
	// the same objective on the same graph.
	if est := x.EstimateSpread(warmRes.Seeds); est <= 0 {
		t.Fatalf("degenerate sketch estimate %v", est)
	}
}

// Acceptance: on the 50k-node BA benchmark graph, a sketch-backed
// opinion estimate must be ≥ 10× faster than a cold Monte-Carlo OC
// estimate of the same seed set — the tentpole claim that the
// opinion-aware workload is as cheap to serve as the oblivious one. The
// MC side runs a deliberately modest 500-run budget (1/20 of the paper's
// 10000), so the asserted margin is very conservative; the observed gap
// is normally 1000×+ against the full budget.
func TestOpinionEstimateSpeedupVsColdMC(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-node speedup acceptance test")
	}
	g := graph.BarabasiAlbert(50000, 3, rng.New(1))
	g.SetUniformProb(0.1)
	g.SetDefaultLTWeights()
	opinion.AssignOpinions(g, opinion.Normal, 2)

	x := mustBuild(t, g, Params{Kind: ris.ModelOC, Epsilon: 0.25, Seed: 9, BuildK: 50})
	res, err := x.Select(context.Background(), 25)
	if err != nil {
		t.Fatal(err)
	}

	model := diffusion.NewOC(g)
	start := time.Now()
	mc := diffusion.MonteCarlo(model, res.Seeds, diffusion.MCOptions{Runs: 500, Seed: 7})
	cold := time.Since(start)

	start = time.Now()
	oe, err := x.EstimateOpinion(res.Seeds)
	if err != nil {
		t.Fatal(err)
	}
	warm := time.Since(start)

	t.Logf("cold MC (%d runs): %v, sketch (%d sets): %v — opinion %.2f vs %.2f",
		mc.Runs, cold, oe.Sets, warm, mc.OpinionSpread, oe.Opinion)
	if warm*10 > cold {
		t.Fatalf("sketch estimate %v not >=10x faster than cold MC %v", warm, cold)
	}
	// And it estimates the same quantity: sign and activation-scale
	// agreement, as the small-graph conformance tests pin more tightly.
	if d := oe.Spread - mc.Spread; d > 0.15*(mc.Spread+1) || d < -0.15*(mc.Spread+1) {
		t.Fatalf("spread %v vs MC %v", oe.Spread, mc.Spread)
	}
	if d := oe.Opinion - mc.OpinionSpread; d > 0.15*(mc.Spread+1) || d < -0.15*(mc.Spread+1) {
		t.Fatalf("opinion %v vs MC %v", oe.Opinion, mc.OpinionSpread)
	}
}

// Acceptance: parallel build with 8 workers must be ≥ 3× faster than 1
// worker. Meaningful only with enough cores; on smaller machines the
// benchmarks below document the scaling instead.
func TestParallelBuildSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second build-speedup acceptance test")
	}
	if runtime.NumCPU() < 8 {
		t.Skipf("need >=8 CPUs for the 3x assertion, have %d (see BenchmarkBuildWorkers*)", runtime.NumCPU())
	}
	g := graph.BarabasiAlbert(50000, 3, rng.New(1))
	g.SetUniformProb(0.1)
	g.SetDefaultLTWeights()
	p := Params{Epsilon: 0.15, Seed: 3, BuildK: 50}

	p.Workers = 1
	start := time.Now()
	x1 := mustBuild(t, g, p)
	seq := time.Since(start)

	p.Workers = 8
	start = time.Now()
	x8 := mustBuild(t, g, p)
	par := time.Since(start)

	if x1.Len() != x8.Len() {
		t.Fatalf("worker count changed the sample: %d vs %d sets", x1.Len(), x8.Len())
	}
	t.Logf("build with 1 worker: %v, 8 workers: %v (%.1fx)", seq, par, float64(seq)/float64(par))
	if par*3 > seq {
		t.Fatalf("8-worker build %v not >=3x faster than 1-worker %v", par, seq)
	}
}

func benchGraph(b *testing.B) *graph.Graph {
	g := graph.BarabasiAlbert(20000, 3, rng.New(1))
	g.SetUniformProb(0.1)
	g.SetDefaultLTWeights()
	return g
}

func benchmarkBuild(b *testing.B, workers int) {
	g := benchGraph(b)
	p := Params{Epsilon: 0.2, Seed: 1, BuildK: 50, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, err := Build(context.Background(), g, p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(x.Len()), "sets")
	}
}

func BenchmarkBuildWorkers1(b *testing.B) { benchmarkBuild(b, 1) }
func BenchmarkBuildWorkers4(b *testing.B) { benchmarkBuild(b, 4) }
func BenchmarkBuildWorkers8(b *testing.B) { benchmarkBuild(b, 8) }

// BenchmarkSketchSelect measures the warm serve-many path: one prebuilt
// index answering a stream of differing ks.
func BenchmarkSketchSelect(b *testing.B) {
	g := benchGraph(b)
	x, err := Build(context.Background(), g, Params{Epsilon: 0.2, Seed: 1, BuildK: 50})
	if err != nil {
		b.Fatal(err)
	}
	x.params.MaxSets = x.col.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x.Select(context.Background(), 1+i%50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdIMMSelect is the baseline the sketch replaces: resample
// the whole RR collection for every query.
func BenchmarkColdIMMSelect(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		imm := ris.NewIMM(g, ris.ModelIC, ris.TIMOptions{Epsilon: 0.2, Seed: 1})
		if _, err := imm.Select(context.Background(), 1+i%50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotSaveLoad(b *testing.B) {
	g := benchGraph(b)
	x, err := Build(context.Background(), g, Params{Epsilon: 0.2, Seed: 1, BuildK: 50})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := x.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Load(bytes.NewReader(buf.Bytes()), g); err != nil {
			b.Fatal(err)
		}
	}
}
