package sketch

import (
	"bytes"
	"context"
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/opinion"
	"github.com/holisticim/holisticim/internal/ris"
	"github.com/holisticim/holisticim/internal/rng"
)

func ocTestGraph(t testing.TB, n int32, dist opinion.Distribution) *graph.Graph {
	t.Helper()
	g := graph.BarabasiAlbert(n, 3, rng.New(7))
	g.SetUniformProb(0.1)
	g.SetDefaultLTWeights()
	opinion.AssignOpinions(g, dist, 2)
	return g
}

// Satellite conformance: the weighted-RIS estimator must agree with the
// Monte-Carlo OC opinion spread within a tolerance band on small graphs.
// The reachability part (Spread) is the exact LT live-edge equivalence,
// so it gets a tight band; the opinion parts carry the single-activator
// chain approximation (OCRootWeight) on top of sampling noise, so their
// band is wider but still tied to the spread scale — the estimator must
// track sign and magnitude, not just correlate.
func TestOCEstimateConformance(t *testing.T) {
	for _, dist := range []opinion.Distribution{opinion.Uniform, opinion.Normal, opinion.Polarized} {
		g := ocTestGraph(t, 600, dist)
		x := mustBuild(t, g, Params{Kind: ris.ModelOC, Epsilon: 0.2, Seed: 3, BuildK: 10})
		model := diffusion.NewOC(g)
		for _, k := range []int{1, 5, 10} {
			res, err := x.Select(context.Background(), k)
			if err != nil {
				t.Fatal(err)
			}
			oe, err := x.EstimateOpinion(res.Seeds)
			if err != nil {
				t.Fatal(err)
			}
			mc := diffusion.MonteCarlo(model, res.Seeds, diffusion.MCOptions{Runs: 20000, Seed: 99})

			if d := math.Abs(oe.Spread - mc.Spread); d > 0.1*(mc.Spread+1) {
				t.Errorf("dist=%v k=%d: spread %v vs MC %v (Δ=%v)", dist, k, oe.Spread, mc.Spread, d)
			}
			// Opinion tolerance: 12% of the activation scale. Opinions live
			// in [-1,1], so the spread is the natural yardstick for the
			// aggregate opinion mass; the residual gap is the
			// multi-activator averaging the MC simulation performs that the
			// single live-edge chain cannot (both sides are deterministic,
			// so the band can sit close to the observed residual).
			tol := 0.12*(mc.Spread+1) + 0.05
			for _, c := range []struct {
				name     string
				got, mcv float64
			}{
				{"opinion", oe.Opinion, mc.OpinionSpread},
				{"positive", oe.Positive, mc.PositiveSpread},
				{"negative", oe.Negative, mc.NegativeSpread},
			} {
				if d := math.Abs(c.got - c.mcv); d > tol {
					t.Errorf("dist=%v k=%d: %s %v vs MC %v (Δ=%v > tol %v)", dist, k, c.name, c.got, c.mcv, d, tol)
				}
			}
			t.Logf("dist=%v k=%2d sets=%d: spread %7.2f/%7.2f opinion %7.3f/%7.3f pos %7.3f/%7.3f neg %7.3f/%7.3f (sketch/MC)",
				dist, k, oe.Sets, oe.Spread, mc.Spread, oe.Opinion, mc.OpinionSpread,
				oe.Positive, mc.PositiveSpread, oe.Negative, mc.NegativeSpread)
		}
	}
}

// On a deterministic two-node path the weighted estimator is exact (one
// live-edge world, single activator): a hand-crankable anchor for the
// estimator's semantics, including the root-seeded-set exclusion.
func TestOCEstimateExactPath(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	g := b.Build()
	g.SetDefaultLTWeights()
	g.SetOpinion(0, 0.6)
	g.SetOpinion(1, -0.2)

	x := mustBuild(t, g, Params{Kind: ris.ModelOC, Epsilon: 0.2, Seed: 5, BuildK: 1})
	oe, err := x.EstimateOpinion([]graph.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	mc := diffusion.MonteCarlo(diffusion.NewOC(g), []graph.NodeID{0}, diffusion.MCOptions{Runs: 4000, Seed: 9})
	// Node 1 always activates with o'_1 = (o_1+o_0)/2 = 0.2.
	if math.Abs(mc.OpinionSpread-0.2) > 1e-9 || math.Abs(mc.Spread-1) > 1e-9 {
		t.Fatalf("MC anchor drifted: %+v", mc)
	}
	if math.Abs(oe.Opinion-0.2) > 0.05 || math.Abs(oe.Spread-1) > 0.05 {
		t.Fatalf("sketch estimate off the exact value: %+v", oe)
	}
	if oe.Negative != 0 {
		t.Fatalf("negative mass %v on an all-positive outcome", oe.Negative)
	}
	if got := oe.EffectiveOpinion(2); math.Abs(got-oe.Positive) > 1e-12 {
		t.Fatalf("EffectiveOpinion(2) = %v, want %v", got, oe.Positive)
	}
}

// An unweighted index must refuse the opinion estimate so callers fall
// back to Monte Carlo.
func TestEstimateOpinionRequiresWeights(t *testing.T) {
	g := testGraph(t, 300)
	x := mustBuild(t, g, Params{Kind: ris.ModelLT, Epsilon: 0.4, Seed: 2, BuildK: 5})
	if _, err := x.EstimateOpinion([]graph.NodeID{0}); err == nil {
		t.Fatal("LT index served an opinion estimate")
	}
}

// The weighted greedy must maximize opinion coverage: against a
// reference recomputation with identical operation order it must agree
// exactly, and it must beat (or match) the unweighted order on the
// weighted objective.
func TestWeightedSelectMaximizesOpinionCoverage(t *testing.T) {
	g := ocTestGraph(t, 800, opinion.Polarized)
	x := mustBuild(t, g, Params{Kind: ris.ModelOC, Epsilon: 0.3, Seed: 4, BuildK: 15})
	x.params.MaxSets = x.col.Len() // freeze so the reference stays aligned

	const k = 15
	res, err := x.Select(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: greedy weighted max coverage recomputed from scratch with
	// the same float operation order as the index's incremental counters.
	n := g.NumNodes()
	weights := x.col.Weights()
	wgain := make([]float64, n)
	for v := graph.NodeID(0); v < n; v++ {
		for _, sid := range x.col.SetsContaining(v) {
			wgain[v] += weights[sid]
		}
	}
	covered := make([]bool, x.col.Len())
	inOrder := make([]bool, n)
	wantWCov := 0.0
	for i := 0; i < k; i++ {
		best := graph.NodeID(-1)
		bestGain := math.Inf(-1)
		for v := graph.NodeID(0); v < n; v++ {
			if !inOrder[v] && wgain[v] > bestGain {
				bestGain = wgain[v]
				best = v
			}
		}
		if res.Seeds[i] != best {
			t.Fatalf("seed %d: got %d, reference %d", i, res.Seeds[i], best)
		}
		inOrder[best] = true
		for _, sid := range x.col.SetsContaining(best) {
			if covered[sid] {
				continue
			}
			covered[sid] = true
			w := weights[sid]
			wantWCov += w
			for _, u := range x.col.Sets()[sid] {
				wgain[u] -= w
			}
		}
	}
	if got := res.Metrics["weighted_coverage"]; got != wantWCov {
		t.Fatalf("weighted_coverage %v, want %v", got, wantWCov)
	}
	if res.Metrics["estimated_opinion_spread"] == 0 {
		t.Fatal("estimated_opinion_spread metric missing")
	}

	// The unweighted greedy order over the same sets must not beat the
	// weighted one on the weighted objective (ties allowed).
	ref := ris.NewCollection(g, ris.ModelOC)
	for _, s := range x.col.Sets() {
		ref.Add(s)
	}
	plain, _ := ref.MaxCoverage(k)
	plainW := coveredWeight(ref, plain)
	if plainW > wantWCov+1e-9 {
		t.Fatalf("unweighted order beats weighted greedy: %v > %v", plainW, wantWCov)
	}
}

// coveredWeight sums the weights of all sets hit by the seed set.
func coveredWeight(c *ris.Collection, seeds []graph.NodeID) float64 {
	hit := make([]bool, c.Len())
	total := 0.0
	for _, s := range seeds {
		for _, sid := range c.SetsContaining(s) {
			if !hit[sid] {
				hit[sid] = true
				total += c.Weights()[sid]
			}
		}
	}
	return total
}

// Workers=8 must be invisible in a weighted build: sets, weights and the
// weighted selection all identical to Workers=1 (run under -race in CI —
// the satellite determinism test for the weighted sampler at the index
// level; the sampler-level mirror lives in internal/ris).
func TestParallelBuildDeterminismOC(t *testing.T) {
	g := ocTestGraph(t, 2000, opinion.Normal)
	p := Params{Kind: ris.ModelOC, Epsilon: 0.3, Seed: 11, BuildK: 10}
	p.Workers = 1
	x1 := mustBuild(t, g, p)
	p.Workers = 8
	x8 := mustBuild(t, g, p)

	if x1.Len() != x8.Len() {
		t.Fatalf("%d sets with 8 workers, want %d", x8.Len(), x1.Len())
	}
	w1, w8 := x1.col.Weights(), x8.col.Weights()
	for i := range w1 {
		if w1[i] != w8[i] {
			t.Fatalf("weight %d differs: %v vs %v", i, w8[i], w1[i])
		}
	}
	r1, err := x1.Select(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := x8.Select(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Seeds {
		if r1.Seeds[i] != r8.Seeds[i] {
			t.Fatalf("weighted seed %d differs: %d vs %d", i, r1.Seeds[i], r8.Seeds[i])
		}
	}
}

// Snapshot v2: an OC index round-trips byte-identically, carries its
// weights, and reports version 2 in the header; IC/LT snapshots keep
// writing version 1 (the byte-compat guarantee for pre-existing files).
func TestSnapshotV2RoundTrip(t *testing.T) {
	g := ocTestGraph(t, 900, opinion.Normal)
	x := mustBuild(t, g, Params{Kind: ris.ModelOC, Epsilon: 0.3, Seed: 13, BuildK: 10})

	var buf1 bytes.Buffer
	if err := x.Save(&buf1); err != nil {
		t.Fatal(err)
	}
	raw := buf1.Bytes()
	if v := raw[4]; v != 2 {
		t.Fatalf("OC snapshot version byte %d, want 2", v)
	}
	h, err := ReadHeader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != 2 || !h.Weighted() || h.Kind != ris.ModelOC {
		t.Fatalf("header mismatch: %+v", h)
	}

	loaded, err := Load(bytes.NewReader(raw), g)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, buf2.Bytes()) {
		t.Fatalf("v2 save->load->save not byte-identical: %d vs %d bytes", len(raw), buf2.Len())
	}
	lw, xw := loaded.col.Weights(), x.col.Weights()
	for i := range xw {
		if lw[i] != xw[i] {
			t.Fatalf("loaded weight %d differs", i)
		}
	}
	want, err := x.Select(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Select(context.Background(), 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Seeds {
		if got.Seeds[i] != want.Seeds[i] {
			t.Fatalf("loaded weighted seed %d differs", i)
		}
	}

	// IC sketches stay on version 1.
	icg := testGraph(t, 400)
	ic := mustBuild(t, icg, Params{Epsilon: 0.35, Seed: 19, BuildK: 5})
	var icBuf bytes.Buffer
	if err := ic.Save(&icBuf); err != nil {
		t.Fatal(err)
	}
	if v := icBuf.Bytes()[4]; v != 1 {
		t.Fatalf("IC snapshot version byte %d, want 1", v)
	}
	ich, err := ReadHeader(bytes.NewReader(icBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ich.Version != 1 || ich.Weighted() {
		t.Fatalf("IC header claims weights: %+v", ich)
	}
}

// Corrupt v2 payloads must be rejected: out-of-range weights, a
// version/kind mismatch in either direction, and weight-block truncation.
func TestSnapshotV2Guards(t *testing.T) {
	g := ocTestGraph(t, 300, opinion.Normal)
	x := mustBuild(t, g, Params{Kind: ris.ModelOC, Epsilon: 0.4, Seed: 7, BuildK: 5})
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// v1 header claiming the weighted kind: inconsistent.
	bad := append([]byte(nil), raw...)
	bad[4] = 1
	if _, err := Load(bytes.NewReader(bad), g); err == nil {
		t.Fatal("v1/OC snapshot accepted")
	}
	if _, err := ReadHeader(bytes.NewReader(bad)); err == nil {
		t.Fatal("v1/OC header accepted")
	}
	// Truncations inside the weight block must error, never panic.
	for _, cut := range []int{len(raw) - 9, len(raw) - 12, len(raw) - 16} {
		if _, err := Load(bytes.NewReader(raw[:cut]), g); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// The pristine snapshot still loads.
	if _, err := Load(bytes.NewReader(raw), g); err != nil {
		t.Fatalf("pristine v2 snapshot rejected: %v", err)
	}
}

// Matches must accept a different *Graph instance with identical content
// (re-registration staleness fix) and rebind to it; different content
// must still be refused.
func TestMatchesFingerprintRebind(t *testing.T) {
	build := func() *graph.Graph {
		g := graph.BarabasiAlbert(500, 3, rng.New(7))
		g.SetUniformProb(0.1)
		g.SetDefaultLTWeights()
		return g
	}
	g1 := build()
	x := mustBuild(t, g1, Params{Epsilon: 0.35, Seed: 2, BuildK: 5})

	if !x.Matches(g1, ris.ModelIC) {
		t.Fatal("index does not match its own graph")
	}
	if x.Matches(g1, ris.ModelLT) {
		t.Fatal("kind mismatch accepted")
	}
	g2 := build() // same content, different instance
	if !x.Matches(g2, ris.ModelIC) {
		t.Fatal("identical-content instance refused")
	}
	if x.Graph() != g2 {
		t.Fatal("index did not rebind to the matching instance")
	}
	if _, err := x.Select(context.Background(), 5); err != nil {
		t.Fatalf("select after rebind: %v", err)
	}
	g3 := build()
	g3.SetUniformProb(0.2) // different content
	if x.Matches(g3, ris.ModelIC) {
		t.Fatal("different-content instance accepted")
	}
	if x.Matches(nil, ris.ModelIC) {
		t.Fatal("nil graph accepted")
	}
}
