package sketch

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/ris"
	"github.com/holisticim/holisticim/internal/rng"
)

func testGraph(t testing.TB, n int32) *graph.Graph {
	t.Helper()
	g := graph.BarabasiAlbert(n, 3, rng.New(7))
	g.SetUniformProb(0.1)
	g.SetDefaultLTWeights()
	return g
}

func mustBuild(t testing.TB, g *graph.Graph, p Params) *Index {
	t.Helper()
	x, err := Build(context.Background(), g, p)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// Satellite: a sketch built with Workers=8 must be set-for-set identical
// to Workers=1 — the deterministic split-seed per set index is what makes
// the index a pure function of (graph, Params). Run under -race in CI.
func TestParallelBuildDeterminism(t *testing.T) {
	g := testGraph(t, 2000)
	for _, kind := range []ris.ModelKind{ris.ModelIC, ris.ModelLT} {
		p := Params{Kind: kind, Epsilon: 0.3, Seed: 11, BuildK: 10}
		p.Workers = 1
		x1 := mustBuild(t, g, p)
		p.Workers = 8
		x8 := mustBuild(t, g, p)

		if x1.Len() != x8.Len() {
			t.Fatalf("%v: %d sets with 8 workers, want %d", kind, x8.Len(), x1.Len())
		}
		s1, s8 := x1.col.Sets(), x8.col.Sets()
		for i := range s1 {
			if len(s1[i]) != len(s8[i]) {
				t.Fatalf("%v: set %d has %d nodes with 8 workers, want %d", kind, i, len(s8[i]), len(s1[i]))
			}
			for j := range s1[i] {
				if s1[i][j] != s8[i][j] {
					t.Fatalf("%v: set %d differs at position %d", kind, i, j)
				}
			}
		}
		r1, err := x1.Select(context.Background(), 10)
		if err != nil {
			t.Fatal(err)
		}
		r8, err := x8.Select(context.Background(), 10)
		if err != nil {
			t.Fatal(err)
		}
		for i := range r1.Seeds {
			if r1.Seeds[i] != r8.Seeds[i] {
				t.Fatalf("%v: seed %d differs: %d vs %d", kind, i, r1.Seeds[i], r8.Seeds[i])
			}
		}
	}
}

// The memoized incremental greedy must agree with the one-shot
// MaxCoverage pass over the same sets.
func TestSelectMatchesMaxCoverage(t *testing.T) {
	g := testGraph(t, 1500)
	x := mustBuild(t, g, Params{Epsilon: 0.3, Seed: 3, BuildK: 20})
	// Freeze the sample so the reference collection below stays aligned
	// even if a request's θ bound would otherwise extend it.
	x.params.MaxSets = x.col.Len()

	ref := ris.NewCollection(g, ris.ModelIC)
	for _, s := range x.col.Sets() {
		ref.Add(s)
	}
	want, wantFrac := ref.MaxCoverage(20)

	res, err := x.Select(context.Background(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != len(want) {
		t.Fatalf("got %d seeds, want %d", len(res.Seeds), len(want))
	}
	for i := range want {
		if res.Seeds[i] != want[i] {
			t.Fatalf("seed %d: got %d, want %d", i, res.Seeds[i], want[i])
		}
	}
	if got := res.Metrics["coverage"]; got != wantFrac {
		t.Fatalf("coverage %v, want %v", got, wantFrac)
	}
	// Prefix queries reuse the memoized order.
	res5, err := x.Select(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res5.Seeds {
		if res5.Seeds[i] != want[i] {
			t.Fatalf("prefix seed %d: got %d, want %d", i, res5.Seeds[i], want[i])
		}
	}
	if x.Stats().Selects != 2 {
		t.Fatalf("selects counter: %d, want 2", x.Stats().Selects)
	}
}

// Seeds must be distinct even when coverage saturates (k beyond the
// useful frontier).
func TestSelectDistinctSeeds(t *testing.T) {
	g := graph.Path(30, 0.5, 0.5)
	g.SetDefaultLTWeights()
	x := mustBuild(t, g, Params{Epsilon: 0.4, Seed: 1, BuildK: 5})
	res, err := x.Select(context.Background(), 30)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[graph.NodeID]bool)
	for _, s := range res.Seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	if len(res.Seeds) != 30 {
		t.Fatalf("got %d seeds, want 30", len(res.Seeds))
	}
}

// A k whose θ bound exceeds the sets held must trigger a lazy,
// deterministic extension: the extended index equals one built large
// from scratch.
func TestLazyExtension(t *testing.T) {
	g := graph.ErdosRenyi(500, 1500, rng.New(5))
	g.SetUniformProb(0.3) // supercritical: OPT saturates, so θ grows with k
	g.SetDefaultLTWeights()
	x := mustBuild(t, g, Params{Epsilon: 0.3, Seed: 2, BuildK: 2})
	before := x.Len()

	res, err := x.Select(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 100 {
		t.Fatalf("got %d seeds, want 100", len(res.Seeds))
	}
	if x.Stats().Extensions == 0 || x.Len() <= before {
		t.Fatalf("expected a lazy extension (sets %d -> %d, extensions %d)",
			before, x.Len(), x.Stats().Extensions)
	}
	if res.Metrics["extended_sets"] == 0 {
		t.Fatal("extension not recorded in metrics")
	}

	// The extended sample is the same stream a fresh index would draw.
	seq := ris.NewCollection(g, ris.ModelIC)
	seq.Generate(x.Len(), 2)
	for i, want := range seq.Sets() {
		got := x.col.Sets()[i]
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("extended set %d differs from the deterministic stream", i)
			}
		}
	}
}

// MaxSets must cap extension and record that the θ bound went unmet.
func TestMaxSetsCap(t *testing.T) {
	g := testGraph(t, 800)
	x := mustBuild(t, g, Params{Epsilon: 0.3, Seed: 4, BuildK: 10, MaxSets: 200})
	if x.Len() > 200 {
		t.Fatalf("build exceeded MaxSets: %d sets", x.Len())
	}
	res, err := x.Select(context.Background(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() > 200 {
		t.Fatalf("select exceeded MaxSets: %d sets", x.Len())
	}
	if res.Metrics["theta_capped"] == 0 {
		t.Fatal("cap not recorded in metrics")
	}
}

// Cancellation mid-select must return a partial result and leave the
// index consistent for the next caller.
func TestSelectCancellation(t *testing.T) {
	g := testGraph(t, 800)
	x := mustBuild(t, g, Params{Epsilon: 0.3, Seed: 6, BuildK: 10})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := x.Select(ctx, 10)
	if err == nil {
		t.Fatal("expected a context error")
	}
	if !res.Partial {
		t.Fatal("result not marked partial")
	}
	// The index must still serve the next request.
	res, err = x.Select(context.Background(), 10)
	if err != nil || len(res.Seeds) != 10 {
		t.Fatalf("index unusable after cancellation: %v, %d seeds", err, len(res.Seeds))
	}
}

// A cancelled build returns no index.
func TestBuildCancellation(t *testing.T) {
	g := testGraph(t, 800)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, g, Params{}); err == nil {
		t.Fatal("expected a context error")
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(context.Background(), nil, Params{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	empty := graph.NewBuilder(0).Build()
	if _, err := Build(context.Background(), empty, Params{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	g := testGraph(t, 100)
	x := mustBuild(t, g, Params{Epsilon: 0.4})
	if _, err := x.Select(context.Background(), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := x.Select(context.Background(), 101); err == nil {
		t.Fatal("k>n accepted")
	}
}

// Concurrent selects (varying k), stats polls and snapshot saves must be
// race-free and mutually consistent. Run under -race in CI.
func TestConcurrentSelect(t *testing.T) {
	g := testGraph(t, 1000)
	x := mustBuild(t, g, Params{Epsilon: 0.3, Seed: 8, BuildK: 20})
	// Freeze the sample: prefix stability across concurrent ks is only
	// guaranteed while no extension resets the memoized order.
	x.params.MaxSets = x.col.Len()
	ref, err := x.Select(context.Background(), 20)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				k := 1 + (w+i)%20
				res, err := x.Select(context.Background(), k)
				if err != nil {
					errs <- err
					return
				}
				for j := range res.Seeds {
					if res.Seeds[j] != ref.Seeds[j] {
						errs <- fmt.Errorf("worker %d: seed %d diverged", w, j)
						return
					}
				}
				_ = x.Stats()
				if err := x.Save(io.Discard); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
