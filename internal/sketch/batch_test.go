package sketch

import (
	"context"
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/opinion"
	"github.com/holisticim/holisticim/internal/ris"
	"github.com/holisticim/holisticim/internal/rng"
)

// TestSelectPrefixes pins the batch contract: results align with the
// requested ks (any order, duplicates allowed), every smaller budget is
// an exact prefix of the largest, and non-max members are marked as
// prefix serves.
func TestSelectPrefixes(t *testing.T) {
	g := graph.BarabasiAlbert(2000, 3, rng.New(1))
	g.SetUniformProb(0.1)
	g.SetDefaultLTWeights()
	x := mustBuild(t, g, Params{Epsilon: 0.3, Seed: 5, BuildK: 25})

	ks := []int{10, 5, 25, 5}
	results, err := x.SelectPrefixes(context.Background(), ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ks) {
		t.Fatalf("got %d results for %d budgets", len(results), len(ks))
	}
	full := results[2] // k=25
	for i, k := range ks {
		r := results[i]
		if len(r.Seeds) != k {
			t.Fatalf("member %d (k=%d) selected %d seeds", i, k, len(r.Seeds))
		}
		for j, s := range r.Seeds {
			if s != full.Seeds[j] {
				t.Fatalf("member %d (k=%d) seed %d = %d, not a prefix of k=25 (%d)", i, k, j, s, full.Seeds[j])
			}
		}
		if k != 25 {
			if r.Metrics["batch_prefix"] != 1 {
				t.Fatalf("member %d (k=%d) missing batch_prefix metric: %v", i, k, r.Metrics)
			}
			if r.Metrics["coverage"] <= 0 || r.Metrics["estimated_spread"] <= 0 {
				t.Fatalf("member %d (k=%d) metrics %v", i, k, r.Metrics)
			}
		}
	}
	// The memoized order survives the batch: a follow-up Select(10) must
	// return the same seeds as the batch member.
	again, err := x.Select(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	for j, s := range again.Seeds {
		if s != results[0].Seeds[j] {
			t.Fatalf("post-batch Select(10) diverged at seed %d", j)
		}
	}

	// Degenerate batches are rejected.
	if _, err := x.SelectPrefixes(context.Background(), nil); err == nil {
		t.Fatal("empty batch not rejected")
	}
	if _, err := x.SelectPrefixes(context.Background(), []int{3, 0}); err == nil {
		t.Fatal("invalid budget not rejected")
	}
}

// TestSelectPrefixesWeighted: an opinion-weighted (OC) index serves batch
// prefixes with the weighted metrics, consistent with its own Select.
func TestSelectPrefixesWeighted(t *testing.T) {
	g := graph.BarabasiAlbert(2000, 3, rng.New(1))
	g.SetUniformProb(0.1)
	g.SetDefaultLTWeights()
	opinion.AssignOpinions(g, opinion.Normal, 2)
	x := mustBuild(t, g, Params{Kind: ris.ModelOC, Epsilon: 0.3, Seed: 5, BuildK: 20})

	results, err := x.SelectPrefixes(context.Background(), []int{5, 15})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if _, ok := r.Metrics["weighted_coverage"]; !ok {
			t.Fatalf("member %d missing weighted_coverage: %v", i, r.Metrics)
		}
		if _, ok := r.Metrics["estimated_opinion_spread"]; !ok {
			t.Fatalf("member %d missing estimated_opinion_spread: %v", i, r.Metrics)
		}
	}
	for j, s := range results[0].Seeds {
		if s != results[1].Seeds[j] {
			t.Fatalf("weighted batch member not a prefix at seed %d", j)
		}
	}
	// The prefix member's opinion estimate equals what a direct Select of
	// that k reports (same memoized estimator).
	direct, err := x.Select(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Metrics["estimated_opinion_spread"] != results[0].Metrics["estimated_opinion_spread"] {
		t.Fatalf("prefix opinion estimate %v != direct %v",
			results[0].Metrics["estimated_opinion_spread"], direct.Metrics["estimated_opinion_spread"])
	}
}
