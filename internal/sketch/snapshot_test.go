package sketch

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/holisticim/holisticim/internal/ris"
)

// Acceptance: snapshot save/load must round-trip byte-identically, and a
// loaded sketch must yield the same seed set as the in-memory one.
func TestSnapshotRoundTrip(t *testing.T) {
	g := testGraph(t, 1200)
	x := mustBuild(t, g, Params{Epsilon: 0.3, Seed: 13, BuildK: 15})

	var buf1 bytes.Buffer
	if err := x.Save(&buf1); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf1.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("save->load->save not byte-identical: %d vs %d bytes", buf1.Len(), buf2.Len())
	}

	if loaded.Len() != x.Len() {
		t.Fatalf("loaded %d sets, want %d", loaded.Len(), x.Len())
	}
	want, err := x.Select(context.Background(), 15)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Select(context.Background(), 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Seeds) != len(want.Seeds) {
		t.Fatalf("loaded sketch selected %d seeds, want %d", len(got.Seeds), len(want.Seeds))
	}
	for i := range want.Seeds {
		if got.Seeds[i] != want.Seeds[i] {
			t.Fatalf("seed %d: loaded %d, in-memory %d", i, got.Seeds[i], want.Seeds[i])
		}
	}
	if got.Algorithm != AlgorithmName {
		t.Fatalf("algorithm %q", got.Algorithm)
	}
}

// A loaded sketch must continue the same deterministic stream when a
// later request extends it.
func TestSnapshotExtensionContinuity(t *testing.T) {
	g := testGraph(t, 600)
	x := mustBuild(t, g, Params{Epsilon: 0.35, Seed: 17, BuildK: 4})

	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := x.Select(context.Background(), 60) // likely extends
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Select(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != x.Len() {
		t.Fatalf("loaded index extended to %d sets, in-memory to %d", loaded.Len(), x.Len())
	}
	for i := range want.Seeds {
		if got.Seeds[i] != want.Seeds[i] {
			t.Fatalf("post-extension seed %d diverged", i)
		}
	}
}

func TestSnapshotGuards(t *testing.T) {
	g := testGraph(t, 400)
	x := mustBuild(t, g, Params{Epsilon: 0.35, Seed: 19, BuildK: 5})
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Wrong graph: same dimensions, different parameters.
	other := testGraph(t, 400)
	other.SetUniformProb(0.2)
	if _, err := Load(bytes.NewReader(raw), other); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("foreign graph accepted: %v", err)
	}
	// Different dimensions.
	small := testGraph(t, 300)
	if _, err := Load(bytes.NewReader(raw), small); err == nil {
		t.Fatal("wrong-size graph accepted")
	}
	// Nil graph.
	if _, err := Load(bytes.NewReader(raw), nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	// Bad magic.
	bad := append([]byte("XXXX"), raw[4:]...)
	if _, err := Load(bytes.NewReader(bad), g); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Bad version.
	bad = append([]byte(nil), raw...)
	bad[4] = 99
	if _, err := Load(bytes.NewReader(bad), g); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version accepted: %v", err)
	}
	// Truncation at a spread of offsets must error, never panic.
	for _, cut := range []int{0, 3, 4, 7, 11, 30, 60, len(raw) / 2, len(raw) - 9, len(raw) - 1} {
		if cut >= len(raw) {
			continue
		}
		if _, err := Load(bytes.NewReader(raw[:cut]), g); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// A flipped payload byte must fail the checksum.
	bad = append([]byte(nil), raw...)
	bad[len(bad)-20] ^= 0xff
	if _, err := Load(bytes.NewReader(bad), g); err == nil {
		t.Fatal("corrupted payload accepted")
	}
	// A header lying about its set count must fail at the first missing
	// chunk (bounded allocation), not attempt a gigantic make.
	bad = append([]byte(nil), raw...)
	const numSetsOff = 68 // magic+version+fp+n+m+kind+eps+ell+seed+buildK+lb
	for i := 0; i < 8; i++ {
		bad[numSetsOff+i] = byte(uint64(maxSnapshotSets) >> (8 * i))
	}
	if _, err := Load(bytes.NewReader(bad), g); err == nil {
		t.Fatal("lying set count accepted")
	}
	// The pristine snapshot still loads.
	if _, err := Load(bytes.NewReader(raw), g); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

func TestSnapshotHeader(t *testing.T) {
	g := testGraph(t, 500)
	x := mustBuild(t, g, Params{Kind: ris.ModelLT, Epsilon: 0.25, Seed: 23, BuildK: 7})
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind != ris.ModelLT || h.Epsilon != 0.25 || h.Seed != 23 || h.BuildK != 7 {
		t.Fatalf("header mismatch: %+v", h)
	}
	if h.Nodes != 500 || int(h.Sets) != x.Len() {
		t.Fatalf("header dims mismatch: %+v", h)
	}
	if h.GraphFingerprint != g.Fingerprint() {
		t.Fatal("header fingerprint mismatch")
	}
}
