package sketch

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/ris"
)

// Versioned binary snapshot of an Index, so imserver restarts (and
// offline build pipelines via cmd/imsketch) warm instead of resampling.
// Little-endian layout:
//
//	magic "HIMS" | version u32
//	graphFP u64 | n u32 | m u64        — guards: refuse a foreign graph
//	kind u32 | epsilon f64 | ell f64 | seed u64 | buildK u32 | lb f64
//	numSets u64
//	lens    numSets × u32
//	ids     Σlens × u32
//	weights numSets × f64              — version 2 (weighted kinds) only
//	checksum u64                       — FNV-1a of every preceding byte
//
// Version 1 (kinds IC and LT) has no weights block; version 2 carries
// the per-set root-opinion weights of an opinion-aware (OC) index.
// Unweighted indexes keep writing version 1, so every pre-existing
// snapshot — and any new IC/LT one — round-trips byte-identically
// through old and new readers alike.
//
// The layout is deterministic: Save after Load reproduces the input
// byte-for-byte, which is what the snapshot tests pin.
const (
	snapshotMagic     = "HIMS"
	snapshotVersion   = 1 // unweighted layout
	snapshotVersionV2 = 2 // + per-set root-opinion weights

	// maxSnapshotSets bounds how many sets Load will accept; a corrupt
	// count must not drive a multi-terabyte allocation.
	maxSnapshotSets = 1 << 31
)

// Save writes the index snapshot. Concurrent Selects are held off for the
// duration (the sets must not grow mid-write).
func (x *Index) Save(w io.Writer) error {
	x.mu.Lock()
	defer x.mu.Unlock()

	bw := bufio.NewWriterSize(w, 1<<20)
	h := fnv.New64a()
	mw := io.MultiWriter(bw, h)

	if _, err := mw.Write([]byte(snapshotMagic)); err != nil {
		return err
	}
	version := uint32(snapshotVersion)
	if x.params.Kind.Weighted() {
		version = snapshotVersionV2
	}
	sets := x.col.Sets()
	hdr := []any{
		version,
		x.fp,
		uint32(x.g.NumNodes()),
		uint64(x.g.NumEdges()),
		uint32(x.params.Kind),
		x.params.Epsilon,
		x.params.Ell,
		x.params.Seed,
		uint32(x.params.BuildK),
		x.lb,
		uint64(len(sets)),
	}
	for _, v := range hdr {
		if err := binary.Write(mw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	lens := make([]uint32, len(sets))
	total := 0
	for i, s := range sets {
		lens[i] = uint32(len(s))
		total += len(s)
	}
	if err := binary.Write(mw, binary.LittleEndian, lens); err != nil {
		return err
	}
	flat := make([]int32, 0, total)
	for _, s := range sets {
		flat = append(flat, s...)
	}
	if err := binary.Write(mw, binary.LittleEndian, flat); err != nil {
		return err
	}
	if version >= snapshotVersionV2 {
		if err := binary.Write(mw, binary.LittleEndian, x.col.Weights()); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, h.Sum64()); err != nil {
		return err
	}
	return bw.Flush()
}

// Header is the metadata prefix of a snapshot, readable without the
// graph (ReadHeader) for inspection tooling. Payload and checksum are
// not verified at this level — Load does that.
type Header struct {
	Version          int // 1 = unweighted, 2 = per-set opinion weights
	GraphFingerprint uint64
	Nodes            int32
	Arcs             int64
	Kind             ris.ModelKind
	Epsilon          float64
	Ell              float64
	Seed             uint64
	BuildK           int
	LowerBound       float64
	Sets             uint64
}

// Weighted reports whether the snapshot carries per-set opinion weights.
func (h Header) Weighted() bool { return h.Version >= snapshotVersionV2 }

// versionKindConsistent checks the version/kind pairing both readers
// enforce: v1 holds the unweighted kinds, v2 the weighted ones.
func versionKindConsistent(version, kind uint32) error {
	switch version {
	case snapshotVersion:
		if kind > uint32(ris.ModelLT) {
			return fmt.Errorf("sketch: v1 snapshot with unknown or weighted kind %d", kind)
		}
	case snapshotVersionV2:
		if kind > uint32(ris.ModelOC) || !ris.ModelKind(kind).Weighted() {
			return fmt.Errorf("sketch: v2 snapshot with unknown or unweighted kind %d", kind)
		}
	default:
		return fmt.Errorf("sketch: unsupported snapshot version %d", version)
	}
	return nil
}

// ReadHeader parses just the snapshot header for inspection (cmd/imsketch
// -info). It validates magic and version but not the payload checksum.
func ReadHeader(r io.Reader) (Header, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return Header{}, fmt.Errorf("sketch: snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return Header{}, fmt.Errorf("sketch: bad snapshot magic %q", magic)
	}
	var (
		version, n, buildK, kind uint32
		m                        uint64
		h                        Header
	)
	for _, v := range []any{&version, &h.GraphFingerprint, &n, &m, &kind, &h.Epsilon, &h.Ell, &h.Seed, &buildK, &h.LowerBound, &h.Sets} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return Header{}, fmt.Errorf("sketch: snapshot header: %w", err)
		}
	}
	if err := versionKindConsistent(version, kind); err != nil {
		return Header{}, err
	}
	h.Version = int(version)
	h.Nodes = int32(n)
	h.Arcs = int64(m)
	h.Kind = ris.ModelKind(kind)
	h.BuildK = int(buildK)
	return h, nil
}

// hashedReader tees everything read into the checksum hash.
type hashedReader struct {
	r io.Reader
	h hash.Hash64
}

func (hr *hashedReader) Read(p []byte) (int, error) {
	n, err := hr.r.Read(p)
	if n > 0 {
		hr.h.Write(p[:n])
	}
	return n, err
}

// readChunked reads count little-endian values, growing the destination
// one bounded chunk at a time: allocation tracks the bytes actually
// present in the stream, so a header lying about its counts fails at the
// first missing chunk instead of driving an enormous up-front make.
// (Same defense as graph.ReadBinary's payload reads.)
func readChunked[T int32 | uint32 | float64](r io.Reader, count uint64, what string) ([]T, error) {
	const chunk = 1 << 20
	capHint := count
	if capHint > chunk {
		capHint = chunk
	}
	out := make([]T, 0, capHint)
	for read := uint64(0); read < count; {
		n := count - read
		if n > chunk {
			n = chunk
		}
		start := len(out)
		out = append(out, make([]T, n)...)
		if err := binary.Read(r, binary.LittleEndian, out[start:]); err != nil {
			return nil, fmt.Errorf("sketch: snapshot %s: %w", what, err)
		}
		read += n
	}
	return out, nil
}

// Load reads a snapshot written by Save and binds it to g, which must be
// the very graph the sketch was built on: the stored content fingerprint
// and dimensions are verified before any set is accepted. The returned
// index extends with GOMAXPROCS workers; retune with SetWorkers.
func Load(r io.Reader, g *graph.Graph) (*Index, error) {
	if g == nil {
		return nil, fmt.Errorf("sketch: nil graph")
	}
	br := bufio.NewReaderSize(r, 1<<20)
	hr := &hashedReader{r: br, h: fnv.New64a()}

	magic := make([]byte, 4)
	if _, err := io.ReadFull(hr, magic); err != nil {
		return nil, fmt.Errorf("sketch: snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("sketch: bad snapshot magic %q", magic)
	}
	var (
		version, n, buildK, kind uint32
		m, seed, numSets, fp     uint64
		epsilon, ell, lb         float64
	)
	for _, v := range []any{&version, &fp, &n, &m, &kind, &epsilon, &ell, &seed, &buildK, &lb, &numSets} {
		if err := binary.Read(hr, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("sketch: snapshot header: %w", err)
		}
	}
	if err := versionKindConsistent(version, kind); err != nil {
		return nil, err
	}
	if int32(n) != g.NumNodes() || int64(m) != g.NumEdges() {
		return nil, fmt.Errorf("sketch: snapshot is for a %d-node/%d-arc graph, got %d/%d",
			n, m, g.NumNodes(), g.NumEdges())
	}
	if gfp := g.Fingerprint(); fp != gfp {
		return nil, fmt.Errorf("sketch: graph fingerprint mismatch (snapshot %016x, graph %016x)", fp, gfp)
	}
	if epsilon <= 0 || ell <= 0 || math.IsNaN(epsilon) || math.IsNaN(ell) {
		return nil, fmt.Errorf("sketch: corrupt parameters (eps=%v, ell=%v)", epsilon, ell)
	}
	if lb < 1 || math.IsNaN(lb) || lb > float64(n) {
		return nil, fmt.Errorf("sketch: corrupt lower bound %v", lb)
	}
	if numSets == 0 || numSets > maxSnapshotSets {
		return nil, fmt.Errorf("sketch: implausible set count %d", numSets)
	}

	lens, err := readChunked[uint32](hr, numSets, "set lengths")
	if err != nil {
		return nil, err
	}
	total := uint64(0)
	for i, l := range lens {
		if l == 0 || int64(l) > int64(n) {
			return nil, fmt.Errorf("sketch: implausible set %d length %d", i, l)
		}
		total += uint64(l)
	}
	flat, err := readChunked[int32](hr, total, "set payload")
	if err != nil {
		return nil, err
	}
	for _, v := range flat {
		if v < 0 || v >= int32(n) {
			return nil, fmt.Errorf("sketch: set member %d out of range [0,%d)", v, n)
		}
	}
	var setWeights []float64
	if version >= snapshotVersionV2 {
		setWeights, err = readChunked[float64](hr, numSets, "set weights")
		if err != nil {
			return nil, err
		}
		for i, w := range setWeights {
			// Root-opinion weights are convex combinations of opinions in
			// [-1,1]; anything outside marks corruption.
			if math.IsNaN(w) || w < -1 || w > 1 {
				return nil, fmt.Errorf("sketch: implausible set %d weight %v", i, w)
			}
		}
	}
	sum := hr.h.Sum64()
	var stored uint64
	if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
		return nil, fmt.Errorf("sketch: snapshot checksum: %w", err)
	}
	if stored != sum {
		return nil, fmt.Errorf("sketch: checksum mismatch (stored %016x, computed %016x)", stored, sum)
	}

	p := Params{
		Kind:    ris.ModelKind(kind),
		Epsilon: epsilon,
		Ell:     ell,
		Seed:    seed,
		BuildK:  int(buildK),
	}.withDefaults(g.NumNodes())
	x := &Index{
		g:      g,
		fp:     fp,
		params: p,
		col:    ris.NewCollection(g, p.Kind),
		lb:     lb,
	}
	off := int64(0)
	for i, l := range lens {
		set := flat[off : off+int64(l) : off+int64(l)]
		if setWeights != nil {
			x.col.AddWeighted(set, setWeights[i])
		} else {
			x.col.Add(set)
		}
		off += int64(l)
	}
	x.resetGreedyLocked()
	return x, nil
}
