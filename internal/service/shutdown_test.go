package service

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"
)

// TestManagerShutdownDrainsRunningCancelsQueued pins the graceful-
// shutdown contract: queued jobs are canceled immediately (they never
// started, nothing is lost), the running job gets to finish within the
// context budget, and new submissions are refused.
func TestManagerShutdownDrainsRunningCancelsQueued(t *testing.T) {
	m := NewManager(1, 4, 16)
	defer m.Close()
	release := make(chan struct{})
	blocker := func(ctx context.Context, report func(int)) (any, error) {
		select {
		case <-release:
			return &SelectResult{Algorithm: "stub"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	running, _, err := m.Submit("running", 1, blocker)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for running.Status().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued, _, err := m.Submit("queued", 1, blocker)
	if err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- m.Shutdown(ctx)
	}()

	// The queued job is canceled without waiting for the running one.
	waitDone(t, queued)
	if st := queued.Status(); st.State != StateCanceled {
		t.Fatalf("queued job state %s, want canceled", st.State)
	}
	if running.Status().State != StateRunning {
		t.Fatal("running job was killed instead of drained")
	}
	if _, _, err := m.Submit("late", 1, blocker); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown Submit err = %v, want ErrShuttingDown", err)
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	waitDone(t, running)
	if st := running.Status(); st.State != StateDone {
		t.Fatalf("running job state %s, want done (drained)", st.State)
	}
}

// Shutdown with an already-expired context still cancels queued work and
// returns the context error rather than hanging on the running job.
func TestManagerShutdownExpiredBudget(t *testing.T) {
	m := NewManager(1, 4, 16)
	defer m.Close()
	release := make(chan struct{})
	defer close(release)
	j, _, err := m.Submit("slow", 1, func(ctx context.Context, report func(int)) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &SelectResult{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.Status().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown over dead context = %v, want context.Canceled", err)
	}
}

// TestServerShutdownFlipsReadyAndShedsRequests is the HTTP face of
// graceful shutdown: /readyz goes 503 first (routers stop sending), new
// job submissions answer 503 with the uniform envelope, and liveness
// stays 200 throughout.
func TestServerShutdownFlipsReadyAndShedsRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	var out map[string]string
	if code := doJSON(t, "GET", ts.URL+"/readyz", nil, &out); code != http.StatusOK {
		t.Fatalf("readyz before shutdown: %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	var envelope ErrorResponse
	if code := doJSON(t, "GET", ts.URL+"/readyz", nil, &envelope); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown: %d", code)
	}
	if envelope.Error.Code != "unavailable" {
		t.Fatalf("readyz envelope %+v", envelope)
	}
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &out); code != http.StatusOK {
		t.Fatalf("healthz after shutdown: %d (liveness must survive drain)", code)
	}

	envelope = ErrorResponse{}
	code := doJSON(t, "POST", ts.URL+"/v1/select",
		SelectRequest{Graph: "g", K: 2, Algorithm: "greedy", Options: Options{MCRuns: 10}}, &envelope)
	if code != http.StatusServiceUnavailable || envelope.Error.Code != "unavailable" {
		t.Fatalf("select during drain: %d %+v", code, envelope)
	}
}
