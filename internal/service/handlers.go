package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/internal/admission"
	"github.com/holisticim/holisticim/internal/obs"
)

const maxBodyBytes = 1 << 20 // JSON request bodies are tiny; cap at 1 MiB

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError answers with the uniform JSON error envelope
// {"error": {"code", "message", "request_id"}} every handler shares.
// The status→code mapping is obs.ErrorCode — one mapping for the
// service layer, the cluster router and the request logger. The
// request id comes off the response header the obs middleware set
// before the handler ran, so the envelope needs no plumbing.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{
		Code:      obs.ErrorCode(status),
		Message:   fmt.Sprintf(format, args...),
		RequestID: w.Header().Get(obs.RequestIDHeader),
	}})
}

// apiError carries a status-coded validation failure from the shared
// query-preparation path to the handler that surfaces it.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *apiError {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

func (s *Server) writeAPIError(w http.ResponseWriter, err *apiError) {
	writeError(w, err.status, "%s", err.msg)
}

// writeSubmitError maps a job-admission failure onto the wire: queue-full
// is 429 (the client should back off and retry), past-deadline and
// shutting-down are 503 (retrying this replica immediately won't help).
// Both carry Retry-After — scoped to the job's service class, so an
// interactive client shed during a batch flood is told to retry soon —
// letting a router distinguish overload (worth failing over) from a
// request that could never have made its deadline.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error, prio admission.Priority) {
	if hint := s.jobs.RetryAfterHintFor(prio); hint > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(hint.Seconds())))
	}
	status := http.StatusServiceUnavailable
	if errors.Is(err, ErrQueueFull) {
		status = http.StatusTooManyRequests
	}
	writeError(w, status, "%v", err)
}

// admit is the front door of every work-inducing handler: it spends one
// token from the caller's rate-limit bucket and, when the bucket is
// empty, answers 429 with the uniform envelope and a Retry-After naming
// when a token accrues. Read-only surfaces (job polling, listings,
// health) are never gated — a throttled client can still observe the
// work it already submitted.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	client := admission.ClientID(r)
	ok, retry := s.limiter.Allow(client, time.Now())
	if ok {
		return true
	}
	if retry < time.Second {
		retry = time.Second // Retry-After is integral seconds; never emit 0
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retry.Round(time.Second).Seconds())))
	writeError(w, http.StatusTooManyRequests,
		"client %q exceeded its request rate; retry in %s", client, retry.Round(time.Second))
	return false
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 once configured snapshots /
// the store manifest are warm-loaded, 503 while still cold-loading or
// draining for shutdown. Liveness (/healthz) stays 200 throughout — a
// cold replica is alive, just not routable.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, "not ready: warm-load incomplete or draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleClusterInfo serves GET /v1/cluster/info: the replica's
// self-description for routers — loaded artifacts by fingerprint,
// readiness, manifest sync point and job-queue pressure.
func (s *Server) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	queued, running := s.jobs.Depth()
	info := ClusterInfo{
		Advertise:       s.cfg.Advertise,
		Ready:           s.ready.Load(),
		ManifestVersion: s.manifestVersion.Load(),
		QueueDepth:      queued,
		Running:         running,
		Shed:            s.jobs.Shed(),
		Graphs:          []ClusterGraphInfo{},
		Sketches:        []ClusterSketchInfo{},
	}
	for _, g := range s.reg.List() {
		info.Graphs = append(info.Graphs, ClusterGraphInfo{
			Name: g.Name, Fingerprint: g.Fingerprint, Version: g.Version,
		})
	}
	for _, sk := range s.sketches.List() {
		info.Sketches = append(info.Sketches, ClusterSketchInfo{
			ID:               sk.ID,
			Graph:            sk.Graph,
			Model:            sk.Model,
			Epsilon:          sk.Epsilon,
			Seed:             sk.Seed,
			GraphFingerprint: sk.GraphFingerprint,
			GraphVersion:     sk.GraphVersion,
			Staleness:        sk.Staleness,
		})
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.reg.List()})
}

func (s *Server) handleAddGraph(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	var spec GraphSpec
	if !decodeJSON(w, r, &spec) {
		return
	}
	if spec.Nodes > s.cfg.MaxGraphNodes || spec.effectiveArcs() > s.cfg.MaxGraphArcs {
		writeError(w, http.StatusBadRequest,
			"graph too large: max %d nodes / %d arcs", s.cfg.MaxGraphNodes, s.cfg.MaxGraphArcs)
		return
	}
	if err := s.reg.Build(spec, s.cfg.AllowPathLoad); err != nil {
		switch {
		case errors.Is(err, ErrGraphExists):
			writeError(w, http.StatusConflict, "%v", err)
		case errors.Is(err, ErrRegistryFull):
			writeError(w, http.StatusTooManyRequests, "%v; names cannot be rebound", err)
		case errors.Is(err, ErrPathLoadDisabled):
			writeError(w, http.StatusForbidden, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	info, err := s.reg.Info(spec.Name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleGraphStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, err := s.reg.Stats(name, s.cfg.StatsSamples, 1)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// preparedQuery is the outcome of the shared admission path every
// selection/estimation surface (v1 select, v1 estimate, /v2/query) runs:
// the resolved graph and rebind generation, the normalized library Query
// with any matching registered sketch attached, the planner's routing
// decision, and the generation-fenced cache/dedup key.
type preparedQuery struct {
	graph string
	g     *holisticim.Graph
	gen   uint64
	q     holisticim.Query
	task  holisticim.Task
	ks    []int // select: normalized budgets, in member order
	kmax  int
	plan  Plan
	key   string
	// priority is the query's service class, derived from the worst
	// backend across the plan's steps (one cold member makes the whole
	// job batch); a client's X-Priority header may demote it further.
	priority admission.Priority
	timeout  time.Duration
	// deadline is the absolute completion bound derived from timeout at
	// admission time: the clock starts when the request is accepted, not
	// when a worker picks the job up, so time spent queued counts — and
	// the job manager can shed jobs that would expire while queued.
	deadline time.Time
	lambda   float64 // resolved λ, for estimate member JSON
}

// prepareQuery validates req against the registry, attaches the matching
// registered sketch (the planner decides whether it serves), plans the
// query and applies the service's admission caps. estimateCap is the MC
// budget bound for estimate tasks (the synchronous v1 path and the async
// v2 path are capped differently); sketch-served estimates are exempt
// from a budget they never spend.
func (s *Server) prepareQuery(req QueryRequest, estimateCap int) (*preparedQuery, *apiError) {
	// Graph and rebind generation are read atomically: the generation is
	// folded into the cache/dedup key, so work computed against this
	// instance can neither be served from the cache nor attached to as an
	// in-flight job once the name is rebound — even when a job completes
	// (and re-caches) after the replacement.
	g, gen, err := s.reg.GetWithGeneration(req.Graph)
	if err != nil {
		return nil, errf(http.StatusNotFound, "%v", err)
	}
	if req.TimeoutMS < 0 {
		return nil, errf(http.StatusBadRequest, "negative timeout_ms %d", req.TimeoutMS)
	}
	q := req.toQuery()

	// Infer the task the same way the planner will, to validate seed sets
	// and pick the sketch key's model resolution.
	task := q.Task
	if task == "" {
		if len(q.SeedSets) > 0 {
			task = holisticim.TaskEstimate
		} else {
			task = holisticim.TaskSelect
		}
	}
	opinionAware := false
	if task == holisticim.TaskEstimate {
		for _, set := range q.SeedSets {
			if len(set) == 0 {
				return nil, errf(http.StatusBadRequest, "empty seed set")
			}
			for _, v := range set {
				if v < 0 || v >= g.NumNodes() {
					return nil, errf(http.StatusBadRequest, "seed %d out of range [0,%d)", v, g.NumNodes())
				}
			}
		}
		obj := q.Objective
		if obj == "" && q.Options.Model.OpinionAware() {
			obj = holisticim.ObjectiveOpinion
		}
		opinionAware = obj == holisticim.ObjectiveOpinion
	}

	// Attach the registered sketch matching the resolved (graph, RR
	// semantics, ε, seed) — through the same canonicalization helpers the
	// builder resolves, so a `{}` request hits a spelled-out default
	// sketch. Whether it actually serves is the planner's call (θ caps,
	// objective and kind mismatches all opt out there).
	resolved := q.Options.Resolved(opinionAware)
	if idx := s.sketches.Lookup(req.Graph, resolved.Model.RRSemantics(), resolved.Epsilon, resolved.Seed); idx != nil {
		q.Options.Sketch = idx
	}

	plan, err := holisticim.PlanQuery(g, q)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	if members := len(plan.Steps); members > s.cfg.MaxQueryMembers {
		return nil, errf(http.StatusBadRequest,
			"batch of %d members exceeds the cap %d", members, s.cfg.MaxQueryMembers)
	}

	// Validate the defaults-resolved budget, not the raw field: omitted
	// mc_runs resolves to the paper's 10000, which must still fit.
	switch task {
	case holisticim.TaskSelect:
		if resolved.MCRuns > s.cfg.MaxSelectRuns {
			return nil, errf(http.StatusBadRequest,
				"mc_runs %d exceeds the selection cap %d", resolved.MCRuns, s.cfg.MaxSelectRuns)
		}
	case holisticim.TaskEstimate:
		if !plan.SketchOnly() && resolved.MCRuns > estimateCap {
			return nil, errf(http.StatusBadRequest,
				"mc_runs %d exceeds the estimate cap %d", resolved.MCRuns, estimateCap)
		}
	}

	p := &preparedQuery{
		graph:   req.Graph,
		g:       g,
		gen:     gen,
		q:       q,
		task:    task,
		plan:    plan,
		timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		lambda:  resolved.Lambda,
	}
	for _, step := range plan.Steps {
		p.priority = admission.Worst(p.priority, admission.ForBackend(string(step.Backend)))
	}
	if p.timeout > 0 {
		p.deadline = time.Now().Add(p.timeout)
	}
	if task == holisticim.TaskSelect {
		if len(q.Ks) > 0 {
			p.ks = q.Ks
		} else {
			p.ks = []int{q.K}
		}
		for _, k := range p.ks {
			if k > p.kmax {
				p.kmax = k
			}
		}
	}
	p.key = queryKey(req.Graph, q, gen)
	return p, nil
}

// queryKey is the canonical cache/deduplication key for a query against
// a registered graph: the graph name pins the topology, Query.Fingerprint
// the work, and gen (when the name was ever rebound) fences out results
// computed against replaced content. The generation is suffixed so
// DropPrefix("graph=<name>;") still matches every entry of the name.
func queryKey(graph string, q holisticim.Query, gen uint64) string {
	key := fmt.Sprintf("graph=%s;%s", graph, q.Fingerprint())
	if gen > 0 {
		key = fmt.Sprintf("%s;gen=%d", key, gen)
	}
	return key
}

// runPrepared executes a prepared query synchronously under the request
// context (plus the per-request timeout).
func (s *Server) runPrepared(ctx context.Context, p *preparedQuery) (holisticim.Answer, error) {
	if p.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.timeout)
		defer cancel()
	}
	return s.queryFn(ctx, p.g, p.q)
}

// cachedAnswer views a cache entry as a QueryAnswer, wrapping legacy
// *SelectResult entries (sketch-build job results never enter the cache).
func cachedAnswer(v any, p *preparedQuery) *QueryAnswer {
	switch e := v.(type) {
	case *QueryAnswer:
		return e
	case *SelectResult:
		return &QueryAnswer{
			Task:    string(holisticim.TaskSelect),
			Plan:    p.plan,
			Members: []QueryMember{{K: p.kmax, Result: e}},
		}
	}
	return nil
}

// handleSelect is the v1 selection surface, a shim over the planner: the
// request becomes a one-member select Query, PlanQuery routes it
// (sketch-only plans answer synchronously), and everything else runs as
// an async job keyed by the query fingerprint.
func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	var req SelectRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	p, aerr := s.prepareQuery(QueryRequest{
		Graph:     req.Graph,
		Task:      string(holisticim.TaskSelect),
		Algorithm: req.Algorithm,
		K:         req.K,
		Options:   req.Options,
		TimeoutMS: req.TimeoutMS,
	}, s.cfg.MaxEstimateRuns)
	if aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	p.priority = admission.Demote(p.priority, r.Header.Get(admission.PriorityHeader))

	// Sketch-served plans run on the request path — milliseconds instead
	// of a sampling job. Sketch results stay out of the LRU cache: a
	// sketch-backed and a cold run may pick different (equally valid)
	// seeds, and one fingerprint must never alias the two.
	if p.plan.SketchOnly() {
		start := time.Now()
		ans, err := s.runPrepared(r.Context(), p)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		s.sketchHits.Add(1)
		s.observeBackend(p.planBackend(), time.Since(start).Seconds())
		sr := toSelectResult(*ans.Members[0].Result)
		writeJSON(w, http.StatusOK, SelectResponse{
			State: StateDone, Sketch: true, Result: sr,
			SeedsDone: len(sr.Seeds), K: p.kmax,
		})
		return
	}

	if v, ok := s.cache.Get(p.key); ok {
		if qa := cachedAnswer(v, p); qa != nil && len(qa.Members) == 1 && qa.Members[0].Result != nil {
			res := qa.Members[0].Result
			writeJSON(w, http.StatusOK, SelectResponse{
				State: StateDone, Cached: true, Result: res, SeedsDone: len(res.Seeds), K: p.kmax,
			})
			return
		}
	}

	job, created, err := s.submitSelectJob(p)
	if err != nil {
		s.writeSubmitError(w, err, p.priority)
		return
	}
	resp := job.Status()
	resp.Deduped = !created
	writeJSON(w, http.StatusAccepted, resp)
}

// submitSelectJob enqueues a one-member v1 selection as an async job. The
// computation goes through s.selectFn (the single-selection hook tests
// stub), which is itself a thin wrapper over the planner's Run.
func (s *Server) submitSelectJob(p *preparedQuery) (*Job, bool, error) {
	g, k, alg := p.g, p.kmax, p.q.Algorithm
	opts := p.q.Options
	deadline := p.deadline
	key := p.key
	plan := p.plan
	backend := p.planBackend()
	spec := JobSpec{
		Key: key, K: k, Members: 1, MemberKs: p.ks, Plan: &plan,
		Priority:    p.priority,
		ExpectedRun: time.Duration(s.costs.Estimate(backend) * float64(time.Second)),
		Deadline:    deadline,
	}
	return s.jobs.SubmitQuery(spec, func(ctx context.Context, report func(int)) (any, error) {
		if !deadline.IsZero() {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, deadline)
			defer cancel()
		}
		opts := opts // per-job copy: Progress must not leak into shared state
		opts.Progress = func(seedIdx int, seed holisticim.NodeID, elapsed time.Duration) {
			report(seedIdx + 1)
		}
		start := time.Now()
		res, err := s.selectFn(ctx, g, k, alg, opts)
		payload := &QueryAnswer{
			Task:    string(holisticim.TaskSelect),
			Plan:    plan,
			Members: []QueryMember{{K: k, Result: toSelectResult(res)}},
			TookMS:  float64(time.Since(start)) / float64(time.Millisecond),
		}
		if err != nil {
			if res.Partial {
				// Surface whatever prefix was selected before the stop so a
				// cancelled/timed-out job still reports useful work.
				return payload, err
			}
			return nil, err
		}
		s.selections.Add(1)
		s.observeBackend(backend, time.Since(start).Seconds())
		s.cache.Add(key, payload)
		return payload, nil
	})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleCancelJob cancels a queued or running job. Cancelling is
// idempotent — repeating the DELETE answers 200 with the job's current
// state — but a job that already completed (done/failed) answers 409,
// since its outcome can no longer be revoked.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, accepted, ok := s.jobs.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if !accepted {
		writeJSON(w, http.StatusConflict, job.Status())
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleListSketches(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sketches": s.sketches.List()})
}

func (s *Server) handleSketchInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.sketches.Info(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleDeleteSketch evicts a sketch. Unlike graphs, sketch ids can be
// rebound: the id fully determines the deterministic sample, so a
// rebuilt sketch is interchangeable with the evicted one.
func (s *Server) handleDeleteSketch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sketches.Evict(id) {
		writeError(w, http.StatusNotFound, "%v: %q", ErrSketchNotFound, id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"evicted": id})
}

// handleBuildSketch runs a sketch build as an async job on the shared
// worker pool, deduplicated by the canonical sketch id.
func (s *Server) handleBuildSketch(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	var spec SketchSpec
	if !decodeJSON(w, r, &spec) {
		return
	}
	g, gen, err := s.reg.GetWithGeneration(spec.Graph)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	// The mutation-log version of the snapshot the build will run over.
	// Stamped on the finished index so later mutations repair from the
	// right baseline. (A mutation racing the two reads bumps the
	// generation, so the post-build gen re-check refuses the sketch and
	// any inconsistency here never registers.)
	baseInfo, err := s.reg.Info(spec.Graph)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	baseVersion := baseInfo.Version
	model := holisticim.ModelKind(spec.Model)
	if spec.Model != "" {
		if _, err := holisticim.NewModel(g, model); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if spec.Epsilon < 0 || spec.Epsilon > 1 {
		writeError(w, http.StatusBadRequest, "epsilon %v out of (0,1]", spec.Epsilon)
		return
	}
	if spec.BuildK < 0 || int64(spec.BuildK) > int64(g.NumNodes()) {
		writeError(w, http.StatusBadRequest, "invalid build_k=%d for graph with %d nodes", spec.BuildK, g.NumNodes())
		return
	}
	// Workers is a speed knob (it cannot change the sample); clamp the
	// client's wish to this process's parallelism rather than letting a
	// request size the goroutine pool.
	workers := spec.Workers
	if max := runtime.GOMAXPROCS(0); workers <= 0 || workers > max {
		workers = max
	}
	// Canonicalize the key through the library's single canonicalization
	// helper — the same one Options.withDefaults and the sketch builder
	// resolve through — so `{}` and a spelled-out default spec share one
	// sketch and the three sites cannot drift.
	epsilon := holisticim.CanonicalEpsilon(spec.Epsilon)
	seed := holisticim.CanonicalSeed(spec.Seed)
	semantics := model.RRSemantics()
	if s.sketches.Lookup(spec.Graph, semantics, epsilon, seed) != nil {
		writeError(w, http.StatusConflict, "%v: %q", ErrSketchExists,
			sketchID(spec.Graph, semantics, epsilon, seed))
		return
	}
	maxSets := spec.MaxSets
	if maxSets <= 0 || maxSets > s.cfg.MaxSketchSets {
		maxSets = s.cfg.MaxSketchSets
	}

	opts := holisticim.SketchOptions{
		Model:   model,
		Epsilon: epsilon,
		Seed:    seed,
		BuildK:  spec.BuildK,
		Workers: workers,
		MaxSets: maxSets,
	}
	graphName := spec.Graph
	key := "sketchbuild:" + sketchID(graphName, semantics, epsilon, seed)
	// Sketch builds are heavyweight index construction: batch class, so
	// a build can never queue ahead of serving work.
	job, created, err := s.jobs.SubmitQuery(JobSpec{Key: key, Priority: admission.Batch}, func(ctx context.Context, report func(int)) (any, error) {
		start := time.Now()
		idx, err := holisticim.BuildSketch(ctx, g, opts)
		if err != nil {
			return nil, err
		}
		// Refuse to register a sample built over an instance that was
		// replaced or mutated mid-build: a stale sketch must not enter the
		// registry and start serving the new topology's fast path.
		if _, cur, err := s.reg.GetWithGeneration(graphName); err != nil || cur != gen {
			return nil, fmt.Errorf("service: graph %q was replaced during the sketch build", graphName)
		}
		idx.SetGraphVersion(baseVersion)
		id, err := s.sketches.Add(graphName, semantics, epsilon, seed, idx)
		if err != nil {
			return nil, err
		}
		// Re-check AFTER registration too: a mutation landing between the
		// first check and Add would schedule repairs before the sketch was
		// visible, leaving it permanently one batch behind — and a later
		// repair would then stamp the new fingerprint over a sample that
		// missed that batch. Evicting on the re-check closes the window
		// (a mutation after Add is seen by ScheduleRepair and handled).
		if _, cur, err := s.reg.GetWithGeneration(graphName); err != nil || cur != gen {
			s.sketches.Evict(id)
			return nil, fmt.Errorf("service: graph %q changed during the sketch build", graphName)
		}
		st := idx.Stats()
		return &SelectResult{
			Algorithm: "sketch-build",
			TookMS:    float64(time.Since(start)) / float64(time.Millisecond),
			Metrics: map[string]float64{
				"sets":         float64(st.Sets),
				"memory_bytes": float64(st.MemoryBytes),
			},
		}, nil
	})
	if err != nil {
		s.writeSubmitError(w, err, admission.Batch)
		return
	}
	resp := job.Status()
	resp.Deduped = !created
	writeJSON(w, http.StatusAccepted, resp)
}

// handleEstimate is the v1 estimate surface, a shim over the planner: a
// one-member estimate Query runs synchronously on the request path (the
// request context bounds it — a client that disconnects stops paying for
// simulations it will never read), served from an opinion-weighted
// sketch when the plan says so.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	var req EstimateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	p, aerr := s.prepareQuery(QueryRequest{
		Graph:   req.Graph,
		Task:    string(holisticim.TaskEstimate),
		Seeds:   req.Seeds,
		Options: req.Options,
	}, s.cfg.MaxEstimateRuns)
	if aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	sketchServed := p.plan.SketchOnly()
	start := time.Now()
	ans, err := s.runPrepared(r.Context(), p)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if sketchServed {
		s.sketchEstimates.Add(1)
	}
	s.observeBackend(p.planBackend(), time.Since(start).Seconds())
	res := toEstimateResult(*ans.Members[0].Estimate, p.lambda, sketchServed)
	res.TookMS = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, res)
}
