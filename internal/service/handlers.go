package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"github.com/holisticim/holisticim"
)

const maxBodyBytes = 1 << 20 // JSON request bodies are tiny; cap at 1 MiB

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"graphs": s.reg.List()})
}

func (s *Server) handleAddGraph(w http.ResponseWriter, r *http.Request) {
	var spec GraphSpec
	if !decodeJSON(w, r, &spec) {
		return
	}
	if spec.Nodes > s.cfg.MaxGraphNodes || spec.effectiveArcs() > s.cfg.MaxGraphArcs {
		writeError(w, http.StatusBadRequest,
			"graph too large: max %d nodes / %d arcs", s.cfg.MaxGraphNodes, s.cfg.MaxGraphArcs)
		return
	}
	if err := s.reg.Build(spec, s.cfg.AllowPathLoad); err != nil {
		switch {
		case errors.Is(err, ErrGraphExists):
			writeError(w, http.StatusConflict, "%v", err)
		case errors.Is(err, ErrRegistryFull):
			writeError(w, http.StatusTooManyRequests, "%v; names cannot be rebound", err)
		case errors.Is(err, ErrPathLoadDisabled):
			writeError(w, http.StatusForbidden, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	info, err := s.reg.Info(spec.Name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleGraphStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, err := s.reg.Stats(name, s.cfg.StatsSamples, 1)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	alg := holisticim.Algorithm(req.Algorithm)
	if !knownAlgorithms[alg] {
		writeError(w, http.StatusBadRequest, "unknown algorithm %q", req.Algorithm)
		return
	}
	// Graph and rebind generation are read atomically: the generation is
	// folded into the cache/dedup key below, so a selection computed
	// against this instance can neither be served from the cache nor
	// attached to as an in-flight job once the name is rebound — even
	// when the job completes (and re-caches) after the replacement.
	g, gen, err := s.reg.GetWithGeneration(req.Graph)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if req.K <= 0 || int64(req.K) > int64(g.NumNodes()) {
		writeError(w, http.StatusBadRequest, "invalid k=%d for graph with %d nodes", req.K, g.NumNodes())
		return
	}
	if req.Options.Model != "" {
		if _, err := holisticim.NewModel(g, holisticim.ModelKind(req.Options.Model)); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	// Validate the defaults-resolved budget, not the raw field: omitted
	// mc_runs resolves to the paper's 10000, which must still fit.
	if runs := req.Options.toLib().Resolved(false).MCRuns; runs > s.cfg.MaxSelectRuns {
		writeError(w, http.StatusBadRequest,
			"mc_runs %d exceeds the selection cap %d", runs, s.cfg.MaxSelectRuns)
		return
	}
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "negative timeout_ms %d", req.TimeoutMS)
		return
	}

	key := req.fingerprint()
	if gen > 0 {
		// Suffixed, so DropPrefix("graph=<name>;") still matches.
		key = fmt.Sprintf("%s;gen=%d", key, gen)
	}
	if res, ok := s.cache.Get(key); ok {
		writeJSON(w, http.StatusOK, SelectResponse{
			State: StateDone, Cached: true, Result: res, SeedsDone: len(res.Seeds), K: req.K,
		})
		return
	}

	// Fast path: a RIS-family request whose (graph, RR semantics, ε,
	// seed) matches a registered sketch is answered synchronously from
	// the prebuilt index — milliseconds instead of a sampling job. With
	// model "oc" the matching sketch is opinion-weighted and the greedy
	// maximizes opinion coverage (the selection the paper's opinion-aware
	// workload needs) rather than plain set coverage. An explicit θ cap
	// opts out (the index does not model capped sampling). Sketch results
	// stay out of the LRU cache: a sketch-backed and a cold run may pick
	// different (equally valid) seeds, and one fingerprint must never
	// alias the two.
	if (alg == holisticim.AlgIMM || alg == holisticim.AlgTIMPlus) && req.Options.TIMThetaCap == 0 {
		resolved := req.Options.toLib().Resolved(false)
		if idx := s.sketches.Lookup(req.Graph, resolved.Model.RRSemantics(), resolved.Epsilon, resolved.Seed); idx != nil {
			ctx := r.Context()
			if req.TimeoutMS > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
				defer cancel()
			}
			res, err := idx.Select(ctx, req.K)
			if err != nil {
				writeError(w, http.StatusServiceUnavailable, "%v", err)
				return
			}
			s.sketchHits.Add(1)
			writeJSON(w, http.StatusOK, SelectResponse{
				State: StateDone, Sketch: true, Result: toSelectResult(res),
				SeedsDone: len(res.Seeds), K: req.K,
			})
			return
		}
	}

	opts := req.Options.toLib()
	k := req.K
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	job, created, err := s.jobs.Submit(key, k, func(ctx context.Context, report func(int)) (*SelectResult, error) {
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		opts := opts // per-job copy: Progress must not leak into shared state
		opts.Progress = func(seedIdx int, seed holisticim.NodeID, elapsed time.Duration) {
			report(seedIdx + 1)
		}
		res, err := s.selectFn(ctx, g, k, alg, opts)
		if err != nil {
			if res.Partial {
				// Surface whatever prefix was selected before the stop so a
				// cancelled/timed-out job still reports useful work.
				return toSelectResult(res), err
			}
			return nil, err
		}
		s.selections.Add(1)
		sr := toSelectResult(res)
		s.cache.Add(key, sr)
		return sr, nil
	})
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	resp := job.Status()
	resp.Deduped = !created
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleCancelJob cancels a queued or running job. Cancelling is
// idempotent — repeating the DELETE answers 200 with the job's current
// state — but a job that already completed (done/failed) answers 409,
// since its outcome can no longer be revoked.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, accepted, ok := s.jobs.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if !accepted {
		writeJSON(w, http.StatusConflict, job.Status())
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleListSketches(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"sketches": s.sketches.List()})
}

func (s *Server) handleSketchInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.sketches.Info(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleDeleteSketch evicts a sketch. Unlike graphs, sketch ids can be
// rebound: the id fully determines the deterministic sample, so a
// rebuilt sketch is interchangeable with the evicted one.
func (s *Server) handleDeleteSketch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sketches.Evict(id) {
		writeError(w, http.StatusNotFound, "%v: %q", ErrSketchNotFound, id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"evicted": id})
}

// handleBuildSketch runs a sketch build as an async job on the shared
// worker pool, deduplicated by the canonical sketch id.
func (s *Server) handleBuildSketch(w http.ResponseWriter, r *http.Request) {
	var spec SketchSpec
	if !decodeJSON(w, r, &spec) {
		return
	}
	g, gen, err := s.reg.GetWithGeneration(spec.Graph)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	model := holisticim.ModelKind(spec.Model)
	if spec.Model != "" {
		if _, err := holisticim.NewModel(g, model); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if spec.Epsilon < 0 || spec.Epsilon > 1 {
		writeError(w, http.StatusBadRequest, "epsilon %v out of (0,1]", spec.Epsilon)
		return
	}
	if spec.BuildK < 0 || int64(spec.BuildK) > int64(g.NumNodes()) {
		writeError(w, http.StatusBadRequest, "invalid build_k=%d for graph with %d nodes", spec.BuildK, g.NumNodes())
		return
	}
	// Workers is a speed knob (it cannot change the sample); clamp the
	// client's wish to this process's parallelism rather than letting a
	// request size the goroutine pool.
	workers := spec.Workers
	if max := runtime.GOMAXPROCS(0); workers <= 0 || workers > max {
		workers = max
	}
	// Canonicalize the key through the library's single canonicalization
	// helper — the same one Options.withDefaults and the sketch builder
	// resolve through — so `{}` and a spelled-out default spec share one
	// sketch and the three sites cannot drift.
	epsilon := holisticim.CanonicalEpsilon(spec.Epsilon)
	seed := holisticim.CanonicalSeed(spec.Seed)
	semantics := model.RRSemantics()
	if s.sketches.Lookup(spec.Graph, semantics, epsilon, seed) != nil {
		writeError(w, http.StatusConflict, "%v: %q", ErrSketchExists,
			sketchID(spec.Graph, semantics, epsilon, seed))
		return
	}
	maxSets := spec.MaxSets
	if maxSets <= 0 || maxSets > s.cfg.MaxSketchSets {
		maxSets = s.cfg.MaxSketchSets
	}

	opts := holisticim.SketchOptions{
		Model:   model,
		Epsilon: epsilon,
		Seed:    seed,
		BuildK:  spec.BuildK,
		Workers: workers,
		MaxSets: maxSets,
	}
	graphName := spec.Graph
	key := "sketchbuild:" + sketchID(graphName, semantics, epsilon, seed)
	job, created, err := s.jobs.Submit(key, 0, func(ctx context.Context, report func(int)) (*SelectResult, error) {
		start := time.Now()
		idx, err := holisticim.BuildSketch(ctx, g, opts)
		if err != nil {
			return nil, err
		}
		// Refuse to register a sample built over an instance that was
		// replaced mid-build: a stale sketch must not enter the registry
		// and start serving the new topology's fast path.
		if _, cur, err := s.reg.GetWithGeneration(graphName); err != nil || cur != gen {
			return nil, fmt.Errorf("service: graph %q was replaced during the sketch build", graphName)
		}
		if _, err := s.sketches.Add(graphName, semantics, epsilon, seed, idx); err != nil {
			return nil, err
		}
		st := idx.Stats()
		return &SelectResult{
			Algorithm: "sketch-build",
			TookMS:    float64(time.Since(start)) / float64(time.Millisecond),
			Metrics: map[string]float64{
				"sets":         float64(st.Sets),
				"memory_bytes": float64(st.MemoryBytes),
			},
		}, nil
	})
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	resp := job.Status()
	resp.Deduped = !created
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	g, err := s.reg.Get(req.Graph)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if len(req.Seeds) == 0 {
		writeError(w, http.StatusBadRequest, "empty seed set")
		return
	}
	for _, v := range req.Seeds {
		if v < 0 || v >= g.NumNodes() {
			writeError(w, http.StatusBadRequest, "seed %d out of range [0,%d)", v, g.NumNodes())
			return
		}
	}
	opts := req.Options.toLib()
	model := holisticim.ModelKind(req.Options.Model)
	if req.Options.Model != "" {
		if _, err := holisticim.NewModel(g, model); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	lambda := req.Options.Lambda
	if lambda == 0 {
		lambda = 1
	}

	// Opinion fast path: an "oc" estimate whose (graph, ε, seed) matches a
	// registered opinion-weighted sketch is answered from the index —
	// milliseconds instead of a Monte-Carlo run, and exempt from the MC
	// budget cap it never spends.
	if model.RRSemantics() == "oc" {
		resolved := opts.Resolved(model.OpinionAware())
		if idx := s.sketches.Lookup(req.Graph, "oc", resolved.Epsilon, resolved.Seed); idx != nil {
			fastOpts := opts
			fastOpts.Sketch = idx
			if holisticim.SketchServedEstimate(g, fastOpts) {
				start := time.Now()
				est, err := holisticim.EstimateOpinionSpreadContext(r.Context(), g, req.Seeds, fastOpts)
				if err != nil {
					writeError(w, http.StatusServiceUnavailable, "%v", err)
					return
				}
				s.sketchEstimates.Add(1)
				writeJSON(w, http.StatusOK, EstimateResult{
					Sketch:                 true,
					Runs:                   est.Runs,
					Spread:                 est.Spread,
					OpinionSpread:          est.OpinionSpread,
					PositiveSpread:         est.PositiveSpread,
					NegativeSpread:         est.NegativeSpread,
					EffectiveOpinionSpread: est.EffectiveOpinionSpread(lambda),
					Lambda:                 lambda,
					TookMS:                 float64(time.Since(start)) / float64(time.Millisecond),
				})
				return
			}
		}
	}

	// Validate the defaults-resolved budget, not the raw field: omitted
	// mc_runs resolves to the paper's 10000, which must still fit.
	if runs := opts.Resolved(model.OpinionAware()).MCRuns; runs > s.cfg.MaxEstimateRuns {
		writeError(w, http.StatusBadRequest,
			"mc_runs %d exceeds the synchronous estimate cap %d", runs, s.cfg.MaxEstimateRuns)
		return
	}

	// The estimate runs synchronously on the request path, so the
	// request's own context bounds it: a client that disconnects stops
	// paying for simulations it will never read.
	start := time.Now()
	var est holisticim.Estimate
	var estErr error
	if model.OpinionAware() {
		est, estErr = holisticim.EstimateOpinionSpreadContext(r.Context(), g, req.Seeds, opts)
	} else {
		est, estErr = holisticim.EstimateSpreadContext(r.Context(), g, req.Seeds, opts)
	}
	if estErr != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", estErr)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResult{
		Runs:                   est.Runs,
		Spread:                 est.Spread,
		OpinionSpread:          est.OpinionSpread,
		PositiveSpread:         est.PositiveSpread,
		NegativeSpread:         est.NegativeSpread,
		EffectiveOpinionSpread: est.EffectiveOpinionSpread(lambda),
		Lambda:                 lambda,
		TookMS:                 float64(time.Since(start)) / float64(time.Millisecond),
	})
}
