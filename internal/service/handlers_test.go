package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/holisticim/holisticim"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	g := holisticim.GenerateBA(300, 3, 1)
	g.SetUniformProb(0.1)
	holisticim.AssignOpinions(g, holisticim.OpinionNormal, 2)
	holisticim.AssignInteractions(g, 3)
	if err := s.reg.Add("g", g, "test"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func pollJob(t *testing.T, base, id string) SelectResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st SelectResponse
		if code := doJSON(t, "GET", base+"/v1/jobs/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if st.State == StateDone || st.State == StateFailed || st.State == StateCanceled {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var out map[string]string
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &out); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if out["status"] != "ok" {
		t.Fatalf("healthz body %v", out)
	}
}

// TestSelectEndToEnd drives the full async flow and then proves the cache
// answers the identical repeat request without a second computation.
func TestSelectEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := SelectRequest{Graph: "g", Algorithm: "degree", K: 5}

	var first SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", req, &first); code != http.StatusAccepted {
		t.Fatalf("POST select status %d (%+v)", code, first)
	}
	if first.JobID == "" || first.Cached {
		t.Fatalf("first response should be an uncached job: %+v", first)
	}
	done := pollJob(t, ts.URL, first.JobID)
	if done.State != StateDone || done.Result == nil || len(done.Result.Seeds) != 5 {
		t.Fatalf("job result %+v", done)
	}
	if got := s.SelectionsRun(); got != 1 {
		t.Fatalf("SelectionsRun = %d after first request", got)
	}

	// The identical request must come back synchronously from the cache
	// and must not run a new selection.
	var second SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", req, &second); code != http.StatusOK {
		t.Fatalf("repeat POST select status %d", code)
	}
	if !second.Cached || second.State != StateDone || second.Result == nil {
		t.Fatalf("repeat response not served from cache: %+v", second)
	}
	if fmt.Sprint(second.Result.Seeds) != fmt.Sprint(done.Result.Seeds) {
		t.Fatalf("cached seeds %v != computed %v", second.Result.Seeds, done.Result.Seeds)
	}
	if got := s.SelectionsRun(); got != 1 {
		t.Fatalf("SelectionsRun = %d, want still 1: cache hit must not recompute", got)
	}

	// Same parameters spelled out explicitly hit the same cache entry.
	explicit := req
	explicit.Options = Options{Model: "ic", PathLength: 3, Lambda: 1, Epsilon: 0.1, MCRuns: 10000, Seed: 1}
	var third SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", explicit, &third); code != http.StatusOK || !third.Cached {
		t.Fatalf("canonicalized request missed the cache: status %d %+v", code, third)
	}

	var stats ServerStats
	if code := doJSON(t, "GET", ts.URL+"/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.CacheHits < 2 || stats.SelectionsRun != 1 || stats.JobsSubmitted != 1 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestSelectInflightDedup proves that identical requests racing an
// unfinished job attach to it instead of spawning a second computation.
func TestSelectInflightDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	release := make(chan struct{})
	var calls atomic.Int64
	s.selectFn = func(ctx context.Context, g *holisticim.Graph, k int, alg holisticim.Algorithm, o holisticim.Options) (holisticim.Result, error) {
		calls.Add(1)
		<-release
		return holisticim.Result{Algorithm: "stub", Seeds: make([]int32, k)}, nil
	}

	req := SelectRequest{Graph: "g", Algorithm: "degree", K: 3}
	var first SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", req, &first); code != http.StatusAccepted {
		t.Fatalf("first POST status %d", code)
	}
	if first.Deduped {
		t.Fatalf("first request cannot be deduped: %+v", first)
	}

	// Wait until the stub is actually running, then race a duplicate.
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("selection never started")
		}
		time.Sleep(time.Millisecond)
	}
	var second SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", req, &second); code != http.StatusAccepted {
		t.Fatalf("duplicate POST status %d", code)
	}
	if !second.Deduped || second.JobID != first.JobID {
		t.Fatalf("duplicate should share job %s: %+v", first.JobID, second)
	}

	close(release)
	done := pollJob(t, ts.URL, first.JobID)
	if done.State != StateDone || len(done.Result.Seeds) != 3 {
		t.Fatalf("job result %+v", done)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("underlying selection ran %d times, want 1", got)
	}
}

func TestSelectValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body any
		want int
	}{
		{"unknown graph", SelectRequest{Graph: "nope", Algorithm: "degree", K: 3}, http.StatusNotFound},
		{"unknown algorithm", SelectRequest{Graph: "g", Algorithm: "quantum", K: 3}, http.StatusBadRequest},
		{"zero k", SelectRequest{Graph: "g", Algorithm: "degree", K: 0}, http.StatusBadRequest},
		{"k too large", SelectRequest{Graph: "g", Algorithm: "degree", K: 301}, http.StatusBadRequest},
		{"bad model", SelectRequest{Graph: "g", Algorithm: "degree", K: 3, Options: Options{Model: "warp"}}, http.StatusBadRequest},
		{"runs over cap", SelectRequest{Graph: "g", Algorithm: "greedy", K: 3, Options: Options{MCRuns: 2_000_000}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var out map[string]any
		if code := doJSON(t, "POST", ts.URL+"/v1/select", tc.body, &out); code != tc.want {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, code, tc.want, out)
		} else if out["error"] == "" {
			t.Errorf("%s: missing error message", tc.name)
		}
	}
	// Malformed and unknown-field JSON.
	resp, err := http.Post(ts.URL+"/v1/select", "application/json", bytes.NewReader([]byte(`{"graph": "g",`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/select", "application/json", bytes.NewReader([]byte(`{"grapf": "g"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}
	// Unknown job id.
	var out map[string]any
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs/zzz", nil, &out); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", code)
	}
}

func TestSelectQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	release := make(chan struct{})
	defer close(release)
	var started atomic.Int64
	s.selectFn = func(ctx context.Context, g *holisticim.Graph, k int, alg holisticim.Algorithm, o holisticim.Options) (holisticim.Result, error) {
		started.Add(1)
		<-release
		return holisticim.Result{Seeds: make([]int32, k)}, nil
	}
	post := func(seed uint64) int {
		var out map[string]any
		return doJSON(t, "POST", ts.URL+"/v1/select",
			SelectRequest{Graph: "g", Algorithm: "degree", K: 2, Options: Options{Seed: seed}}, &out)
	}
	if code := post(1); code != http.StatusAccepted {
		t.Fatalf("first POST: %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() == 0 { // worker busy => next job will sit in the queue
		if time.Now().After(deadline) {
			t.Fatal("first selection never started")
		}
		time.Sleep(time.Millisecond)
	}
	if code := post(2); code != http.StatusAccepted {
		t.Fatalf("second POST: %d", code)
	}
	// Queue full is load shedding, not failure: 429 with a Retry-After
	// hint and the uniform envelope, so routers can tell overload apart
	// from a hard error and fail over instead of giving up.
	body, _ := json.Marshal(SelectRequest{Graph: "g", Algorithm: "degree", K: 2, Options: Options{Seed: 3}})
	resp, err := http.Post(ts.URL+"/v1/select", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third POST: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue-full rejection carries no Retry-After header")
	}
	var envelope ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != "too_many_requests" {
		t.Fatalf("error code %q, want too_many_requests", envelope.Error.Code)
	}
}

func TestEstimateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := EstimateRequest{Graph: "g", Seeds: []int32{0, 1, 2}, Options: Options{MCRuns: 200, Seed: 4}}
	var est EstimateResult
	if code := doJSON(t, "POST", ts.URL+"/v1/estimate", req, &est); code != http.StatusOK {
		t.Fatalf("estimate status %d", code)
	}
	if est.Runs != 200 || est.Spread <= 0 {
		t.Fatalf("estimate %+v", est)
	}

	// Opinion-aware model populates the opinion decomposition and the
	// effective spread identity must hold at the requested λ.
	oreq := EstimateRequest{Graph: "g", Seeds: []int32{0, 1, 2},
		Options: Options{Model: "oi-ic", MCRuns: 200, Seed: 4, Lambda: 2}}
	var oest EstimateResult
	if code := doJSON(t, "POST", ts.URL+"/v1/estimate", oreq, &oest); code != http.StatusOK {
		t.Fatalf("opinion estimate status %d", code)
	}
	if oest.Lambda != 2 {
		t.Fatalf("lambda %v, want 2", oest.Lambda)
	}
	want := oest.PositiveSpread - 2*oest.NegativeSpread
	if diff := oest.EffectiveOpinionSpread - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("effective spread %v != P - λN = %v", oest.EffectiveOpinionSpread, want)
	}

	bad := []struct {
		name string
		body EstimateRequest
		want int
	}{
		{"unknown graph", EstimateRequest{Graph: "nope", Seeds: []int32{0}}, http.StatusNotFound},
		{"empty seeds", EstimateRequest{Graph: "g"}, http.StatusBadRequest},
		{"seed out of range", EstimateRequest{Graph: "g", Seeds: []int32{999}}, http.StatusBadRequest},
		{"negative seed", EstimateRequest{Graph: "g", Seeds: []int32{-1}}, http.StatusBadRequest},
		{"bad model", EstimateRequest{Graph: "g", Seeds: []int32{0}, Options: Options{Model: "warp"}}, http.StatusBadRequest},
		{"runs over cap", EstimateRequest{Graph: "g", Seeds: []int32{0}, Options: Options{MCRuns: 2_000_000_000}}, http.StatusBadRequest},
	}
	for _, tc := range bad {
		var out map[string]any
		if code := doJSON(t, "POST", ts.URL+"/v1/estimate", tc.body, &out); code != tc.want {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, code, tc.want, out)
		}
	}
}

func TestGraphEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var list struct {
		Graphs []GraphInfo `json:"graphs"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs", nil, &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(list.Graphs) != 1 || list.Graphs[0].Name != "g" {
		t.Fatalf("list %+v", list)
	}

	var st GraphStats
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/g", nil, &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Nodes != 300 || st.AvgOutDegree <= 0 || st.MeanEdgeProb <= 0 {
		t.Fatalf("stats %+v", st)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/nope", nil, &map[string]any{}); code != http.StatusNotFound {
		t.Fatalf("missing graph stats status %d", code)
	}

	// Generate a new graph through the API, then select on it.
	spec := GraphSpec{Name: "api-ba", Generator: "ba", Nodes: 120, EdgesPerNode: 2,
		Seed: 5, Prob: f64(0.1), Opinions: "uniform"}
	var created GraphInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs", spec, &created); code != http.StatusCreated {
		t.Fatalf("create status %d (%+v)", code, created)
	}
	if created.Name != "api-ba" || created.Nodes != 120 {
		t.Fatalf("created %+v", created)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs", spec, &map[string]any{}); code != http.StatusConflict {
		t.Fatalf("duplicate create status %d", code)
	}
	var sel SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select",
		SelectRequest{Graph: "api-ba", Algorithm: "degree", K: 4}, &sel); code != http.StatusAccepted {
		t.Fatalf("select on created graph: %d", code)
	}
	if done := pollJob(t, ts.URL, sel.JobID); len(done.Result.Seeds) != 4 {
		t.Fatalf("selection on created graph: %+v", done)
	}

	// Path loading is forbidden unless the server opted in.
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs",
		GraphSpec{Name: "fs", Path: "/etc/hosts"}, &map[string]any{}); code != http.StatusForbidden {
		t.Fatalf("path load status %d, want 403", code)
	}
	// A path spec that fails validation (not permissions) is a 400.
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs",
		GraphSpec{Name: "both", Path: "/etc/hosts", Generator: "ba", Nodes: 10},
		&map[string]any{}); code != http.StatusBadRequest {
		t.Fatalf("path+generator spec status %d, want 400", code)
	}
	// Oversized generator specs are rejected before any allocation —
	// including BA, whose arc count is implied by nodes*edges_per_node.
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs",
		GraphSpec{Name: "huge", Generator: "rmat", Nodes: 2_000_000_000, Arcs: 50_000_000_000},
		&map[string]any{}); code != http.StatusBadRequest {
		t.Fatalf("oversized rmat spec status %d, want 400", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs",
		GraphSpec{Name: "huge-ba", Generator: "ba", Nodes: 4_000_000, EdgesPerNode: 5000},
		&map[string]any{}); code != http.StatusBadRequest {
		t.Fatalf("oversized ba spec status %d, want 400", code)
	}
	// Undirected R-MAT doubles each sampled edge; at the raw-arc cap it
	// would materialize 2x the bound and must be rejected.
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs",
		GraphSpec{Name: "huge-rm", Generator: "rmat", Nodes: 1000, Arcs: 50_000_000, Undirected: true},
		&map[string]any{}); code != http.StatusBadRequest {
		t.Fatalf("oversized undirected rmat spec status %d, want 400", code)
	}
}

func TestEstimateCapUsesResolvedRuns(t *testing.T) {
	// Omitted mc_runs resolves to the paper default of 10000, which must
	// not slip past a tighter configured cap.
	_, ts := newTestServer(t, Config{MaxEstimateRuns: 1000})
	req := EstimateRequest{Graph: "g", Seeds: []int32{0}}
	var out map[string]any
	if code := doJSON(t, "POST", ts.URL+"/v1/estimate", req, &out); code != http.StatusBadRequest {
		t.Fatalf("default-runs estimate over cap: status %d, want 400 (%v)", code, out)
	}
	req.Options.MCRuns = 500
	var est EstimateResult
	if code := doJSON(t, "POST", ts.URL+"/v1/estimate", req, &est); code != http.StatusOK || est.Runs != 500 {
		t.Fatalf("within-cap estimate: status %d runs %d", code, est.Runs)
	}
}

func TestGraphRegistryCapacity(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxGraphs: 2}) // "g" occupies one slot
	ok := GraphSpec{Name: "one", Generator: "ba", Nodes: 20, EdgesPerNode: 2}
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs", ok, &map[string]any{}); code != http.StatusCreated {
		t.Fatalf("create within capacity: %d", code)
	}
	over := GraphSpec{Name: "two", Generator: "ba", Nodes: 20, EdgesPerNode: 2}
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs", over, &map[string]any{}); code != http.StatusTooManyRequests {
		t.Fatalf("create over capacity: %d, want 429", code)
	}
}

// TestConcurrentSelects exercises the full HTTP path under parallel load
// (run with -race): many clients, few distinct requests — the server must
// coalesce them into at most one computation per fingerprint.
func TestConcurrentSelects(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueCap: 256})
	const clients = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := SelectRequest{Graph: "g", Algorithm: "degree", K: 2 + c%3}
			var resp SelectResponse
			code := doJSON(t, "POST", ts.URL+"/v1/select", req, &resp)
			switch code {
			case http.StatusOK:
				if !resp.Cached {
					errs <- fmt.Errorf("client %d: 200 without cache flag", c)
				}
			case http.StatusAccepted:
				done := pollJob(t, ts.URL, resp.JobID)
				if done.State != StateDone || len(done.Result.Seeds) != 2+c%3 {
					errs <- fmt.Errorf("client %d: job %+v", c, done)
				}
			default:
				errs <- fmt.Errorf("client %d: status %d", c, code)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// 3 distinct fingerprints (k = 2,3,4) => at most 3 computations.
	if got := s.SelectionsRun(); got < 1 || got > 3 {
		t.Fatalf("SelectionsRun = %d, want 1..3", got)
	}
}

// blockingSelectFn installs a selectFn stub that signals when it starts
// and then blocks until its context is cancelled, returning a canonical
// partial result — the shape every cancellation path sees.
func blockingSelectFn(s *Server) (started chan string, unblocked *atomic.Int64) {
	started = make(chan string, 16)
	unblocked = &atomic.Int64{}
	s.selectFn = func(ctx context.Context, g *holisticim.Graph, k int, alg holisticim.Algorithm, o holisticim.Options) (holisticim.Result, error) {
		started <- "started"
		<-ctx.Done()
		unblocked.Add(1)
		return holisticim.Result{Algorithm: "stub", Seeds: []int32{0}, Partial: true},
			fmt.Errorf("stub interrupted: %w", ctx.Err())
	}
	return started, unblocked
}

// TestCancelRunningJob drives DELETE /v1/jobs/{id} against a running job:
// the job must transition to "canceled", retain the partial result, and
// free its worker slot for queued work.
func TestCancelRunningJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	started, unblocked := blockingSelectFn(s)

	var first SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select",
		SelectRequest{Graph: "g", Algorithm: "degree", K: 3}, &first); code != http.StatusAccepted {
		t.Fatalf("POST select status %d", code)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("selection never started")
	}

	var del SelectResponse
	if code := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+first.JobID, nil, &del); code != http.StatusOK {
		t.Fatalf("DELETE status %d (%+v)", code, del)
	}
	done := pollJob(t, ts.URL, first.JobID)
	if done.State != StateCanceled {
		t.Fatalf("state %q after cancel, want canceled", done.State)
	}
	if done.Error == "" {
		t.Fatalf("canceled job should surface its error: %+v", done)
	}
	if done.Result == nil || !done.Result.Partial || len(done.Result.Seeds) != 1 {
		t.Fatalf("canceled job should retain the partial result: %+v", done.Result)
	}
	if got := unblocked.Load(); got != 1 {
		t.Fatalf("selectFn unblocked %d times, want 1", got)
	}

	// The freed worker slot must pick up fresh work: a different request
	// (distinct fingerprint) completes normally.
	s.selectFn = holisticim.SelectSeedsContext
	var second SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select",
		SelectRequest{Graph: "g", Algorithm: "degree", K: 2}, &second); code != http.StatusAccepted {
		t.Fatalf("post-cancel POST status %d", code)
	}
	if res := pollJob(t, ts.URL, second.JobID); res.State != StateDone || len(res.Result.Seeds) != 2 {
		t.Fatalf("post-cancel job %+v", res)
	}

	// Idempotency: a second DELETE answers 200 with the canceled state.
	if code := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+first.JobID, nil, &del); code != http.StatusOK || del.State != StateCanceled {
		t.Fatalf("repeat DELETE: status %d state %q", code, del.State)
	}
	// Cancelling a finished job is a conflict.
	if code := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+second.JobID, nil, &del); code != http.StatusConflict {
		t.Fatalf("DELETE on done job: status %d, want 409", code)
	}
	// Unknown ids are 404.
	if code := doJSON(t, "DELETE", ts.URL+"/v1/jobs/zzz", nil, &map[string]any{}); code != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: status %d, want 404", code)
	}
}

// TestCancelQueuedJob cancels a job that never reached a worker: it must
// transition immediately and the worker must skip it entirely.
func TestCancelQueuedJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4})
	started, _ := blockingSelectFn(s)

	var blockerResp SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select",
		SelectRequest{Graph: "g", Algorithm: "degree", K: 3}, &blockerResp); code != http.StatusAccepted {
		t.Fatalf("blocker POST status %d", code)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("blocker never started")
	}
	var queued SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select",
		SelectRequest{Graph: "g", Algorithm: "degree", K: 4}, &queued); code != http.StatusAccepted {
		t.Fatalf("queued POST status %d", code)
	}

	var del SelectResponse
	if code := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+queued.JobID, nil, &del); code != http.StatusOK {
		t.Fatalf("DELETE queued job: status %d", code)
	}
	if del.State != StateCanceled {
		t.Fatalf("queued job state %q after cancel, want canceled", del.State)
	}
	// Unblock the runner and prove the canceled job never ran.
	if code := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+blockerResp.JobID, nil, &del); code != http.StatusOK {
		t.Fatalf("DELETE blocker: status %d", code)
	}
	pollJob(t, ts.URL, blockerResp.JobID)
	if st := pollJob(t, ts.URL, queued.JobID); st.State != StateCanceled {
		t.Fatalf("queued job resurrected into %q", st.State)
	}
	if got := s.SelectionsRun(); got != 0 {
		t.Fatalf("SelectionsRun = %d, want 0 (both jobs canceled)", got)
	}
}

// TestSelectTimeoutMS proves a per-job timeout_ms bounds the selection:
// the job fails with a deadline error, retains the partial prefix, and
// the partial result never poisons the cache.
func TestSelectTimeoutMS(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.selectFn = func(ctx context.Context, g *holisticim.Graph, k int, alg holisticim.Algorithm, o holisticim.Options) (holisticim.Result, error) {
		<-ctx.Done() // simulate a selection that outlives its deadline
		return holisticim.Result{Algorithm: "stub", Seeds: []int32{0, 1}, Partial: true},
			fmt.Errorf("stub interrupted: %w", ctx.Err())
	}
	req := SelectRequest{Graph: "g", Algorithm: "degree", K: 5, TimeoutMS: 30}
	var resp SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", req, &resp); code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	done := pollJob(t, ts.URL, resp.JobID)
	if done.State != StateFailed {
		t.Fatalf("timed-out job state %q, want failed", done.State)
	}
	if done.Result == nil || !done.Result.Partial || len(done.Result.Seeds) != 2 {
		t.Fatalf("timed-out job should retain its partial prefix: %+v", done.Result)
	}

	// The identical request must MISS the cache (partials are not cached)
	// and, with a working selectFn, complete cleanly.
	s.selectFn = holisticim.SelectSeedsContext
	var retry SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", req, &retry); code != http.StatusAccepted {
		t.Fatalf("retry POST status %d (cache must not serve partials)", code)
	}
	if got := pollJob(t, ts.URL, retry.JobID); got.State != StateDone || len(got.Result.Seeds) != 5 {
		t.Fatalf("retry job %+v", got)
	}

	// Negative timeouts are rejected at admission.
	bad := SelectRequest{Graph: "g", Algorithm: "degree", K: 2, TimeoutMS: -5}
	if code := doJSON(t, "POST", ts.URL+"/v1/select", bad, &map[string]any{}); code != http.StatusBadRequest {
		t.Fatalf("negative timeout_ms: status %d, want 400", code)
	}
}

// TestJobProgressReporting watches seeds_done/k climb while a selection
// runs: the progress plumbing from Options.Progress through the job's
// atomic counter must be visible over HTTP before the job finishes.
func TestJobProgressReporting(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	s.selectFn = func(ctx context.Context, g *holisticim.Graph, k int, alg holisticim.Algorithm, o holisticim.Options) (holisticim.Result, error) {
		seeds := make([]int32, 0, k)
		for i := 0; i < k; i++ {
			seeds = append(seeds, int32(i))
			if o.Progress != nil {
				o.Progress(i, int32(i), time.Duration(i))
			}
			if i == k/2 {
				<-release // hold mid-selection so the test can observe progress
			}
		}
		return holisticim.Result{Algorithm: "stub", Seeds: seeds}, nil
	}
	var resp SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select",
		SelectRequest{Graph: "g", Algorithm: "degree", K: 6}, &resp); code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st SelectResponse
		if code := doJSON(t, "GET", ts.URL+"/v1/jobs/"+resp.JobID, nil, &st); code != http.StatusOK {
			t.Fatalf("GET job status %d", code)
		}
		if st.State == StateRunning && st.SeedsDone >= 3 {
			if st.K != 6 {
				t.Fatalf("running job k=%d, want 6", st.K)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never observed live progress (last %+v)", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(release)
	done := pollJob(t, ts.URL, resp.JobID)
	if done.State != StateDone || done.SeedsDone != 6 {
		t.Fatalf("final status %+v", done)
	}
}
