package service

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/holisticim/holisticim"
)

// TestOpinionSketchService drives the opinion-aware ("oc") sketch path
// end to end: build → weighted fast-path select → sketch-served estimate
// → stats, plus the Monte-Carlo fallback on a key miss.
func TestOpinionSketchService(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	info := buildTestSketch(t, ts.URL, SketchSpec{Graph: "g", Model: "oc", Epsilon: 0.3, Seed: 5, BuildK: 10})
	if info.Model != "oc" || info.Sets == 0 {
		t.Fatalf("oc sketch info: %+v", info)
	}

	// A model-oc IMM select is served synchronously by the weighted index.
	var sel SelectResponse
	req := SelectRequest{Graph: "g", Algorithm: "imm", K: 5, Options: Options{Model: "oc", Epsilon: 0.3, Seed: 5}}
	if code := doJSON(t, "POST", ts.URL+"/v1/select", req, &sel); code != http.StatusOK {
		t.Fatalf("oc fast-path select status %d (%+v)", code, sel)
	}
	if !sel.Sketch || sel.Result == nil || len(sel.Result.Seeds) != 5 {
		t.Fatalf("oc fast-path response: %+v", sel)
	}
	if sel.Result.Metrics["weighted_coverage"] == 0 {
		t.Fatalf("weighted selection metrics missing: %+v", sel.Result.Metrics)
	}

	// The opinion estimate is served from the sketch, not Monte Carlo.
	var est EstimateResult
	ereq := EstimateRequest{Graph: "g", Seeds: sel.Result.Seeds, Options: Options{Model: "oc", Epsilon: 0.3, Seed: 5}}
	if code := doJSON(t, "POST", ts.URL+"/v1/estimate", ereq, &est); code != http.StatusOK {
		t.Fatalf("sketch estimate status %d (%+v)", code, est)
	}
	// Runs reports the RR-set count — at least the build-time sample (the
	// preceding select may have lazily extended it).
	if !est.Sketch || est.Runs < info.Sets {
		t.Fatalf("estimate not sketch-served: %+v (want runs>=%d)", est, info.Sets)
	}
	if est.Lambda != 1 || est.EffectiveOpinionSpread != est.PositiveSpread-est.NegativeSpread {
		t.Fatalf("estimate opinion fields inconsistent: %+v", est)
	}

	// A different seed misses the sketch key and falls back to MC.
	var mc EstimateResult
	miss := EstimateRequest{Graph: "g", Seeds: sel.Result.Seeds, Options: Options{Model: "oc", Epsilon: 0.3, Seed: 6, MCRuns: 40}}
	if code := doJSON(t, "POST", ts.URL+"/v1/estimate", miss, &mc); code != http.StatusOK {
		t.Fatalf("fallback estimate status %d", code)
	}
	if mc.Sketch || mc.Runs != 40 {
		t.Fatalf("fallback estimate not Monte Carlo: %+v", mc)
	}

	st := s.Stats()
	if st.SketchEstimateHits != 1 || st.SketchFastPathHits != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// Satellite regression: a `{}` (all-defaults) select request must hit a
// sketch built from a fully spelled-out default spec — the three
// canonicalization sites resolve through one helper, so ε 0→0.1 and
// seed 0→1 cannot drift apart. And symmetrically, a spelled-out request
// must hit a `{}`-built sketch.
func TestDefaultCanonicalizationSharesSketch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	buildTestSketch(t, ts.URL, SketchSpec{Graph: "g", Model: "ic", Epsilon: 0.1, Seed: 1, BuildK: 5})

	var sel SelectResponse
	empty := SelectRequest{Graph: "g", Algorithm: "imm", K: 3}
	if code := doJSON(t, "POST", ts.URL+"/v1/select", empty, &sel); code != http.StatusOK || !sel.Sketch {
		t.Fatalf("defaults request missed the spelled-out default sketch: status %d, %+v", code, sel)
	}
	spelled := SelectRequest{Graph: "g", Algorithm: "tim+", K: 3, Options: Options{Model: "ic", Epsilon: 0.1, Seed: 1}}
	if code := doJSON(t, "POST", ts.URL+"/v1/select", spelled, &sel); code != http.StatusOK || !sel.Sketch {
		t.Fatalf("spelled-out request missed the sketch: status %d, %+v", code, sel)
	}

	// The duplicate-build guard sees through the same canonicalization: a
	// `{}`-spec build of the same sketch conflicts instead of duplicating.
	var resp map[string]any
	if code := doJSON(t, "POST", ts.URL+"/v1/sketches", SketchSpec{Graph: "g", BuildK: 5}, &resp); code != http.StatusConflict {
		t.Fatalf("zero-value spec did not conflict with the default-spec sketch: %d", code)
	}
}

// writeGraphFile persists g to a binary graph file under dir.
func writeGraphFile(t *testing.T, dir, name string, g *holisticim.Graph) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := holisticim.WriteBinaryGraph(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// Satellite regression: re-registering a graph under the same name must
// not silently kill the sketch fast path when the content is identical,
// and must evict sketches plus drop cached results when it is not.
func TestGraphReplacementStaleness(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	mk := func(prob float64) *holisticim.Graph {
		g := holisticim.GenerateBA(250, 3, 7)
		g.SetUniformProb(prob)
		holisticim.AssignOpinions(g, holisticim.OpinionNormal, 2)
		return g
	}
	dir := t.TempDir()
	path := writeGraphFile(t, dir, "h.bin", mk(0.1))
	if err := s.Registry().LoadFile("h", path); err != nil {
		t.Fatal(err)
	}
	buildTestSketch(t, ts.URL, SketchSpec{Graph: "h", Epsilon: 0.3, Seed: 5, BuildK: 5})

	fastReq := SelectRequest{Graph: "h", Algorithm: "imm", K: 3, Options: Options{Epsilon: 0.3, Seed: 5}}
	var sel SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", fastReq, &sel); code != http.StatusOK || !sel.Sketch {
		t.Fatalf("fast path not serving before reload: status %d, %+v", code, sel)
	}

	// Warm the result cache with a cold selection.
	coldReq := SelectRequest{Graph: "h", Algorithm: "degree", K: 2}
	var cold SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", coldReq, &cold); code != http.StatusAccepted {
		t.Fatalf("cold select status %d", code)
	}
	pollJob(t, ts.URL, cold.JobID)
	if code := doJSON(t, "POST", ts.URL+"/v1/select", coldReq, &cold); code != http.StatusOK || !cold.Cached {
		t.Fatalf("cold result not cached: status %d, %+v", code, cold)
	}

	// Reload with IDENTICAL content: the sketch must keep serving (the
	// index rebinds to the new instance via the content fingerprint).
	if err := s.Registry().LoadFile("h", path); err != nil {
		t.Fatal(err)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/select", fastReq, &sel); code != http.StatusOK || !sel.Sketch {
		t.Fatalf("identical reload killed the fast path: status %d, %+v", code, sel)
	}
	if st := s.Stats(); st.GraphReplacements != 1 || st.Sketches != 1 {
		t.Fatalf("stats after identical reload: %+v", st)
	}

	// Reload with DIFFERENT content: the sketch is evicted (a stale
	// sample must never serve the new topology) and the name's cached
	// results are dropped.
	path2 := writeGraphFile(t, dir, "h2.bin", mk(0.2))
	if err := s.Registry().LoadFile("h", path2); err != nil {
		t.Fatal(err)
	}
	var sel2, cold2 SelectResponse // fresh: omitempty fields never reset on reuse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", fastReq, &sel2); code != http.StatusAccepted || sel2.Sketch {
		t.Fatalf("stale sketch still serving after content change: status %d, %+v", code, sel2)
	}
	pollJob(t, ts.URL, sel2.JobID)
	if code := doJSON(t, "POST", ts.URL+"/v1/select", coldReq, &cold2); code != http.StatusAccepted || cold2.Cached {
		t.Fatalf("stale cached result served after content change: status %d, %+v", code, cold2)
	}
	pollJob(t, ts.URL, cold2.JobID)
	st := s.Stats()
	if st.GraphReplacements != 2 || st.Sketches != 0 {
		t.Fatalf("stats after content change: %+v", st)
	}

	// POST /v1/graphs still refuses rebinding: the untrusted API cannot
	// replace graphs.
	var errResp map[string]any
	spec := GraphSpec{Name: "h", Generator: "ba", Nodes: 50}
	if code := doJSON(t, "POST", ts.URL+"/v1/graphs", spec, &errResp); code != http.StatusConflict {
		t.Fatalf("POST /v1/graphs rebound a name: status %d (%v)", code, errResp)
	}
}

// A job in flight when its graph is replaced must not re-insert its
// stale result into the cache after the replacement's DropPrefix, and a
// post-replace request must not attach to the pre-replace job: both are
// fenced by the rebind generation folded into the cache/dedup key.
func TestInFlightJobFencedByReplacement(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	dir := t.TempDir()
	g1 := holisticim.GenerateBA(200, 3, 7)
	g1.SetUniformProb(0.1)
	path := writeGraphFile(t, dir, "f.bin", g1)
	if err := s.Registry().LoadFile("f", path); err != nil {
		t.Fatal(err)
	}

	// Gate the selection so we control when the "in-flight" job finishes
	// (the post-replace job reuses the stub and sails through the closed
	// release channel).
	started := make(chan struct{})
	release := make(chan struct{})
	var startedOnce sync.Once
	s.selectFn = func(ctx context.Context, g *holisticim.Graph, k int, alg holisticim.Algorithm, o holisticim.Options) (holisticim.Result, error) {
		startedOnce.Do(func() { close(started) })
		<-release
		return holisticim.Result{Algorithm: string(alg), Seeds: []int32{1, 2}}, nil
	}

	req := SelectRequest{Graph: "f", Algorithm: "degree", K: 2}
	var first SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", req, &first); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	<-started

	// Replace the graph while the job runs, then let the job complete and
	// cache its (now stale) result under the OLD generation's key.
	g2 := holisticim.GenerateBA(200, 3, 7)
	g2.SetUniformProb(0.2)
	path2 := writeGraphFile(t, dir, "f2.bin", g2)
	if err := s.Registry().LoadFile("f", path2); err != nil {
		t.Fatal(err)
	}
	close(release)
	pollJob(t, ts.URL, first.JobID)

	// The identical request now carries the new generation: it must miss
	// both the cache and the old job, submitting fresh work.
	var second SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", req, &second); code != http.StatusAccepted {
		t.Fatalf("post-replace request status %d (%+v)", code, second)
	}
	if second.Cached || second.Deduped || second.JobID == first.JobID {
		t.Fatalf("post-replace request served stale work: %+v (first job %s)", second, first.JobID)
	}
	pollJob(t, ts.URL, second.JobID)
}
