package service

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/holisticim/holisticim"
)

// Config sizes a Server. Zero values pick serving defaults.
type Config struct {
	// Workers bounds concurrent selection computations (default 2).
	// Selections are themselves internally parallel, so a small pool is
	// usually right.
	Workers int
	// QueueCap bounds queued-but-not-started jobs (default 64); beyond
	// it POST /v1/select answers 503.
	QueueCap int
	// CacheSize bounds the LRU result cache (default 256 entries).
	CacheSize int
	// MaxJobs bounds retained job records (default 1024).
	MaxJobs int
	// AllowPathLoad lets POST /v1/graphs load server-local files. Off by
	// default: untrusted clients should not read the server's filesystem.
	AllowPathLoad bool
	// StatsSamples bounds BFS sampling in GET /v1/graphs/{name} (default 16).
	StatsSamples int
	// MaxEstimateRuns caps mc_runs on POST /v1/estimate, which runs
	// synchronously on the request path (default 100000).
	MaxEstimateRuns int
	// MaxSelectRuns caps mc_runs on POST /v1/select. Jobs are cancellable
	// (DELETE /v1/jobs/{id}, timeout_ms), so this cap is a second line of
	// defense against abandoned heavyweight work rather than the only
	// bound (default 1000000).
	MaxSelectRuns int
	// MaxGraphs caps the number of registered graphs — names can never be
	// rebound, so the registry only grows (default 64).
	MaxGraphs int
	// MaxGraphNodes / MaxGraphArcs cap generator specs accepted by
	// POST /v1/graphs (defaults 5M nodes, 50M arcs).
	MaxGraphNodes int32
	MaxGraphArcs  int64
	// MaxSketches caps the RR-sketch registry (default 16).
	MaxSketches int
	// MaxSketchSets caps each sketch's RR-set count — builds stop there
	// and fast-path selections serve from the capped sample (default 2M).
	MaxSketchSets int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.StatsSamples <= 0 {
		c.StatsSamples = 16
	}
	if c.MaxEstimateRuns <= 0 {
		c.MaxEstimateRuns = 100000
	}
	if c.MaxSelectRuns <= 0 {
		c.MaxSelectRuns = 1_000_000
	}
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 64
	}
	if c.MaxGraphNodes <= 0 {
		c.MaxGraphNodes = 5_000_000
	}
	if c.MaxGraphArcs <= 0 {
		c.MaxGraphArcs = 50_000_000
	}
	if c.MaxSketches <= 0 {
		c.MaxSketches = 16
	}
	if c.MaxSketchSets <= 0 {
		c.MaxSketchSets = 2_000_000
	}
	return c
}

// Server wires the graph registry, job manager and result cache behind an
// http.Handler. Construct with New, register graphs via Registry() or the
// API, then serve Handler().
type Server struct {
	cfg      Config
	reg      *Registry
	sketches *SketchRegistry
	jobs     *Manager
	cache    *Cache
	mux      *http.ServeMux

	// selectFn runs one selection under a job-scoped context; tests
	// substitute stubs to control timing without real computations.
	selectFn func(ctx context.Context, g *holisticim.Graph, k int, alg holisticim.Algorithm, o holisticim.Options) (holisticim.Result, error)

	selections      atomic.Int64 // actual (non-cached, non-deduped) selections run
	sketchHits      atomic.Int64 // /v1/select requests served by the sketch fast path
	sketchEstimates atomic.Int64 // /v1/estimate requests served by an opinion sketch
	replacements    atomic.Int64 // graph names rebound to new content
}

// New returns a ready-to-serve Server with an empty registry.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      NewRegistry(),
		sketches: NewSketchRegistry(),
		jobs:     NewManager(cfg.Workers, cfg.QueueCap, cfg.MaxJobs),
		cache:    NewCache(cfg.CacheSize),
		selectFn: holisticim.SelectSeedsContext,
	}
	// Enforced inside Registry.Add, under its lock, so concurrent
	// registrations cannot race past the cap.
	s.reg.maxGraphs = cfg.MaxGraphs
	s.sketches.maxSketches = cfg.MaxSketches
	// A graph name rebound to new content (operator reload) must not keep
	// serving results computed against the old topology: drop the name's
	// cached selections and rebind-or-evict its sketches before the
	// replacement call returns. Identical-content reloads keep their
	// sketches (fingerprint match) — only the cache is cleared, cheaply
	// re-fillable either way.
	s.reg.onReplace = func(name string, g *holisticim.Graph) {
		s.replacements.Add(1)
		s.cache.DropPrefix("graph=" + name + ";")
		s.sketches.RebindGraph(name, g)
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Registry exposes the graph registry for startup preloading.
func (s *Server) Registry() *Registry { return s.reg }

// Sketches exposes the sketch registry for startup snapshot preloading.
func (s *Server) Sketches() *SketchRegistry { return s.sketches }

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close cancels all in-flight selections and stops the worker pool once
// they unwind — shutdown no longer drains heavyweight jobs to completion.
func (s *Server) Close() { s.jobs.Close() }

// SelectionsRun returns how many selections were actually computed (cache
// hits and deduplicated submissions do not count).
func (s *Server) SelectionsRun() int64 { return s.selections.Load() }

// Stats snapshots the serving counters.
func (s *Server) Stats() ServerStats {
	skCount, skSets, skBytes, skBuilds := s.sketches.Totals()
	return ServerStats{
		Graphs:             s.reg.Len(),
		CacheSize:          s.cache.Len(),
		CacheHits:          s.cache.Hits(),
		CacheMisses:        s.cache.Misses(),
		JobsSubmitted:      s.jobs.Submitted(),
		JobsDeduped:        s.jobs.Deduped(),
		JobsCanceled:       s.jobs.Canceled(),
		SelectionsRun:      s.selections.Load(),
		Sketches:           skCount,
		SketchSets:         skSets,
		SketchMemoryBytes:  skBytes,
		SketchBuilds:       skBuilds,
		SketchFastPathHits: s.sketchHits.Load(),
		SketchEstimateHits: s.sketchEstimates.Load(),
		GraphReplacements:  s.replacements.Load(),
	}
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	s.mux.HandleFunc("POST /v1/graphs", s.handleAddGraph)
	s.mux.HandleFunc("GET /v1/graphs/{name}", s.handleGraphStats)
	s.mux.HandleFunc("GET /v1/sketches", s.handleListSketches)
	s.mux.HandleFunc("POST /v1/sketches", s.handleBuildSketch)
	s.mux.HandleFunc("GET /v1/sketches/{id}", s.handleSketchInfo)
	s.mux.HandleFunc("DELETE /v1/sketches/{id}", s.handleDeleteSketch)
	s.mux.HandleFunc("POST /v1/select", s.handleSelect)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
}

func toSelectResult(res holisticim.Result) *SelectResult {
	return &SelectResult{
		Algorithm: res.Algorithm,
		Seeds:     res.Seeds,
		TookMS:    float64(res.Took) / float64(time.Millisecond),
		Metrics:   res.Metrics,
		Partial:   res.Partial,
	}
}
