package service

import (
	"context"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/internal/admission"
	"github.com/holisticim/holisticim/internal/obs"
)

// Config sizes a Server. Zero values pick serving defaults.
type Config struct {
	// Workers bounds concurrent selection computations (default 2).
	// Selections are themselves internally parallel, so a small pool is
	// usually right.
	Workers int
	// QueueCap bounds queued-but-not-started jobs (default 64); beyond
	// it POST /v1/select answers 503.
	QueueCap int
	// CacheSize bounds the LRU result cache (default 256 entries).
	CacheSize int
	// MaxJobs bounds retained job records (default 1024).
	MaxJobs int
	// AllowPathLoad lets POST /v1/graphs load server-local files. Off by
	// default: untrusted clients should not read the server's filesystem.
	AllowPathLoad bool
	// StatsSamples bounds BFS sampling in GET /v1/graphs/{name} (default 16).
	StatsSamples int
	// MaxEstimateRuns caps mc_runs on POST /v1/estimate, which runs
	// synchronously on the request path (default 100000).
	MaxEstimateRuns int
	// MaxSelectRuns caps mc_runs on POST /v1/select. Jobs are cancellable
	// (DELETE /v1/jobs/{id}, timeout_ms), so this cap is a second line of
	// defense against abandoned heavyweight work rather than the only
	// bound (default 1000000).
	MaxSelectRuns int
	// MaxGraphs caps the number of registered graphs — names can never be
	// rebound, so the registry only grows (default 64).
	MaxGraphs int
	// MaxGraphNodes / MaxGraphArcs cap generator specs accepted by
	// POST /v1/graphs (defaults 5M nodes, 50M arcs).
	MaxGraphNodes int32
	MaxGraphArcs  int64
	// MaxSketches caps the RR-sketch registry (default 16).
	MaxSketches int
	// MaxSketchSets caps each sketch's RR-set count — builds stop there
	// and fast-path selections serve from the capped sample (default 2M).
	MaxSketchSets int
	// MaxQueryMembers caps the members of one /v2/query batch (default 64).
	MaxQueryMembers int
	// MaxMutationOps caps the edge operations of one POST
	// /v1/graphs/{name}/edges batch (default 100000).
	MaxMutationOps int
	// RepairMaxHops, when positive, makes background sketch repairs
	// hop-bounded: RR sets whose dirty nodes all sit deeper than this many
	// walk positions are deferred (advertised as stale_sets) instead of
	// resampled. 0 (the default) keeps repairs exact.
	RepairMaxHops int
	// RateRPS, when positive, turns on per-client admission control: each
	// client (X-Client-ID header, else remote address) gets a token
	// bucket refilled at RateRPS requests per second, and work-inducing
	// requests beyond it answer 429 + Retry-After. 0 (the default)
	// disables rate limiting.
	RateRPS float64
	// RateBurst is each client's bucket capacity — how many requests an
	// idle client may fire back to back (default: RateRPS).
	RateBurst float64
	// RateClients bounds the per-client bucket table; the least recently
	// seen client is evicted past it (default 4096).
	RateClients int
	// ColdStart makes the server report NOT ready on GET /readyz until
	// SetReady(true) is called — set it when startup warm-loads snapshots
	// or a store manifest, so a load balancer never routes to a replica
	// that would answer 404 for graphs it is still loading. Liveness
	// (GET /healthz) is unaffected.
	ColdStart bool
	// Advertise is the address this replica tells routers to reach it at,
	// echoed in GET /v1/cluster/info.
	Advertise string
	// Metrics receives the server's metric families and backs GET
	// /metrics. Nil gets a private registry, so embedding callers and
	// tests need no setup; binaries pass one in to add process-level
	// families beside the serving ones.
	Metrics *obs.Registry
	// Logger receives structured request and serving logs. Nil discards
	// (tests stay quiet); binaries pass the shared component logger.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.StatsSamples <= 0 {
		c.StatsSamples = 16
	}
	if c.MaxEstimateRuns <= 0 {
		c.MaxEstimateRuns = 100000
	}
	if c.MaxSelectRuns <= 0 {
		c.MaxSelectRuns = 1_000_000
	}
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 64
	}
	if c.MaxGraphNodes <= 0 {
		c.MaxGraphNodes = 5_000_000
	}
	if c.MaxGraphArcs <= 0 {
		c.MaxGraphArcs = 50_000_000
	}
	if c.MaxSketches <= 0 {
		c.MaxSketches = 16
	}
	if c.MaxSketchSets <= 0 {
		c.MaxSketchSets = 2_000_000
	}
	if c.MaxQueryMembers <= 0 {
		c.MaxQueryMembers = 64
	}
	if c.MaxMutationOps <= 0 {
		c.MaxMutationOps = 100_000
	}
	return c
}

// Server wires the graph registry, job manager and result cache behind an
// http.Handler. Construct with New, register graphs via Registry() or the
// API, then serve Handler().
type Server struct {
	cfg      Config
	reg      *Registry
	sketches *SketchRegistry
	jobs     *Manager
	cache    *Cache
	mux      *http.ServeMux
	patterns []string // registered mux patterns, for 405 probing and conformance
	metrics  *obs.Registry
	logger   *slog.Logger
	queryDur *obs.HistogramVec // im_query_duration_seconds{backend}

	// limiter is the per-client admission gate (nil when RateRPS is
	// unset: a nil Limiter admits everything). costs predicts job run
	// times per backend, fed by the same observations as queryDur, and
	// drives deadline-aware shedding at submission time.
	limiter *admission.Limiter
	costs   *admission.CostModel

	// selectFn runs one v1 selection under a job-scoped context; tests
	// substitute stubs to control timing without real computations. It is
	// a thin wrapper over queryFn's planner (SelectSeedsContext → Run).
	selectFn func(ctx context.Context, g *holisticim.Graph, k int, alg holisticim.Algorithm, o holisticim.Options) (holisticim.Result, error)
	// queryFn plans and executes one query (holisticim.Run); tests may
	// substitute stubs.
	queryFn func(ctx context.Context, g *holisticim.Graph, q holisticim.Query) (holisticim.Answer, error)

	selections      atomic.Int64 // actual (non-cached, non-deduped) selections run
	queries         atomic.Int64 // /v2 query jobs run to completion
	sketchHits      atomic.Int64 // select requests served by the sketch fast path
	sketchEstimates atomic.Int64 // estimate requests served by an opinion sketch
	replacements    atomic.Int64 // graph names rebound to new content
	mutations       atomic.Int64 // applied edge batches

	ready           atomic.Bool   // /readyz gate; see Config.ColdStart
	manifestVersion atomic.Uint64 // last fully warm-loaded store manifest version
}

// New returns a ready-to-serve Server with an empty registry.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		reg:      NewRegistry(),
		sketches: NewSketchRegistry(),
		jobs:     NewManager(cfg.Workers, cfg.QueueCap, cfg.MaxJobs),
		cache:    NewCache(cfg.CacheSize),
		selectFn: holisticim.SelectSeedsContext,
		queryFn:  holisticim.Run,
		limiter: admission.NewLimiter(admission.LimiterConfig{
			RPS: cfg.RateRPS, Burst: cfg.RateBurst, MaxClients: cfg.RateClients,
		}),
		costs: admission.NewCostModel(),
	}
	// Enforced inside Registry.Add, under its lock, so concurrent
	// registrations cannot race past the cap.
	s.reg.maxGraphs = cfg.MaxGraphs
	s.sketches.maxSketches = cfg.MaxSketches
	// A graph name rebound to new content (operator reload) must not keep
	// serving results computed against the old topology: drop the name's
	// cached selections and rebind-or-evict its sketches before the
	// replacement call returns. Identical-content reloads keep their
	// sketches (fingerprint match) — only the cache is cleared, cheaply
	// re-fillable either way.
	s.reg.onReplace = func(name string, g *holisticim.Graph) {
		s.replacements.Add(1)
		s.cache.DropPrefix("graph=" + name + ";")
		s.sketches.RebindGraph(name, g)
	}
	// A mutated graph keeps its lineage: instead of evicting the name's
	// sketches, schedule incremental background repairs for them. Until a
	// sketch's repair lands, its fingerprint no longer matches the new
	// snapshot, so the planner routes the name's queries to cold backends —
	// stale samples are repaired or bypassed, never silently served.
	s.reg.onMutate = func(name string, g *holisticim.Graph, version uint64, dirty []holisticim.NodeID) {
		s.mutations.Add(1)
		s.cache.DropPrefix("graph=" + name + ";")
		// Repairs are background maintenance: batch class, so a repair
		// storm after a mutation burst cannot delay interactive queries.
		s.sketches.ScheduleRepair(name, g, version, dirty, s.cfg.RepairMaxHops,
			func(key string, fn JobFunc) error {
				_, _, err := s.jobs.SubmitQuery(JobSpec{Key: key, Priority: admission.Batch}, fn)
				return err
			})
	}
	// A cold-starting replica flips ready only once its snapshots (or the
	// store manifest) are fully warm-loaded; everything else is ready the
	// moment it can serve.
	s.ready.Store(!cfg.ColdStart)
	s.metrics = cfg.Metrics
	if s.metrics == nil {
		s.metrics = obs.NewRegistry()
	}
	s.logger = cfg.Logger
	if s.logger == nil {
		s.logger = obs.Nop()
	}
	s.initObservability()
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// SetReady flips the /readyz gate: a cold-starting replica calls
// SetReady(true) once warm-loading finished; Shutdown flips it back so
// load balancers drain the replica before the listener closes.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the /readyz gate.
func (s *Server) Ready() bool { return s.ready.Load() }

// SetManifestVersion records the store manifest version the replica's
// watcher last fully loaded, advertised via GET /v1/cluster/info so
// routers can prefer manifest-fresh replicas.
func (s *Server) SetManifestVersion(v uint64) { s.manifestVersion.Store(v) }

// Registry exposes the graph registry for startup preloading.
func (s *Server) Registry() *Registry { return s.reg }

// Sketches exposes the sketch registry for startup snapshot preloading.
func (s *Server) Sketches() *SketchRegistry { return s.sketches }

// Handler returns the root http.Handler: the mux wrapped so that
// not-found and method-mismatch responses carry the same JSON error
// envelope as every handler, with a correct Allow header on 405s, all
// behind the obs middleware (request ids, request metrics and logs).
func (s *Server) Handler() http.Handler {
	root := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, pattern := s.mux.Handler(r); pattern == "" {
			if allowed := s.allowedMethods(r); len(allowed) > 0 {
				w.Header().Set("Allow", strings.Join(allowed, ", "))
				writeError(w, http.StatusMethodNotAllowed,
					"method %s not allowed for %s", r.Method, r.URL.Path)
			} else {
				writeError(w, http.StatusNotFound, "no route for %s %s", r.Method, r.URL.Path)
			}
			return
		}
		s.mux.ServeHTTP(w, r)
	})
	mw := obs.HTTPConfig{
		Logger:   s.logger,
		Registry: s.metrics,
		Route:    s.routeLabel,
		Quiet:    []string{"/healthz", "/readyz", "/metrics"},
	}
	return mw.Middleware(root)
}

// routeLabel maps a request onto its mux pattern's path — the bounded
// route label of the request metrics. (http.Request.Pattern needs Go
// 1.23; probing the mux works on the module's declared 1.22.)
func (s *Server) routeLabel(r *http.Request) string {
	_, pattern := s.mux.Handler(r)
	if pattern == "" {
		return ""
	}
	if _, path, ok := strings.Cut(pattern, " "); ok {
		return path
	}
	return pattern
}

// probeMethods are the verbs allowedMethods tests a path against.
var probeMethods = []string{
	http.MethodGet, http.MethodHead, http.MethodPost,
	http.MethodPut, http.MethodPatch, http.MethodDelete,
}

// allowedMethods probes the mux for the verbs that WOULD match r's path,
// for the Allow header of a 405 — derived from the real routing table,
// so it can never drift from the registered patterns.
func (s *Server) allowedMethods(r *http.Request) []string {
	var out []string
	for _, m := range probeMethods {
		probe := r.Clone(r.Context())
		probe.Method = m
		if _, pattern := s.mux.Handler(probe); pattern != "" {
			out = append(out, m)
		}
	}
	return out
}

// Routes returns every registered mux pattern ("METHOD /path"), sorted —
// the source of truth for the route-conformance test.
func (s *Server) Routes() []string {
	out := append([]string(nil), s.patterns...)
	sort.Strings(out)
	return out
}

// Close cancels all in-flight selections and stops the worker pool once
// they unwind — shutdown no longer drains heavyweight jobs to completion.
func (s *Server) Close() { s.jobs.Close() }

// Shutdown drains the server gracefully: the /readyz gate flips to
// not-ready immediately (so pollers stop routing here), new job
// submissions are refused with ErrShuttingDown, queued-but-unstarted jobs
// are canceled, and running jobs get until ctx's deadline to finish
// before being canceled too. The HTTP listener itself is the caller's to
// drain (http.Server.Shutdown); this covers everything behind it.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	return s.jobs.Shutdown(ctx)
}

// SelectionsRun returns how many selections were actually computed (cache
// hits and deduplicated submissions do not count).
func (s *Server) SelectionsRun() int64 { return s.selections.Load() }

// Stats snapshots the serving counters.
func (s *Server) Stats() ServerStats {
	skCount, skSets, skBytes, skBuilds := s.sketches.Totals()
	repairs, repairedSets, repairsFailed := s.sketches.RepairTotals()
	queued, running := s.jobs.Depth()
	depths := s.jobs.DepthByPriority()
	byPriority := make(map[string]int, admission.NumPriorities)
	for p, d := range depths {
		byPriority[admission.Priority(p).String()] = d
	}
	return ServerStats{
		RequestsThrottled:    s.limiter.Throttled(),
		RateClients:          s.limiter.Clients(),
		QueueDepthByPriority: byPriority,
		Graphs:               s.reg.Len(),
		QueriesRun:           s.queries.Load(),
		CacheSize:            s.cache.Len(),
		CacheHits:            s.cache.Hits(),
		CacheMisses:          s.cache.Misses(),
		JobsSubmitted:        s.jobs.Submitted(),
		JobsDeduped:          s.jobs.Deduped(),
		JobsCanceled:         s.jobs.Canceled(),
		JobsShed:             s.jobs.Shed(),
		QueueDepth:           queued,
		JobsRunning:          running,
		SelectionsRun:        s.selections.Load(),
		Sketches:             skCount,
		SketchSets:           skSets,
		SketchMemoryBytes:    skBytes,
		SketchBuilds:         skBuilds,
		SketchFastPathHits:   s.sketchHits.Load(),
		SketchEstimateHits:   s.sketchEstimates.Load(),
		GraphReplacements:    s.replacements.Load(),
		GraphMutations:       s.mutations.Load(),
		SketchRepairs:        repairs,
		SketchRepairedSets:   repairedSets,
		SketchRepairFailures: repairsFailed,
	}
}

// handle registers a pattern on the mux and records it for Routes().
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, h)
	s.patterns = append(s.patterns, pattern)
}

func (s *Server) routes() {
	s.handle("GET /healthz", s.handleHealthz)
	s.handle("GET /readyz", s.handleReadyz)
	s.handle("GET /metrics", s.handleMetrics)
	s.handle("GET /v1/cluster/info", s.handleClusterInfo)
	s.handle("GET /v1/stats", s.handleStats)
	s.handle("GET /v1/graphs", s.handleListGraphs)
	s.handle("POST /v1/graphs", s.handleAddGraph)
	s.handle("GET /v1/graphs/{name}", s.handleGraphStats)
	s.handle("POST /v1/graphs/{name}/edges", s.handleMutateGraph)
	s.handle("GET /v1/sketches", s.handleListSketches)
	s.handle("POST /v1/sketches", s.handleBuildSketch)
	s.handle("GET /v1/sketches/{id}", s.handleSketchInfo)
	s.handle("DELETE /v1/sketches/{id}", s.handleDeleteSketch)
	s.handle("POST /v1/select", s.handleSelect)
	s.handle("GET /v1/jobs/{id}", s.handleJob)
	s.handle("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.handle("POST /v1/estimate", s.handleEstimate)
	s.handle("POST /v2/query", s.handleQuery)
	s.handle("GET /v2/jobs/{id}", s.handleQueryJob)
	s.handle("DELETE /v2/jobs/{id}", s.handleCancelQueryJob)
	s.handle("GET /v2/jobs/{id}/events", s.handleQueryEvents)
}

func toSelectResult(res holisticim.Result) *SelectResult {
	return &SelectResult{
		Algorithm: res.Algorithm,
		Seeds:     res.Seeds,
		TookMS:    float64(res.Took) / float64(time.Millisecond),
		Metrics:   res.Metrics,
		Partial:   res.Partial,
	}
}
