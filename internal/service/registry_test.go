package service

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/holisticim/holisticim"
)

func f64(v float64) *float64 { return &v }

func TestRegistryAddGetList(t *testing.T) {
	r := NewRegistry()
	g := holisticim.GenerateBA(100, 2, 1)
	if err := r.Add("ba", g, "test"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("ba", g, "test"); !errors.Is(err, ErrGraphExists) {
		t.Fatalf("duplicate Add: %v, want ErrGraphExists", err)
	}
	got, err := r.Get("ba")
	if err != nil || got != g {
		t.Fatalf("Get(ba) = %v, %v", got, err)
	}
	if _, err := r.Get("nope"); !errors.Is(err, ErrGraphNotFound) {
		t.Fatalf("Get(nope): %v, want ErrGraphNotFound", err)
	}
	if err := r.Add("aa", holisticim.GenerateBA(10, 1, 2), "test"); err != nil {
		t.Fatal(err)
	}
	list := r.List()
	if len(list) != 2 || list[0].Name != "aa" || list[1].Name != "ba" {
		t.Fatalf("List() = %+v, want aa,ba sorted", list)
	}
	if list[1].Nodes != 100 || list[1].Arcs != g.NumEdges() {
		t.Fatalf("List info mismatch: %+v", list[1])
	}
}

func TestRegistryBuildGenerators(t *testing.T) {
	r := NewRegistry()
	err := r.Build(GraphSpec{
		Name: "ba", Generator: "ba", Nodes: 200, EdgesPerNode: 2, Seed: 7,
		Prob: f64(0.2), Opinions: "normal",
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := r.Get("ba")
	if g.NumNodes() != 200 {
		t.Fatalf("ba nodes = %d", g.NumNodes())
	}
	if p := g.OutProbs(0); len(p) > 0 && p[0] != 0.2 {
		t.Fatalf("uniform prob not applied: %v", p[0])
	}
	opinionated := false
	for _, o := range g.Opinions() {
		if o != 0 {
			opinionated = true
			break
		}
	}
	if !opinionated {
		t.Fatal("opinions were not assigned")
	}

	if err := r.Build(GraphSpec{
		Name: "rm", Generator: "rmat", Nodes: 256, Arcs: 1000, Seed: 3, WeightedCascade: true,
	}, false); err != nil {
		t.Fatal(err)
	}
	rm, _ := r.Get("rm")
	if rm.NumNodes() != 256 || rm.NumEdges() == 0 {
		t.Fatalf("rmat graph %d nodes %d arcs", rm.NumNodes(), rm.NumEdges())
	}

	bad := []GraphSpec{
		{Name: "", Generator: "ba", Nodes: 10},
		{Name: "x"},
		{Name: "x", Generator: "unknown", Nodes: 10},
		{Name: "x", Generator: "ba"},
		{Name: "x", Generator: "rmat", Nodes: 10},
		{Name: "x", Generator: "ba", Nodes: 10, Prob: f64(2)},
		{Name: "x", Generator: "ba", Nodes: 10, Prob: f64(0.1), WeightedCascade: true},
		{Name: "x", Generator: "ba", Nodes: 10, Opinions: "sideways"},
		{Name: "x", Generator: "ba", Nodes: 10, Path: "also-a-path"},
	}
	for i, spec := range bad {
		if err := r.Build(spec, false); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, spec)
		}
	}
}

func TestRegistryFileLoading(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 1 0.5\n1 2 0.25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	if err := r.LoadFile("txt", path); err != nil {
		t.Fatal(err)
	}
	g, _ := r.Get("txt")
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("loaded %d nodes %d arcs", g.NumNodes(), g.NumEdges())
	}
	if p, ok := g.EdgeProb(0, 1); !ok || p != 0.5 {
		t.Fatalf("edge prob 0->1 = %v, %v", p, ok)
	}

	// Round-trip the binary format through the same loader.
	bin := filepath.Join(dir, "g.bin")
	f, err := os.Create(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := holisticim.WriteBinaryGraph(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := r.LoadFile("bin", bin); err != nil {
		t.Fatal(err)
	}
	gb, _ := r.Get("bin")
	if gb.NumNodes() != 3 || gb.NumEdges() != 2 {
		t.Fatalf("binary load: %d nodes %d arcs", gb.NumNodes(), gb.NumEdges())
	}

	// Path loading through Build is gated.
	if err := r.Build(GraphSpec{Name: "gated", Path: path}, false); err == nil {
		t.Fatal("Build with path should fail when path loading is disabled")
	}
	if err := r.Build(GraphSpec{Name: "gated", Path: path}, true); err != nil {
		t.Fatalf("Build with allowed path: %v", err)
	}

	if err := r.LoadFile("missing", filepath.Join(dir, "nope.txt")); err == nil {
		t.Fatal("loading a missing file should fail")
	}
}

func TestRegistryStats(t *testing.T) {
	r := NewRegistry()
	g := holisticim.GenerateBA(300, 3, 1)
	g.SetUniformProb(0.25)
	if err := r.Add("g", g, "test"); err != nil {
		t.Fatal(err)
	}
	st, err := r.Stats("g", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 300 || st.Arcs != g.NumEdges() {
		t.Fatalf("stats identity mismatch: %+v", st)
	}
	if st.AvgOutDegree <= 0 || st.MaxOutDegree <= 0 {
		t.Fatalf("degree stats empty: %+v", st)
	}
	if st.MeanEdgeProb != 0.25 {
		t.Fatalf("MeanEdgeProb = %v, want 0.25", st.MeanEdgeProb)
	}
	if _, err := r.Stats("nope", 8, 1); !errors.Is(err, ErrGraphNotFound) {
		t.Fatalf("Stats(nope): %v", err)
	}
	// Stats are memoized per (immutable) graph: different sampling
	// parameters on a later call must return the first computation.
	st2, err := r.Stats("g", 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if st2 != st {
		t.Fatalf("stats not memoized: %+v vs %+v", st2, st)
	}
}
