package service

// This file implements the /v2 surface: one typed query endpoint over
// the library's planner (POST /v2/query, single and batch, plan included
// in every response), job status/cancel in the v2 shape and NDJSON/SSE
// progress streaming (GET /v2/jobs/{id}/events). The /v1 routes are
// shims over the same planner; /v2 adds batch execution and streaming.

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/internal/admission"
)

// toQueryAnswer maps a library Answer onto the wire form. Estimate
// members report whether their own plan step was sketch-served.
func toQueryAnswer(p *preparedQuery, ans holisticim.Answer) *QueryAnswer {
	qa := &QueryAnswer{
		Task:    string(p.task),
		Plan:    ans.Plan,
		Members: make([]QueryMember, 0, len(ans.Members)),
		TookMS:  float64(ans.Took) / float64(time.Millisecond),
	}
	for i, m := range ans.Members {
		qm := QueryMember{K: m.K, Seeds: m.Seeds}
		if m.Result != nil {
			qm.Result = toSelectResult(*m.Result)
		}
		if m.Estimate != nil {
			sketchServed := i < len(ans.Plan.Steps) && ans.Plan.Steps[i].Backend == holisticim.BackendSketch
			e := toEstimateResult(*m.Estimate, p.lambda, sketchServed)
			qm.Estimate = &e
		}
		qa.Members = append(qa.Members, qm)
	}
	return qa
}

// queryResponseOf renders a job snapshot in the v2 shape.
func queryResponseOf(snap JobSnapshot) QueryResponse {
	resp := QueryResponse{
		JobID:       snap.ID,
		State:       snap.State,
		SeedsDone:   snap.SeedsDone,
		Members:     snap.Members,
		MembersDone: snap.MembersDone,
		Plan:        snap.Plan,
	}
	if snap.Err != nil {
		resp.Error = snap.Err.Error()
	}
	switch payload := snap.Payload.(type) {
	case *QueryAnswer:
		resp.Answer = payload
	case *SelectResult:
		// A job created outside the query surface (sketch builds); expose
		// the raw result as a one-member answer so v2 pollers see it.
		if payload != nil {
			resp.Answer = &QueryAnswer{
				Task:    string(holisticim.TaskSelect),
				Members: []QueryMember{{Result: payload}},
				TookMS:  payload.TookMS,
			}
			if snap.Plan != nil {
				resp.Answer.Plan = *snap.Plan
			}
		}
	}
	return resp
}

// handleQuery serves POST /v2/query: plan → sketch-served plans answer
// synchronously with the plan inline → cache hit → async job on the
// shared worker pool, deduplicated and cached by Query.Fingerprint.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	var req QueryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	// Async estimates run on the cancellable job path, so they get the
	// job-sized budget cap rather than the tighter synchronous one.
	p, aerr := s.prepareQuery(req, s.cfg.MaxSelectRuns)
	if aerr != nil {
		s.writeAPIError(w, aerr)
		return
	}
	p.priority = admission.Demote(p.priority, r.Header.Get(admission.PriorityHeader))

	if p.plan.SketchOnly() {
		start := time.Now()
		ans, err := s.runPrepared(r.Context(), p)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		if p.task == holisticim.TaskSelect {
			s.sketchHits.Add(1)
		} else {
			s.sketchEstimates.Add(1)
		}
		s.observeBackend(p.planBackend(), time.Since(start).Seconds())
		qa := toQueryAnswer(p, ans)
		writeJSON(w, http.StatusOK, QueryResponse{
			State: StateDone, Sketch: true, Plan: &p.plan,
			SeedsDone: seedsDoneOf(qa), Members: len(qa.Members), MembersDone: len(qa.Members),
			Answer: qa,
		})
		return
	}

	if v, ok := s.cache.Get(p.key); ok {
		if qa := cachedAnswer(v, p); qa != nil {
			writeJSON(w, http.StatusOK, QueryResponse{
				State: StateDone, Cached: true, Plan: &p.plan,
				SeedsDone: seedsDoneOf(qa), Members: len(qa.Members), MembersDone: len(qa.Members),
				Answer: qa,
			})
			return
		}
	}

	job, created, err := s.submitQueryJob(p)
	if err != nil {
		s.writeSubmitError(w, err, p.priority)
		return
	}
	resp := queryResponseOf(job.Snapshot())
	resp.Deduped = !created
	writeJSON(w, http.StatusAccepted, resp)
}

// seedsDoneOf sums the selected seeds across a completed answer's
// members (estimate answers report zero).
func seedsDoneOf(qa *QueryAnswer) int {
	max := 0
	for _, m := range qa.Members {
		if m.Result != nil && len(m.Result.Seeds) > max {
			max = len(m.Result.Seeds)
		}
	}
	return max
}

// submitQueryJob enqueues a prepared query as an async job running the
// planner end to end (s.queryFn), reporting per-seed progress for select
// tasks and per-member progress for estimates, and caching the answer on
// success under the generation-fenced fingerprint key.
func (s *Server) submitQueryJob(p *preparedQuery) (*Job, bool, error) {
	q := p.q
	g := p.g
	task := p.task
	deadline := p.deadline
	key := p.key
	plan := p.plan
	members := len(plan.Steps)
	fn := func(ctx context.Context, report func(int)) (any, error) {
		if !deadline.IsZero() {
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, deadline)
			defer cancel()
		}
		q := q // per-job copy: callbacks must not leak into shared state
		if task == holisticim.TaskSelect {
			q.Options.Progress = func(seedIdx int, seed holisticim.NodeID, elapsed time.Duration) {
				report(seedIdx + 1)
			}
		} else {
			q.OnMember = func(member int, m holisticim.Member) {
				report(member + 1)
			}
		}
		start := time.Now()
		ans, err := s.queryFn(ctx, g, q)
		payload := toQueryAnswer(p, ans)
		if err != nil {
			if len(ans.Members) > 0 {
				// Retain the members completed (or partially selected)
				// before the stop for status polling.
				return payload, err
			}
			return nil, err
		}
		s.queries.Add(1)
		s.observeBackend(p.planBackend(), time.Since(start).Seconds())
		if task == holisticim.TaskSelect {
			s.selections.Add(1)
		}
		s.cache.Add(key, payload)
		return payload, nil
	}
	var memberKs []int
	if task == holisticim.TaskSelect {
		memberKs = p.ks
	}
	spec := JobSpec{
		Key: key, K: p.kmax, Members: members, MemberKs: memberKs, Plan: &plan,
		Priority:    p.priority,
		ExpectedRun: time.Duration(s.costs.Estimate(p.planBackend()) * float64(time.Second)),
		Deadline:    p.deadline,
	}
	return s.jobs.SubmitQuery(spec, fn)
}

func (s *Server) handleQueryJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, queryResponseOf(job.Snapshot()))
}

// handleCancelQueryJob is DELETE /v1/jobs/{id} in the v2 response shape.
func (s *Server) handleCancelQueryJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, accepted, ok := s.jobs.Cancel(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	status := http.StatusOK
	if !accepted {
		status = http.StatusConflict
	}
	writeJSON(w, status, queryResponseOf(job.Snapshot()))
}

// eventsPollInterval paces the event stream's progress snapshots.
const eventsPollInterval = 25 * time.Millisecond

// handleQueryEvents streams a job's progress as NDJSON (one QueryResponse
// per line) or, when the client asks with Accept: text/event-stream, as
// SSE `data:` events. A new event is emitted whenever the job's state or
// progress changes, and a final event carries the terminal state with
// the answer; the stream then ends. Polling GET /v2/jobs/{id} and this
// stream see the same snapshots.
func (s *Server) handleQueryEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	var last string
	emit := func(final bool) bool {
		resp := queryResponseOf(job.Snapshot())
		if !final {
			// Progress events stay light: the answer rides only the final
			// event, mirroring how a poller would read it once.
			resp.Answer = nil
		}
		b, err := json.Marshal(resp)
		if err != nil {
			return false
		}
		if string(b) == last {
			return true
		}
		last = string(b)
		if sse {
			if _, err := w.Write([]byte("data: ")); err != nil {
				return false
			}
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return false
		}
		if sse {
			if _, err := w.Write([]byte{'\n'}); err != nil {
				return false
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	// A job that is already terminal streams exactly one final event.
	select {
	case <-job.Done():
		emit(true)
		return
	default:
	}
	if !emit(false) {
		return
	}
	ticker := time.NewTicker(eventsPollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-job.Done():
			emit(true)
			return
		case <-ticker.C:
			if !emit(false) {
				return
			}
		}
	}
}
