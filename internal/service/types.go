// Package service implements the long-lived HTTP serving layer for the
// holisticim library: a registry of immutable, shareable graphs, an
// asynchronous job manager that runs seed selections off the request path
// with single-flight deduplication, and an LRU result cache keyed by a
// canonical fingerprint of (graph, algorithm, k, Options).
//
// The request flow for POST /v1/select is:
//
//	fingerprint → cache hit?  → respond synchronously (state "done")
//	            → in-flight?  → attach to the running job (deduped)
//	            → otherwise   → enqueue a new job, respond 202 with its id
//
// Selections — even the paper's scalable EaSyIM/OSIM, let alone TIM+/IMM
// whose RR-set indexes are expensive to build — are far too costly to run
// per request, so nothing in this package ever blocks an HTTP handler on
// a selection.
//
// Every job runs under its own cancellable context: DELETE /v1/jobs/{id}
// cancels a queued or running job (freeing its worker slot promptly,
// since every selector honors context cancellation), an optional
// timeout_ms request field bounds a job's wall-clock time, job status
// reports live seeds_done/k progress, and server shutdown cancels
// in-flight work instead of draining it.
package service

import (
	"github.com/holisticim/holisticim"
)

// Options mirrors holisticim.Options with JSON tags. The zero value picks
// the paper's defaults everywhere, exactly like the library type.
type Options struct {
	Model       string  `json:"model,omitempty"`
	PathLength  int     `json:"path_length,omitempty"`
	Lambda      float64 `json:"lambda,omitempty"`
	Epsilon     float64 `json:"epsilon,omitempty"`
	MCRuns      int     `json:"mc_runs,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	Workers     int     `json:"workers,omitempty"`
	TIMThetaCap int     `json:"tim_theta_cap,omitempty"`
}

func (o Options) toLib() holisticim.Options {
	return holisticim.Options{
		Model:       holisticim.ModelKind(o.Model),
		PathLength:  o.PathLength,
		Lambda:      o.Lambda,
		Epsilon:     o.Epsilon,
		MCRuns:      o.MCRuns,
		Seed:        o.Seed,
		Workers:     o.Workers,
		TIMThetaCap: o.TIMThetaCap,
	}
}

// Plan aliases the library's execution plan so serving types can embed
// it directly: the planner's decision is part of the wire format.
type Plan = holisticim.Plan

// ErrorBody is the payload of the uniform JSON error envelope. Code is a
// stable machine-readable slug derived from the HTTP status
// (bad_request, not_found, method_not_allowed, conflict, forbidden,
// too_many_requests, unavailable, internal); Message is human-readable.
// RequestID echoes the X-Request-ID the failed request carried, so an
// error a client reports can be matched to the server's log lines.
type ErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// ErrorResponse is the envelope every non-2xx response carries:
// {"error": {"code": "...", "message": "..."}}.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// SelectRequest asks for a k-seed selection on a registered graph.
// TimeoutMS, when positive, bounds the selection's wall-clock time: the
// job fails with a deadline error — retaining the partial seed prefix —
// once it expires. The timeout is a request-lifecycle knob, not part of
// the result identity, so it is excluded from the fingerprint (a request
// attaching to an in-flight job shares that job's timeout).
type SelectRequest struct {
	Graph     string  `json:"graph"`
	Algorithm string  `json:"algorithm"`
	K         int     `json:"k"`
	Options   Options `json:"options"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
}

// SelectResult is the JSON form of a selection. Partial marks a result
// cut short by cancellation or a timeout: Seeds holds the prefix chosen
// before the stop.
type SelectResult struct {
	Algorithm string             `json:"algorithm"`
	Seeds     []int32            `json:"seeds"`
	TookMS    float64            `json:"took_ms"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	Partial   bool               `json:"partial,omitempty"`
}

// JobState is the lifecycle of an async selection job.
type JobState string

// Job lifecycle states.
const (
	StatePending  JobState = "pending"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// SelectResponse answers POST /v1/select, GET /v1/jobs/{id} and DELETE
// /v1/jobs/{id}. A cache hit carries the result inline with State "done"
// and no JobID; otherwise JobID points at the (possibly shared)
// computation. While a job runs, SeedsDone/K report live per-seed
// progress; a canceled or timed-out job may still carry the partial
// result its selector returned.
type SelectResponse struct {
	JobID     string        `json:"job_id,omitempty"`
	State     JobState      `json:"state"`
	Cached    bool          `json:"cached,omitempty"`
	Deduped   bool          `json:"deduped,omitempty"`
	Sketch    bool          `json:"sketch,omitempty"` // served synchronously from an RR-sketch index
	SeedsDone int           `json:"seeds_done"`
	K         int           `json:"k,omitempty"`
	Error     string        `json:"error,omitempty"`
	Result    *SelectResult `json:"result,omitempty"`
}

// EstimateRequest asks for a Monte-Carlo spread estimate of a seed set.
type EstimateRequest struct {
	Graph   string  `json:"graph"`
	Seeds   []int32 `json:"seeds"`
	Options Options `json:"options"`
}

// EstimateResult is the JSON form of a spread estimate. The opinion
// fields are meaningful under the opinion-aware models (oi-ic, oi-lt,
// oc). Sketch marks an estimate answered from an opinion-weighted
// RR-sketch index instead of Monte Carlo — Runs then reports the RR-set
// count the estimate was computed over.
type EstimateResult struct {
	Sketch                 bool    `json:"sketch,omitempty"`
	Runs                   int     `json:"runs"`
	Spread                 float64 `json:"spread"`
	OpinionSpread          float64 `json:"opinion_spread"`
	PositiveSpread         float64 `json:"positive_spread"`
	NegativeSpread         float64 `json:"negative_spread"`
	EffectiveOpinionSpread float64 `json:"effective_opinion_spread"`
	Lambda                 float64 `json:"lambda"`
	TookMS                 float64 `json:"took_ms"`
}

// QueryRequest is the one typed request POST /v2/query serves: a task
// ("select" | "estimate", inferred when omitted), an algorithm or
// objective, one (K / Seeds) or many (Ks / SeedSets) members, Options
// and an optional per-job timeout. Batch members execute against shared
// state — one RR collection or sketch order serves every k ≤ max(ks).
type QueryRequest struct {
	Graph     string    `json:"graph"`
	Task      string    `json:"task,omitempty"`
	Algorithm string    `json:"algorithm,omitempty"`
	Objective string    `json:"objective,omitempty"`
	K         int       `json:"k,omitempty"`
	Ks        []int     `json:"ks,omitempty"`
	Seeds     []int32   `json:"seeds,omitempty"`
	SeedSets  [][]int32 `json:"seed_sets,omitempty"`
	Options   Options   `json:"options"`
	TimeoutMS int       `json:"timeout_ms,omitempty"`
}

// toQuery maps the wire request onto the library's Query.
func (r QueryRequest) toQuery() holisticim.Query {
	q := holisticim.Query{
		Task:      holisticim.Task(r.Task),
		Algorithm: holisticim.Algorithm(r.Algorithm),
		Objective: holisticim.Objective(r.Objective),
		K:         r.K,
		Ks:        r.Ks,
		Options:   r.Options.toLib(),
	}
	switch {
	case len(r.SeedSets) > 0:
		q.SeedSets = r.SeedSets
	case r.Seeds != nil:
		q.SeedSets = [][]int32{r.Seeds}
	}
	return q
}

// QueryMember is one completed member of a QueryAnswer: a selection for
// one k, or an estimate for one seed set.
type QueryMember struct {
	K        int             `json:"k,omitempty"`
	Seeds    []int32         `json:"seeds,omitempty"` // estimate input
	Result   *SelectResult   `json:"result,omitempty"`
	Estimate *EstimateResult `json:"estimate,omitempty"`
}

// QueryAnswer is the JSON form of a completed (possibly partial) query:
// the executed plan and one member per request member, in request order.
type QueryAnswer struct {
	Task    string        `json:"task"`
	Plan    Plan          `json:"plan"`
	Members []QueryMember `json:"members"`
	TookMS  float64       `json:"took_ms"`
}

// QueryResponse answers POST /v2/query, GET/DELETE /v2/jobs/{id} and
// each event of GET /v2/jobs/{id}/events. A sketch-served or cached
// query carries the Answer inline with state "done" and no JobID;
// otherwise JobID points at the (possibly shared) computation. While a
// job runs, SeedsDone and MembersDone/Members report live progress.
type QueryResponse struct {
	JobID       string       `json:"job_id,omitempty"`
	State       JobState     `json:"state"`
	Cached      bool         `json:"cached,omitempty"`
	Deduped     bool         `json:"deduped,omitempty"`
	Sketch      bool         `json:"sketch,omitempty"` // served synchronously from an RR-sketch index
	Plan        *Plan        `json:"plan,omitempty"`
	SeedsDone   int          `json:"seeds_done"`
	Members     int          `json:"members,omitempty"`
	MembersDone int          `json:"members_done"`
	Error       string       `json:"error,omitempty"`
	Answer      *QueryAnswer `json:"answer,omitempty"`
}

// toEstimateResult maps a library Estimate onto the wire form at the
// resolved λ.
func toEstimateResult(est holisticim.Estimate, lambda float64, sketch bool) EstimateResult {
	return EstimateResult{
		Sketch:                 sketch,
		Runs:                   est.Runs,
		Spread:                 est.Spread,
		OpinionSpread:          est.OpinionSpread,
		PositiveSpread:         est.PositiveSpread,
		NegativeSpread:         est.NegativeSpread,
		EffectiveOpinionSpread: est.EffectiveOpinionSpread(lambda),
		Lambda:                 lambda,
	}
}

// GraphInfo summarizes a registered graph for GET /v1/graphs.
type GraphInfo struct {
	Name        string `json:"name"`
	Nodes       int32  `json:"nodes"`
	Arcs        int64  `json:"arcs"`
	Source      string `json:"source"`
	MemoryBytes int64  `json:"memory_bytes"`
	// Fingerprint is the graph's 64-bit content hash (topology + model
	// parameters) in hex — the identity a cluster store manifest and
	// sketch snapshots pin artifacts to.
	Fingerprint string `json:"fingerprint"`
	// Version is the mutation-log version of the current snapshot: 0 for
	// a never-mutated graph, incremented by every applied edge batch
	// (POST /v1/graphs/{name}/edges). An operator Replace resets it — the
	// lineage restarts with the new content.
	Version uint64 `json:"version"`
}

// GraphStats extends GraphInfo with the Table-2 style statistics computed
// on demand by GET /v1/graphs/{name}.
type GraphStats struct {
	GraphInfo
	AvgOutDegree      float64 `json:"avg_out_degree"`
	MaxOutDegree      int32   `json:"max_out_degree"`
	MaxInDegree       int32   `json:"max_in_degree"`
	EffectiveDiameter float64 `json:"effective_diameter"`
	Reachable         float64 `json:"reachable"`
	MeanEdgeProb      float64 `json:"mean_edge_prob"`
}

// GraphSpec describes a graph to register via POST /v1/graphs: either a
// server-local file (Path) or a synthetic generator ("ba" or "rmat"),
// followed by optional edge-parameter and opinion assignment.
type GraphSpec struct {
	Name string `json:"name"`
	// Path loads an edge-list or binary graph file from the server's
	// filesystem (requires the server to allow path loading).
	Path string `json:"path,omitempty"`
	// Generator is "ba" (Barabási–Albert; Nodes, EdgesPerNode) or "rmat"
	// (R-MAT; Nodes, Arcs, Undirected).
	Generator    string `json:"generator,omitempty"`
	Nodes        int32  `json:"nodes,omitempty"`
	EdgesPerNode int    `json:"edges_per_node,omitempty"`
	Arcs         int64  `json:"arcs,omitempty"`
	Undirected   bool   `json:"undirected,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`

	// Prob sets a uniform influence probability p(u,v); WeightedCascade
	// sets p(u,v)=1/|In(v)| instead; Trivalency samples p from
	// {0.1,0.01,0.001}. At most one may be set; none keeps loaded values.
	Prob            *float64 `json:"prob,omitempty"`
	WeightedCascade bool     `json:"weighted_cascade,omitempty"`
	Trivalency      bool     `json:"trivalency,omitempty"`
	// Phi sets a uniform interaction probability ϕ(u,v).
	Phi *float64 `json:"phi,omitempty"`
	// Opinions samples node opinions: "uniform", "normal" or "polarized".
	// Interactions ϕ are also sampled unless Phi pins them.
	Opinions string `json:"opinions,omitempty"`
}

// effectiveEdgesPerNode is the BA attachment count the generator will
// actually use; the single source of truth for both the size pre-check
// and the build itself.
func (s GraphSpec) effectiveEdgesPerNode() int {
	if s.EdgesPerNode <= 0 {
		return 3
	}
	return s.EdgesPerNode
}

// effectiveArcs estimates the arc count the spec will materialize, for
// admission control: BA emits both directions of every attachment, and
// undirected R-MAT expands each sampled edge to two arcs.
func (s GraphSpec) effectiveArcs() int64 {
	switch {
	case s.Generator == "ba":
		return 2 * int64(s.Nodes) * int64(s.effectiveEdgesPerNode())
	case s.Generator == "rmat" && s.Undirected:
		return 2 * s.Arcs
	default:
		return s.Arcs
	}
}

// EdgeOpSpec is one edge operation of a mutation batch: "add" (the arc
// must be absent; omitted parameters default to zero), "remove" (must
// exist) or "reweight" (must exist; at least one parameter set, omitted
// ones keep their values). Parameters are pointers so a reweight can
// distinguish "set to zero" from "keep current".
type EdgeOpSpec struct {
	Op   string   `json:"op"`
	From int32    `json:"from"`
	To   int32    `json:"to"`
	P    *float64 `json:"p,omitempty"`
	Phi  *float64 `json:"phi,omitempty"`
	W    *float64 `json:"w,omitempty"`
}

// MutateRequest is the body of POST /v1/graphs/{name}/edges: a batch of
// edge operations applied atomically — either every op is valid and the
// graph advances one version, or the error names the first offending op
// and nothing changes. RebalanceLT re-derives w(u,v)=1/indeg(v) for
// every in-edge of each touched target after the batch.
type MutateRequest struct {
	Ops         []EdgeOpSpec `json:"ops"`
	RebalanceLT bool         `json:"rebalance_lt,omitempty"`
}

// MutateResponse reports an applied batch: the new mutation-log version,
// the new snapshot's shape, and the dirty nodes (targets of the batch's
// operations) that drive incremental sketch repair.
type MutateResponse struct {
	Graph   string  `json:"graph"`
	Version uint64  `json:"version"`
	Nodes   int32   `json:"nodes"`
	Arcs    int64   `json:"arcs"`
	Applied int     `json:"applied"`
	Dirty   []int32 `json:"dirty"`
	// RepairsScheduled counts the sketches a background incremental
	// repair was queued for.
	RepairsScheduled int `json:"repairs_scheduled"`
}

// SketchSpec asks POST /v1/sketches to build an RR-sketch index over a
// registered graph. The build runs as an async job on the shared worker
// pool; the resulting index is keyed by (graph, RR semantics of model,
// epsilon, seed) and serves the /v1/select fast path.
type SketchSpec struct {
	Graph string `json:"graph"`
	// Model picks the RR-set semantics via its family: "lt" and "oi-lt"
	// sample reverse live-edge walks, "oc" samples the same walks while
	// recording per-set root-opinion weights (serving opinion-aware
	// estimates and opinion-coverage selection), everything else
	// (default "ic") reverse IC worlds.
	Model   string  `json:"model,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"` // default 0.1
	Seed    uint64  `json:"seed,omitempty"`    // default 1
	BuildK  int     `json:"build_k,omitempty"` // default 50
	Workers int     `json:"workers,omitempty"` // default GOMAXPROCS
	// MaxSets caps the index size; clamped to the server's
	// MaxSketchSets either way.
	MaxSets int `json:"max_sets,omitempty"`
}

// SketchInfo summarizes a registered sketch for GET /v1/sketches.
type SketchInfo struct {
	ID          string  `json:"id"`
	Graph       string  `json:"graph"`
	Model       string  `json:"model"` // RR semantics: "ic", "lt" or "oc"
	Epsilon     float64 `json:"epsilon"`
	Seed        uint64  `json:"seed"`
	BuildK      int     `json:"build_k"`
	Sets        int     `json:"sets"`
	OrderLen    int     `json:"order_len"` // memoized greedy prefix
	Selects     int64   `json:"selects"`
	Extensions  int64   `json:"extensions"`
	MemoryBytes int64   `json:"memory_bytes"`
	// GraphVersion is the mutation-log version the sample is synchronized
	// to; compare against the graph's version to see repair lag. StaleSets
	// counts RR sets a hop-bounded repair deliberately left describing
	// older content, and Staleness is that count as a fraction of Sets —
	// both zero when the server runs exact repairs (the default).
	GraphVersion uint64  `json:"graph_version"`
	StaleSets    int     `json:"stale_sets"`
	Staleness    float64 `json:"staleness"`
	// GraphFingerprint is the content hash (hex) of the graph instance the
	// sample is currently synchronized to.
	GraphFingerprint string `json:"graph_fingerprint"`
}

// ClusterGraphInfo is one loaded graph as advertised by
// GET /v1/cluster/info: just the identity a router needs to decide
// whether this replica can serve the graph's traffic.
type ClusterGraphInfo struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	Version     uint64 `json:"version"`
}

// ClusterSketchInfo is one loaded sketch as advertised by
// GET /v1/cluster/info. GraphFingerprint pins the sample to the exact
// graph content it serves; Staleness reports hop-bounded repair debt.
type ClusterSketchInfo struct {
	ID               string  `json:"id"`
	Graph            string  `json:"graph"`
	Model            string  `json:"model"`
	Epsilon          float64 `json:"epsilon"`
	Seed             uint64  `json:"seed"`
	GraphFingerprint string  `json:"graph_fingerprint"`
	GraphVersion     uint64  `json:"graph_version"`
	Staleness        float64 `json:"staleness"`
}

// ClusterInfo is the self-description replicas serve on
// GET /v1/cluster/info: what is loaded (by fingerprint), whether the
// replica finished warm-loading, how far its store watcher has synced,
// and how much job-queue pressure it is under. Routers poll it for
// liveness and shed-aware routing.
type ClusterInfo struct {
	// Advertise is the address the replica wants routed traffic sent to
	// (the -advertise flag); empty when the operator did not set one.
	Advertise string `json:"advertise,omitempty"`
	Ready     bool   `json:"ready"`
	// ManifestVersion is the version of the last store manifest this
	// replica fully warm-loaded (0 when it is not watching a store).
	ManifestVersion uint64 `json:"manifest_version"`
	// QueueDepth / Running / Shed describe job-pool pressure: queued jobs,
	// jobs currently executing, and admissions rejected (queue-full or
	// past-deadline) since start.
	QueueDepth int                 `json:"queue_depth"`
	Running    int                 `json:"running"`
	Shed       int64               `json:"shed"`
	Graphs     []ClusterGraphInfo  `json:"graphs"`
	Sketches   []ClusterSketchInfo `json:"sketches"`
}

// ServerStats reports serving counters for GET /v1/stats.
type ServerStats struct {
	Graphs int `json:"graphs"`
	// QueriesRun counts /v2 query jobs run to completion (cache hits,
	// deduplicated submissions and synchronous sketch-served queries do
	// not count).
	QueriesRun    int64 `json:"queries_run"`
	CacheSize     int   `json:"cache_size"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	JobsSubmitted int64 `json:"jobs_submitted"`
	JobsDeduped   int64 `json:"jobs_deduped"`
	JobsCanceled  int64 `json:"jobs_canceled"`
	// JobsShed counts admissions rejected by load shedding: queue-full
	// (429) plus past-deadline (503) refusals and jobs dropped at dequeue
	// because their deadline expired while queued. QueueDepth and
	// JobsRunning snapshot the pool's current pressure.
	JobsShed    int64 `json:"jobs_shed"`
	QueueDepth  int   `json:"queue_depth"`
	JobsRunning int   `json:"jobs_running"`
	// QueueDepthByPriority breaks QueueDepth down by service class
	// (interactive / standard / batch); RequestsThrottled counts
	// requests refused by the per-client rate limiter (429s before any
	// job was considered) and RateClients the tracked client buckets.
	QueueDepthByPriority map[string]int `json:"queue_depth_by_priority,omitempty"`
	RequestsThrottled    int64          `json:"requests_throttled"`
	RateClients          int            `json:"rate_clients"`
	SelectionsRun        int64          `json:"selections_run"`
	// Sketch registry metrics: indexes held, RR sets across them, their
	// memory footprint, completed builds/loads, how many /v1/select
	// requests the sketch fast path answered synchronously and how many
	// /v1/estimate requests an opinion-weighted ("oc") sketch served
	// without Monte Carlo. GraphReplacements counts operator reloads that
	// rebound a graph name (each dropped the name's cached results and
	// rebound or evicted its sketches).
	Sketches           int   `json:"sketches"`
	SketchSets         int64 `json:"sketch_sets"`
	SketchMemoryBytes  int64 `json:"sketch_memory_bytes"`
	SketchBuilds       int64 `json:"sketch_builds"`
	SketchFastPathHits int64 `json:"sketch_fastpath_hits"`
	SketchEstimateHits int64 `json:"sketch_estimate_hits"`
	GraphReplacements  int64 `json:"graph_replacements"`
	// Live-graph metrics: applied edge batches, completed incremental
	// sketch repairs, RR sets resampled across them, and repairs that
	// failed (each failure evicts its sketch).
	GraphMutations       int64 `json:"graph_mutations"`
	SketchRepairs        int64 `json:"sketch_repairs"`
	SketchRepairedSets   int64 `json:"sketch_repaired_sets"`
	SketchRepairFailures int64 `json:"sketch_repair_failures"`
}
