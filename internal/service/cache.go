package service

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"
)

// Cache is a thread-safe LRU over completed results — v1 selection
// results and v2 query answers — keyed by the canonical request
// fingerprint. Selections are deterministic given
// the fingerprint (it includes the master seed), so entries only go
// stale when a graph name is rebound to different content — the server
// then drops that graph's entries via DropPrefix; nothing else ever
// invalidates.
type Cache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheItem
	items    map[string]*list.Element

	hits, misses, evictions atomic.Int64
}

type cacheItem struct {
	key string
	res any
}

// NewCache returns an LRU holding at most capacity results. capacity <= 0
// disables caching (every Get misses, Add is a no-op).
func NewCache(capacity int) *Cache {
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached result for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).res, true
}

// Add inserts (or refreshes) a result, evicting the least recently used
// entry when over capacity.
func (c *Cache) Add(key string, res any) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheItem{key: key, res: res})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheItem).key)
		c.evictions.Add(1)
	}
}

// DropPrefix removes every entry whose key starts with prefix, returning
// how many were dropped. Fingerprints lead with "graph=<name>;", so a
// graph replaced with different content can invalidate exactly the
// results computed against its old topology — the cache's "entries never
// go stale" premise is re-established by dropping, not by hoping.
func (c *Cache) DropPrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		item := el.Value.(*cacheItem)
		if strings.HasPrefix(item.key, prefix) {
			c.order.Remove(el)
			delete(c.items, item.key)
			dropped++
		}
		el = next
	}
	return dropped
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Hits returns the number of cache hits served.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of cache misses.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Evictions returns how many entries capacity pressure evicted
// (DropPrefix invalidations do not count).
func (c *Cache) Evictions() int64 { return c.evictions.Load() }
