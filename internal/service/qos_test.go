package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"

	"github.com/holisticim/holisticim/internal/admission"
)

// doRawJSON fires a request and returns the raw response plus the
// decoded error envelope (zero-valued on success bodies) — the
// rejection tests need headers, not just status codes.
func doRawJSON(t *testing.T, method, url string, body any, hdr map[string]string) (*http.Response, ErrorResponse) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env ErrorResponse
	_ = json.NewDecoder(resp.Body).Decode(&env)
	return resp, env
}

// assertRejection checks the full rejection contract every QoS refusal
// must honor: the expected status, an actionable integral Retry-After,
// and the uniform envelope with a machine code and the middleware-
// assigned request id (so a rejected client can still be correlated
// with server logs).
func assertRejection(t *testing.T, resp *http.Response, env ErrorResponse, wantStatus int, wantCode string) {
	t.Helper()
	if resp.StatusCode != wantStatus {
		t.Fatalf("status = %d, want %d (envelope %+v)", resp.StatusCode, wantStatus, env)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integral seconds >= 1", resp.Header.Get("Retry-After"))
	}
	if env.Error.Code != wantCode {
		t.Fatalf("error.code = %q, want %q", env.Error.Code, wantCode)
	}
	if env.Error.RequestID == "" {
		t.Fatal("error.request_id is empty; rejections must stay correlatable")
	}
	if env.Error.Message == "" {
		t.Fatal("error.message is empty")
	}
}

// blockWorkers parks every worker of the pool on a gate channel and
// returns once they are all occupied. Closing the gate releases them.
func blockWorkers(t *testing.T, s *Server, n int) chan struct{} {
	t.Helper()
	gate := make(chan struct{})
	for i := 0; i < n; i++ {
		_, created, err := s.jobs.Submit("qos-blocker-"+strconv.Itoa(i), 1,
			func(ctx context.Context, report func(int)) (any, error) {
				select {
				case <-gate:
				case <-ctx.Done():
				}
				return nil, nil
			})
		if err != nil || !created {
			t.Fatalf("blocker %d: created=%v err=%v", i, created, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, running := s.jobs.Depth(); running == n {
			return gate
		}
		if time.Now().After(deadline) {
			close(gate)
			t.Fatal("workers never picked up the blocker jobs")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRejectionEnvelopeRateLimit: a client past its token bucket gets a
// deterministic 429 carrying the full rejection contract.
func TestRejectionEnvelopeRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{RateRPS: 0.0001, RateBurst: 1})
	hdr := map[string]string{admission.ClientIDHeader: "alice"}
	est := EstimateRequest{Graph: "g", Seeds: []int32{0}, Options: Options{MCRuns: 10}}

	resp, _ := doRawJSON(t, "POST", ts.URL+"/v1/estimate", est, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request spent the burst token but got %d", resp.StatusCode)
	}
	resp, env := doRawJSON(t, "POST", ts.URL+"/v1/estimate", est, hdr)
	assertRejection(t, resp, env, http.StatusTooManyRequests, "too_many_requests")
}

// TestRejectionEnvelopeQueueFull: a submission refused by a full job
// queue answers 429 with the contract.
func TestRejectionEnvelopeQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	gate := blockWorkers(t, s, 1)
	defer close(gate)
	if _, created, err := s.jobs.Submit("qos-filler", 1,
		func(ctx context.Context, report func(int)) (any, error) { return nil, nil }); err != nil || !created {
		t.Fatalf("filler: created=%v err=%v", created, err)
	}

	resp, env := doRawJSON(t, "POST", ts.URL+"/v1/select",
		SelectRequest{Graph: "g", Algorithm: "greedy", K: 2, Options: Options{MCRuns: 10}}, nil)
	assertRejection(t, resp, env, http.StatusTooManyRequests, "too_many_requests")
}

// TestRejectionEnvelopeDeadlineShed: a request whose deadline cannot
// cover the cost model's predicted run time is shed up front with 503 —
// even on an idle pool, where queue wait alone would admit it.
func TestRejectionEnvelopeDeadlineShed(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Teach the cost model that cold-MC work runs ~30s; the request
	// allows 100ms, so admission refuses before wasting a worker on it.
	s.costs.Observe("mc", 30.0)

	resp, env := doRawJSON(t, "POST", ts.URL+"/v1/select",
		SelectRequest{Graph: "g", Algorithm: "greedy", K: 2,
			Options: Options{MCRuns: 10}, TimeoutMS: 100}, nil)
	assertRejection(t, resp, env, http.StatusServiceUnavailable, "unavailable")
}

// TestRejectionEnvelopeShutdown: submissions during a drain answer 503
// with the contract, so routers fail over with a retry hint instead of
// guessing.
func TestRejectionEnvelopeShutdown(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	resp, env := doRawJSON(t, "POST", ts.URL+"/v1/select",
		SelectRequest{Graph: "g", Algorithm: "greedy", K: 2, Options: Options{MCRuns: 10}}, nil)
	assertRejection(t, resp, env, http.StatusServiceUnavailable, "unavailable")
}

// TestOverloadInteractiveServedDuringBatchFlood is the PR's acceptance
// scenario: with the one worker busy and the queue saturated by batch
// MC jobs, sketch-backed interactive queries must still complete within
// their deadline (they never touch the queue), while further batch
// submissions are shed with Retry-After.
func TestOverloadInteractiveServedDuringBatchFlood(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 2})
	buildTestSketch(t, ts.URL, SketchSpec{Graph: "g", Epsilon: 0.3, Seed: 5, BuildK: 10})

	gate := blockWorkers(t, s, 1)
	defer close(gate)

	// Flood: distinct cold-MC selections until the queue overflows.
	sheds := 0
	for i := 0; i < 8; i++ {
		resp, env := doRawJSON(t, "POST", ts.URL+"/v1/select",
			SelectRequest{Graph: "g", Algorithm: "greedy", K: 2,
				Options: Options{MCRuns: 100 + i}}, nil)
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			assertRejection(t, resp, env, http.StatusTooManyRequests, "too_many_requests")
			sheds++
		default:
			t.Fatalf("batch submission %d: unexpected status %d (%+v)", i, resp.StatusCode, env)
		}
	}
	if sheds == 0 {
		t.Fatal("queue never overflowed; the flood did not saturate the pool")
	}
	if got := s.jobs.ShedCount(admission.Batch, ShedQueueFull); got < int64(sheds) {
		t.Fatalf("ShedCount(batch, queue_full) = %d, want >= %d", got, sheds)
	}

	// Interactive work during the flood: sketch-served, synchronous,
	// inside a deadline the queued batch backlog could never meet.
	const interactiveDeadline = 5 * time.Second
	for k := 3; k <= 5; k++ {
		start := time.Now()
		var sel SelectResponse
		code := doJSON(t, "POST", ts.URL+"/v1/select",
			SelectRequest{Graph: "g", Algorithm: "imm", K: k,
				Options: Options{Epsilon: 0.3, Seed: 5}}, &sel)
		elapsed := time.Since(start)
		if code != http.StatusOK || !sel.Sketch || sel.State != StateDone {
			t.Fatalf("interactive select k=%d under flood: code=%d %+v", k, code, sel)
		}
		if elapsed > interactiveDeadline {
			t.Fatalf("interactive select k=%d took %s under flood (deadline %s)",
				k, elapsed, interactiveDeadline)
		}
	}
}

// TestRateLimitClientIsolation: one client exhausting its bucket gets
// deterministic 429s while a second client's requests keep succeeding
// promptly — buckets are per client, not shared.
func TestRateLimitClientIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{RateRPS: 0.0001, RateBurst: 2})
	est := EstimateRequest{Graph: "g", Seeds: []int32{0}, Options: Options{MCRuns: 10}}
	aHdr := map[string]string{admission.ClientIDHeader: "noisy"}
	bHdr := map[string]string{admission.ClientIDHeader: "quiet"}

	for i := 0; i < 2; i++ {
		if resp, env := doRawJSON(t, "POST", ts.URL+"/v1/estimate", est, aHdr); resp.StatusCode != http.StatusOK {
			t.Fatalf("noisy request %d inside burst: %d (%+v)", i, resp.StatusCode, env)
		}
	}
	// Past the burst, every further request from the noisy client is a
	// deterministic 429 — no flapping.
	for i := 0; i < 3; i++ {
		resp, env := doRawJSON(t, "POST", ts.URL+"/v1/estimate", est, aHdr)
		assertRejection(t, resp, env, http.StatusTooManyRequests, "too_many_requests")
	}
	// The quiet client is untouched by the noisy one's refusals.
	for i := 0; i < 2; i++ {
		start := time.Now()
		resp, env := doRawJSON(t, "POST", ts.URL+"/v1/estimate", est, bHdr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("quiet request %d: %d (%+v)", i, resp.StatusCode, env)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("quiet request %d took %s; throttling leaked across clients", i, elapsed)
		}
	}
}

// TestPriorityHeaderDemotesOverWire: X-Priority can demote a request's
// derived class (interactive sketch work wished down to batch shares
// the batch Retry-After scope) but can never promote cold-MC work to
// the interactive lane.
func TestPriorityHeaderDemotesOverWire(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 8})
	gate := blockWorkers(t, s, 1)
	defer close(gate)

	// A cold-MC select wishing "interactive" must still queue as batch.
	resp, _ := doRawJSON(t, "POST", ts.URL+"/v1/select",
		SelectRequest{Graph: "g", Algorithm: "greedy", K: 2, Options: Options{MCRuns: 50}},
		map[string]string{admission.PriorityHeader: "interactive"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cold select status %d, want 202", resp.StatusCode)
	}
	if got := s.jobs.DepthByPriority(); got[admission.Batch] != 1 || got[admission.Interactive] != 0 {
		t.Fatalf("wish promoted a cold-MC job: depths %v", got)
	}

	// A heuristic select (interactive class) wishing "batch" queues batch.
	resp, _ = doRawJSON(t, "POST", ts.URL+"/v1/select",
		SelectRequest{Graph: "g", Algorithm: "degree", K: 2},
		map[string]string{admission.PriorityHeader: "batch"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("heuristic select status %d, want 202", resp.StatusCode)
	}
	if got := s.jobs.DepthByPriority(); got[admission.Batch] != 2 {
		t.Fatalf("batch wish not honored: depths %v", got)
	}
}
