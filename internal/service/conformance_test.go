package service

import (
	"net/http"
	"strings"
	"testing"
)

// TestRouteConformance enumerates every registered mux pattern and
// asserts it has at least one httptest case: adding a route without
// teaching this table fails CI, so no endpoint ships untested. Each case
// is fired against a live server and must answer with its expected
// status — never a 5xx and never the 404/405 fallbacks, which would mean
// the case no longer reaches its handler.
func TestRouteConformance(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// A guaranteed-valid mutation for the edges route: the first absent
	// arc of the test graph, found by scanning (the BA topology is not
	// otherwise pinned by this test).
	g, err := s.reg.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	mutFrom, mutTo := int32(-1), int32(-1)
findAbsent:
	for u := int32(0); u < g.NumNodes(); u++ {
		for v := int32(0); v < g.NumNodes(); v++ {
			if u != v && !g.HasEdge(u, v) {
				mutFrom, mutTo = u, v
				break findAbsent
			}
		}
	}
	if mutFrom < 0 {
		t.Fatal("test graph is complete; no absent edge to add")
	}
	mutP := 0.1

	type probe struct {
		body any
		want int
	}
	cases := map[string]probe{
		"GET /healthz":          {nil, http.StatusOK},
		"GET /readyz":           {nil, http.StatusOK},
		"GET /metrics":          {nil, http.StatusOK},
		"GET /v1/cluster/info":  {nil, http.StatusOK},
		"GET /v1/stats":         {nil, http.StatusOK},
		"GET /v1/graphs":        {nil, http.StatusOK},
		"POST /v1/graphs":       {GraphSpec{Name: "conf-ba", Generator: "ba", Nodes: 20, EdgesPerNode: 2}, http.StatusCreated},
		"GET /v1/graphs/{name}": {nil, http.StatusOK},
		"POST /v1/graphs/{name}/edges": {MutateRequest{Ops: []EdgeOpSpec{
			{Op: "add", From: mutFrom, To: mutTo, P: &mutP},
		}}, http.StatusOK},
		"GET /v1/sketches":         {nil, http.StatusOK},
		"POST /v1/sketches":        {SketchSpec{Graph: "g", Epsilon: 0.4, BuildK: 3}, http.StatusAccepted},
		"GET /v1/sketches/{id}":    {nil, http.StatusNotFound}, // unknown id still exercises the route
		"DELETE /v1/sketches/{id}": {nil, http.StatusNotFound},
		"POST /v1/select":          {SelectRequest{Graph: "g", Algorithm: "degree", K: 2}, http.StatusAccepted},
		"GET /v1/jobs/{id}":        {nil, http.StatusNotFound},
		"DELETE /v1/jobs/{id}":     {nil, http.StatusNotFound},
		"POST /v1/estimate":        {EstimateRequest{Graph: "g", Seeds: []int32{0}, Options: Options{MCRuns: 50}}, http.StatusOK},
		// k differs from the /v1/select case: the two surfaces share the
		// fingerprint cache, and a warm entry would answer 200.
		"POST /v2/query":           {QueryRequest{Graph: "g", Algorithm: "degree", K: 3}, http.StatusAccepted},
		"GET /v2/jobs/{id}":        {nil, http.StatusNotFound},
		"DELETE /v2/jobs/{id}":     {nil, http.StatusNotFound},
		"GET /v2/jobs/{id}/events": {nil, http.StatusNotFound},
	}
	// Pattern placeholders resolve to concrete request paths.
	fill := map[string]string{"{name}": "g", "{id}": "conformance-probe"}

	routes := s.Routes()
	if len(routes) == 0 {
		t.Fatal("server reports no routes")
	}
	covered := make(map[string]bool, len(cases))
	for _, pattern := range routes {
		pc, ok := cases[pattern]
		if !ok {
			t.Errorf("registered route %q has no conformance case — add one to this table", pattern)
			continue
		}
		covered[pattern] = true
		method, path, found := strings.Cut(pattern, " ")
		if !found {
			t.Errorf("malformed pattern %q", pattern)
			continue
		}
		for ph, v := range fill {
			path = strings.ReplaceAll(path, ph, v)
		}
		if code := doJSON(t, method, ts.URL+path, pc.body, nil); code != pc.want {
			t.Errorf("%s: status %d, want %d", pattern, code, pc.want)
		}
	}
	for pattern := range cases {
		if !covered[pattern] {
			t.Errorf("conformance case for %q matches no registered route (stale table?)", pattern)
		}
	}
}
