package service

import (
	"log/slog"
	"net/http"

	"github.com/holisticim/holisticim/internal/admission"
	"github.com/holisticim/holisticim/internal/obs"
)

// initObservability registers the server's metric families. Counters
// the serving layer already tracks in its own atomics (they also back
// /v1/stats) surface as scrape-time func metrics, so the two surfaces
// can never disagree; only latency distributions are new state.
func (s *Server) initObservability() {
	m := s.metrics

	// Graph registry.
	m.GaugeFunc("im_graphs", "Graphs currently registered.",
		func() float64 { return float64(s.reg.Len()) })
	m.CounterFunc("im_graph_replacements_total",
		"Graph names rebound to new content by operator reloads.",
		func() float64 { return float64(s.replacements.Load()) })
	m.CounterFunc("im_graph_mutations_total",
		"Edge mutation batches applied (POST /v1/graphs/{name}/edges).",
		func() float64 { return float64(s.mutations.Load()) })

	// Result cache.
	m.GaugeFunc("im_cache_entries", "Results held by the LRU cache.",
		func() float64 { return float64(s.cache.Len()) })
	m.CounterFunc("im_cache_hits_total", "Result-cache hits.",
		func() float64 { return float64(s.cache.Hits()) })
	m.CounterFunc("im_cache_misses_total", "Result-cache misses.",
		func() float64 { return float64(s.cache.Misses()) })
	m.CounterFunc("im_cache_evictions_total",
		"Results evicted from the LRU cache by capacity pressure.",
		func() float64 { return float64(s.cache.Evictions()) })

	// Job manager.
	m.CounterFunc("im_jobs_submitted_total", "Jobs accepted by the manager.",
		func() float64 { return float64(s.jobs.Submitted()) })
	m.CounterFunc("im_jobs_deduped_total",
		"Submissions that attached to an in-flight job.",
		func() float64 { return float64(s.jobs.Deduped()) })
	m.CounterFunc("im_jobs_canceled_total", "Jobs that reached the canceled state.",
		func() float64 { return float64(s.jobs.Canceled()) })
	m.CounterFunc("im_jobs_shed_total",
		"Submissions refused by load shedding (queue-full, past-deadline).",
		func() float64 { return float64(s.jobs.Shed()) })
	m.GaugeFunc("im_jobs_queue_depth", "Jobs queued awaiting a worker.",
		func() float64 { q, _ := s.jobs.Depth(); return float64(q) })
	m.GaugeFunc("im_jobs_running", "Jobs currently executing.",
		func() float64 { _, r := s.jobs.Depth(); return float64(r) })
	waitHist := m.Histogram("im_job_queue_wait_seconds",
		"Time jobs spent queued before a worker picked them up.", nil)
	runHist := m.Histogram("im_job_run_seconds",
		"Wall time of job executions (selections, builds, repairs).", nil)
	s.jobs.SetDurationObservers(waitHist.Observe, runHist.Observe)

	// Admission control & QoS. The labeled families are scrape-time
	// views over the manager's per-class counters, so /v1/stats and
	// /metrics can never disagree.
	depthVec := m.GaugeFuncVec("im_jobs_queue_depth_by_priority",
		"Jobs queued awaiting a worker, by service class.", "priority")
	shedVec := m.CounterFuncVec("im_jobs_shed_by_priority_total",
		"Load-shedding rejections by service class and reason.",
		"priority", "reason")
	for p := admission.Interactive; p < admission.Priority(admission.NumPriorities); p++ {
		p := p
		depthVec.Register(func() float64 {
			return float64(s.jobs.DepthByPriority()[p])
		}, p.String())
		for reason := ShedQueueFull; reason < ShedReason(NumShedReasons); reason++ {
			reason := reason
			shedVec.Register(func() float64 {
				return float64(s.jobs.ShedCount(p, reason))
			}, p.String(), reason.String())
		}
	}
	m.CounterFunc("im_admission_allowed_total",
		"Requests admitted by the per-client rate limiter.",
		func() float64 { return float64(s.limiter.Allowed()) })
	m.CounterFunc("im_admission_throttled_total",
		"Requests refused (429) by the per-client rate limiter.",
		func() float64 { return float64(s.limiter.Throttled()) })
	m.GaugeFunc("im_admission_clients",
		"Client buckets tracked by the rate limiter.",
		func() float64 { return float64(s.limiter.Clients()) })

	// Selections and queries.
	m.CounterFunc("im_selections_total", "Selections actually computed.",
		func() float64 { return float64(s.selections.Load()) })
	m.CounterFunc("im_queries_total", "/v2 query jobs run to completion.",
		func() float64 { return float64(s.queries.Load()) })
	s.queryDur = m.HistogramVec("im_query_duration_seconds",
		"End-to-end query latency in seconds, by serving backend.",
		nil, "backend")

	// Sketch registry and live repair.
	m.GaugeFunc("im_sketches", "RR-sketch indexes currently registered.",
		func() float64 { c, _, _, _ := s.sketches.Totals(); return float64(c) })
	m.GaugeFunc("im_sketch_sets", "RR sets across all registered sketches.",
		func() float64 { _, sets, _, _ := s.sketches.Totals(); return float64(sets) })
	m.GaugeFunc("im_sketch_memory_bytes", "Memory held by registered sketches.",
		func() float64 { _, _, b, _ := s.sketches.Totals(); return float64(b) })
	m.CounterFunc("im_sketch_builds_total", "Sketch builds and snapshot loads completed.",
		func() float64 { _, _, _, b := s.sketches.Totals(); return float64(b) })
	m.CounterFunc("im_sketch_fastpath_hits_total",
		"Select requests answered synchronously from a sketch.",
		func() float64 { return float64(s.sketchHits.Load()) })
	m.CounterFunc("im_sketch_estimate_hits_total",
		"Estimate requests served by an opinion-weighted sketch.",
		func() float64 { return float64(s.sketchEstimates.Load()) })
	m.CounterFunc("im_sketch_repairs_total", "Incremental sketch repairs completed.",
		func() float64 { r, _, _ := s.sketches.RepairTotals(); return float64(r) })
	m.CounterFunc("im_sketch_repaired_sets_total", "RR sets resampled across all repairs.",
		func() float64 { _, sets, _ := s.sketches.RepairTotals(); return float64(sets) })
	m.CounterFunc("im_sketch_repair_failures_total",
		"Repairs that failed (each failure evicts its sketch).",
		func() float64 { _, _, f := s.sketches.RepairTotals(); return float64(f) })
}

// planBackend is the latency label of a prepared query: the first plan
// step's backend ("" for a stepless plan, mapped to "unknown" by
// observeBackend).
func (p *preparedQuery) planBackend() string {
	if len(p.plan.Steps) == 0 {
		return ""
	}
	return string(p.plan.Steps[0].Backend)
}

// observeBackend records one completed query's latency under its
// serving backend ("" falls back to "unknown" so a malformed plan can
// never panic the label lookup). The same observation feeds the
// admission cost model, so deadline shedding predicts from exactly the
// durations im_query_duration_seconds reports.
func (s *Server) observeBackend(backend string, seconds float64) {
	if backend == "" {
		backend = "unknown"
	}
	s.queryDur.With(backend).Observe(seconds)
	s.costs.Observe(backend, seconds)
}

// Metrics exposes the server's registry so binaries can add their own
// process-level families next to the serving ones.
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Logger exposes the server's structured logger.
func (s *Server) Logger() *slog.Logger { return s.logger }

// handleMetrics serves GET /metrics in Prometheus text format 0.0.4.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.Handler().ServeHTTP(w, r)
}
