package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/live"
)

// Registry errors.
var (
	ErrGraphNotFound    = errors.New("service: graph not found")
	ErrGraphExists      = errors.New("service: graph already registered")
	ErrPathLoadDisabled = errors.New("service: loading server-local paths is disabled")
	ErrRegistryFull     = errors.New("service: graph registry full")
	// ErrGraphReplaced reports a mutation batch that lost a race against an
	// operator Replace: the lineage the batch was prepared for no longer
	// exists, so the batch is refused rather than applied to unrelated
	// content.
	ErrGraphReplaced = errors.New("service: graph was replaced concurrently")
)

// Registry holds named immutable graphs shared across requests. Graphs
// are loaded or generated once; the untrusted API (POST /v1/graphs)
// can never rebind a name, which is what makes the name a sound
// component of result-cache fingerprints. The operator-facing Replace
// and LoadFile paths MAY rebind — refreshing a dataset in place — and
// every rebind fires onReplace so the server can drop stale cache
// entries and rebind or evict the sketches pinned to the old instance.
type Registry struct {
	mu sync.RWMutex
	// maxGraphs caps registrations when positive. Enforced inside Add,
	// under the lock, so concurrent registrations cannot exceed it.
	maxGraphs int
	graphs    map[string]*regEntry
	// onReplace observes name rebinds (never first registrations). Called
	// outside the registry lock with the new graph already visible.
	onReplace func(name string, g *holisticim.Graph)
	// onMutate observes edge-batch mutations (Mutate). Unlike a Replace,
	// a mutation preserves the lineage — node count and version history —
	// so the hook carries the dirty-node set and new version, letting the
	// server repair its sketches incrementally instead of evicting them.
	// Called outside the registry lock with the new snapshot visible.
	onMutate func(name string, g *holisticim.Graph, version uint64, dirty []holisticim.NodeID)
}

type regEntry struct {
	g    *holisticim.Graph
	info GraphInfo
	// gen counts how many times this name has been rebound. Serving
	// layers fold it into cache and job-deduplication keys so work
	// computed against a replaced instance can never be served — or
	// attached to — after the replacement (an in-flight job completing
	// post-replace re-caches under its old generation, which no new
	// request can reach).
	gen uint64

	// live is the mutation lineage this entry belongs to, shared by every
	// snapshot a chain of Mutate calls produces for the name. nil until
	// the first mutation; reset to nil by Replace, which abandons the
	// lineage (versions restart from zero on the next mutation).
	live *liveState

	statsOnce sync.Once
	stats     GraphStats
}

// liveState serializes mutations for one graph lineage. Its mutex is
// held across the whole rebuild (validate → build new CSR → install), so
// concurrent Apply batches for the same name get consecutive versions
// while readers keep serving the previous immutable snapshot.
type liveState struct {
	mu sync.Mutex
	lv *live.Graph
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{graphs: make(map[string]*regEntry)}
}

// Add registers a prebuilt graph under name. source is a free-form
// provenance tag ("file:...", "generated:ba", ...).
func (r *Registry) Add(name string, g *holisticim.Graph, source string) error {
	if name == "" {
		return errors.New("service: empty graph name")
	}
	if g == nil {
		return errors.New("service: nil graph")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.graphs[name]; ok {
		return fmt.Errorf("%w: %q", ErrGraphExists, name)
	}
	if r.maxGraphs > 0 && len(r.graphs) >= r.maxGraphs {
		return fmt.Errorf("%w (%d graphs)", ErrRegistryFull, r.maxGraphs)
	}
	r.graphs[name] = newRegEntry(name, g, source)
	return nil
}

func newRegEntry(name string, g *holisticim.Graph, source string) *regEntry {
	return &regEntry{g: g, info: GraphInfo{
		Name:        name,
		Nodes:       g.NumNodes(),
		Arcs:        g.NumEdges(),
		Source:      source,
		MemoryBytes: g.MemoryFootprint(),
		Fingerprint: fmt.Sprintf("%016x", g.Fingerprint()),
	}}
}

// Replace registers g under name, rebinding the name if it is already
// taken (the memoized stats are recomputed for the new content). This is
// the operator-facing refresh path — reloading a dataset file in place —
// not reachable from POST /v1/graphs, whose names stay immutable. A
// rebind fires the onReplace hook so dependent state (result cache,
// sketch registry) is made consistent before the call returns.
func (r *Registry) Replace(name string, g *holisticim.Graph, source string) error {
	if name == "" {
		return errors.New("service: empty graph name")
	}
	if g == nil {
		return errors.New("service: nil graph")
	}
	r.mu.Lock()
	old, replaced := r.graphs[name]
	if !replaced && r.maxGraphs > 0 && len(r.graphs) >= r.maxGraphs {
		r.mu.Unlock()
		return fmt.Errorf("%w (%d graphs)", ErrRegistryFull, r.maxGraphs)
	}
	e := newRegEntry(name, g, source)
	if replaced {
		e.gen = old.gen + 1
	}
	r.graphs[name] = e
	hook := r.onReplace
	r.mu.Unlock()
	if replaced && hook != nil {
		hook(name, g)
	}
	return nil
}

// ReplaceSnapshot is Replace for store-loaded artifacts: the published
// snapshot carries the publisher's mutation-log version, which is
// recorded on the new entry so GET /v1/cluster/info advertises the
// lineage position of the loaded content instead of resetting to 0.
func (r *Registry) ReplaceSnapshot(name string, g *holisticim.Graph, source string, version uint64) error {
	if err := r.Replace(name, g, source); err != nil {
		return err
	}
	r.mu.Lock()
	if e, ok := r.graphs[name]; ok && e.g == g {
		e.info.Version = version
	}
	r.mu.Unlock()
	return nil
}

// liveStateOf returns the entry's mutation lineage, creating it on first
// use. The lineage is attached under the write lock so concurrent first
// mutations agree on one liveState.
func (r *Registry) liveStateOf(name string) (*liveState, *regEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.graphs[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	if e.live == nil {
		e.live = &liveState{}
	}
	return e.live, e, nil
}

// Mutate applies an edge batch to the named graph and installs the new
// immutable snapshot under the same name. Readers are never blocked: a
// request in flight keeps the snapshot it fetched, and the generation
// bump keys caches and jobs off the old content exactly as a Replace
// does. Unlike Replace, the mutation carries its lineage — the returned
// BatchResult's Version and Dirty set — through the onMutate hook, so
// dependent sketches can be repaired incrementally instead of evicted.
func (r *Registry) Mutate(ctx context.Context, name string, ops []live.EdgeOp, opts live.ApplyOptions) (live.BatchResult, error) {
	ls, e, err := r.liveStateOf(name)
	if err != nil {
		return live.BatchResult{}, err
	}

	// The lineage lock serializes whole batches; the registry lock is
	// only taken briefly around the final install.
	ls.mu.Lock()
	defer ls.mu.Unlock()

	// Re-read the entry: a Replace (or another mutation) may have rebound
	// the name while we waited. Another mutation keeps e.live == ls and we
	// simply continue from its snapshot; a Replace abandons the lineage
	// and the batch must be refused.
	r.mu.RLock()
	cur, ok := r.graphs[name]
	r.mu.RUnlock()
	if !ok {
		return live.BatchResult{}, fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	if cur.live != ls {
		return live.BatchResult{}, fmt.Errorf("%w: %q", ErrGraphReplaced, name)
	}
	e = cur
	if ls.lv == nil {
		// First mutation of the lineage: start the log at the current
		// snapshot (version 0).
		ls.lv = live.Wrap(e.g, live.Options{})
	}

	res, err := ls.lv.Apply(ctx, ops, opts)
	if err != nil {
		return live.BatchResult{}, err
	}
	newG := ls.lv.Graph()

	r.mu.Lock()
	if cur, ok := r.graphs[name]; !ok || cur != e || cur.live != ls {
		r.mu.Unlock()
		return live.BatchResult{}, fmt.Errorf("%w: %q", ErrGraphReplaced, name)
	}
	e2 := newRegEntry(name, newG, e.info.Source)
	e2.gen = e.gen + 1
	e2.live = ls
	e2.info.Version = res.Version
	r.graphs[name] = e2
	hook := r.onMutate
	r.mu.Unlock()
	if hook != nil {
		hook(name, newG, res.Version, res.Dirty)
	}
	return res, nil
}

// Get returns the named graph.
func (r *Registry) Get(name string) (*holisticim.Graph, error) {
	g, _, err := r.GetWithGeneration(name)
	return g, err
}

// GetWithGeneration returns the named graph together with its rebind
// generation, read under one lock acquisition: the pair is consistent
// even against a concurrent Replace, which is what lets a caller key
// derived work (cached selections, deduplicated jobs) to the exact
// instance it fetched.
func (r *Registry) GetWithGeneration(name string) (*holisticim.Graph, uint64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.graphs[name]
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	return e.g, e.gen, nil
}

// List returns the registered graphs' summaries, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]GraphInfo, 0, len(r.graphs))
	for _, e := range r.graphs {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Info returns the stored summary for the named graph without touching
// the graph itself.
func (r *Registry) Info(name string) (GraphInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.graphs[name]
	if !ok {
		return GraphInfo{}, fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	return e.info, nil
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.graphs)
}

// Stats returns the Table-2 style statistics for the named graph.
// Graphs are immutable, so the (potentially expensive — sampled BFS over
// the whole graph) computation runs once per graph and is memoized;
// samples and seed only influence that first computation.
func (r *Registry) Stats(name string, samples int, seed uint64) (GraphStats, error) {
	r.mu.RLock()
	e, ok := r.graphs[name]
	r.mu.RUnlock()
	if !ok {
		return GraphStats{}, fmt.Errorf("%w: %q", ErrGraphNotFound, name)
	}
	e.statsOnce.Do(func() {
		st := graph.ComputeStats(e.g, samples, seed)
		e.stats = GraphStats{
			GraphInfo:         e.info,
			AvgOutDegree:      st.AvgOutDegree,
			MaxOutDegree:      st.MaxOutDegree,
			MaxInDegree:       st.MaxInDegree,
			EffectiveDiameter: st.EffectiveDiameter,
			Reachable:         st.Reachable,
			MeanEdgeProb:      graph.MeanEdgeProb(e.g),
		}
	})
	return e.stats, nil
}

// readGraphFile loads an edge-list or binary graph file, sniffing the
// binary magic so both formats load transparently.
func readGraphFile(path string) (*holisticim.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("service: open graph file: %w", err)
	}
	defer f.Close()
	var g *holisticim.Graph
	magic := make([]byte, 4)
	if n, _ := f.Read(magic); n == 4 && string(magic) == "HIMG" {
		if _, err := f.Seek(0, 0); err != nil {
			return nil, err
		}
		g, err = holisticim.ReadBinaryGraph(f)
	} else {
		if _, err := f.Seek(0, 0); err != nil {
			return nil, err
		}
		g, err = holisticim.ReadEdgeList(f)
	}
	if err != nil {
		return nil, fmt.Errorf("service: read %s: %w", path, err)
	}
	return g, nil
}

// LoadFile registers a graph read from an edge-list or binary file. A
// name that is already registered is REBOUND to the freshly read content
// (Replace semantics): re-running the operator's load path refreshes the
// dataset, and the replacement hook keeps caches and sketches honest.
func (r *Registry) LoadFile(name, path string) error {
	g, err := readGraphFile(path)
	if err != nil {
		return err
	}
	return r.Replace(name, g, "file:"+path)
}

// Build registers a graph described by spec. allowPaths gates file
// loading (POST /v1/graphs from untrusted clients should not be able to
// read the server's filesystem).
func (r *Registry) Build(spec GraphSpec, allowPaths bool) error {
	if spec.Name == "" {
		return errors.New("service: graph spec needs a name")
	}
	var g *holisticim.Graph
	switch {
	case spec.Path != "" && spec.Generator != "":
		return errors.New("service: graph spec sets both path and generator")
	case spec.Path != "":
		if !allowPaths {
			return ErrPathLoadDisabled
		}
		var err error
		if g, err = readGraphFile(spec.Path); err != nil {
			return err
		}
	case spec.Generator == "ba":
		if spec.Nodes <= 0 {
			return errors.New("service: ba generator needs nodes > 0")
		}
		g = holisticim.GenerateBA(spec.Nodes, spec.effectiveEdgesPerNode(), seedOr1(spec.Seed))
	case spec.Generator == "rmat":
		if spec.Nodes <= 0 || spec.Arcs <= 0 {
			return errors.New("service: rmat generator needs nodes > 0 and arcs > 0")
		}
		g = holisticim.GenerateRMAT(spec.Nodes, spec.Arcs, spec.Undirected, seedOr1(spec.Seed))
	case spec.Generator != "":
		return fmt.Errorf("service: unknown generator %q (want ba or rmat)", spec.Generator)
	default:
		return errors.New("service: graph spec needs a path or a generator")
	}

	if err := applyParams(g, spec); err != nil {
		return err
	}
	source := "generated:" + spec.Generator
	if spec.Path != "" {
		source = "file:" + spec.Path
	}
	return r.Add(spec.Name, g, source)
}

func applyParams(g *holisticim.Graph, spec GraphSpec) error {
	set := 0
	if spec.Prob != nil {
		set++
	}
	if spec.WeightedCascade {
		set++
	}
	if spec.Trivalency {
		set++
	}
	if set > 1 {
		return errors.New("service: at most one of prob, weighted_cascade, trivalency")
	}
	switch {
	case spec.Prob != nil:
		if *spec.Prob < 0 || *spec.Prob > 1 {
			return fmt.Errorf("service: prob %v out of [0,1]", *spec.Prob)
		}
		g.SetUniformProb(*spec.Prob)
	case spec.WeightedCascade:
		g.SetWeightedCascadeProb()
	case spec.Trivalency:
		g.SetTrivalencyProb(nil, seedOr1(spec.Seed)+1)
	}
	if spec.Phi != nil {
		if *spec.Phi < 0 || *spec.Phi > 1 {
			return fmt.Errorf("service: phi %v out of [0,1]", *spec.Phi)
		}
		g.SetUniformPhi(*spec.Phi)
	}
	if spec.Opinions != "" {
		var dist holisticim.OpinionDistribution
		switch spec.Opinions {
		case "uniform":
			dist = holisticim.OpinionUniform
		case "normal":
			dist = holisticim.OpinionNormal
		case "polarized":
			dist = holisticim.OpinionPolarized
		default:
			return fmt.Errorf("service: unknown opinion distribution %q", spec.Opinions)
		}
		holisticim.AssignOpinions(g, dist, seedOr1(spec.Seed)+2)
		if spec.Phi == nil {
			holisticim.AssignInteractions(g, seedOr1(spec.Seed)+3)
		}
	}
	return nil
}

func seedOr1(s uint64) uint64 {
	if s == 0 {
		return 1
	}
	return s
}
