package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/holisticim/holisticim"
)

func pollQueryJob(t *testing.T, base, id string) QueryResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st QueryResponse
		if code := doJSON(t, "GET", base+"/v2/jobs/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("GET /v2/jobs/%s: status %d", id, code)
		}
		if st.State == StateDone || st.State == StateFailed || st.State == StateCanceled {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQuerySelectSingle drives a one-member select through /v2/query:
// plan in the 202, answer with plan on completion, cache hit on repeat —
// and the same fingerprint serves the v1 surface.
func TestQuerySelectSingle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := QueryRequest{Graph: "g", Algorithm: "degree", K: 5}

	var first QueryResponse
	if code := doJSON(t, "POST", ts.URL+"/v2/query", req, &first); code != http.StatusAccepted {
		t.Fatalf("POST /v2/query status %d (%+v)", code, first)
	}
	if first.JobID == "" || first.Plan == nil || len(first.Plan.Steps) != 1 {
		t.Fatalf("202 must carry the job id and plan: %+v", first)
	}
	if first.Plan.Steps[0].Backend != holisticim.BackendHeuristic || first.Plan.Steps[0].Reason == "" {
		t.Fatalf("plan step %+v", first.Plan.Steps[0])
	}
	done := pollQueryJob(t, ts.URL, first.JobID)
	if done.State != StateDone || done.Answer == nil || len(done.Answer.Members) != 1 {
		t.Fatalf("job result %+v", done)
	}
	m := done.Answer.Members[0]
	if m.K != 5 || m.Result == nil || len(m.Result.Seeds) != 5 {
		t.Fatalf("member %+v", m)
	}
	if done.Members != 1 || done.MembersDone != 1 {
		t.Fatalf("member progress %+v", done)
	}
	if got := s.Stats().QueriesRun; got != 1 {
		t.Fatalf("QueriesRun = %d", got)
	}

	// Repeat: cached, with the answer inline.
	var second QueryResponse
	if code := doJSON(t, "POST", ts.URL+"/v2/query", req, &second); code != http.StatusOK || !second.Cached {
		t.Fatalf("repeat POST: status %d %+v", code, second)
	}
	if second.Answer == nil || fmt.Sprint(second.Answer.Members[0].Result.Seeds) != fmt.Sprint(m.Result.Seeds) {
		t.Fatalf("cached answer %+v", second.Answer)
	}

	// The v1 surface shares the cache entry: an equivalent /v1/select is
	// answered without a new job or computation.
	var v1 SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select",
		SelectRequest{Graph: "g", Algorithm: "degree", K: 5}, &v1); code != http.StatusOK || !v1.Cached {
		t.Fatalf("v1 request missed the shared cache: status %d %+v", code, v1)
	}
	if fmt.Sprint(v1.Result.Seeds) != fmt.Sprint(m.Result.Seeds) {
		t.Fatalf("v1 cached seeds %v != v2 %v", v1.Result.Seeds, m.Result.Seeds)
	}
	if got := s.Stats().QueriesRun; got != 1 {
		t.Fatalf("QueriesRun = %d after cache hits, want 1", got)
	}
}

// TestQueryBatchSelect: a batch of k values completes as one job whose
// members keep the memoized-greedy prefix invariant, in request order.
func TestQueryBatchSelect(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := QueryRequest{Graph: "g", Algorithm: "degree", Ks: []int{8, 3, 5}}
	var resp QueryResponse
	if code := doJSON(t, "POST", ts.URL+"/v2/query", req, &resp); code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	if resp.Members != 3 {
		t.Fatalf("202 members %d", resp.Members)
	}
	done := pollQueryJob(t, ts.URL, resp.JobID)
	if done.State != StateDone || len(done.Answer.Members) != 3 || done.MembersDone != 3 {
		t.Fatalf("batch result %+v", done)
	}
	if st := done.Answer.Plan.Steps[0]; st.Shared == "" {
		t.Fatalf("batch plan should name shared state: %+v", st)
	}
	byK := map[int][]int32{}
	for i, want := range []int{8, 3, 5} {
		m := done.Answer.Members[i]
		if m.K != want || m.Result == nil || len(m.Result.Seeds) != want {
			t.Fatalf("member %d: %+v", i, m)
		}
		byK[m.K] = m.Result.Seeds
	}
	for _, k := range []int{3, 5} {
		for i, s := range byK[k] {
			if s != byK[8][i] {
				t.Fatalf("k=%d member not a prefix of k=8 at seed %d", k, i)
			}
		}
	}
	if got := s.SelectionsRun(); got != 1 {
		t.Fatalf("batch ran %d selections, want 1 shared run", got)
	}
}

// TestQueryEstimateBatch: estimate batches infer the task from
// seed_sets, share one model, report per-member progress and cache the
// whole answer.
func TestQueryEstimateBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := QueryRequest{Graph: "g", SeedSets: [][]int32{{0, 1}, {2, 3}, {4}},
		Options: Options{MCRuns: 100, Seed: 4}}
	var resp QueryResponse
	if code := doJSON(t, "POST", ts.URL+"/v2/query", req, &resp); code != http.StatusAccepted {
		t.Fatalf("POST status %d (%+v)", code, resp)
	}
	done := pollQueryJob(t, ts.URL, resp.JobID)
	if done.State != StateDone || done.Answer == nil || done.Answer.Task != "estimate" {
		t.Fatalf("estimate job %+v", done)
	}
	if len(done.Answer.Members) != 3 || done.MembersDone != 3 {
		t.Fatalf("members %+v", done.Answer.Members)
	}
	for i, m := range done.Answer.Members {
		if m.Estimate == nil || m.Estimate.Runs != 100 || m.Estimate.Spread <= 0 {
			t.Fatalf("member %d estimate %+v", i, m.Estimate)
		}
	}
	var second QueryResponse
	if code := doJSON(t, "POST", ts.URL+"/v2/query", req, &second); code != http.StatusOK || !second.Cached {
		t.Fatalf("repeat estimate not cached: %d %+v", code, second)
	}
}

// TestQueryCacheIgnoresLifecycleFields: two queries differing only in
// request-lifecycle fields (timeout_ms) share one cache entry — the
// fingerprint-hygiene contract at the service boundary.
func TestQueryCacheIgnoresLifecycleFields(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	first := QueryRequest{Graph: "g", Algorithm: "degree", Ks: []int{2, 4}}
	var resp QueryResponse
	if code := doJSON(t, "POST", ts.URL+"/v2/query", first, &resp); code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	pollQueryJob(t, ts.URL, resp.JobID)

	withTimeout := first
	withTimeout.TimeoutMS = 60_000
	var second QueryResponse
	if code := doJSON(t, "POST", ts.URL+"/v2/query", withTimeout, &second); code != http.StatusOK || !second.Cached {
		t.Fatalf("timeout_ms split the cache key: status %d %+v", code, second)
	}
	if got := s.SelectionsRun(); got != 1 {
		t.Fatalf("SelectionsRun = %d, want 1", got)
	}
}

// TestQueryValidation: the planner's rejections surface as 400s in the
// uniform error envelope; unknown graphs are 404s.
func TestQueryValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxQueryMembers: 4})
	cases := []struct {
		name string
		req  QueryRequest
		want int
		code string
	}{
		{"unknown graph", QueryRequest{Graph: "nope", Algorithm: "degree", K: 2}, http.StatusNotFound, "not_found"},
		{"unknown algorithm", QueryRequest{Graph: "g", Algorithm: "quantum", K: 2}, http.StatusBadRequest, "bad_request"},
		{"zero k", QueryRequest{Graph: "g", Algorithm: "degree"}, http.StatusBadRequest, "bad_request"},
		{"bad batch member", QueryRequest{Graph: "g", Algorithm: "degree", Ks: []int{2, 0}}, http.StatusBadRequest, "bad_request"},
		{"oversized batch", QueryRequest{Graph: "g", Algorithm: "degree", Ks: []int{1, 2, 3, 4, 5}}, http.StatusBadRequest, "bad_request"},
		{"bad task", QueryRequest{Graph: "g", Task: "transmogrify", Algorithm: "degree", K: 2}, http.StatusBadRequest, "bad_request"},
		{"bad model", QueryRequest{Graph: "g", Algorithm: "degree", K: 2, Options: Options{Model: "warp"}}, http.StatusBadRequest, "bad_request"},
		{"empty seed set", QueryRequest{Graph: "g", Task: "estimate", SeedSets: [][]int32{{}}}, http.StatusBadRequest, "bad_request"},
		{"seed out of range", QueryRequest{Graph: "g", SeedSets: [][]int32{{999}}}, http.StatusBadRequest, "bad_request"},
		{"negative timeout", QueryRequest{Graph: "g", Algorithm: "degree", K: 2, TimeoutMS: -1}, http.StatusBadRequest, "bad_request"},
		{"runs over cap", QueryRequest{Graph: "g", Algorithm: "greedy", K: 2, Options: Options{MCRuns: 2_000_000}}, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		var out ErrorResponse
		if code := doJSON(t, "POST", ts.URL+"/v2/query", tc.req, &out); code != tc.want {
			t.Errorf("%s: status %d, want %d (%+v)", tc.name, code, tc.want, out)
		} else if out.Error.Code != tc.code || out.Error.Message == "" {
			t.Errorf("%s: envelope %+v, want code %q", tc.name, out, tc.code)
		}
	}
}

// TestErrorEnvelopeAndMethodNotAllowed: every route answers method
// mismatches with 405 + Allow and unknown paths with 404, both in the
// shared JSON envelope.
func TestErrorEnvelopeAndMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/healthz", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, http.MethodGet) {
		t.Fatalf("405 Allow header %q does not list GET", allow)
	}
	var env ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("405 body is not the JSON envelope: %v", err)
	}
	if env.Error.Code != "method_not_allowed" || env.Error.Message == "" {
		t.Fatalf("405 envelope %+v", env)
	}

	var env404 ErrorResponse
	if code := doJSON(t, "GET", ts.URL+"/v9/nothing", nil, &env404); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d", code)
	}
	if env404.Error.Code != "not_found" || env404.Error.Message == "" {
		t.Fatalf("404 envelope %+v", env404)
	}

	// A mismatched verb on a parameterized route: GET-only job routes
	// reject PUT with the verbs that do exist there.
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/jobs/zzz", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /v1/jobs/{id} status %d, want 405", resp.StatusCode)
	}
	allow := resp.Header.Get("Allow")
	if !strings.Contains(allow, http.MethodGet) || !strings.Contains(allow, http.MethodDelete) {
		t.Fatalf("Allow %q should list GET and DELETE", allow)
	}
}

// TestQueryEventsStream: GET /v2/jobs/{id}/events streams NDJSON
// progress snapshots while the job runs and a final event carrying the
// answer, then closes.
func TestQueryEventsStream(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	s.queryFn = func(ctx context.Context, g *holisticim.Graph, q holisticim.Query) (holisticim.Answer, error) {
		for i := 0; i < 3; i++ {
			if q.Options.Progress != nil {
				q.Options.Progress(i, int32(i), 0)
			}
		}
		<-release
		res := holisticim.Result{Algorithm: "stub", Seeds: []int32{0, 1, 2}}
		return holisticim.Answer{Members: []holisticim.Member{{K: 3, Result: &res}}}, nil
	}

	var resp QueryResponse
	if code := doJSON(t, "POST", ts.URL+"/v2/query",
		QueryRequest{Graph: "g", Algorithm: "degree", K: 3}, &resp); code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}

	stream, err := http.Get(ts.URL + "/v2/jobs/" + resp.JobID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	rd := bufio.NewReader(stream.Body)
	var events []QueryResponse
	sawRunning := false
	for {
		line, err := rd.ReadString('\n')
		if line != "" {
			var ev QueryResponse
			if jerr := json.Unmarshal([]byte(line), &ev); jerr != nil {
				t.Fatalf("bad event line %q: %v", line, jerr)
			}
			events = append(events, ev)
			if ev.State == StateRunning && ev.SeedsDone == 3 && !sawRunning {
				sawRunning = true
				close(release) // let the job finish once progress was observed
			}
		}
		if err != nil {
			break // EOF once the final event is emitted
		}
	}
	if !sawRunning {
		t.Fatalf("never observed a running progress event: %+v", events)
	}
	last := events[len(events)-1]
	if last.State != StateDone || last.Answer == nil || len(last.Answer.Members) != 1 {
		t.Fatalf("final event %+v", last)
	}
	if fmt.Sprint(last.Answer.Members[0].Result.Seeds) != "[0 1 2]" {
		t.Fatalf("final answer %+v", last.Answer.Members[0])
	}

	// A terminal job streams exactly one final event — SSE framing on
	// request.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v2/jobs/"+resp.JobID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	srd := bufio.NewReader(sresp.Body)
	var dataLines []string
	for {
		line, err := srd.ReadString('\n')
		if strings.HasPrefix(line, "data: ") {
			dataLines = append(dataLines, strings.TrimPrefix(line, "data: "))
		}
		if err != nil {
			break
		}
	}
	if len(dataLines) != 1 {
		t.Fatalf("terminal job streamed %d events, want 1", len(dataLines))
	}
	var final QueryResponse
	if err := json.Unmarshal([]byte(dataLines[0]), &final); err != nil || final.State != StateDone {
		t.Fatalf("SSE final event %q (%v)", dataLines[0], err)
	}

	// Unknown job ids 404 before any stream starts.
	if code := doJSON(t, "GET", ts.URL+"/v2/jobs/zzz/events", nil, &ErrorResponse{}); code != http.StatusNotFound {
		t.Fatalf("events for unknown job: status %d", code)
	}
}

// TestQuerySketchSync: a RIS-family query whose key matches a registered
// sketch — single or batch — is answered synchronously with the plan,
// sketch-flagged, and keeps the prefix invariant across batch members.
func TestQuerySketchSync(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	buildTestSketch(t, ts.URL, SketchSpec{Graph: "g", Epsilon: 0.3, Seed: 5, BuildK: 10})

	var resp QueryResponse
	req := QueryRequest{Graph: "g", Algorithm: "imm", Ks: []int{3, 7},
		Options: Options{Epsilon: 0.3, Seed: 5}}
	if code := doJSON(t, "POST", ts.URL+"/v2/query", req, &resp); code != http.StatusOK {
		t.Fatalf("sketch query status %d (%+v)", code, resp)
	}
	if !resp.Sketch || resp.State != StateDone || resp.Answer == nil {
		t.Fatalf("sketch response %+v", resp)
	}
	if resp.Plan == nil || !resp.Plan.SketchOnly() {
		t.Fatalf("plan %+v", resp.Plan)
	}
	ms := resp.Answer.Members
	if len(ms) != 2 || len(ms[0].Result.Seeds) != 3 || len(ms[1].Result.Seeds) != 7 {
		t.Fatalf("members %+v", ms)
	}
	for i, s := range ms[0].Result.Seeds {
		if s != ms[1].Result.Seeds[i] {
			t.Fatalf("batch member not a prefix at seed %d", i)
		}
	}
	if got := s.Stats().SketchFastPathHits; got != 1 {
		t.Fatalf("sketch hits %d, want 1", got)
	}
	if got := s.SelectionsRun(); got != 0 {
		t.Fatalf("sketch-served query ran %d selection jobs", got)
	}
}

// TestQueryJobCancel: DELETE /v2/jobs/{id} cancels in the v2 shape.
func TestQueryJobCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	release := make(chan struct{})
	defer close(release)
	s.queryFn = func(ctx context.Context, g *holisticim.Graph, q holisticim.Query) (holisticim.Answer, error) {
		select {
		case <-ctx.Done():
		case <-release:
		}
		return holisticim.Answer{}, fmt.Errorf("stub interrupted: %w", context.Canceled)
	}
	var resp QueryResponse
	if code := doJSON(t, "POST", ts.URL+"/v2/query",
		QueryRequest{Graph: "g", Algorithm: "degree", K: 3}, &resp); code != http.StatusAccepted {
		t.Fatalf("POST status %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st QueryResponse
		doJSON(t, "GET", ts.URL+"/v2/jobs/"+resp.JobID, nil, &st)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	var del QueryResponse
	if code := doJSON(t, "DELETE", ts.URL+"/v2/jobs/"+resp.JobID, nil, &del); code != http.StatusOK {
		t.Fatalf("DELETE status %d", code)
	}
	final := pollQueryJob(t, ts.URL, resp.JobID)
	if final.State != StateCanceled {
		t.Fatalf("state %q after cancel", final.State)
	}
}
