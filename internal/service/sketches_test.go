package service

import (
	"net/http"
	"testing"
)

// buildTestSketch drives POST /v1/sketches to completion and returns the
// listed sketch.
func buildTestSketch(t *testing.T, ts string, spec SketchSpec) SketchInfo {
	t.Helper()
	var resp SelectResponse
	if code := doJSON(t, "POST", ts+"/v1/sketches", spec, &resp); code != http.StatusAccepted {
		t.Fatalf("POST sketches status %d (%+v)", code, resp)
	}
	done := pollJob(t, ts, resp.JobID)
	if done.State != StateDone || done.Result == nil || done.Result.Algorithm != "sketch-build" {
		t.Fatalf("sketch build job: %+v", done)
	}
	if done.Result.Metrics["sets"] == 0 {
		t.Fatalf("sketch build reported no sets: %+v", done.Result)
	}
	var list struct {
		Sketches []SketchInfo `json:"sketches"`
	}
	if code := doJSON(t, "GET", ts+"/v1/sketches", nil, &list); code != http.StatusOK {
		t.Fatalf("GET sketches status %d", code)
	}
	for _, s := range list.Sketches {
		if s.Graph == spec.Graph {
			return s
		}
	}
	t.Fatalf("built sketch not listed: %+v", list)
	return SketchInfo{}
}

// TestSketchLifecycle drives build → list → fast-path select → stats →
// evict end to end.
func TestSketchLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	info := buildTestSketch(t, ts.URL, SketchSpec{Graph: "g", Epsilon: 0.3, Seed: 5, BuildK: 10})
	if info.Model != "ic" || info.Epsilon != 0.3 || info.Seed != 5 || info.Sets == 0 {
		t.Fatalf("sketch info: %+v", info)
	}

	// GET by id.
	var one SketchInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/sketches/"+info.ID, nil, &one); code != http.StatusOK {
		t.Fatalf("GET sketch %q status %d", info.ID, code)
	}

	// A matching RIS-family select is served synchronously by the index.
	var sel SelectResponse
	req := SelectRequest{Graph: "g", Algorithm: "imm", K: 7, Options: Options{Epsilon: 0.3, Seed: 5}}
	if code := doJSON(t, "POST", ts.URL+"/v1/select", req, &sel); code != http.StatusOK {
		t.Fatalf("fast-path select status %d (%+v)", code, sel)
	}
	if !sel.Sketch || sel.State != StateDone || sel.Result == nil || len(sel.Result.Seeds) != 7 {
		t.Fatalf("fast-path response: %+v", sel)
	}
	if sel.Result.Algorithm != "RR-sketch" {
		t.Fatalf("fast-path algorithm %q", sel.Result.Algorithm)
	}
	// TIM+ rides the same index; repeated ks are memoized.
	req.Algorithm = "tim+"
	if code := doJSON(t, "POST", ts.URL+"/v1/select", req, &sel); code != http.StatusOK || !sel.Sketch {
		t.Fatalf("tim+ fast path: status %d, %+v", code, sel)
	}
	if got := s.SelectionsRun(); got != 0 {
		t.Fatalf("fast path must not run selection jobs, ran %d", got)
	}

	// A mismatched seed misses the sketch and goes through the job path.
	miss := SelectRequest{Graph: "g", Algorithm: "imm", K: 3, Options: Options{Epsilon: 0.3, Seed: 6, TIMThetaCap: 200}}
	var missResp SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", miss, &missResp); code != http.StatusAccepted {
		t.Fatalf("mismatched select status %d (%+v)", code, missResp)
	}
	pollJob(t, ts.URL, missResp.JobID)

	// An explicit θ cap opts out of the fast path even on a key match.
	capped := SelectRequest{Graph: "g", Algorithm: "imm", K: 3, Options: Options{Epsilon: 0.3, Seed: 5, TIMThetaCap: 200}}
	var cappedResp SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", capped, &cappedResp); code != http.StatusAccepted {
		t.Fatalf("capped select status %d (%+v)", code, cappedResp)
	}
	pollJob(t, ts.URL, cappedResp.JobID)

	// Stats report the registry and the fast-path hits.
	st := s.Stats()
	if st.Sketches != 1 || st.SketchFastPathHits != 2 || st.SketchBuilds != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.SketchSets == 0 || st.SketchMemoryBytes == 0 {
		t.Fatalf("stats missing sketch footprint: %+v", st)
	}

	// Evict; the fast path stops matching and the id 404s.
	if code := doJSON(t, "DELETE", ts.URL+"/v1/sketches/"+info.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("DELETE sketch status %d", code)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v1/sketches/"+info.ID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("second DELETE status %d", code)
	}
	var after SelectResponse
	fresh := SelectRequest{Graph: "g", Algorithm: "imm", K: 2, Options: Options{Epsilon: 0.3, Seed: 5, TIMThetaCap: 200}}
	if code := doJSON(t, "POST", ts.URL+"/v1/select", fresh, &after); code != http.StatusAccepted {
		t.Fatalf("post-evict select status %d (%+v)", code, after)
	}
	if s.Stats().Sketches != 0 {
		t.Fatalf("sketch survived eviction: %+v", s.Stats())
	}
}

func TestSketchBuildValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	cases := []struct {
		name string
		spec SketchSpec
		code int
	}{
		{"unknown graph", SketchSpec{Graph: "nope"}, http.StatusNotFound},
		{"bad model", SketchSpec{Graph: "g", Model: "martian"}, http.StatusBadRequest},
		{"bad epsilon", SketchSpec{Graph: "g", Epsilon: 1.5}, http.StatusBadRequest},
		{"bad build_k", SketchSpec{Graph: "g", BuildK: 10_000}, http.StatusBadRequest},
	}
	for _, c := range cases {
		var resp map[string]any
		if code := doJSON(t, "POST", ts.URL+"/v1/sketches", c.spec, &resp); code != c.code {
			t.Errorf("%s: status %d, want %d (%v)", c.name, code, c.code, resp)
		}
	}

	// Duplicate build: 409 once registered, in the uniform error envelope.
	buildTestSketch(t, ts.URL, SketchSpec{Graph: "g", Epsilon: 0.3, BuildK: 5})
	var resp ErrorResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/sketches", SketchSpec{Graph: "g", Epsilon: 0.3, BuildK: 5}, &resp); code != http.StatusConflict {
		t.Fatalf("duplicate sketch build status %d", code)
	}
}

// The registry cap bounds how many sketches a server will hold.
func TestSketchRegistryCapacity(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSketches: 1})
	buildTestSketch(t, ts.URL, SketchSpec{Graph: "g", Epsilon: 0.3, BuildK: 5})

	var resp SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/sketches", SketchSpec{Graph: "g", Epsilon: 0.4, BuildK: 5}, &resp); code != http.StatusAccepted {
		t.Fatalf("second build submit status %d", code)
	}
	done := pollJob(t, ts.URL, resp.JobID)
	if done.State != StateFailed {
		t.Fatalf("over-capacity build should fail, got %+v", done)
	}
	if got := s.Stats().Sketches; got != 1 {
		t.Fatalf("registry holds %d sketches, want 1", got)
	}
}
