package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/holisticim/holisticim"
)

// TestBatchQuerySpeedupVsSingleSketchSelect is the PR's acceptance
// criterion, the serving-layer sibling of sketch.TestSketchSpeedupVsColdIMM:
// on the 50k-node BA benchmark graph, a batch /v2/query with 5 k-values
// against a warm sketch must complete in < 2x the wall time of a single
// sketch select — the whole point of batch execution over shared state
// is that four extra budgets ride along nearly for free.
func TestBatchQuerySpeedupVsSingleSketchSelect(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-node batch acceptance test")
	}
	g := holisticim.GenerateBA(50000, 3, 1)
	g.SetUniformProb(0.1)
	const eps, seed = 0.25, uint64(9)

	s := New(Config{})
	defer s.Close()
	if err := s.Registry().Add("big", g, "bench"); err != nil {
		t.Fatal(err)
	}
	idx, err := holisticim.BuildSketch(context.Background(), g,
		holisticim.SketchOptions{Epsilon: eps, Seed: seed, BuildK: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sketches().Add("big", "ic", eps, seed, idx); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	opts := Options{Epsilon: eps, Seed: seed}

	// Single sketch select: the first query on the warm sample, paying
	// for the memoized greedy order once.
	start := time.Now()
	var single QueryResponse
	if code := doJSON(t, "POST", ts.URL+"/v2/query",
		QueryRequest{Graph: "big", Algorithm: "imm", K: 25, Options: opts}, &single); code != http.StatusOK {
		t.Fatalf("single query status %d (%+v)", code, single)
	}
	singleTook := time.Since(start)
	if !single.Sketch || single.Answer == nil || len(single.Answer.Members[0].Result.Seeds) != 25 {
		t.Fatalf("single response %+v", single)
	}

	// Batch of 5 budgets over the same warm sketch.
	start = time.Now()
	var batch QueryResponse
	if code := doJSON(t, "POST", ts.URL+"/v2/query",
		QueryRequest{Graph: "big", Algorithm: "imm", Ks: []int{5, 10, 15, 20, 25}, Options: opts}, &batch); code != http.StatusOK {
		t.Fatalf("batch query status %d (%+v)", code, batch)
	}
	batchTook := time.Since(start)
	if !batch.Sketch || batch.Answer == nil || len(batch.Answer.Members) != 5 {
		t.Fatalf("batch response %+v", batch)
	}
	full := batch.Answer.Members[4].Result.Seeds
	for _, m := range batch.Answer.Members {
		if len(m.Result.Seeds) != m.K {
			t.Fatalf("member k=%d selected %d seeds", m.K, len(m.Result.Seeds))
		}
		for i, sd := range m.Result.Seeds {
			if sd != full[i] {
				t.Fatalf("member k=%d not a prefix at seed %d", m.K, i)
			}
		}
	}

	t.Logf("single sketch select: %v, 5-k batch: %v (%.2fx)",
		singleTook, batchTook, float64(batchTook)/float64(singleTook))
	if batchTook >= 2*singleTook {
		t.Fatalf("batch %v not < 2x single sketch select %v", batchTook, singleTook)
	}
}
