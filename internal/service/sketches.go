package service

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/internal/ris"
)

// Sketch registry errors.
var (
	ErrSketchNotFound = errors.New("service: sketch not found")
	ErrSketchExists   = errors.New("service: sketch already registered")
	ErrSketchesFull   = errors.New("service: sketch registry full")
)

// sketchID is the canonical identifier of a sketch: one index per
// (graph, RR semantics, ε, seed), semantics being "ic", "lt" or the
// opinion-weighted "oc". The id pins the sample a fast-path selection
// will use: a graph name rebound to different content evicts its
// sketches (RebindGraph), so a live id always means a live sample.
func sketchID(graph, semantics string, epsilon float64, seed uint64) string {
	return fmt.Sprintf("%s:%s:e%g:s%d", graph, semantics, epsilon, seed)
}

// semanticsOf maps an index's RR kind back to its registry semantics key.
func semanticsOf(kind ris.ModelKind) string {
	switch kind {
	case ris.ModelLT:
		return "lt"
	case ris.ModelOC:
		return "oc"
	default:
		return "ic"
	}
}

// SketchRegistry holds the server's RR-sketch indexes. Like the graph
// registry it only ever grows up to its cap — but sketches, unlike
// graphs, can be evicted (DELETE /v1/sketches/{id}) and rebuilt, since
// an id always maps to the same deterministic sample.
type SketchRegistry struct {
	mu          sync.RWMutex
	maxSketches int
	entries     map[string]*sketchEntry
	builds      int64 // completed builds/loads, for /v1/stats
}

type sketchEntry struct {
	idx       *holisticim.Sketch
	graph     string
	semantics string
	epsilon   float64
	seed      uint64
}

// NewSketchRegistry returns an empty sketch registry.
func NewSketchRegistry() *SketchRegistry {
	return &SketchRegistry{entries: make(map[string]*sketchEntry)}
}

// Add registers idx under the canonical id for its key.
func (r *SketchRegistry) Add(graph, semantics string, epsilon float64, seed uint64, idx *holisticim.Sketch) (string, error) {
	if idx == nil {
		return "", errors.New("service: nil sketch")
	}
	id := sketchID(graph, semantics, epsilon, seed)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[id]; ok {
		return "", fmt.Errorf("%w: %q", ErrSketchExists, id)
	}
	if r.maxSketches > 0 && len(r.entries) >= r.maxSketches {
		return "", fmt.Errorf("%w (%d sketches)", ErrSketchesFull, r.maxSketches)
	}
	r.entries[id] = &sketchEntry{idx: idx, graph: graph, semantics: semantics, epsilon: epsilon, seed: seed}
	r.builds++
	return id, nil
}

// Lookup returns the index serving (graph, semantics, ε, seed), or nil.
func (r *SketchRegistry) Lookup(graph, semantics string, epsilon float64, seed uint64) *holisticim.Sketch {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[sketchID(graph, semantics, epsilon, seed)]
	if !ok {
		return nil
	}
	return e.idx
}

// Get returns the index with the given id.
func (r *SketchRegistry) Get(id string) (*holisticim.Sketch, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrSketchNotFound, id)
	}
	return e.idx, nil
}

// Evict drops the index with the given id. In-flight selections holding
// the index finish against it; the memory is reclaimed once they unwind.
func (r *SketchRegistry) Evict(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[id]; !ok {
		return false
	}
	delete(r.entries, id)
	return true
}

// info materializes one entry's SketchInfo (counters read live).
func (e *sketchEntry) info(id string) SketchInfo {
	st := e.idx.Stats()
	p := e.idx.Params()
	return SketchInfo{
		ID:          id,
		Graph:       e.graph,
		Model:       e.semantics,
		Epsilon:     e.epsilon,
		Seed:        e.seed,
		BuildK:      p.BuildK,
		Sets:        st.Sets,
		OrderLen:    st.OrderLen,
		Selects:     st.Selects,
		Extensions:  st.Extensions,
		MemoryBytes: st.MemoryBytes,
	}
}

// List returns the registered sketches' summaries, sorted by id.
func (r *SketchRegistry) List() []SketchInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]SketchInfo, 0, len(r.entries))
	for id, e := range r.entries {
		out = append(out, e.info(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Info returns the summary for one id.
func (r *SketchRegistry) Info(id string) (SketchInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[id]
	if !ok {
		return SketchInfo{}, fmt.Errorf("%w: %q", ErrSketchNotFound, id)
	}
	return e.info(id), nil
}

// Totals sums the registry-wide counters for /v1/stats.
func (r *SketchRegistry) Totals() (count int, sets int64, bytes int64, builds int64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.entries {
		st := e.idx.Stats()
		sets += int64(st.Sets)
		bytes += st.MemoryBytes
	}
	return len(r.entries), sets, bytes, r.builds
}

// LoadSnapshot registers a sketch loaded from a snapshot file, keyed by
// the parameters stored in the snapshot itself.
func (r *SketchRegistry) LoadSnapshot(graphName string, g *holisticim.Graph, path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("service: open sketch snapshot: %w", err)
	}
	defer f.Close()
	idx, err := holisticim.ReadSketch(f, g)
	if err != nil {
		return "", fmt.Errorf("service: read %s: %w", path, err)
	}
	p := idx.Params()
	return r.Add(graphName, semanticsOf(p.Kind), p.Epsilon, p.Seed, idx)
}

// RebindGraph reconciles the registry with a graph name that was just
// rebound: every sketch registered for the name is rebound to the new
// instance when the content fingerprints still agree (Index.Matches
// self-rebinds on a fingerprint match), and evicted when they don't — a
// sketch over the old topology must never serve the new graph's fast
// path. Returns how many sketches were kept and how many evicted.
func (r *SketchRegistry) RebindGraph(graphName string, g *holisticim.Graph) (kept, evicted int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, e := range r.entries {
		if e.graph != graphName {
			continue
		}
		if e.idx.Matches(g, e.idx.Kind()) {
			kept++
			continue
		}
		delete(r.entries, id)
		evicted++
	}
	return kept, evicted
}
