package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/holisticim/holisticim"
	"github.com/holisticim/holisticim/internal/ris"
)

// Sketch registry errors.
var (
	ErrSketchNotFound = errors.New("service: sketch not found")
	ErrSketchExists   = errors.New("service: sketch already registered")
	ErrSketchesFull   = errors.New("service: sketch registry full")
)

// sketchID is the canonical identifier of a sketch: one index per
// (graph, RR semantics, ε, seed), semantics being "ic", "lt" or the
// opinion-weighted "oc". The id pins the sample a fast-path selection
// will use: a graph name rebound to different content evicts its
// sketches (RebindGraph), so a live id always means a live sample.
func sketchID(graph, semantics string, epsilon float64, seed uint64) string {
	return fmt.Sprintf("%s:%s:e%g:s%d", graph, semantics, epsilon, seed)
}

// semanticsOf maps an index's RR kind back to its registry semantics key.
func semanticsOf(kind ris.ModelKind) string {
	switch kind {
	case ris.ModelLT:
		return "lt"
	case ris.ModelOC:
		return "oc"
	default:
		return "ic"
	}
}

// SketchRegistry holds the server's RR-sketch indexes. Like the graph
// registry it only ever grows up to its cap — but sketches, unlike
// graphs, can be evicted (DELETE /v1/sketches/{id}) and rebuilt, since
// an id always maps to the same deterministic sample.
type SketchRegistry struct {
	mu          sync.RWMutex
	maxSketches int
	entries     map[string]*sketchEntry
	builds      int64 // completed builds/loads, for /v1/stats

	repairs       atomic.Int64 // completed incremental repairs, for /v1/stats
	repairedSets  atomic.Int64 // RR sets resampled across all repairs
	repairsFailed atomic.Int64 // repairs that failed (the sketch was evicted)
}

type sketchEntry struct {
	idx       *holisticim.Sketch
	graph     string
	semantics string
	epsilon   float64
	seed      uint64

	repair repairState
}

// repairState coalesces mutation batches into background repairs for one
// sketch. ScheduleRepair merges each batch's dirty set under the lock
// and starts one drain job when none is running; the drain loop's
// check-and-clear also runs under the lock, so a batch arriving while a
// repair is in flight is either folded into the current drain iteration
// or picked up by the next — never lost. Coalescing is sound because
// repairing the union of several batches' dirty sets against the latest
// snapshot yields the same sample as repairing batch by batch: a set is
// resampled iff it ever contained a dirty node, and resampling is a pure
// function of (latest graph, seed, set index).
type repairState struct {
	mu             sync.Mutex
	pendingDirty   map[holisticim.NodeID]struct{}
	pendingGraph   *holisticim.Graph
	pendingVersion uint64
	running        bool
}

// NewSketchRegistry returns an empty sketch registry.
func NewSketchRegistry() *SketchRegistry {
	return &SketchRegistry{entries: make(map[string]*sketchEntry)}
}

// Add registers idx under the canonical id for its key.
func (r *SketchRegistry) Add(graph, semantics string, epsilon float64, seed uint64, idx *holisticim.Sketch) (string, error) {
	if idx == nil {
		return "", errors.New("service: nil sketch")
	}
	id := sketchID(graph, semantics, epsilon, seed)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[id]; ok {
		return "", fmt.Errorf("%w: %q", ErrSketchExists, id)
	}
	if r.maxSketches > 0 && len(r.entries) >= r.maxSketches {
		return "", fmt.Errorf("%w (%d sketches)", ErrSketchesFull, r.maxSketches)
	}
	r.entries[id] = &sketchEntry{idx: idx, graph: graph, semantics: semantics, epsilon: epsilon, seed: seed}
	r.builds++
	return id, nil
}

// Put registers idx under its canonical id, REPLACING any sketch already
// bound to the id. This is the store watcher's load path: a manifest
// update ships a rebuilt sample for the same (graph, semantics, ε, seed)
// key, and the replica must swap it in place — in-flight selections
// holding the old index finish against it, new lookups see the new one.
// Returns the id and whether an existing entry was replaced. The cap only
// gates NEW ids; replacements always land, since refusing one would leave
// a stale sample serving the fast path.
func (r *SketchRegistry) Put(graph, semantics string, epsilon float64, seed uint64, idx *holisticim.Sketch) (string, bool, error) {
	if idx == nil {
		return "", false, errors.New("service: nil sketch")
	}
	id := sketchID(graph, semantics, epsilon, seed)
	r.mu.Lock()
	defer r.mu.Unlock()
	_, replaced := r.entries[id]
	if !replaced && r.maxSketches > 0 && len(r.entries) >= r.maxSketches {
		return "", false, fmt.Errorf("%w (%d sketches)", ErrSketchesFull, r.maxSketches)
	}
	r.entries[id] = &sketchEntry{idx: idx, graph: graph, semantics: semantics, epsilon: epsilon, seed: seed}
	r.builds++
	return id, replaced, nil
}

// Lookup returns the index serving (graph, semantics, ε, seed), or nil.
func (r *SketchRegistry) Lookup(graph, semantics string, epsilon float64, seed uint64) *holisticim.Sketch {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[sketchID(graph, semantics, epsilon, seed)]
	if !ok {
		return nil
	}
	return e.idx
}

// Get returns the index with the given id.
func (r *SketchRegistry) Get(id string) (*holisticim.Sketch, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrSketchNotFound, id)
	}
	return e.idx, nil
}

// Evict drops the index with the given id. In-flight selections holding
// the index finish against it; the memory is reclaimed once they unwind.
func (r *SketchRegistry) Evict(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[id]; !ok {
		return false
	}
	delete(r.entries, id)
	return true
}

// info materializes one entry's SketchInfo (counters read live).
func (e *sketchEntry) info(id string) SketchInfo {
	st := e.idx.Stats()
	p := e.idx.Params()
	return SketchInfo{
		ID:               id,
		Graph:            e.graph,
		Model:            e.semantics,
		Epsilon:          e.epsilon,
		Seed:             e.seed,
		BuildK:           p.BuildK,
		Sets:             st.Sets,
		OrderLen:         st.OrderLen,
		Selects:          st.Selects,
		Extensions:       st.Extensions,
		MemoryBytes:      st.MemoryBytes,
		GraphVersion:     e.idx.GraphVersion(),
		StaleSets:        e.idx.StaleSets(),
		Staleness:        e.idx.Staleness(),
		GraphFingerprint: fmt.Sprintf("%016x", e.idx.GraphFingerprint()),
	}
}

// ScheduleRepair queues incremental repairs for every sketch registered
// against graphName after a mutation to (g, version) with the given
// dirty nodes. Batches coalesce per sketch (see repairState); at most
// one drain job runs per sketch at a time, submitted through submit —
// typically a closure over the server's job manager, so repairs share
// the bounded worker pool with selections. A repair that fails evicts
// its sketch: a sample that could not be resynchronized must never serve
// the fast path again. Returns how many sketches had work scheduled.
func (r *SketchRegistry) ScheduleRepair(graphName string, g *holisticim.Graph, version uint64, dirty []holisticim.NodeID, maxHops int, submit func(key string, fn JobFunc) error) int {
	r.mu.RLock()
	targets := make(map[string]*sketchEntry)
	for id, e := range r.entries {
		if e.graph == graphName {
			targets[id] = e
		}
	}
	r.mu.RUnlock()

	scheduled := 0
	for id, e := range targets {
		st := &e.repair
		st.mu.Lock()
		if st.pendingDirty == nil {
			st.pendingDirty = make(map[holisticim.NodeID]struct{}, len(dirty))
		}
		for _, d := range dirty {
			st.pendingDirty[d] = struct{}{}
		}
		// Latest snapshot wins: repairing the accumulated union against it
		// subsumes every intermediate version.
		st.pendingGraph = g
		st.pendingVersion = version
		start := !st.running
		if start {
			st.running = true
		}
		st.mu.Unlock()
		scheduled++
		if !start {
			continue
		}
		// The version in the key makes every submission unique: a plain
		// per-sketch key could collide with a drain job that already set
		// running=false but whose single-flight entry the manager has not
		// yet cleared — the new submission would dedup against it, drop
		// its JobFunc, and strand the pending work.
		key := fmt.Sprintf("sketchrepair:%s:v%d", id, version)
		if err := submit(key, r.drainFunc(id, e, maxHops)); err != nil {
			// Queue full: the sketch cannot be repaired now and must not
			// keep serving the old content's fast path.
			st.mu.Lock()
			st.running = false
			st.mu.Unlock()
			r.repairsFailed.Add(1)
			r.Evict(id)
		}
	}
	return scheduled
}

// drainFunc returns the JobFunc that drains one sketch's pending repairs.
func (r *SketchRegistry) drainFunc(id string, e *sketchEntry, maxHops int) JobFunc {
	return func(ctx context.Context, report func(int)) (any, error) {
		st := &e.repair
		total := 0
		for {
			st.mu.Lock()
			if len(st.pendingDirty) == 0 {
				st.running = false
				st.mu.Unlock()
				return nil, nil
			}
			dirty := make([]holisticim.NodeID, 0, len(st.pendingDirty))
			for d := range st.pendingDirty {
				dirty = append(dirty, d)
			}
			st.pendingDirty = make(map[holisticim.NodeID]struct{})
			g := st.pendingGraph
			ver := st.pendingVersion
			st.mu.Unlock()

			stats, err := e.idx.Repair(ctx, g, dirty, ver, holisticim.SketchRepairOptions{MaxHops: maxHops})
			if err != nil {
				st.mu.Lock()
				st.running = false
				st.mu.Unlock()
				r.repairsFailed.Add(1)
				r.Evict(id)
				return nil, fmt.Errorf("service: repair sketch %s: %w", id, err)
			}
			r.repairs.Add(1)
			r.repairedSets.Add(int64(stats.Resampled))
			total += stats.Resampled
			report(total)
		}
	}
}

// CountFor returns how many sketches are registered for graphName.
func (r *SketchRegistry) CountFor(graphName string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, e := range r.entries {
		if e.graph == graphName {
			n++
		}
	}
	return n
}

// RepairTotals returns the registry-wide repair counters for /v1/stats.
func (r *SketchRegistry) RepairTotals() (repairs, sets, failed int64) {
	return r.repairs.Load(), r.repairedSets.Load(), r.repairsFailed.Load()
}

// List returns the registered sketches' summaries, sorted by id.
func (r *SketchRegistry) List() []SketchInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]SketchInfo, 0, len(r.entries))
	for id, e := range r.entries {
		out = append(out, e.info(id))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Info returns the summary for one id.
func (r *SketchRegistry) Info(id string) (SketchInfo, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[id]
	if !ok {
		return SketchInfo{}, fmt.Errorf("%w: %q", ErrSketchNotFound, id)
	}
	return e.info(id), nil
}

// Totals sums the registry-wide counters for /v1/stats.
func (r *SketchRegistry) Totals() (count int, sets int64, bytes int64, builds int64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.entries {
		st := e.idx.Stats()
		sets += int64(st.Sets)
		bytes += st.MemoryBytes
	}
	return len(r.entries), sets, bytes, r.builds
}

// LoadSnapshot registers a sketch loaded from a snapshot file, keyed by
// the parameters stored in the snapshot itself.
func (r *SketchRegistry) LoadSnapshot(graphName string, g *holisticim.Graph, path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("service: open sketch snapshot: %w", err)
	}
	defer f.Close()
	idx, err := holisticim.ReadSketch(f, g)
	if err != nil {
		return "", fmt.Errorf("service: read %s: %w", path, err)
	}
	p := idx.Params()
	return r.Add(graphName, semanticsOf(p.Kind), p.Epsilon, p.Seed, idx)
}

// RebindGraph reconciles the registry with a graph name that was just
// rebound: every sketch registered for the name is rebound to the new
// instance when the content fingerprints still agree (Index.Matches
// self-rebinds on a fingerprint match), and evicted when they don't — a
// sketch over the old topology must never serve the new graph's fast
// path. Returns how many sketches were kept and how many evicted.
func (r *SketchRegistry) RebindGraph(graphName string, g *holisticim.Graph) (kept, evicted int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, e := range r.entries {
		if e.graph != graphName {
			continue
		}
		if e.idx.Matches(g, e.idx.Kind()) {
			kept++
			continue
		}
		delete(r.entries, id)
		evicted++
	}
	return kept, evicted
}
