package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/holisticim/holisticim/internal/admission"
)

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
}

func TestManagerRunsJob(t *testing.T) {
	m := NewManager(2, 8, 16)
	defer m.Close()
	j, created, err := m.Submit("k1", 1, func(ctx context.Context, report func(int)) (any, error) {
		return &SelectResult{Algorithm: "stub", Seeds: []int32{7}}, nil
	})
	if err != nil || !created {
		t.Fatalf("Submit: created=%v err=%v", created, err)
	}
	waitDone(t, j)
	st := j.Status()
	if st.State != StateDone || st.Result == nil || st.Result.Seeds[0] != 7 {
		t.Fatalf("unexpected status %+v", st)
	}
	got, ok := m.Get(j.ID())
	if !ok || got != j {
		t.Fatalf("Get(%s) = %v, %v", j.ID(), got, ok)
	}
}

func TestManagerFailedJob(t *testing.T) {
	m := NewManager(1, 8, 16)
	defer m.Close()
	j, _, err := m.Submit("boom", 1, func(ctx context.Context, report func(int)) (any, error) {
		return nil, errors.New("synthetic failure")
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	st := j.Status()
	if st.State != StateFailed || st.Error != "synthetic failure" {
		t.Fatalf("unexpected status %+v", st)
	}
}

func TestManagerSingleFlightDedup(t *testing.T) {
	m := NewManager(2, 8, 16)
	defer m.Close()
	release := make(chan struct{})
	var runs atomic.Int64
	fn := func(ctx context.Context, report func(int)) (any, error) {
		runs.Add(1)
		<-release
		return &SelectResult{Algorithm: "stub"}, nil
	}
	j1, created1, err := m.Submit("same", 1, fn)
	if err != nil || !created1 {
		t.Fatalf("first Submit: created=%v err=%v", created1, err)
	}
	j2, created2, err := m.Submit("same", 1, fn)
	if err != nil {
		t.Fatal(err)
	}
	if created2 || j2 != j1 {
		t.Fatalf("second Submit should attach to in-flight job: created=%v same=%v", created2, j1 == j2)
	}
	if got := m.Deduped(); got != 1 {
		t.Fatalf("Deduped() = %d, want 1", got)
	}
	close(release)
	waitDone(t, j1)
	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	// After completion the key is free again: a new submission must create
	// a fresh job (result caching is the layer above, not the manager's).
	j3, created3, err := m.Submit("same", 1, func(ctx context.Context, report func(int)) (any, error) {
		return &SelectResult{}, nil
	})
	if err != nil || !created3 || j3 == j1 {
		t.Fatalf("post-completion Submit: created=%v fresh=%v err=%v", created3, j3 != j1, err)
	}
	waitDone(t, j3)
}

func TestManagerQueueFull(t *testing.T) {
	m := NewManager(1, 1, 16)
	defer m.Close()
	release := make(chan struct{})
	blocker := func(ctx context.Context, report func(int)) (any, error) {
		<-release
		return &SelectResult{}, nil
	}
	// First job occupies the single worker; wait until it is actually
	// running so the queue slot is observable deterministically.
	j1, _, err := m.Submit("a", 1, blocker)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j1.Status().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	j2, _, err := m.Submit("b", 1, blocker)
	if err != nil {
		t.Fatalf("queue should hold one job: %v", err)
	}
	if _, _, err := m.Submit("c", 1, blocker); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third Submit: err=%v, want ErrQueueFull", err)
	}
	// A rejected submission must not poison deduplication: once the queue
	// drains, key "c" must create a fresh job rather than attach to a
	// phantom in-flight entry.
	close(release)
	waitDone(t, j1)
	waitDone(t, j2)
	j3, created, err := m.Submit("c", 1, func(ctx context.Context, report func(int)) (any, error) {
		return &SelectResult{}, nil
	})
	if err != nil || !created {
		t.Fatalf("post-drain Submit(c): created=%v err=%v", created, err)
	}
	waitDone(t, j3)
}

func TestManagerEvictsFinishedJobs(t *testing.T) {
	m := NewManager(2, 32, 4)
	defer m.Close()
	var jobs []*Job
	for i := 0; i < 12; i++ {
		j, _, err := m.Submit(fmt.Sprintf("k%d", i), 1, func(ctx context.Context, report func(int)) (any, error) {
			return &SelectResult{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		waitDone(t, j)
	}
	retained := 0
	for _, j := range jobs {
		if _, ok := m.Get(j.ID()); ok {
			retained++
		}
	}
	if retained > 5 { // maxJobs=4 plus at most the in-submission slack
		t.Fatalf("retained %d finished jobs, want <= 5", retained)
	}
	// The newest job must still be pollable.
	if _, ok := m.Get(jobs[len(jobs)-1].ID()); !ok {
		t.Fatal("newest job was evicted")
	}
}

// TestManagerConcurrency hammers Submit from many goroutines over few
// keys; run with -race. Every submission must observe a usable job and
// every job must terminate.
func TestManagerConcurrency(t *testing.T) {
	m := NewManager(4, 256, 4096)
	defer m.Close()
	const goroutines = 32
	const perG = 25
	var runs atomic.Int64
	var wg sync.WaitGroup
	jobCh := make(chan *Job, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("key%d", (g+i)%8)
				j, _, err := m.Submit(key, 1, func(ctx context.Context, report func(int)) (any, error) {
					runs.Add(1)
					return &SelectResult{}, nil
				})
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				jobCh <- j
			}
		}(g)
	}
	wg.Wait()
	close(jobCh)
	for j := range jobCh {
		waitDone(t, j)
		if st := j.Status(); st.State != StateDone {
			t.Fatalf("job %s state %s", j.ID(), st.State)
		}
	}
	total := m.Submitted() + m.Deduped()
	if total != goroutines*perG {
		t.Fatalf("submitted+deduped = %d, want %d", total, goroutines*perG)
	}
	if runs.Load() != m.Submitted() {
		t.Fatalf("fn ran %d times for %d created jobs", runs.Load(), m.Submitted())
	}
}

// TestManagerCancel exercises Manager.Cancel directly across the three
// job phases: queued (immediate transition), running (context-driven) and
// finished (refused).
func TestManagerCancel(t *testing.T) {
	m := NewManager(1, 8, 16)
	defer m.Close()
	running := make(chan struct{})
	blocker := func(ctx context.Context, report func(int)) (any, error) {
		close(running)
		<-ctx.Done()
		return &SelectResult{Partial: true}, fmt.Errorf("stub: %w", ctx.Err())
	}
	j1, _, err := m.Submit("run", 1, blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-running
	j2, _, err := m.Submit("queued", 1, func(ctx context.Context, report func(int)) (any, error) {
		t.Error("canceled queued job must never run")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Queued: transitions immediately, worker later skips it.
	if _, accepted, ok := m.Cancel(j2.ID()); !accepted || !ok {
		t.Fatalf("Cancel(queued) = accepted=%v ok=%v", accepted, ok)
	}
	if st := j2.Status(); st.State != StateCanceled {
		t.Fatalf("queued job state %q", st.State)
	}
	// Running: unblocks via its context, retains the partial result.
	if _, accepted, ok := m.Cancel(j1.ID()); !accepted || !ok {
		t.Fatalf("Cancel(running) = accepted=%v ok=%v", accepted, ok)
	}
	waitDone(t, j1)
	if st := j1.Status(); st.State != StateCanceled || st.Result == nil || !st.Result.Partial {
		t.Fatalf("running job after cancel: %+v", st)
	}
	if got := m.Canceled(); got != 2 {
		t.Fatalf("Canceled() = %d, want 2", got)
	}
	// Finished jobs refuse cancellation.
	j3, _, err := m.Submit("done", 1, func(ctx context.Context, report func(int)) (any, error) {
		return &SelectResult{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j3)
	if _, accepted, ok := m.Cancel(j3.ID()); accepted || !ok {
		t.Fatalf("Cancel(done) = accepted=%v ok=%v, want refused", accepted, ok)
	}
	// Unknown ids.
	if _, _, ok := m.Cancel("nope"); ok {
		t.Fatal("Cancel(unknown) reported ok")
	}
}

// TestManagerCloseCancelsInflight proves shutdown does not drain: a
// running job's context is cancelled and Close returns once it unwinds.
func TestManagerCloseCancelsInflight(t *testing.T) {
	m := NewManager(2, 8, 16)
	running := make(chan struct{})
	j, _, err := m.Submit("slow", 1, func(ctx context.Context, report func(int)) (any, error) {
		close(running)
		<-ctx.Done() // would block forever if shutdown drained politely
		return nil, fmt.Errorf("stub: %w", ctx.Err())
	})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	closed := make(chan struct{})
	go func() {
		m.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not cancel the in-flight job")
	}
	waitDone(t, j)
	if st := j.Status(); st.State != StateCanceled {
		t.Fatalf("job state %q after shutdown, want canceled", st.State)
	}
}

// TestJobProgressCounter proves the report callback is visible through
// Status while the job runs.
func TestJobProgressCounter(t *testing.T) {
	m := NewManager(1, 8, 16)
	defer m.Close()
	mid := make(chan struct{})
	release := make(chan struct{})
	j, _, err := m.Submit("prog", 4, func(ctx context.Context, report func(int)) (any, error) {
		report(2)
		close(mid)
		<-release
		report(4)
		return &SelectResult{Seeds: []int32{0, 1, 2, 3}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-mid
	if st := j.Status(); st.SeedsDone != 2 || st.K != 4 {
		t.Fatalf("mid-run status %+v, want seeds_done=2 k=4", st)
	}
	close(release)
	waitDone(t, j)
	if st := j.Status(); st.State != StateDone || st.SeedsDone != 4 {
		t.Fatalf("final status %+v", st)
	}
}

// TestCancelFreesQueueSlot is the regression test for queue tombstones:
// cancelling a queued job must free its slot immediately, so a new
// submission succeeds while the worker is still busy.
func TestCancelFreesQueueSlot(t *testing.T) {
	m := NewManager(1, 1, 16)
	defer m.Close()
	running := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if _, _, err := m.Submit("busy", 1, func(ctx context.Context, report func(int)) (any, error) {
		close(running)
		<-release
		return &SelectResult{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-running
	queued, _, err := m.Submit("q1", 1, func(ctx context.Context, report func(int)) (any, error) {
		t.Error("canceled queued job must never run")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Submit("q2", 1, func(ctx context.Context, report func(int)) (any, error) {
		return &SelectResult{}, nil
	}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue should be full before cancel: err=%v", err)
	}
	if _, accepted, ok := m.Cancel(queued.ID()); !accepted || !ok {
		t.Fatalf("Cancel(queued) accepted=%v ok=%v", accepted, ok)
	}
	// The slot is free right now — no worker had to drain a tombstone.
	replacement, created, err := m.Submit("q2", 1, func(ctx context.Context, report func(int)) (any, error) {
		return &SelectResult{}, nil
	})
	if err != nil || !created {
		t.Fatalf("post-cancel Submit: created=%v err=%v", created, err)
	}
	_ = replacement
}

// TestManagerPriorityOrder proves dispatch order is class order, not
// arrival order: with the single worker busy, queued batch jobs are
// jumped by a later interactive submission.
func TestManagerPriorityOrder(t *testing.T) {
	m := NewManager(1, 8, 16)
	defer m.Close()
	running := make(chan struct{})
	release := make(chan struct{})
	if _, _, err := m.Submit("blocker", 1, func(ctx context.Context, report func(int)) (any, error) {
		close(running)
		<-release
		return &SelectResult{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-running

	var mu sync.Mutex
	var order []string
	record := func(name string) JobFunc {
		return func(ctx context.Context, report func(int)) (any, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return &SelectResult{}, nil
		}
	}
	var jobs []*Job
	for _, sub := range []struct {
		name string
		prio admission.Priority
	}{
		{"batch1", admission.Batch},
		{"batch2", admission.Batch},
		{"standard1", admission.Standard},
		{"interactive1", admission.Interactive},
	} {
		j, _, err := m.SubmitQuery(JobSpec{Key: sub.name, Priority: sub.prio}, record(sub.name))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	depths := m.DepthByPriority()
	if depths[admission.Interactive] != 1 || depths[admission.Standard] != 1 || depths[admission.Batch] != 2 {
		t.Fatalf("DepthByPriority = %v", depths)
	}
	close(release)
	for _, j := range jobs {
		waitDone(t, j)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"interactive1", "standard1", "batch1", "batch2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
}

// TestManagerShedReasons drives each shed path and checks the
// per-(class, reason) counters behind the labeled metric family.
func TestManagerShedReasons(t *testing.T) {
	m := NewManager(1, 1, 16)
	defer m.Close()
	running := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if _, _, err := m.Submit("busy", 1, func(ctx context.Context, report func(int)) (any, error) {
		close(running)
		<-release
		return &SelectResult{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-running
	if _, _, err := m.SubmitQuery(JobSpec{Key: "fill", Priority: admission.Batch}, func(ctx context.Context, report func(int)) (any, error) {
		return &SelectResult{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	// Queue full: the single slot is taken.
	_, _, err := m.SubmitQuery(JobSpec{Key: "over", Priority: admission.Batch}, func(ctx context.Context, report func(int)) (any, error) {
		return &SelectResult{}, nil
	})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := m.ShedCount(admission.Batch, ShedQueueFull); got != 1 {
		t.Fatalf("ShedCount(batch, queue_full) = %d, want 1", got)
	}
	if m.Shed() != 1 {
		t.Fatalf("Shed() = %d, want 1", m.Shed())
	}
}

// TestManagerExpectedRunShed proves the cost model's prediction alone
// sheds a doomed submission, even on a cold pool with no queue wait
// history: a job predicted to run 10s cannot make a 50ms deadline.
func TestManagerExpectedRunShed(t *testing.T) {
	m := NewManager(2, 8, 16)
	defer m.Close()
	_, _, err := m.SubmitQuery(JobSpec{
		Key:         "doomed",
		Priority:    admission.Batch,
		ExpectedRun: 10 * time.Second,
		Deadline:    time.Now().Add(50 * time.Millisecond),
	}, func(ctx context.Context, report func(int)) (any, error) {
		t.Error("a shed job must never run")
		return nil, nil
	})
	if !errors.Is(err, ErrPastDeadline) {
		t.Fatalf("err = %v, want ErrPastDeadline", err)
	}
	if got := m.ShedCount(admission.Batch, ShedDeadline); got != 1 {
		t.Fatalf("ShedCount(batch, deadline) = %d, want 1", got)
	}
	// The same spec without the prediction is admitted: the pool is cold,
	// so queue wait alone never sheds.
	j, created, err := m.SubmitQuery(JobSpec{
		Key:      "hopeful",
		Priority: admission.Batch,
		Deadline: time.Now().Add(50 * time.Millisecond),
	}, func(ctx context.Context, report func(int)) (any, error) {
		return &SelectResult{}, nil
	})
	if err != nil || !created {
		t.Fatalf("cold-pool submission: created=%v err=%v", created, err)
	}
	waitDone(t, j)
}
