package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
}

func TestManagerRunsJob(t *testing.T) {
	m := NewManager(2, 8, 16)
	defer m.Close()
	j, created, err := m.Submit("k1", func() (*SelectResult, error) {
		return &SelectResult{Algorithm: "stub", Seeds: []int32{7}}, nil
	})
	if err != nil || !created {
		t.Fatalf("Submit: created=%v err=%v", created, err)
	}
	waitDone(t, j)
	st := j.Status()
	if st.State != StateDone || st.Result == nil || st.Result.Seeds[0] != 7 {
		t.Fatalf("unexpected status %+v", st)
	}
	got, ok := m.Get(j.ID())
	if !ok || got != j {
		t.Fatalf("Get(%s) = %v, %v", j.ID(), got, ok)
	}
}

func TestManagerFailedJob(t *testing.T) {
	m := NewManager(1, 8, 16)
	defer m.Close()
	j, _, err := m.Submit("boom", func() (*SelectResult, error) {
		return nil, errors.New("synthetic failure")
	})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	st := j.Status()
	if st.State != StateFailed || st.Error != "synthetic failure" {
		t.Fatalf("unexpected status %+v", st)
	}
}

func TestManagerSingleFlightDedup(t *testing.T) {
	m := NewManager(2, 8, 16)
	defer m.Close()
	release := make(chan struct{})
	var runs atomic.Int64
	fn := func() (*SelectResult, error) {
		runs.Add(1)
		<-release
		return &SelectResult{Algorithm: "stub"}, nil
	}
	j1, created1, err := m.Submit("same", fn)
	if err != nil || !created1 {
		t.Fatalf("first Submit: created=%v err=%v", created1, err)
	}
	j2, created2, err := m.Submit("same", fn)
	if err != nil {
		t.Fatal(err)
	}
	if created2 || j2 != j1 {
		t.Fatalf("second Submit should attach to in-flight job: created=%v same=%v", created2, j1 == j2)
	}
	if got := m.Deduped(); got != 1 {
		t.Fatalf("Deduped() = %d, want 1", got)
	}
	close(release)
	waitDone(t, j1)
	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	// After completion the key is free again: a new submission must create
	// a fresh job (result caching is the layer above, not the manager's).
	j3, created3, err := m.Submit("same", func() (*SelectResult, error) {
		return &SelectResult{}, nil
	})
	if err != nil || !created3 || j3 == j1 {
		t.Fatalf("post-completion Submit: created=%v fresh=%v err=%v", created3, j3 != j1, err)
	}
	waitDone(t, j3)
}

func TestManagerQueueFull(t *testing.T) {
	m := NewManager(1, 1, 16)
	defer m.Close()
	release := make(chan struct{})
	blocker := func() (*SelectResult, error) {
		<-release
		return &SelectResult{}, nil
	}
	// First job occupies the single worker; wait until it is actually
	// running so the queue slot is observable deterministically.
	j1, _, err := m.Submit("a", blocker)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j1.Status().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	j2, _, err := m.Submit("b", blocker)
	if err != nil {
		t.Fatalf("queue should hold one job: %v", err)
	}
	if _, _, err := m.Submit("c", blocker); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third Submit: err=%v, want ErrQueueFull", err)
	}
	// A rejected submission must not poison deduplication: once the queue
	// drains, key "c" must create a fresh job rather than attach to a
	// phantom in-flight entry.
	close(release)
	waitDone(t, j1)
	waitDone(t, j2)
	j3, created, err := m.Submit("c", func() (*SelectResult, error) {
		return &SelectResult{}, nil
	})
	if err != nil || !created {
		t.Fatalf("post-drain Submit(c): created=%v err=%v", created, err)
	}
	waitDone(t, j3)
}

func TestManagerEvictsFinishedJobs(t *testing.T) {
	m := NewManager(2, 32, 4)
	defer m.Close()
	var jobs []*Job
	for i := 0; i < 12; i++ {
		j, _, err := m.Submit(fmt.Sprintf("k%d", i), func() (*SelectResult, error) {
			return &SelectResult{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		waitDone(t, j)
	}
	retained := 0
	for _, j := range jobs {
		if _, ok := m.Get(j.ID()); ok {
			retained++
		}
	}
	if retained > 5 { // maxJobs=4 plus at most the in-submission slack
		t.Fatalf("retained %d finished jobs, want <= 5", retained)
	}
	// The newest job must still be pollable.
	if _, ok := m.Get(jobs[len(jobs)-1].ID()); !ok {
		t.Fatal("newest job was evicted")
	}
}

// TestManagerConcurrency hammers Submit from many goroutines over few
// keys; run with -race. Every submission must observe a usable job and
// every job must terminate.
func TestManagerConcurrency(t *testing.T) {
	m := NewManager(4, 256, 4096)
	defer m.Close()
	const goroutines = 32
	const perG = 25
	var runs atomic.Int64
	var wg sync.WaitGroup
	jobCh := make(chan *Job, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("key%d", (g+i)%8)
				j, _, err := m.Submit(key, func() (*SelectResult, error) {
					runs.Add(1)
					return &SelectResult{}, nil
				})
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				jobCh <- j
			}
		}(g)
	}
	wg.Wait()
	close(jobCh)
	for j := range jobCh {
		waitDone(t, j)
		if st := j.Status(); st.State != StateDone {
			t.Fatalf("job %s state %s", j.ID(), st.State)
		}
	}
	total := m.Submitted() + m.Deduped()
	if total != goroutines*perG {
		t.Fatalf("submitted+deduped = %d, want %d", total, goroutines*perG)
	}
	if runs.Load() != m.Submitted() {
		t.Fatalf("fn ran %d times for %d created jobs", runs.Load(), m.Submitted())
	}
}
