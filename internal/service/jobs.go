package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrQueueFull reports that the job queue is at capacity; callers should
// translate it to 503 and have clients retry.
var ErrQueueFull = errors.New("service: job queue full")

// JobFunc runs one computation. It must honor ctx — returning promptly
// with an error wrapping ctx.Err() when cancelled — and may call report
// with the number of progress units (seeds selected, or batch members
// estimated) completed so far to publish live progress. A cancelled or
// failed run may still return a non-nil partial payload alongside its
// error; the job retains it for status polling. Payloads are
// *SelectResult (v1 selections, sketch builds) or *QueryAnswer (planner
// queries).
type JobFunc func(ctx context.Context, report func(seedsDone int)) (any, error)

// Job is one asynchronous computation. Multiple requests with the same
// fingerprint share a single Job while it is in flight.
type Job struct {
	id     string
	key    string
	k      int // requested seed budget, for progress reporting
	fn     JobFunc
	done   chan struct{}
	ctx    context.Context // cancelled by Cancel and by Manager.Close
	cancel context.CancelFunc

	// Batch-query view, set at submission: how many members the query
	// has, the per-member seed budgets (select batches, for deriving
	// members-done from seed progress) and the immutable execution plan.
	members  int
	memberKs []int
	plan     *Plan

	seedsDone atomic.Int64

	mu          sync.Mutex
	state       JobState
	result      any
	err         error
	cancelAsked bool // a Cancel already fired for this job
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobSnapshot is a point-in-time view of a job, shared by the v1 and v2
// status shapes and the event stream.
type JobSnapshot struct {
	ID          string
	State       JobState
	K           int
	SeedsDone   int
	Members     int
	MembersDone int
	Payload     any
	Err         error
	Plan        *Plan
}

// Snapshot captures the job's current state, progress and payload.
// MembersDone derives from the progress counter: for select batches it
// counts the budgets already covered by the seeds selected so far; for
// other batch jobs the counter reports members directly.
func (j *Job) Snapshot() JobSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobSnapshot{
		ID:        j.id,
		State:     j.state,
		K:         j.k,
		SeedsDone: int(j.seedsDone.Load()),
		Members:   j.members,
		Payload:   j.result,
		Err:       j.err,
		Plan:      j.plan,
	}
	switch {
	case j.state == StateDone:
		s.MembersDone = j.members
	case j.memberKs != nil:
		for _, k := range j.memberKs {
			if k <= s.SeedsDone {
				s.MembersDone++
			}
		}
	default:
		s.MembersDone = s.SeedsDone
		if s.MembersDone > j.members {
			s.MembersDone = j.members
		}
	}
	if j.state == StateDone {
		if res := extractSelectResult(j.result); res != nil {
			s.SeedsDone = len(res.Seeds)
		}
	}
	return s
}

// extractSelectResult views a job payload as a single selection result:
// directly for *SelectResult payloads, and through the sole member of a
// one-member select QueryAnswer — the shape every /v1/select job
// produces — so v1 clients can poll jobs regardless of which surface
// created them.
func extractSelectResult(payload any) *SelectResult {
	switch p := payload.(type) {
	case *SelectResult:
		return p
	case *QueryAnswer:
		if p != nil && p.Task == "select" && len(p.Members) == 1 {
			return p.Members[0].Result
		}
	}
	return nil
}

// Status snapshots the job as a v1 SelectResponse, including live
// per-seed progress while the job runs.
func (j *Job) Status() SelectResponse {
	s := j.Snapshot()
	resp := SelectResponse{
		JobID:     s.ID,
		State:     s.State,
		K:         s.K,
		SeedsDone: s.SeedsDone,
		Result:    extractSelectResult(s.Payload),
	}
	if s.Err != nil {
		resp.Error = s.Err.Error()
	}
	return resp
}

// Manager runs jobs on a bounded worker pool with a bounded queue and
// single-flight deduplication: submitting a key that is already pending
// or running attaches to the existing job instead of spawning another
// computation. Finished jobs are retained (up to maxJobs) so clients can
// poll results; the oldest finished jobs are evicted first.
//
// Every job runs under its own cancellable context (derived from the
// manager's): Cancel stops one job, Close cancels all in-flight work.
// The queue is a slice guarded by the manager lock (not a channel), so
// cancelling a queued job frees its slot immediately.
type Manager struct {
	baseCtx  context.Context
	stopJobs context.CancelFunc
	wg       sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond // signalled on queue push and on close
	queue    []*Job     // pending jobs awaiting a worker, FIFO
	queueCap int
	closed   bool
	jobs     map[string]*Job // by id, including finished ones
	history  []string        // job ids in creation order, for eviction
	inflight map[string]*Job // by key, pending/running only
	nextID   uint64
	maxJobs  int

	submitted, deduped, canceled atomic.Int64
}

// NewManager starts a pool of workers with the given queue capacity,
// retaining at most maxJobs job records. Non-positive arguments fall back
// to 1 worker / 64 queued / 1024 retained.
func NewManager(workers, queueCap, maxJobs int) *Manager {
	if workers <= 0 {
		workers = 1
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	if maxJobs <= 0 {
		maxJobs = 1024
	}
	baseCtx, stopJobs := context.WithCancel(context.Background())
	m := &Manager{
		baseCtx:  baseCtx,
		stopJobs: stopJobs,
		queueCap: queueCap,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		maxJobs:  maxJobs,
	}
	m.cond = sync.NewCond(&m.mu)
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

// Submit enqueues fn under the deduplication key with the given seed
// budget k. It returns the job and whether it was newly created (false
// means the caller attached to an in-flight job and fn was dropped).
// ErrQueueFull is returned when a new job cannot be queued.
func (m *Manager) Submit(key string, k int, fn JobFunc) (*Job, bool, error) {
	return m.SubmitQuery(key, k, 0, nil, nil, fn)
}

// SubmitQuery is Submit for planner queries: members/memberKs/plan attach
// the batch view served by job status, the v2 surface and the event
// stream. Deduplication is unchanged — two submissions sharing a key by
// construction share the query, so the attached view is identical.
func (m *Manager) SubmitQuery(key string, k, members int, memberKs []int, plan *Plan, fn JobFunc) (*Job, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.inflight[key]; ok {
		m.deduped.Add(1)
		return j, false, nil
	}
	if len(m.queue) >= m.queueCap {
		return nil, false, ErrQueueFull
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		id:       fmt.Sprintf("j%08x", m.nextID),
		key:      key,
		k:        k,
		fn:       fn,
		members:  members,
		memberKs: memberKs,
		plan:     plan,
		done:     make(chan struct{}),
		ctx:      ctx,
		cancel:   cancel,
		state:    StatePending,
	}
	m.nextID++
	m.jobs[j.id] = j
	m.history = append(m.history, j.id)
	m.inflight[key] = j
	m.queue = append(m.queue, j)
	m.submitted.Add(1)
	m.evictLocked()
	m.cond.Signal()
	return j, true, nil
}

// Get returns the job with the given id (including finished jobs still
// retained in history).
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel stops the job with the given id. A queued job is removed from
// the queue — freeing its slot immediately — and transitions to
// StateCanceled; a running job has its context cancelled and transitions
// once its JobFunc unwinds — promptly, since every selector honors
// cancellation — freeing the worker slot for queued work. accepted
// reports whether the job is (now or already) being cancelled; false
// with ok=true means the job had already completed and its outcome
// cannot be revoked. Cancel is idempotent.
func (m *Manager) Cancel(id string) (j *Job, accepted, ok bool) {
	m.mu.Lock()
	j, ok = m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, false, false
	}

	j.mu.Lock()
	switch j.state {
	case StatePending:
		j.cancelAsked = true
		j.state = StateCanceled
		j.err = context.Canceled
		j.mu.Unlock()
		// Free the queue slot and the dedup entry right away.
		for i, q := range m.queue {
			if q == j {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
		if m.inflight[j.key] == j {
			delete(m.inflight, j.key)
		}
		m.mu.Unlock()
		j.cancel()
		close(j.done)
		m.canceled.Add(1)
		return j, true, true
	case StateRunning:
		// Drop the dedup entry so new submissions start a fresh job
		// rather than attaching to one that is being torn down.
		if m.inflight[j.key] == j {
			delete(m.inflight, j.key)
		}
		asked := j.cancelAsked
		j.cancelAsked = true
		j.mu.Unlock()
		m.mu.Unlock()
		if !asked {
			j.cancel() // worker observes the JobFunc return and finalizes
		}
		return j, true, true
	case StateCanceled:
		j.mu.Unlock()
		m.mu.Unlock()
		return j, true, true
	default: // done or failed: too late to revoke
		j.mu.Unlock()
		m.mu.Unlock()
		return j, false, true
	}
}

// Submitted returns the number of jobs accepted (excluding deduplicated
// submissions).
func (m *Manager) Submitted() int64 { return m.submitted.Load() }

// Deduped returns the number of submissions that attached to an in-flight
// job instead of creating a new one.
func (m *Manager) Deduped() int64 { return m.deduped.Load() }

// Canceled returns the number of jobs that reached StateCanceled.
func (m *Manager) Canceled() int64 { return m.canceled.Load() }

// Close cancels all in-flight jobs and stops the workers once their
// current (now cancelled) jobs unwind; queued jobs that were never
// started remain pending.
func (m *Manager) Close() {
	m.stopJobs() // cancel every job context so running work returns promptly
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
	m.wg.Wait()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		m.run(j)
	}
}

// run executes one dequeued job to a terminal state.
func (m *Manager) run(j *Job) {
	j.mu.Lock()
	if j.state != StatePending { // cancelled after dequeue won the race
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.mu.Unlock()
	res, err := j.fn(j.ctx, func(seedsDone int) {
		j.seedsDone.Store(int64(seedsDone))
	})
	j.mu.Lock()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
	case j.ctx.Err() != nil && errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.err = err
		j.result = res // partial result, when the selector returned one
		m.canceled.Add(1)
	default:
		// Includes deadline expiry from a per-job timeout: the job
		// failed to produce its full result in time.
		j.state = StateFailed
		j.err = err
		j.result = res
	}
	j.mu.Unlock()
	j.cancel() // release the context's resources
	close(j.done)
	m.mu.Lock()
	if m.inflight[j.key] == j {
		delete(m.inflight, j.key)
	}
	m.mu.Unlock()
}

// evictLocked drops the oldest finished jobs while over maxJobs. Pending
// and running jobs are never dropped, so the record count can temporarily
// exceed the cap under a burst of active work.
func (m *Manager) evictLocked() {
	if len(m.jobs) <= m.maxJobs {
		return
	}
	kept := m.history[:0]
	for i, id := range m.history {
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		// Never evict a job still reachable through the dedup map: a
		// worker may have marked it terminal but not yet cleared the
		// inflight entry, and a racing Submit could attach to it — its
		// id must keep resolving.
		if len(m.jobs) > m.maxJobs && j.terminal() && m.inflight[j.key] != j {
			delete(m.jobs, id)
			continue
		}
		kept = append(kept, m.history[i])
	}
	m.history = kept
}

func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
}
