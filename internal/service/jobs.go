package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/holisticim/holisticim/internal/admission"
)

// Admission errors. All three are load-shedding signals carrying a
// retry hint (Manager.RetryAfterHint), not hard failures: handlers
// translate ErrQueueFull to 429 and the other two to 503, each with a
// Retry-After header, so a cluster router can tell overload (fail over
// to another replica) from a request that is itself broken.
var (
	// ErrQueueFull reports that the job queue is at capacity.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrPastDeadline reports a job whose deadline would expire before a
	// worker could plausibly start it — queueing it would only burn a
	// slot on work nobody can use.
	ErrPastDeadline = errors.New("service: deadline expires before the job could start")
	// ErrShuttingDown reports a submission against a draining manager.
	ErrShuttingDown = errors.New("service: shutting down")
)

// ShedReason classifies a load-shedding rejection for the per-priority
// shed counters backing im_jobs_shed_by_priority_total.
type ShedReason int

// The shed reasons, in counter order.
const (
	// ShedQueueFull: the submission found the queue at capacity (429).
	ShedQueueFull ShedReason = iota
	// ShedDeadline: the deadline could not survive the estimated queue
	// wait plus run time, so the job was refused at admission (503).
	ShedDeadline
	// ShedExpired: the deadline passed while the job sat in the queue;
	// a worker dropped it at dequeue instead of running it.
	ShedExpired
	// NumShedReasons sizes per-reason arrays.
	NumShedReasons int = iota
)

// String returns the metric-label form of r.
func (r ShedReason) String() string {
	switch r {
	case ShedQueueFull:
		return "queue_full"
	case ShedDeadline:
		return "deadline"
	default:
		return "expired"
	}
}

// JobFunc runs one computation. It must honor ctx — returning promptly
// with an error wrapping ctx.Err() when cancelled — and may call report
// with the number of progress units (seeds selected, or batch members
// estimated) completed so far to publish live progress. A cancelled or
// failed run may still return a non-nil partial payload alongside its
// error; the job retains it for status polling. Payloads are
// *SelectResult (v1 selections, sketch builds) or *QueryAnswer (planner
// queries).
type JobFunc func(ctx context.Context, report func(seedsDone int)) (any, error)

// Job is one asynchronous computation. Multiple requests with the same
// fingerprint share a single Job while it is in flight.
type Job struct {
	id     string
	key    string
	k      int // requested seed budget, for progress reporting
	fn     JobFunc
	done   chan struct{}
	ctx    context.Context // cancelled by Cancel and by Manager.Close
	cancel context.CancelFunc

	// Batch-query view, set at submission: how many members the query
	// has, the per-member seed budgets (select batches, for deriving
	// members-done from seed progress) and the immutable execution plan.
	members  int
	memberKs []int
	plan     *Plan
	// priority is the job's service class: workers drain all queued
	// interactive work before standard, and standard before batch.
	priority admission.Priority
	// expectedRun is the cost model's run-time prediction, folded into
	// admission-time deadline shedding (0 when no model is wired).
	expectedRun time.Duration
	// deadline, when non-zero, is the job's absolute completion bound: a
	// worker dequeuing it after expiry fails it without running fn.
	deadline   time.Time
	enqueuedAt time.Time // queue-wait measurement anchor

	seedsDone atomic.Int64

	mu          sync.Mutex
	state       JobState
	result      any
	err         error
	cancelAsked bool // a Cancel already fired for this job
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobSnapshot is a point-in-time view of a job, shared by the v1 and v2
// status shapes and the event stream.
type JobSnapshot struct {
	ID          string
	State       JobState
	K           int
	SeedsDone   int
	Members     int
	MembersDone int
	Payload     any
	Err         error
	Plan        *Plan
}

// Snapshot captures the job's current state, progress and payload.
// MembersDone derives from the progress counter: for select batches it
// counts the budgets already covered by the seeds selected so far; for
// other batch jobs the counter reports members directly.
func (j *Job) Snapshot() JobSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobSnapshot{
		ID:        j.id,
		State:     j.state,
		K:         j.k,
		SeedsDone: int(j.seedsDone.Load()),
		Members:   j.members,
		Payload:   j.result,
		Err:       j.err,
		Plan:      j.plan,
	}
	switch {
	case j.state == StateDone:
		s.MembersDone = j.members
	case j.memberKs != nil:
		for _, k := range j.memberKs {
			if k <= s.SeedsDone {
				s.MembersDone++
			}
		}
	default:
		s.MembersDone = s.SeedsDone
		if s.MembersDone > j.members {
			s.MembersDone = j.members
		}
	}
	if j.state == StateDone {
		if res := extractSelectResult(j.result); res != nil {
			s.SeedsDone = len(res.Seeds)
		}
	}
	return s
}

// extractSelectResult views a job payload as a single selection result:
// directly for *SelectResult payloads, and through the sole member of a
// one-member select QueryAnswer — the shape every /v1/select job
// produces — so v1 clients can poll jobs regardless of which surface
// created them.
func extractSelectResult(payload any) *SelectResult {
	switch p := payload.(type) {
	case *SelectResult:
		return p
	case *QueryAnswer:
		if p != nil && p.Task == "select" && len(p.Members) == 1 {
			return p.Members[0].Result
		}
	}
	return nil
}

// Status snapshots the job as a v1 SelectResponse, including live
// per-seed progress while the job runs.
func (j *Job) Status() SelectResponse {
	s := j.Snapshot()
	resp := SelectResponse{
		JobID:     s.ID,
		State:     s.State,
		K:         s.K,
		SeedsDone: s.SeedsDone,
		Result:    extractSelectResult(s.Payload),
	}
	if s.Err != nil {
		resp.Error = s.Err.Error()
	}
	return resp
}

// Manager runs jobs on a bounded worker pool with a bounded queue and
// single-flight deduplication: submitting a key that is already pending
// or running attaches to the existing job instead of spawning another
// computation. Finished jobs are retained (up to maxJobs) so clients can
// poll results; the oldest finished jobs are evicted first.
//
// The queue is priority-aware: one FIFO per service class, drained
// interactive → standard → batch, so queued sketch-path work always
// dispatches ahead of queued cold Monte-Carlo work regardless of
// arrival order. The capacity bound spans all classes — the point is
// dispatch order, not reserved slots.
//
// Every job runs under its own cancellable context (derived from the
// manager's): Cancel stops one job, Close cancels all in-flight work.
// The queues are slices guarded by the manager lock (not channels), so
// cancelling a queued job frees its slot immediately.
type Manager struct {
	baseCtx  context.Context
	stopJobs context.CancelFunc
	wg       sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond                      // signalled on queue push, job completion and close
	queues   [admission.NumPriorities][]*Job // pending jobs awaiting a worker, FIFO per class
	queueCap int
	workers  int
	closed   bool
	draining bool            // Shutdown in progress: submissions are refused
	running  int             // jobs currently executing a JobFunc
	jobs     map[string]*Job // by id, including finished ones
	history  []string        // job ids in creation order, for eviction
	inflight map[string]*Job // by key, pending/running only
	nextID   uint64
	maxJobs  int

	// avgRunNanos is an EWMA of completed JobFunc wall times, feeding the
	// queue-wait estimate behind deadline shedding and Retry-After hints.
	avgRunNanos atomic.Int64

	submitted, deduped, canceled, shed atomic.Int64
	// shedBy breaks the shed total down by (service class, reason) for
	// the labeled shed metric family.
	shedBy [admission.NumPriorities][NumShedReasons]atomic.Int64

	// obsMu guards the optional duration observers (metrics hookup).
	obsMu   sync.Mutex
	obsWait func(seconds float64) // queue wait of jobs that reached a worker
	obsRun  func(seconds float64) // JobFunc wall time
}

// SetDurationObservers installs callbacks observing, in seconds, each
// job's queue wait (measured when a worker starts it) and its run wall
// time. Nil callbacks disable the corresponding observation.
func (m *Manager) SetDurationObservers(wait, run func(seconds float64)) {
	m.obsMu.Lock()
	m.obsWait, m.obsRun = wait, run
	m.obsMu.Unlock()
}

func (m *Manager) durationObservers() (wait, run func(float64)) {
	m.obsMu.Lock()
	defer m.obsMu.Unlock()
	return m.obsWait, m.obsRun
}

// NewManager starts a pool of workers with the given queue capacity,
// retaining at most maxJobs job records. Non-positive arguments fall back
// to 1 worker / 64 queued / 1024 retained.
func NewManager(workers, queueCap, maxJobs int) *Manager {
	if workers <= 0 {
		workers = 1
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	if maxJobs <= 0 {
		maxJobs = 1024
	}
	baseCtx, stopJobs := context.WithCancel(context.Background())
	m := &Manager{
		baseCtx:  baseCtx,
		stopJobs: stopJobs,
		queueCap: queueCap,
		workers:  workers,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		maxJobs:  maxJobs,
	}
	m.cond = sync.NewCond(&m.mu)
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

// Submit enqueues fn under the deduplication key with the given seed
// budget k. It returns the job and whether it was newly created (false
// means the caller attached to an in-flight job and fn was dropped).
// ErrQueueFull is returned when a new job cannot be queued.
func (m *Manager) Submit(key string, k int, fn JobFunc) (*Job, bool, error) {
	return m.SubmitQuery(JobSpec{Key: key, K: k}, fn)
}

// JobSpec describes a submission beyond its JobFunc: the dedup key, the
// batch view (members/memberKs/plan) served by job status, the v2
// surface and the event stream, and an optional absolute deadline that
// drives admission-time load shedding.
type JobSpec struct {
	Key      string
	K        int
	Members  int
	MemberKs []int
	Plan     *Plan
	// Priority is the job's service class (default Interactive, the
	// zero value): workers drain lower classes completely before
	// touching higher ones.
	Priority admission.Priority
	// ExpectedRun, when positive, is the cost model's prediction of the
	// job's run time. Deadline shedding refuses the job when estimated
	// queue wait plus ExpectedRun overshoots Deadline — without it only
	// the queue wait counts.
	ExpectedRun time.Duration
	// Deadline, when non-zero, is the job's absolute completion bound.
	// A submission whose estimated queue wait already overshoots it is
	// refused with ErrPastDeadline instead of queueing work nobody can
	// use, and a worker dequeuing the job after expiry fails it without
	// running its JobFunc.
	Deadline time.Time
}

// SubmitQuery is Submit for planner queries. Deduplication is unchanged —
// two submissions sharing a key by construction share the query, so the
// attached batch view is identical.
func (m *Manager) SubmitQuery(spec JobSpec, fn JobFunc) (*Job, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.inflight[spec.Key]; ok {
		m.deduped.Add(1)
		return j, false, nil
	}
	if m.draining || m.closed {
		return nil, false, ErrShuttingDown
	}
	if m.queueLenLocked() >= m.queueCap {
		m.shedLocked(spec.Priority, ShedQueueFull)
		return nil, false, ErrQueueFull
	}
	// Deadline-aware shedding: refuse a job whose deadline would expire
	// while it sits in the queue (or, when the cost model predicted a
	// run time, while it runs). The wait estimate is coarse (EWMA of
	// recent job runtimes across whatever mix of work the pool saw), so
	// it only refuses when even the estimate cannot fit — an optimistic
	// bias that sheds the hopeless tail without guessing too eagerly.
	if !spec.Deadline.IsZero() {
		wait := m.queueWaitLocked(spec.Priority)
		if need := wait + spec.ExpectedRun; need > 0 && time.Now().Add(need).After(spec.Deadline) {
			m.shedLocked(spec.Priority, ShedDeadline)
			return nil, false, fmt.Errorf("%w (estimated wait %s + run %s)",
				ErrPastDeadline, wait.Round(time.Millisecond), spec.ExpectedRun.Round(time.Millisecond))
		}
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		id:          fmt.Sprintf("j%08x", m.nextID),
		key:         spec.Key,
		k:           spec.K,
		fn:          fn,
		members:     spec.Members,
		memberKs:    spec.MemberKs,
		plan:        spec.Plan,
		priority:    spec.Priority,
		expectedRun: spec.ExpectedRun,
		deadline:    spec.Deadline,
		enqueuedAt:  time.Now(),
		done:        make(chan struct{}),
		ctx:         ctx,
		cancel:      cancel,
		state:       StatePending,
	}
	m.nextID++
	m.jobs[j.id] = j
	m.history = append(m.history, j.id)
	m.inflight[spec.Key] = j
	m.queues[j.priority] = append(m.queues[j.priority], j)
	m.submitted.Add(1)
	m.evictLocked()
	m.cond.Signal()
	return j, true, nil
}

// queueLenLocked is the queued-job count across all service classes.
func (m *Manager) queueLenLocked() int {
	n := 0
	for p := range m.queues {
		n += len(m.queues[p])
	}
	return n
}

// shedLocked records one load-shedding rejection under its class and
// reason. (Only the counters are touched; callers hold m.mu for the
// queue state they just inspected, not for the atomics.)
func (m *Manager) shedLocked(p admission.Priority, reason ShedReason) {
	m.shed.Add(1)
	m.shedBy[p][reason].Add(1)
}

// queueWaitLocked estimates how long a job of class p submitted now
// would wait for a worker: queued jobs that dispatch before it — all
// classes at or below p, since workers drain in class order — spread
// over the pool, each costing the EWMA runtime. Zero until the first
// job completes (no data — never shed on a cold pool). Lower classes
// jumping the queue later are invisible here; the estimate stays a
// hint, corrected at dequeue time by the expiry check.
func (m *Manager) queueWaitLocked(p admission.Priority) time.Duration {
	avg := time.Duration(m.avgRunNanos.Load())
	if avg <= 0 {
		return 0
	}
	ahead := m.running
	for q := admission.Interactive; q <= p; q++ {
		ahead += len(m.queues[q])
	}
	if ahead < m.workers {
		return 0
	}
	return avg * time.Duration(1+(ahead-m.workers)/m.workers)
}

// RetryAfterHint suggests how long a shed client should wait before
// retrying: the estimated time for the full backlog to drain one slot,
// clamped to [1s, 60s] so the header is always actionable.
func (m *Manager) RetryAfterHint() time.Duration {
	return m.RetryAfterHintFor(admission.Batch)
}

// RetryAfterHintFor is RetryAfterHint scoped to a service class: only
// backlog that would dispatch ahead of class-p work counts, so an
// interactive client shed by a batch flood is told to retry soon — the
// flood does not block its lane.
func (m *Manager) RetryAfterHintFor(p admission.Priority) time.Duration {
	m.mu.Lock()
	wait := m.queueWaitLocked(p)
	m.mu.Unlock()
	if wait < time.Second {
		return time.Second
	}
	if wait > time.Minute {
		return time.Minute
	}
	return wait
}

// Depth reports the queued and running job counts — the load signal
// /v1/cluster/info advertises for shed-aware routing.
func (m *Manager) Depth() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queueLenLocked(), m.running
}

// DepthByPriority reports the queued jobs per service class, backing
// the im_jobs_queue_depth_by_priority gauge family.
func (m *Manager) DepthByPriority() [admission.NumPriorities]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out [admission.NumPriorities]int
	for p := range m.queues {
		out[p] = len(m.queues[p])
	}
	return out
}

// Shed returns how many submissions were refused by load shedding
// (queue-full and past-deadline rejections).
func (m *Manager) Shed() int64 { return m.shed.Load() }

// ShedCount returns the shed counter for one (class, reason) pair.
func (m *Manager) ShedCount(p admission.Priority, reason ShedReason) int64 {
	return m.shedBy[p][reason].Load()
}

// Get returns the job with the given id (including finished jobs still
// retained in history).
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel stops the job with the given id. A queued job is removed from
// the queue — freeing its slot immediately — and transitions to
// StateCanceled; a running job has its context cancelled and transitions
// once its JobFunc unwinds — promptly, since every selector honors
// cancellation — freeing the worker slot for queued work. accepted
// reports whether the job is (now or already) being cancelled; false
// with ok=true means the job had already completed and its outcome
// cannot be revoked. Cancel is idempotent.
func (m *Manager) Cancel(id string) (j *Job, accepted, ok bool) {
	m.mu.Lock()
	j, ok = m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, false, false
	}

	j.mu.Lock()
	switch j.state {
	case StatePending:
		j.cancelAsked = true
		j.state = StateCanceled
		j.err = context.Canceled
		j.mu.Unlock()
		// Free the queue slot and the dedup entry right away.
		q := m.queues[j.priority]
		for i, queued := range q {
			if queued == j {
				m.queues[j.priority] = append(q[:i], q[i+1:]...)
				break
			}
		}
		if m.inflight[j.key] == j {
			delete(m.inflight, j.key)
		}
		m.mu.Unlock()
		j.cancel()
		close(j.done)
		m.canceled.Add(1)
		return j, true, true
	case StateRunning:
		// Drop the dedup entry so new submissions start a fresh job
		// rather than attaching to one that is being torn down.
		if m.inflight[j.key] == j {
			delete(m.inflight, j.key)
		}
		asked := j.cancelAsked
		j.cancelAsked = true
		j.mu.Unlock()
		m.mu.Unlock()
		if !asked {
			j.cancel() // worker observes the JobFunc return and finalizes
		}
		return j, true, true
	case StateCanceled:
		j.mu.Unlock()
		m.mu.Unlock()
		return j, true, true
	default: // done or failed: too late to revoke
		j.mu.Unlock()
		m.mu.Unlock()
		return j, false, true
	}
}

// Submitted returns the number of jobs accepted (excluding deduplicated
// submissions).
func (m *Manager) Submitted() int64 { return m.submitted.Load() }

// Deduped returns the number of submissions that attached to an in-flight
// job instead of creating a new one.
func (m *Manager) Deduped() int64 { return m.deduped.Load() }

// Canceled returns the number of jobs that reached StateCanceled.
func (m *Manager) Canceled() int64 { return m.canceled.Load() }

// Close cancels all in-flight jobs and stops the workers once their
// current (now cancelled) jobs unwind; queued jobs that were never
// started remain pending.
func (m *Manager) Close() {
	m.stopJobs() // cancel every job context so running work returns promptly
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
	m.wg.Wait()
}

// Shutdown drains the manager gracefully: new submissions are refused
// with ErrShuttingDown, every still-queued job is cancelled (its slot
// was promised to no one), and running jobs get until ctx's deadline to
// finish before being cancelled like Close does. Always stops the
// workers before returning; the error is ctx.Err() when the drain
// timed out, nil when every running job completed in time.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.closed || m.draining {
		m.mu.Unlock()
		m.Close()
		return nil
	}
	m.draining = true
	var queued []*Job
	for p := range m.queues {
		queued = append(queued, m.queues[p]...)
		m.queues[p] = nil
	}
	m.mu.Unlock()

	// Cancel queued jobs exactly as Cancel's pending branch does, so
	// pollers observe the same canceled state either way.
	for _, j := range queued {
		j.mu.Lock()
		if j.state != StatePending {
			j.mu.Unlock()
			continue
		}
		j.cancelAsked = true
		j.state = StateCanceled
		j.err = fmt.Errorf("%w: %w", ErrShuttingDown, context.Canceled)
		j.mu.Unlock()
		m.mu.Lock()
		if m.inflight[j.key] == j {
			delete(m.inflight, j.key)
		}
		m.mu.Unlock()
		j.cancel()
		close(j.done)
		m.canceled.Add(1)
	}

	// Wait for running jobs, bounded by ctx. The waiter goroutine blocks
	// on the cond the workers broadcast at each job completion; a timeout
	// falls through to Close, which cancels the stragglers.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		m.mu.Lock()
		for m.running > 0 && !m.closed {
			m.cond.Wait()
		}
		m.mu.Unlock()
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	m.Close() // unblocks the waiter too, via closed + broadcast
	<-drained
	return err
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for m.queueLenLocked() == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		// Strict class order: the first non-empty queue wins, so queued
		// interactive work always dispatches before queued batch work.
		// Starvation of batch under sustained interactive load is the
		// intended trade — batch clients are told to back off (429/503 +
		// Retry-After) rather than batch work wedging the fast lane.
		var j *Job
		for p := range m.queues {
			if len(m.queues[p]) > 0 {
				j = m.queues[p][0]
				m.queues[p] = m.queues[p][1:]
				break
			}
		}
		m.running++
		m.mu.Unlock()
		m.run(j)
		m.mu.Lock()
		m.running--
		m.cond.Broadcast() // Shutdown waits on the running count
		m.mu.Unlock()
	}
}

// run executes one dequeued job to a terminal state.
func (m *Manager) run(j *Job) {
	j.mu.Lock()
	if j.state != StatePending { // cancelled after dequeue won the race
		j.mu.Unlock()
		return
	}
	// Dequeue-time load shedding: a job whose deadline passed while it
	// waited in the queue fails immediately instead of burning a worker
	// on a result its client has already given up on.
	if !j.deadline.IsZero() && time.Now().After(j.deadline) {
		j.state = StateFailed
		j.err = fmt.Errorf("%w: expired while queued", ErrPastDeadline)
		j.mu.Unlock()
		m.shed.Add(1)
		m.shedBy[j.priority][ShedExpired].Add(1)
		j.cancel()
		close(j.done)
		m.mu.Lock()
		if m.inflight[j.key] == j {
			delete(m.inflight, j.key)
		}
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.mu.Unlock()
	obsWait, obsRun := m.durationObservers()
	start := time.Now()
	if obsWait != nil {
		obsWait(start.Sub(j.enqueuedAt).Seconds())
	}
	res, err := j.fn(j.ctx, func(seedsDone int) {
		j.seedsDone.Store(int64(seedsDone))
	})
	// EWMA (α=1/4) of job runtimes feeds the queue-wait estimate. Workers
	// race the read-modify-write benignly: the estimate is a hint.
	sample := int64(time.Since(start))
	if obsRun != nil {
		obsRun(time.Duration(sample).Seconds())
	}
	if old := m.avgRunNanos.Load(); old == 0 {
		m.avgRunNanos.Store(sample)
	} else {
		m.avgRunNanos.Store(old + (sample-old)/4)
	}
	j.mu.Lock()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
	case j.ctx.Err() != nil && errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.err = err
		j.result = res // partial result, when the selector returned one
		m.canceled.Add(1)
	default:
		// Includes deadline expiry from a per-job timeout: the job
		// failed to produce its full result in time.
		j.state = StateFailed
		j.err = err
		j.result = res
	}
	j.mu.Unlock()
	j.cancel() // release the context's resources
	close(j.done)
	m.mu.Lock()
	if m.inflight[j.key] == j {
		delete(m.inflight, j.key)
	}
	m.mu.Unlock()
}

// evictLocked drops the oldest finished jobs while over maxJobs. Pending
// and running jobs are never dropped, so the record count can temporarily
// exceed the cap under a burst of active work.
func (m *Manager) evictLocked() {
	if len(m.jobs) <= m.maxJobs {
		return
	}
	kept := m.history[:0]
	for i, id := range m.history {
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		// Never evict a job still reachable through the dedup map: a
		// worker may have marked it terminal but not yet cleared the
		// inflight entry, and a racing Submit could attach to it — its
		// id must keep resolving.
		if len(m.jobs) > m.maxJobs && j.terminal() && m.inflight[j.key] != j {
			delete(m.jobs, id)
			continue
		}
		kept = append(kept, m.history[i])
	}
	m.history = kept
}

func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
}
