package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrQueueFull reports that the job queue is at capacity; callers should
// translate it to 503 and have clients retry.
var ErrQueueFull = errors.New("service: job queue full")

// Job is one asynchronous selection computation. Multiple requests with
// the same fingerprint share a single Job while it is in flight.
type Job struct {
	id   string
	key  string
	fn   func() (*SelectResult, error)
	done chan struct{}

	mu     sync.Mutex
	state  JobState
	result *SelectResult
	err    error
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status snapshots the job as a SelectResponse.
func (j *Job) Status() SelectResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	resp := SelectResponse{JobID: j.id, State: j.state, Result: j.result}
	if j.err != nil {
		resp.Error = j.err.Error()
	}
	return resp
}

// Manager runs jobs on a bounded worker pool with a bounded queue and
// single-flight deduplication: submitting a key that is already pending
// or running attaches to the existing job instead of spawning another
// computation. Finished jobs are retained (up to maxJobs) so clients can
// poll results; the oldest finished jobs are evicted first.
type Manager struct {
	queue chan *Job
	stop  chan struct{}
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job // by id, including finished ones
	history  []string        // job ids in creation order, for eviction
	inflight map[string]*Job // by key, pending/running only
	nextID   uint64
	maxJobs  int

	submitted, deduped atomic.Int64
}

// NewManager starts a pool of workers with the given queue capacity,
// retaining at most maxJobs job records. Non-positive arguments fall back
// to 1 worker / 64 queued / 1024 retained.
func NewManager(workers, queueCap, maxJobs int) *Manager {
	if workers <= 0 {
		workers = 1
	}
	if queueCap <= 0 {
		queueCap = 64
	}
	if maxJobs <= 0 {
		maxJobs = 1024
	}
	m := &Manager{
		queue:    make(chan *Job, queueCap),
		stop:     make(chan struct{}),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		maxJobs:  maxJobs,
	}
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

// Submit enqueues fn under the deduplication key. It returns the job and
// whether it was newly created (false means the caller attached to an
// in-flight job and fn was dropped). ErrQueueFull is returned when a new
// job cannot be queued.
func (m *Manager) Submit(key string, fn func() (*SelectResult, error)) (*Job, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.inflight[key]; ok {
		m.deduped.Add(1)
		return j, false, nil
	}
	j := &Job{
		id:    fmt.Sprintf("j%08x", m.nextID),
		key:   key,
		fn:    fn,
		done:  make(chan struct{}),
		state: StatePending,
	}
	m.nextID++
	// Register before enqueueing so a fast worker can never finish the
	// job while it is still invisible to Get and deduplication.
	m.jobs[j.id] = j
	m.history = append(m.history, j.id)
	m.inflight[key] = j
	select {
	case m.queue <- j:
	default:
		delete(m.jobs, j.id)
		delete(m.inflight, key)
		m.history = m.history[:len(m.history)-1]
		return nil, false, ErrQueueFull
	}
	m.submitted.Add(1)
	m.evictLocked()
	return j, true, nil
}

// Get returns the job with the given id (including finished jobs still
// retained in history).
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Submitted returns the number of jobs accepted (excluding deduplicated
// submissions).
func (m *Manager) Submitted() int64 { return m.submitted.Load() }

// Deduped returns the number of submissions that attached to an in-flight
// job instead of creating a new one.
func (m *Manager) Deduped() int64 { return m.deduped.Load() }

// Close stops the workers after their current jobs; queued jobs that were
// never started remain pending.
func (m *Manager) Close() {
	close(m.stop)
	m.wg.Wait()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		case j := <-m.queue:
			j.mu.Lock()
			j.state = StateRunning
			j.mu.Unlock()
			res, err := j.fn()
			j.mu.Lock()
			if err != nil {
				j.state = StateFailed
				j.err = err
			} else {
				j.state = StateDone
				j.result = res
			}
			j.mu.Unlock()
			close(j.done)
			m.mu.Lock()
			if m.inflight[j.key] == j {
				delete(m.inflight, j.key)
			}
			m.mu.Unlock()
		}
	}
}

// evictLocked drops the oldest finished jobs while over maxJobs. Pending
// and running jobs are never dropped, so the record count can temporarily
// exceed the cap under a burst of active work.
func (m *Manager) evictLocked() {
	if len(m.jobs) <= m.maxJobs {
		return
	}
	kept := m.history[:0]
	for i, id := range m.history {
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		// Never evict a job still reachable through the dedup map: a
		// worker may have marked it terminal but not yet cleared the
		// inflight entry, and a racing Submit could attach to it — its
		// id must keep resolving.
		if len(m.jobs) > m.maxJobs && j.terminal() && m.inflight[j.key] != j {
			delete(m.jobs, id)
			continue
		}
		kept = append(kept, m.history[i])
	}
	m.history = kept
}

func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateDone || j.state == StateFailed
}
