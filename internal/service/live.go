package service

import (
	"errors"
	"net/http"

	"github.com/holisticim/holisticim"
)

// handleMutateGraph applies an edge batch to a registered graph
// (POST /v1/graphs/{name}/edges). The batch is atomic — either every op
// is valid and the graph advances one version, or a 400 names the first
// offending op and nothing changes. On success the name's cached results
// are dropped and incremental background repairs are scheduled for its
// sketches (both via the registry's onMutate hook, before Mutate
// returns), so the response's version is never served from stale state.
func (s *Server) handleMutateGraph(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w, r) {
		return
	}
	name := r.PathValue("name")
	var req MutateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "empty edge batch")
		return
	}
	if len(req.Ops) > s.cfg.MaxMutationOps {
		writeError(w, http.StatusBadRequest,
			"batch of %d ops exceeds the cap %d", len(req.Ops), s.cfg.MaxMutationOps)
		return
	}
	ops := make([]holisticim.EdgeOp, len(req.Ops))
	for i, o := range req.Ops {
		ops[i] = holisticim.EdgeOp{
			Op:   holisticim.EdgeOpKind(o.Op),
			From: o.From,
			To:   o.To,
			P:    o.P,
			Phi:  o.Phi,
			W:    o.W,
		}
	}
	res, err := s.reg.Mutate(r.Context(), name, ops, holisticim.ApplyOptions{RebalanceLT: req.RebalanceLT})
	if err != nil {
		switch {
		case errors.Is(err, ErrGraphNotFound):
			writeError(w, http.StatusNotFound, "%v", err)
		case errors.Is(err, ErrGraphReplaced):
			writeError(w, http.StatusConflict, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{
		Graph:            name,
		Version:          res.Version,
		Nodes:            res.Nodes,
		Arcs:             res.Arcs,
		Applied:          res.Applied,
		Dirty:            res.Dirty,
		RepairsScheduled: s.sketches.CountFor(name),
	})
}
