package service

import (
	"fmt"
	"strings"
	"testing"

	"github.com/holisticim/holisticim"
)

func TestCacheHitAndMiss(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	want := &SelectResult{Algorithm: "stub", Seeds: []int32{1, 2}}
	c.Add("a", want)
	got, ok := c.Get("a")
	if !ok || got != want {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(2)
	c.Add("a", &SelectResult{})
	c.Add("b", &SelectResult{})
	c.Get("a") // a becomes most recently used
	c.Add("c", &SelectResult{})
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
	if c.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", c.Len())
	}
}

func TestCacheRefreshExistingKey(t *testing.T) {
	c := NewCache(2)
	c.Add("a", &SelectResult{Algorithm: "v1"})
	c.Add("a", &SelectResult{Algorithm: "v2"})
	if c.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", c.Len())
	}
	got, _ := c.Get("a")
	if got.(*SelectResult).Algorithm != "v2" {
		t.Fatalf("refresh kept old value %q", got.(*SelectResult).Algorithm)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Add("a", &SelectResult{})
	if _, ok := c.Get("a"); ok {
		t.Fatal("capacity-0 cache should never hit")
	}
}

// selectKey builds the production cache key for a one-member v1-style
// select, through the same path prepareQuery uses.
func selectKey(graph, alg string, k int, o Options) string {
	q := QueryRequest{Graph: graph, Task: "select", Algorithm: alg, K: k, Options: o}.toQuery()
	return queryKey(graph, q, 0)
}

// TestFingerprintStability pins the canonicalization contract the cache
// key depends on — via the production queryKey/Query.Fingerprint path:
// defaults resolve before hashing, irrelevant fields are excluded, and
// every relevant field separates keys.
func TestFingerprintStability(t *testing.T) {
	zero := selectKey("g", "easyim", 10, Options{})
	explicit := selectKey("g", "easyim", 10, Options{
		Model: "ic", PathLength: 3, Lambda: 1, Epsilon: 0.1, MCRuns: 10000, Seed: 1,
	})
	if zero != explicit {
		t.Fatalf("zero options %q != explicit defaults %q", zero, explicit)
	}
	if selectKey("g", "easyim", 10, Options{Workers: 8}) != zero {
		t.Fatal("Workers must not affect the fingerprint")
	}
	// Opinion-aware algorithms default to the OI model, so the same zero
	// Options must fingerprint differently under osim.
	if selectKey("g", "osim", 10, Options{}) == zero {
		t.Fatal("algorithm must separate fingerprints")
	}
	// The rebind generation separates keys while keeping the graph prefix
	// DropPrefix matches on.
	genKey := queryKey("g", QueryRequest{Graph: "g", Task: "select", Algorithm: "easyim", K: 10}.toQuery(), 3)
	if genKey == zero || !strings.HasPrefix(genKey, "graph=g;") {
		t.Fatalf("generation-fenced key %q", genKey)
	}
	variants := []string{
		selectKey("h", "easyim", 10, Options{}),
		selectKey("g", "easyim", 11, Options{}),
		selectKey("g", "easyim", 10, Options{Seed: 2}),
		selectKey("g", "easyim", 10, Options{MCRuns: 500}),
		selectKey("g", "easyim", 10, Options{Model: "lt"}),
		selectKey("g", "easyim", 10, Options{PathLength: 4}),
	}
	seen := map[string]int{zero: -1}
	for i, fp := range variants {
		if prev, dup := seen[fp]; dup {
			t.Fatalf("variant %d collides with %d: %q", i, prev, fp)
		}
		seen[fp] = i
	}
}

// TestFingerprintMatchesLibrary ensures the production cache key and the
// library Options.Fingerprint produce identical canonical strings for a
// single-k select, so out-of-process callers can precompute keys with
// the public API — and so v1 and v2 requests share entries.
func TestFingerprintMatchesLibrary(t *testing.T) {
	o := Options{Model: "oi-ic", Lambda: 2, MCRuns: 300, Seed: 9}
	libFP := holisticim.Options{
		Model: "oi-ic", Lambda: 2, MCRuns: 300, Seed: 9,
	}.Fingerprint(holisticim.AlgOSIM, 5)
	want := fmt.Sprintf("graph=g;%s", libFP)
	if got := selectKey("g", "osim", 5, o); got != want {
		t.Fatalf("key %q != %q", got, want)
	}
	// The batch form extends the same canonical family without colliding
	// with any single-k key.
	batch := queryKey("g", QueryRequest{Graph: "g", Task: "select", Algorithm: "osim",
		Ks: []int{5, 10}, Options: o}.toQuery(), 0)
	if batch == want || !strings.HasPrefix(batch, "graph=g;") {
		t.Fatalf("batch key %q", batch)
	}
}
