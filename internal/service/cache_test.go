package service

import (
	"fmt"
	"testing"

	"github.com/holisticim/holisticim"
)

func TestCacheHitAndMiss(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	want := &SelectResult{Algorithm: "stub", Seeds: []int32{1, 2}}
	c.Add("a", want)
	got, ok := c.Get("a")
	if !ok || got != want {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(2)
	c.Add("a", &SelectResult{})
	c.Add("b", &SelectResult{})
	c.Get("a") // a becomes most recently used
	c.Add("c", &SelectResult{})
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
	if c.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", c.Len())
	}
}

func TestCacheRefreshExistingKey(t *testing.T) {
	c := NewCache(2)
	c.Add("a", &SelectResult{Algorithm: "v1"})
	c.Add("a", &SelectResult{Algorithm: "v2"})
	if c.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", c.Len())
	}
	got, _ := c.Get("a")
	if got.Algorithm != "v2" {
		t.Fatalf("refresh kept old value %q", got.Algorithm)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Add("a", &SelectResult{})
	if _, ok := c.Get("a"); ok {
		t.Fatal("capacity-0 cache should never hit")
	}
}

// TestFingerprintStability pins the canonicalization contract the cache
// key depends on: defaults resolve before hashing, irrelevant fields are
// excluded, and every relevant field separates keys.
func TestFingerprintStability(t *testing.T) {
	zero := SelectRequest{Graph: "g", Algorithm: "easyim", K: 10}
	explicit := SelectRequest{Graph: "g", Algorithm: "easyim", K: 10, Options: Options{
		Model: "ic", PathLength: 3, Lambda: 1, Epsilon: 0.1, MCRuns: 10000, Seed: 1,
	}}
	if zero.fingerprint() != explicit.fingerprint() {
		t.Fatalf("zero options %q != explicit defaults %q", zero.fingerprint(), explicit.fingerprint())
	}
	workers := explicit
	workers.Options.Workers = 8
	if workers.fingerprint() != explicit.fingerprint() {
		t.Fatal("Workers must not affect the fingerprint")
	}
	// Opinion-aware algorithms default to the OI model, so the same zero
	// Options must fingerprint differently under osim.
	osim := SelectRequest{Graph: "g", Algorithm: "osim", K: 10}
	if osim.fingerprint() == zero.fingerprint() {
		t.Fatal("algorithm must separate fingerprints")
	}
	variants := []SelectRequest{
		{Graph: "h", Algorithm: "easyim", K: 10},
		{Graph: "g", Algorithm: "easyim", K: 11},
		{Graph: "g", Algorithm: "easyim", K: 10, Options: Options{Seed: 2}},
		{Graph: "g", Algorithm: "easyim", K: 10, Options: Options{MCRuns: 500}},
		{Graph: "g", Algorithm: "easyim", K: 10, Options: Options{Model: "lt"}},
		{Graph: "g", Algorithm: "easyim", K: 10, Options: Options{PathLength: 4}},
	}
	seen := map[string]int{zero.fingerprint(): -1}
	for i, v := range variants {
		fp := v.fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("variant %d collides with %d: %q", i, prev, fp)
		}
		seen[fp] = i
	}
}

// TestFingerprintMatchesLibrary ensures the service DTO and the library
// Options produce identical canonical strings, so out-of-process callers
// can precompute keys with the public API.
func TestFingerprintMatchesLibrary(t *testing.T) {
	o := Options{Model: "oi-ic", Lambda: 2, MCRuns: 300, Seed: 9}
	libFP := holisticim.Options{
		Model: "oi-ic", Lambda: 2, MCRuns: 300, Seed: 9,
	}.Fingerprint(holisticim.AlgOSIM, 5)
	req := SelectRequest{Graph: "g", Algorithm: "osim", K: 5, Options: o}
	want := fmt.Sprintf("graph=g;%s", libFP)
	if req.fingerprint() != want {
		t.Fatalf("fingerprint %q != %q", req.fingerprint(), want)
	}
}
