package service

import (
	"net/http"
	"testing"
	"time"
)

// waitSketchVersion polls the sketch listing until the sketch for graph
// g advertises graph_version >= want (background repair finished).
func waitSketchVersion(t *testing.T, ts, g string, want uint64) SketchInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var list struct {
			Sketches []SketchInfo `json:"sketches"`
		}
		if code := doJSON(t, "GET", ts+"/v1/sketches", nil, &list); code != http.StatusOK {
			t.Fatalf("GET sketches status %d", code)
		}
		for _, si := range list.Sketches {
			if si.Graph == g && si.GraphVersion >= want {
				return si
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("sketch never reached graph_version %d: %+v", want, list.Sketches)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMutateEndToEnd drives the live-update loop over HTTP: build a
// sketch, mutate the graph, watch background repair re-synchronize the
// sketch, and confirm queries are served fresh — never from stale state.
func TestMutateEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	buildTestSketch(t, ts.URL, SketchSpec{Graph: "g", Epsilon: 0.3, Seed: 5, BuildK: 10})

	// Warm the query cache with a degree selection.
	sel := SelectRequest{Graph: "g", Algorithm: "degree", K: 4}
	var first SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", sel, &first); code != http.StatusAccepted {
		t.Fatalf("warm select status %d", code)
	}
	pollJob(t, ts.URL, first.JobID)
	var warm SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", sel, &warm); code != http.StatusOK || !warm.Cached {
		t.Fatalf("repeat select not cached: status %d, %+v", code, warm)
	}

	// Mutate: remove one existing arc, add one absent arc.
	g, err := s.reg.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	from, to := int32(-1), int32(-1)
	for u := int32(0); u < g.NumNodes() && from < 0; u++ {
		for v := int32(0); v < g.NumNodes(); v++ {
			if u != v && !g.HasEdge(u, v) {
				from, to = u, v
				break
			}
		}
	}
	rmFrom := int32(0)
	rmTo := g.OutNeighbors(rmFrom)[0]
	p := 0.25
	var mres MutateResponse
	code := doJSON(t, "POST", ts.URL+"/v1/graphs/g/edges", MutateRequest{Ops: []EdgeOpSpec{
		{Op: "add", From: from, To: to, P: &p},
		{Op: "remove", From: rmFrom, To: rmTo},
	}}, &mres)
	if code != http.StatusOK {
		t.Fatalf("mutate status %d (%+v)", code, mres)
	}
	if mres.Graph != "g" || mres.Version != 1 || mres.Applied != 2 {
		t.Fatalf("mutate response: %+v", mres)
	}
	if len(mres.Dirty) == 0 || mres.RepairsScheduled != 1 {
		t.Fatalf("mutate response dirty/repairs: %+v", mres)
	}

	// The graph listing advertises the new version.
	var gi GraphInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/g", nil, &gi); code != http.StatusOK {
		t.Fatalf("GET graph status %d", code)
	}
	if gi.Version != 1 {
		t.Fatalf("graph version = %d, want 1", gi.Version)
	}
	if gi.Arcs != mres.Arcs {
		t.Fatalf("graph lists %d arcs, mutate reported %d", gi.Arcs, mres.Arcs)
	}

	// The warmed cache entry describes the old content: the same request
	// must now MISS and run a fresh job (generation-keyed cache).
	var again SelectResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/select", sel, &again); code != http.StatusAccepted {
		t.Fatalf("post-mutation select: status %d, %+v (stale cache served?)", code, again)
	}
	pollJob(t, ts.URL, again.JobID)

	// Background repair re-synchronizes the sketch to version 1.
	si := waitSketchVersion(t, ts.URL, "g", 1)
	if si.StaleSets != 0 || si.Staleness != 0 {
		t.Fatalf("exact repair left staleness: %+v", si)
	}

	// The repaired sketch serves the fast path against the NEW snapshot.
	fast := SelectRequest{Graph: "g", Algorithm: "imm", K: 5, Options: Options{Epsilon: 0.3, Seed: 5}}
	var fresp SelectResponse
	deadline := time.Now().Add(30 * time.Second)
	for {
		fresp = SelectResponse{}
		code := doJSON(t, "POST", ts.URL+"/v1/select", fast, &fresp)
		if code == http.StatusOK && fresp.Sketch {
			break
		}
		// A racing repair may not have re-matched yet; the server must
		// fall back to a job, never serve the stale sample.
		if code == http.StatusAccepted {
			pollJob(t, ts.URL, fresp.JobID)
		} else if code != http.StatusOK {
			t.Fatalf("fast-path select status %d (%+v)", code, fresp)
		}
		if time.Now().After(deadline) {
			t.Fatal("sketch fast path never resumed after repair")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(fresp.Result.Seeds) != 5 {
		t.Fatalf("fast-path result: %+v", fresp.Result)
	}

	st := s.Stats()
	if st.GraphMutations != 1 {
		t.Fatalf("stats mutations = %d", st.GraphMutations)
	}
	if st.SketchRepairs < 1 || st.SketchRepairFailures != 0 {
		t.Fatalf("stats repairs: %+v", st)
	}
}

func TestMutateValidation(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxMutationOps: 2})
	g, err := s.reg.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	nb := g.OutNeighbors(0)[0]
	p := 0.5
	bad := 1.5
	cases := []struct {
		name string
		url  string
		req  MutateRequest
		want int
	}{
		{"unknown-graph", "/v1/graphs/nope/edges", MutateRequest{Ops: []EdgeOpSpec{{Op: "remove", From: 0, To: nb}}}, http.StatusNotFound},
		{"empty-batch", "/v1/graphs/g/edges", MutateRequest{}, http.StatusBadRequest},
		{"too-many-ops", "/v1/graphs/g/edges", MutateRequest{Ops: []EdgeOpSpec{
			{Op: "remove", From: 0, To: nb}, {Op: "reweight", From: 0, To: nb, P: &p}, {Op: "reweight", From: 0, To: nb, Phi: &p},
		}}, http.StatusBadRequest},
		{"bad-op", "/v1/graphs/g/edges", MutateRequest{Ops: []EdgeOpSpec{{Op: "merge", From: 0, To: nb}}}, http.StatusBadRequest},
		{"bad-prob", "/v1/graphs/g/edges", MutateRequest{Ops: []EdgeOpSpec{{Op: "reweight", From: 0, To: nb, P: &bad}}}, http.StatusBadRequest},
		{"self-loop", "/v1/graphs/g/edges", MutateRequest{Ops: []EdgeOpSpec{{Op: "add", From: 3, To: 3}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp MutateResponse
			if code := doJSON(t, "POST", ts.URL+tc.url, tc.req, &resp); code != tc.want {
				t.Fatalf("status %d, want %d (%+v)", code, tc.want, resp)
			}
		})
	}
	// Nothing was applied: version stays 0 and no repairs ran.
	var gi GraphInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/graphs/g", nil, &gi); code != http.StatusOK || gi.Version != 0 {
		t.Fatalf("graph after rejected batches: status %d, %+v", code, gi)
	}
	if st := s.Stats(); st.GraphMutations != 0 || st.SketchRepairs != 0 {
		t.Fatalf("stats after rejected batches: %+v", st)
	}
}

// TestMutateCoalescedRepairs floods several batches and checks the
// repair scheduler coalesces them without losing the final version.
func TestMutateCoalescedRepairs(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	buildTestSketch(t, ts.URL, SketchSpec{Graph: "g", Epsilon: 0.4, Seed: 3, BuildK: 5})

	g, err := s.reg.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	// Five single-op batches: alternately remove and re-add one arc.
	u := int32(0)
	v := g.OutNeighbors(u)[0]
	p := 0.1
	for i := 0; i < 5; i++ {
		op := EdgeOpSpec{Op: "remove", From: u, To: v}
		if i%2 == 1 {
			op = EdgeOpSpec{Op: "add", From: u, To: v, P: &p}
		}
		var mres MutateResponse
		if code := doJSON(t, "POST", ts.URL+"/v1/graphs/g/edges", MutateRequest{Ops: []EdgeOpSpec{op}}, &mres); code != http.StatusOK {
			t.Fatalf("batch %d status %d (%+v)", i, code, mres)
		}
		if mres.Version != uint64(i+1) {
			t.Fatalf("batch %d produced version %d", i, mres.Version)
		}
	}
	si := waitSketchVersion(t, ts.URL, "g", 5)
	if si.StaleSets != 0 {
		t.Fatalf("staleness after coalesced repairs: %+v", si)
	}
	repairs, _, failed := s.sketches.RepairTotals()
	if repairs < 1 || repairs > 5 || failed != 0 {
		t.Fatalf("repair totals: repairs=%d failed=%d", repairs, failed)
	}
}
