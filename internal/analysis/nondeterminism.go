package analysis

import (
	"go/ast"
	"go/types"
)

// determinismCritical names the packages whose outputs must be pure
// functions of (graph, params, seed): the RR samplers, the sketch index
// built on them, and the splittable RNG itself. PR 3–6 rest on an index
// being reproducible regardless of worker count, wall-clock or map
// iteration order — Workers=8 must equal Workers=1 byte-for-byte, and
// incremental repair must replay untouched sets identically.
var determinismCritical = map[string]bool{
	"ris":    true,
	"sketch": true,
	"rng":    true,
}

// globalRandFuncs are the math/rand (and v2) package-level functions
// drawing from the process-global source. rand.New/NewSource/NewPCG et
// al. stay legal: a locally seeded generator is deterministic.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"Uint": true, "UintN": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// Nondeterminism forbids, in determinism-critical packages, the three
// ways hidden nondeterminism has historically crept into sampled output:
// wall-clock reads (time.Now), the process-global math/rand source, and
// ranging over a map where the iteration order can leak into results.
// A map range is accepted when it provably cannot leak order — every
// write that survives the loop is keyed by the loop variable — or when
// the collected result is sorted later in the same function.
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc: "forbid time.Now, global math/rand and order-leaking map iteration " +
		"in determinism-critical packages (internal/ris, internal/sketch, internal/rng)",
	AppliesTo: func(path, _ string) bool { return determinismCritical[lastSegment(path)] },
	Run:       runNondeterminism,
}

func runNondeterminism(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				obj := calleeObj(pass.Info, n)
				if isPkgFunc(obj, "time", "Now") {
					pass.Reportf(n.Pos(), "time.Now in a determinism-critical package: sampled output must be a pure function of (graph, params, seed)")
				}
				if (isPkgFunc(obj, "math/rand") || isPkgFunc(obj, "math/rand/v2")) && globalRandFuncs[obj.Name()] {
					pass.Reportf(n.Pos(), "global math/rand source in a determinism-critical package: derive a stream from rng.Split(seed, index) instead")
				}
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
}

// checkMapRange flags `for k := range m` over a map unless the loop is
// order-oblivious (all surviving writes keyed by k) or the enclosing
// function sorts after the loop.
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if keyedWritesOnly(pass, rng) {
		return
	}
	if fn := enclosingFunc(pass.Files, rng); fn != nil && sortsAfter(pass, fn, rng) {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order can leak into results: write keyed by the loop variable, or sort what the loop collects before it is used")
}

// keyedWritesOnly reports whether every assignment in the loop body that
// targets state declared outside the body is an index expression keyed
// (somewhere in its index) by the loop's key variable — e.g.
// `dst[k] = v`, `m2[k]++`, `delete(m, k)`. Such loops are
// order-oblivious: each iteration touches only its own key's slot.
func keyedWritesOnly(pass *Pass, rng *ast.RangeStmt) bool {
	keyIdent, _ := rng.Key.(*ast.Ident)
	if keyIdent == nil || keyIdent.Name == "_" {
		return false
	}
	keyObj := pass.Info.Defs[keyIdent]
	if keyObj == nil {
		return false
	}
	// Variables declared inside the loop body (and the key/value
	// themselves) are per-iteration scratch; writes to them are fine.
	localTo := func(id *ast.Ident) bool {
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()
	}
	usesKey := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == keyObj {
				found = true
			}
			return !found
		})
		return found
	}
	// An lvalue is safe when its root variable is loop-local or when it
	// is indexed by the key.
	safeLValue := func(e ast.Expr) bool {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			return id.Name == "_" || localTo(id)
		}
		if base := selectorBase(e); base != nil && localTo(base) {
			return true
		}
		for {
			switch v := ast.Unparen(e).(type) {
			case *ast.IndexExpr:
				if usesKey(v.Index) {
					return true
				}
				e = v.X
			case *ast.SelectorExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			default:
				return false
			}
		}
	}
	ok := true
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if !safeLValue(lhs) {
					ok = false
				}
			}
		case *ast.IncDecStmt:
			if !safeLValue(n.X) {
				ok = false
			}
		case *ast.SendStmt:
			ok = false // channel sends publish in iteration order
		case *ast.ReturnStmt:
			ok = false // which iteration returns depends on order
		case *ast.CallExpr:
			// Builtins are effect-free or covered by the lvalue rules
			// (delete's map argument order cannot leak; append's result
			// must land in a safe lvalue, checked via AssignStmt).
			// Any other call may capture iteration order — reject.
			if obj := calleeObj(pass.Info, n); obj != nil {
				if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
					return true
				}
			}
			ok = false
		}
		return ok
	})
	return ok
}

// sortsAfter reports whether fn calls sort.* or slices.Sort* after the
// loop ends — the "collect then sort" idiom that makes an unordered
// collection deterministic before anything observes it.
func sortsAfter(pass *Pass, fn *ast.FuncDecl, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, okc := n.(*ast.CallExpr)
		if !okc || call.Pos() < rng.End() {
			return !found
		}
		obj := calleeObj(pass.Info, call)
		if isPkgFunc(obj, "sort") || (isPkgFunc(obj, "slices") && len(obj.Name()) >= 4 && obj.Name()[:4] == "Sort") {
			found = true
		}
		return !found
	})
	return found
}
