package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/holisticim/holisticim/internal/analysis"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// TestLoadPackage is the loader smoke test: a real module package loads,
// typechecks against export data, and comes out clean under the full
// suite.
func TestLoadPackage(t *testing.T) {
	pkgs, err := analysis.Load(moduleRoot(t), "./internal/rng")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Pkg.Name() != "rng" {
		t.Fatalf("loaded package %q, want rng", pkg.Pkg.Name())
	}
	if fs := analysis.RunPackage(pkg, analysis.All()); len(fs) != 0 {
		for _, f := range fs {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// TestTreeClean asserts the whole tree passes the suite — the same
// invariant CI enforces with `go run ./cmd/imlint ./...`. Skipped in
// -short mode: it typechecks every package from source.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint is not a short test")
	}
	root := moduleRoot(t)
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from ./... — pattern resolution looks broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, f := range analysis.RunPackage(pkg, analysis.All()) {
			t.Errorf("%s", f)
		}
	}
}
