package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// lastSegment returns the final path element of an import path —
// analyzers scope themselves by it so fixture packages (testdata/src/ris
// loaded as "ris") match the same rules as the real tree
// (".../internal/ris").
func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// calleeObj resolves the object a call invokes: the function for
// f(...), pkg.F(...) and x.M(...), nil for indirect calls through
// non-selector expressions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the package-level function
// pkgPath.name (any name if names is empty).
func isPkgFunc(obj types.Object, pkgPath string, names ...string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// fieldOf returns the struct field a selector expression denotes, or
// nil when sel is not a field access.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// selectorBase walks a selector chain (x.a.b → x) to its base
// identifier, or nil for non-ident bases (calls, parens, indexes keep
// unwrapping where possible).
func selectorBase(expr ast.Expr) *ast.Ident {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// declaredInBody reports whether the identifier's object is a variable
// declared inside fn's body — the "still-local, not yet published"
// heuristic that lets constructors initialize guarded or atomic fields
// before the value escapes.
func declaredInBody(info *types.Info, fn *ast.FuncDecl, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || fn.Body == nil {
		return false
	}
	// Parameters and receivers are declared in the signature, before the
	// body's opening brace — exactly the shared-access cases that must
	// NOT be exempt.
	return v.Pos() > fn.Body.Lbrace && v.Pos() < fn.Body.Rbrace
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// funcDecls yields every function declaration of the files.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out = append(out, fd)
			}
		}
	}
	return out
}

// enclosingFuncs maps every node of interest to its enclosing function
// declaration by a single positional pass: a node belongs to the decl
// whose span contains it.
func enclosingFunc(files []*ast.File, pos ast.Node) *ast.FuncDecl {
	for _, f := range files {
		if pos.Pos() < f.Pos() || pos.Pos() > f.End() {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && pos.Pos() >= fd.Pos() && pos.End() <= fd.End() {
				return fd
			}
		}
	}
	return nil
}
