package analysis

import (
	"go/ast"
)

// SlogLint guards the logging discipline PR 8 established: every
// serving-layer component logs through a component-keyed slog logger
// (obs.NewLogger), never the legacy log package or raw stdout prints.
// A stray log.Printf bypasses the level filter, loses the component and
// request-id keys, and breaks line-oriented log scraping. Binaries
// (package main) are exempt — a CLI's stdout IS its interface — and
// test files are never analyzed.
var SlogLint = &Analyzer{
	Name: "sloglint",
	Doc: "forbid log.Print*/log.Fatal*/fmt.Print* in non-main packages: " +
		"use a component-keyed slog logger (obs.NewLogger) instead",
	AppliesTo: func(_, pkgName string) bool { return pkgName != "main" },
	Run:       runSlogLint,
}

var bannedLogFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

var bannedFmtFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

func runSlogLint(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(pass.Info, call)
			if obj == nil {
				return true
			}
			switch {
			case isPkgFunc(obj, "log") && bannedLogFuncs[obj.Name()]:
				pass.Reportf(call.Pos(), "log.%s in a library package: log through a component-keyed slog logger (obs.NewLogger) so level filtering and request ids survive", obj.Name())
			case isPkgFunc(obj, "fmt") && bannedFmtFuncs[obj.Name()]:
				pass.Reportf(call.Pos(), "fmt.%s writes raw stdout from a library package: return the value, or log through slog", obj.Name())
			}
			return true
		})
	}
}
