// Package analysistest exercises one imlint analyzer over a fixture
// package under testdata/src, mirroring the x/tools package of the same
// name: the fixture's `// want "regex"` (or backquoted) comments state
// the expected findings line by line, and the test fails on any
// unexpected finding or unmatched expectation. Fixtures run through the
// full driver pipeline — AppliesTo filtering, //lint:ignore suppression
// and stale-directive reporting — so they double as end-to-end proof
// that breaking an invariant makes imlint exit non-zero.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"github.com/holisticim/holisticim/internal/analysis"
)

var (
	wantRe   = regexp.MustCompile(`// want (.*)$`)
	quotedRe = regexp.MustCompile("\x60[^\x60]*\x60|\"(?:[^\"\\\\]|\\\\.)*\"")
)

// Run loads testdata/src/<fixture> (relative to the calling test) as
// import path <fixture> — the directory name is deliberate, since
// AppliesTo filters match on the path's last segment — runs the analyzer
// and diffs the findings against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkg, err := analysis.TypecheckFixture(moduleRoot(t), dir, fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	findings := analysis.RunPackage(pkg, []*analysis.Analyzer{a})

	type lineKey struct {
		file string
		line int
	}
	wants := map[lineKey][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, f := range findings {
		k := lineKey{f.Position.Filename, f.Position.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(f.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no finding matched want %q", k.file, k.line, re)
		}
	}
}

// moduleRoot walks up from the working directory to the go.mod, which
// anchors the `go list` invocations that resolve fixture imports.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}
