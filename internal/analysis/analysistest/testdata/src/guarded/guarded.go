// Package guarded is the guardedby fixture: `// guarded by mu` field
// annotations must be honored by every accessor. The flagged cases are
// the acceptance scenario for the analyzer — moving a guarded read
// outside its lock must produce a finding.
package guarded

import "sync"

type counter struct {
	mu sync.Mutex
	n  int            // guarded by mu
	m  map[string]int // guarded by mu
}

// Inc holds the exclusive lock: clean.
func (c *counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Peek reads without any lock.
func (c *counter) Peek() int {
	return c.n // want `read of n \(guarded by mu\) without holding mu in Peek`
}

// Bump writes without any lock.
func (c *counter) Bump() {
	c.n++ // want `write to n \(guarded by mu\) without holding mu\.Lock in Bump`
}

// putLocked's name promises the caller holds mu: clean by contract.
func (c *counter) putLocked(k string) {
	c.m[k]++
}

// New mutates a value that never left its constructor: no lock needed.
func New() *counter {
	c := &counter{m: map[string]int{}}
	c.n = 1
	return c
}

type rw struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

// Get holds the read lock: clean.
func (r *rw) Get() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}

// BadWrite only RLocks: a shared lock does not license mutation.
func (r *rw) BadWrite() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.v = 9 // want `write to v \(guarded by mu\) without holding mu\.Lock in BadWrite`
}

// Suppressed shows the escape hatch.
func (c *counter) Suppressed() int {
	//lint:ignore imlint/guardedby fixture: single-threaded startup path, no concurrent writer yet
	return c.n
}

type misannotated struct {
	// guarded by nosuch
	n int // want `guarded-by annotation names "nosuch", which is not a field of this struct`
}

func (m *misannotated) Get() int { return m.n }
