// Package service is the errenvelope fixture. The directory name
// matters: it shares its import-path segment with internal/service, so
// the serving-layer filter applies.
package service

import "net/http"

// writeError is the envelope: it alone may touch the raw status line.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write([]byte(`{"error":{"message":"` + msg + `"}}`))
}

// badHandler forks the wire contract with a text/plain error.
func badHandler(w http.ResponseWriter, _ *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest) // want `http\.Error bypasses the JSON error envelope`
}

// bareStatus sends an empty 500 body.
func bareStatus(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusInternalServerError) // want `bare WriteHeader\(500\) outside writeError`
}

// okHandler writes a success status: no envelope needed, clean.
func okHandler(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusCreated)
	_, _ = w.Write([]byte("{}"))
}

// proxy forwards a non-constant upstream status: the upstream already
// shaped the body, clean.
func proxy(w http.ResponseWriter, upstreamStatus int) {
	w.WriteHeader(upstreamStatus)
}

// goodHandler routes errors through the envelope, clean.
func goodHandler(w http.ResponseWriter, _ *http.Request) {
	writeError(w, http.StatusBadRequest, "bad k")
}

// legacy shows the escape hatch.
func legacy(w http.ResponseWriter, _ *http.Request) {
	//lint:ignore imlint/errenvelope fixture: legacy plaintext endpoint frozen by an external contract
	http.Error(w, "gone", http.StatusGone)
}

var (
	_ = badHandler
	_ = bareStatus
	_ = okHandler
	_ = proxy
	_ = goodHandler
	_ = legacy
)
