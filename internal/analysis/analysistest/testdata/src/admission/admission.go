// Package admission is the errenvelope fixture for the QoS layer. The
// real internal/admission is inert over the wire — it never writes an
// HTTP response — so the discipline holds by construction today. This
// fixture pins the rule against tomorrow: if a refactor moves rejection
// writing into the package, the responses must still be the envelope.
package admission

import "net/http"

// writeError is the envelope: it alone may touch the raw status line.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write([]byte(`{"error":{"message":"` + msg + `"}}`))
}

// throttledText rejects with a text/plain 429 — forks the contract.
func throttledText(w http.ResponseWriter, _ *http.Request) {
	http.Error(w, "slow down", http.StatusTooManyRequests) // want `http\.Error bypasses the JSON error envelope`
}

// bareThrottle sends an empty-bodied 429 — loses code and request id.
func bareThrottle(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusTooManyRequests) // want `bare WriteHeader\(429\) outside writeError`
}

// clientID only reads the request: wire-inert QoS code, clean.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	return r.RemoteAddr
}

// rejectThrough routes a refusal through the envelope, clean.
func rejectThrough(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, "client exceeded its request rate")
}
