// Package ris is the nondeterminism fixture. The directory name matters:
// it shares its import-path segment with internal/ris, so the analyzer's
// determinism-critical filter applies exactly as it does on the real
// sampler package.
package ris

import (
	"math/rand"
	"sort"
	"time"
)

func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in a determinism-critical package`
}

func Draw() int {
	return rand.Intn(10) // want `global math/rand source in a determinism-critical package`
}

// Local draws from a locally seeded generator: a pure function of seed,
// not flagged.
func Local(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// LeakOrder appends map keys in iteration order and never sorts: the
// order leaks into the result.
func LeakOrder(m map[int]int) []int {
	var out []int
	for k := range m { // want `map iteration order can leak into results`
		out = append(out, k)
	}
	return out
}

// KeyedWrites only writes through slots indexed by the loop key: each
// iteration touches its own slot, so order cannot leak.
func KeyedWrites(m, dst map[int]int) {
	for k, v := range m {
		dst[k] = v * 2
	}
}

// CollectThenSort is the canonical collect-then-sort idiom: the sort
// after the loop makes the collection deterministic before use.
func CollectThenSort(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Suppressed shows the escape hatch: a justified directive keeps the
// wall-clock read without a finding.
func Suppressed() int64 {
	//lint:ignore imlint/nondeterminism fixture: feeds a progress log line, never sampled output
	return time.Now().UnixNano()
}
