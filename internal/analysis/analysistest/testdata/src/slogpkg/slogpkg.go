// Package slogpkg is the sloglint fixture: library packages log through
// slog, never the legacy log package or raw stdout prints. It also
// hosts the stale-directive case: an ignore that excuses nothing is
// itself reported.
package slogpkg

import (
	"fmt"
	"log"
	"log/slog"
)

func Bad() {
	log.Printf("n=%d", 1) // want `log\.Printf in a library package`
	fmt.Println("done")   // want `fmt\.Println writes raw stdout from a library package`
}

// Good logs through slog and formats without printing: clean.
func Good(lg *slog.Logger) {
	lg.Info("done", "n", 1)
	_ = fmt.Sprintf("x=%d", 2)
}

// Suppressed shows the escape hatch.
func Suppressed() {
	//lint:ignore imlint/sloglint fixture: progress meter writes straight to the tty by design
	fmt.Println("50%")
}

// Stale carries a directive that suppresses nothing: the directive
// itself is the finding.
func Stale() {
	//lint:ignore imlint/sloglint fixture: excuses nothing // want `lint:ignore directive suppresses nothing`
	_ = 1 + 1
}
