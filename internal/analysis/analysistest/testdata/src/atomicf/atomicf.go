// Package atomicf is the atomicfield fixture: once any access to a
// field goes through sync/atomic, every access must.
package atomicf

import "sync/atomic"

type stats struct {
	hits int64 // accessed via atomic.AddInt64/LoadInt64 below
	size int64 // only ever plain: out of the analyzer's scope
}

func (s *stats) Hit() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) Loaded() int64 {
	return atomic.LoadInt64(&s.hits)
}

// Racy mixes a plain read into an otherwise-atomic field.
func (s *stats) Racy() int64 {
	return s.hits // want `plain access to hits, which is accessed via sync/atomic elsewhere.*atomic\.Int64`
}

// Grow touches size, which nothing accesses atomically: clean.
func (s *stats) Grow(n int64) {
	s.size += n
}

// newStats mutates a value still local to its constructor: clean.
func newStats() *stats {
	s := &stats{}
	s.hits = 0
	return s
}

// Reset shows the escape hatch.
func (s *stats) Reset() {
	//lint:ignore imlint/atomicfield fixture: callers serialize Reset during shutdown
	s.hits = 0
}

var _ = newStats
