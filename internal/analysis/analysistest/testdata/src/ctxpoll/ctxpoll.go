// Package ctxpoll is the ctxpoll fixture: Select*/Generate*/Repair*
// functions taking a context must poll it in every outermost loop. The
// flagged case is the acceptance scenario for the analyzer — deleting
// the ctx check from a qualifying loop must produce a finding.
package ctxpoll

import "context"

// tracker mimics im.Tracker: Interrupted carries the context
// internally, so a call to it counts as a poll.
type tracker struct{ ctx context.Context }

func (t *tracker) Interrupted() error { return t.ctx.Err() }

// SelectSeeds scans without ever checking the context.
func SelectSeeds(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want `loop in SelectSeeds has no context check`
		total += i
	}
	return total
}

// SelectPolled checks ctx.Err in the outer loop; the inner loop rides
// the outer poll. Clean.
func SelectPolled(ctx context.Context, n int) (int, error) {
	total := 0
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		for j := 0; j < n; j++ {
			total += j
		}
	}
	return total, nil
}

// SelectTracked polls through the tracker helper. Clean.
func SelectTracked(ctx context.Context, n int) error {
	tr := &tracker{ctx: ctx}
	for i := 0; i < n; i++ {
		if err := tr.Interrupted(); err != nil {
			return err
		}
	}
	return nil
}

// GenerateAll hands the context to its callee, which then owns the
// polling obligation. Clean.
func GenerateAll(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := work(ctx, i); err != nil {
			return err
		}
	}
	return nil
}

func work(ctx context.Context, _ int) error { return ctx.Err() }

// RepairBatches loops inside a closure run from a polled loop: the
// closure's loops are the call site's obligation, not flagged.
func RepairBatches(ctx context.Context, n int) int {
	sum := func(m int) int {
		t := 0
		for i := 0; i < m; i++ {
			t += i
		}
		return t
	}
	total := 0
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return total
		}
		total += sum(i)
	}
	return total
}

// Accumulate does not qualify (no Select/Generate/Repair prefix): no
// obligation, clean.
func Accumulate(_ context.Context, n int) int {
	t := 0
	for i := 0; i < n; i++ {
		t += i
	}
	return t
}

// GenerateDrained shows the escape hatch for loops that must run to
// completion.
func GenerateDrained(_ context.Context, parts []int) int {
	t := 0
	//lint:ignore imlint/ctxpoll fixture: append-only drain of already-computed parts
	for _, p := range parts {
		t += p
	}
	return t
}
