package analysistest

import (
	"testing"

	"github.com/holisticim/holisticim/internal/analysis"
)

// One fixture package per analyzer. Each contains at least one flagged
// case, one true negative and one suppressed case; the flagged cases
// are the ISSUE's acceptance scenarios (a Select loop with its ctx
// check deleted, a guarded read moved outside its lock, ...).

func TestNondeterminism(t *testing.T) { Run(t, analysis.Nondeterminism, "ris") }
func TestGuardedBy(t *testing.T)      { Run(t, analysis.GuardedBy, "guarded") }
func TestAtomicField(t *testing.T)    { Run(t, analysis.AtomicField, "atomicf") }
func TestCtxPoll(t *testing.T)        { Run(t, analysis.CtxPoll, "ctxpoll") }
func TestErrEnvelope(t *testing.T)    { Run(t, analysis.ErrEnvelope, "service") }
func TestErrEnvelopeAdmission(t *testing.T) {
	Run(t, analysis.ErrEnvelope, "admission")
}
func TestSlogLint(t *testing.T) { Run(t, analysis.SlogLint, "slogpkg") }
