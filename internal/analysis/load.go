package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// LoadedPackage is one package parsed and typechecked from source,
// ready for analysis.
type LoadedPackage struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// goList runs `go list -deps -export -json` in dir over the patterns and
// returns every listed package. -export compiles (into the build cache)
// and reports the gc export data of each package, which is how the
// typechecker resolves imports without golang.org/x/tools: dependencies
// are loaded from export data, only the analyzed packages themselves are
// checked from source.
func goList(dir string, patterns ...string) ([]listEntry, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,DepOnly",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(&out)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportImporter resolves imports from a map of import path → gc export
// data file, as produced by goList.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// typecheckDir parses dir's Go files (names, relative to dir) and
// typechecks them as import path path against the export map. Test
// files are never passed in: the invariants the suite guards are
// production-code invariants, and analyzing _test.go files would flag
// the deterministic-clock and printing idioms tests legitimately use.
func typecheckDir(fset *token.FileSet, dir, path string, fileNames []string, exports map[string]string) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: exportImporter(fset, exports),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", path, err)
	}
	return &LoadedPackage{Path: path, Dir: dir, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Load lists, parses and typechecks the packages matching the patterns
// (relative to moduleDir), returning them in import-path order. The
// tree must build; a package that does not compile fails the load.
func Load(moduleDir string, patterns ...string) ([]*LoadedPackage, error) {
	entries, err := goList(moduleDir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	var targets []listEntry
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	fset := token.NewFileSet()
	pkgs := make([]*LoadedPackage, 0, len(targets))
	for _, t := range targets {
		pkg, err := typecheckDir(fset, t.Dir, t.ImportPath, t.GoFiles, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// StdExports returns the export-data map for the given std packages and
// all their dependencies, for typechecking fixture packages outside the
// module. moduleDir anchors the `go` invocation.
func StdExports(moduleDir string, imports []string) (map[string]string, error) {
	if len(imports) == 0 {
		return map[string]string{}, nil
	}
	entries, err := goList(moduleDir, imports...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
	}
	return exports, nil
}

// TypecheckFixture parses and typechecks one fixture directory as
// import path path. Fixtures import only the standard library.
func TypecheckFixture(moduleDir, dir, path string) (*LoadedPackage, error) {
	names, err := fixtureFiles(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	// Two parses: a throwaway one to learn the import set, then the real
	// typecheck against those packages' export data.
	importSet := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	exports, err := StdExports(moduleDir, imports)
	if err != nil {
		return nil, err
	}
	return typecheckDir(fset, dir, path, names, exports)
}

func fixtureFiles(dir string) ([]string, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".go") {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in fixture %s", dir)
	}
	return names, nil
}
