package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicField enforces all-or-nothing atomicity: a struct field that is
// ever passed to a sync/atomic function (atomic.AddInt64(&x.n, 1), …)
// must be accessed through sync/atomic everywhere in the package. A
// plain read racing an atomic write is still a data race — one the race
// detector only catches when both sides happen to run concurrently in a
// test. The typed atomics (atomic.Int64 et al., which the obs registry
// bridges share across the serving layers) are immune by construction
// and therefore out of scope; this analyzer exists for the function-
// style escape hatch.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "a field ever accessed via sync/atomic functions must be accessed " +
		"atomically everywhere (mixed plain/atomic access is a data race)",
	Run: runAtomicField,
}

func runAtomicField(pass *Pass) {
	// Phase 1: fields whose address is taken by a sync/atomic call, and
	// the selector expressions already blessed by such calls.
	atomicFields := map[*types.Var]bool{}
	blessed := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(pass.Info, call)
			if !isPkgFunc(obj, "sync/atomic") || !isAtomicOp(obj.Name()) {
				return true
			}
			for _, arg := range call.Args {
				un, oku := ast.Unparen(arg).(*ast.UnaryExpr)
				if !oku || un.Op != token.AND {
					continue
				}
				sel, oks := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !oks {
					continue
				}
				if field := fieldOf(pass.Info, sel); field != nil {
					atomicFields[field] = true
					blessed[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	// Phase 2: every other access to those fields is a violation, unless
	// the value is still local to its constructor.
	for _, fn := range funcDecls(pass.Files) {
		if fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || blessed[sel] {
				return true
			}
			field := fieldOf(pass.Info, sel)
			if field == nil || !atomicFields[field] {
				return true
			}
			if base := selectorBase(sel.X); base != nil && declaredInBody(pass.Info, fn, base) {
				return true
			}
			pass.Reportf(sel.Pos(), "plain access to %s, which is accessed via sync/atomic elsewhere in this package — use the atomic API (or a typed atomic.%s)",
				field.Name(), suggestTyped(field))
			return true
		})
	}
}

// isAtomicOp reports whether name is a sync/atomic operation on a
// pointed-to value; the package has no other exported functions taking
// addresses.
func isAtomicOp(name string) bool {
	for _, p := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// suggestTyped guesses the typed-atomic replacement for a field's type.
func suggestTyped(field *types.Var) string {
	if b, ok := field.Type().Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		}
	}
	return "Value"
}
