package analysis

// All returns the full imlint suite, in the order diagnostics group
// most readably: determinism first (the load-bearing invariant), then
// concurrency, then serving discipline.
func All() []*Analyzer {
	return []*Analyzer{
		Nondeterminism,
		GuardedBy,
		AtomicField,
		CtxPoll,
		ErrEnvelope,
		SlogLint,
	}
}
