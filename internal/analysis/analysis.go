// Package analysis is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis shape, carrying the project-specific
// analyzers behind cmd/imlint.
//
// The system's correctness story rests on invariants no off-the-shelf
// tool checks: deterministic split-seed RR sampling (worker count must
// never change a sample), mutex-guarded state swapped under live
// mutation, context-polling hot loops, the uniform JSON error envelope
// and the slog logging discipline. Each analyzer in this package encodes
// one of those invariants as a mechanical check that CI runs on every
// change; docs/lint.md documents the invariant, a historical bug it
// would have caught, and the suppression syntax per analyzer.
//
// The framework mirrors x/tools: an Analyzer owns a Run function over a
// Pass (one typechecked package), diagnostics carry positions, and
// fixture packages under testdata/src are exercised by the analysistest
// sub-package with `// want` expectations. It is intentionally smaller:
// no facts, no modular result sharing — every analyzer is a
// whole-package (or package-filtered) syntax+types walk, which is all
// the suite needs.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one typechecked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // import path the package was loaded as
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the suppression key: //lint:ignore imlint/<Name> reason.
	Name string
	// Doc is a one-paragraph description shown by imlint -list.
	Doc string
	// AppliesTo filters packages by import path and package name; nil
	// means the analyzer runs on every package.
	AppliesTo func(path, pkgName string) bool
	// Run reports the package's violations through pass.Reportf.
	Run func(pass *Pass)
}

// Finding is one unsuppressed diagnostic, positioned for printing.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (imlint/%s)", f.Position, f.Message, f.Analyzer)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers map[string]bool // bare analyzer names
	used      bool
	pos       token.Pos
}

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s*(.*)$`)

// parseIgnores collects every //lint:ignore directive of the files. A
// directive suppresses matching diagnostics on its own line and on the
// line directly below it (the "annotate the statement above it" style).
// Directives must carry a reason; reasonless or non-imlint-keyed ones
// are returned as diagnostics of the driver itself.
func parseIgnores(fset *token.FileSet, files []*ast.File) ([]*ignoreDirective, []Finding) {
	var dirs []*ignoreDirective
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Finding{
						Analyzer: "imlint",
						Position: pos,
						Message:  "lint:ignore directive without a reason",
					})
					continue
				}
				names := map[string]bool{}
				ok := true
				for _, key := range strings.Split(m[1], ",") {
					name, found := strings.CutPrefix(key, "imlint/")
					if !found {
						ok = false
						break
					}
					names[name] = true
				}
				if !ok {
					// Another tool's directive (e.g. staticcheck); not ours.
					continue
				}
				dirs = append(dirs, &ignoreDirective{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: names,
					pos:       c.Pos(),
				})
			}
		}
	}
	return dirs, bad
}

// RunPackage runs the analyzers over one loaded package and returns the
// unsuppressed findings (plus findings for malformed or unused
// suppression directives), sorted by position.
func RunPackage(pkg *LoadedPackage, analyzers []*Analyzer) []Finding {
	dirs, findings := parseIgnores(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		if a.AppliesTo != nil && !a.AppliesTo(pkg.Path, pkg.Pkg.Name()) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
		}
		a.Run(pass)
	diags:
		for _, d := range pass.diags {
			p := pkg.Fset.Position(d.Pos)
			for _, dir := range dirs {
				if dir.analyzers[a.Name] && dir.file == p.Filename &&
					(dir.line == p.Line || dir.line == p.Line-1) {
					dir.used = true
					continue diags
				}
			}
			findings = append(findings, Finding{Analyzer: a.Name, Position: p, Message: d.Message})
		}
	}
	// An ignore that suppresses nothing is stale: the code it excused was
	// fixed or moved, and keeping it would silently excuse a future bug.
	for _, dir := range dirs {
		if !dir.used && coversAny(dir, analyzers) {
			findings = append(findings, Finding{
				Analyzer: "imlint",
				Position: pkg.Fset.Position(dir.pos),
				Message:  "lint:ignore directive suppresses nothing (stale?)",
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings
}

// coversAny reports whether the directive names at least one analyzer
// that actually ran — a directive for an analyzer outside this run (e.g.
// imlint -only) must not be reported stale.
func coversAny(dir *ignoreDirective, analyzers []*Analyzer) bool {
	for _, a := range analyzers {
		if dir.analyzers[a.Name] {
			return true
		}
	}
	return false
}
