package analysis

import (
	"go/ast"
	"go/constant"
)

// ErrEnvelope guards the uniform JSON error envelope PR 5 introduced:
// every error a serving handler emits must flow through writeError, so
// all of them carry {"error":{code,message,request_id}} and the shared
// obs.ErrorCode mapping. http.Error writes text/plain and a bare
// WriteHeader(4xx/5xx) sends an empty body — both silently fork the
// wire contract (and lose the request id the middleware minted), which
// is exactly how the pre-PR 5 handlers drifted apart.
//
// Non-constant statuses (a proxy forwarding an upstream response's
// code) are legal: the upstream already shaped the body.
var ErrEnvelope = &Analyzer{
	Name: "errenvelope",
	Doc: "in internal/service, internal/cluster and internal/admission, error " +
		"responses must go through writeError — no http.Error, no bare " +
		"WriteHeader(4xx/5xx)",
	AppliesTo: func(path, _ string) bool {
		seg := lastSegment(path)
		return seg == "service" || seg == "cluster" || seg == "admission"
	},
	Run: runErrEnvelope,
}

// envelopeWriters may touch the raw status line: writeError is the
// envelope, and writeJSON is the shared body+status emitter it (and
// every success path) rides on.
var envelopeWriters = map[string]bool{"writeError": true, "writeJSON": true}

func runErrEnvelope(pass *Pass) {
	for _, fn := range funcDecls(pass.Files) {
		if fn.Body == nil || envelopeWriters[fn.Name.Name] {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgFunc(calleeObj(pass.Info, call), "net/http", "Error") {
				pass.Reportf(call.Pos(), "http.Error bypasses the JSON error envelope: use writeError so the response carries {\"error\":{code,message,request_id}}")
				return true
			}
			if sel, oks := ast.Unparen(call.Fun).(*ast.SelectorExpr); oks &&
				sel.Sel.Name == "WriteHeader" && len(call.Args) == 1 {
				if status, known := constStatus(pass, call.Args[0]); known && status >= 400 {
					pass.Reportf(call.Pos(), "bare WriteHeader(%d) outside writeError: error statuses must carry the JSON error envelope", status)
				}
			}
			return true
		})
	}
}

// constStatus evaluates an expression to a constant int when possible.
func constStatus(pass *Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return v, exact
}
