package analysis

import (
	"go/ast"
	"strings"
)

// CtxPoll enforces the cancellation discipline PR 2 established: the
// selection and sampling entry points — functions named Select*,
// Generate* or Repair* that take a context — run loops proportional to
// the graph (nodes, RR sets, θ), and every such loop must be able to
// stop when the context is cancelled. A loop passes when its body polls
// the context (ctx.Err(), <-ctx.Done(), a select on Done), calls the
// im.Tracker's Interrupted helper (the project's canonical per-seed
// poll, which carries the context internally), or hands the context to
// a callee — the callee then owns the polling obligation.
//
// Only outermost loops are checked: an inner loop is reached (and
// re-reached) through its outer loop's poll, matching the
// "checkpoint every N sets" granularity the samplers use. Loops inside
// function literals are skipped for the same reason — a closure runs
// only when called, and the calling loop carries the obligation.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc: "hot loops in Select*/Generate*/Repair* bodies must poll the " +
		"context (ctx.Err, ctx.Done, tracker.Interrupted, or a ctx-taking callee)",
	Run: runCtxPoll,
}

func runCtxPoll(pass *Pass) {
	for _, fn := range funcDecls(pass.Files) {
		if fn.Body == nil || !ctxPollQualifies(pass, fn) {
			continue
		}
		checkLoops(pass, fn.Name.Name, fn.Body, false)
	}
}

// ctxPollQualifies reports whether fn is a cancellation-obligated entry
// point: a Select/Generate/Repair-prefixed name (case-insensitive, so
// the selectLocked-style bodies of public entry points are covered too)
// with a context parameter.
func ctxPollQualifies(pass *Pass, fn *ast.FuncDecl) bool {
	lower := strings.ToLower(fn.Name.Name)
	if !strings.HasPrefix(lower, "select") && !strings.HasPrefix(lower, "generate") && !strings.HasPrefix(lower, "repair") {
		return false
	}
	for _, field := range fn.Type.Params.List {
		if t := pass.Info.TypeOf(field.Type); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// checkLoops walks a statement tree; insideLoop suppresses reports on
// nested loops (the outermost loop is the unit of the obligation).
func checkLoops(pass *Pass, fnName string, n ast.Node, insideLoop bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		var body *ast.BlockStmt
		switch l := m.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		case *ast.FuncLit:
			// A closure's loops run at its call sites; the loop that
			// calls it is the one that must poll.
			return false
		default:
			return true
		}
		if !insideLoop && !hasCtxCheck(pass, m) {
			pass.Reportf(m.Pos(), "loop in %s has no context check: poll ctx.Err()/tracker.Interrupted or pass ctx to a callee so cancellation can land", fnName)
		}
		// Descend manually so nested loops know they are covered by (or
		// already reported under) this one.
		checkLoops(pass, fnName, body, true)
		return false
	})
}

// hasCtxCheck reports whether the subtree contains a recognized
// cancellation point.
func hasCtxCheck(pass *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, oks := ast.Unparen(call.Fun).(*ast.SelectorExpr); oks {
			// ctx.Err() / ctx.Done() on any context-typed receiver.
			if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && len(call.Args) == 0 {
				if t := pass.Info.TypeOf(sel.X); t != nil && isContextType(t) {
					found = true
					return false
				}
			}
			// tracker.Interrupted(...): the im package's polling helper
			// carries its context internally.
			if sel.Sel.Name == "Interrupted" {
				found = true
				return false
			}
		}
		// A callee receiving the context inherits the polling obligation.
		for _, arg := range call.Args {
			if t := pass.Info.TypeOf(arg); t != nil && isContextType(t) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
