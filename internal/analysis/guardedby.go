package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy enforces `// guarded by <mu>` field annotations: every read
// or write of an annotated field must happen in a function that locks
// that mutex (flow-insensitively — the lock call must appear somewhere
// in the same function), in a `...Locked` helper whose name promises the
// caller holds it, or on a value still local to its constructor. Writes
// additionally require the exclusive Lock: a function that only ever
// RLocks cannot legally mutate the field.
//
// This is exactly the class of bug PR 6 shipped: SelectPrefixes read
// Index.g outside Index.mu while Repair swapped it, caught only by a
// late -race test. The annotation turns that convention into a lint
// break.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: "fields annotated `// guarded by <mu>` must only be accessed with " +
		"that mutex held in the enclosing function (or from *Locked helpers)",
	Run: runGuardedBy,
}

var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardInfo ties an annotated field to its guarding mutex field.
type guardInfo struct {
	mu     *types.Var
	muName string
}

func runGuardedBy(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	for _, fn := range funcDecls(pass.Files) {
		if fn.Body == nil {
			continue
		}
		checkGuardedAccesses(pass, fn, guards)
	}
}

// collectGuards scans struct declarations for annotated fields and
// resolves each annotation to a sibling mutex field.
func collectGuards(pass *Pass) map[*types.Var]guardInfo {
	guards := map[*types.Var]guardInfo{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				muName := guardAnnotation(field)
				if muName == "" {
					continue
				}
				mu := findField(pass, st, muName)
				if mu == nil {
					pass.Reportf(field.Pos(), "guarded-by annotation names %q, which is not a field of this struct", muName)
					continue
				}
				for _, name := range field.Names {
					if v, okv := pass.Info.Defs[name].(*types.Var); okv {
						guards[v] = guardInfo{mu: mu, muName: muName}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment, empty when unannotated. A doc comment on a grouped field
// declaration annotates every field of the group.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func findField(pass *Pass, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				v, _ := pass.Info.Defs[n].(*types.Var)
				return v
			}
		}
	}
	return nil
}

// lockedMutexes returns the mutex field objects fn Lock()s and RLock()s
// anywhere in its body. Flow-insensitive by design: holding the lock
// somewhere in the function is taken as holding it everywhere, which
// catches the "forgot to lock at all" class of bug without false
// positives on lock/unlock/relock sequences.
func lockedMutexes(pass *Pass, fn *ast.FuncDecl) (write, read map[*types.Var]bool) {
	write, read = map[*types.Var]bool{}, map[*types.Var]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Lock" && name != "RLock" {
			return true
		}
		// Resolve the mutex expression x.mu (or plain mu for a
		// package-level mutex) to its variable.
		var muVar *types.Var
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			muVar = fieldOf(pass.Info, x)
		case *ast.Ident:
			muVar, _ = pass.Info.Uses[x].(*types.Var)
		}
		if muVar == nil {
			return true
		}
		if name == "Lock" {
			write[muVar] = true
		}
		read[muVar] = true
		return true
	})
	return write, read
}

// writeTargetSels collects the selector expressions fn writes through:
// assignment left-hand sides, ++/--, and address-taking (a guarded
// field whose address escapes leaves the lock's protection entirely).
// Writing an element of a guarded slice or map field (`x.counts[v] = 0`)
// counts as writing the field.
func writeTargetSels(fn *ast.FuncDecl) map[*ast.SelectorExpr]bool {
	targets := map[*ast.SelectorExpr]bool{}
	mark := func(e ast.Expr) {
		for {
			switch v := ast.Unparen(e).(type) {
			case *ast.SelectorExpr:
				targets[v] = true
				return
			case *ast.IndexExpr:
				e = v.X
			default:
				return
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return targets
}

func checkGuardedAccesses(pass *Pass, fn *ast.FuncDecl, guards map[*types.Var]guardInfo) {
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		// The name is the contract: the caller holds the mutex (or, in a
		// constructor, owns the value outright).
		return
	}
	holdsWrite, holdsRead := lockedMutexes(pass, fn)
	writes := writeTargetSels(fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field := fieldOf(pass.Info, sel)
		g, guarded := guards[field]
		if !guarded {
			return true
		}
		// A value that never left its constructor needs no lock.
		if base := selectorBase(sel.X); base != nil && declaredInBody(pass.Info, fn, base) {
			return true
		}
		switch {
		case writes[sel] && !holdsWrite[g.mu]:
			pass.Reportf(sel.Pos(), "write to %s (guarded by %s) without holding %s.Lock in %s",
				field.Name(), g.muName, g.muName, fn.Name.Name)
		case !writes[sel] && !holdsWrite[g.mu] && !holdsRead[g.mu]:
			pass.Reportf(sel.Pos(), "read of %s (guarded by %s) without holding %s in %s",
				field.Name(), g.muName, g.muName, fn.Name.Name)
		}
		return true
	})
}
