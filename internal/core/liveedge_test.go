package core

import (
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func TestLiveEdgeEnsembleMatchesLTSpread(t *testing.T) {
	// With enough instances and l ≥ diameter, the ensemble score of a
	// node converges to its exact LT spread (live-edge reachability is
	// exact per instance — Conclusion 3).
	g := graph.ErdosRenyi(7, 12, rng.New(3))
	g.SetDefaultLTWeights()
	ens := NewLiveEdgeEnsemble(g, 7, 40000, 9)
	scores := ScoreOf(ens)
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		exact := diffusion.ExactLTSpread(g, []graph.NodeID{v})
		if math.Abs(scores[v]-exact) > 0.12 {
			t.Fatalf("node %d: ensemble %v vs exact %v", v, scores[v], exact)
		}
	}
}

func TestLiveEdgeEnsembleChain(t *testing.T) {
	// Chain with weight 1 per edge: every instance has the full chain
	// live, so the score is deterministic: min(l, remaining length).
	g := graph.Path(6, 0.5, 0.5)
	ens := NewLiveEdgeEnsemble(g, 3, 8, 1)
	scores := ScoreOf(ens)
	want := []float64{3, 3, 3, 2, 1, 0}
	for v, w := range want {
		if math.Abs(scores[v]-w) > 1e-9 {
			t.Fatalf("node %d: %v want %v", v, scores[v], w)
		}
	}
}

func TestLiveEdgeEnsembleExclusion(t *testing.T) {
	g := graph.Path(4, 0.5, 0.5)
	ens := NewLiveEdgeEnsemble(g, 3, 8, 1)
	excluded := []bool{false, true, false, false}
	scores := ens.Assign(excluded, nil)
	if scores[0] != 0 {
		t.Fatalf("excluded child still counted: %v", scores[0])
	}
	if !math.IsInf(scores[1], -1) {
		t.Fatal("excluded node should be -Inf")
	}
	if scores[2] != 1 {
		t.Fatalf("unaffected branch score %v want 1", scores[2])
	}
}

func TestLiveEdgeEnsembleCorrelatesWithWeightLT(t *testing.T) {
	// The cheap WeightLT shortcut must rank nodes consistently with the
	// faithful ensemble: compare top-1 on a random graph.
	g := graph.ErdosRenyi(150, 900, rng.New(7))
	g.SetDefaultLTWeights()
	ens := ScoreOf(NewLiveEdgeEnsemble(g, 3, 600, 11))
	fast := ScoreOf(NewEaSyIM(g, 3, WeightLT))
	bestEns := ArgmaxScore(ens)
	// The fast score of the ensemble's winner must be near the fast
	// maximum (exact argmax agreement is not guaranteed — both are
	// estimators).
	bestFast := ArgmaxScore(fast)
	if fast[bestEns] < 0.8*fast[bestFast] {
		t.Fatalf("ranking divergence: fast score of ensemble winner %v vs fast max %v",
			fast[bestEns], fast[bestFast])
	}
}

func TestLiveEdgeEnsembleRejectsBadL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLiveEdgeEnsemble(graph.Path(3, 1, 1), 0, 4, 1)
}
