package core

import (
	"fmt"

	"github.com/holisticim/holisticim/internal/graph"
)

// EaSyIM is the paper's Algorithm 4: the score of a node u is the
// probability-weighted number of walks of length at most l starting at u,
//
//	∆_i(u) = Σ_{v ∈ Out(u)} w(u,v) · (1 + ∆_{i−1}(v)),   ∆_0 ≡ 0,
//
// computed with two rolling O(n) arrays in O(l(m+n)) time. The score of a
// node mimics its expected spread: exactly on trees (Conclusion 2),
// exactly on DAGs under LT (Conclusion 3), and with a small bounded error
// otherwise (Sec. 3.4.2).
type EaSyIM struct {
	g       *graph.Graph
	l       int
	weight  EdgeWeight
	workers int // node-parallelism for Assign; 1 = sequential

	prev, cur []float64 // rolling ∆ levels, reused across Assign calls
}

// NewEaSyIM returns an EaSyIM scorer with maximum path length l (the
// paper recommends l=3 as the quality/efficiency sweet spot; l must be at
// least 1 and at most the graph diameter to be meaningful).
func NewEaSyIM(g *graph.Graph, l int, weight EdgeWeight) *EaSyIM {
	if l < 1 {
		panic(fmt.Sprintf("core: EaSyIM path length l=%d must be >= 1", l))
	}
	n := g.NumNodes()
	return &EaSyIM{
		g:       g,
		l:       l,
		weight:  weight,
		workers: 1,
		prev:    make([]float64, n),
		cur:     make([]float64, n),
	}
}

// Name implements Scorer.
func (e *EaSyIM) Name() string { return "EaSyIM" }

// Graph implements Scorer.
func (e *EaSyIM) Graph() *graph.Graph { return e.g }

// PathLength returns l.
func (e *EaSyIM) PathLength() int { return e.l }

// Assign implements Scorer. The returned score of u aggregates the
// contributions of all walks of length ≤ l from u that avoid excluded
// nodes; excluded nodes score -Inf.
func (e *EaSyIM) Assign(excluded []bool, out []float64) []float64 {
	g := e.g
	n := g.NumNodes()
	if out == nil {
		out = make([]float64, n)
	}
	prev, cur := e.prev, e.cur
	for i := range prev {
		prev[i] = 0
	}
	for i := 1; i <= e.l; i++ {
		parallelFor(n, e.workers, func(lo, hi graph.NodeID) {
			for u := lo; u < hi; u++ {
				if excluded != nil && excluded[u] {
					cur[u] = 0
					continue
				}
				nbrs := g.OutNeighbors(u)
				ws := edgeWeights(g, e.weight, u)
				sum := 0.0
				for j, v := range nbrs {
					if excluded != nil && excluded[v] {
						continue
					}
					sum += ws[j] * (1 + prev[v])
				}
				cur[u] = sum
			}
		})
		prev, cur = cur, prev
	}
	// prev now holds ∆_l.
	for u := graph.NodeID(0); u < n; u++ {
		if excluded != nil && excluded[u] {
			out[u] = negInf
		} else {
			out[u] = prev[u]
		}
	}
	return out
}

var _ Scorer = (*EaSyIM)(nil)
