package core

import (
	"fmt"

	"github.com/holisticim/holisticim/internal/graph"
)

// OSIM is the paper's Algorithm 5: the opinion-aware score assignment.
// Alongside EaSyIM's path weights it tracks, per node and per level i,
//
//	or_i(u) — weighted sum of the *initial* opinions of nodes reachable
//	          via length-i walks from u;
//	α_i(u)  — weighted product-sum of interaction terms ψ=(2ϕ−1)/2 along
//	          length-i walks (the expected sign attenuation);
//	sc_i(u) — accumulated opinion-change contributions of interior nodes;
//
// and scores ∆_i(u) = ∆_{i−1}(u) + (or_i(u) + sc_i(u) + o_u·α_i(u))/2,
// where sc_i(u) already contains one o_u·α_i(u) term (Algorithm 5 line
// 10) so the seed's own opinion enters with full weight, matching
// Lemma 8's closed form. The score equals the exact expected effective
// opinion spread on paths (Lemma 9) and approximates it elsewhere.
//
// Complexity matches EaSyIM: O(l(m+n)) time, O(n) space.
type OSIM struct {
	g       *graph.Graph
	l       int
	weight  EdgeWeight
	lambda  float64
	workers int // node-parallelism for Assign; 1 = sequential

	orPrev, orCur []float64
	alPrev, alCur []float64
	scPrev, scCur []float64
	delta         []float64
}

// NewOSIM returns an OSIM scorer with maximum path length l and penalty
// parameter lambda on negative opinion spread (Def. 7; λ=1 weighs negative
// opinions fully, λ=0 ignores them). The paper's experiments use λ=1, for
// which the score is exactly Algorithm 5's; for λ≠1 the per-level negative
// increments are scaled by λ — the natural heuristic extension, since the
// aggregate score cannot be decomposed per-path (documented in DESIGN.md).
func NewOSIM(g *graph.Graph, l int, weight EdgeWeight, lambda float64) *OSIM {
	if l < 1 {
		panic(fmt.Sprintf("core: OSIM path length l=%d must be >= 1", l))
	}
	if lambda < 0 {
		panic(fmt.Sprintf("core: OSIM lambda=%v must be >= 0", lambda))
	}
	n := g.NumNodes()
	return &OSIM{
		g: g, l: l, weight: weight, lambda: lambda, workers: 1,
		orPrev: make([]float64, n), orCur: make([]float64, n),
		alPrev: make([]float64, n), alCur: make([]float64, n),
		scPrev: make([]float64, n), scCur: make([]float64, n),
		delta: make([]float64, n),
	}
}

// Name implements Scorer.
func (o *OSIM) Name() string { return "OSIM" }

// Graph implements Scorer.
func (o *OSIM) Graph() *graph.Graph { return o.g }

// PathLength returns l.
func (o *OSIM) PathLength() int { return o.l }

// Lambda returns the negative-spread penalty.
func (o *OSIM) Lambda() float64 { return o.lambda }

// Assign implements Scorer.
func (o *OSIM) Assign(excluded []bool, out []float64) []float64 {
	g := o.g
	n := g.NumNodes()
	if out == nil {
		out = make([]float64, n)
	}
	orPrev, orCur := o.orPrev, o.orCur
	alPrev, alCur := o.alPrev, o.alCur
	scPrev, scCur := o.scPrev, o.scCur
	delta := o.delta
	for u := graph.NodeID(0); u < n; u++ {
		// Level 0 (Algorithm 5 line 1): α_0=1, or_0=o_u, sc_0=0, ∆_0=0.
		alPrev[u] = 1
		orPrev[u] = g.Opinion(u)
		scPrev[u] = 0
		delta[u] = 0
	}
	for i := 1; i <= o.l; i++ {
		parallelFor(n, o.workers, func(lo, hi graph.NodeID) {
			for u := lo; u < hi; u++ {
				if excluded != nil && excluded[u] {
					orCur[u], alCur[u], scCur[u] = 0, 0, 0
					continue
				}
				nbrs := g.OutNeighbors(u)
				ws := edgeWeights(g, o.weight, u)
				phis := g.OutPhis(u)
				var orS, alS, scS float64
				for j, v := range nbrs {
					if excluded != nil && excluded[v] {
						continue
					}
					w := ws[j]
					orS += w * orPrev[v]
					alS += w * alPrev[v] * (2*phis[j] - 1) / 2
					scS += w * scPrev[v]
				}
				ou := g.Opinion(u)
				scS += ou * alS // line 10
				orCur[u], alCur[u], scCur[u] = orS, alS, scS
				inc := (orS + scS + ou*alS) / 2 // line 11
				if inc < 0 && o.lambda != 1 {
					inc *= o.lambda
				}
				delta[u] += inc
			}
		})
		orPrev, orCur = orCur, orPrev
		alPrev, alCur = alCur, alPrev
		scPrev, scCur = scCur, scPrev
	}
	for u := graph.NodeID(0); u < n; u++ {
		if excluded != nil && excluded[u] {
			out[u] = negInf
		} else {
			out[u] = delta[u]
		}
	}
	return out
}

var _ Scorer = (*OSIM)(nil)
