package core

import (
	"fmt"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

// LiveEdgeEnsemble is the literal reading of the paper's Sec. 3.3 LT
// extension: "by associating influence probabilities with each edge and
// generating various graph instances satisfying the [one live in-edge]
// constraint, our algorithms get extended to the live-edge model". It
// samples `instances` live-edge worlds, scores each with EaSyIM dynamics
// restricted to the live edges (every node has at most one live in-edge,
// so walks are vertex-disjoint and the score is exact per instance —
// Conclusion 3), and averages.
//
// The cheaper expected-weight shortcut — running EaSyIM directly with
// w(u,v) as the walk weight (WeightLT) — is what the experiments use;
// this ensemble exists as the faithful reference and for the ablation
// bench comparing the two.
type LiveEdgeEnsemble struct {
	g         *graph.Graph
	l         int
	instances int
	seed      uint64
}

// NewLiveEdgeEnsemble returns the ensemble scorer. instances defaults to
// 32 when non-positive.
func NewLiveEdgeEnsemble(g *graph.Graph, l, instances int, seed uint64) *LiveEdgeEnsemble {
	if l < 1 {
		panic(fmt.Sprintf("core: live-edge ensemble l=%d must be >= 1", l))
	}
	if instances <= 0 {
		instances = 32
	}
	return &LiveEdgeEnsemble{g: g, l: l, instances: instances, seed: seed}
}

// Name implements Scorer.
func (e *LiveEdgeEnsemble) Name() string { return "EaSyIM-LiveEdge" }

// Graph implements Scorer.
func (e *LiveEdgeEnsemble) Graph() *graph.Graph { return e.g }

// Assign implements Scorer: the average over instances of the exact
// depth-≤l reachable-descendant count along live edges. Reachability is
// computed by BFS per root (a live-edge instance is a functional graph,
// so it may contain cycles; set-based reachability — unlike walk
// counting — stays exact on them).
func (e *LiveEdgeEnsemble) Assign(excluded []bool, out []float64) []float64 {
	g := e.g
	n := g.NumNodes()
	if out == nil {
		out = make([]float64, n)
	}
	for i := range out {
		out[i] = 0
	}
	live := make([]int64, n)
	childStart := make([]int32, n+1) // children[childStart[u]:childStart[u+1]] = live children of u
	var children []graph.NodeID
	parentOf := make([]graph.NodeID, n)
	cursor := make([]int32, n)
	stamp := make([]uint32, n)
	epoch := uint32(0)
	type qitem struct {
		v     graph.NodeID
		depth int
	}
	queue := make([]qitem, 0, 64)
	r := rng.New(0)
	for inst := 0; inst < e.instances; inst++ {
		r.Reseed(rng.SplitSeed(e.seed, uint64(inst)))
		diffusion.SampleLiveEdge(g, r, live)
		// Bucket children by live parent (counting sort).
		for i := range childStart {
			childStart[i] = 0
		}
		for v := graph.NodeID(0); v < n; v++ {
			parentOf[v] = -1
			if live[v] < 0 || (excluded != nil && excluded[v]) {
				continue
			}
			p := liveParent(g, v, live[v])
			if excluded != nil && excluded[p] {
				continue
			}
			parentOf[v] = p
			childStart[p+1]++
		}
		for i := int32(0); i < n; i++ {
			childStart[i+1] += childStart[i]
			cursor[i] = 0
		}
		children = children[:0]
		children = append(children, make([]graph.NodeID, childStart[n])...)
		for v := graph.NodeID(0); v < n; v++ {
			if p := parentOf[v]; p >= 0 {
				children[childStart[p]+cursor[p]] = v
				cursor[p]++
			}
		}
		// Per-root bounded reachability.
		for u := graph.NodeID(0); u < n; u++ {
			if excluded != nil && excluded[u] {
				continue
			}
			epoch++
			if epoch == 0 {
				for i := range stamp {
					stamp[i] = 0
				}
				epoch = 1
			}
			stamp[u] = epoch
			queue = queue[:0]
			queue = append(queue, qitem{u, 0})
			reached := 0
			for head := 0; head < len(queue); head++ {
				it := queue[head]
				if it.depth == e.l {
					continue
				}
				for _, c := range children[childStart[it.v]:childStart[it.v+1]] {
					if stamp[c] == epoch {
						continue
					}
					stamp[c] = epoch
					reached++
					queue = append(queue, qitem{c, it.depth + 1})
				}
			}
			out[u] += float64(reached)
		}
	}
	inv := 1 / float64(e.instances)
	for u := graph.NodeID(0); u < n; u++ {
		if excluded != nil && excluded[u] {
			out[u] = negInf
		} else {
			out[u] *= inv
		}
	}
	return out
}

// liveParent resolves the source node of v's live in-edge (an index into
// the out-edge arrays).
func liveParent(g *graph.Graph, v graph.NodeID, edgeIdx int64) graph.NodeID {
	idxs := g.InEdgeIndices(v)
	froms := g.InNeighbors(v)
	for i, e := range idxs {
		if e == edgeIdx {
			return froms[i]
		}
	}
	panic("core: live edge index not found among in-edges")
}

var _ Scorer = (*LiveEdgeEnsemble)(nil)
