package core

import (
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func parallelTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.BarabasiAlbert(6000, 3, rng.New(5))
	g.SetUniformProb(0.1)
	r := rng.New(7)
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		g.SetOpinion(v, r.Range(-1, 1))
	}
	g.SetEdgeParamsFunc(func(u, v graph.NodeID) (float64, float64) { return 0.1, r.Float64() })
	return g
}

func TestEaSyIMParallelBitIdentical(t *testing.T) {
	g := parallelTestGraph(t)
	seq := ScoreOf(NewEaSyIM(g, 4, WeightProb))
	for _, workers := range []int{0, 2, 7, 24} {
		par := ScoreOf(NewEaSyIM(g, 4, WeightProb).SetWorkers(workers))
		for v := range seq {
			if seq[v] != par[v] {
				t.Fatalf("workers=%d: node %d differs: %v vs %v", workers, v, seq[v], par[v])
			}
		}
	}
}

func TestOSIMParallelBitIdentical(t *testing.T) {
	g := parallelTestGraph(t)
	seq := ScoreOf(NewOSIM(g, 4, WeightProb, 1))
	for _, workers := range []int{0, 3, 16} {
		par := ScoreOf(NewOSIM(g, 4, WeightProb, 1).SetWorkers(workers))
		for v := range seq {
			if seq[v] != par[v] {
				t.Fatalf("workers=%d: node %d differs: %v vs %v", workers, v, seq[v], par[v])
			}
		}
	}
}

func TestEaSyIMParallelWithExclusions(t *testing.T) {
	g := parallelTestGraph(t)
	excluded := make([]bool, g.NumNodes())
	r := rng.New(11)
	for i := range excluded {
		excluded[i] = r.Bool(0.2)
	}
	seq := NewEaSyIM(g, 3, WeightProb).Assign(excluded, nil)
	par := NewEaSyIM(g, 3, WeightProb).SetWorkers(8).Assign(excluded, nil)
	for v := range seq {
		if seq[v] != par[v] {
			t.Fatalf("node %d differs with exclusions", v)
		}
	}
}

func TestParallelForSmallNSequential(t *testing.T) {
	// Below the chunking threshold the function must still cover [0,n).
	covered := make([]bool, 100)
	parallelFor(100, 8, func(lo, hi graph.NodeID) {
		for u := lo; u < hi; u++ {
			covered[u] = true
		}
	})
	for i, c := range covered {
		if !c {
			t.Fatalf("index %d not covered", i)
		}
	}
}

func TestParallelForCoversExactly(t *testing.T) {
	n := int32(10000)
	counts := make([]int32, n)
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	parallelFor(n, 6, func(lo, hi graph.NodeID) {
		<-mu
		for u := lo; u < hi; u++ {
			counts[u]++
		}
		mu <- struct{}{}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func BenchmarkEaSyIMAssignParallel(b *testing.B) {
	g := graph.BarabasiAlbert(50000, 3, rng.New(1))
	g.SetUniformProb(0.1)
	s := NewEaSyIM(g, 3, WeightProb).SetWorkers(0)
	out := make([]float64, g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Assign(nil, out)
	}
}
