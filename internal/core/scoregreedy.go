package core

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/im"
	"github.com/holisticim/holisticim/internal/rng"
)

// ActivationPolicy chooses how ScoreGREEDY updates the activated set V(a)
// after selecting a seed (Algorithm 1 line 11 leaves the mechanism open;
// DESIGN.md §5 discusses the options and the ablation bench compares
// them).
type ActivationPolicy int

const (
	// PolicyMCMajority runs ProbeRuns Monte-Carlo simulations from the new
	// seed on the remaining graph and marks nodes activated in at least
	// half of them. Default: matches the paper's MC-driven evaluation.
	PolicyMCMajority ActivationPolicy = iota
	// PolicyReach marks nodes whose maximum single-path activation
	// probability from the seed is at least ReachThreshold (Dijkstra over
	// −log p). Deterministic and simulation-free.
	PolicyReach
	// PolicySeedOnly marks only the seed itself — the cheapest discount,
	// useful as an ablation lower bound.
	PolicySeedOnly
)

func (p ActivationPolicy) String() string {
	switch p {
	case PolicyMCMajority:
		return "mc-majority"
	case PolicyReach:
		return "reach"
	case PolicySeedOnly:
		return "seed-only"
	default:
		return fmt.Sprintf("ActivationPolicy(%d)", int(p))
	}
}

// ScoreGreedyOptions configures the selection loop.
type ScoreGreedyOptions struct {
	// Policy picks the V(a) update rule; default PolicyMCMajority.
	Policy ActivationPolicy
	// ProbeModel simulates activations for PolicyMCMajority. Required for
	// that policy; typically the same model the spread will be evaluated
	// under (IC/WC/LT for EaSyIM, OI for OSIM).
	ProbeModel diffusion.Model
	// ProbeRuns is the number of probe simulations per seed (default 20).
	ProbeRuns int
	// ReachThreshold is PolicyReach's activation-probability cutoff
	// (default 0.5).
	ReachThreshold float64
	// Seed drives all probe randomness.
	Seed uint64
}

// ScoreGreedy is Algorithm 1: repeatedly assign scores with the
// configured Scorer on G(V \ V(a)), pick the argmax as the next seed, and
// grow V(a) with the nodes the new seed activates.
type ScoreGreedy struct {
	scorer Scorer
	opts   ScoreGreedyOptions
}

// NewScoreGreedy returns the selector. The scorer decides the objective:
// EaSyIM for opinion-oblivious IM, OSIM for MEO.
func NewScoreGreedy(scorer Scorer, opts ScoreGreedyOptions) *ScoreGreedy {
	if opts.ProbeRuns <= 0 {
		opts.ProbeRuns = 20
	}
	if opts.ReachThreshold <= 0 {
		opts.ReachThreshold = 0.5
	}
	if opts.Policy == PolicyMCMajority && opts.ProbeModel == nil {
		panic("core: ScoreGreedy with PolicyMCMajority requires a ProbeModel")
	}
	return &ScoreGreedy{scorer: scorer, opts: opts}
}

// Name implements im.Selector.
func (sg *ScoreGreedy) Name() string {
	return "ScoreGreedy(" + sg.scorer.Name() + ")"
}

// Select implements im.Selector. Cancellation is checked before every
// score assignment — the per-seed unit of work (Algorithm 1's O(l·(m+n))
// scoring pass plus the activation probe).
func (sg *ScoreGreedy) Select(ctx context.Context, k int) (im.Result, error) {
	g := sg.scorer.Graph()
	n := g.NumNodes()
	res := im.Result{Algorithm: sg.Name()}
	if err := im.CheckK(k, n); err != nil {
		return res, err
	}
	tr := im.StartTracker(ctx)

	excluded := make([]bool, n)
	scores := make([]float64, n)
	var scratch *diffusion.Scratch
	var counts []int32
	if sg.opts.Policy == PolicyMCMajority {
		scratch = diffusion.NewScratch(n)
		counts = make([]int32, n)
	}
	probeRNG := rng.New(sg.opts.Seed)

	for i := 0; i < k; i++ {
		if err := tr.Interrupted(&res); err != nil {
			return res, err
		}
		sg.scorer.Assign(excluded, scores)
		res.AddMetric("score_assignments", 1)
		pick := ArgmaxScore(scores)
		if pick < 0 {
			// Every node is already marked activated: the estimated spread
			// is saturated and no further seed can improve it. Keep the
			// contract of returning exactly k seeds by filling the
			// remaining budget with the highest-out-degree unselected
			// nodes (any choice is equivalent under the saturated
			// objective); record where saturation happened.
			res.AddMetric("saturated_at", float64(len(res.Seeds)))
			if err := sg.fillRemaining(tr, &res, k); err != nil {
				return res, err
			}
			break
		}
		sg.markActivated(pick, excluded, scratch, counts, probeRNG)
		excluded[pick] = true
		tr.Seed(&res, pick)
	}
	tr.Finish(&res)
	return res, nil
}

// fillRemaining tops the seed list up to k with unselected nodes in
// descending out-degree order (ties by id), keeping Select's exactly-k
// contract after the score-based objective saturates.
func (sg *ScoreGreedy) fillRemaining(tr *im.Tracker, res *im.Result, k int) error {
	g := sg.scorer.Graph()
	chosen := make(map[graph.NodeID]bool, len(res.Seeds))
	for _, s := range res.Seeds {
		chosen[s] = true
	}
	for _, v := range graph.TopKByOutDegree(g, int(g.NumNodes())) {
		if len(res.Seeds) >= k {
			break
		}
		if chosen[v] {
			continue
		}
		if err := tr.Interrupted(res); err != nil {
			return err
		}
		chosen[v] = true
		tr.Seed(res, v)
	}
	tr.Finish(res)
	return nil
}

// markActivated grows the excluded mask with the nodes the new seed
// activates under the configured policy.
func (sg *ScoreGreedy) markActivated(seed graph.NodeID, excluded []bool, scratch *diffusion.Scratch, counts []int32, r *rng.RNG) {
	switch sg.opts.Policy {
	case PolicySeedOnly:
		// Nothing besides the seed (marked by the caller).
	case PolicyMCMajority:
		model := sg.opts.ProbeModel
		scratch.SetBlocked(excluded)
		for i := range counts {
			counts[i] = 0
		}
		for run := 0; run < sg.opts.ProbeRuns; run++ {
			model.Simulate([]graph.NodeID{seed}, r, scratch)
			for _, v := range scratch.Activated() {
				counts[v]++
			}
		}
		scratch.SetBlocked(nil)
		half := int32((sg.opts.ProbeRuns + 1) / 2)
		for v := range counts {
			if counts[v] >= half {
				excluded[v] = true
			}
		}
	case PolicyReach:
		sg.markByReach(seed, excluded)
	default:
		panic("core: unknown activation policy")
	}
}

// markByReach marks nodes whose best-path activation probability from the
// seed meets the threshold: a Dijkstra-style search maximizing the product
// of edge probabilities, pruned below the threshold.
func (sg *ScoreGreedy) markByReach(seed graph.NodeID, excluded []bool) {
	g := sg.scorer.Graph()
	th := sg.opts.ReachThreshold
	best := map[graph.NodeID]float64{seed: 1}
	pq := &probHeap{{seed, 1}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(probItem)
		if it.prob < best[it.v] {
			continue
		}
		excluded[it.v] = true
		nbrs := g.OutNeighbors(it.v)
		ps := g.OutProbs(it.v)
		for j, w := range nbrs {
			if excluded[w] && w != it.v {
				// already marked (or previously activated) — skip
				continue
			}
			p := it.prob * ps[j]
			if p < th {
				continue
			}
			if p > best[w] {
				best[w] = p
				heap.Push(pq, probItem{w, p})
			}
		}
	}
}

type probItem struct {
	v    graph.NodeID
	prob float64
}

type probHeap []probItem

func (h probHeap) Len() int            { return len(h) }
func (h probHeap) Less(i, j int) bool  { return h[i].prob > h[j].prob }
func (h probHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *probHeap) Push(x interface{}) { *h = append(*h, x.(probItem)) }
func (h *probHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

var _ im.Selector = (*ScoreGreedy)(nil)

// ScoreOf exposes a single full score assignment (no exclusions), which
// the ranking diagnostics and several tests use directly.
func ScoreOf(s Scorer) []float64 {
	return s.Assign(nil, nil)
}

// SpreadUpperBound is a crude sanity bound used in tests: no node's
// EaSyIM score may exceed n−1 when edge weights are probabilities.
func SpreadUpperBound(g *graph.Graph) float64 {
	return math.Max(0, float64(g.NumNodes()-1))
}
