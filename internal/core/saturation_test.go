package core

import (
	"testing"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
)

// TestScoreGreedySaturationFillsBudget pins the exactly-k contract: on a
// deterministic complete graph one seed activates everything, yet the
// selector must still return k distinct seeds and record where the
// objective saturated.
func TestScoreGreedySaturationFillsBudget(t *testing.T) {
	g := graph.Complete(8, 1, 1) // p=1: any seed reaches all nodes
	sg := NewScoreGreedy(NewEaSyIM(g, 2, WeightProb), ScoreGreedyOptions{
		Policy:     PolicyMCMajority,
		ProbeModel: diffusion.NewIC(g),
		ProbeRuns:  4,
		Seed:       3,
	})
	res := runSelect(sg, 5)
	if len(res.Seeds) != 5 {
		t.Fatalf("got %d seeds, want exactly 5", len(res.Seeds))
	}
	seen := map[graph.NodeID]bool{}
	for _, s := range res.Seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	if sat, ok := res.Metrics["saturated_at"]; !ok || sat != 1 {
		t.Fatalf("saturated_at = %v, want 1 (first seed saturates)", sat)
	}
	if len(res.PerSeed) != 5 {
		t.Fatalf("per-seed times %d want 5", len(res.PerSeed))
	}
}

// TestScoreGreedyNoSaturationNoMetric verifies the metric is absent when
// the budget is met by scoring alone.
func TestScoreGreedyNoSaturationNoMetric(t *testing.T) {
	g := graph.Path(10, 0.1, 0.5)
	sg := NewScoreGreedy(NewEaSyIM(g, 2, WeightProb), ScoreGreedyOptions{Policy: PolicySeedOnly})
	res := runSelect(sg, 3)
	if _, ok := res.Metrics["saturated_at"]; ok {
		t.Fatal("saturation metric set on non-saturating run")
	}
	if len(res.Seeds) != 3 {
		t.Fatalf("seeds %v", res.Seeds)
	}
}
