package core

import (
	"testing"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func benchGraph(b *testing.B, n int32) *graph.Graph {
	b.Helper()
	g := graph.BarabasiAlbert(n, 3, rng.New(1))
	g.SetUniformProb(0.1)
	r := rng.New(2)
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		g.SetOpinion(v, r.Range(-1, 1))
	}
	g.SetEdgeParamsFunc(func(u, v graph.NodeID) (float64, float64) { return 0.1, r.Float64() })
	g.SetDefaultLTWeights()
	return g
}

func BenchmarkEaSyIMAssignL1(b *testing.B) { benchAssign(b, 1) }
func BenchmarkEaSyIMAssignL3(b *testing.B) { benchAssign(b, 3) }
func BenchmarkEaSyIMAssignL5(b *testing.B) { benchAssign(b, 5) }

func benchAssign(b *testing.B, l int) {
	g := benchGraph(b, 50000)
	s := NewEaSyIM(g, l, WeightProb)
	out := make([]float64, g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Assign(nil, out)
	}
}

func BenchmarkOSIMAssignL3(b *testing.B) {
	g := benchGraph(b, 50000)
	s := NewOSIM(g, 3, WeightProb, 1)
	out := make([]float64, g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Assign(nil, out)
	}
}

func BenchmarkPathUnionSmall(b *testing.B) {
	g := benchGraph(b, 300)
	s := NewPathUnion(g, 3, WeightProb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ScoreOf(s)
	}
}

func BenchmarkScoreGreedySelect10(b *testing.B) {
	g := benchGraph(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sg := NewScoreGreedy(NewEaSyIM(g, 3, WeightProb), ScoreGreedyOptions{
			Policy:     PolicyMCMajority,
			ProbeModel: diffusion.NewIC(g),
			ProbeRuns:  10,
			Seed:       uint64(i),
		})
		_ = runSelect(sg, 10)
	}
}

func BenchmarkLiveEdgeEnsemble(b *testing.B) {
	g := benchGraph(b, 5000)
	s := NewLiveEdgeEnsemble(g, 3, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ScoreOf(s)
	}
}
