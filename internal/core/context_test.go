package core

import (
	"testing"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/im"
	"github.com/holisticim/holisticim/internal/im/imtest"
)

// runSelect is this package's shim over the shared imtest.MustSelect —
// the call shape the pre-context package tests were written in.
func runSelect(sel im.Selector, k int) im.Result { return imtest.MustSelect(sel, k) }

// TestScoreGreedyCancellation runs the shared conformance suite over both
// of the paper's scorers (run with -race).
func TestScoreGreedyCancellation(t *testing.T) {
	g := imtest.TestGraph(300)
	t.Run("easyim", func(t *testing.T) {
		imtest.Conformance(t, func() im.Selector {
			return NewScoreGreedy(NewEaSyIM(g, 3, WeightProb), ScoreGreedyOptions{
				Policy: PolicyMCMajority, ProbeModel: diffusion.NewIC(g), ProbeRuns: 8, Seed: 7,
			})
		}, 4)
	})
	t.Run("osim", func(t *testing.T) {
		imtest.Conformance(t, func() im.Selector {
			return NewScoreGreedy(NewOSIM(g, 3, WeightProb, 1), ScoreGreedyOptions{
				Policy: PolicyMCMajority, ProbeModel: diffusion.NewOI(g, diffusion.LayerIC), ProbeRuns: 8, Seed: 7,
			})
		}, 4)
	})
}
