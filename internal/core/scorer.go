// Package core implements the paper's contributions: the EaSyIM and OSIM
// score-assignment algorithms (Algorithms 4 and 5), the dense Path-Union
// reference (Algorithm 3) and the ScoreGREEDY seed-selection loop
// (Algorithm 1), plus the live-edge-based extension to the LT model
// (Sec. 3.3).
package core

import (
	"math"

	"github.com/holisticim/holisticim/internal/graph"
)

// EdgeWeight selects which per-edge parameter drives score assignment.
type EdgeWeight int

const (
	// WeightProb uses the influence probability p(u,v) — the IC and WC
	// parameterizations (WC merely assigns p=1/|In(v)| on the graph).
	WeightProb EdgeWeight = iota
	// WeightLT uses the LT weight w(u,v). Under the live-edge view the
	// probability that the (u,v) edge is live is exactly w(u,v), so score
	// assignment under LT runs unchanged with w in place of p (Sec. 3.3).
	WeightLT
)

// Scorer assigns the paper's ∆_l score to every node. Assign must write
// scores into out (allocating it when nil, length n) and return it.
// Excluded nodes (mask may be nil) receive score -Inf and contribute
// nothing to other nodes' scores — they model the removed vertex set
// V(a) of ScoreGREEDY's G(V \ V(a), E).
type Scorer interface {
	Name() string
	Graph() *graph.Graph
	Assign(excluded []bool, out []float64) []float64
}

// negInf marks excluded nodes so argmax never picks them.
var negInf = math.Inf(-1)

func edgeWeights(g *graph.Graph, w EdgeWeight, u graph.NodeID) []float64 {
	if w == WeightLT {
		return g.OutWeights(u)
	}
	return g.OutProbs(u)
}

// ArgmaxScore returns the node with the largest finite score, breaking
// ties toward the smaller id (deterministic). Returns -1 when every node
// is excluded.
func ArgmaxScore(scores []float64) graph.NodeID {
	best := graph.NodeID(-1)
	bestScore := negInf
	for v, s := range scores {
		if s > bestScore {
			bestScore = s
			best = graph.NodeID(v)
		}
	}
	if bestScore == negInf {
		return -1
	}
	return best
}
