package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func TestEaSyIMStarScores(t *testing.T) {
	g := graph.Star(6, 0.2, 0.5) // 0 -> 1..5
	s := NewEaSyIM(g, 3, WeightProb)
	scores := ScoreOf(s)
	if math.Abs(scores[0]-5*0.2) > 1e-12 {
		t.Fatalf("center score %v want 1.0", scores[0])
	}
	for v := 1; v < 6; v++ {
		if scores[v] != 0 {
			t.Fatalf("leaf %d score %v want 0", v, scores[v])
		}
	}
}

func TestEaSyIMPathGeometricScores(t *testing.T) {
	// On a path with uniform p, ∆_l(u0) = p + p² + ... + p^l.
	p := 0.3
	g := graph.Path(10, p, 0.5)
	for l := 1; l <= 5; l++ {
		s := NewEaSyIM(g, l, WeightProb)
		scores := ScoreOf(s)
		want := 0.0
		acc := 1.0
		for i := 0; i < l; i++ {
			acc *= p
			want += acc
		}
		if math.Abs(scores[0]-want) > 1e-12 {
			t.Fatalf("l=%d: score %v want %v", l, scores[0], want)
		}
	}
}

func TestEaSyIMExactOnTrees(t *testing.T) {
	// Conclusion 2: on trees the score of the root with l ≥ depth equals
	// the exact expected IC spread (sum over nodes of the unique-path
	// probability product).
	for trial := 0; trial < 6; trial++ {
		r := rng.Split(77, uint64(trial))
		n := int32(5 + r.Intn(20))
		g := graph.RandomTree(n, 0.35, 0.5, r)
		s := NewEaSyIM(g, int(n), WeightProb)
		scores := ScoreOf(s)
		// Exact expected spread by DP along unique paths.
		want := make([]float64, n)
		// process nodes in reverse BFS order: since parent < child by
		// construction, iterate ids downward.
		for u := n - 1; u >= 0; u-- {
			nbrs := g.OutNeighbors(u)
			ps := g.OutProbs(u)
			for i, v := range nbrs {
				want[u] += ps[i] * (1 + want[v])
			}
		}
		for u := int32(0); u < n; u++ {
			if math.Abs(scores[u]-want[u]) > 1e-9 {
				t.Fatalf("trial %d node %d: score %v want %v", trial, u, scores[u], want[u])
			}
		}
	}
}

func TestEaSyIMTreeScoreMatchesMCSpread(t *testing.T) {
	// The tree score must match the Monte-Carlo IC spread estimate.
	r := rng.New(5)
	g := graph.RandomTree(30, 0.4, 0.5, r)
	s := NewEaSyIM(g, 30, WeightProb)
	scores := ScoreOf(s)
	est := diffusion.MonteCarlo(diffusion.NewIC(g), []graph.NodeID{0}, diffusion.MCOptions{Runs: 60000, Seed: 3})
	if math.Abs(scores[0]-est.Spread) > 0.05 {
		t.Fatalf("score %v vs MC spread %v", scores[0], est.Spread)
	}
}

func TestEaSyIMExclusion(t *testing.T) {
	g := graph.Path(4, 0.5, 0.5)
	s := NewEaSyIM(g, 3, WeightProb)
	excluded := make([]bool, 4)
	excluded[1] = true
	scores := s.Assign(excluded, nil)
	if !math.IsInf(scores[1], -1) {
		t.Fatalf("excluded score %v want -Inf", scores[1])
	}
	// Node 0's only walk goes through 1 → score 0.
	if scores[0] != 0 {
		t.Fatalf("score through excluded node: %v", scores[0])
	}
	// Node 2 unaffected: 0.5 + 0 (3 is a sink).
	if math.Abs(scores[2]-0.5) > 1e-12 {
		t.Fatalf("score[2] = %v", scores[2])
	}
}

func TestEaSyIMLTWeights(t *testing.T) {
	// Under WeightLT the scorer must consume w(u,v)=1/|In(v)| rather than p.
	b := graph.NewBuilder(3)
	b.AddEdgeP(0, 2, 0.9, 0.5)
	b.AddEdgeP(1, 2, 0.9, 0.5)
	g := b.Build()
	g.SetDefaultLTWeights()
	s := NewEaSyIM(g, 1, WeightLT)
	scores := ScoreOf(s)
	if math.Abs(scores[0]-0.5) > 1e-12 { // w(0,2)=1/2
		t.Fatalf("LT score %v want 0.5", scores[0])
	}
}

func TestEaSyIMFigure1PicksC(t *testing.T) {
	// Under IC, C has the best opinion-oblivious score (paper Example 2
	// argues C is the IC-chosen seed).
	g := graph.ExampleFigure1()
	s := NewEaSyIM(g, 3, WeightProb)
	scores := ScoreOf(s)
	if best := ArgmaxScore(scores); best != 2 {
		t.Fatalf("EaSyIM picked %d, want C=2 (scores %v)", best, scores)
	}
}

func TestEaSyIMScoreNonNegativeQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.Split(seed, 1)
		g := graph.ErdosRenyi(int32(5+r.Intn(40)), 120, r)
		g.SetUniformProb(r.Float64())
		s := NewEaSyIM(g, 1+r.Intn(5), WeightProb)
		for _, sc := range ScoreOf(s) {
			if sc < 0 || math.IsNaN(sc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEaSyIMMonotoneInL(t *testing.T) {
	// Scores can only grow as l increases (every walk of length ≤ l is a
	// walk of length ≤ l+1).
	g := graph.ErdosRenyi(100, 700, rng.New(9))
	g.SetUniformProb(0.1)
	prev := ScoreOf(NewEaSyIM(g, 1, WeightProb))
	for l := 2; l <= 6; l++ {
		cur := ScoreOf(NewEaSyIM(g, l, WeightProb))
		for v := range cur {
			if cur[v]+1e-12 < prev[v] {
				t.Fatalf("l=%d: score of %d decreased %v -> %v", l, v, prev[v], cur[v])
			}
		}
		prev = cur
	}
}

func TestEaSyIMRejectsBadL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEaSyIM(graph.Path(3, 0.5, 0.5), 0, WeightProb)
}
