package core

import (
	"context"
	"testing"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func TestScoreGreedyFigure1OSIMPicksA(t *testing.T) {
	g := graph.ExampleFigure1()
	sg := NewScoreGreedy(NewOSIM(g, 2, WeightProb, 1), ScoreGreedyOptions{
		Policy:     PolicyMCMajority,
		ProbeModel: diffusion.NewOI(g, diffusion.LayerIC),
		ProbeRuns:  50,
		Seed:       1,
	})
	res := runSelect(sg, 1)
	if len(res.Seeds) != 1 || res.Seeds[0] != 0 {
		t.Fatalf("OSIM ScoreGreedy picked %v, want [A=0]", res.Seeds)
	}
	if res.Algorithm != "ScoreGreedy(OSIM)" {
		t.Fatalf("algorithm name %q", res.Algorithm)
	}
}

func TestScoreGreedyFigure1EaSyIMPicksC(t *testing.T) {
	g := graph.ExampleFigure1()
	sg := NewScoreGreedy(NewEaSyIM(g, 2, WeightProb), ScoreGreedyOptions{
		Policy:     PolicyMCMajority,
		ProbeModel: diffusion.NewIC(g),
		Seed:       1,
	})
	res := runSelect(sg, 1)
	if res.Seeds[0] != 2 {
		t.Fatalf("EaSyIM ScoreGreedy picked %v, want [C=2]", res.Seeds)
	}
}

func TestScoreGreedyDisjointStars(t *testing.T) {
	// Two disconnected stars with deterministic edges: the second seed must
	// come from the second star because the first star is fully activated
	// and discounted.
	b := graph.NewBuilder(12)
	for v := graph.NodeID(1); v <= 5; v++ {
		b.AddEdgeP(0, v, 1, 1) // star A: center 0, 5 leaves
	}
	for v := graph.NodeID(7); v <= 11; v++ {
		b.AddEdgeP(6, v, 1, 1) // star B: center 6, 5 leaves
	}
	g := b.Build()
	sg := NewScoreGreedy(NewEaSyIM(g, 2, WeightProb), ScoreGreedyOptions{
		Policy:     PolicyMCMajority,
		ProbeModel: diffusion.NewIC(g),
		ProbeRuns:  10,
		Seed:       7,
	})
	res := runSelect(sg, 2)
	if len(res.Seeds) != 2 {
		t.Fatalf("seeds %v", res.Seeds)
	}
	got := map[graph.NodeID]bool{res.Seeds[0]: true, res.Seeds[1]: true}
	if !got[0] || !got[6] {
		t.Fatalf("expected both star centers, got %v", res.Seeds)
	}
}

func TestScoreGreedySeedOnlyPolicyCanRepeatCluster(t *testing.T) {
	// With PolicySeedOnly only the seed is discounted, so the second pick
	// stays in the denser star — demonstrating why V(a) marking matters.
	b := graph.NewBuilder(9)
	for v := graph.NodeID(1); v <= 5; v++ {
		b.AddEdgeP(0, v, 1, 1)
		b.AddEdgeP(v, (v%5)+1, 1, 1) // extra in-star edges give leaves score
	}
	for v := graph.NodeID(7); v <= 8; v++ {
		b.AddEdgeP(6, v, 1, 1) // tiny star B
	}
	g := b.Build()
	sg := NewScoreGreedy(NewEaSyIM(g, 2, WeightProb), ScoreGreedyOptions{Policy: PolicySeedOnly})
	res := runSelect(sg, 2)
	if res.Seeds[0] != 0 {
		t.Fatalf("first seed %v want 0", res.Seeds)
	}
	if res.Seeds[1] == 6 {
		t.Fatalf("seed-only policy unexpectedly escaped the dense star: %v", res.Seeds)
	}
}

func TestScoreGreedyReachPolicy(t *testing.T) {
	// Deterministic path with p=1: reach policy (threshold .5) marks the
	// whole component, so the second seed comes from elsewhere.
	b := graph.NewBuilder(6)
	b.AddEdgeP(0, 1, 1, 1)
	b.AddEdgeP(1, 2, 1, 1)
	b.AddEdgeP(3, 4, 1, 1) // second component, shorter
	g := b.Build()
	sg := NewScoreGreedy(NewEaSyIM(g, 3, WeightProb), ScoreGreedyOptions{Policy: PolicyReach})
	res := runSelect(sg, 2)
	if res.Seeds[0] != 0 || res.Seeds[1] != 3 {
		t.Fatalf("reach policy seeds %v, want [0 3]", res.Seeds)
	}
}

func TestScoreGreedyPerSeedTimesMonotone(t *testing.T) {
	g := graph.ErdosRenyi(200, 1200, rng.New(3))
	g.SetUniformProb(0.1)
	sg := NewScoreGreedy(NewEaSyIM(g, 3, WeightProb), ScoreGreedyOptions{
		Policy: PolicySeedOnly,
	})
	res := runSelect(sg, 5)
	if len(res.PerSeed) != 5 {
		t.Fatalf("per-seed times %v", res.PerSeed)
	}
	for i := 1; i < len(res.PerSeed); i++ {
		if res.PerSeed[i] < res.PerSeed[i-1] {
			t.Fatal("per-seed times must be cumulative")
		}
	}
	if res.Metrics["score_assignments"] != 5 {
		t.Fatalf("metrics %v", res.Metrics)
	}
}

func TestScoreGreedyValidatesK(t *testing.T) {
	g := graph.Path(3, 0.5, 0.5)
	sg := NewScoreGreedy(NewEaSyIM(g, 1, WeightProb), ScoreGreedyOptions{Policy: PolicySeedOnly})
	if _, err := sg.Select(context.Background(), 0); err == nil {
		t.Fatal("expected error on k=0")
	}
	if _, err := sg.Select(context.Background(), 4); err == nil {
		t.Fatal("expected error on k>n")
	}
}

func TestScoreGreedyRequiresProbeModel(t *testing.T) {
	g := graph.Path(3, 0.5, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when probe model missing")
		}
	}()
	NewScoreGreedy(NewEaSyIM(g, 1, WeightProb), ScoreGreedyOptions{Policy: PolicyMCMajority})
}

func TestScoreGreedyDeterminism(t *testing.T) {
	g := graph.ErdosRenyi(150, 900, rng.New(11))
	g.SetUniformProb(0.15)
	mk := func() im2 {
		sg := NewScoreGreedy(NewEaSyIM(g, 3, WeightProb), ScoreGreedyOptions{
			Policy:     PolicyMCMajority,
			ProbeModel: diffusion.NewIC(g),
			ProbeRuns:  10,
			Seed:       99,
		})
		return runSelect(sg, 4).Seeds
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic selection: %v vs %v", a, b)
		}
	}
}

type im2 = []graph.NodeID
