package core

import (
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func TestPUEqualsEaSyIMOnTrees(t *testing.T) {
	// On trees every (u,v) pair has at most one walk, so PU's union
	// combine degenerates to a sum and PU == EaSyIM exactly.
	for trial := 0; trial < 5; trial++ {
		r := rng.Split(55, uint64(trial))
		g := graph.RandomTree(int32(4+r.Intn(12)), 0.4, 0.5, r)
		l := 1 + r.Intn(4)
		pu := ScoreOf(NewPathUnion(g, l, WeightProb))
		easy := ScoreOf(NewEaSyIM(g, l, WeightProb))
		for v := range pu {
			if math.Abs(pu[v]-easy[v]) > 1e-9 {
				t.Fatalf("trial %d node %d: PU %v vs EaSyIM %v", trial, v, pu[v], easy[v])
			}
		}
	}
}

func TestPUAtMostEaSyIMOnDAGs(t *testing.T) {
	// Lemma 6: EaSyIM over-counts relative to PU (sum vs union), so on
	// DAGs PU scores are ≤ EaSyIM scores.
	for trial := 0; trial < 5; trial++ {
		r := rng.Split(66, uint64(trial))
		g := graph.RandomDAG(15, 0.3, 0.5, 0.5, r)
		l := 1 + r.Intn(4)
		pu := ScoreOf(NewPathUnion(g, l, WeightProb))
		easy := ScoreOf(NewEaSyIM(g, l, WeightProb))
		for v := range pu {
			if pu[v] > easy[v]+1e-9 {
				t.Fatalf("trial %d node %d: PU %v > EaSyIM %v", trial, v, pu[v], easy[v])
			}
		}
	}
}

func TestPUDiamondUnionCombine(t *testing.T) {
	// Diamond 0->{1,2}->3 with p=0.5: two length-2 walks 0→3 combine as a
	// union: level-2 PU[0][3] = 1−(1−0.25)² = 0.4375 (EaSyIM would add 0.5).
	b := graph.NewBuilder(4)
	b.AddEdgeP(0, 1, 0.5, 0.5)
	b.AddEdgeP(0, 2, 0.5, 0.5)
	b.AddEdgeP(1, 3, 0.5, 0.5)
	b.AddEdgeP(2, 3, 0.5, 0.5)
	g := b.Build()
	pu := ScoreOf(NewPathUnion(g, 2, WeightProb))
	// ∆_2(0) = level1 (0.5+0.5) + level2 (0.4375) = 1.4375
	if math.Abs(pu[0]-1.4375) > 1e-9 {
		t.Fatalf("PU diamond score %v want 1.4375", pu[0])
	}
	easy := ScoreOf(NewEaSyIM(g, 2, WeightProb))
	if math.Abs(easy[0]-1.5) > 1e-9 {
		t.Fatalf("EaSyIM diamond score %v want 1.5", easy[0])
	}
}

func TestPUCycleDiscount(t *testing.T) {
	// On a directed 3-cycle with l=3, walks returning to their source are
	// dropped by the diagonal zeroing, so ∆_3(u) counts only the two
	// forward walks: p + p².
	p := 0.5
	g := graph.Cycle(3, p, 0.5)
	pu := ScoreOf(NewPathUnion(g, 3, WeightProb))
	want := p + p*p
	for v := range pu {
		if math.Abs(pu[v]-want) > 1e-9 {
			t.Fatalf("node %d: PU %v want %v", v, pu[v], want)
		}
	}
}

func TestPUExclusion(t *testing.T) {
	g := graph.Path(3, 0.5, 0.5)
	excluded := []bool{false, true, false}
	pu := NewPathUnion(g, 2, WeightProb).Assign(excluded, nil)
	if pu[0] != 0 {
		t.Fatalf("walks through excluded node counted: %v", pu[0])
	}
	if !math.IsInf(pu[1], -1) {
		t.Fatal("excluded node must score -Inf")
	}
}

func TestPURejectsHugeGraphs(t *testing.T) {
	g := graph.ErdosRenyi(MaxPathUnionNodes+1, 10, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPathUnion(g, 1, WeightProb)
}
