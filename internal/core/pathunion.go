package core

import (
	"fmt"

	"github.com/holisticim/holisticim/internal/graph"
)

// PathUnion is the paper's Algorithm 3: a dense O(n³·l)-time, O(n²)-space
// reference score assignment. The matrix PU starts as the identity and is
// repeatedly combined with the probability-adjacency matrix M under the ⊗
// operator, whose inner combine is the probabilistic union
//
//	(PU ⊗ M)[i][j] = ⋃_k PU[i][k]·M[k][j] = 1 − Π_k (1 − PU[i][k]·M[k][j]),
//
// so parallel walk bundles combine like independent events instead of
// over-counting by summation. The diagonal is zeroed every iteration to
// discount walks that return to their source (lines 5–7). The score
// ∆_i(u) accumulates row sums across iterations (line 10).
//
// PathUnion exists for analysis and as a test oracle for EaSyIM; it is far
// too expensive for real graphs and refuses n > MaxPathUnionNodes.
type PathUnion struct {
	g      *graph.Graph
	l      int
	weight EdgeWeight
}

// MaxPathUnionNodes bounds the dense matrix size (n² float64 words).
const MaxPathUnionNodes = 3000

// NewPathUnion returns a PU scorer with maximum walk length l.
func NewPathUnion(g *graph.Graph, l int, weight EdgeWeight) *PathUnion {
	if l < 1 {
		panic(fmt.Sprintf("core: PU walk length l=%d must be >= 1", l))
	}
	if g.NumNodes() > MaxPathUnionNodes {
		panic(fmt.Sprintf("core: PU limited to %d nodes, got %d", MaxPathUnionNodes, g.NumNodes()))
	}
	return &PathUnion{g: g, l: l, weight: weight}
}

// Name implements Scorer.
func (p *PathUnion) Name() string { return "PU" }

// Graph implements Scorer.
func (p *PathUnion) Graph() *graph.Graph { return p.g }

// Assign implements Scorer.
func (p *PathUnion) Assign(excluded []bool, out []float64) []float64 {
	g := p.g
	n := int(g.NumNodes())
	if out == nil {
		out = make([]float64, n)
	}
	// M[u][v] = edge weight, with excluded rows/columns zeroed.
	m := make([][]float64, n)
	pu := make([][]float64, n)
	next := make([][]float64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]float64, n)
		pu[i] = make([]float64, n)
		next[i] = make([]float64, n)
		pu[i][i] = 1
	}
	for u := graph.NodeID(0); u < g.NumNodes(); u++ {
		if excluded != nil && excluded[u] {
			continue
		}
		nbrs := g.OutNeighbors(u)
		ws := edgeWeights(g, p.weight, u)
		for j, v := range nbrs {
			if excluded != nil && excluded[v] {
				continue
			}
			m[u][v] = ws[j]
		}
	}
	delta := make([]float64, n)
	for iter := 1; iter <= p.l; iter++ {
		// next = pu ⊗ m with the union combine.
		for i := 0; i < n; i++ {
			row := pu[i]
			dst := next[i]
			for j := 0; j < n; j++ {
				survive := 1.0
				for k := 0; k < n; k++ {
					t := row[k] * m[k][j]
					if t != 0 {
						survive *= 1 - t
					}
				}
				dst[j] = 1 - survive
			}
		}
		pu, next = next, pu
		for v := 0; v < n; v++ {
			pu[v][v] = 0 // lines 5–7: drop walks returning to the source
		}
		for u := 0; u < n; u++ {
			sum := 0.0
			for v := 0; v < n; v++ {
				sum += pu[u][v]
			}
			delta[u] += sum // line 10 accumulated over iterations
		}
	}
	for u := 0; u < n; u++ {
		if excluded != nil && excluded[u] {
			out[u] = negInf
		} else {
			out[u] = delta[u]
		}
	}
	return out
}

var _ Scorer = (*PathUnion)(nil)
