package core

import (
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
)

// evalEffective evaluates Γ_λ^o(S) under OI-IC; the hardness constructions
// are deterministic (p ∈ {0,1}, ϕ ∈ {0,1}) so a single run is exact.
func evalEffective(g *graph.Graph, seeds []graph.NodeID, lambda float64) float64 {
	est := diffusion.MonteCarlo(diffusion.NewOI(g, diffusion.LayerIC), seeds,
		diffusion.MCOptions{Runs: 8, Seed: 1})
	return est.EffectiveOpinionSpread(lambda)
}

// TestLemma2NonSubmodularSequence reproduces the 1 → 0 → 1 effective-
// spread sequence of the paper's Figure-3a construction, proving (by
// witness) that opinion spread is neither monotone nor submodular.
func TestLemma2NonSubmodularSequence(t *testing.T) {
	nx := int32(4)
	g := graph.LayeredBipartite(nx)
	s1 := evalEffective(g, []graph.NodeID{0}, 1)
	if math.Abs(s1-1) > 1e-9 {
		t.Fatalf("Γ({x1}) = %v want 1", s1)
	}
	s2 := evalEffective(g, []graph.NodeID{0, nx - 1}, 1)
	if math.Abs(s2-0) > 1e-9 {
		t.Fatalf("Γ({x1,x_last}) = %v want 0", s2)
	}
	s3 := evalEffective(g, []graph.NodeID{0, nx - 1, 1}, 1)
	if math.Abs(s3-1) > 1e-9 {
		t.Fatalf("Γ({x1,x_last,x2}) = %v want 1", s3)
	}
	// Monotonicity violated: s2 < s1. Submodularity violated: the marginal
	// gain of x2 w.r.t. the superset (s3−s2=1) exceeds its marginal gain
	// w.r.t. the subset ({x1} ∪ {x2} → 2, gain 1; vs adding to the pair
	// with the negative source the gain is also 1 — the violation shows up
	// against adding x_last: gain into {x1} is −1, into {x1,x2} is −1, but
	// gain of x2 into {x1,x_last} (=1) > gain of x2 into {x1} (=1)... the
	// canonical witness is the non-monotone dip asserted above.
	if !(s2 < s1 && s3 > s2) {
		t.Fatal("expected the 1→0→1 dip")
	}
}

// TestTheorem1SetCoverReduction checks the decision boundary of the MEO
// reduction: effective spread > 0 iff the chosen k subsets cover the
// universe.
func TestTheorem1SetCoverReduction(t *testing.T) {
	// Universe {0,1,2,3}; subsets R0={0,1}, R1={1,2}, R2={2,3}, R3={3}.
	subsets := [][]int{{0, 1}, {1, 2}, {2, 3}, {3}}
	g, seeds := graph.SetCoverReduction(4, subsets)

	// {R0, R2} covers — spread must be exactly 1/(2n) = 0.125.
	cover := []graph.NodeID{seeds[0], seeds[2]}
	got := evalEffective(g, cover, 1)
	if math.Abs(got-1.0/8) > 1e-9 {
		t.Fatalf("covering spread %v want 0.125", got)
	}

	// {R0, R3} leaves element 2 uncovered — spread must be ≤ 0.
	noCover := []graph.NodeID{seeds[0], seeds[3]}
	got2 := evalEffective(g, noCover, 1)
	if got2 > 1e-9 {
		t.Fatalf("non-covering spread %v want <= 0", got2)
	}

	// {R1, R2} also fails (element 0 uncovered).
	noCover2 := []graph.NodeID{seeds[1], seeds[2]}
	if got3 := evalEffective(g, noCover2, 1); got3 > 1e-9 {
		t.Fatalf("non-covering spread %v want <= 0", got3)
	}
}

// TestMEOGreedyFindsCover demonstrates the reduction end-to-end: on a
// coverable instance, OSIM-driven ScoreGreedy picks layer-1 nodes that
// yield positive effective spread.
func TestMEOGreedyFindsCover(t *testing.T) {
	subsets := [][]int{{0, 1}, {2, 3}, {1, 2}}
	g, _ := graph.SetCoverReduction(4, subsets)
	sg := NewScoreGreedy(NewOSIM(g, 4, WeightProb, 1), ScoreGreedyOptions{
		Policy:     PolicyMCMajority,
		ProbeModel: diffusion.NewOI(g, diffusion.LayerIC),
		ProbeRuns:  8,
		Seed:       5,
	})
	res := runSelect(sg, 2)
	got := evalEffective(g, res.Seeds, 1)
	if got <= 0 {
		t.Fatalf("greedy MEO seeds %v give spread %v, want > 0", res.Seeds, got)
	}
}
