package core

import (
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/diffusion"
	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

// lemma8ClosedForm evaluates σ_o({u0}) on a uniform-parameter path of
// length l: Σ_i (Π p) (Σ_j o_j/2 (1+δ_j0) Π ψ) — the paper's Lemma 8.
func lemma8ClosedForm(opinions []float64, p, phi float64) float64 {
	psi := (2*phi - 1) / 2
	total := 0.0
	pAcc := 1.0
	// E[o'_i] via the recurrence o'_i = o_i/2 + ψ o'_{i−1}, o'_0 = o_0.
	exp := opinions[0]
	for i := 1; i < len(opinions); i++ {
		pAcc *= p
		exp = opinions[i]/2 + psi*exp
		total += pAcc * exp
	}
	return total
}

func TestOSIMLemma9PathExactness(t *testing.T) {
	// Lemma 9: ∆_l(u0) computed by Algorithm 5 equals the closed-form
	// expected opinion spread on a path, for every l up to the path length.
	r := rng.New(3)
	for trial := 0; trial < 8; trial++ {
		n := 2 + r.Intn(8)
		p := 0.2 + 0.7*r.Float64()
		phi := r.Float64()
		g := graph.Path(int32(n), p, phi)
		opinions := make([]float64, n)
		for i := range opinions {
			opinions[i] = r.Range(-1, 1)
		}
		g.SetOpinions(opinions)
		s := NewOSIM(g, n, WeightProb, 1)
		scores := ScoreOf(s)
		want := lemma8ClosedForm(opinions, p, phi)
		if math.Abs(scores[0]-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d p=%v phi=%v): ∆=%v want %v", trial, n, p, phi, scores[0], want)
		}
	}
}

func TestOSIMExactOnTreesAgainstDP(t *testing.T) {
	// On trees every node is reached by a unique path, so OSIM's score of
	// the root equals the exact OI-IC expected opinion spread (the same DP
	// the diffusion test oracle implements).
	for trial := 0; trial < 6; trial++ {
		r := rng.Split(123, uint64(trial))
		n := int32(4 + r.Intn(16))
		g := graph.RandomTree(n, 0.5, 0, r)
		for v := graph.NodeID(0); v < n; v++ {
			g.SetOpinion(v, r.Range(-1, 1))
		}
		g.SetEdgeParamsFunc(func(u, v graph.NodeID) (float64, float64) {
			return 0.3 + 0.6*r.Float64(), r.Float64()
		})
		s := NewOSIM(g, int(n), WeightProb, 1)
		scores := ScoreOf(s)
		want := diffusion.ExactOIICSeedValue(g, 0)
		if math.Abs(scores[0]-want) > 1e-9 {
			t.Fatalf("trial %d: OSIM %v vs DP %v", trial, scores[0], want)
		}
	}
}

func TestOSIMReducesToEaSyIM(t *testing.T) {
	// Lemma 1's reduction: with o ≡ 1 and ϕ ≡ 1, MEO degenerates to IM.
	// Algebraically OSIM's score then equals EaSyIM's on ANY graph (each
	// activated node contributes exactly 1 in expectation).
	g := graph.ErdosRenyi(120, 900, rng.New(21))
	g.SetUniformProb(0.15)
	g.SetUniformPhi(1)
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		g.SetOpinion(v, 1)
	}
	for _, l := range []int{1, 2, 3, 5} {
		easy := ScoreOf(NewEaSyIM(g, l, WeightProb))
		osim := ScoreOf(NewOSIM(g, l, WeightProb, 1))
		for v := range easy {
			if math.Abs(easy[v]-osim[v]) > 1e-9 {
				t.Fatalf("l=%d node %d: EaSyIM %v vs OSIM %v", l, v, easy[v], osim[v])
			}
		}
	}
}

func TestOSIMFigure1Scores(t *testing.T) {
	// Hand-derived Algorithm-5 values on the Figure-1 graph with l=2:
	// ∆(A)=0.136, ∆(B)=0.0465, ∆(C)=−0.351, ∆(D)=0. OSIM must therefore
	// select A — the paper's Example-2 conclusion.
	g := graph.ExampleFigure1()
	s := NewOSIM(g, 2, WeightProb, 1)
	scores := ScoreOf(s)
	want := []float64{0.136, 0.0465, -0.351, 0}
	for v, w := range want {
		if math.Abs(scores[v]-w) > 1e-9 {
			t.Fatalf("∆(%d) = %v want %v", v, scores[v], w)
		}
	}
	if best := ArgmaxScore(scores); best != 0 {
		t.Fatalf("OSIM picked %d, want A=0", best)
	}
}

func TestOSIMExclusion(t *testing.T) {
	g := graph.ExampleFigure1()
	s := NewOSIM(g, 2, WeightProb, 1)
	excluded := make([]bool, 4)
	excluded[3] = true // exclude D
	scores := s.Assign(excluded, nil)
	// Without D, A and C have no outgoing contribution at all.
	if scores[0] != 0 || scores[2] != 0 {
		t.Fatalf("scores with D excluded: %v", scores)
	}
	if !math.IsInf(scores[3], -1) {
		t.Fatal("excluded node must score -Inf")
	}
	// B retains its level-1 contributions from A and C: 0.07.
	if math.Abs(scores[1]-0.07) > 1e-9 {
		t.Fatalf("∆(B)=%v want 0.07", scores[1])
	}
}

func TestOSIMLambdaZeroIgnoresNegativeLevels(t *testing.T) {
	// With λ=0 the negative per-level increments are dropped, so C's score
	// on the Figure-1 graph becomes 0 instead of −0.351.
	g := graph.ExampleFigure1()
	s := NewOSIM(g, 2, WeightProb, 0)
	scores := ScoreOf(s)
	if scores[2] != 0 {
		t.Fatalf("λ=0 score of C = %v want 0", scores[2])
	}
	if math.Abs(scores[0]-0.136) > 1e-9 {
		t.Fatalf("λ=0 should not change positive scores: %v", scores[0])
	}
}

func TestOSIMScoreBoundsQuick(t *testing.T) {
	// |per-node expected opinion| ≤ 1, so |∆_l(u)| is bounded by the
	// EaSyIM walk mass (each walk contributes an opinion in [-1,1]).
	r := rng.New(31)
	for trial := 0; trial < 20; trial++ {
		g := graph.ErdosRenyi(int32(5+r.Intn(30)), 90, r)
		p := r.Float64()
		g.SetUniformProb(p)
		for v := graph.NodeID(0); v < g.NumNodes(); v++ {
			g.SetOpinion(v, r.Range(-1, 1))
		}
		g.SetEdgeParamsFunc(func(u, v graph.NodeID) (float64, float64) { return p, r.Float64() })
		l := 1 + r.Intn(4)
		osim := ScoreOf(NewOSIM(g, l, WeightProb, 1))
		easy := ScoreOf(NewEaSyIM(g, l, WeightProb))
		for v := range osim {
			if math.Abs(osim[v]) > easy[v]+1e-9 {
				t.Fatalf("trial %d node %d: |OSIM| %v exceeds walk mass %v", trial, v, osim[v], easy[v])
			}
		}
	}
}

func TestOSIMRejectsBadParams(t *testing.T) {
	g := graph.Path(3, 0.5, 0.5)
	for _, f := range []func(){
		func() { NewOSIM(g, 0, WeightProb, 1) },
		func() { NewOSIM(g, 2, WeightProb, -0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
