package core

import (
	"runtime"
	"sync"

	"github.com/holisticim/holisticim/internal/graph"
)

// parallelFor splits [0,n) into contiguous chunks and runs fn on each
// from its own goroutine. With workers <= 1 it degenerates to a direct
// call, costing nothing on the sequential path. Score assignment levels
// only read the previous level's array and write disjoint slots of the
// current one, so chunked node-parallelism preserves exact results.
func parallelFor(n int32, workers int, fn func(lo, hi graph.NodeID)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || n < 2048 {
		fn(0, n)
		return
	}
	if int32(workers) > n {
		workers = int(n)
	}
	chunk := (n + int32(workers) - 1) / int32(workers)
	var wg sync.WaitGroup
	for lo := int32(0); lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi graph.NodeID) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// SetWorkers enables node-parallel score assignment for EaSyIM (0 =
// GOMAXPROCS, 1 = sequential). Scores are bit-identical across worker
// counts. Returns the receiver for chaining.
func (e *EaSyIM) SetWorkers(w int) *EaSyIM {
	e.workers = w
	return e
}

// SetWorkers enables node-parallel score assignment for OSIM; see
// EaSyIM.SetWorkers.
func (o *OSIM) SetWorkers(w int) *OSIM {
	o.workers = w
	return o
}
