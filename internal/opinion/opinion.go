// Package opinion provides the opinion/interaction parameter layers of
// the OI model: synthetic generators matching the paper's benchmark
// annotations (Sec. 4.1.3: o ~ rand(−1,1) or o ~ N(0,1), ϕ ~ rand(0,1))
// and the history-weighted opinion estimation procedure of Sec. 4.1.1
// used by the Twitter pipeline.
package opinion

import (
	"math"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

// Distribution names an opinion-generation scheme.
type Distribution int

const (
	// Uniform draws o ~ rand(−1, 1).
	Uniform Distribution = iota
	// Normal draws o ~ N(0,1) clamped into [−1,1] (the paper annotates
	// opinions "following the standard normal distribution"; values are
	// clipped to the model's domain).
	Normal
	// Polarized draws from a two-mode mixture ±(0.3..1.0) — an extension
	// useful for studying strongly divided populations.
	Polarized
)

func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Normal:
		return "normal"
	case Polarized:
		return "polarized"
	default:
		return "unknown"
	}
}

// AssignOpinions samples an opinion for every node of g from the given
// distribution. Deterministic given the seed.
func AssignOpinions(g *graph.Graph, d Distribution, seed uint64) {
	r := rng.New(seed)
	n := g.NumNodes()
	for v := graph.NodeID(0); v < n; v++ {
		g.SetOpinion(v, Sample(d, r))
	}
}

// Sample draws a single opinion from the distribution.
func Sample(d Distribution, r *rng.RNG) float64 {
	switch d {
	case Uniform:
		return r.Range(-1, 1)
	case Normal:
		return clamp(r.NormFloat64(), -1, 1)
	case Polarized:
		mag := 0.3 + 0.7*r.Float64()
		if r.Bool(0.5) {
			return mag
		}
		return -mag
	default:
		panic("opinion: unknown distribution")
	}
}

// AssignInteractions samples ϕ(u,v) ~ rand(0,1) for every edge, leaving
// influence probabilities untouched. Deterministic given the seed.
func AssignInteractions(g *graph.Graph, seed uint64) {
	r := rng.New(seed)
	// SetEdgeParamsFunc visits edges in deterministic CSR order.
	g.SetEdgeParamsFunc(func(u, v graph.NodeID) (float64, float64) {
		p, _ := g.EdgeProb(u, v)
		return p, r.Float64()
	})
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// HistoryEstimator implements the Sec.-4.1.1 estimation of a node's
// opinion on a new topic from its opinions on related past topics,
// weighted by topic similarity and recency.
type HistoryEstimator struct {
	// HalfLife controls the recency decay in "topic ages": a record a
	// topics old is weighted 2^(−age/HalfLife). Default 4.
	HalfLife float64
}

// Record is one historical (topic, opinion) observation.
type Record struct {
	Similarity float64 // similarity of the past topic to the target, in [0,1]
	Age        float64 // how many topics ago the observation was made, ≥ 0
	Opinion    float64 // the opinion expressed then, in [−1,1]
}

// Estimate combines history into an opinion prediction. With no usable
// history it returns 0 (neutral), mirroring the hierarchical classifier's
// neutral default.
func (h HistoryEstimator) Estimate(history []Record) float64 {
	halfLife := h.HalfLife
	if halfLife <= 0 {
		halfLife = 4
	}
	var num, den float64
	for _, rec := range history {
		if rec.Similarity <= 0 {
			continue
		}
		w := rec.Similarity * math.Exp2(-rec.Age/halfLife)
		num += w * rec.Opinion
		den += w
	}
	if den == 0 {
		return 0
	}
	return clamp(num/den, -1, 1)
}

// AgreementInteraction computes ϕ from past agreement counts: the
// fraction of co-occurrences where the two users took the same
// orientation (Def. 5's "fraction of the times an information content
// shared by u gets accepted by v with the same orientation"). Returns
// fallback when the pair never co-occurred.
func AgreementInteraction(agree, total int, fallback float64) float64 {
	if total <= 0 {
		return fallback
	}
	return float64(agree) / float64(total)
}
