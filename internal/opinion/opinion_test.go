package opinion

import (
	"math"
	"testing"

	"github.com/holisticim/holisticim/internal/graph"
	"github.com/holisticim/holisticim/internal/rng"
)

func TestAssignOpinionsUniform(t *testing.T) {
	g := graph.ErdosRenyi(2000, 4000, rng.New(1))
	AssignOpinions(g, Uniform, 7)
	var sum float64
	neg := 0
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		o := g.Opinion(v)
		if o < -1 || o > 1 {
			t.Fatalf("opinion %v out of range", o)
		}
		sum += o
		if o < 0 {
			neg++
		}
	}
	mean := sum / float64(g.NumNodes())
	if math.Abs(mean) > 0.05 {
		t.Fatalf("uniform mean %v", mean)
	}
	frac := float64(neg) / float64(g.NumNodes())
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("negative fraction %v", frac)
	}
}

func TestAssignOpinionsNormalClamped(t *testing.T) {
	g := graph.ErdosRenyi(3000, 6000, rng.New(2))
	AssignOpinions(g, Normal, 9)
	extreme := 0
	for v := graph.NodeID(0); v < g.NumNodes(); v++ {
		o := g.Opinion(v)
		if o < -1 || o > 1 {
			t.Fatalf("opinion %v out of range", o)
		}
		if o == 1 || o == -1 {
			extreme++
		}
	}
	// N(0,1) mass beyond ±1 is ≈ 31.7%, so clamping should be visible.
	frac := float64(extreme) / float64(g.NumNodes())
	if frac < 0.2 || frac > 0.45 {
		t.Fatalf("clamped fraction %v, want ≈0.32", frac)
	}
}

func TestPolarizedAvoidsNeutral(t *testing.T) {
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		o := Sample(Polarized, r)
		if math.Abs(o) < 0.3 || math.Abs(o) > 1 {
			t.Fatalf("polarized sample %v outside ±[0.3,1]", o)
		}
	}
}

func TestAssignOpinionsDeterministic(t *testing.T) {
	g1 := graph.ErdosRenyi(100, 300, rng.New(4))
	g2 := g1.Clone()
	AssignOpinions(g1, Normal, 42)
	AssignOpinions(g2, Normal, 42)
	for v := graph.NodeID(0); v < g1.NumNodes(); v++ {
		if g1.Opinion(v) != g2.Opinion(v) {
			t.Fatalf("nondeterministic at node %d", v)
		}
	}
}

func TestAssignInteractions(t *testing.T) {
	g := graph.ErdosRenyi(200, 1000, rng.New(5))
	g.SetUniformProb(0.1)
	AssignInteractions(g, 11)
	var sum float64
	var count int
	for u := graph.NodeID(0); u < g.NumNodes(); u++ {
		phis := g.OutPhis(u)
		ps := g.OutProbs(u)
		for i := range phis {
			if phis[i] < 0 || phis[i] >= 1 {
				t.Fatalf("phi %v out of [0,1)", phis[i])
			}
			if ps[i] != 0.1 {
				t.Fatalf("interaction assignment clobbered p: %v", ps[i])
			}
			sum += phis[i]
			count++
		}
	}
	if mean := sum / float64(count); math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("phi mean %v", mean)
	}
}

func TestHistoryEstimatorWeighting(t *testing.T) {
	h := HistoryEstimator{HalfLife: 4}
	// Single perfectly similar fresh record dominates.
	got := h.Estimate([]Record{{Similarity: 1, Age: 0, Opinion: 0.8}})
	if math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("single record estimate %v", got)
	}
	// Recency: a fresh record outweighs an old opposite one.
	got = h.Estimate([]Record{
		{Similarity: 1, Age: 0, Opinion: 0.8},
		{Similarity: 1, Age: 12, Opinion: -0.8},
	})
	if got <= 0.4 {
		t.Fatalf("recency weighting too weak: %v", got)
	}
	// Similarity: zero-similarity records are ignored.
	got = h.Estimate([]Record{
		{Similarity: 0, Age: 0, Opinion: -1},
		{Similarity: 0.5, Age: 0, Opinion: 0.6},
	})
	if math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("similarity filter failed: %v", got)
	}
}

func TestHistoryEstimatorEmptyNeutral(t *testing.T) {
	h := HistoryEstimator{}
	if got := h.Estimate(nil); got != 0 {
		t.Fatalf("empty history estimate %v want 0", got)
	}
	if got := h.Estimate([]Record{{Similarity: 0, Opinion: 1}}); got != 0 {
		t.Fatalf("unusable history estimate %v want 0", got)
	}
}

func TestAgreementInteraction(t *testing.T) {
	if got := AgreementInteraction(1, 5, 0.5); got != 0.2 {
		t.Fatalf("1/5 agreement = %v", got)
	}
	if got := AgreementInteraction(0, 0, 0.4); got != 0.4 {
		t.Fatalf("fallback = %v", got)
	}
	if got := AgreementInteraction(5, 5, 0); got != 1 {
		t.Fatalf("full agreement = %v", got)
	}
}
