package graph

import (
	"testing"

	"github.com/holisticim/holisticim/internal/rng"
)

func benchGraph(b *testing.B) *Graph {
	b.Helper()
	return BarabasiAlbert(20000, 3, rng.New(1))
}

func BenchmarkBuildCSR(b *testing.B) {
	bl := NewBuilder(10000)
	r := rng.New(2)
	for i := 0; i < 60000; i++ {
		bl.AddEdge(NodeID(r.Int31n(10000)), NodeID(r.Int31n(10000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bl.Build()
	}
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BFSDistances(g, NodeID(i%int(g.NumNodes())))
	}
}

func BenchmarkTranspose(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Transpose()
	}
}

func BenchmarkRMATGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = RMAT(1<<14, 100000, DefaultRMAT, false, rng.New(uint64(i)))
	}
}

func BenchmarkComputeStats(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ComputeStats(g, 8, uint64(i))
	}
}
